# Tier-1 verification (see ROADMAP.md): build, vet, and the full test suite
# under the race detector — the engine is deliberately concurrent, so -race
# is part of the baseline, not an extra.
.PHONY: tier1
tier1:
	go build ./...
	go vet ./...
	go test -race ./...

.PHONY: test
test:
	go test ./...

# Hot-path microbenchmarks: the scheduler (BenchmarkEngine*, internal/sim)
# and the end-to-end invocation path (BenchmarkRunInvocation*, root package,
# one sub-benchmark per collector). ns/op and allocs/op are captured to
# BENCH_sim.json so perf — and the hot path's zero-allocation contract — are
# diffable.
.PHONY: bench
bench:
	( go test -run='^$$' -bench='BenchmarkEngine' -benchmem -benchtime=300ms \
		./internal/sim && \
	  go test -run='^$$' -bench='BenchmarkRunInvocation' -benchmem . ) \
		| go run ./cmd/benchjson -out BENCH_sim.json

# Statistical perf-regression gate: run the hot-path microbenchmarks five
# times and compare the distributions against the committed BENCH_sim.json
# baseline with cmd/benchdiff (Mann-Whitney + median threshold, on ns/op,
# B/op and allocs/op). Fails on a statistically significant regression beyond
# 10% — and on ANY allocation where the baseline records zero.
.PHONY: bench-gate
bench-gate:
	( go test -run='^$$' -bench='BenchmarkEngine' -benchmem -benchtime=300ms \
		-count=5 ./internal/sim && \
	  go test -run='^$$' -bench='BenchmarkRunInvocation' -benchmem -count=5 . ) \
		| tee bench-gate.txt
	go run ./cmd/benchdiff -threshold 0.10 BENCH_sim.json bench-gate.txt

# CPU and heap profiles for the invocation hot path; inspect with
# `go tool pprof cpu.pprof` / `go tool pprof -sample_index=alloc_objects
# mem.pprof`.
.PHONY: bench-profile
bench-profile:
	go test -run='^$$' -bench='BenchmarkRunInvocation' -benchmem \
		-cpuprofile cpu.pprof -memprofile mem.pprof .

# Figure/table regeneration benches (reduced sizes; minutes, not hours).
.PHONY: bench-figures
bench-figures:
	go test -bench=. -benchtime=1x -run='^$$' .
