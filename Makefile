# Tier-1 verification (see ROADMAP.md): build, vet, and the full test suite
# under the race detector — the engine is deliberately concurrent, so -race
# is part of the baseline, not an extra.
.PHONY: tier1
tier1:
	go build ./...
	go vet ./...
	go test -race ./...

.PHONY: test
test:
	go test ./...

# Figure/table regeneration benches (reduced sizes; minutes, not hours).
.PHONY: bench
bench:
	go test -bench=. -benchtime=1x -run='^$$' .
