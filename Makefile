# Tier-1 verification (see ROADMAP.md): build, vet, and the full test suite
# under the race detector — the engine is deliberately concurrent, so -race
# is part of the baseline, not an extra.
.PHONY: tier1
tier1:
	go build ./...
	go vet ./...
	go test -race ./...

.PHONY: test
test:
	go test ./...

# Simulator/engine microbenchmarks: ns/op and allocs/op for the scheduler
# hot path, captured to BENCH_sim.json so perf regressions are diffable.
.PHONY: bench
bench:
	go test -run='^$$' -bench='BenchmarkEngine' -benchmem -benchtime=300ms \
		./internal/sim | go run ./cmd/benchjson -out BENCH_sim.json

# Statistical perf-regression gate: run the scheduler microbenchmarks five
# times and compare the timing distributions against the committed
# BENCH_sim.json baseline with cmd/benchdiff (Mann-Whitney + median
# threshold). Fails on a statistically significant regression beyond 10%.
.PHONY: bench-gate
bench-gate:
	go test -run='^$$' -bench='BenchmarkEngine' -benchmem -benchtime=300ms \
		-count=5 ./internal/sim | tee bench-gate.txt
	go run ./cmd/benchdiff -threshold 0.10 BENCH_sim.json bench-gate.txt

# Figure/table regeneration benches (reduced sizes; minutes, not hours).
.PHONY: bench-figures
bench-figures:
	go test -bench=. -benchtime=1x -run='^$$' .
