# Tier-1 verification (see ROADMAP.md): build, vet, and the full test suite
# under the race detector — the engine is deliberately concurrent, so -race
# is part of the baseline, not an extra. The shutdown-race, single-flight,
# and worker-count-determinism regressions only manifest under -race, so
# tier1 delegates to tier1-race rather than running a raceless suite.
.PHONY: tier1
tier1: tier1-race

.PHONY: tier1-race
tier1-race:
	go build ./...
	go vet ./...
	go test -race ./...
	go run ./cmd/fleet -bench micro-pauseprobe -replicas 1,2 -rates 1,2 \
		-lb round-robin,gc-aware -events 300 \
		-telemetry fleet-smoke.jsonl -trace-out fleet-smoke.trace.json \
		-timeline > /dev/null
	go run ./cmd/obsreport -fleet fleet-smoke.jsonl > /dev/null
	go run ./cmd/fleet -bench micro-pauseprobe -replicas 256 -lb gc-aware \
		-events 60 -trace-out fleet-smoke-256.trace.json > /dev/null
	rm -f fleet-smoke.jsonl fleet-smoke.trace.json fleet-smoke-256.trace.json

.PHONY: test
test:
	go test ./...

# Hot-path microbenchmarks: the scheduler (BenchmarkEngine*, internal/sim),
# the end-to-end invocation path (BenchmarkRunInvocation*, root package, one
# sub-benchmark per collector), the whole-suite batch-execution path
# (BenchmarkFullSuite, workers=1 vs workers=8), and the fleet layer
# (BenchmarkFleetSweep; BenchmarkFleetScale, the 16→1024 replica ladder whose
# 1024-replica rung the gate holds at 0 allocs/op — the driving loop must stay
# allocation-free at scale; and BenchmarkFleetTelemetry, which prices request
# tracing recorder-on vs -off and gates the disabled hooks at 0 allocs/op).
# FleetSweep and FleetTelemetry get their own -benchtime so each self-iterates
# to a stable ns/op instead of one cold N=1 sample (a single ~30ms sweep op
# varies ~30% run to run; 300ms amortizes it), while the minutes-scale
# FullSuite stays at -benchtime=1x and FleetScale at 3 fleet runs per sample.
# Each benchmark runs five times and benchjson records the per-metric median,
# so the committed BENCH_sim.json baseline is median-of-five — directly
# comparable to the median-of-five gate runs and robust to scheduler noise on
# loaded hosts.
.PHONY: bench
bench:
	( go test -run='^$$' -bench='BenchmarkEngine' -benchmem -benchtime=300ms \
		-count=5 ./internal/sim && \
	  go test -run='^$$' -bench='BenchmarkRunInvocation' -benchmem -count=5 . && \
	  go test -run='^$$' -bench='BenchmarkFullSuite' -benchtime=1x -count=5 . && \
	  go test -run='^$$' -bench='BenchmarkFleetSweep' -benchtime=300ms -count=5 \
		./internal/fleet && \
	  go test -run='^$$' -bench='BenchmarkFleetScale' -benchtime=3x -count=5 \
		./internal/fleet && \
	  go test -run='^$$' -bench='BenchmarkFleetTelemetry' -benchtime=200ms \
		-count=5 ./internal/fleet ) \
		| go run ./cmd/benchjson -out BENCH_sim.json

# Statistical perf-regression gate: run the hot-path microbenchmarks five
# times and compare the distributions against the committed BENCH_sim.json
# baseline with cmd/benchdiff (Mann-Whitney + median threshold, on ns/op,
# B/op and allocs/op). Fails on a statistically significant regression beyond
# 10% — and on ANY allocation where the baseline records zero. The scaling
# gate then re-reads the same captured output (no benchmarks re-run), so a
# whole-suite parallel-efficiency collapse fails bench-gate too.
.PHONY: bench-gate
bench-gate:
	( go test -run='^$$' -bench='BenchmarkEngine' -benchmem -benchtime=300ms \
		-count=5 ./internal/sim && \
	  go test -run='^$$' -bench='BenchmarkRunInvocation' -benchmem -count=5 . && \
	  go test -run='^$$' -bench='BenchmarkFullSuite' -benchtime=1x -count=5 . && \
	  go test -run='^$$' -bench='BenchmarkFleetSweep' -benchtime=300ms -count=5 \
		./internal/fleet && \
	  go test -run='^$$' -bench='BenchmarkFleetScale' -benchtime=3x -count=5 \
		./internal/fleet && \
	  go test -run='^$$' -bench='BenchmarkFleetTelemetry' -benchtime=200ms \
		-count=5 ./internal/fleet ) \
		| tee bench-gate.txt
	go run ./cmd/benchdiff -threshold 0.10 BENCH_sim.json bench-gate.txt
	go run ./cmd/benchjson -out /dev/null -scaling-min auto < bench-gate.txt > /dev/null

# Whole-suite scaling gate, standalone: run only BenchmarkFullSuite at
# workers ∈ {1, 8, NumCPU} and fail if the derived parallel efficiency
# (workers=1 ns ÷ workers=8 ns) falls below the host-scaled floor —
# max(0.9, 0.5·min(8, NumCPU)): an 8-core host demands ≥4x, a single core
# demands only not-regressing (it cannot speed up).
.PHONY: bench-scaling
bench-scaling:
	go test -run='^$$' -bench='BenchmarkFullSuite' -benchtime=1x -count=5 . \
		| go run ./cmd/benchjson -out /dev/null -scaling-min auto

# CPU and heap profiles for the invocation hot path; inspect with
# `go tool pprof cpu.pprof` / `go tool pprof -sample_index=alloc_objects
# mem.pprof`.
.PHONY: bench-profile
bench-profile:
	go test -run='^$$' -bench='BenchmarkRunInvocation' -benchmem \
		-cpuprofile cpu.pprof -memprofile mem.pprof .

# Figure/table regeneration benches (reduced sizes; minutes, not hours).
.PHONY: bench-figures
bench-figures:
	go test -bench=. -benchtime=1x -run='^$$' .
