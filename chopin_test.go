package chopin

import (
	"errors"
	"math"
	"testing"
)

// --- Public API surface ---

func TestSuiteAccessors(t *testing.T) {
	if got := len(Benchmarks()); got != 22 {
		t.Fatalf("Benchmarks() = %d, want 22", got)
	}
	if got := len(LatencyBenchmarks()); got != 9 {
		t.Fatalf("LatencyBenchmarks() = %d, want 9", got)
	}
	if got := len(BenchmarkNames()); got != 22 {
		t.Fatalf("BenchmarkNames() = %d, want 22", got)
	}
	b, err := Lookup("h2")
	if err != nil || b.Name != "h2" {
		t.Fatalf("Lookup(h2) = %v, %v", b, err)
	}
	if _, err := Lookup("missing"); err == nil {
		t.Fatal("Lookup of unknown benchmark should fail")
	}
}

func TestCollectorsExported(t *testing.T) {
	if len(Collectors) != 5 {
		t.Fatalf("Collectors = %d, want the paper's 5", len(Collectors))
	}
	if len(AllCollectors) != 6 {
		t.Fatalf("AllCollectors = %d, want 6 (with GenZGC)", len(AllCollectors))
	}
	k, err := ParseCollector("Shenandoah")
	if err != nil || k != Shenandoah {
		t.Fatalf("ParseCollector = %v, %v", k, err)
	}
	if Serial.String() != "Serial" || ZGC.String() != "ZGC" {
		t.Fatal("collector names broken")
	}
}

func TestNominalMetricsExported(t *testing.T) {
	if got := len(NominalMetrics()); got != 48 {
		t.Fatalf("NominalMetrics() = %d, want 48", got)
	}
	if len(Table2Metrics) != 12 {
		t.Fatalf("Table2Metrics = %d, want 12", len(Table2Metrics))
	}
}

func TestRunViaPublicAPI(t *testing.T) {
	b, _ := Lookup("fop")
	res, err := Run(b, RunConfig{
		HeapMB: 2 * b.MinHeapMB, Collector: G1, Iterations: 2, Events: 300, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Last().WallNS <= 0 {
		t.Fatal("no wall time measured")
	}
	_, err = Run(b, RunConfig{HeapMB: 1, Collector: G1, Iterations: 1, Events: 300})
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOutOfMemory from a 1MB heap, got %v", err)
	}
}

func TestLatencyHelpers(t *testing.T) {
	events := []LatencyEvent{{Start: 0, End: 10}, {Start: 20, End: 35}}
	simple := SimpleLatency(events)
	if simple[0] != 10 || simple[1] != 15 {
		t.Fatalf("simple = %v", simple)
	}
	metered := MeteredLatency(events, FullSmoothing)
	for i := range metered {
		if metered[i] < simple[i] {
			t.Fatal("metered below simple")
		}
	}
	d := NewDistribution(simple)
	if d.Percentile(100) != 15 {
		t.Fatalf("p100 = %v", d.Percentile(100))
	}
	if got := MMU(nil, 0, 1000, 100); got != 1 {
		t.Fatalf("MMU with no pauses = %v", got)
	}
}

func TestToLatencyEvents(t *testing.T) {
	evs := ToLatencyEvents([]Event{{Start: 1, End: 2}})
	if len(evs) != 1 || evs[0].Start != 1 || evs[0].End != 2 {
		t.Fatalf("conversion broken: %v", evs)
	}
}

// --- Shape tests: the paper's headline findings must emerge ---

// TestShapeFigure1Orderings locks in the qualitative content of Figure 1 on
// a representative sub-suite: CPU-overhead ordering follows collector
// introduction order, wall-clock winners are Parallel/G1, overheads shrink
// with heap size, and ZGC cannot run 1x heaps.
func TestShapeFigure1Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-benchmark sweep")
	}
	var subset []*Benchmark
	for _, n := range []string{"fop", "jython", "spring", "h2o", "cassandra"} {
		b, _ := Lookup(n)
		subset = append(subset, b)
	}
	opt := SweepOptions{
		HeapFactors: []float64{1, 2, 6},
		Invocations: 2, Iterations: 2, Events: 250, Seed: 9,
	}
	_, pts, err := SuiteLBO(subset, opt)
	if err != nil {
		t.Fatal(err)
	}
	at := func(c Collector, f float64) GeomeanPoint {
		for _, p := range pts {
			if p.Collector == c.String() && p.HeapFactor == f {
				return p
			}
		}
		t.Fatalf("missing point %v@%v", c, f)
		return GeomeanPoint{}
	}

	// CPU overhead at 6x follows design history: each newer collector buys
	// latency with CPU (the paper's central regression finding).
	order := []Collector{Serial, Parallel, G1, Shenandoah, ZGC}
	for i := 1; i < len(order); i++ {
		prev, cur := at(order[i-1], 6), at(order[i], 6)
		if !prev.Complete || !cur.Complete {
			t.Fatalf("incomplete 6x points for %v/%v", order[i-1], order[i])
		}
		if cur.CPU <= prev.CPU {
			t.Errorf("CPU LBO ordering violated at 6x: %v %.3f <= %v %.3f",
				order[i], cur.CPU, order[i-1], prev.CPU)
		}
	}

	// Wall clock at 6x: Parallel and G1 beat Serial (single-threaded pauses)
	// and the concurrent collectors.
	for _, c := range []Collector{Serial, Shenandoah, ZGC} {
		if at(Parallel, 6).Wall >= at(c, 6).Wall {
			t.Errorf("Parallel wall %.3f should beat %v %.3f",
				at(Parallel, 6).Wall, c, at(c, 6).Wall)
		}
	}

	// The time-space tradeoff: overheads fall as the heap grows.
	for _, c := range order {
		tight, roomy := at(c, 2), at(c, 6)
		if tight.Complete && roomy.Complete && tight.CPU < roomy.CPU*0.98 {
			t.Errorf("%v: CPU LBO rose with heap: %.3f@2x < %.3f@6x", c, tight.CPU, roomy.CPU)
		}
	}

	// ZGC cannot complete every benchmark at the 1x compressed-oops minimum.
	if at(ZGC, 1).Complete {
		t.Error("ZGC should be incomplete at 1x (no compressed pointers)")
	}
	// At small heaps overheads exceed 2x (paper abstract).
	if p := at(ZGC, 2); p.Complete && p.CPU < 2 {
		t.Errorf("ZGC CPU LBO at 2x = %.2f, expect > 2 per the paper", p.CPU)
	}
}

// TestShapeLusearchShenandoahAnomaly locks in the Figure 5(c/d) finding:
// Shenandoah's pacer throttles lusearch's allocation-furious mutators, so
// its wall-clock overhead dwarfs what Parallel pays, far beyond the ratio on
// a moderate workload.
func TestShapeLusearchShenandoahAnomaly(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	opt := SweepOptions{
		HeapFactors: []float64{2},
		Invocations: 2, Iterations: 2, Events: 300, Seed: 4,
	}
	wallRatio := func(name string) float64 {
		b, _ := Lookup(name)
		grid, _, err := MeasureLBO(b, opt)
		if err != nil {
			t.Fatal(err)
		}
		ovs, err := grid.Overheads()
		if err != nil {
			t.Fatal(err)
		}
		var shen, par float64
		for _, o := range ovs {
			if !o.Completed {
				continue
			}
			switch o.Collector {
			case "Shenandoah":
				shen = o.Wall
			case "Parallel":
				par = o.Wall
			}
		}
		if shen == 0 || par == 0 {
			t.Fatalf("%s: missing cells", name)
		}
		return shen / par
	}
	hot := wallRatio("lusearch")
	calm := wallRatio("cassandra")
	if hot <= calm*1.5 {
		t.Errorf("lusearch Shen/Parallel wall ratio %.2f should far exceed cassandra's %.2f", hot, calm)
	}
}

// TestShapeCassandraTaskClockSoaksIdleCores locks in the Figure 5(a/b)
// finding: for a workload that does not saturate the machine, concurrent
// collectors' task-clock overhead far exceeds their wall-clock overhead.
func TestShapeCassandraTaskClockSoaksIdleCores(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	b, _ := Lookup("cassandra")
	grid, _, err := MeasureLBO(b, SweepOptions{
		HeapFactors: []float64{2, 3},
		Invocations: 2, Iterations: 2, Events: 300, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ovs, err := grid.Overheads()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ovs {
		if !o.Completed || o.Collector != "ZGC" {
			continue
		}
		wallOver := o.Wall - 1
		cpuOver := o.CPU - 1
		if cpuOver < 2*wallOver {
			t.Errorf("ZGC@%vx: CPU overhead %.2f should dwarf wall %.2f",
				o.HeapFactor, cpuOver, wallOver)
		}
	}
}

// TestShapeH2LatencyFindings locks in the Figure 6 analysis: on h2, the
// latency-oriented collectors do not deliver better tail latency than
// Parallel/G1 — their CPU consumption slows every query.
func TestShapeH2LatencyFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("latency experiment")
	}
	b, _ := Lookup("h2")
	results, err := MeasureLatency(b, []float64{2}, SweepOptions{
		Events: 1500, Iterations: 2, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	p999 := map[string]float64{}
	for _, r := range results {
		if r.Completed {
			p999[r.Collector] = r.Simple.Percentile(99.9)
		}
	}
	best := math.Min(p999["Parallel"], p999["G1"])
	for _, newer := range []string{"Shenandoah", "ZGC"} {
		v, ok := p999[newer]
		if !ok {
			continue // may OOM at 2x h2 heap
		}
		if v < best*0.9 {
			t.Errorf("%s p99.9 %.2fms should not beat Parallel/G1's %.2fms on h2",
				newer, v/1e6, best/1e6)
		}
	}
}

// TestShapeMeteredVsSimple locks in the Section 4.4 property on real run
// data: metered latency dominates simple latency at every report percentile.
func TestShapeMeteredVsSimple(t *testing.T) {
	b, _ := Lookup("kafka")
	results, err := MeasureLatency(b, []float64{2}, SweepOptions{
		Collectors: []Collector{Serial}, Events: 800, Iterations: 2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		if r.Metered100.Percentile(p) < r.Simple.Percentile(p)-1e-6 {
			t.Errorf("metered p%v below simple", p)
		}
		if r.MeteredFull.Percentile(p) < r.Simple.Percentile(p)-1e-6 {
			t.Errorf("metered-full p%v below simple", p)
		}
	}
}

// TestShapePCASuiteDiversity: the suite's workloads spread across principal
// components rather than collapsing onto one axis (Figure 4's argument),
// with the top four components explaining an appreciable share of variance.
func TestShapePCASuiteDiversity(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes several workloads")
	}
	var subset []*Benchmark
	for _, n := range []string{"lusearch", "biojava", "h2o", "jme", "kafka", "avrora", "fop", "spring"} {
		b, _ := Lookup(n)
		subset = append(subset, b)
	}
	table, err := CharacterizeSuite(subset, NominalOptions{
		Events: 200, Invocations: 2, SkipSizeVariants: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := table.PCA()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExplainedVariance[0] > 0.9 {
		t.Errorf("PC1 explains %.0f%%: suite collapsed onto one axis",
			res.ExplainedVariance[0]*100)
	}
	var top4 float64
	for c := 0; c < 4 && c < len(res.ExplainedVariance); c++ {
		top4 += res.ExplainedVariance[c]
	}
	if top4 < 0.5 {
		t.Errorf("top 4 PCs explain only %.0f%%", top4*100)
	}
	// Distinct workloads must be distinguishable in PC space.
	for i := range table.Benchmarks {
		for j := i + 1; j < len(table.Benchmarks); j++ {
			dx := res.Projected[i][0] - res.Projected[j][0]
			dy := res.Projected[i][1] - res.Projected[j][1]
			if math.Hypot(dx, dy) < 0.05 {
				t.Errorf("%s and %s are indistinguishable in PC1/PC2",
					table.Benchmarks[i], table.Benchmarks[j])
			}
		}
	}
}

func TestPublicWrappers(t *testing.T) {
	if _, err := ParseSize("vlarge"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSize("nope"); err == nil {
		t.Fatal("bad size should error")
	}
	p := ShenandoahParams(ShenCompact, 8)
	if p.ConcTriggerFrac >= ShenandoahParams(ShenAdaptive, 8).ConcTriggerFrac {
		t.Fatal("compact heuristic should trigger earlier")
	}
	b, _ := Lookup("fop")
	min, err := MinHeapMB(b, SweepOptions{Events: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if min < b.LiveMB {
		t.Fatalf("min heap %v below live %v", min, b.LiveMB)
	}
	samples, err := HeapTimeline(b, SweepOptions{Events: 300, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no heap samples")
	}
	c, err := Characterize(b, NominalOptions{
		Events: 200, Invocations: 2, WarmupIters: 6, SkipSizeVariants: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.MinHeapMB <= 0 {
		t.Fatal("characterization missing min heap")
	}
	events := []LatencyEvent{}
	for i := int64(0); i < 500; i++ {
		events = append(events, LatencyEvent{Start: i * 1e6, End: i*1e6 + 5e5})
	}
	if jops := CriticalJOPS(events, DefaultSLAs); jops <= 0 {
		t.Fatalf("critical-jOPS = %v, want positive", jops)
	}
}

func TestCharacterizeSuiteErrorPropagates(t *testing.T) {
	bad := *Benchmarks()[0]
	bad.Threads = 0 // invalid
	if _, err := CharacterizeSuite([]*Benchmark{&bad}, NominalOptions{Events: 100}); err == nil {
		t.Fatal("invalid descriptor should fail characterization")
	}
}

// TestShapeGenZGCExtension: the generational extension must cut GC CPU
// relative to single-generation ZGC on a young-garbage-heavy workload —
// the motivation for JEP 439.
func TestShapeGenZGCExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("two runs")
	}
	run := func(c Collector) float64 {
		b, _ := Lookup("h2o")
		res, err := Run(b, RunConfig{
			HeapMB: 3 * b.MinHeapMB, Collector: c,
			Iterations: 2, Events: 400, Seed: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GCCPUNS
	}
	zgc, gen := run(ZGC), run(GenZGC)
	if gen >= zgc {
		t.Errorf("GenZGC GC CPU %v should be below ZGC's %v", gen, zgc)
	}
}

// TestGCLogPublicRoundTrip exercises the exported GC-log API.
func TestGCLogPublicRoundTrip(t *testing.T) {
	b, _ := Lookup("fop")
	res, err := Run(b, RunConfig{
		HeapMB: 2 * b.MinHeapMB, Collector: Serial, Iterations: 2, Events: 300, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	text := FormatGCLog(res.Log, 2*b.MinHeapMB)
	parsed, capMB, err := ParseGCLog(text)
	if err != nil {
		t.Fatal(err)
	}
	if capMB != 2*b.MinHeapMB {
		t.Fatalf("capacity = %v", capMB)
	}
	if len(parsed.Events) != len(res.Log.Events) {
		t.Fatalf("events = %d, want %d", len(parsed.Events), len(res.Log.Events))
	}
	if SummarizeGCLog(parsed) == "" {
		t.Fatal("empty summary")
	}
}

// TestCalibrationSuiteWide is the calibration regression net: for every
// workload, key measured nominal statistics must stay within band of the
// paper's published values (the calibration targets). It is what keeps
// future model changes from silently drifting the suite.
func TestCalibrationSuiteWide(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes all 22 workloads")
	}
	for _, b := range Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			min, err := MinHeapMB(b, SweepOptions{Events: 200, Seed: 31})
			if err != nil {
				t.Fatal(err)
			}
			// Measured minimum heap within [0.5x, 1.6x] of published GMD.
			if min < 0.5*b.MinHeapMB || min > 1.6*b.MinHeapMB {
				t.Errorf("min heap %vMB outside band of published %vMB", min, b.MinHeapMB)
			}
			res, err := Run(b, RunConfig{
				HeapMB: 2.5 * b.MinHeapMB, Collector: G1,
				Iterations: 3, Events: 300, Seed: 31,
			})
			if err != nil {
				t.Fatal(err)
			}
			last := res.Last()
			// Measured allocation rate within a factor 3 of published ARA.
			ara := last.Allocated / (last.WallNS / 1e3)
			if b.ARA > 0 && (ara < b.ARA/3 || ara > b.ARA*3) {
				t.Errorf("ARA %v outside 3x band of published %v", ara, b.ARA)
			}
			// Measured iteration time within a factor 3 of published PET.
			pet := last.WallNS / 1e9
			if pet < b.PETSeconds/3 || pet > b.PETSeconds*3 {
				t.Errorf("PET %vs outside 3x band of published %vs", pet, b.PETSeconds)
			}
		})
	}
}
