package fleet

import (
	"fmt"
	"math"
	"testing"

	"chopin/internal/sim"
)

// The indexed balancers must be decision-identical to the linear oracles
// under any interleaving of injects, completes and pause transitions. The
// property test drives both through the same randomized update stream,
// mirroring state into fakeBackends for the linear side, and compares every
// pick.

func TestIndexedBalancerMatchesLinear(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastOutstanding, GCAware} {
		for _, n := range []int{1, 2, 3, 7, 16, 100, 1024} {
			for seed := uint64(1); seed <= 5; seed++ {
				pol, n, seed := pol, n, seed
				t.Run(fmt.Sprintf("%s/n=%d/seed=%d", pol, n, seed), func(t *testing.T) {
					idx, err := newBalancer(pol, n)
					if err != nil {
						t.Fatal(err)
					}
					ref, err := newReferenceBalancer(pol)
					if err != nil {
						t.Fatal(err)
					}
					state := make([]fakeBackend, n)
					backs := make([]backend, n)
					for i := range state {
						backs[i] = &state[i]
					}
					rng := sim.NewRNG(seed * 0x9e3779b97f4a7c15)
					for op := 0; op < 4096; op++ {
						i := int(rng.Uint64() % uint64(n))
						switch rng.Uint64() % 8 {
						case 0, 1: // inject
							state[i].out++
							idx.inject(i)
							ref.inject(i)
						case 2: // complete, if anything outstanding there
							if state[i].out > 0 {
								state[i].out--
								idx.complete(i)
								ref.complete(i)
							}
						case 3: // pause transition
							state[i].paused = !state[i].paused
							idx.setPaused(i, state[i].paused)
							ref.setPaused(i, state[i].paused)
						default: // pick and compare
							got, want := idx.pick(backs), ref.pick(backs)
							if got != want {
								t.Fatalf("op %d: indexed pick %+v, linear pick %+v (state %+v)",
									op, got, want, state[:min(n, 16)])
							}
						}
					}
				})
			}
		}
	}
}

// TestMinTreeNonPowerOfTwo: unused leaves must never win, whatever the
// replica count's relation to the tree base.
func TestMinTreeNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 6, 7, 9, 1000} {
		tr := newMinTree(n)
		if got := int(tr.root() & lbIdxMask); got != 0 {
			t.Fatalf("n=%d: fresh tree root = replica %d, want 0", n, got)
		}
		// Load every real replica heavily; the root must still be a real index.
		for i := 0; i < n; i++ {
			tr.set(i, lbKey(false, math.MaxInt32>>1, int32(i)))
		}
		if got := int(tr.root() & lbIdxMask); got != 0 {
			t.Fatalf("n=%d: loaded tree root = replica %d, want 0 (padding leaf must not win)", n, got)
		}
	}
}

// TestLBKeyOrder: the packed key's total order is (paused, count, index) —
// the invariant one integer compare in the tree relies on.
func TestLBKeyOrder(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{lbKey(false, 100, 5), lbKey(true, 0, 0)},   // unpaused beats paused at any load
		{lbKey(false, 1, 9), lbKey(false, 2, 0)},    // fewer outstanding beats lower index
		{lbKey(false, 3, 2), lbKey(false, 3, 4)},    // equal load: lowest index
		{lbKey(true, 1, 0), lbKey(true, 2, 0)},      // paused still ordered by load (fallback)
	}
	for _, c := range cases {
		if c.a >= c.b {
			t.Fatalf("key order violated: %#x >= %#x", c.a, c.b)
		}
	}
}
