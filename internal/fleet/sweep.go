package fleet

import (
	"encoding/json"
	"errors"
	"fmt"

	"chopin/internal/exper"
	"chopin/internal/gc"
	"chopin/internal/obs"
	"chopin/internal/workload"
)

// Sweeps: the fleet experiment grid, (replicas × policy × collector × rate),
// run through the experiment engine so cells execute in parallel on the
// shared worker pool, identical cells deduplicate, and completed cells
// survive process death in the persistent cache (exper generic jobs). Cells
// are submitted up front and collected in grid order, so merged results are
// deterministic regardless of scheduling.

// jobKind is the generic-job namespace fleet cells are cached under.
const jobKind = "fleet"

// Sweep parameterizes a fleet grid over one workload. Base supplies
// everything the axes do not override.
type Sweep struct {
	// Replicas, Policies, Collectors and Rates are the grid axes; empty
	// axes default to the Base config's value (one cell along that axis).
	// Rates are open-loop headroom factors — arrival intervals stretch by
	// the factor, so rate 0.8 offers 1.25× the nominal load and 2.0 offers
	// half of it.
	Replicas   []int
	Policies   []Policy
	Collectors []gc.Kind
	Rates      []float64
	Base       Config
}

// Cell is one grid point's outcome.
type Cell struct {
	Replicas  int     `json:"replicas"`
	Policy    Policy  `json:"policy"`
	Collector gc.Kind `json:"collector"`
	Rate      float64 `json:"rate"`
	OOM       bool    `json:"oom,omitempty"`
	Report    *Report `json:"report,omitempty"`
}

// CriticalRate is the SLO capacity of one (replicas, policy, collector)
// configuration: the highest offered arrival rate, across the sweep's rate
// ladder, whose fleet latency distribution met every SLA rung. Zero means no
// swept rate met the ladder.
type CriticalRate struct {
	Replicas  int     `json:"replicas"`
	Policy    Policy  `json:"policy"`
	Collector gc.Kind `json:"collector"`
	// RatePerSec is the winning offered rate in requests per second;
	// Headroom is the factor that achieved it.
	RatePerSec float64 `json:"rate_per_sec"`
	Headroom   float64 `json:"headroom"`
}

// Result is a completed sweep: every cell in grid order plus the derived
// critical rates.
type Result struct {
	Workload string         `json:"workload"`
	Cells    []Cell         `json:"cells"`
	Critical []CriticalRate `json:"critical"`
}

// cellEnvelope is the cached payload of one cell: either a report or the
// fact that a replica ran out of memory (a stable property of the cell, so
// it must be cacheable; transient errors are returned, not encoded).
type cellEnvelope struct {
	OOM    bool    `json:"oom,omitempty"`
	OOMErr string  `json:"oom_err,omitempty"`
	Report *Report `json:"report,omitempty"`
}

// RunSweep executes the grid on the engine and returns its result. The run
// is resumable: cells completed by an earlier, interrupted sweep are
// satisfied from the engine's cache.
func RunSweep(eng *exper.Engine, d *workload.Descriptor, sw Sweep) (*Result, error) {
	if err := sw.validate(); err != nil {
		return nil, err
	}
	reps := sw.Replicas
	if len(reps) == 0 {
		reps = []int{sw.Base.normalize(d).Replicas}
	}
	pols := sw.Policies
	if len(pols) == 0 {
		pols = []Policy{sw.Base.normalize(d).Policy}
	}
	cols := sw.Collectors
	if len(cols) == 0 {
		cols = []gc.Kind{sw.Base.Run.Collector}
	}
	rates := sw.Rates
	if len(rates) == 0 {
		rates = []float64{sw.Base.Run.OpenLoopHeadroom}
	}

	type submitted struct {
		cell   Cell
		ticket *exper.GenericTicket
	}
	var subs []submitted
	for _, n := range reps {
		for _, p := range pols {
			for _, c := range cols {
				for _, rate := range rates {
					cfg := sw.Base
					cfg.Replicas = n
					cfg.Policy = p
					cfg.Run.Collector = c
					cfg.Run.OpenLoopHeadroom = rate
					cfg.Run.Recorder = nil // cells record through the engine's per-job buffer
					t, err := submitCell(eng, d, cfg)
					if err != nil {
						return nil, err
					}
					subs = append(subs, submitted{
						cell:   Cell{Replicas: n, Policy: p, Collector: c, Rate: rate},
						ticket: t,
					})
				}
			}
		}
	}

	res := &Result{Workload: d.Name}
	for _, s := range subs {
		data, err := s.ticket.Wait()
		if err != nil {
			return nil, fmt.Errorf("fleet: %s cell (n=%d %s %s rate=%v): %w",
				d.Name, s.cell.Replicas, s.cell.Policy, s.cell.Collector, s.cell.Rate, err)
		}
		var env cellEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return nil, fmt.Errorf("fleet: %s cell result: %w", d.Name, err)
		}
		s.cell.OOM = env.OOM
		s.cell.Report = env.Report
		res.Cells = append(res.Cells, s.cell)
	}
	res.Critical = criticalRates(res.Cells)
	return res, nil
}

// submitCell registers one cell as a generic engine job. The payload hash
// covers the descriptor's content and the complete fleet config, so a cell
// is cached for exactly the simulation that would reproduce it.
func submitCell(eng *exper.Engine, d *workload.Descriptor, cfg Config) (*exper.GenericTicket, error) {
	payload := struct {
		Descriptor *workload.Descriptor `json:"descriptor"`
		Config     Config               `json:"config"`
	}{d, cfg}
	return eng.SubmitGeneric(jobKind, payload, func(rec obs.Recorder) ([]byte, error) {
		rep, err := Run(d, cfg, rec)
		if err != nil {
			var oom *workload.ErrOutOfMemory
			if errors.As(err, &oom) {
				return json.Marshal(cellEnvelope{OOM: true, OOMErr: err.Error()})
			}
			return nil, err
		}
		return json.Marshal(cellEnvelope{Report: rep})
	})
}

// criticalRates derives each configuration's SLO capacity from its rate
// ladder. Cells arrive in grid order, so the grouped output is ordered too.
func criticalRates(cells []Cell) []CriticalRate {
	type groupKey struct {
		n int
		p Policy
		c gc.Kind
	}
	var order []groupKey
	best := map[groupKey]CriticalRate{}
	for _, cell := range cells {
		k := groupKey{cell.Replicas, cell.Policy, cell.Collector}
		cr, seen := best[k]
		if !seen {
			cr = CriticalRate{Replicas: k.n, Policy: k.p, Collector: k.c}
			order = append(order, k)
		}
		if !cell.OOM && cell.Report != nil && cell.Report.MeetsAll() &&
			cell.Report.OfferedRate > cr.RatePerSec {
			cr.RatePerSec = cell.Report.OfferedRate
			cr.Headroom = cell.Rate
		}
		best[k] = cr
	}
	out := make([]CriticalRate, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}
