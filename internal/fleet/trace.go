package fleet

import (
	"sync"

	"chopin/internal/latency"
	"chopin/internal/obs"
	"chopin/internal/obs/sample"
	"chopin/internal/sim"
	"chopin/internal/trace"
	"chopin/internal/workload"
)

// Request tracing and blame attribution.
//
// When the fleet runs with an enabled recorder, every request is traced end
// to end on the shared virtual clock: the balancer decision that routed it
// (with the reason — including "routed away from a mid-STW replica"), its
// queue wait on the chosen replica, the dispatch to a worker, the specific
// stop-the-world pauses that preempted it, retry hops, and completion. The
// tracer turns that segment stream into three telemetry families:
//
//   - fleet-route: one event per injection (fresh arrival or retry) carrying
//     the balancer's Decision;
//   - fleet-request: one event per *logical* request at its final
//     completion, carrying the exact blame decomposition
//     QueueNS + GCNS + ServiceNS + RetryNS == end-to-end latency — the same
//     invariant discipline as the span layer's Σstw == pause-total, but in
//     pure int64 arithmetic so equality is exact, not approximate;
//   - fleet-window: per-replica in-flight, goodput and SLO burn rate over a
//     fixed virtual-time window grid at the obs sampler cadence (10ms),
//     stride-doubled like the sampler once the run outgrows the row budget.
//
// The decomposition is computed per attempt from the replica's own pause
// log. With A the attempt's arrival, D its dispatch and E its completion:
//
//	queue   = (D − A) − overlap(pauses, A, D)   // waiting, net of STW
//	gc      = overlap(pauses, A, E)             // STW wall the request sat through
//	service = (E − D) − overlap(pauses, D, E)   // mutator work + pacer stalls
//
// overlap is additive over the split at D, so queue+gc+service == E−A
// identically. Retry overhead is everything before the final attempt's
// arrival (RetryNS = A_final − A_first), which closes the telescoping sum:
// the four components add up to E_final − A_first, the measured end-to-end
// latency. Completions never happen inside a pause (mutators are blocked
// until endPause appends the interval), so at completion time every
// overlapping pause is already in the log.
//
// Disabled-path discipline (PR 3): drive holds a nil *tracer when the
// recorder is disabled, and every method nil-guards — the whole feature
// costs one branch per call site and zero allocations.

// fleetWindowNS is the window grid width: the sampler's 10ms cadence.
const fleetWindowNS = int64(sample.DefaultInterval)

// maxFleetWindowRows bounds emitted windows per replica before the grid
// width doubles, mirroring the sampler's stride doubling. The budget is
// per-replica (one closed window emits one event per replica), so total
// fleet-window volume scales as N × budget and a 1024-replica fleet is not
// starved down to two windows.
const maxFleetWindowRows = 2048

// reqState is the tracer's per-logical-request accumulator. Attempts are
// strictly sequential (a retry is injected at the previous attempt's
// completion instant), so one in-place record per ID suffices.
type reqState struct {
	firstArr int64 // first attempt's arrival; -1 until observed
	dispatch int64 // current attempt's dispatch time
	attempts int32
}

// tracer is the fleet's request-tracing state. A nil tracer is the disabled
// recorder path; every method starts with a nil guard.
type tracer struct {
	rec   obs.Recorder
	bench string
	col   string

	reqs []reqState
	logs []*trace.Log // per-replica pause logs, shared with the replicas

	// Window state, one slot per replica. The grid is anchored at virtual
	// time zero (every replica engine starts there), flushed lazily before
	// the first route/completion past each boundary, so window contents are
	// exact and the stream stays in non-decreasing time order.
	inFlight []int64
	comps    []int64
	viols    []int64
	winStart int64
	winLen   int64
	rows     int64 // closed windows so far (the per-replica event count)
	sloNS    float64 // first SLA rung's latency bound
	budget   float64 // its error budget, 1 − percentile/100
}

var tracerPool = sync.Pool{New: func() any { return new(tracer) }}

// grow returns s resized to n, reusing capacity; fresh elements (and, when
// reusing, stale ones) are left to the caller to reset.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// newTracer builds the tracer for one fleet run; call only with an enabled
// recorder (drive leaves tr nil otherwise). Tracers are pooled: per-request
// and per-replica accumulators are reused across runs so an observed fleet's
// steady-state allocations stay constant in N.
func newTracer(rec obs.Recorder, d *workload.Descriptor, cfg Config, reps []*workload.Replica) *tracer {
	tr := tracerPool.Get().(*tracer)
	tr.rec = rec
	tr.bench = d.Name
	tr.col = cfg.Run.Collector.String()
	tr.reqs = grow(tr.reqs, cfg.Requests)
	tr.logs = grow(tr.logs, len(reps))
	tr.inFlight = grow(tr.inFlight, len(reps))
	tr.comps = grow(tr.comps, len(reps))
	tr.viols = grow(tr.viols, len(reps))
	tr.winStart, tr.winLen, tr.rows = 0, fleetWindowNS, 0
	for i := range tr.reqs {
		tr.reqs[i] = reqState{firstArr: -1}
	}
	for i := range tr.inFlight {
		tr.inFlight[i], tr.comps[i], tr.viols[i] = 0, 0, 0
	}
	sla := latency.DefaultSLAs[0]
	if len(cfg.SLAs) > 0 {
		sla = cfg.SLAs[0]
	}
	tr.sloNS = sla.BoundNS
	tr.budget = 1 - sla.Percentile/100
	for i, rp := range reps {
		tr.logs[i] = rp.Log()
		// The dispatch hook marks the queue-wait / service boundary; closing
		// over the tracer only, not the replica, keeps the hot path a single
		// indexed store.
		rp.SetDispatchHook(tr.dispatched)
	}
	return tr
}

// route records one balancer decision: request id's attempt is injected at
// virtual time tns onto dec.Replica.
func (tr *tracer) route(tns int64, id int32, dec Decision) {
	if tr == nil {
		return
	}
	tr.flushWindows(tns)
	tr.reqs[id].attempts++
	tr.inFlight[dec.Replica]++
	tr.rec.Record(obs.Event{
		Kind:      obs.KindFleetRoute,
		TNS:       tns,
		Benchmark: tr.bench,
		Collector: tr.col,
		Phase:     dec.Reason,
		Value:     float64(id),
		Aux:       float64(dec.Avoided),
		Cycle:     int64(tr.reqs[id].attempts),
		Replica:   dec.Replica + 1,
		InFlight:  tr.inFlight[dec.Replica],
	})
}

// dispatched is the replica dispatch hook: request id left the queue for an
// idle worker at virtual time at. IDs are fleet-unique and attempts are
// sequential, so a flat store indexed by ID is sufficient.
func (tr *tracer) dispatched(id int32, at sim.Time) {
	if tr == nil {
		return
	}
	tr.reqs[id].dispatch = at
}

// complete records one attempt's completion on replica idx. final reports
// whether drive decided this attempt ends the logical request (no retry
// follows); only then is the fleet-request blame event emitted.
func (tr *tracer) complete(idx int, c workload.Completion, final bool) {
	if tr == nil {
		return
	}
	tr.flushWindows(c.End)
	tr.inFlight[idx]--
	tr.comps[idx]++
	lat := float64(c.End - c.Start)
	if lat > tr.sloNS {
		tr.viols[idx]++
	}
	st := &tr.reqs[c.ID]
	if st.firstArr < 0 {
		st.firstArr = c.Start
	}
	if !final {
		return
	}

	pauses := tr.logs[idx].Pauses
	ovAD, _ := overlapPauses(pauses, c.Start, st.dispatch)
	ovDE, _ := overlapPauses(pauses, st.dispatch, c.End)
	_, nPauses := overlapPauses(pauses, c.Start, c.End)
	queue := (st.dispatch - c.Start) - ovAD
	service := (c.End - st.dispatch) - ovDE
	tr.rec.Record(obs.Event{
		Kind:      obs.KindFleetRequest,
		TNS:       c.End,
		Benchmark: tr.bench,
		Collector: tr.col,
		Value:     float64(c.ID),
		Aux:       float64(st.firstArr),
		DurNS:     float64(c.End - st.firstArr),
		Cycle:     int64(st.attempts),
		Replica:   idx + 1,
		QueueNS:   queue,
		GCNS:      ovAD + ovDE,
		ServiceNS: service,
		RetryNS:   c.Start - st.firstArr,
		GCPauses:  int64(nPauses),
	})
}

// finish flushes the window grid through the end of the run, closing with
// one final (possibly partial) window so goodput covers every completion.
func (tr *tracer) finish(endT int64) {
	if tr == nil {
		return
	}
	tr.flushWindows(endT)
	if endT > tr.winStart {
		tr.emitWindows(endT)
	}
}

// flushWindows emits every whole window that closed at or before t. Lazy
// flushing keeps windows exact: drive processes injections and completions
// in non-decreasing virtual-time order, so by the time an event at t
// arrives, the contents of any window ending ≤ t are complete.
func (tr *tracer) flushWindows(t int64) {
	for tr.winStart+tr.winLen <= t {
		tr.emitWindows(tr.winStart + tr.winLen)
		if tr.rows >= maxFleetWindowRows {
			tr.winLen *= 2
		}
	}
}

// emitWindows writes one fleet-window event per replica for the window
// [winStart, end), then opens the next window at end.
func (tr *tracer) emitWindows(end int64) {
	winSec := float64(end-tr.winStart) / 1e9
	for i := range tr.comps {
		good := tr.comps[i] - tr.viols[i]
		var goodput, burn float64
		if winSec > 0 {
			goodput = float64(good) / winSec
		}
		if tr.comps[i] > 0 && tr.budget > 0 {
			burn = float64(tr.viols[i]) / float64(tr.comps[i]) / tr.budget
		}
		tr.rec.Record(obs.Event{
			Kind:      obs.KindFleetWindow,
			TNS:       end,
			Benchmark: tr.bench,
			Collector: tr.col,
			DurNS:     float64(end - tr.winStart),
			Value:     float64(tr.comps[i]),
			Aux:       float64(tr.viols[i]),
			Replica:   i + 1,
			InFlight:  tr.inFlight[i],
			Goodput:   goodput,
			BurnRate:  burn,
		})
		tr.comps[i], tr.viols[i] = 0, 0
	}
	tr.rows++
	tr.winStart = end
}

// release returns the tracer to the pool after a successful run, dropping
// recorder and pause-log references so pooling never extends their lifetime.
func (tr *tracer) release() {
	if tr == nil {
		return
	}
	tr.rec = nil
	for i := range tr.logs {
		tr.logs[i] = nil
	}
	tracerPool.Put(tr)
}

// overlapPauses returns the total STW wall time inside [lo, hi] and the
// number of distinct pauses it intersects. Pauses are appended in
// non-decreasing, non-overlapping time order, so a binary search for the
// first pause ending after lo bounds the scan.
func overlapPauses(pauses []trace.Pause, lo, hi int64) (int64, int) {
	if hi <= lo {
		return 0, 0
	}
	// Binary search: first pause with End > lo.
	i, j := 0, len(pauses)
	for i < j {
		m := int(uint(i+j) >> 1)
		if pauses[m].End <= lo {
			i = m + 1
		} else {
			j = m
		}
	}
	var sum int64
	var n int
	for ; i < len(pauses) && pauses[i].Start < hi; i++ {
		a, b := pauses[i].Start, pauses[i].End
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b > a {
			sum += b - a
			n++
		}
	}
	return sum, n
}
