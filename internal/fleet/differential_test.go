package fleet

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/obs"
	"chopin/internal/workload"
)

// Fleet-level differential oracle: the production run (heap-indexed cluster,
// tournament-tree balancers) and the reference run (linear cluster scan,
// linear balancers) must be byte-identical — same report, same telemetry
// stream event for event — across policies, seeds and fleet sizes up to the
// 1024-replica scale target. Any divergence means an indexed structure
// changed a simulation it was only supposed to accelerate.

// fleetDiffConfig is a small cell sized so the 1024-replica cases stay
// tractable under -race: two arrivals per replica, capped at 512 total
// (simulation cost is per-request, and the point of the big cells is the
// full-size index structures, not the volume), retries enabled to exercise
// the re-injection queue in both modes.
func fleetDiffConfig(n int, pol Policy, seed uint64) Config {
	return Config{
		Replicas:     n,
		Policy:       pol,
		Requests:     min(2*n, 512),
		Arrival:      ArrivalSpec{Kind: ArrivalPoisson},
		RetryAfterNS: 5e6,
		Run: workload.RunConfig{
			HeapMB:     2 * workload.MicroPauseProbe.MinHeapMB,
			Collector:  gc.G1,
			Iterations: 1,
			Events:     60,
			Seed:       seed,
		},
	}
}

// runFleetOnce executes one fleet run and returns its marshalled report plus,
// when observed, the full telemetry stream.
func runFleetOnce(t *testing.T, cfg Config, reference, observed bool) ([]byte, []obs.Event) {
	t.Helper()
	cfg.reference = reference
	var rec obs.Recorder
	var buf obs.Buffer
	if observed {
		rec = &buf
	}
	rep, err := Run(workload.MicroPauseProbe, cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data, buf.Events()
}

func TestFleetDifferential(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastOutstanding, GCAware} {
		for _, seed := range []uint64{1, 42, 1337} {
			for _, n := range []int{1, 4, 64, 1024} {
				pol, seed, n := pol, seed, n
				t.Run(fmt.Sprintf("%s/seed=%d/n=%d", pol, seed, n), func(t *testing.T) {
					t.Parallel()
					// Telemetry is compared wherever it is affordable under
					// -race: everywhere at small N, and on one full-size cell
					// (per-replica GC telemetry makes every observed
					// 1024-replica run cost several seconds; the report
					// comparison still covers the whole grid).
					observed := n < 1024 || (pol == GCAware && seed == 42)
					cfg := fleetDiffConfig(n, pol, seed)
					gotRep, gotEv := runFleetOnce(t, cfg, false, observed)
					wantRep, wantEv := runFleetOnce(t, cfg, true, observed)
					if string(gotRep) != string(wantRep) {
						t.Fatalf("report diverged from reference:\n--- indexed\n%s\n--- reference\n%s",
							gotRep, wantRep)
					}
					if len(gotEv) != len(wantEv) {
						t.Fatalf("telemetry diverged: indexed emitted %d events, reference %d",
							len(gotEv), len(wantEv))
					}
					for i := range gotEv {
						if !reflect.DeepEqual(gotEv[i], wantEv[i]) {
							t.Fatalf("telemetry event %d diverged:\nindexed   %+v\nreference %+v",
								i, gotEv[i], wantEv[i])
						}
					}
				})
			}
		}
	}
}

// TestFleetDifferentialUnobserved repeats the check without a recorder — the
// path the scale benchmark runs — comparing per-replica latency streams
// directly, since there is no telemetry to compare.
func TestFleetDifferentialUnobserved(t *testing.T) {
	for _, pol := range []Policy{LeastOutstanding, GCAware} {
		cfg := fleetDiffConfig(16, pol, 7)
		run := func(reference bool) [][]workload.Event {
			cfg.reference = reference
			reps, _, _, err := drive(workload.MicroPauseProbe, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			out := make([][]workload.Event, len(reps))
			for i, rp := range reps {
				out[i] = rp.Latencies()
			}
			return out
		}
		got, want := run(false), run(true)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: per-replica latencies diverged between indexed and reference runs", pol)
		}
	}
}
