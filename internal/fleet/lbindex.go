package fleet

import "math"

// Indexed balancers: O(log N) picks for 1024-replica fleets.
//
// The linear policies in lb.go rescan every replica per arrival — O(N) per
// pick, the fleet-level twin of the naive scheduler PR 2 replaced. At 1024
// replicas that scan dominates the driver loop, so the production policies
// keep a tournament tree (a flat segment tree) over per-replica keys
// instead: each leaf holds one replica's (paused, outstanding, index) packed
// into a single uint64, each internal node the minimum of its children, so
// the best replica is always at the root. The driver mirrors state changes
// into the tree — outstanding counts on inject/complete, pause bits from the
// collector's pause-transition hook — at O(log N) per update, and pick reads
// the root in O(1).
//
// Key packing is what makes one integer compare implement the whole policy
// order: paused occupies the highest bit considered, then the outstanding
// count, then the replica index. Minimizing the packed key therefore prefers
// unpaused over paused, fewer outstanding over more, and the lowest index on
// exact ties — precisely the linear gcAware scan's order. When every replica
// is paused the root's paused bit is set and the minimum degenerates to
// least-outstanding-among-all, which is exactly the linear policy's
// fallback. leastOutstanding uses the same tree with the paused bit never
// set. The linear policies are retained as differential oracles
// (newReferenceBalancer); the property tests drive both through identical
// update streams and demand identical decisions.

const (
	lbIdxBits   = 31
	lbIdxMask   = 1<<lbIdxBits - 1
	lbCountMask = 1<<lbIdxBits - 1
	lbPausedBit = uint64(1) << (2 * lbIdxBits)
)

// lbKey packs one replica's balancer-visible state into a totally ordered
// key. Outstanding counts are bounded by requests-in-flight (well under
// 2^31); indices by the replica count.
func lbKey(paused bool, count int32, idx int32) uint64 {
	k := uint64(count&lbCountMask)<<lbIdxBits | uint64(idx)
	if paused {
		k |= lbPausedBit
	}
	return k
}

// minTree is the tournament tree: 1-indexed array layout, leaves for n
// replicas at [base, base+n), internal nodes the min of their children.
// Unused leaves hold MaxUint64 so they never win.
type minTree struct {
	base int
	key  []uint64
}

func newMinTree(n int) *minTree {
	base := 1
	for base < n {
		base <<= 1
	}
	t := &minTree{base: base, key: make([]uint64, 2*base)}
	for i := 0; i < n; i++ {
		t.key[base+i] = lbKey(false, 0, int32(i))
	}
	for i := n; i < base; i++ {
		t.key[base+i] = math.MaxUint64
	}
	for i := base - 1; i >= 1; i-- {
		t.key[i] = min(t.key[2*i], t.key[2*i+1])
	}
	return t
}

// set updates leaf i and recomputes the minima on its root path: O(log N).
func (t *minTree) set(i int, k uint64) {
	p := t.base + i
	t.key[p] = k
	for p >>= 1; p >= 1; p >>= 1 {
		m := min(t.key[2*p], t.key[2*p+1])
		if t.key[p] == m {
			break
		}
		t.key[p] = m
	}
}

// root returns the minimum key across all replicas.
func (t *minTree) root() uint64 { return t.key[1] }

// leastOutstandingIndex is the O(log N) least-connections policy: the tree
// orders by (outstanding, index) and pick reads the root.
type leastOutstandingIndex struct {
	tree   *minTree
	counts []int32
}

func newLeastOutstandingIndex(n int) *leastOutstandingIndex {
	return &leastOutstandingIndex{tree: newMinTree(n), counts: make([]int32, n)}
}

func (b *leastOutstandingIndex) pick(reps []backend) Decision {
	return Decision{Replica: int(b.tree.root() & lbIdxMask), Reason: ReasonLeastOutstanding}
}

func (b *leastOutstandingIndex) inject(i int) {
	b.counts[i]++
	b.tree.set(i, lbKey(false, b.counts[i], int32(i)))
}

func (b *leastOutstandingIndex) complete(i int) {
	b.counts[i]--
	b.tree.set(i, lbKey(false, b.counts[i], int32(i)))
}

// setPaused is a no-op: the load-only policy is pause-blind by design.
func (b *leastOutstandingIndex) setPaused(int, bool) {}

// gcAwareIndex is the O(log N) GC-aware policy: the paused bit dominates the
// key, so the root is the least-outstanding unpaused replica whenever one
// exists, and the least-outstanding replica overall (the linear policy's
// fallback) when the whole fleet is mid-pause.
type gcAwareIndex struct {
	tree    *minTree
	counts  []int32
	pausedN int // replicas currently mid-STW, the Decision.Avoided count
}

func newGCAwareIndex(n int) *gcAwareIndex {
	return &gcAwareIndex{tree: newMinTree(n), counts: make([]int32, n)}
}

func (b *gcAwareIndex) pick(reps []backend) Decision {
	k := b.tree.root()
	i := int(k & lbIdxMask)
	if k&lbPausedBit != 0 {
		// Whole fleet paused at once: no routing escape, fall back to load.
		return Decision{Replica: i, Reason: ReasonGCAwareFallback}
	}
	reason := ReasonGCAware
	if b.pausedN > 0 {
		reason = ReasonGCAwareAvoid
	}
	return Decision{Replica: i, Reason: reason, Avoided: b.pausedN}
}

func (b *gcAwareIndex) inject(i int) {
	b.counts[i]++
	b.tree.set(i, b.leafKey(i))
}

func (b *gcAwareIndex) complete(i int) {
	b.counts[i]--
	b.tree.set(i, b.leafKey(i))
}

func (b *gcAwareIndex) setPaused(i int, paused bool) {
	if paused {
		b.pausedN++
	} else {
		b.pausedN--
	}
	k := lbKey(paused, b.counts[i], int32(i))
	b.tree.set(i, k)
}

// leafKey rebuilds leaf i's key preserving its current paused bit.
func (b *gcAwareIndex) leafKey(i int) uint64 {
	return lbKey(b.tree.key[b.tree.base+i]&lbPausedBit != 0, b.counts[i], int32(i))
}
