package fleet

import (
	"errors"
	"math"
	"testing"

	"chopin/internal/exper"
	"chopin/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	base := testConfig(1, RoundRobin)
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		field  string
		mutate func(*Config)
	}{
		{"replicas", func(c *Config) { c.Replicas = -1 }},
		{"requests", func(c *Config) { c.Requests = -5 }},
		{"policy", func(c *Config) { c.Policy = "coin-flip" }},
		{"retry_after_ns", func(c *Config) { c.RetryAfterNS = math.NaN() }},
		{"retry_after_ns", func(c *Config) { c.RetryAfterNS = math.Inf(1) }},
		{"retry_after_ns", func(c *Config) { c.RetryAfterNS = -1 }},
		{"max_retries", func(c *Config) { c.MaxRetries = -2 }},
		{"host_cores", func(c *Config) { c.HostCores = -8 }},
		{"retry_storm_frac", func(c *Config) { c.RetryStormFrac = math.Inf(-1) }},
		{"step_budget", func(c *Config) { c.StepBudget = -1 }},
		{"run.open_loop_headroom", func(c *Config) { c.Run.OpenLoopHeadroom = math.NaN() }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: Validate() = %v, want *ConfigError", tc.field, err)
		}
		if ce.Field != tc.field {
			t.Fatalf("ConfigError.Field = %q, want %q (%v)", ce.Field, tc.field, ce)
		}
	}
}

// TestRunRejectsInvalidConfig: validation runs before any simulation state is
// built, so a bad config surfaces as a typed error from Run.
func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig(1, RoundRobin)
	cfg.Replicas = -3
	_, err := Run(workload.MicroPauseProbe, cfg, nil)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("Run with replicas=-3 returned %v, want *ConfigError", err)
	}
}

// TestSweepRejectsZeroReplicaAxis is the regression test for the zero-replica
// landmine: before typed validation, a 0 in the replicas axis silently
// normalized into a one-replica cell (and a negative count was headed for
// round-robin's modulo). Now the sweep refuses the axis up front.
func TestSweepRejectsZeroReplicaAxis(t *testing.T) {
	eng := exper.New(exper.Options{Workers: 1})
	defer eng.Close()
	sw := testSweep()
	sw.Replicas = []int{1, 0, 2}
	_, err := RunSweep(eng, workload.MicroPauseProbe, sw)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("RunSweep with a zero-replica cell returned %v, want *ConfigError", err)
	}
	if ce.Field != "replicas axis" {
		t.Fatalf("ConfigError.Field = %q, want \"replicas axis\"", ce.Field)
	}
}

// TestSweepValidatesAxes: bad policies and non-finite rates are refused; a
// full 16→1024 replica ladder is accepted.
func TestSweepValidatesAxes(t *testing.T) {
	sw := testSweep()
	sw.Replicas = []int{16, 64, 256, 1024}
	if err := sw.validate(); err != nil {
		t.Fatalf("1024-replica ladder rejected: %v", err)
	}
	bad := testSweep()
	bad.Policies = []Policy{RoundRobin, "coin-flip"}
	if err := bad.validate(); err == nil {
		t.Fatal("unknown policy axis entry accepted")
	}
	bad = testSweep()
	bad.Rates = []float64{1.0, math.Inf(1)}
	if err := bad.validate(); err == nil {
		t.Fatal("infinite rate axis entry accepted")
	}
	bad = testSweep()
	bad.Base.RetryAfterNS = math.NaN()
	if err := bad.validate(); err == nil {
		t.Fatal("invalid base config accepted")
	}
}
