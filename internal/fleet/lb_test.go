package fleet

import "testing"

// fakeBackend is a balancer test double.
type fakeBackend struct {
	out    int
	paused bool
}

func (f *fakeBackend) Outstanding() int { return f.out }
func (f *fakeBackend) Paused() bool     { return f.paused }

func backends(specs ...fakeBackend) []backend {
	out := make([]backend, len(specs))
	for i := range specs {
		s := specs[i]
		out[i] = &s
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	bal, err := newBalancer(RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	reps := backends(fakeBackend{}, fakeBackend{}, fakeBackend{})
	for i := 0; i < 9; i++ {
		if got := bal.pick(reps); got != i%3 {
			t.Fatalf("pick %d = %d, want %d", i, got, i%3)
		}
	}
}

func TestLeastOutstandingPicksMin(t *testing.T) {
	bal, err := newBalancer(LeastOutstanding)
	if err != nil {
		t.Fatal(err)
	}
	if got := bal.pick(backends(fakeBackend{out: 4}, fakeBackend{out: 1}, fakeBackend{out: 3})); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	// Ties break to the lowest index.
	if got := bal.pick(backends(fakeBackend{out: 2}, fakeBackend{out: 2})); got != 0 {
		t.Fatalf("tie pick = %d, want 0", got)
	}
}

func TestGCAwareRoutesAroundPauses(t *testing.T) {
	bal, err := newBalancer(GCAware)
	if err != nil {
		t.Fatal(err)
	}
	// The least-loaded replica is paused: route to the least-loaded healthy one.
	got := bal.pick(backends(
		fakeBackend{out: 1, paused: true},
		fakeBackend{out: 5},
		fakeBackend{out: 3},
	))
	if got != 2 {
		t.Fatalf("pick = %d, want 2 (least-loaded unpaused)", got)
	}
	// Whole fleet paused: degrade to plain least-outstanding.
	got = bal.pick(backends(
		fakeBackend{out: 5, paused: true},
		fakeBackend{out: 2, paused: true},
	))
	if got != 1 {
		t.Fatalf("all-paused pick = %d, want 1", got)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"round-robin", "least-outstanding", "gc-aware"} {
		if _, err := ParsePolicy(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("unknown policy parsed")
	}
	if _, err := newBalancer("random"); err == nil {
		t.Fatal("unknown policy built")
	}
}
