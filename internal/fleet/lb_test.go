package fleet

import "testing"

// fakeBackend is a balancer test double.
type fakeBackend struct {
	out    int
	paused bool
}

func (f *fakeBackend) Outstanding() int { return f.out }
func (f *fakeBackend) Paused() bool     { return f.paused }

func backends(specs ...fakeBackend) []backend {
	out := make([]backend, len(specs))
	for i := range specs {
		s := specs[i]
		out[i] = &s
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	bal, err := newReferenceBalancer(RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	reps := backends(fakeBackend{}, fakeBackend{}, fakeBackend{})
	for i := 0; i < 9; i++ {
		got := bal.pick(reps)
		if got.Replica != i%3 {
			t.Fatalf("pick %d = %d, want %d", i, got.Replica, i%3)
		}
		if got.Reason != ReasonRoundRobin || got.Avoided != 0 {
			t.Fatalf("pick %d decision = %+v", i, got)
		}
	}
}

func TestLeastOutstandingPicksMin(t *testing.T) {
	bal, err := newReferenceBalancer(LeastOutstanding)
	if err != nil {
		t.Fatal(err)
	}
	got := bal.pick(backends(fakeBackend{out: 4}, fakeBackend{out: 1}, fakeBackend{out: 3}))
	if got.Replica != 1 || got.Reason != ReasonLeastOutstanding {
		t.Fatalf("pick = %+v, want replica 1", got)
	}
	// Ties break to the lowest index.
	if got := bal.pick(backends(fakeBackend{out: 2}, fakeBackend{out: 2})); got.Replica != 0 {
		t.Fatalf("tie pick = %+v, want replica 0", got)
	}
	// Pauses are invisible to the load-only policy: it happily routes into
	// a paused replica when that one has the least outstanding.
	got = bal.pick(backends(fakeBackend{out: 9}, fakeBackend{out: 1, paused: true}))
	if got.Replica != 1 || got.Avoided != 0 {
		t.Fatalf("pause-blind pick = %+v, want replica 1", got)
	}
}

func TestGCAwareRoutesAroundPauses(t *testing.T) {
	bal, err := newReferenceBalancer(GCAware)
	if err != nil {
		t.Fatal(err)
	}
	// The least-loaded replica is mid-STW: route to the least-loaded healthy
	// one, and say so — one replica avoided, reason gc-aware-avoid.
	got := bal.pick(backends(
		fakeBackend{out: 1, paused: true},
		fakeBackend{out: 5},
		fakeBackend{out: 3},
	))
	if got.Replica != 2 {
		t.Fatalf("pick = %+v, want replica 2 (least-loaded unpaused)", got)
	}
	if got.Reason != ReasonGCAwareAvoid || got.Avoided != 1 {
		t.Fatalf("decision = %+v, want gc-aware-avoid with 1 avoided", got)
	}
}

func TestGCAwareNoPausesIsLeastOutstanding(t *testing.T) {
	bal, err := newReferenceBalancer(GCAware)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing paused: identical choice to least-outstanding, reported as a
	// routine gc-aware pick with nothing avoided.
	got := bal.pick(backends(fakeBackend{out: 4}, fakeBackend{out: 0}, fakeBackend{out: 2}))
	if got.Replica != 1 || got.Reason != ReasonGCAware || got.Avoided != 0 {
		t.Fatalf("decision = %+v, want replica 1, gc-aware, 0 avoided", got)
	}
	// Ties among unpaused replicas break to the lowest index, like
	// least-outstanding.
	got = bal.pick(backends(fakeBackend{out: 3}, fakeBackend{out: 3}))
	if got.Replica != 0 {
		t.Fatalf("tie decision = %+v, want replica 0", got)
	}
}

func TestGCAwareSkipsEveryPausedReplica(t *testing.T) {
	bal, err := newReferenceBalancer(GCAware)
	if err != nil {
		t.Fatal(err)
	}
	// Three of four mid-STW: the sole healthy replica wins regardless of
	// load, and the decision counts all three dodges.
	got := bal.pick(backends(
		fakeBackend{out: 0, paused: true},
		fakeBackend{out: 0, paused: true},
		fakeBackend{out: 99},
		fakeBackend{out: 0, paused: true},
	))
	if got.Replica != 2 || got.Reason != ReasonGCAwareAvoid || got.Avoided != 3 {
		t.Fatalf("decision = %+v, want replica 2, gc-aware-avoid, 3 avoided", got)
	}
}

func TestGCAwareAllPausedFallsBack(t *testing.T) {
	bal, err := newReferenceBalancer(GCAware)
	if err != nil {
		t.Fatal(err)
	}
	// Whole fleet paused at once: degrade to plain least-outstanding, and
	// label the decision a fallback (nothing was avoidable).
	got := bal.pick(backends(
		fakeBackend{out: 5, paused: true},
		fakeBackend{out: 2, paused: true},
	))
	if got.Replica != 1 {
		t.Fatalf("all-paused pick = %+v, want replica 1", got)
	}
	if got.Reason != ReasonGCAwareFallback || got.Avoided != 0 {
		t.Fatalf("all-paused decision = %+v, want gc-aware-fallback", got)
	}
	// Fallback ties also break to the lowest index.
	got = bal.pick(backends(
		fakeBackend{out: 7, paused: true},
		fakeBackend{out: 7, paused: true},
	))
	if got.Replica != 0 || got.Reason != ReasonGCAwareFallback {
		t.Fatalf("all-paused tie decision = %+v, want replica 0 fallback", got)
	}
}

// TestGCAwareSingleReplica: with one replica there is never a choice — the
// decision is the replica, paused or not, with the honest reason.
func TestGCAwareSingleReplica(t *testing.T) {
	bal, err := newReferenceBalancer(GCAware)
	if err != nil {
		t.Fatal(err)
	}
	if got := bal.pick(backends(fakeBackend{out: 3})); got.Replica != 0 || got.Reason != ReasonGCAware {
		t.Fatalf("decision = %+v", got)
	}
	if got := bal.pick(backends(fakeBackend{out: 3, paused: true})); got.Replica != 0 || got.Reason != ReasonGCAwareFallback {
		t.Fatalf("paused decision = %+v", got)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"round-robin", "least-outstanding", "gc-aware"} {
		if _, err := ParsePolicy(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("unknown policy parsed")
	}
	if _, err := newBalancer("random", 1); err == nil {
		t.Fatal("unknown policy built")
	}
	if _, err := newReferenceBalancer("random"); err == nil {
		t.Fatal("unknown reference policy built")
	}
}
