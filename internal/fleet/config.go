package fleet

import (
	"fmt"
	"math"
)

// Typed configuration validation. A fleet cell is cached under its config's
// content hash, so a nonsense config must be rejected with a diagnosable
// error before it can run (or worse, silently coerce into a different cell:
// a zero-replica cell is a config bug, not a one-replica fleet).

// ConfigError reports a rejected fleet configuration: which field, and why.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("fleet: invalid config: %s: %s", e.Field, e.Reason)
}

// finite rejects NaN and ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks a fleet config before normalize fills its defaults. Zero
// values of optional fields are legal (they select defaults); explicitly
// out-of-range values — negative replica counts, non-finite rates — return a
// *ConfigError.
func (cfg Config) Validate() error {
	if cfg.Replicas < 0 {
		return &ConfigError{"replicas", fmt.Sprintf("must be >= 1 (got %d; 0 selects the default)", cfg.Replicas)}
	}
	if cfg.Requests < 0 {
		return &ConfigError{"requests", fmt.Sprintf("must be >= 0 (got %d)", cfg.Requests)}
	}
	if cfg.Policy != "" {
		if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
			return &ConfigError{"policy", err.Error()}
		}
	}
	if !finite(cfg.RetryAfterNS) || cfg.RetryAfterNS < 0 {
		return &ConfigError{"retry_after_ns", fmt.Sprintf("must be a finite non-negative duration (got %v)", cfg.RetryAfterNS)}
	}
	if cfg.MaxRetries < 0 {
		return &ConfigError{"max_retries", fmt.Sprintf("must be >= 0 (got %d)", cfg.MaxRetries)}
	}
	if cfg.HostCores < 0 {
		return &ConfigError{"host_cores", fmt.Sprintf("must be >= 0 (got %d)", cfg.HostCores)}
	}
	if !finite(cfg.RetryStormFrac) || cfg.RetryStormFrac < 0 {
		return &ConfigError{"retry_storm_frac", fmt.Sprintf("must be a finite non-negative fraction (got %v)", cfg.RetryStormFrac)}
	}
	if cfg.StepBudget < 0 {
		return &ConfigError{"step_budget", fmt.Sprintf("must be >= 0 (got %d)", cfg.StepBudget)}
	}
	if !finite(cfg.Run.OpenLoopHeadroom) || cfg.Run.OpenLoopHeadroom < 0 {
		return &ConfigError{"run.open_loop_headroom", fmt.Sprintf("must be a finite non-negative factor (got %v)", cfg.Run.OpenLoopHeadroom)}
	}
	return nil
}

// validate checks a sweep's grid axes. Empty axes are legal (they default to
// the base config's value); present entries must each describe a runnable
// cell — a replica ladder of positive fleet sizes, finite rates, known
// policies.
func (sw Sweep) validate() error {
	for _, n := range sw.Replicas {
		if n < 1 {
			return &ConfigError{"replicas axis", fmt.Sprintf("fleet sizes must be >= 1 (got %d)", n)}
		}
	}
	for _, p := range sw.Policies {
		if _, err := ParsePolicy(string(p)); err != nil {
			return &ConfigError{"policies axis", err.Error()}
		}
	}
	for _, r := range sw.Rates {
		if !finite(r) || r < 0 {
			return &ConfigError{"rates axis", fmt.Sprintf("headroom factors must be finite and non-negative (got %v)", r)}
		}
	}
	return sw.Base.Validate()
}
