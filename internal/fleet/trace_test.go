package fleet

import (
	"encoding/json"
	"testing"

	"chopin/internal/exper"
	"chopin/internal/obs"
	"chopin/internal/sim"
	"chopin/internal/workload"
)

// collectTrace runs one traced fleet and returns the captured event stream.
func collectTrace(t *testing.T, cfg Config) []obs.Event {
	t.Helper()
	var buf obs.Buffer
	if _, err := Run(workload.MicroPauseProbe, cfg, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Events()
}

// TestBlameSumsExactly is the tentpole invariant: for every completed
// logical request, the four blame components sum *exactly* — int64 equality,
// no epsilon — to the measured end-to-end latency, across seeds, balancer
// policies and retry configurations.
func TestBlameSumsExactly(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastOutstanding, GCAware} {
		for _, seed := range []uint64{42, 7, 1234} {
			cfg := testConfig(3, pol)
			cfg.Run.Seed = seed
			cfg.Arrival = ArrivalSpec{Kind: ArrivalPoisson}
			cfg.RetryAfterNS = 4e6 // tight enough that some requests retry
			events := collectTrace(t, cfg)

			var requests int
			for _, e := range events {
				if e.Kind != obs.KindFleetRequest {
					continue
				}
				requests++
				e2e := e.TNS - int64(e.Aux)
				if int64(e.DurNS) != e2e {
					t.Fatalf("%s seed %d: request %v: DurNS %v != TNS-firstArr %d",
						pol, seed, e.Value, e.DurNS, e2e)
				}
				sum := e.QueueNS + e.GCNS + e.ServiceNS + e.RetryNS
				if sum != e2e {
					t.Fatalf("%s seed %d: request %v: blame %d+%d+%d+%d = %d != e2e %d",
						pol, seed, e.Value, e.QueueNS, e.GCNS, e.ServiceNS, e.RetryNS, sum, e2e)
				}
				if e.QueueNS < 0 || e.GCNS < 0 || e.ServiceNS < 0 || e.RetryNS < 0 {
					t.Fatalf("%s seed %d: request %v: negative blame component: %+v",
						pol, seed, e.Value, e)
				}
				if e.Replica < 1 || e.Replica > cfg.Replicas {
					t.Fatalf("%s seed %d: request %v on replica %d of %d",
						pol, seed, e.Value, e.Replica, cfg.Replicas)
				}
				if e.Cycle < 1 {
					t.Fatalf("%s seed %d: request %v finished with %d attempts",
						pol, seed, e.Value, e.Cycle)
				}
				if e.RetryNS > 0 && e.Cycle < 2 {
					t.Fatalf("%s seed %d: request %v has retry overhead %d on a single attempt",
						pol, seed, e.Value, e.RetryNS)
				}
			}
			if requests != cfg.Requests {
				t.Fatalf("%s seed %d: %d fleet-request events, want exactly %d (one per logical request)",
					pol, seed, requests, cfg.Requests)
			}
			if requests < 100 {
				t.Fatalf("property test too small: %d requests", requests)
			}
		}
	}
}

// TestBlameAccountsGCTime: over the whole probe run the decomposition must
// actually attribute pause time — a workload named pause-probe collides with
// STW pauses — and every route decision must reference a real replica with a
// legal reason.
func TestBlameAccountsGCTime(t *testing.T) {
	cfg := testConfig(2, GCAware)
	events := collectTrace(t, cfg)

	var gcTotal, routes, avoided int64
	reasons := map[string]bool{}
	for _, e := range events {
		switch e.Kind {
		case obs.KindFleetRequest:
			gcTotal += e.GCNS
		case obs.KindFleetRoute:
			routes++
			reasons[e.Phase] = true
			avoided += int64(e.Aux)
			if e.Replica < 1 || e.Replica > 2 {
				t.Fatalf("route to replica %d", e.Replica)
			}
			switch e.Phase {
			case ReasonGCAware, ReasonGCAwareAvoid, ReasonGCAwareFallback:
			default:
				t.Fatalf("gc-aware fleet produced route reason %q", e.Phase)
			}
		}
	}
	if routes != int64(cfg.Requests) {
		t.Fatalf("%d route events, want %d", routes, cfg.Requests)
	}
	if gcTotal == 0 {
		t.Fatal("no GC time attributed to any request of a pause-heavy workload")
	}
	if !reasons[ReasonGCAware] {
		t.Fatalf("route reasons seen: %v", reasons)
	}
}

// TestWindowStream: the window grid is per-replica, time-ordered, gapless
// and internally consistent (violations never exceed completions, burn rate
// zero iff no violations).
func TestWindowStream(t *testing.T) {
	cfg := testConfig(2, RoundRobin)
	events := collectTrace(t, cfg)

	next := map[int]int64{} // replica → expected next window start
	var windows int
	for _, e := range events {
		if e.Kind != obs.KindFleetWindow {
			continue
		}
		windows++
		if e.Replica < 1 || e.Replica > 2 {
			t.Fatalf("window for replica %d", e.Replica)
		}
		start := e.TNS - int64(e.DurNS)
		if want, ok := next[e.Replica]; ok && start != want {
			t.Fatalf("replica %d window starts at %d, want %d (gap or overlap)",
				e.Replica, start, want)
		}
		next[e.Replica] = e.TNS
		if e.Aux > e.Value {
			t.Fatalf("window has %v violations of %v completions", e.Aux, e.Value)
		}
		if (e.BurnRate > 0) != (e.Aux > 0) {
			t.Fatalf("burn rate %v with %v violations", e.BurnRate, e.Aux)
		}
		if e.InFlight < 0 {
			t.Fatalf("negative in-flight %d", e.InFlight)
		}
	}
	if windows == 0 {
		t.Fatal("no fleet-window events recorded")
	}
	// Both replicas cover the identical grid.
	if next[1] != next[2] {
		t.Fatalf("replica windows end at %d vs %d", next[1], next[2])
	}
}

// TestTraceDoesNotPerturb: the observed run must produce byte-identical
// reports to the unobserved one — recording is read-only on the simulation.
func TestTraceDoesNotPerturb(t *testing.T) {
	cfg := testConfig(2, GCAware)
	cfg.RetryAfterNS = 4e6
	bare, err := Run(workload.MicroPauseProbe, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf obs.Buffer
	traced, err := Run(workload.MicroPauseProbe, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(bare)
	b, _ := json.Marshal(traced)
	if string(a) != string(b) {
		t.Fatalf("tracing perturbed the simulation:\n--- bare\n%s\n--- traced\n%s", a, b)
	}
	if len(buf.Events()) == 0 {
		t.Fatal("traced run recorded nothing")
	}
}

// TestTraceWorkerCountInvariant: per-run trace content must not depend on
// how many pool workers executed the sweep. Jobs flush their telemetry
// buffers in completion order, so the global interleaving legitimately
// differs — but each run's (job key's) event subsequence must be
// byte-identical between a serial and a parallel engine.
func TestTraceWorkerCountInvariant(t *testing.T) {
	collect := func(workers int) map[string]string {
		var buf obs.Buffer
		eng := exper.New(exper.Options{Workers: workers, Recorder: &buf})
		sw := testSweep()
		sw.Base.RetryAfterNS = 4e6
		if _, err := RunSweep(eng, workload.MicroPauseProbe, sw); err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		byRun := map[string][]obs.Event{}
		for _, e := range buf.Events() {
			switch e.Kind {
			case obs.KindJobStart, obs.KindJobFinish, obs.KindCacheHit,
				obs.KindCacheMiss, obs.KindMinHeap, obs.KindRunEnd,
				obs.KindSchedWorker:
				// Engine bookkeeping carries host wall-clock time and
				// scheduler identity; only virtual-clock telemetry is
				// worker-count invariant.
				continue
			}
			byRun[e.Run] = append(byRun[e.Run], e)
		}
		out := make(map[string]string, len(byRun))
		for run, evs := range byRun {
			data, err := json.Marshal(evs)
			if err != nil {
				t.Fatal(err)
			}
			out[run] = string(data)
		}
		return out
	}
	serial := collect(1)
	parallel := collect(4)
	if len(serial) == 0 {
		t.Fatal("sweep recorded no runs")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("runs recorded: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for run, want := range serial {
		got, ok := parallel[run]
		if !ok {
			t.Fatalf("run %s missing from the parallel trace", run)
		}
		if got != want {
			t.Fatalf("run %s trace differs between 1 and 4 workers:\n--- serial\n%s\n--- parallel\n%s",
				run, want, got)
		}
	}
}

// TestTraceDeterministic: two observed runs of one config capture identical
// event streams.
func TestTraceDeterministic(t *testing.T) {
	cfg := testConfig(2, LeastOutstanding)
	cfg.RetryAfterNS = 4e6
	a, _ := json.Marshal(collectTrace(t, cfg))
	b, _ := json.Marshal(collectTrace(t, cfg))
	if string(a) != string(b) {
		t.Fatal("fleet trace not deterministic across identical runs")
	}
}

// BenchmarkFleetTelemetry prices the request-tracing layer. recorder-off is
// the baseline every non-observed fleet run pays (and must stay within noise
// of the pre-tracing fleet driver); recorder-on shows the cost of full
// capture; hook-disabled isolates the one-branch discipline — with no
// recorder the tracer is a nil pointer and every hot-path hook must cost
// zero allocations (the bench gate fails on any, since the committed
// baseline records zero).
func BenchmarkFleetTelemetry(b *testing.B) {
	cfg := testConfig(2, GCAware)
	cfg.RetryAfterNS = 4e6
	b.Run("recorder-off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(workload.MicroPauseProbe, cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recorder-on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf obs.Buffer
			if _, err := Run(workload.MicroPauseProbe, cfg, &buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hook-disabled", func(b *testing.B) {
		var tr *tracer
		dec := Decision{Replica: 1, Reason: ReasonRoundRobin}
		b.ReportAllocs()
		// 4096 hook quads per op: at -benchtime=1x a single quad is timer
		// noise, and the gate compares ns/op medians.
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4096; j++ {
				tr.route(int64(j), int32(j), dec)
				tr.dispatched(int32(j), sim.Time(j))
				tr.complete(0, workload.Completion{ID: int32(j)}, true)
				tr.finish(int64(j))
			}
		}
	})
}
