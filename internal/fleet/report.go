package fleet

import (
	"chopin/internal/obs"
	"chopin/internal/stats"
	"chopin/internal/workload"
)

// ReplicaStats summarizes one replica's serving record.
type ReplicaStats struct {
	Index  int   `json:"index"`
	Served int64 `json:"served"`
	// Latency quantiles over the replica's completions (arrival to
	// completion, virtual nanoseconds).
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P99NS  float64 `json:"p99_ns"`
	P999NS float64 `json:"p999_ns"`
	// Resource totals for the whole run.
	GCCPUNS     float64 `json:"gc_cpu_ns"`
	TaskClockNS float64 `json:"task_clock_ns"`
	HeapPeakMB  float64 `json:"heap_peak_mb"`
	WarmupIter  int     `json:"warmup_iter"`
}

// SLAResult grades the fleet distribution against one SLA rung.
type SLAResult struct {
	Percentile float64 `json:"percentile"`
	BoundNS    float64 `json:"bound_ns"`
	// LatencyNS is the fleet's achieved latency at the rung's percentile.
	LatencyNS float64 `json:"latency_ns"`
	Met       bool    `json:"met"`
}

// Report is the outcome of one fleet run: fleet-level SLO metrics, the
// anomaly signals (retry storm, host CPU pressure) and per-replica detail.
// It is a pure function of (descriptor, Config) and marshals
// deterministically, which the sweep cache and the determinism golden test
// both rely on.
type Report struct {
	Workload  string      `json:"workload"`
	Collector string      `json:"collector"`
	Policy    Policy      `json:"policy"`
	Arrival   ArrivalKind `json:"arrival"`
	Replicas  int         `json:"replicas"`

	// Requests is the offered arrival count; Completions additionally
	// counts retry attempts; Retries counts re-injections.
	Requests    int   `json:"requests"`
	Completions int64 `json:"completions"`
	Retries     int64 `json:"retries"`
	// RetryStorm flags Retries/Requests above the configured fraction —
	// the positive-feedback regime where timeouts add load to an already
	// saturated fleet.
	RetryRate  float64 `json:"retry_rate"`
	RetryStorm bool    `json:"retry_storm"`

	// WallNS is the virtual time from first arrival to last completion;
	// OfferedRate the mean arrival rate in requests per second.
	WallNS      float64 `json:"wall_ns"`
	OfferedRate float64 `json:"offered_rate"`

	// Fleet-wide latency distribution, over every completion on every
	// replica (retry attempts included — each is a served request).
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P99NS  float64 `json:"p99_ns"`
	P999NS float64 `json:"p999_ns"`

	// Resource totals and the co-location pressure signal: HostCPU is
	// ΣTaskClock / (WallNS × HostCores), the fraction of the co-located
	// host's cycle budget the fleet consumed. Above 1.0 the placement is
	// infeasible — real replicas would slow each other — flagged as
	// HostSaturated rather than simulated, so the per-replica simulations
	// stay independent of placement.
	GCCPUNS       float64 `json:"gc_cpu_ns"`
	TaskClockNS   float64 `json:"task_clock_ns"`
	HostCores     int     `json:"host_cores"`
	HostCPU       float64 `json:"host_cpu"`
	HostSaturated bool    `json:"host_saturated"`

	SLAs       []SLAResult    `json:"slas"`
	PerReplica []ReplicaStats `json:"per_replica"`
}

// MeetsAll reports whether every SLA rung was met.
func (r *Report) MeetsAll() bool {
	for _, s := range r.SLAs {
		if !s.Met {
			return false
		}
	}
	return true
}

// buildReport computes the fleet report from the drained replicas.
func buildReport(d *workload.Descriptor, cfg Config, reps []*workload.Replica, retried int64) *Report {
	rep := &Report{
		Workload:  d.Name,
		Collector: cfg.Run.Collector.String(),
		Policy:    cfg.Policy,
		Arrival:   cfg.Arrival.Kind,
		Replicas:  cfg.Replicas,
		Requests:  cfg.Requests,
		Retries:   retried,
		HostCores: cfg.HostCores,
	}

	var (
		all      []float64
		firstArr = int64(-1)
		lastEnd  int64
	)
	for _, rp := range reps {
		evs := rp.Latencies()
		lats := make([]float64, len(evs))
		for i, ev := range evs {
			lats[i] = float64(ev.End - ev.Start)
			if firstArr < 0 || ev.Start < firstArr {
				firstArr = ev.Start
			}
			if ev.End > lastEnd {
				lastEnd = ev.End
			}
		}
		all = append(all, lats...)
		q := stats.Tail(lats, 50, 99, 99.9)
		rep.PerReplica = append(rep.PerReplica, ReplicaStats{
			Index:       rp.Index(),
			Served:      rp.Served(),
			MeanNS:      stats.Mean(lats),
			P50NS:       q[0],
			P99NS:       q[1],
			P999NS:      q[2],
			GCCPUNS:     rp.GCCPU(),
			TaskClockNS: rp.TaskClock(),
			HeapPeakMB:  rp.HeapPeak() / (1 << 20),
			WarmupIter:  rp.WarmupIter(),
		})
		rep.Completions += rp.Served()
		rep.GCCPUNS += rp.GCCPU()
		rep.TaskClockNS += rp.TaskClock()
	}

	rep.MeanNS = stats.Mean(all)
	q := stats.Tail(all, 50, 99, 99.9)
	rep.P50NS, rep.P99NS, rep.P999NS = q[0], q[1], q[2]

	if firstArr >= 0 && lastEnd > firstArr {
		rep.WallNS = float64(lastEnd - firstArr)
	}
	if rep.WallNS > 0 {
		rep.OfferedRate = float64(rep.Requests) / (rep.WallNS / 1e9)
		rep.HostCPU = rep.TaskClockNS / (rep.WallNS * float64(cfg.HostCores))
		rep.HostSaturated = rep.HostCPU > 1
	}
	if rep.Requests > 0 {
		rep.RetryRate = float64(rep.Retries) / float64(rep.Requests)
		rep.RetryStorm = rep.RetryRate > cfg.RetryStormFrac
	}

	for _, sla := range cfg.SLAs {
		got := stats.Percentile(all, sla.Percentile)
		rep.SLAs = append(rep.SLAs, SLAResult{
			Percentile: sla.Percentile,
			BoundNS:    sla.BoundNS,
			LatencyNS:  got,
			Met:        got <= sla.BoundNS,
		})
	}
	return rep
}

// recordReport emits the fleet's telemetry: one KindFleetReplica event per
// replica and one KindFleetReport for the fleet. Timestamps are virtual (the
// end of the run), so recorded telemetry is as deterministic as the report.
func recordReport(rec obs.Recorder, d *workload.Descriptor, cfg Config, reps []*workload.Replica, rep *Report) {
	if !rec.Enabled() {
		return
	}
	tns := int64(rep.WallNS)
	for i, rs := range rep.PerReplica {
		rec.Record(obs.Event{
			Kind:      obs.KindFleetReplica,
			TNS:       tns,
			Benchmark: d.Name,
			Collector: rep.Collector,
			Value:     float64(rs.Index),
			Aux:       float64(reps[i].Served()),
			DurNS:     rs.P99NS,
			CPUNS:     rs.TaskClockNS,
			HeapUsed:  rs.HeapPeakMB * (1 << 20),
			Replica:   rs.Index + 1,
		})
	}
	rec.Record(obs.Event{
		Kind:      obs.KindFleetReport,
		TNS:       tns,
		Benchmark: d.Name,
		Collector: rep.Collector,
		Value:     float64(rep.Replicas),
		Aux:       float64(rep.Completions),
		DurNS:     rep.P99NS,
		CPUNS:     rep.TaskClockNS,
		StallFrac: rep.HostCPU,
	})
}
