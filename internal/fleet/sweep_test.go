package fleet

import (
	"encoding/json"
	"testing"

	"chopin/internal/exper"
	"chopin/internal/gc"
	"chopin/internal/workload"
)

func testSweep() Sweep {
	base := testConfig(1, RoundRobin)
	base.Requests = 0 // derive per cell from replicas × events
	return Sweep{
		Replicas:   []int{1, 2},
		Policies:   []Policy{RoundRobin, GCAware},
		Collectors: []gc.Kind{gc.G1},
		Rates:      []float64{1.0, 2.0},
		Base:       base,
	}
}

func runSweep(t *testing.T, workers int, cache *exper.Cache) *Result {
	t.Helper()
	eng := exper.New(exper.Options{Workers: workers, Cache: cache})
	defer eng.Close()
	res, err := RunSweep(eng, workload.MicroPauseProbe, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSweepDeterministicAcrossWorkers: the merged sweep result must be
// byte-identical however many pool workers execute it — collection order is
// the grid's, not the scheduler's.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	marshal := func(r *Result) string {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	serial := marshal(runSweep(t, 1, nil))
	parallel := marshal(runSweep(t, 4, nil))
	if serial != parallel {
		t.Fatalf("sweep not worker-count invariant:\n--- workers=1\n%s\n--- workers=4\n%s",
			serial, parallel)
	}
}

// TestSweepShape checks grid order and the derived critical rates.
func TestSweepShape(t *testing.T) {
	res := runSweep(t, 2, nil)
	if len(res.Cells) != 2*2*1*2 {
		t.Fatalf("cells = %d, want 8", len(res.Cells))
	}
	// Grid order: replicas outermost, rates innermost.
	if res.Cells[0].Replicas != 1 || res.Cells[0].Rate != 1.0 ||
		res.Cells[1].Rate != 2.0 || res.Cells[4].Replicas != 2 {
		t.Fatalf("cells out of grid order: %+v", res.Cells[:5])
	}
	if len(res.Critical) != 4 { // (replicas × policy) groups
		t.Fatalf("critical rates = %d, want 4", len(res.Critical))
	}
	for _, cell := range res.Cells {
		if cell.Report == nil {
			t.Fatalf("cell %+v missing report", cell)
		}
	}
	for _, cr := range res.Critical {
		if cr.RatePerSec > 0 && cr.Headroom == 0 {
			t.Fatalf("critical rate %+v without its headroom", cr)
		}
	}
}

// TestSweepResumesFromCache: a second engine over the same cache satisfies
// every cell without executing, and returns the identical result.
func TestSweepResumesFromCache(t *testing.T) {
	dir := t.TempDir()
	cache, err := exper.OpenCache(dir, exper.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	cold := runSweep(t, 2, cache)
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	cache2, err := exper.OpenCache(dir, exper.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer cache2.Close()
	eng := exper.New(exper.Options{Workers: 2, Cache: cache2})
	defer eng.Close()
	warm, err := RunSweep(eng, workload.MicroPauseProbe, testSweep())
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Executed != 0 || st.CacheHits != int64(len(warm.Cells)) {
		t.Fatalf("warm sweep executed %d cells, %d cache hits; want 0 and %d",
			st.Executed, st.CacheHits, len(warm.Cells))
	}
	a, _ := json.Marshal(cold)
	b, _ := json.Marshal(warm)
	if string(a) != string(b) {
		t.Fatalf("cached sweep drifted:\n--- cold\n%s\n--- warm\n%s", a, b)
	}
}

// TestSweepOOMCellIsReported: a heap below minimum yields an OOM cell, not a
// failed sweep, and the outcome is cacheable.
func TestSweepOOMCellIsReported(t *testing.T) {
	sw := testSweep()
	sw.Replicas = []int{1}
	sw.Policies = []Policy{RoundRobin}
	sw.Rates = []float64{1.0}
	sw.Base.Run.HeapMB = 1 // far below MicroPauseProbe's 20MB minimum

	eng := exper.New(exper.Options{Workers: 1})
	defer eng.Close()
	res, err := RunSweep(eng, workload.MicroPauseProbe, sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || !res.Cells[0].OOM || res.Cells[0].Report != nil {
		t.Fatalf("OOM cell = %+v", res.Cells[0])
	}
	if len(res.Critical) != 1 || res.Critical[0].RatePerSec != 0 {
		t.Fatalf("critical rate from an all-OOM ladder = %+v", res.Critical)
	}
}

// BenchmarkFleetSweep is the tier-1 perf probe for the fleet layer: one
// four-cell sweep (2 replicas × 2 policies) over the pause-probe micro
// workload, engine and cells re-run every iteration.
func BenchmarkFleetSweep(b *testing.B) {
	base := testConfig(1, RoundRobin)
	base.Requests = 0
	sw := Sweep{
		Replicas: []int{2},
		Policies: []Policy{RoundRobin, GCAware},
		Rates:    []float64{1.0, 2.0},
		Base:     base,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := exper.New(exper.Options{Workers: 2})
		if _, err := RunSweep(eng, workload.MicroPauseProbe, sw); err != nil {
			b.Fatal(err)
		}
		eng.Close()
	}
}
