package fleet

import (
	"math"
	"testing"

	"chopin/internal/sim"
)

// TestConstantArrivalExact: the constant process must produce exactly
// startF + i*interval by multiplication — the open-loop runner's schedule —
// or the N=1 oracle breaks on float accumulation.
func TestConstantArrivalExact(t *testing.T) {
	const interval = 1e9 / 3.0 // deliberately non-representable
	p := newArrival(ArrivalSpec{Kind: ArrivalConstant}, interval, 7.5, 1000, sim.NewRNG(1))
	for i := 0; i < 1000; i++ {
		want := 7.5 + float64(i)*interval
		if got := p.next(i); got != want {
			t.Fatalf("arrival %d = %v, want exactly %v", i, got, want)
		}
	}
}

// TestArrivalsMonotone: every process yields non-decreasing times starting
// at startF — the driver's injection discipline depends on it.
func TestArrivalsMonotone(t *testing.T) {
	specs := []ArrivalSpec{
		{Kind: ArrivalConstant},
		{Kind: ArrivalPoisson},
		{Kind: ArrivalPareto, Alpha: 1.5},
		{Kind: ArrivalDiurnal, Amplitude: 0.8, PeriodS: 1},
		{Kind: ArrivalRamp, RampTo: 3},
	}
	for _, spec := range specs {
		spec, err := spec.normalize(1e9)
		if err != nil {
			t.Fatal(err)
		}
		p := newArrival(spec, 1e6, 0, 5000, sim.NewRNG(9))
		prev := math.Inf(-1)
		for i := 0; i < 5000; i++ {
			at := p.next(i)
			if math.IsNaN(at) || math.IsInf(at, 0) {
				t.Fatalf("%s: arrival %d = %v", spec.Kind, i, at)
			}
			if at < prev {
				t.Fatalf("%s: arrival %d at %v before previous %v", spec.Kind, i, at, prev)
			}
			prev = at
		}
		if first := newArrival(spec, 1e6, 0, 10, sim.NewRNG(9)).next(0); first != 0 {
			t.Fatalf("%s: first arrival at %v, want startF", spec.Kind, first)
		}
	}
}

// TestArrivalMeans: the stochastic processes should realize roughly the
// configured mean rate over many draws.
func TestArrivalMeans(t *testing.T) {
	const n, mean = 20000, 1e6
	for _, spec := range []ArrivalSpec{
		{Kind: ArrivalPoisson},
		{Kind: ArrivalPareto, Alpha: 2.5}, // finite variance, so the sample mean settles
	} {
		spec, err := spec.normalize(1e9)
		if err != nil {
			t.Fatal(err)
		}
		p := newArrival(spec, mean, 0, n, sim.NewRNG(3))
		var last float64
		for i := 0; i < n; i++ {
			last = p.next(i)
		}
		got := last / float64(n-1)
		if got < 0.9*mean || got > 1.1*mean {
			t.Fatalf("%s: realized mean gap %v, want ~%v", spec.Kind, got, mean)
		}
	}
}

// TestRampAccelerates: the ramp's second half must arrive faster than its
// first.
func TestRampAccelerates(t *testing.T) {
	spec, err := ArrivalSpec{Kind: ArrivalRamp, RampTo: 4}.normalize(1e9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	p := newArrival(spec, 1e6, 0, n, sim.NewRNG(1))
	times := make([]float64, n)
	for i := range times {
		times[i] = p.next(i)
	}
	firstHalf := times[n/2-1] - times[0]
	secondHalf := times[n-1] - times[n/2]
	if secondHalf >= firstHalf {
		t.Fatalf("ramp did not accelerate: first half %v, second half %v", firstHalf, secondHalf)
	}
}

func TestArrivalSpecValidation(t *testing.T) {
	bad := []ArrivalSpec{
		{Kind: "nope"},
		{Kind: ArrivalPareto, Alpha: 1},
		{Kind: ArrivalPareto, Alpha: math.NaN()},
		{Kind: ArrivalDiurnal, Amplitude: 1},
		{Kind: ArrivalDiurnal, Amplitude: -0.1},
		{Kind: ArrivalDiurnal, Amplitude: 0.5, PeriodS: math.Inf(1)},
		{Kind: ArrivalRamp, RampTo: -2},
	}
	for _, spec := range bad {
		if _, err := spec.normalize(1e9); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
	if _, err := ParseArrival("poisson"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseArrival("thunder"); err == nil {
		t.Fatal("unknown arrival name parsed")
	}
}
