package fleet

import (
	"fmt"
	"runtime"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/workload"
)

// BenchmarkFleetScale measures the driving loop's per-event cost up the
// replica ladder. Construction — replicas, cluster index, balancer tree, all
// O(N) — runs outside the timer, so ns/op, ns/event and allocs/op cover only
// the hot loop. With the O(log N) cluster heap and balancer tree, ns/event
// grows only logarithmically from 16 to 1024 replicas (the bench gate holds
// 1024 under 4× the 64-replica figure), and allocs/op stays flat in N: the
// loop's scratch is pooled and every index structure is pre-sized at
// construction.
//
// Total request volume is fixed across the ladder, so the work per op is
// comparable: more replicas means the same stream spread thinner, not a
// bigger stream.
func BenchmarkFleetScale(b *testing.B) {
	const totalRequests = 2048
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			cfg := Config{
				Replicas: n,
				Policy:   GCAware,
				Requests: totalRequests,
				Arrival:  ArrivalSpec{Kind: ArrivalPoisson},
				Run: workload.RunConfig{
					HeapMB:     2 * workload.MicroPauseProbe.MinHeapMB,
					Collector:  gc.G1,
					Iterations: 1,
					Events:     60,
					Seed:       42,
				},
			}
			b.ReportAllocs()
			var events int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fr, err := newFleetRun(workload.MicroPauseProbe, cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				// Finish the GC cycle the O(N) construction garbage
				// triggers: the loop itself allocates nothing, so no
				// collection can start inside the timed region — but one
				// already in flight would carry a few runtime-internal
				// mallocs across the start line and smear the 0 allocs/op
				// figure.
				runtime.GC()
				b.StartTimer()
				if err := fr.run(); err != nil {
					b.Fatal(err)
				}
				// Release outside the timer: recycling pooled scratch is
				// once-per-run housekeeping (a sync.Pool Put can rebuild
				// its chain after a GC), not per-event cost — and the
				// metric map insert below must not count against the
				// loop's 0 B/op at 1024 replicas either.
				b.StopTimer()
				fr.release()
				events += fr.steps
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
		})
	}
}
