// Package fleet simulates a serving fleet: N replica instances of one
// workload — each a complete simulated process with its own heap, collector
// and JIT warmup state — behind a load balancer, fed by an open-loop arrival
// process on one shared virtual clock.
//
// The paper's single-invocation methodology measures how one JVM behaves
// under GC pressure; production latency is a fleet property. A request that
// lands on a replica mid-pause waits out the pause, but a balancer that can
// see load (or pauses) routes around it — so fleet tail latency depends on
// the interaction of collector, policy and arrival burstiness, which is
// exactly the grid this package sweeps.
//
// Determinism: replicas are independent engines interleaved by a sim.Cluster
// in global event-time order, arrivals are a pure function of the fleet seed,
// and the driver injects each arrival before the cluster steps past its time
// (so timer deadlines are exact). A whole fleet run is therefore a pure
// function of (descriptor, Config) — byte-identical across hosts, worker
// counts and repetitions — and a single-replica fleet under constant arrivals
// reproduces the standalone open-loop runner exactly.
package fleet

import (
	"fmt"
	"sync"

	"chopin/internal/cpuarch"
	"chopin/internal/latency"
	"chopin/internal/obs"
	"chopin/internal/sim"
	"chopin/internal/workload"
)

// replicaSeedStride separates per-replica RNG streams: replica i runs with
// Run.Seed + i*stride, so replica 0 of any fleet is bit-identical to a
// standalone invocation at the base seed (the N=1 oracle), while siblings
// behave like distinct invocations. A large odd stride keeps the splitmix64
// streams uncorrelated.
const replicaSeedStride = 1_000_003

// defaultStepBudget caps total fleet simulation events, mirroring the
// standalone runner's per-engine safety net: a mis-sized fleet (arrival rate
// far beyond capacity) diverges by queueing, not by hanging the sweep.
const defaultStepBudget = 500_000_000

// Config parameterizes one fleet run. The zero value of optional fields
// selects documented defaults; Run carries the per-replica invocation
// configuration exactly as workload.Run would take it.
type Config struct {
	// Replicas is the fleet size N (default 1).
	Replicas int `json:"replicas"`
	// Policy selects the load balancer (default RoundRobin).
	Policy Policy `json:"policy,omitempty"`
	// Arrival selects and parameterizes the arrival process (default
	// constant rate).
	Arrival ArrivalSpec `json:"arrival,omitempty"`
	// Requests is the total number of fleet arrivals; 0 means
	// Replicas × events × iterations — the same per-replica volume a
	// standalone run would serve.
	Requests int `json:"requests,omitempty"`
	// Run is the per-replica invocation config. OpenLoop is implied;
	// OpenLoopHeadroom stretches the fleet's mean inter-arrival interval
	// exactly as it stretches the standalone runner's. Seed is the fleet
	// seed: replica i simulates at Seed + i*1000003, and the arrival
	// process draws from its own stream derived from Seed.
	Run workload.RunConfig `json:"run"`
	// RetryAfterNS re-injects a request whose latency exceeded this bound —
	// the client-side timeout-and-retry that turns a GC pause into a retry
	// storm. 0 disables retries.
	RetryAfterNS float64 `json:"retry_after_ns,omitempty"`
	// MaxRetries bounds retries per request (default 3 when retries are on).
	MaxRetries int `json:"max_retries,omitempty"`
	// HostCores is the physical core budget the fleet is co-located onto,
	// the denominator of the host-CPU pressure metric. 0 means
	// Replicas × machine cores: every replica fully provisioned, no
	// co-location pressure. Co-location never alters the simulation — it is
	// reported, not modeled, so workload-identical cells stay cacheable.
	HostCores int `json:"host_cores,omitempty"`
	// SLAs is the latency ladder the report grades the fleet against
	// (default latency.DefaultSLAs).
	SLAs []latency.SLA `json:"slas,omitempty"`
	// RetryStormFrac flags the run as a retry storm when
	// retries/requests exceeds it (default 0.1).
	RetryStormFrac float64 `json:"retry_storm_frac,omitempty"`
	// StepBudget caps total simulation events across the fleet (default
	// 500M, the standalone runner's safety net).
	StepBudget int64 `json:"step_budget,omitempty"`

	// reference selects the O(N) differential-oracle paths — the linear
	// cluster scan and the linear balancers — in place of the indexed
	// production structures. Unexported (and so excluded from the JSON cache
	// key): oracle mode is a test concern, and both modes produce
	// byte-identical results by construction.
	reference bool
}

// arrivalSeedSalt separates the arrival process's RNG stream from every
// replica stream derived from the same fleet seed.
const arrivalSeedSalt = 0x6f1e_e7a1_12b5_9bd1

// normalize fills cfg's defaults against the descriptor.
func (cfg Config) normalize(d *workload.Descriptor) Config {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Policy == "" {
		cfg.Policy = RoundRobin
	}
	if cfg.Requests <= 0 {
		ev := cfg.Run.Events
		if ev <= 0 {
			ev = d.Events
		}
		iters := cfg.Run.Iterations
		if iters < 1 {
			iters = 1
		}
		cfg.Requests = cfg.Replicas * ev * iters
	}
	if cfg.RetryAfterNS > 0 && cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.HostCores <= 0 {
		m := cfg.Run.Machine
		if m.Name == "" {
			m = cpuarch.Zen4
		}
		cfg.HostCores = cfg.Replicas * m.Cores
	}
	if len(cfg.SLAs) == 0 {
		cfg.SLAs = latency.DefaultSLAs
	}
	if cfg.RetryStormFrac <= 0 {
		cfg.RetryStormFrac = 0.1
	}
	if cfg.StepBudget <= 0 {
		cfg.StepBudget = defaultStepBudget
	}
	return cfg
}

// pendingRetry is one queued re-injection: request id retries at virtual
// time t. Retries are created in completion-time order, so the queue is FIFO
// in non-decreasing t.
type pendingRetry struct {
	t  float64
	id int32
}

// Run executes one fleet simulation and returns its report. rec receives
// fleet telemetry (per-replica summaries, retry events, the fleet report);
// obs.Nop disables it. The run is deterministic in (d, cfg).
func Run(d *workload.Descriptor, cfg Config, rec obs.Recorder) (*Report, error) {
	rec = obs.Or(rec)
	reps, retried, cfg, err := drive(d, cfg, rec)
	if err != nil {
		return nil, err
	}
	rep := buildReport(d, cfg, reps, retried)
	recordReport(rec, d, cfg, reps, rep)
	return rep, nil
}

// fleetScratch is drive's pooled per-request state: retry depth per logical
// request and the pending-retry queue. Pooling it (and the tracer's
// per-replica accumulators) keeps the driving loop's allocations constant in
// fleet size and request count after warmup — the property the scale
// benchmark asserts with allocs/op.
type fleetScratch struct {
	depth   []int32
	retries []pendingRetry
}

var scratchPool = sync.Pool{New: func() any { return new(fleetScratch) }}

func getScratch(requests int) *fleetScratch {
	s := scratchPool.Get().(*fleetScratch)
	if cap(s.depth) < requests {
		s.depth = make([]int32, requests)
	} else {
		s.depth = s.depth[:requests]
		for i := range s.depth {
			s.depth[i] = 0
		}
	}
	s.retries = s.retries[:0]
	return s
}

// fleetRun is one fleet simulation, split into construction (newFleetRun:
// replicas, cluster, balancer, tracer — everything O(N)) and the driving loop
// (run), so the hot loop's cost profile can be measured and reasoned about in
// isolation from setup.
type fleetRun struct {
	d       *workload.Descriptor
	cfg     Config
	rec     obs.Recorder
	reps    []*workload.Replica
	engines []*sim.Engine
	backs   []backend
	bal     balancer
	cluster *sim.Cluster
	proc    arrivalProcess
	tr      *tracer
	scratch *fleetScratch
	retried int64
	steps   int64 // simulation events processed by run, for per-event metrics
}

// drive executes the fleet simulation itself, returning the drained replicas
// and the retry count (Run layers the report on top; the oracle test reads
// the replicas directly).
func drive(d *workload.Descriptor, cfg Config, rec obs.Recorder) ([]*workload.Replica, int64, Config, error) {
	fr, err := newFleetRun(d, cfg, rec)
	if err != nil {
		return nil, 0, fr.cfg, err
	}
	if err := fr.run(); err != nil {
		return nil, 0, fr.cfg, err
	}
	fr.release()
	return fr.reps, fr.retried, fr.cfg, nil
}

// newFleetRun validates the config and builds the fleet: replicas with their
// engines, the cluster event index, the balancer (indexed production
// structures, or the linear oracles in reference mode) and, when observed,
// the tracer. Everything that allocates proportionally to N happens here.
func newFleetRun(d *workload.Descriptor, cfg Config, rec obs.Recorder) (*fleetRun, error) {
	fr := &fleetRun{d: d, cfg: cfg, rec: obs.Or(rec)}
	if err := cfg.Validate(); err != nil {
		return fr, err
	}
	cfg = cfg.normalize(d)
	fr.cfg = cfg
	rec = fr.rec

	if cfg.reference {
		bal, err := newReferenceBalancer(cfg.Policy)
		if err != nil {
			return fr, err
		}
		fr.bal = bal
	} else {
		bal, err := newBalancer(cfg.Policy, cfg.Replicas)
		if err != nil {
			return fr, err
		}
		fr.bal = bal
	}

	fr.reps = make([]*workload.Replica, cfg.Replicas)
	fr.engines = make([]*sim.Engine, cfg.Replicas)
	fr.backs = make([]backend, cfg.Replicas)
	for i := range fr.reps {
		rcfg := cfg.Run
		rcfg.Seed += uint64(i) * replicaSeedStride
		if rec.Enabled() && rcfg.Recorder == nil {
			// Give each replica engine its own stamped recorder, so GC and
			// sampling telemetry emitted from inside the replica merges into
			// the fleet stream attributed to its replica (the timeline's STW
			// and load tracks). Recording never perturbs the simulation, so
			// results stay identical to an unobserved run.
			rcfg.Recorder = obs.WithRun(obs.WithReplica(rec, i), "", d.Name,
				rcfg.Collector.String())
		}
		rp, err := workload.NewReplica(d, rcfg, i)
		if err != nil {
			return fr, err
		}
		fr.reps[i] = rp
		fr.engines[i] = rp.Engine()
		fr.backs[i] = rp
	}
	if ga, ok := fr.bal.(*gcAwareIndex); ok {
		// The indexed gc-aware policy keeps pause state in its tree instead of
		// polling Paused() per pick: each collector pushes its pause-world /
		// resume transitions as they happen.
		for i, rp := range fr.reps {
			rp.SetPauseHook(func(paused bool) { ga.setPaused(i, paused) })
		}
	}
	// tr stays nil — every tracer method's disabled path is one branch —
	// unless the run is observed.
	if rec.Enabled() {
		fr.tr = newTracer(rec, d, cfg, fr.reps)
	}

	// The fleet's mean inter-arrival interval divides the per-replica
	// open-loop interval by N: each replica sees, on average, the load a
	// standalone run would offer it. For N=1 the division is an exact
	// identity, which the oracle test depends on.
	perReplica, err := fr.reps[0].Interval()
	if err != nil {
		return fr, err
	}
	meanNS := perReplica / float64(cfg.Replicas)

	startF := fr.engines[0].NowF()
	spec, err := cfg.Arrival.normalize(meanNS * float64(cfg.Requests))
	if err != nil {
		return fr, err
	}
	fr.cfg.Arrival = spec
	fr.proc = newArrival(spec, meanNS, startF, cfg.Requests,
		sim.NewRNG(cfg.Run.Seed^arrivalSeedSalt))

	if cfg.reference {
		fr.cluster = sim.NewReferenceCluster(fr.engines...)
	} else {
		fr.cluster = sim.NewCluster(fr.engines...)
	}
	fr.scratch = getScratch(cfg.Requests)
	return fr, nil
}

// run is the driving loop: interleave arrivals, retries and cluster steps in
// global virtual-time order until the fleet drains. Per-event work is O(log N)
// — a cluster peek/step, a balancer root read plus count updates — and
// allocation-free after warmup (scratch and tracer state are pooled).
func (fr *fleetRun) run() error {
	d, cfg := fr.d, fr.cfg
	bal, cluster, reps, tr := fr.bal, fr.cluster, fr.reps, fr.tr
	depth, retries := fr.scratch.depth, fr.scratch.retries
	var (
		arrIdx    int     // next fresh arrival to draw
		nextArr   float64 // its time, valid while arrIdx < Requests
		retryHead int
		lastEnd   int64
	)
	if cfg.Requests > 0 {
		nextArr = fr.proc.next(0)
	}

	for {
		// Choose the next injection: earliest of the fresh-arrival stream
		// and the retry queue, retries first on ties (the retried request
		// has been waiting longer than any same-instant fresh arrival).
		injT, injID, haveInj, isRetry := 0.0, int32(0), false, false
		if retryHead < len(retries) {
			injT, injID, haveInj, isRetry = retries[retryHead].t, retries[retryHead].id, true, true
		}
		if arrIdx < cfg.Requests && (!haveInj || nextArr < injT) {
			injT, injID, haveInj, isRetry = nextArr, int32(arrIdx), true, false
		}

		idx, at, ok := cluster.Peek()
		if haveInj && (!ok || injT <= at) {
			// Inject before the cluster steps past injT: every engine's
			// clock is still at or before injT, so the arrival timer's
			// deadline is exact.
			dec := bal.pick(fr.backs)
			tr.route(int64(injT), injID, dec)
			reps[dec.Replica].InjectAt(injT, injID)
			bal.inject(dec.Replica)
			if isRetry {
				retryHead++
				if retryHead == len(retries) {
					retries, retryHead = retries[:0], 0
				}
			} else {
				arrIdx++
				if arrIdx < cfg.Requests {
					nextArr = fr.proc.next(arrIdx)
				}
			}
			continue
		}
		if !ok {
			break // quiescent with nothing left to inject: drained
		}

		fr.engines[idx].Step()
		fr.steps++
		if fr.steps > cfg.StepBudget {
			return fmt.Errorf("fleet: %s: event budget exceeded after %d events (rate beyond fleet capacity?)",
				d.Name, cfg.StepBudget)
		}
		rp := reps[idx]
		if rp.OOM() {
			return rp.OOMErr()
		}
		for _, c := range rp.DrainCompletions() {
			bal.complete(idx)
			if c.End > lastEnd {
				lastEnd = c.End
			}
			lat := float64(c.End - c.Start)
			willRetry := cfg.RetryAfterNS > 0 && lat > cfg.RetryAfterNS &&
				depth[c.ID] < int32(cfg.MaxRetries)
			tr.complete(idx, c, !willRetry)
			if willRetry {
				depth[c.ID]++
				fr.retried++
				// Re-inject at the step's exact float time (== the
				// completion instant) rather than the truncated c.End, so
				// the retry timer never lands behind the engine clock.
				retries = append(retries, pendingRetry{t: at, id: c.ID})
				if fr.rec.Enabled() {
					fr.rec.Record(obs.Event{
						Kind:      obs.KindFleetRetry,
						TNS:       c.End,
						Benchmark: d.Name,
						Collector: cfg.Run.Collector.String(),
						Value:     float64(c.ID),
						Aux:       float64(depth[c.ID]),
						DurNS:     lat,
						Replica:   idx + 1,
					})
				}
			}
		}
	}
	tr.finish(lastEnd)

	if arrIdx < cfg.Requests || retryHead < len(retries) {
		return fmt.Errorf("fleet: %s: cluster went quiescent with %d arrivals and %d retries pending",
			d.Name, cfg.Requests-arrIdx, len(retries)-retryHead)
	}
	for _, rp := range reps {
		if n := rp.Outstanding(); n != 0 {
			return fmt.Errorf("fleet: %s: replica %d lost %d requests",
				d.Name, rp.Index(), n)
		}
	}

	fr.scratch.retries = retries
	return nil
}

// release recycles the run's pooled state after a successful run. It is a
// separate step (not the tail of run) so the scale benchmark times only the
// driving loop: a sync.Pool Put can rebuild its per-P chain after a GC —
// once-per-run housekeeping, not per-event cost. Error paths never release —
// the next run draws fresh state rather than inherit possibly-inconsistent
// scratch.
func (fr *fleetRun) release() {
	scratchPool.Put(fr.scratch)
	fr.scratch = nil
	fr.tr.release()
	fr.tr = nil
}
