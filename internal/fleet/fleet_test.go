package fleet

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/latency"
	"chopin/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testConfig is a small, fast fleet cell over the pause-probe micro
// workload.
func testConfig(replicas int, pol Policy) Config {
	d := workload.MicroPauseProbe
	return Config{
		Replicas: replicas,
		Policy:   pol,
		Requests: 300 * replicas,
		Run: workload.RunConfig{
			HeapMB:     2 * d.MinHeapMB,
			Collector:  gc.G1,
			Iterations: 1,
			Events:     300,
			Seed:       42,
		},
	}
}

// TestSingleReplicaOracle is the degeneration invariant the whole fleet
// layer is built on: a one-replica fleet under constant-rate arrivals IS the
// standalone open-loop runner — same seed, byte-for-byte the same latency
// events. Any drift here means the fleet driver perturbs the simulation it
// claims merely to interleave.
func TestSingleReplicaOracle(t *testing.T) {
	d := workload.MicroPauseProbe
	rcfg := workload.RunConfig{
		HeapMB:     2 * d.MinHeapMB,
		Collector:  gc.G1,
		Iterations: 1,
		Events:     600,
		Seed:       42,
		OpenLoop:   true,
	}
	res, err := workload.Run(d, rcfg)
	if err != nil {
		t.Fatal(err)
	}

	reps, retried, _, err := drive(d, Config{Replicas: 1, Run: rcfg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if retried != 0 {
		t.Fatalf("retried = %d without retries configured", retried)
	}
	got := reps[0].Latencies()
	if len(got) != len(res.Events) {
		t.Fatalf("fleet served %d events, standalone %d", len(got), len(res.Events))
	}
	for i := range got {
		if got[i] != res.Events[i] {
			t.Fatalf("event %d diverged: fleet %+v, standalone %+v",
				i, got[i], res.Events[i])
		}
	}
}

// TestRunDeterministic: identical configs give byte-identical reports.
func TestRunDeterministic(t *testing.T) {
	cfg := testConfig(3, GCAware)
	cfg.Arrival = ArrivalSpec{Kind: ArrivalPoisson}
	cfg.RetryAfterNS = 5e6

	run := func() []byte {
		rep, err := Run(workload.MicroPauseProbe, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("fleet run not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestGoldenReport pins the full report of a seeded three-replica fleet.
// Regenerate deliberately with -update; an unexplained diff is a determinism
// or semantics regression.
func TestGoldenReport(t *testing.T) {
	cfg := testConfig(3, LeastOutstanding)
	rep, err := Run(workload.MicroPauseProbe, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	path := filepath.Join("testdata", "report_pauseprobe_n3.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(data) != string(want) {
		t.Fatalf("report drifted from golden %s (re-run with -update if intended):\n%s", path, data)
	}
}

// TestReportShape sanity-checks the derived metrics of a multi-replica run.
func TestReportShape(t *testing.T) {
	cfg := testConfig(3, RoundRobin)
	rep, err := Run(workload.MicroPauseProbe, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicas != 3 || len(rep.PerReplica) != 3 {
		t.Fatalf("replicas = %d / %d stats", rep.Replicas, len(rep.PerReplica))
	}
	if rep.Completions != int64(rep.Requests) {
		t.Fatalf("completions %d != requests %d (no retries configured)",
			rep.Completions, rep.Requests)
	}
	// Round-robin spreads a 900-request run evenly over 3 replicas.
	for _, rs := range rep.PerReplica {
		if rs.Served != 300 {
			t.Fatalf("replica %d served %d, want 300 under round-robin", rs.Index, rs.Served)
		}
		if rs.TaskClockNS <= 0 || rs.HeapPeakMB <= 0 {
			t.Fatalf("replica %d missing resource totals: %+v", rs.Index, rs)
		}
	}
	if !(rep.P50NS <= rep.P99NS && rep.P99NS <= rep.P999NS) {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p99.9=%v",
			rep.P50NS, rep.P99NS, rep.P999NS)
	}
	if rep.WallNS <= 0 || rep.OfferedRate <= 0 {
		t.Fatalf("wall=%v rate=%v", rep.WallNS, rep.OfferedRate)
	}
	if rep.HostCPU <= 0 || rep.HostSaturated {
		t.Fatalf("host CPU %v (saturated=%v) with fully provisioned cores",
			rep.HostCPU, rep.HostSaturated)
	}
	if len(rep.SLAs) != len(latency.DefaultSLAs) {
		t.Fatalf("SLA rungs = %d, want default ladder %d", len(rep.SLAs), len(latency.DefaultSLAs))
	}
}

// TestRetryStorm: an absurdly tight retry bound re-injects every request up
// to the retry cap, and the report flags the storm.
func TestRetryStorm(t *testing.T) {
	cfg := testConfig(2, LeastOutstanding)
	cfg.RetryAfterNS = 1 // everything "times out"
	cfg.MaxRetries = 2
	rep, err := Run(workload.MicroPauseProbe, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRetries := int64(2 * rep.Requests)
	if rep.Retries != wantRetries {
		t.Fatalf("retries = %d, want %d (every request to the cap)", rep.Retries, wantRetries)
	}
	if rep.Completions != int64(rep.Requests)+rep.Retries {
		t.Fatalf("completions %d != requests %d + retries %d",
			rep.Completions, rep.Requests, rep.Retries)
	}
	if !rep.RetryStorm {
		t.Fatal("retry storm not flagged at 200% retry rate")
	}
}

// TestGCAwareNotWorse: routing around pauses should not hurt the tail
// relative to round-robin on the same seed and load.
func TestGCAwarePolicyRuns(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastOutstanding, GCAware} {
		rep, err := Run(workload.MicroPauseProbe, testConfig(2, pol), nil)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if rep.Policy != pol || rep.Completions != int64(rep.Requests) {
			t.Fatalf("%s: report %+v", pol, rep)
		}
	}
}

// TestDegenerateConfigError: a zero-event schedule surfaces the open-loop
// config error instead of dividing to +Inf.
func TestDegenerateConfigError(t *testing.T) {
	d := *workload.MicroPauseProbe
	d.Events = 0
	cfg := testConfig(1, RoundRobin)
	cfg.Requests = 10
	cfg.Run.Events = 0
	_, err := Run(&d, cfg, nil)
	if err == nil {
		t.Fatal("zero-event fleet config did not error")
	}
}

func TestBadArrivalSpec(t *testing.T) {
	cfg := testConfig(1, RoundRobin)
	cfg.Arrival = ArrivalSpec{Kind: ArrivalPareto, Alpha: 0.5}
	if _, err := Run(workload.MicroPauseProbe, cfg, nil); err == nil {
		t.Fatal("alpha <= 1 accepted")
	}
	cfg.Arrival = ArrivalSpec{Kind: "drizzle"}
	if _, err := Run(workload.MicroPauseProbe, cfg, nil); err == nil {
		t.Fatal("unknown arrival kind accepted")
	}
}
