package fleet

import "fmt"

// Load balancers.
//
// The balancer chooses, at each arrival's injection time, which replica
// serves it. It sees only what a real front-end could see — per-replica
// outstanding counts and (for the GC-aware policy) whether a replica is
// currently inside a stop-the-world pause, the signal a real balancer
// approximates with health-check latency or explicit load shedding. Policies
// are deterministic: same arrival sequence and replica states, same routing.

// Policy names a load-balancing policy.
type Policy string

const (
	// RoundRobin rotates arrivals across replicas in index order, blind to
	// load — the baseline every serving stack starts from.
	RoundRobin Policy = "round-robin"
	// LeastOutstanding routes to the replica with the fewest requests
	// injected but not yet completed (queued + in service), lowest index on
	// ties — the classic least-connections policy.
	LeastOutstanding Policy = "least-outstanding"
	// GCAware is LeastOutstanding restricted to replicas not currently in a
	// stop-the-world pause; when every replica is paused it degrades to
	// plain LeastOutstanding. This is the policy the fleet experiment
	// exists to evaluate: how much tail latency does routing around pauses
	// recover, per collector?
	GCAware Policy = "gc-aware"
)

// ParsePolicy parses a policy name (the -lb flag).
func ParsePolicy(name string) (Policy, error) {
	switch Policy(name) {
	case RoundRobin, LeastOutstanding, GCAware:
		return Policy(name), nil
	}
	return "", fmt.Errorf("fleet: unknown balancer policy %q (want round-robin, least-outstanding or gc-aware)", name)
}

// backend is the balancer's view of one replica: the signals a front-end
// could realistically observe. Narrowing the interface keeps policies
// unit-testable without simulated replicas.
type backend interface {
	Outstanding() int
	Paused() bool
}

// Decision reasons, stamped onto fleet-route telemetry events so a trace
// reader can tell a routine pick from an active GC dodge.
const (
	// ReasonRoundRobin: the rotation landed here.
	ReasonRoundRobin = "round-robin"
	// ReasonLeastOutstanding: fewest outstanding requests.
	ReasonLeastOutstanding = "least-outstanding"
	// ReasonGCAware: least outstanding with no replica mid-pause to avoid.
	ReasonGCAware = "gc-aware"
	// ReasonGCAwareAvoid: least outstanding among unpaused replicas, with at
	// least one mid-STW replica routed around (Decision.Avoided counts them).
	ReasonGCAwareAvoid = "gc-aware-avoid"
	// ReasonGCAwareFallback: every replica was mid-pause at once, so the
	// policy degraded to plain least-outstanding — no escape existed.
	ReasonGCAwareFallback = "gc-aware-fallback"
)

// Decision is one balancer choice with its explanation: which replica serves
// the arrival, why, and how many mid-STW replicas were routed around (the
// "routed away from replica 2 mid-pause" evidence request traces carry).
type Decision struct {
	Replica int
	Reason  string
	// Avoided counts replicas skipped because they were inside a
	// stop-the-world pause at decision time (gc-aware only; zero when the
	// policy had no choice, including the all-paused fallback).
	Avoided int
}

// balancer picks the replica to serve the next arrival. The driver mirrors
// replica state into the balancer through the three update methods — one
// call per injection, completion and pause transition — which is what lets
// indexed policies answer pick in O(log N) without rescanning the fleet.
// Policies that derive state at pick time (round-robin, the linear reference
// oracles) implement them as no-ops.
type balancer interface {
	pick(reps []backend) Decision
	inject(i int)
	complete(i int)
	setPaused(i int, paused bool)
}

// newBalancer builds the production balancer for n replicas: round-robin, or
// a tournament-tree-indexed policy whose picks cost O(log N) (see
// lbindex.go). n must be ≥ 1 — config validation rejects smaller fleets
// before a balancer is built.
func newBalancer(p Policy, n int) (balancer, error) {
	if n < 1 {
		return nil, &ConfigError{Field: "replicas", Reason: fmt.Sprintf("fleet needs at least one replica, got %d", n)}
	}
	switch p {
	case RoundRobin, "":
		return &roundRobin{}, nil
	case LeastOutstanding:
		return newLeastOutstandingIndex(n), nil
	case GCAware:
		return newGCAwareIndex(n), nil
	}
	return nil, fmt.Errorf("fleet: unknown balancer policy %q", p)
}

// newReferenceBalancer builds the retained O(N)-per-pick implementation of a
// policy: the differential oracle the indexed balancers are tested against.
func newReferenceBalancer(p Policy) (balancer, error) {
	switch p {
	case RoundRobin, "":
		return &roundRobin{}, nil
	case LeastOutstanding:
		return leastOutstanding{}, nil
	case GCAware:
		return gcAware{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown balancer policy %q", p)
}

// noUpdates is embedded by policies that read replica state at pick time (or
// ignore it entirely) instead of maintaining an index.
type noUpdates struct{}

func (noUpdates) inject(int)          {}
func (noUpdates) complete(int)        {}
func (noUpdates) setPaused(int, bool) {}

type roundRobin struct {
	noUpdates
	n int
}

func (rr *roundRobin) pick(reps []backend) Decision {
	i := rr.n % len(reps)
	rr.n++
	return Decision{Replica: i, Reason: ReasonRoundRobin}
}

type leastOutstanding struct{ noUpdates }

func (leastOutstanding) pick(reps []backend) Decision {
	best := 0
	for i := 1; i < len(reps); i++ {
		if reps[i].Outstanding() < reps[best].Outstanding() {
			best = i
		}
	}
	return Decision{Replica: best, Reason: ReasonLeastOutstanding}
}

type gcAware struct{ noUpdates }

func (gcAware) pick(reps []backend) Decision {
	best, avoided := -1, 0
	for i, rp := range reps {
		if rp.Paused() {
			avoided++
			continue
		}
		if best < 0 || rp.Outstanding() < reps[best].Outstanding() {
			best = i
		}
	}
	if best < 0 {
		// Whole fleet paused at once: no routing escape, fall back to load.
		d := leastOutstanding{}.pick(reps)
		return Decision{Replica: d.Replica, Reason: ReasonGCAwareFallback}
	}
	reason := ReasonGCAware
	if avoided > 0 {
		reason = ReasonGCAwareAvoid
	}
	return Decision{Replica: best, Reason: reason, Avoided: avoided}
}
