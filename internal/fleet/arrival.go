package fleet

import (
	"fmt"
	"math"

	"chopin/internal/sim"
)

// Arrival processes.
//
// A fleet is an open system: requests arrive on a schedule the servers do
// not control. The single-invocation open-loop runner only models the
// simplest such schedule — a constant rate — but real serving traffic is
// richer: memoryless Poisson streams, heavy-tailed bursts, diurnal cycles,
// deliberate ramp tests. Each process here generates the absolute virtual
// time of the i-th fleet arrival from a mean inter-arrival interval and (for
// the stochastic ones) a dedicated RNG stream, so the arrival schedule is a
// pure function of the fleet seed — independent of how replicas simulate.
//
// The constant process computes arrival i as startF + i*interval by
// multiplication, never by accumulation: that is bit-for-bit the schedule
// the open-loop runner arms (openLoopArrival), which is what makes the
// single-replica fleet an exact oracle against workload.Run.

// ArrivalKind names an arrival process.
type ArrivalKind string

const (
	// ArrivalConstant spaces arrivals uniformly: arrival i at exactly
	// i*interval. The degenerate (N=1) fleet under this process reproduces
	// the open-loop runner byte for byte.
	ArrivalConstant ArrivalKind = "constant"
	// ArrivalPoisson draws i.i.d. exponential gaps (a memoryless M/G/k
	// stream) with the configured mean.
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalPareto draws heavy-tailed Pareto gaps with unit mean scaled to
	// the configured mean — bursty traffic whose quiet stretches fund rare,
	// long gaps (and whose bursts stack arrivals far above the mean rate).
	ArrivalPareto ArrivalKind = "pareto"
	// ArrivalDiurnal modulates a Poisson stream by a sinusoid of the virtual
	// clock — trace playback of a day-night load cycle compressed to the
	// configured period.
	ArrivalDiurnal ArrivalKind = "diurnal"
	// ArrivalRamp increases the rate linearly from the configured mean to
	// RampTo times the mean across the run — the load ramp used to locate a
	// fleet's critical rate empirically.
	ArrivalRamp ArrivalKind = "ramp"
)

// ArrivalSpec configures an arrival process. The zero value is the constant
// process.
type ArrivalSpec struct {
	Kind ArrivalKind `json:"kind,omitempty"`
	// Alpha is the Pareto tail index (>1 so the mean exists); 0 means 1.5.
	Alpha float64 `json:"alpha,omitempty"`
	// Amplitude is the diurnal modulation depth in [0, 1); 0 means 0.5.
	Amplitude float64 `json:"amplitude,omitempty"`
	// PeriodS is the diurnal period in virtual seconds; 0 means the
	// workload's nominal duration (one full cycle per run).
	PeriodS float64 `json:"period_s,omitempty"`
	// RampTo is the terminal rate multiplier of the ramp; 0 means 2.
	RampTo float64 `json:"ramp_to,omitempty"`
}

// normalize fills a spec's defaults and validates its parameters.
func (s ArrivalSpec) normalize(nominalDurNS float64) (ArrivalSpec, error) {
	if s.Kind == "" {
		s.Kind = ArrivalConstant
	}
	switch s.Kind {
	case ArrivalConstant, ArrivalPoisson:
	case ArrivalPareto:
		if s.Alpha == 0 {
			s.Alpha = 1.5
		}
		if s.Alpha <= 1 || math.IsNaN(s.Alpha) || math.IsInf(s.Alpha, 0) {
			return s, fmt.Errorf("fleet: pareto alpha %v must be a finite value > 1", s.Alpha)
		}
	case ArrivalDiurnal:
		if s.Amplitude == 0 {
			s.Amplitude = 0.5
		}
		if s.Amplitude < 0 || s.Amplitude >= 1 || math.IsNaN(s.Amplitude) {
			return s, fmt.Errorf("fleet: diurnal amplitude %v must be in [0, 1)", s.Amplitude)
		}
		if s.PeriodS == 0 {
			s.PeriodS = nominalDurNS / 1e9
		}
		if s.PeriodS <= 0 || math.IsNaN(s.PeriodS) || math.IsInf(s.PeriodS, 0) {
			return s, fmt.Errorf("fleet: diurnal period %vs must be a positive finite duration", s.PeriodS)
		}
	case ArrivalRamp:
		if s.RampTo == 0 {
			s.RampTo = 2
		}
		if s.RampTo <= 0 || math.IsNaN(s.RampTo) || math.IsInf(s.RampTo, 0) {
			return s, fmt.Errorf("fleet: ramp target %v must be a positive finite factor", s.RampTo)
		}
	default:
		return s, fmt.Errorf("fleet: unknown arrival kind %q", s.Kind)
	}
	return s, nil
}

// ParseArrival parses an arrival kind name (the -arrival flag).
func ParseArrival(name string) (ArrivalKind, error) {
	switch ArrivalKind(name) {
	case ArrivalConstant, ArrivalPoisson, ArrivalPareto, ArrivalDiurnal, ArrivalRamp:
		return ArrivalKind(name), nil
	}
	return "", fmt.Errorf("fleet: unknown arrival process %q (want constant, poisson, pareto, diurnal or ramp)", name)
}

// arrivalProcess generates the absolute virtual time of successive fleet
// arrivals. next must be called exactly once per arrival, in order.
type arrivalProcess interface {
	next(i int) float64
}

// newArrival builds the process for a normalized spec. meanNS is the mean
// fleet inter-arrival interval, startF the time of arrival 0, total the
// number of arrivals the run will draw (the ramp's denominator), rng a
// stream dedicated to the process.
func newArrival(s ArrivalSpec, meanNS, startF float64, total int, rng *sim.RNG) arrivalProcess {
	switch s.Kind {
	case ArrivalPoisson:
		return &gapArrival{t: startF, gap: func(int, float64) float64 {
			return meanNS * rng.ExpFloat64()
		}}
	case ArrivalPareto:
		// Unit-mean Pareto: scale (alpha-1)/alpha, so gaps average meanNS but
		// the tail decays as a power law with index alpha.
		scale := meanNS * (s.Alpha - 1) / s.Alpha
		inv := -1 / s.Alpha
		return &gapArrival{t: startF, gap: func(int, float64) float64 {
			u := 1 - rng.Float64() // (0, 1]: keeps the power well-defined
			return scale * math.Pow(u, inv)
		}}
	case ArrivalDiurnal:
		periodNS := s.PeriodS * 1e9
		return &gapArrival{t: startF, gap: func(_ int, t float64) float64 {
			rate := 1 + s.Amplitude*math.Sin(2*math.Pi*t/periodNS)
			return meanNS * rng.ExpFloat64() / rate
		}}
	case ArrivalRamp:
		den := float64(total - 1)
		if den < 1 {
			den = 1
		}
		return &gapArrival{t: startF, gap: func(i int, _ float64) float64 {
			factor := 1 + (s.RampTo-1)*float64(i)/den
			return meanNS / factor
		}}
	default: // ArrivalConstant
		return &constantArrival{startF: startF, intervalNS: meanNS}
	}
}

// constantArrival computes arrival times by multiplication — the exact
// floating-point schedule of the open-loop runner.
type constantArrival struct {
	startF, intervalNS float64
}

func (c *constantArrival) next(i int) float64 {
	return c.startF + float64(i)*c.intervalNS
}

// gapArrival accumulates per-arrival gaps; gap receives the arrival index
// and the previous arrival's time (the diurnal phase input).
type gapArrival struct {
	t   float64
	gap func(i int, t float64) float64
}

func (g *gapArrival) next(i int) float64 {
	if i > 0 {
		g.t += g.gap(i, g.t)
	}
	return g.t
}
