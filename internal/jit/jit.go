// Package jit models the runtime's tiered just-in-time compiler as it affects
// benchmark timing.
//
// The paper's methodology (Recommendation P1, nominal statistics PWU, PIN,
// PCC, PCS) treats the compiler as a source of warmup transients and of
// configuration sensitivity: early iterations run partly interpreted or
// under the quick tier-1 compiler, and forcing extreme configurations
// (interpreter only, aggressive C2-everything) perturbs steady-state
// performance. We model this as a per-iteration speed multiplier: iteration
// zero carries the full interpretation/class-loading overhead, which decays
// geometrically so that the workload is within 1.5% of its best by its
// declared warmup iteration — exactly the paper's warmup criterion.
package jit

import "math"

// Config selects a compiler configuration, mirroring the paper's experiments.
type Config int

// Compiler configurations.
const (
	// Tiered is the default production configuration (interpreter -> C1 ->
	// C2 with profiling), the baseline for all other configs.
	Tiered Config = iota
	// InterpreterOnly disables compilation entirely (-Xint); the PIN
	// experiment.
	InterpreterOnly
	// ForcedC2 compiles everything aggressively with C2 up front (-Xcomp);
	// the PCC experiment. It pays a large compile-time cost early and a
	// residual cost from unprofiled code.
	ForcedC2
	// WorstTier is whichever configuration is worst for this workload; the
	// PCS experiment.
	WorstTier
)

func (c Config) String() string {
	switch c {
	case Tiered:
		return "tiered"
	case InterpreterOnly:
		return "interpreter"
	case ForcedC2:
		return "forced-c2"
	case WorstTier:
		return "worst-tier"
	}
	return "unknown"
}

// Model is a workload's compiler behaviour.
type Model struct {
	// WarmupIters is the number of iterations needed to come within 1.5% of
	// best performance under the tiered default (nominal statistic PWU).
	WarmupIters int
	// InterpFactor is the steady-state slowdown fraction when running
	// interpreter-only (PIN / 100, e.g. 2.77 = 277% slower).
	InterpFactor float64
	// C2Cost is the slowdown fraction of the first iteration under forced C2
	// compilation relative to the tiered baseline (PCC / 100).
	C2Cost float64
	// WorstFactor is the steady-state slowdown under the workload's worst
	// compiler configuration (PCS / 100).
	WorstFactor float64
}

// warmupTarget is the paper's warmup criterion: within 1.5% of best.
const warmupTarget = 0.015

// warmupAmplitude is the overhead of iteration zero relative to steady state
// under the tiered default. Cold code starts interpreted, so the amplitude
// scales with the workload's interpreter sensitivity, but only a fraction of
// iteration zero runs cold before tier-up.
func (m Model) warmupAmplitude() float64 {
	a := 0.25*m.InterpFactor + 0.10
	if a < warmupTarget {
		a = warmupTarget
	}
	return a
}

// Factor returns the execution-time multiplier for the given configuration
// and zero-based iteration, relative to fully warmed-up tiered execution.
// Factor(Tiered, large) -> 1.
func (m Model) Factor(cfg Config, iter int) float64 {
	if iter < 0 {
		iter = 0
	}
	switch cfg {
	case InterpreterOnly:
		// No compiler: no warmup transient, uniformly slow.
		return 1 + m.InterpFactor
	case ForcedC2:
		// All compilation happens in iteration zero; later iterations run
		// fully optimized with a small residual from profile-free code.
		if iter == 0 {
			return 1 + m.C2Cost
		}
		return 1 + 0.02*m.C2Cost
	case WorstTier:
		return 1 + m.WorstFactor
	default:
		return 1 + m.warmupAmplitude()*m.decay(iter)
	}
}

// decay returns the geometric warmup residual for iteration iter: 1 at
// iteration zero, warmupTarget/amplitude at iteration WarmupIters.
func (m Model) decay(iter int) float64 {
	if iter == 0 {
		return 1
	}
	w := m.WarmupIters
	if w < 1 {
		w = 1
	}
	a := m.warmupAmplitude()
	r := math.Pow(warmupTarget/a, 1/float64(w))
	return math.Pow(r, float64(iter))
}

// WarmedUpBy reports the first iteration whose factor under the tiered
// default is within the warmup criterion of steady state — the measurement
// behind the PWU nominal statistic.
func (m Model) WarmedUpBy() int {
	for i := 0; i < 1000; i++ {
		if m.Factor(Tiered, i) <= 1+warmupTarget+1e-12 {
			return i
		}
	}
	return 1000
}
