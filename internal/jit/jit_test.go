package jit

import (
	"math"
	"testing"
	"testing/quick"
)

func testModel() Model {
	// jython-like: slow to warm up, very compiler-sensitive.
	return Model{WarmupIters: 9, InterpFactor: 2.77, C2Cost: 2.11, WorstFactor: 2.77}
}

func TestTieredConvergesToOne(t *testing.T) {
	m := testModel()
	if got := m.Factor(Tiered, 500); math.Abs(got-1) > 0.001 {
		t.Fatalf("steady-state tiered factor = %v, want ~1", got)
	}
}

func TestTieredWarmupMonotoneDecreasing(t *testing.T) {
	m := testModel()
	prev := math.Inf(1)
	for i := 0; i < 30; i++ {
		f := m.Factor(Tiered, i)
		if f > prev+1e-12 {
			t.Fatalf("warmup factor increased at iter %d: %v -> %v", i, prev, f)
		}
		if f < 1 {
			t.Fatalf("factor below 1 at iter %d: %v", i, f)
		}
		prev = f
	}
}

func TestWarmedUpByMatchesDeclaredPWU(t *testing.T) {
	for _, w := range []int{1, 2, 5, 9} {
		m := Model{WarmupIters: w, InterpFactor: 1.5}
		got := m.WarmedUpBy()
		if got != w {
			t.Errorf("WarmupIters=%d: WarmedUpBy() = %d", w, got)
		}
	}
}

func TestInterpreterUniformlySlow(t *testing.T) {
	m := testModel()
	f0 := m.Factor(InterpreterOnly, 0)
	f9 := m.Factor(InterpreterOnly, 9)
	if f0 != f9 {
		t.Fatalf("interpreter factor should not warm up: %v vs %v", f0, f9)
	}
	if math.Abs(f0-3.77) > 1e-9 {
		t.Fatalf("interpreter factor = %v, want 3.77", f0)
	}
}

func TestForcedC2FrontLoadsCost(t *testing.T) {
	m := testModel()
	first := m.Factor(ForcedC2, 0)
	later := m.Factor(ForcedC2, 1)
	if math.Abs(first-3.11) > 1e-9 {
		t.Fatalf("forced-C2 first iteration = %v, want 3.11", first)
	}
	if later >= first {
		t.Fatalf("forced-C2 should be cheap after compiling: %v -> %v", first, later)
	}
	if later < 1 {
		t.Fatalf("forced-C2 steady factor below 1: %v", later)
	}
}

func TestWorstTierSteady(t *testing.T) {
	m := testModel()
	if got := m.Factor(WorstTier, 100); math.Abs(got-3.77) > 1e-9 {
		t.Fatalf("worst-tier factor = %v, want 3.77", got)
	}
}

func TestInsensitiveWorkloadBarelyWarms(t *testing.T) {
	// jme-like: PIN 1%, PWU 1.
	m := Model{WarmupIters: 1, InterpFactor: 0.01, C2Cost: 0.72, WorstFactor: 0.01}
	if got := m.Factor(Tiered, 0); got > 1.2 {
		t.Fatalf("insensitive workload iteration-0 factor too high: %v", got)
	}
	if got := m.WarmedUpBy(); got > 2 {
		t.Fatalf("insensitive workload should warm immediately, got %d", got)
	}
}

func TestNegativeIterationClamped(t *testing.T) {
	m := testModel()
	if m.Factor(Tiered, -5) != m.Factor(Tiered, 0) {
		t.Fatal("negative iteration should clamp to zero")
	}
}

func TestConfigString(t *testing.T) {
	want := map[Config]string{
		Tiered: "tiered", InterpreterOnly: "interpreter",
		ForcedC2: "forced-c2", WorstTier: "worst-tier", Config(42): "unknown",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", c, got, s)
		}
	}
}

func TestQuickFactorsAlwaysAtLeastOneish(t *testing.T) {
	f := func(wRaw, pinRaw, pccRaw uint16, iterRaw uint8) bool {
		m := Model{
			WarmupIters:  int(wRaw%12) + 1,
			InterpFactor: float64(pinRaw%330) / 100,
			C2Cost:       float64(pccRaw%1100) / 100,
			WorstFactor:  float64(pinRaw%330) / 100,
		}
		iter := int(iterRaw % 40)
		for _, cfg := range []Config{Tiered, InterpreterOnly, ForcedC2, WorstTier} {
			v := m.Factor(cfg, iter)
			if !(v >= 1-1e-9) || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTieredNeverBelowSteadyState(t *testing.T) {
	f := func(wRaw uint8, pinRaw uint16, a, b uint8) bool {
		m := Model{WarmupIters: int(wRaw%10) + 1, InterpFactor: float64(pinRaw%300) / 100}
		i, j := int(a%50), int(b%50)
		if i > j {
			i, j = j, i
		}
		return m.Factor(Tiered, i) >= m.Factor(Tiered, j)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
