package latency

import (
	"math"
	"testing"
	"testing/quick"

	"chopin/internal/trace"
)

const ms = 1e6

func evt(start, end int64) Event { return Event{Start: start, End: end} }

func TestSimpleLatency(t *testing.T) {
	events := []Event{evt(0, 10), evt(5, 25), evt(30, 31)}
	got := Simple(events)
	want := []float64{10, 20, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("simple[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMeteredFullSmoothingUniformArrivals(t *testing.T) {
	// Three events starting at 0, 10, 200; uniform synthetic arrivals are
	// 0, 100, 200. Event 1 "arrived" at 10 before its synthetic slot at 100,
	// so the earlier time (actual) is used; an event delayed past its slot
	// is charged from the slot.
	events := []Event{evt(0, 5), evt(10, 15), evt(200, 205)}
	got := Metered(events, FullSmoothing)
	want := []float64{5, 15 - 10, 5} // starts sorted: 0,10,200; synthetic 0,100,200
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("metered[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMeteredCapturesCascadingDelay(t *testing.T) {
	// A steady stream of 1ms-spaced events, then a 50ms pause-induced gap:
	// the first event after the gap has a synthetic (queued) start well
	// before its actual start, so its metered latency far exceeds simple.
	var events []Event
	for i := int64(0); i < 50; i++ {
		events = append(events, evt(i*ms, i*ms+ms/2))
	}
	gapStart := int64(50)*ms + 50*ms // resumes 50ms late
	for i := int64(0); i < 50; i++ {
		s := gapStart + i*ms
		events = append(events, evt(s, s+ms/2))
	}
	simple := NewDistribution(Simple(events))
	metered := NewDistribution(Metered(events, FullSmoothing))
	if metered.Max() <= simple.Max() {
		t.Fatalf("metered max %v should exceed simple max %v after a gap",
			metered.Max(), simple.Max())
	}
	if metered.Max() < 25*ms {
		t.Fatalf("metered max %v should reflect most of the 50ms gap", metered.Max())
	}
}

func TestMeteredNeverBelowSimple(t *testing.T) {
	// Paper: "metered latency ... can never be lower than the simple
	// latency". Property-based check over random event sets.
	f := func(raw []uint32) bool {
		if len(raw) < 2 {
			return true
		}
		var events []Event
		var cursor int64
		for _, r := range raw {
			gap := int64(r % 1000000)
			dur := int64(r%77777) + 1
			cursor += gap
			events = append(events, evt(cursor, cursor+dur))
		}
		for _, w := range []float64{FullSmoothing, 1 * ms, 100 * ms} {
			met := Metered(events, w)
			// Metered() sorts by start; recompute simple on the same order.
			sortedSimple := Metered(events, 1e-9) // tiny window = actual starts
			for i := range met {
				if met[i] < sortedSimple[i]-1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeteredTinyWindowEqualsSimple(t *testing.T) {
	events := []Event{evt(0, 10), evt(100, 130), evt(250, 260)}
	met := Metered(events, 1) // 1ns window: each event only sees itself
	want := []float64{10, 30, 10}
	for i := range want {
		if math.Abs(met[i]-want[i]) > 1e-9 {
			t.Fatalf("metered[%d] = %v, want %v", i, met[i], want[i])
		}
	}
}

func TestMeteredWindowMonotonicityAtMax(t *testing.T) {
	// Wider smoothing exposes more queueing: the max metered latency should
	// not decrease as the window grows (on a gap-heavy schedule).
	var events []Event
	for i := int64(0); i < 20; i++ {
		events = append(events, evt(i*ms, i*ms+ms/4))
	}
	for i := int64(0); i < 20; i++ {
		s := 20*ms + 100*ms + i*ms
		events = append(events, evt(s, s+ms/4))
	}
	prev := 0.0
	for _, w := range []float64{1 * ms, 10 * ms, 100 * ms} {
		max := NewDistribution(Metered(events, w)).Max()
		if max < prev-1e-6 {
			t.Fatalf("max metered latency decreased with window: %v -> %v", prev, max)
		}
		prev = max
	}
}

func TestMeteredEmptyAndSingle(t *testing.T) {
	if got := Metered(nil, 100); got != nil {
		t.Fatalf("Metered(nil) = %v", got)
	}
	got := Metered([]Event{evt(5, 17)}, FullSmoothing)
	if len(got) != 1 || got[0] != 12 {
		t.Fatalf("single event metered = %v, want [12]", got)
	}
}

func TestDistributionPercentiles(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	d := NewDistribution(vals)
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
	if got := d.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 50.5", got)
	}
	if d.N() != 100 {
		t.Fatalf("N = %d", d.N())
	}
}

func TestDistributionReportMonotone(t *testing.T) {
	vals := []float64{5, 1, 9, 2, 8, 3, 7, 4, 6, 10, 200, 42}
	rep := NewDistribution(vals).Report()
	if len(rep) != len(ReportPercentiles) {
		t.Fatalf("report has %d entries, want %d", len(rep), len(ReportPercentiles))
	}
	for i := 1; i < len(rep); i++ {
		if rep[i] < rep[i-1] {
			t.Fatalf("report not monotone at %d: %v", i, rep)
		}
	}
}

func TestCDFResolvableOnly(t *testing.T) {
	d := NewDistribution(make([]float64, 100)) // 100 zeros
	pts := d.CDF()
	for _, p := range pts {
		if p.Percentile >= 99.9 {
			t.Fatalf("100 samples cannot resolve p%v", p.Percentile)
		}
	}
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
}

func TestMMUNoPausesIsOne(t *testing.T) {
	if got := MMU(nil, 0, 1000*ms, 10*ms); got != 1 {
		t.Fatalf("MMU with no pauses = %v, want 1", got)
	}
}

func TestMMUSinglePause(t *testing.T) {
	pauses := []trace.Pause{{Start: 100 * ms, End: 110 * ms}}
	// A 20ms window fully containing the 10ms pause: utilization 0.5.
	if got := MMU(pauses, 0, 1000*ms, 20*ms); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("MMU(20ms) = %v, want 0.5", got)
	}
	// A 10ms window can be fully consumed by the pause.
	if got := MMU(pauses, 0, 1000*ms, 10*ms); got != 0 {
		t.Fatalf("MMU(10ms) = %v, want 0", got)
	}
	// A huge window dilutes the pause.
	if got := MMU(pauses, 0, 1000*ms, 1000*ms); math.Abs(got-0.99) > 1e-9 {
		t.Fatalf("MMU(1s) = %v, want 0.99", got)
	}
}

func TestMMUClusteredShortPausesAsBadAsOneLong(t *testing.T) {
	// The Cheng & Blelloch point: five 2ms pauses packed into 12ms are as
	// bad for a 12ms window as one 10ms pause.
	var clustered []trace.Pause
	for i := int64(0); i < 5; i++ {
		s := 100*ms + i*2500000 // 2ms pause every 2.5ms
		clustered = append(clustered, trace.Pause{Start: s, End: s + 2*ms})
	}
	single := []trace.Pause{{Start: 100 * ms, End: 110 * ms}}
	w := 12.0 * ms
	mc := MMU(clustered, 0, 1000*ms, w)
	msingle := MMU(single, 0, 1000*ms, w)
	if mc > msingle+0.05 {
		t.Fatalf("clustered pauses MMU %v should be ~as bad as single %v", mc, msingle)
	}
}

func TestMMUCurveMonotoneInWindow(t *testing.T) {
	pauses := []trace.Pause{
		{Start: 10 * ms, End: 12 * ms},
		{Start: 50 * ms, End: 51 * ms},
		{Start: 300 * ms, End: 320 * ms},
	}
	windows := []float64{1 * ms, 5 * ms, 25 * ms, 125 * ms, 625 * ms}
	curve := MMUCurve(pauses, 0, 1000*ms, windows)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Fatalf("MMU should be non-decreasing in window size: %v", curve)
		}
	}
	if curve[0] != 0 {
		t.Fatalf("a 1ms window inside a 2ms pause must give MMU 0, got %v", curve[0])
	}
}

func TestMMUUnsortedPausesMatchSorted(t *testing.T) {
	// The overlap scan early-exits past the window's right edge, which is
	// only valid on a time-ordered list; the public API takes arbitrary user
	// slices. Closed form: the 100-110ms and 110-120ms pauses fill a 20ms
	// window completely, so MMU must be 0 — but only if the scan is not
	// derailed by the out-of-order 300ms pause listed first.
	unsorted := []trace.Pause{
		{Start: 300 * ms, End: 310 * ms},
		{Start: 100 * ms, End: 110 * ms},
		{Start: 110 * ms, End: 120 * ms},
	}
	if got := MMU(unsorted, 0, 1000*ms, 20*ms); got != 0 {
		t.Fatalf("MMU over unsorted pauses = %v, want 0", got)
	}
	sorted := []trace.Pause{unsorted[1], unsorted[2], unsorted[0]}
	if got := MMU(sorted, 0, 1000*ms, 20*ms); got != 0 {
		t.Fatalf("MMU over sorted pauses = %v, want 0", got)
	}
	// The caller's slice must come back untouched.
	if unsorted[0].Start != 300*ms || unsorted[2].End != 120*ms {
		t.Fatalf("input slice reordered: %+v", unsorted)
	}
}

func TestMMUWindowEdges(t *testing.T) {
	// Hand-computed cases pinning the clamping at the run boundaries.
	cases := []struct {
		name     string
		pauses   []trace.Pause
		runEnd   int64
		windowNS float64
		want     float64
	}{
		// A 10ms pause abutting the run end: the worst 20ms window is the
		// final one, [980, 1000), half consumed -> 0.5.
		{"trailing pause", []trace.Pause{{Start: 990 * ms, End: 1000 * ms}},
			1000 * ms, 20 * ms, 0.5},
		// Same pause under a 40ms window: 10/40 consumed -> 0.75.
		{"trailing pause wide window", []trace.Pause{{Start: 990 * ms, End: 1000 * ms}},
			1000 * ms, 40 * ms, 0.75},
		// A pause opening the run: the candidate window cannot slide left of
		// runStart, so [0, 20) is the worst -> 0.5.
		{"leading pause", []trace.Pause{{Start: 0, End: 10 * ms}},
			1000 * ms, 20 * ms, 0.5},
		// Window wider than the run clamps to the whole run: 10/100 -> 0.9.
		{"window exceeds run", []trace.Pause{{Start: 0, End: 10 * ms}},
			100 * ms, 1000 * ms, 0.9},
	}
	for _, c := range cases {
		if got := MMU(c.pauses, 0, c.runEnd, c.windowNS); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: MMU = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMMUBoundedZeroOne(t *testing.T) {
	f := func(raw []uint32, wRaw uint32) bool {
		var pauses []trace.Pause
		var cursor int64
		for _, r := range raw {
			cursor += int64(r%50000) + 1
			end := cursor + int64(r%20000) + 1
			pauses = append(pauses, trace.Pause{Start: cursor, End: end})
			cursor = end
		}
		w := float64(wRaw%100000000) + 1
		u := MMU(pauses, 0, cursor+1000000, w)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalJOPSRewardsFasterSystems(t *testing.T) {
	// Two synthetic runs with identical event counts: one fast, one with the
	// same schedule dilated 4x (slower rate, higher latency).
	mkRun := func(scale int64) []Event {
		var evs []Event
		for i := int64(0); i < 2000; i++ {
			start := i * ms / 2 * scale
			evs = append(evs, Event{Start: start, End: start + scale*ms/4})
		}
		return evs
	}
	fast := CriticalJOPS(mkRun(1), nil)
	slow := CriticalJOPS(mkRun(4), nil)
	if fast <= slow {
		t.Fatalf("critical-jOPS should reward the faster run: %v vs %v", fast, slow)
	}
}

func TestCriticalJOPSSLAFailureCollapsesScore(t *testing.T) {
	var evs []Event
	for i := int64(0); i < 1000; i++ {
		start := i * ms
		evs = append(evs, Event{Start: start, End: start + 500*ms}) // 500ms latencies
	}
	tight := CriticalJOPS(evs, []SLA{{99, 1 * ms}})
	loose := CriticalJOPS(evs, []SLA{{99, 1000 * ms}})
	if tight >= loose {
		t.Fatalf("failing every SLA should collapse the score: %v vs %v", tight, loose)
	}
}

func TestCriticalJOPSEmpty(t *testing.T) {
	if got := CriticalJOPS(nil, nil); got != 0 {
		t.Fatalf("empty run = %v, want 0", got)
	}
}
