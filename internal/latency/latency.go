// Package latency implements the paper's user-experienced latency
// methodology (Section 4.4): simple latency, metered latency with
// sliding-average smoothing of request start times, latency distributions
// reported by percentile, and the classic minimum mutator utilization (MMU)
// metric of Cheng and Blelloch for comparison.
//
// Simple latency times every event directly. Metered latency models the
// queuing behaviour of real request systems: each event is assigned an
// assumed start time as if requests had arrived at uniform intervals, so a
// pause delays not only in-flight events but everything queued behind them.
// The assumed start is the sliding average of actual start times over a
// configurable window — a 1 ms window is effectively simple latency, full
// smoothing is a perfectly uniform arrival schedule, and the paper suggests
// 100 ms as a reasonable middle ground.
package latency

import (
	"math"
	"sort"

	"chopin/internal/stats"
)

// Event is one timed request/frame, in virtual nanoseconds.
type Event struct {
	Start, End int64
}

// FullSmoothing selects the uniform-arrival limit of metered latency.
const FullSmoothing = -1

// ReportPercentiles are the distribution points the paper's figures plot,
// from the median out to the 99.9999th percentile.
var ReportPercentiles = []float64{0, 50, 90, 99, 99.9, 99.99, 99.999, 99.9999}

// Simple returns the simple latency of each event: end minus actual start.
func Simple(events []Event) []float64 {
	out := make([]float64, len(events))
	for i, e := range events {
		out[i] = float64(e.End - e.Start)
	}
	return out
}

// Metered returns the metered latency of each event under the given
// smoothing window (ns). windowNS == FullSmoothing (or any non-positive
// value) yields uniform synthetic arrivals over the span of actual starts.
// Each latency is end minus the earlier of the actual and synthetic start,
// so metered latency can never be below simple latency.
func Metered(events []Event, windowNS float64) []float64 {
	n := len(events)
	if n == 0 {
		return nil
	}
	sorted := make([]Event, n)
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	synthetic := make([]float64, n)
	if windowNS <= 0 {
		first := float64(sorted[0].Start)
		last := float64(sorted[n-1].Start)
		if n == 1 {
			synthetic[0] = first
		} else {
			step := (last - first) / float64(n-1)
			for i := range synthetic {
				synthetic[i] = first + step*float64(i)
			}
		}
	} else {
		// Centered sliding average over the actual starts within
		// [start-w/2, start+w/2], via a two-pointer sweep.
		half := windowNS / 2
		lo, hi := 0, 0 // window is sorted[lo:hi]
		var sum float64
		for i := 0; i < n; i++ {
			center := float64(sorted[i].Start)
			for hi < n && float64(sorted[hi].Start) <= center+half {
				sum += float64(sorted[hi].Start)
				hi++
			}
			for lo < hi && float64(sorted[lo].Start) < center-half {
				sum -= float64(sorted[lo].Start)
				lo++
			}
			synthetic[i] = sum / float64(hi-lo)
		}
	}

	out := make([]float64, n)
	for i, e := range sorted {
		start := math.Min(float64(e.Start), synthetic[i])
		out[i] = float64(e.End) - start
	}
	return out
}

// Distribution is a sorted latency sample supporting percentile queries and
// CDF export.
type Distribution struct {
	sorted []float64
}

// NewDistribution copies and sorts vals.
func NewDistribution(vals []float64) *Distribution {
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	return &Distribution{sorted: s}
}

// N returns the sample size.
func (d *Distribution) N() int { return len(d.sorted) }

// Percentile returns the p-th percentile (0..100).
func (d *Distribution) Percentile(p float64) float64 {
	return stats.PercentileSorted(d.sorted, p)
}

// Report returns the values at ReportPercentiles, in order.
func (d *Distribution) Report() []float64 {
	out := make([]float64, len(ReportPercentiles))
	for i, p := range ReportPercentiles {
		out[i] = d.Percentile(p)
	}
	return out
}

// Max returns the largest observed value.
func (d *Distribution) Max() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// CDFPoint is one point of a cumulative distribution curve.
type CDFPoint struct {
	Percentile float64
	Value      float64
}

// CDF returns the distribution sampled at the paper's log-scaled percentile
// axis (0, 90, 99, 99.9, ... up to what the sample size resolves), plus
// intermediate points for smooth plotting.
func (d *Distribution) CDF() []CDFPoint {
	if len(d.sorted) == 0 {
		return nil
	}
	var pts []CDFPoint
	for _, base := range []float64{0, 25, 50, 75, 90, 95, 99, 99.5, 99.9, 99.95, 99.99, 99.995, 99.999, 99.9995, 99.9999} {
		// Skip percentiles the sample cannot resolve (need >= 1/(1-p) points).
		if base > 0 && float64(len(d.sorted)) < 1/(1-base/100) {
			break
		}
		pts = append(pts, CDFPoint{base, d.Percentile(base)})
	}
	return pts
}
