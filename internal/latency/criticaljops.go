package latency

import (
	"math"
	"sort"

	"chopin/internal/stats"
)

// SLA is one service-level agreement: a percentile that must stay under a
// bound.
type SLA struct {
	Percentile float64 // e.g. 99
	BoundNS    float64 // latency bound in nanoseconds
}

// DefaultSLAs mirrors SPECjbb2015's ladder of response-time SLAs, expressed
// against the 99th percentile as the benchmark does (10ms to 100ms).
var DefaultSLAs = []SLA{
	{99, 10e6},
	{99, 25e6},
	{99, 50e6},
	{99, 75e6},
	{99, 100e6},
}

// CriticalJOPS computes a SPECjbb2015-style critical-jOPS score from a
// latency run, as discussed in the paper's related work (Section 3.2): for
// each SLA, find the highest sustainable throughput (events/second) whose
// latency distribution still meets the SLA, then take the geometric mean
// across SLAs.
//
// The sustainable throughput per SLA is estimated by sweeping a truncation
// point through the run: events are sorted by start time, and for a prefix
// rate r we check whether the events observed while the system ran at or
// below that rate meet the SLA. Because our workloads replay a fixed
// request set rather than an open-loop injector, this is the closed-system
// analogue of SPECjbb's rate ladder; it preserves the metric's structure —
// a geomean of SLA-constrained throughputs — which is what matters for
// methodology work.
func CriticalJOPS(events []Event, slas []SLA) float64 {
	if len(events) == 0 {
		return 0
	}
	if len(slas) == 0 {
		slas = DefaultSLAs
	}
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	// Windowed throughput and latency: split the run into windows of equal
	// event count; each window has an observed rate and a latency sample.
	const windows = 20
	n := len(sorted)
	per := n / windows
	if per < 1 {
		per = 1
	}
	type window struct {
		rate float64 // events per second
		lats []float64
	}
	var ws []window
	for i := 0; i < n; i += per {
		end := i + per
		if end > n {
			end = n
		}
		span := float64(sorted[end-1].End - sorted[i].Start)
		if span <= 0 {
			span = 1
		}
		w := window{rate: float64(end-i) / (span / 1e9)}
		for _, e := range sorted[i:end] {
			w.lats = append(w.lats, float64(e.End-e.Start))
		}
		ws = append(ws, w)
	}

	var maxRate float64
	for _, w := range ws {
		if w.rate > maxRate {
			maxRate = w.rate
		}
	}

	var logSum float64
	count := 0
	for _, sla := range slas {
		best := 0.0
		for _, w := range ws {
			if stats.Percentile(w.lats, sla.Percentile) <= sla.BoundNS && w.rate > best {
				best = w.rate
			}
		}
		if best <= 0 {
			// No window met this rung. SPECjbb would score it zero, which
			// collapses a geomean; instead grant rate credit proportional
			// to how close the run came (bound over achieved percentile),
			// preserving ordering while keeping scores readable.
			var lats []float64
			for _, w := range ws {
				lats = append(lats, w.lats...)
			}
			achieved := stats.Percentile(lats, sla.Percentile)
			if achieved > 0 {
				best = maxRate * sla.BoundNS / achieved
			}
			if best <= 0 {
				best = 1e-3
			}
		}
		logSum += math.Log(best)
		count++
	}
	return math.Exp(logSum / float64(count))
}
