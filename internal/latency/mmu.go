package latency

import (
	"sort"

	"chopin/internal/trace"
)

// MMU computes the minimum mutator utilization for a sliding window of
// windowNS over the run [runStart, runEnd): the worst-case fraction of any
// window left to the application after stop-the-world pauses. Cheng and
// Blelloch proposed it because a burst of short pauses can be as harmful as
// one long pause — the insight the paper revisits (Figure 2) when arguing
// that GC pause time is a poor proxy for user-experienced latency.
//
// The minimum over window positions is attained with a window edge aligned
// to a pause boundary, so only those candidate positions are evaluated.
func MMU(pauses []trace.Pause, runStart, runEnd int64, windowNS float64) float64 {
	span := float64(runEnd - runStart)
	if span <= 0 || windowNS <= 0 {
		return 1
	}
	if windowNS >= span {
		windowNS = span
	}
	if len(pauses) == 0 {
		return 1
	}
	// The overlap scan early-exits on the first pause starting past the
	// window, which is only sound over a time-ordered list. Simulator traces
	// arrive sorted; the public API accepts arbitrary user slices, so sort a
	// copy when needed rather than silently dropping overlap.
	if !sort.SliceIsSorted(pauses, func(i, j int) bool { return pauses[i].Start < pauses[j].Start }) {
		sorted := make([]trace.Pause, len(pauses))
		copy(sorted, pauses)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		pauses = sorted
	}

	worst := 0.0 // worst pause overlap seen in any window
	consider := func(a float64) {
		if a < float64(runStart) {
			a = float64(runStart)
		}
		if a+windowNS > float64(runEnd) {
			a = float64(runEnd) - windowNS
		}
		b := a + windowNS
		var overlap float64
		for _, p := range pauses {
			s, e := float64(p.Start), float64(p.End)
			if e <= a {
				continue
			}
			if s >= b {
				break
			}
			lo, hi := s, e
			if lo < a {
				lo = a
			}
			if hi > b {
				hi = b
			}
			overlap += hi - lo
		}
		if overlap > worst {
			worst = overlap
		}
	}
	for _, p := range pauses {
		consider(float64(p.Start))
		consider(float64(p.End) - windowNS)
	}
	u := 1 - worst/windowNS
	if u < 0 {
		u = 0
	}
	return u
}

// MMUCurve evaluates MMU at each of the given window sizes, producing the
// classic MMU-vs-window plot.
func MMUCurve(pauses []trace.Pause, runStart, runEnd int64, windows []float64) []float64 {
	out := make([]float64, len(windows))
	for i, w := range windows {
		out[i] = MMU(pauses, runStart, runEnd, w)
	}
	return out
}
