package cpuarch

import (
	"math"
	"testing"
	"testing/quick"
)

// a mid-of-the-road profile for tests (roughly a lusearch-like workload).
func testProfile() Profile {
	return Profile{
		TargetIPC:          1.49,
		DCMissPerKI:        12,
		DTLBMissPerMI:      154,
		LLCMissPerMI:       2830,
		MispredictFrac1000: 40,
		RestartFrac1M:      596,
		BadSpecFrac1000:    41,
		FrontEndBound:      0.23,
		BackEndBound:       0.29,
		BackEndMemory:      0.20,
		SMTContention:      0.198,
		LLCSensitivity:     0.4,
		ARMAffinity:        0.87,
		IntelAffinity:      0.56,
	}
}

func TestCalibrationReproducesTargetIPC(t *testing.T) {
	p := testProfile()
	if got := p.IPC(Zen4); math.Abs(got-p.TargetIPC) > 1e-9 {
		t.Fatalf("IPC on reference machine = %v, want %v", got, p.TargetIPC)
	}
}

func TestIPCBoundedByIssueWidth(t *testing.T) {
	p := Profile{TargetIPC: 100}
	if got := p.IPC(Zen4); got > Zen4.IssueWidth+1e-9 {
		t.Fatalf("IPC = %v exceeds issue width %v", got, Zen4.IssueWidth)
	}
}

func TestSlowDRAMHurtsMemoryBoundMore(t *testing.T) {
	memBound := testProfile()
	memBound.LLCMissPerMI = 8506 // h2o-like
	memBound.BackEndMemory = 0.41
	cpuBound := testProfile()
	cpuBound.LLCMissPerMI = 335 // biojava-like
	cpuBound.BackEndMemory = 0.15

	slowMem := memBound.TimeFactor(Zen4.WithSlowDRAM())
	slowCPU := cpuBound.TimeFactor(Zen4.WithSlowDRAM())
	if slowMem <= slowCPU {
		t.Fatalf("memory-bound slowdown %v should exceed cpu-bound %v", slowMem, slowCPU)
	}
	if slowMem <= 1 {
		t.Fatalf("slow DRAM should slow the workload, factor = %v", slowMem)
	}
}

func TestLLCShrinkHurtsSensitiveWorkloads(t *testing.T) {
	sensitive := testProfile()
	sensitive.LLCSensitivity = 0.8
	insensitive := testProfile()
	insensitive.LLCSensitivity = 0.0

	small := Zen4.WithLLCScale(1.0 / 16)
	fs := sensitive.TimeFactor(small)
	fi := insensitive.TimeFactor(small)
	if fs <= fi {
		t.Fatalf("LLC-sensitive slowdown %v should exceed insensitive %v", fs, fi)
	}
	if math.Abs(fi-1) > 1e-9 {
		t.Fatalf("zero-sensitivity workload should be unaffected, factor = %v", fi)
	}
}

func TestFrequencyBoostHelpsComputeBoundMore(t *testing.T) {
	compute := testProfile()
	compute.LLCMissPerMI = 100
	compute.BackEndMemory = 0.05
	mem := testProfile()
	mem.LLCMissPerMI = 8000
	mem.BackEndMemory = 0.45

	boost := Zen4.WithBoost(ZenBoostGHz)
	sc := compute.TimeFactor(boost) // < 1 is a speedup
	sm := mem.TimeFactor(boost)
	if sc >= 1 || sm >= 1 {
		t.Fatalf("boost should speed both up: compute %v, mem %v", sc, sm)
	}
	if sc >= sm {
		t.Fatalf("compute-bound should benefit more: compute %v vs mem %v", sc, sm)
	}
}

func TestCrossArchitectureAffinity(t *testing.T) {
	p := testProfile()
	if got := p.TimeFactor(NeoverseN1); math.Abs(got-1.87) > 1e-9 {
		t.Fatalf("ARM factor = %v, want 1.87", got)
	}
	if got := p.TimeFactor(GoldenCove); math.Abs(got-1.56) > 1e-9 {
		t.Fatalf("Intel factor = %v, want 1.56", got)
	}
}

func TestReferenceMachineFactorIsOne(t *testing.T) {
	p := testProfile()
	if got := p.TimeFactor(Zen4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("reference factor = %v, want 1", got)
	}
}

func TestNSPerInstructionConsistency(t *testing.T) {
	p := testProfile()
	// ns/instr on reference must equal 1/(IPC * freq).
	want := 1 / (p.TargetIPC * Zen4.FreqGHz)
	if got := p.NSPerInstruction(Zen4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ns/instr = %v, want %v", got, want)
	}
}

func TestCapacityPerfectUpToCores(t *testing.T) {
	c := Zen4.Capacity(0)
	for n := 1; n <= Zen4.Cores; n++ {
		if got := c(n); got != float64(n) {
			t.Fatalf("capacity(%d) = %v, want %d", n, got, n)
		}
	}
}

func TestCapacitySMTRegion(t *testing.T) {
	c := Zen4.Capacity(0)
	// 32 threads on 16 cores with 0.30 yield: 16 + 0.30*16 = 20.8.
	if got := c(32); math.Abs(got-20.8) > 1e-9 {
		t.Fatalf("capacity(32) = %v, want 20.8", got)
	}
	// Saturates past HWThreads.
	if got := c(64); math.Abs(got-20.8) > 1e-9 {
		t.Fatalf("capacity(64) = %v, want 20.8", got)
	}
}

func TestCapacitySMTContentionErodesYield(t *testing.T) {
	free := Zen4.Capacity(0)(32)
	contended := Zen4.Capacity(0.5)(32)
	fullyContended := Zen4.Capacity(1)(32)
	if !(fullyContended < contended && contended < free) {
		t.Fatalf("capacity should fall with contention: %v, %v, %v",
			free, contended, fullyContended)
	}
	if fullyContended != float64(Zen4.Cores) {
		t.Fatalf("full contention should collapse to core count, got %v", fullyContended)
	}
}

func TestTopDownReproducesDeclaredFractions(t *testing.T) {
	p := testProfile()
	td := p.Analyze(Zen4)
	if math.Abs(td.FrontEnd-0.23) > 1e-9 || math.Abs(td.BackEnd-0.29) > 1e-9 ||
		math.Abs(td.BadSpec-0.041) > 1e-9 || math.Abs(td.BackEndMemory-0.20) > 1e-9 {
		t.Fatalf("declared fractions not reproduced: %+v", td)
	}
	sum := td.Retiring + td.FrontEnd + td.BadSpec + td.BackEnd
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("top-down fractions sum to %v, want 1", sum)
	}
}

func TestTopDownMemoryGrowsUnderSlowDRAM(t *testing.T) {
	p := testProfile()
	ref := p.Analyze(Zen4)
	slow := p.Analyze(Zen4.WithSlowDRAM())
	if slow.BackEndMemory <= ref.BackEndMemory {
		t.Fatalf("memory-bound share should grow under slow DRAM: %v -> %v",
			ref.BackEndMemory, slow.BackEndMemory)
	}
	if slow.IPC >= ref.IPC {
		t.Fatalf("IPC should fall under slow DRAM: %v -> %v", ref.IPC, slow.IPC)
	}
}

func TestQuickTimeFactorPositiveFinite(t *testing.T) {
	f := func(ipcRaw, memRaw, llcRaw uint16) bool {
		p := Profile{
			TargetIPC:      0.5 + float64(ipcRaw%500)/100,
			BackEndMemory:  float64(memRaw%100) / 100,
			LLCMissPerMI:   float64(llcRaw % 9000),
			DCMissPerKI:    5,
			LLCSensitivity: 0.3,
		}
		for _, m := range []Machine{Zen4, Zen4.WithSlowDRAM(), Zen4.WithLLCScale(1.0 / 16),
			Zen4.WithBoost(ZenBoostGHz), GoldenCove, NeoverseN1} {
			tf := p.TimeFactor(m)
			if !(tf > 0) || math.IsInf(tf, 0) || math.IsNaN(tf) {
				return false
			}
			if p.IPC(m) > m.IssueWidth+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSlowDRAMNeverSpeedsUp(t *testing.T) {
	f := func(llcRaw, memRaw uint16) bool {
		p := testProfile()
		p.LLCMissPerMI = float64(llcRaw % 9000)
		p.BackEndMemory = float64(memRaw%95) / 100
		return p.TimeFactor(Zen4.WithSlowDRAM()) >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWithLLCScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zen4.WithLLCScale(0)
}
