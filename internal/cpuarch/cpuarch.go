// Package cpuarch models the processor on which the simulated workloads run.
//
// The paper characterizes workloads with microarchitectural nominal
// statistics (UIP, UDC, ULL, USB, USF, ...) gathered from hardware
// performance counters, and with sensitivity experiments that re-run
// workloads under a modified machine: reduced last-level cache (PLS), slower
// DRAM (PMS), frequency boost (PFS), and entirely different processors
// (UAI, UAA). We reproduce that with a share-based top-down model: a
// workload's cycles on the reference machine are partitioned into
// frequency-scaled compute, on-chip memory stalls, and DRAM-bound stalls
// (whose nanosecond cost is frequency-independent); sensitivity experiments
// are then literally "swap the machine and re-evaluate" — the same shape as
// the paper's methodology. The shares are derived from the workload's
// published top-down fractions, so the reference machine reproduces the
// published IPC by construction and the sensitivity responses follow from
// how memory-bound the workload is.
package cpuarch

import (
	"fmt"
	"math"
)

// Machine describes a processor configuration.
type Machine struct {
	Name      string
	Cores     int     // physical cores
	HWThreads int     // hardware threads (with SMT)
	FreqGHz   float64 // operating frequency
	// IssueWidth bounds attainable ILP; reported IPC is clamped to it.
	IssueWidth float64
	// L2Latency is the average penalty, in cycles, of an L1D miss that is
	// served on-chip (L2/L3 hit). Used to apportion memory-bound cycles
	// between on-chip and DRAM stalls.
	L2Latency float64
	// DRAMLatencyNS is the average DRAM access latency in nanoseconds. Its
	// nanosecond cost does not shrink with frequency, which is why
	// memory-bound workloads gain little from frequency scaling.
	DRAMLatencyNS float64
	// LLCSizeMB is the last-level cache capacity.
	LLCSizeMB float64
	// SMTYield is the marginal capacity contributed by the second hardware
	// thread of a core, as a fraction of a full core (e.g. 0.3).
	SMTYield float64
	// PerfRatio is the machine's single-thread performance on a neutral
	// compute-bound workload relative to the reference machine (>1 = faster).
	PerfRatio float64
}

// Profile is a workload's intrinsic microarchitectural behaviour: the
// hardware-independent characterization that, combined with a Machine,
// determines its execution rate. The units follow the paper's Table 1.
type Profile struct {
	// TargetIPC is the workload's instructions-per-cycle on the reference
	// machine (paper metric UIP / 100).
	TargetIPC float64
	// DCMissPerKI is L1 data-cache misses per 1000 instructions (UDC).
	DCMissPerKI float64
	// DTLBMissPerMI is DTLB misses per million instructions (UDT).
	DTLBMissPerMI float64
	// LLCMissPerMI is last-level-cache misses per million instructions (ULL).
	LLCMissPerMI float64
	// MispredictFrac1000 is 1000 x the fraction of slots lost to branch
	// mispredicts (UBP).
	MispredictFrac1000 float64
	// RestartFrac1M is 1e6 x the fraction of slots lost to pipeline
	// restarts (UBR).
	RestartFrac1M float64
	// BadSpecFrac1000 is 1000 x the total bad-speculation fraction (UBS).
	BadSpecFrac1000 float64
	// FrontEndBound is the fraction of slots lost to the front end (USF/100).
	FrontEndBound float64
	// BackEndBound is the fraction of slots lost to the back end (USB/100).
	BackEndBound float64
	// BackEndMemory is the memory subset of the back-end-bound fraction
	// (UBM/100); the rest of the back end is core-bound (execution ports,
	// dividers, ...), which scales with frequency.
	BackEndMemory float64
	// ExternalBound is the share of the workload's time spent waiting on
	// resources outside the CPU/memory system — GPU for jme, the network
	// stack for kafka/tomcat/cassandra, lock convoys. That share responds
	// to neither frequency, cache size nor DRAM speed, which is how those
	// workloads show near-zero PFS/PLS/PMS in the paper.
	ExternalBound float64
	// SMTContention is the workload's sensitivity to sharing a core with its
	// SMT sibling (USC / 1000, clamped to [0,1]); it erodes the machine's
	// SMTYield.
	SMTContention float64
	// LLCSensitivity is the exponent of the miss-rate power law
	// miss(size) = miss(ref) * (size/ref)^-LLCSensitivity, which drives the
	// PLS (cache-size sensitivity) experiment.
	LLCSensitivity float64
	// ARMAffinity and IntelAffinity are intrinsic cross-architecture
	// slowdowns (UAA, UAI as fractions, e.g. 0.53 = 53% slower) measured on
	// real silicon in the paper; they carry ISA- and core-design-specific
	// effects that a share model cannot derive, so they are declared traits
	// applied when running on the corresponding machine.
	ARMAffinity   float64
	IntelAffinity float64
}

// Reference machines. Zen4 mirrors the paper's AMD Ryzen 9 7950X testbed and
// is the configuration against which workload profiles are calibrated.
var (
	Zen4 = Machine{
		Name: "AMD Zen4 (Ryzen 9 7950X)", Cores: 16, HWThreads: 32,
		FreqGHz: 4.5, IssueWidth: 6,
		L2Latency: 14, DRAMLatencyNS: 75,
		LLCSizeMB: 64, SMTYield: 0.30, PerfRatio: 1,
	}
	GoldenCove = Machine{
		Name: "Intel Golden Cove (i9-12900KF)", Cores: 8, HWThreads: 16,
		FreqGHz: 5.1, IssueWidth: 6,
		L2Latency: 15, DRAMLatencyNS: 80,
		LLCSizeMB: 30, SMTYield: 0.28, PerfRatio: 0.95,
	}
	NeoverseN1 = Machine{
		Name: "ARM Neoverse N1 (Ampere Altra Q80-30)", Cores: 80, HWThreads: 80,
		FreqGHz: 3.0, IssueWidth: 4,
		L2Latency: 12, DRAMLatencyNS: 95,
		LLCSizeMB: 32, SMTYield: 0, PerfRatio: 0.55,
	}
)

// ZenBoostGHz is the boost frequency used for the PFS experiment.
const ZenBoostGHz = 5.4

// WithSlowDRAM returns the machine reconfigured to the paper's DDR5-2000
// memory-sensitivity experiment (roughly 1.8x the access latency).
func (m Machine) WithSlowDRAM() Machine {
	m.Name += " +slowDRAM"
	m.DRAMLatencyNS *= 1.8
	return m
}

// WithLLCScale returns the machine with its LLC scaled by factor (the paper's
// resctrl experiment uses 1/16).
func (m Machine) WithLLCScale(factor float64) Machine {
	if factor <= 0 {
		panic(fmt.Sprintf("cpuarch: LLC scale must be positive, got %v", factor))
	}
	m.Name += fmt.Sprintf(" LLCx%.3g", factor)
	m.LLCSizeMB *= factor
	return m
}

// WithBoost returns the machine with Core Performance Boost enabled (the
// paper's frequency-scaling experiment; Zen4 boosts 4.5 -> ~5.4 GHz).
func (m Machine) WithBoost(freqGHz float64) Machine {
	m.Name += " +boost"
	m.FreqGHz = freqGHz
	return m
}

// shares partitions the workload's reference-machine execution time into a
// DRAM-bound share (frequency-independent nanoseconds, scales with DRAM
// latency and LLC miss rate), an external-wait share (responds to nothing),
// and everything else (scales with frequency).
func (p Profile) shares() (dram, external, other float64) {
	memShare := p.BackEndMemory
	if memShare < 0 {
		memShare = 0
	}
	if memShare > 0.95 {
		memShare = 0.95
	}
	external = p.ExternalBound
	if external < 0 {
		external = 0
	}
	if external > 0.98 {
		external = 0.98
	}
	// Apportion the memory-bound share between DRAM and on-chip stalls in
	// proportion to their modelled cycle contributions on the reference
	// machine. The memory share applies to the CPU-attributed remainder.
	dramCyc := p.LLCMissPerMI / 1e6 * Zen4.DRAMLatencyNS * Zen4.FreqGHz
	chipCyc := p.DCMissPerKI / 1000 * Zen4.L2Latency
	if dramCyc+chipCyc > 0 {
		dram = (1 - external) * memShare * dramCyc / (dramCyc + chipCyc)
	}
	return dram, external, 1 - dram - external
}

// llcMissFactor returns the multiplier on LLC misses when running with the
// given LLC size instead of the reference.
func (p Profile) llcMissFactor(m Machine) float64 {
	if p.LLCSensitivity <= 0 || m.LLCSizeMB == Zen4.LLCSizeMB {
		return 1
	}
	return math.Pow(m.LLCSizeMB/Zen4.LLCSizeMB, -p.LLCSensitivity)
}

// TimeFactor returns the multiplicative slowdown (>1) or speedup (<1) of
// running the workload on machine m instead of the reference Zen4 machine.
// The simulator multiplies every mutator quantum by this factor, so machine
// sensitivity experiments flow through to measured run times.
func (p Profile) TimeFactor(m Machine) float64 {
	switch m.Name {
	case GoldenCove.Name:
		return 1 + p.IntelAffinity
	case NeoverseN1.Name:
		return 1 + p.ARMAffinity
	}
	dram, external, other := p.shares()
	// DRAM-bound nanoseconds scale with DRAM latency and miss count;
	// external waits scale with nothing; the rest scales inversely with
	// frequency (and the machine's IPC-neutral performance ratio).
	dramPart := dram * (m.DRAMLatencyNS / Zen4.DRAMLatencyNS) * p.llcMissFactor(m)
	otherPart := other * (Zen4.FreqGHz / m.FreqGHz) / m.PerfRatio
	return dramPart + external + otherPart
}

// IPC returns the modelled instructions per cycle on machine m: the reference
// IPC corrected for the machine's time factor and frequency, clamped to the
// issue width.
func (p Profile) IPC(m Machine) float64 {
	if p.TargetIPC <= 0 {
		return 0
	}
	// instructions/ns on reference = TargetIPC * freq_ref; on m it is slower
	// by TimeFactor; divide by m's frequency to get per-cycle.
	ipc := p.TargetIPC * Zen4.FreqGHz / p.TimeFactor(m) / m.FreqGHz
	if ipc > m.IssueWidth {
		ipc = m.IssueWidth
	}
	return ipc
}

// NSPerInstruction returns wall nanoseconds per instruction on m.
func (p Profile) NSPerInstruction(m Machine) float64 {
	if p.TargetIPC <= 0 {
		return 0
	}
	return 1 / (p.TargetIPC * Zen4.FreqGHz) * p.TimeFactor(m)
}

// Capacity returns a capacity function for the machine, eroded by the
// workload's SMT contention: the first Cores runnable threads scale
// perfectly; hardware threads beyond that contribute only the SMT yield.
func (m Machine) Capacity(smtContention float64) func(int) float64 {
	if smtContention < 0 {
		smtContention = 0
	}
	if smtContention > 1 {
		smtContention = 1
	}
	yield := m.SMTYield * (1 - smtContention)
	return func(n int) float64 {
		if n <= m.Cores {
			return float64(n)
		}
		extra := n - m.Cores
		if max := m.HWThreads - m.Cores; extra > max {
			extra = max
		}
		return float64(m.Cores) + yield*float64(extra)
	}
}

// TopDown summarizes the pipeline-slot breakdown for reporting: the fractions
// of slots attributed to retiring, front-end, bad speculation and back-end
// (with the memory subset), mirroring the paper's U-group stats.
type TopDown struct {
	IPC           float64
	Retiring      float64
	FrontEnd      float64
	BadSpec       float64
	BackEnd       float64
	BackEndMemory float64
}

// Analyze returns the top-down breakdown for the profile on machine m. On
// the reference machine it reproduces the declared fractions; on other
// machines the memory-bound share is rescaled by the modelled stall change.
func (p Profile) Analyze(m Machine) TopDown {
	front := p.FrontEndBound
	spec := p.BadSpecFrac1000 / 1000
	back := p.BackEndBound
	mem := p.BackEndMemory
	if m.Name != Zen4.Name {
		dram, _, _ := p.shares()
		grow := dram * ((m.DRAMLatencyNS/Zen4.DRAMLatencyNS)*p.llcMissFactor(m) - 1)
		back += grow
		mem += grow
	}
	retiring := 1 - front - spec - back
	if retiring < 0 {
		retiring = 0
	}
	return TopDown{
		IPC:           p.IPC(m),
		Retiring:      retiring,
		FrontEnd:      front,
		BadSpec:       spec,
		BackEnd:       back,
		BackEndMemory: mem,
	}
}
