package traceview

import (
	"fmt"
	"io"

	"chopin/internal/obs/span"
)

// Fleet renderers: one track per replica — STW bars, load, traced requests —
// as Chrome trace-event JSON for Perfetto, and as a terminal timeline. The
// JSON is hand-assembled like WriteChromeTrace, so field order is stable and
// a golden file can lock the format byte-for-byte.

// Fleet-layer thread IDs, appended after the per-replica span tracks
// (gc=1 … sched=4).
const (
	tidRequests = 5
	tidRoutes   = 6
)

// WriteFleetChrome writes assembled fleet traces as one Chrome trace-event
// JSON object: each replica is a process carrying its own GC/STW/mutator
// tracks, a "requests" track with the logical requests it served (blame
// decomposition in args), a "routes" track of balancer decisions, and
// counter tracks for in-flight, goodput and SLO burn rate from the metric
// windows.
func WriteFleetChrome(w io.Writer, fts []*span.FleetTrace) error {
	bw := &errWriter{w: w}
	bw.str(`{"traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			bw.str(",\n")
		} else {
			bw.str("\n")
		}
		first = false
		bw.str(line)
	}

	pid := 0
	for _, ft := range fts {
		base := pid
		pids := map[int]int{} // replica index -> pid
		for _, rt := range ft.Replicas {
			pid++
			pids[rt.Index] = pid
			label := ft.Run
			if label == "" {
				label = "fleet"
			}
			if ft.Benchmark != "" || ft.Collector != "" {
				label = fmt.Sprintf("%s (%s/%s)", label, ft.Benchmark, ft.Collector)
			}
			label = fmt.Sprintf("%s replica %d", label, rt.Index)
			emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
				pid, jstr(label)))
			for _, track := range trackOrder {
				emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
					pid, trackTIDs[track], jstr(track)))
			}
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"requests"}}`,
				pid, tidRequests))
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"routes"}}`,
				pid, tidRoutes))

			for _, s := range rt.Tree.Spans {
				args := fmt.Sprintf(`{"span_id":%d,"parent":%d,"cycle":%d`, s.ID, s.Parent, s.Cycle)
				if s.Cause != 0 {
					args += fmt.Sprintf(`,"cause":%d`, s.Cause)
				}
				if s.Open {
					args += `,"truncated":true`
				}
				args += "}"
				emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":%s}`,
					jstr(s.Name), jstr(s.Track), usec(s.Start), usec(s.DurNS()), pid, trackTIDs[s.Track], args))
			}
			for _, m := range rt.Tree.Marks {
				emit(fmt.Sprintf(`{"name":%s,"cat":"mark","ph":"i","ts":%s,"pid":%d,"tid":%d,"s":"p","args":{"cause":%d}}`,
					jstr(m.Name), usec(m.TNS), pid, trackTIDs[span.TrackGC], m.Cause))
			}
			for _, smp := range rt.Tree.Samples {
				emit(fmt.Sprintf(`{"name":"heap","ph":"C","ts":%s,"pid":%d,"tid":0,"args":{"used_mb":%s,"live_mb":%s}}`,
					usec(smp.TNS), pid, jnum(smp.HeapUsed/(1<<20)), jnum(smp.LiveEst/(1<<20))))
			}
			for _, win := range rt.Windows {
				emit(fmt.Sprintf(`{"name":"load","ph":"C","ts":%s,"pid":%d,"tid":0,"args":{"in_flight":%d,"goodput":%s,"burn":%s}}`,
					usec(win.EndNS), pid, win.InFlight, jnum(win.Goodput), jnum(win.BurnRate)))
			}
		}

		// Requests and routes render in the process of the replica that
		// served (or received) them.
		for _, q := range ft.Requests {
			p, ok := pids[q.Replica]
			if !ok {
				p = base + 1
			}
			args := fmt.Sprintf(`{"id":%d,"attempts":%d,"queue_ms":%s,"gc_ms":%s,"service_ms":%s,"retry_ms":%s,"gc_pauses":%d}`,
				q.ID, q.Attempts, jnum(float64(q.QueueNS)/1e6), jnum(float64(q.GCNS)/1e6),
				jnum(float64(q.ServNS)/1e6), jnum(float64(q.RetryNS)/1e6), q.GCPauses)
			emit(fmt.Sprintf(`{"name":%s,"cat":"request","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":%s}`,
				jstr(fmt.Sprintf("req %d", q.ID)), usec(q.Start), usec(q.E2ENS), p, tidRequests, args))
		}
		for _, r := range ft.Routes {
			p, ok := pids[r.Replica]
			if !ok {
				p = base + 1
			}
			emit(fmt.Sprintf(`{"name":%s,"cat":"route","ph":"i","ts":%s,"pid":%d,"tid":%d,"s":"t","args":{"id":%d,"attempt":%d,"avoided":%d}}`,
				jstr(r.Reason), usec(r.TNS), p, tidRoutes, r.ID, r.Attempt, r.Avoided))
		}
		for _, r := range ft.Retries {
			p, ok := pids[r.Replica]
			if !ok {
				p = base + 1
			}
			emit(fmt.Sprintf(`{"name":"retry","cat":"retry","ph":"i","ts":%s,"pid":%d,"tid":%d,"s":"t","args":{"id":%d,"depth":%d,"lat_ms":%s}}`,
				usec(r.TNS), p, tidRoutes, r.ID, r.Depth, jnum(r.LatNS/1e6)))
		}
	}
	bw.str("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.err
}

// loadGlyphs maps an in-flight depth (relative to the run's peak) to a bar
// character; '.' is idle, '@' the peak.
var loadGlyphs = []byte(" .:-=+*#@")

// WriteFleetTimeline renders each fleet trace as a fixed-width terminal
// timeline: per replica, an STW bar (cells any pause touches), a load bar
// (in-flight depth per window, scaled to the fleet's peak), and a request
// bar (cells where traced requests were in flight on that replica); then the
// retry bursts beneath.
func WriteFleetTimeline(w io.Writer, fts []*span.FleetTrace, width int) error {
	if width <= 0 {
		width = 72
	}
	if width < 10 {
		width = 10
	}
	bw := &errWriter{w: w}
	for fi, ft := range fts {
		if fi > 0 {
			bw.str("\n")
		}
		head := ft.Run
		if head == "" {
			head = "(fleet)"
		}
		if ft.Benchmark != "" || ft.Collector != "" {
			head += fmt.Sprintf("  %s/%s", ft.Benchmark, ft.Collector)
		}
		bw.str(fmt.Sprintf("%s  %d replica(s), %d request(s), %d retry(ies)  [0 .. %s]\n",
			head, len(ft.Replicas), len(ft.Requests), len(ft.Retries), fmtNS(ft.EndNS)))
		if ft.EndNS <= 0 {
			continue
		}
		scale := float64(width) / float64(ft.EndNS)

		// The load bars share one scale: the fleet-wide peak in-flight depth.
		var peak int64 = 1
		for _, rt := range ft.Replicas {
			for _, win := range rt.Windows {
				if win.InFlight > peak {
					peak = win.InFlight
				}
			}
		}

		for _, rt := range ft.Replicas {
			stw := make([]byte, width)
			load := make([]byte, width)
			reqs := make([]byte, width)
			for i := 0; i < width; i++ {
				stw[i], load[i], reqs[i] = '.', ' ', '.'
			}
			var pauseNS int64
			var pauses int
			for _, s := range rt.Tree.Spans {
				if s.Track != span.TrackSTW {
					continue
				}
				pauses++
				pauseNS += s.DurNS()
				lo, hi := cellRange(s.Start, s.End, scale, width)
				for i := lo; i <= hi; i++ {
					stw[i] = '#'
				}
			}
			for _, win := range rt.Windows {
				lo, hi := cellRange(win.EndNS-win.DurNS, win.EndNS, scale, width)
				lvl := int(win.InFlight * int64(len(loadGlyphs)-1) / peak)
				g := loadGlyphs[lvl]
				for i := lo; i <= hi; i++ {
					if g > load[i] {
						load[i] = g
					}
				}
			}
			var served int
			for _, q := range ft.Requests {
				if q.Replica != rt.Index {
					continue
				}
				served++
				lo, hi := cellRange(q.Start, q.End, scale, width)
				for i := lo; i <= hi; i++ {
					reqs[i] = '#'
				}
			}
			bw.str(fmt.Sprintf("  r%-2d stw  |%s| %4d pause(s) %10s %5.1f%%\n",
				rt.Index, stw, pauses, fmtNS(pauseNS),
				100*float64(pauseNS)/float64(ft.EndNS)))
			bw.str(fmt.Sprintf("      load |%s| peak %d in flight\n", load, peak))
			bw.str(fmt.Sprintf("      req  |%s| %4d request(s)\n", reqs, served))
		}

		if len(ft.Retries) > 0 {
			st := span.SummarizeRetries(ft)
			bar := make([]byte, width)
			for i := range bar {
				bar[i] = ' '
			}
			for _, r := range ft.Retries {
				pos := int(float64(r.TNS) * scale)
				if pos >= width {
					pos = width - 1
				}
				bar[pos] = '!'
			}
			bw.str(fmt.Sprintf("  retries  |%s| %d total, %d request(s), depth<=%d, peak %d/window\n",
				bar, st.Total, st.Unique, st.MaxDepth, st.PeakCount))
		}
	}
	return bw.err
}

// cellRange maps a [start, end] interval to inclusive cell indices; an
// interval always occupies at least its starting cell so short pauses stay
// visible.
func cellRange(start, end int64, scale float64, width int) (int, int) {
	lo := int(float64(start) * scale)
	hi := int(float64(end) * scale)
	if lo < 0 {
		lo = 0
	}
	if lo >= width {
		lo = width - 1
	}
	if hi >= width {
		hi = width - 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
