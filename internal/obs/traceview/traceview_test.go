package traceview_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"chopin/internal/obs"
	"chopin/internal/obs/span"
	"chopin/internal/obs/traceview"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureTrees is a fixed event stream exercising every span kind, a mark,
// an open (truncated) span and sampled counters, across two interleaved
// runs.
func fixtureTrees() []*span.Tree {
	return span.Build([]obs.Event{
		{Kind: obs.KindGCPhaseStart, TNS: 100, Run: "job-a", Benchmark: "lusearch", Collector: "Shenandoah", Phase: "concurrent", Cycle: 1},
		{Kind: obs.KindGCPause, TNS: 120, Run: "job-a", DurNS: 20, Cycle: 1},
		{Kind: obs.KindPacerStall, TNS: 150, Run: "job-a", DurNS: 30, Cause: 1},
		{Kind: obs.KindSample, TNS: 160, Run: "job-a", HeapUsed: 48 << 20, LiveEst: 24 << 20, MutFrac: 0.625, GCFrac: 0.25, StallFrac: 0.125},
		{Kind: obs.KindGCPhaseStart, TNS: 60, Run: "job-b", Benchmark: "avrora", Collector: "G1", Phase: "young", Cycle: 1},
		{Kind: obs.KindGCPhaseEnd, TNS: 90, Run: "job-b", Phase: "young", Cycle: 1, DurNS: 30, CPUNS: 120, Value: 2048},
		{Kind: obs.KindGCPause, TNS: 90, Run: "job-b", DurNS: 30, Cycle: 1},
		{Kind: obs.KindDegenerateGC, TNS: 200, Run: "job-a", Cause: 1},
		{Kind: obs.KindGCPhaseEnd, TNS: 200, Run: "job-a", Phase: "concurrent", Cycle: 1, CPUNS: 5.5e6},
		{Kind: obs.KindGCPhaseStart, TNS: 200, Run: "job-a", Phase: "degenerate", Cycle: 2, Cause: 1},
		{Kind: obs.KindGCPause, TNS: 260, Run: "job-a", DurNS: 60, Cycle: 2},
		{Kind: obs.KindGCPhaseEnd, TNS: 260, Run: "job-a", Phase: "degenerate", Cycle: 2, DurNS: 60, Value: 4096},
		{Kind: obs.KindQuiescent, TNS: 500, Run: "job-a", DurNS: 500, Value: 12},
		// job-b truncates: this start never sees its end.
		{Kind: obs.KindGCPhaseStart, TNS: 120, Run: "job-b", Phase: "concurrent", Cycle: 2},
		{Kind: obs.KindQuiescent, TNS: 300, Run: "job-b", DurNS: 300, Value: 4},
	})
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (run with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestChromeTraceGolden locks the Chrome trace-event output byte-for-byte:
// field order, timestamp unit and metadata layout are all part of the
// contract with external viewers.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := traceview.WriteChromeTrace(&buf, fixtureTrees()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "synthetic.trace.json", buf.Bytes())
}

// TestChromeTraceSpecRequiredKeys validates the output against the
// trace-event spec independent of the golden bytes: it must be valid JSON
// whose every event carries name/ph/pid/tid, with ts+dur on complete
// events, ts on counters and instants, and named process/thread metadata.
func TestChromeTraceSpecRequiredKeys(t *testing.T) {
	var buf bytes.Buffer
	trees := fixtureTrees()
	if err := traceview.WriteChromeTrace(&buf, trees); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	var complete, counters, instants, procs, threads int
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing required key %q: %v", key, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("complete event missing ts: %v", ev)
			}
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		case "C":
			counters++
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("counter event missing ts: %v", ev)
			}
		case "i":
			instants++
		case "M":
			switch ev["name"] {
			case "process_name":
				procs++
			case "thread_name":
				threads++
			}
		default:
			t.Fatalf("unexpected phase %v: %v", ev["ph"], ev)
		}
	}
	var spans int
	for _, tr := range trees {
		spans += len(tr.Spans)
	}
	if complete != spans {
		t.Errorf("complete events = %d, spans = %d", complete, spans)
	}
	if counters != 2 { // one heap + one cpu counter per sample
		t.Errorf("counter events = %d, want 2", counters)
	}
	if instants != 1 {
		t.Errorf("instant events = %d, want 1", instants)
	}
	if procs != len(trees) {
		t.Errorf("process_name events = %d, trees = %d", procs, len(trees))
	}
	if threads != 4*len(trees) {
		t.Errorf("thread_name events = %d, want %d", threads, 4*len(trees))
	}
}

// TestChromeTraceDeterministic re-renders the same trees and demands
// identical bytes — no map-iteration or formatting nondeterminism.
func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := traceview.WriteChromeTrace(&a, fixtureTrees()); err != nil {
		t.Fatal(err)
	}
	if err := traceview.WriteChromeTrace(&b, fixtureTrees()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same trees differ")
	}
}

// TestTimelineGolden locks the terminal renderer's layout.
func TestTimelineGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := traceview.WriteTimeline(&buf, fixtureTrees(), 60); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "synthetic.timeline.txt", buf.Bytes())
}
