// Package traceview renders span trees (internal/obs/span) for humans: as
// Chrome trace-event JSON loadable in Perfetto / chrome://tracing, or as a
// plain-text timeline for terminals.
//
// # Chrome trace-event mapping
//
// Each run becomes one process (pid 1, 2, … in tree order) named by its
// run key, benchmark and collector; each track becomes one named thread
// within it (gc=1, stw=2, mutator=3, sched=4). Spans emit complete ("X")
// events with microsecond timestamps, marks emit instant ("i") events, and
// the sampled series emits two counter ("C") tracks — heap occupancy /
// live estimate in MB, and the mutator/GC/stall utilization split.
//
// The JSON is hand-assembled rather than reflect-marshalled so field order
// is stable ({"name",…,"ph","ts","dur","pid","tid","args"}) — byte-level
// reproducibility is what lets a golden file lock the format.
package traceview

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"chopin/internal/obs/span"
)

// trackTIDs fixes the thread ID and ordering of each track within a
// process. Counters use tid 0 so they render above the span rows.
var trackTIDs = map[string]int{
	span.TrackGC:      1,
	span.TrackSTW:     2,
	span.TrackMutator: 3,
	span.TrackSched:   4,
}

// trackOrder is the rendering order of tracks (timeline and thread
// metadata alike).
var trackOrder = []string{span.TrackGC, span.TrackSTW, span.TrackMutator, span.TrackSched}

// WriteChromeTrace writes the trees as one Chrome trace-event JSON object.
// The output loads directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing.
func WriteChromeTrace(w io.Writer, trees []*span.Tree) error {
	bw := &errWriter{w: w}
	bw.str(`{"traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			bw.str(",\n")
		} else {
			bw.str("\n")
		}
		first = false
		bw.str(line)
	}

	for pi, tr := range trees {
		pid := pi + 1
		label := tr.Run
		if label == "" {
			label = "run"
		}
		if tr.Benchmark != "" || tr.Collector != "" {
			label = fmt.Sprintf("%s (%s/%s)", label, tr.Benchmark, tr.Collector)
		}
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, jstr(label)))
		for _, track := range trackOrder {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid, trackTIDs[track], jstr(track)))
		}

		for _, s := range tr.Spans {
			args := fmt.Sprintf(`{"span_id":%d,"parent":%d,"cycle":%d`, s.ID, s.Parent, s.Cycle)
			if s.Cause != 0 {
				args += fmt.Sprintf(`,"cause":%d`, s.Cause)
			}
			if s.CPUNS != 0 {
				args += `,"gc_cpu_ms":` + jnum(s.CPUNS/1e6)
			}
			if s.Value != 0 {
				args += `,"value":` + jnum(s.Value)
			}
			if s.Open {
				args += `,"truncated":true`
			}
			args += "}"
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":%s}`,
				jstr(s.Name), jstr(s.Track), usec(s.Start), usec(s.DurNS()), pid, trackTIDs[s.Track], args))
		}

		for _, m := range tr.Marks {
			emit(fmt.Sprintf(`{"name":%s,"cat":"mark","ph":"i","ts":%s,"pid":%d,"tid":%d,"s":"p","args":{"cause":%d}}`,
				jstr(m.Name), usec(m.TNS), pid, trackTIDs[span.TrackGC], m.Cause))
		}

		for _, smp := range tr.Samples {
			emit(fmt.Sprintf(`{"name":"heap","ph":"C","ts":%s,"pid":%d,"tid":0,"args":{"used_mb":%s,"live_mb":%s}}`,
				usec(smp.TNS), pid, jnum(smp.HeapUsed/(1<<20)), jnum(smp.LiveEst/(1<<20))))
			emit(fmt.Sprintf(`{"name":"cpu","ph":"C","ts":%s,"pid":%d,"tid":0,"args":{"mutator":%s,"gc":%s,"stall":%s}}`,
				usec(smp.TNS), pid, jnum(smp.MutFrac), jnum(smp.GCFrac), jnum(smp.StallFrac)))
		}
	}
	bw.str("\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.err
}

// usec renders virtual nanoseconds as the microsecond JSON number the
// trace-event spec expects.
func usec(ns int64) string { return jnum(float64(ns) / 1e3) }

// jnum formats a float as a minimal JSON number (no exponent surprises for
// the magnitudes involved; -1 precision keeps it shortest-roundtrip).
func jnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// jstr JSON-quotes a string.
func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) str(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

// WriteTimeline renders each tree as a fixed-width text timeline: one bar
// per track where a cell is filled when any span covers it, with per-track
// totals alongside and marks flagged beneath. Width is the bar width in
// cells (minimum 10; 0 selects 72).
func WriteTimeline(w io.Writer, trees []*span.Tree, width int) error {
	if width <= 0 {
		width = 72
	}
	if width < 10 {
		width = 10
	}
	bw := &errWriter{w: w}
	for ti, tr := range trees {
		if ti > 0 {
			bw.str("\n")
		}
		head := tr.Run
		if head == "" {
			head = "(run)"
		}
		if tr.Benchmark != "" || tr.Collector != "" {
			head += fmt.Sprintf("  %s/%s", tr.Benchmark, tr.Collector)
		}
		bw.str(fmt.Sprintf("%s  [0 .. %s]\n", head, fmtNS(tr.EndNS)))
		if tr.EndNS <= 0 {
			continue
		}
		scale := float64(width) / float64(tr.EndNS)
		for _, track := range trackOrder {
			cells := make([]byte, width)
			for i := range cells {
				cells[i] = '.'
			}
			var total float64
			count := 0
			for _, s := range tr.Spans {
				if s.Track != track {
					continue
				}
				count++
				total += float64(s.DurNS())
				lo := int(float64(s.Start) * scale)
				hi := int(float64(s.End) * scale)
				if hi >= width {
					hi = width - 1
				}
				// A span always occupies at least its starting cell, so
				// short pauses stay visible.
				for i := lo; i <= hi; i++ {
					cells[i] = '#'
				}
			}
			bw.str(fmt.Sprintf("  %-7s |%s| %4d span(s) %10s %5.1f%%\n",
				track, cells, count, fmtNS(int64(total)),
				100*total/float64(tr.EndNS)))
		}
		// A degenerating run can carry thousands of marks; print the first
		// few and summarize the rest rather than flooding the terminal.
		const maxMarks = 8
		for i, m := range tr.Marks {
			if i == maxMarks {
				bw.str(fmt.Sprintf("  %-7s … and %d more mark(s)\n", "!", len(tr.Marks)-maxMarks))
				break
			}
			pos := int(float64(m.TNS) * scale)
			if pos >= width {
				pos = width - 1
			}
			bw.str(fmt.Sprintf("  %-7s |%s^ %s at %s\n",
				"!", strings.Repeat(" ", pos), m.Name, fmtNS(m.TNS)))
		}
		if n := len(tr.Samples); n > 0 {
			bw.str(fmt.Sprintf("  %d samples\n", n))
		}
	}
	return bw.err
}

// fmtNS renders nanoseconds with a readable unit.
func fmtNS(ns int64) string {
	switch v := float64(ns); {
	case v >= 1e9:
		return fmt.Sprintf("%.3gs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gus", v/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
