package traceview_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"chopin/internal/obs"
	"chopin/internal/obs/span"
	"chopin/internal/obs/traceview"
)

// fixtureFleet is a fixed two-replica fleet stream: replica-stamped engine
// telemetry (GC cycles, pauses, samples), balancer routes, blame-decomposed
// requests, one retry hop, and the per-replica metric windows. An ordinary
// single-process run ("solo") interleaves to prove BuildFleet skips it.
func fixtureFleet() []*span.FleetTrace {
	ms := int64(1e6)
	return span.BuildFleet([]obs.Event{
		// Replica 0 engine telemetry (1-based stamp = 1).
		{Kind: obs.KindGCPhaseStart, TNS: 2 * ms, Run: "cell-a", Benchmark: "lusearch", Collector: "G1", Phase: "young", Cycle: 1, Replica: 1},
		{Kind: obs.KindGCPause, TNS: 4 * ms, Run: "cell-a", DurNS: float64(2 * ms), Cycle: 1, Replica: 1},
		{Kind: obs.KindGCPhaseEnd, TNS: 4 * ms, Run: "cell-a", Phase: "young", Cycle: 1, DurNS: float64(2 * ms), CPUNS: 1e6, Value: 2048, Replica: 1},
		{Kind: obs.KindSample, TNS: 5 * ms, Run: "cell-a", HeapUsed: 32 << 20, LiveEst: 16 << 20, Replica: 1},
		// Replica 1 engine telemetry: same cycle ID as replica 0 — the
		// (run, replica) partition must keep them apart.
		{Kind: obs.KindGCPhaseStart, TNS: 11 * ms, Run: "cell-a", Benchmark: "lusearch", Collector: "G1", Phase: "young", Cycle: 1, Replica: 2},
		{Kind: obs.KindGCPause, TNS: 14 * ms, Run: "cell-a", DurNS: float64(3 * ms), Cycle: 1, Replica: 2},
		{Kind: obs.KindGCPhaseEnd, TNS: 14 * ms, Run: "cell-a", Phase: "young", Cycle: 1, DurNS: float64(3 * ms), Value: 1024, Replica: 2},
		// The interleaved ordinary run: no fleet events, must not surface.
		{Kind: obs.KindGCPhaseStart, TNS: 100, Run: "solo", Benchmark: "avrora", Collector: "Serial", Phase: "full", Cycle: 1},
		{Kind: obs.KindGCPhaseEnd, TNS: 200, Run: "solo", Phase: "full", Cycle: 1, DurNS: 100},
		// Fleet layer: routes, one retry, blame-decomposed requests.
		{Kind: obs.KindFleetRoute, TNS: 0, Run: "cell-a", Benchmark: "lusearch", Value: 1, Cycle: 1, Replica: 1, Phase: "gc-aware", InFlight: 1},
		{Kind: obs.KindFleetRoute, TNS: 1 * ms, Run: "cell-a", Value: 2, Cycle: 1, Replica: 2, Phase: "gc-aware-avoid", Aux: 1, InFlight: 1},
		{Kind: obs.KindFleetRequest, TNS: 8 * ms, Run: "cell-a", Value: 1, Aux: 0, Cycle: 1, Replica: 1,
			DurNS: float64(8 * ms), QueueNS: 1 * ms, GCNS: 2 * ms, ServiceNS: 5 * ms, GCPauses: 1},
		{Kind: obs.KindFleetRetry, TNS: 13 * ms, Run: "cell-a", Value: 2, Aux: 1, DurNS: float64(12 * ms), Replica: 2},
		{Kind: obs.KindFleetRoute, TNS: 13 * ms, Run: "cell-a", Value: 2, Cycle: 2, Replica: 1, Phase: "gc-aware", InFlight: 1},
		{Kind: obs.KindFleetRequest, TNS: 19 * ms, Run: "cell-a", Value: 2, Aux: float64(1 * ms), Cycle: 2, Replica: 1,
			DurNS: float64(18 * ms), QueueNS: 1 * ms, GCNS: 0, ServiceNS: 5 * ms, RetryNS: 12 * ms},
		// Metric windows: both replicas on the shared 10ms grid.
		{Kind: obs.KindFleetWindow, TNS: 10 * ms, Run: "cell-a", DurNS: float64(10 * ms), Replica: 1, Value: 1, InFlight: 0, Goodput: 100},
		{Kind: obs.KindFleetWindow, TNS: 10 * ms, Run: "cell-a", DurNS: float64(10 * ms), Replica: 2, Value: 0, InFlight: 1},
		{Kind: obs.KindFleetWindow, TNS: 20 * ms, Run: "cell-a", DurNS: float64(10 * ms), Replica: 1, Value: 1, Aux: 1, InFlight: 0, Goodput: 100, BurnRate: 50},
		{Kind: obs.KindFleetWindow, TNS: 20 * ms, Run: "cell-a", DurNS: float64(10 * ms), Replica: 2, Value: 0, InFlight: 0},
	})
}

// TestBuildFleet validates the assembled structure: one trace (the solo run
// skipped), two replicas with separate span trees, the request/route/retry
// layers decoded, and the blame invariant surviving the event round-trip.
func TestBuildFleet(t *testing.T) {
	fts := fixtureFleet()
	if len(fts) != 1 {
		t.Fatalf("BuildFleet returned %d traces, want 1 (solo run must be skipped)", len(fts))
	}
	ft := fts[0]
	if ft.Run != "cell-a" || ft.Benchmark != "lusearch" || ft.Collector != "G1" {
		t.Fatalf("trace identity = %q/%q/%q", ft.Run, ft.Benchmark, ft.Collector)
	}
	if len(ft.Replicas) != 2 {
		t.Fatalf("replicas = %d, want 2", len(ft.Replicas))
	}
	for i, rt := range ft.Replicas {
		if rt.Index != i {
			t.Fatalf("replica %d has index %d", i, rt.Index)
		}
		if rt.Tree.Replica != i+1 {
			t.Fatalf("replica %d tree stamped %d", i, rt.Tree.Replica)
		}
		var stw int
		for _, s := range rt.Tree.Spans {
			if s.Track == span.TrackSTW {
				stw++
			}
		}
		if stw != 1 {
			t.Fatalf("replica %d has %d STW spans, want 1 (cycle IDs aliased?)", i, stw)
		}
		if len(rt.Windows) != 2 {
			t.Fatalf("replica %d has %d windows, want 2", i, len(rt.Windows))
		}
	}
	if len(ft.Requests) != 2 || len(ft.Routes) != 3 || len(ft.Retries) != 1 {
		t.Fatalf("layers = %d requests / %d routes / %d retries, want 2/3/1",
			len(ft.Requests), len(ft.Routes), len(ft.Retries))
	}
	for _, q := range ft.Requests {
		if q.QueueNS+q.GCNS+q.ServNS+q.RetryNS != q.E2ENS {
			t.Fatalf("request %d blame does not sum: %+v", q.ID, q)
		}
		if q.End-q.Start != q.E2ENS {
			t.Fatalf("request %d interval %d..%d vs E2E %d", q.ID, q.Start, q.End, q.E2ENS)
		}
	}
	if ft.EndNS != 20e6 {
		t.Fatalf("EndNS = %d, want 20ms", ft.EndNS)
	}

	// Forensics helpers over the same fixture.
	top := span.TopSlowest(ft.Requests, 1)
	if len(top) != 1 || top[0].ID != 2 {
		t.Fatalf("TopSlowest = %+v", top)
	}
	bt := span.SumBlame(ft.Requests)
	if bt.QueueNS+bt.GCNS+bt.ServNS+bt.RetryNS != bt.E2ENS || bt.Requests != 2 {
		t.Fatalf("SumBlame totals inconsistent: %+v", bt)
	}
	corr := span.CorrelateReplicas(ft)
	if len(corr) != 2 {
		t.Fatalf("CorrelateReplicas rows = %d", len(corr))
	}
	if corr[0].Requests != 2 || corr[1].Requests != 0 {
		t.Fatalf("request attribution: %+v", corr)
	}
	if corr[0].Routes != 2 || corr[1].Routes != 1 {
		t.Fatalf("route attribution: %+v", corr)
	}
	if corr[1].Retries != 1 {
		t.Fatalf("retry attribution: %+v", corr)
	}
	if corr[0].PauseNS != 2e6 || corr[1].PauseNS != 3e6 {
		t.Fatalf("pause attribution: %+v", corr)
	}
	st := span.SummarizeRetries(ft)
	if st.Total != 1 || st.Unique != 1 || st.MaxDepth != 1 || st.WindowNS != 10e6 || st.PeakWindowStart != 10e6 {
		t.Fatalf("SummarizeRetries = %+v", st)
	}
}

// TestFleetChromeGolden locks the fleet Chrome trace output byte-for-byte.
func TestFleetChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := traceview.WriteFleetChrome(&buf, fixtureFleet()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleet.trace.json", buf.Bytes())
}

// TestFleetChromeSpec validates the fleet trace against the trace-event spec
// independent of golden bytes: valid JSON, required keys, one process per
// replica, and a requests/routes thread on each.
func TestFleetChromeSpec(t *testing.T) {
	var buf bytes.Buffer
	fts := fixtureFleet()
	if err := traceview.WriteFleetChrome(&buf, fts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	procs := map[any]bool{}
	var reqSpans, routeInstants int
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing required key %q: %v", key, ev)
			}
		}
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			procs[ev["pid"]] = true
		}
		switch ev["cat"] {
		case "request":
			reqSpans++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("request span missing dur: %v", ev)
			}
		case "route":
			routeInstants++
		}
	}
	if len(procs) != len(fts[0].Replicas) {
		t.Errorf("processes = %d, replicas = %d", len(procs), len(fts[0].Replicas))
	}
	if reqSpans != len(fts[0].Requests) {
		t.Errorf("request spans = %d, want %d", reqSpans, len(fts[0].Requests))
	}
	if routeInstants != len(fts[0].Routes) {
		t.Errorf("route instants = %d, want %d", routeInstants, len(fts[0].Routes))
	}
}

// TestFleetTimelineGolden locks the terminal fleet timeline layout.
func TestFleetTimelineGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := traceview.WriteFleetTimeline(&buf, fixtureFleet(), 60); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleet.timeline.txt", buf.Bytes())
}

// TestFleetRenderDeterministic re-renders both views and demands identical
// bytes.
func TestFleetRenderDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := traceview.WriteFleetChrome(&a, fixtureFleet()); err != nil {
		t.Fatal(err)
	}
	if err := traceview.WriteFleetChrome(&b, fixtureFleet()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two fleet Chrome renders differ")
	}
	a.Reset()
	b.Reset()
	if err := traceview.WriteFleetTimeline(&a, fixtureFleet(), 72); err != nil {
		t.Fatal(err)
	}
	if err := traceview.WriteFleetTimeline(&b, fixtureFleet(), 72); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two fleet timeline renders differ")
	}
}
