package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONL is a Recorder that serializes events as one JSON object per line —
// the interchange format cmd/obsreport consumes. Writes are buffered and
// mutex-serialized, so pool workers recording concurrently never interleave
// bytes within a line.
type JSONL struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	enc  *json.Encoder
	err  error // first write error; subsequent records are dropped
	seen int64
}

// NewJSONL wraps w in a JSONL recorder. The caller owns w; call Close to
// flush buffered events before discarding the recorder or closing w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 64<<10)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Enabled always reports true.
func (j *JSONL) Enabled() bool { return true }

// Record writes the event as one JSON line. The first write error sticks:
// later events are dropped and the error is reported by Close, so a full
// disk degrades telemetry rather than the experiment.
func (j *JSONL) Record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(e); err != nil {
		j.err = fmt.Errorf("obs: writing event: %w", err)
		return
	}
	j.seen++
}

// Events returns how many events have been recorded (and not dropped).
func (j *JSONL) Events() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seen
}

// Close flushes buffered events and returns the first error encountered by
// Record or the flush. It does not close the underlying writer.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = fmt.Errorf("obs: flushing events: %w", err)
	}
	return j.err
}

// DecodeJSONL reads a JSONL event stream, calling fn for each event. Blank
// lines are skipped; a malformed line aborts with its line number, since a
// telemetry file is machine-written and corruption means truncation.
func DecodeJSONL(r io.Reader, fn func(Event) error) error {
	dec := json.NewDecoder(r)
	for n := 1; ; n++ {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("obs: event %d: %w", n, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}
