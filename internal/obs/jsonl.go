package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONL is a Recorder that serializes events as one JSON object per line —
// the interchange format cmd/obsreport consumes. Writes are buffered and
// mutex-serialized, so pool workers recording concurrently never interleave
// bytes within a line. Every event is stamped with a monotonically
// increasing sequence number, and Close terminates the stream with a
// run_end event, so decoders can tell a clean stream from a truncated one
// and detect dropped events (DecodeStream).
type JSONL struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	enc  *json.Encoder
	sync func() error // underlying writer's Sync, when it has one
	err  error        // first write error; subsequent records are dropped
	seen int64
}

// NewJSONL wraps w in a JSONL recorder. The caller owns w; call Close to
// flush buffered events before discarding the recorder or closing w. When w
// has a Sync method (*os.File does), Close also syncs it, so a completed
// stream survives a host crash immediately after the run.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 64<<10)
	j := &JSONL{bw: bw, enc: json.NewEncoder(bw)}
	if s, ok := w.(interface{ Sync() error }); ok {
		j.sync = s.Sync
	}
	return j
}

// Enabled always reports true.
func (j *JSONL) Enabled() bool { return true }

// Record writes the event as one JSON line, stamping the stream's next
// sequence number. The first write error sticks: later events are dropped
// and the error is reported by Close, so a full disk degrades telemetry
// rather than the experiment.
func (j *JSONL) Record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.record(e)
}

// record is Record without the lock, shared with Close.
func (j *JSONL) record(e Event) {
	if j.err != nil {
		return
	}
	e.Seq = j.seen + 1
	if err := j.enc.Encode(e); err != nil {
		j.err = fmt.Errorf("obs: writing event: %w", err)
		return
	}
	j.seen++
}

// RecordBatch writes a slice of events under one lock acquisition — the
// flush path for per-job buffers, which batch a whole invocation's
// telemetry and hand it over at the job boundary instead of contending the
// sink once per event.
func (j *JSONL) RecordBatch(evs []Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range evs {
		j.record(e)
	}
}

// Events returns how many events have been recorded (and not dropped).
func (j *JSONL) Events() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seen
}

// Close terminates the stream with a run_end event (whose Value is the
// number of events recorded before it), flushes buffered events, syncs the
// underlying writer when it supports it, and returns the first error
// encountered by Record, the flush or the sync. It does not close the
// underlying writer. A stream decoded without a trailing run_end was
// crash-truncated, not short.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.record(Event{Kind: KindRunEnd, Value: float64(j.seen)})
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = fmt.Errorf("obs: flushing events: %w", err)
	}
	if j.sync != nil {
		if err := j.sync(); err != nil && j.err == nil {
			j.err = fmt.Errorf("obs: syncing events: %w", err)
		}
	}
	return j.err
}

// DecodeJSONL reads a JSONL event stream, calling fn for each event. Blank
// lines are skipped; a malformed line aborts with its line number, since a
// telemetry file is machine-written and corruption means truncation.
func DecodeJSONL(r io.Reader, fn func(Event) error) error {
	dec := json.NewDecoder(r)
	for n := 1; ; n++ {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("obs: event %d: %w", n, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

// StreamInfo summarizes the integrity of a decoded telemetry stream.
type StreamInfo struct {
	// Events is the number of events decoded (including the run_end).
	Events int64
	// Clean reports that the stream ended with a run_end event: the sink
	// was closed in an orderly fashion. A false Clean means the producing
	// run crashed or was killed mid-stream.
	Clean bool
	// Gaps counts sequence numbers skipped between consecutive events —
	// events that were recorded (or claimed) upstream but never reached the
	// stream. Zero on a healthy file.
	Gaps int64
	// OutOfOrder counts events whose sequence number did not increase over
	// the previous one (reordered or duplicated lines).
	OutOfOrder int64
	// Unsequenced counts events with no sequence number at all (streams
	// written before sequencing, or events hand-built in tests).
	Unsequenced int64
	// Unknown counts events whose kind this binary does not know — a stream
	// written by a newer schema. They are audited for sequence integrity but
	// not passed to the decode callback; an unknown kind is forward
	// compatibility at work, not corruption, so Err ignores it.
	Unknown int64
}

// Err returns a non-nil error describing the first integrity problem the
// info records (truncation, gaps, reordering), or nil for a healthy stream.
func (s StreamInfo) Err() error {
	switch {
	case !s.Clean:
		return fmt.Errorf("obs: stream truncated: %d events and no run_end", s.Events)
	case s.Gaps > 0:
		return fmt.Errorf("obs: stream dropped %d events (sequence gaps)", s.Gaps)
	case s.OutOfOrder > 0:
		return fmt.Errorf("obs: %d events out of sequence order", s.OutOfOrder)
	}
	return nil
}

// DecodeStream reads a JSONL telemetry stream like DecodeJSONL while
// auditing its integrity: sequence-number gaps, reordering, and whether the
// stream terminates with a clean run_end. The returned StreamInfo is valid
// even when decoding aborts early (the prefix is audited); fn also receives
// the terminal run_end event. Events of a kind this binary does not know
// (KindUnknown after lenient decoding) are counted in info.Unknown and
// skipped — never handed to fn — so a stream written by a newer schema
// degrades to partial decoding instead of failure.
func DecodeStream(r io.Reader, fn func(Event) error) (StreamInfo, error) {
	var info StreamInfo
	var lastSeq int64
	err := DecodeJSONL(r, func(e Event) error {
		info.Events++
		info.Clean = e.Kind == KindRunEnd // only counts if nothing follows
		switch {
		case e.Seq == 0:
			info.Unsequenced++
		case e.Seq <= lastSeq:
			info.OutOfOrder++
		default:
			if lastSeq != 0 && e.Seq != lastSeq+1 {
				info.Gaps += e.Seq - lastSeq - 1
			}
			lastSeq = e.Seq
		}
		if e.Kind == KindUnknown {
			info.Unknown++
			return nil
		}
		if fn != nil {
			return fn(e)
		}
		return nil
	})
	if err != nil {
		info.Clean = false
	}
	return info, err
}
