// Package sample is the continuous-metric layer of the observability stack:
// a virtual-clock-driven sampler that turns instantaneous machine state —
// heap occupancy, live-set estimate, the mutator/GC/idle CPU split, pacer
// throttling — into a fixed-interval time series on the same telemetry
// stream as the discrete GC events.
//
// Discrete events say *that* something happened; the sampled series says
// what the machine looked like in between, which is what heap-timeline and
// CPU-attribution questions ("who was burning cores while wall time hid
// it?") need. The sampler piggybacks on the simulator's stepper via
// Engine.SetSampler, so it costs one float compare per step when every
// recorder is disabled and never keeps a quiescent simulation alive (it is
// not a timer).
//
// # Downsampling
//
// A fixed cadence over an unbounded run is an unbounded stream. The sampler
// bounds it by stride doubling: every time the emitted-sample count reaches
// a multiple of MaxSamples, the emission stride doubles, so a run of any
// length emits O(MaxSamples · log(duration)) samples — early behaviour at
// full resolution, the long tail progressively coarser. Utilization
// fractions are computed over the interval since the previous *emitted*
// sample, so coarsening widens the averaging window instead of dropping
// CPU time.
package sample

import (
	"chopin/internal/obs"
	"chopin/internal/sim"
)

// Gauges are the read-only probes the sampler polls at each tick. Cumulative
// gauges (CPU, stall time) must be monotonic; nil funcs read as zero.
type Gauges struct {
	// HeapUsed is current heap occupancy in bytes.
	HeapUsed func() float64
	// LiveEst is the current live-set estimate in bytes.
	LiveEst func() float64
	// MutatorCPUNS is cumulative mutator CPU in nanoseconds.
	MutatorCPUNS func() float64
	// GCCPUNS is cumulative collector CPU in nanoseconds.
	GCCPUNS func() float64
	// StallNS is cumulative pacer-stall wall time in nanoseconds.
	StallNS func() float64
}

// Config tunes the sampling cadence.
type Config struct {
	// IntervalNS is the base sampling interval in virtual nanoseconds
	// (default 10ms).
	IntervalNS float64
	// MaxSamples is the emitted-count multiple at which the stride doubles
	// (default 2048).
	MaxSamples int
}

// DefaultInterval is the base sampling cadence: 10ms of virtual time.
const DefaultInterval = 10 * sim.Millisecond

// DefaultMaxSamples bounds full-resolution emission before stride doubling.
const DefaultMaxSamples = 2048

// Sampler emits KindSample telemetry events at fixed virtual intervals.
// It is driven synchronously from the engine's stepper; all state is
// goroutine-confined with the simulation.
type Sampler struct {
	rec      oobs
	g        Gauges
	hw       float64
	interval float64

	stride  int // emit every stride-th tick
	skip    int // ticks left to swallow before the next emission
	emitted int // samples emitted so far
	max     int // stride doubles at each multiple of max
	lastT   float64
	lastMut float64
	lastGC  float64
	lastStl float64
}

// oobs is the recorder interface fragment the sampler needs (kept tiny so
// tests can stub it without importing sync).
type oobs interface {
	Record(obs.Event)
}

// New builds a sampler recording through rec. The caller is responsible for
// only attaching samplers whose recorder is enabled — the sampler itself
// does not re-check on the hot path.
func New(cfg Config, rec obs.Recorder, g Gauges) *Sampler {
	if cfg.IntervalNS <= 0 {
		cfg.IntervalNS = DefaultInterval
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = DefaultMaxSamples
	}
	return &Sampler{rec: rec, g: g, stride: 1, max: cfg.MaxSamples, interval: cfg.IntervalNS}
}

// Attach registers the sampler with the engine, baselining cumulative
// gauges at the engine's current time.
func (s *Sampler) Attach(e *sim.Engine) {
	s.hw = float64(e.HWThreads())
	s.lastT = e.NowF()
	s.lastMut = read(s.g.MutatorCPUNS)
	s.lastGC = read(s.g.GCCPUNS)
	s.lastStl = read(s.g.StallNS)
	e.SetSampler(s.interval, s.tick)
}

// Emitted returns how many samples have been emitted.
func (s *Sampler) Emitted() int { return s.emitted }

func read(f func() float64) float64 {
	if f == nil {
		return 0
	}
	return f()
}

// tick is the engine callback: decimate, then emit one sample whose
// utilization fractions cover the window since the previous emission.
func (s *Sampler) tick(tNS float64) {
	if s.skip > 0 {
		s.skip--
		return
	}
	s.skip = s.stride - 1

	mut, gc, stl := read(s.g.MutatorCPUNS), read(s.g.GCCPUNS), read(s.g.StallNS)
	e := obs.Event{
		Kind:     obs.KindSample,
		TNS:      int64(tNS),
		HeapUsed: read(s.g.HeapUsed),
		LiveEst:  read(s.g.LiveEst),
	}
	if dt := tNS - s.lastT; dt > 0 {
		cap := dt * s.hw
		e.MutFrac = (mut - s.lastMut) / cap
		e.GCFrac = (gc - s.lastGC) / cap
		e.StallFrac = (stl - s.lastStl) / dt
	}
	s.lastT, s.lastMut, s.lastGC, s.lastStl = tNS, mut, gc, stl
	s.rec.Record(e)

	s.emitted++
	if s.emitted%s.max == 0 {
		s.stride *= 2
	}
}
