package sample

import (
	"testing"

	"chopin/internal/obs"
	"chopin/internal/sim"
)

type sliceRec struct{ events []obs.Event }

func (r *sliceRec) Enabled() bool      { return true }
func (r *sliceRec) Record(e obs.Event) { r.events = append(r.events, e) }
func (r *sliceRec) samples() []obs.Event {
	var out []obs.Event
	for _, e := range r.events {
		if e.Kind == obs.KindSample {
			out = append(out, e)
		}
	}
	return out
}

// spin keeps one thread busy for total nanoseconds in fixed quanta.
func spin(e *sim.Engine, total float64) {
	th := e.NewThread("w")
	burned := 0.0
	var next func()
	next = func() {
		if burned < total {
			burned += 100
			th.Exec(100, next)
		}
	}
	next()
}

func TestSamplerEmitsSeries(t *testing.T) {
	e := sim.NewEngine(2, nil)
	rec := &sliceRec{}
	var cpu float64
	s := New(Config{IntervalNS: 1000}, rec, Gauges{
		HeapUsed:     func() float64 { return 42 },
		LiveEst:      func() float64 { return 17 },
		MutatorCPUNS: func() float64 { cpu = e.TaskClock(); return cpu },
		GCCPUNS:      func() float64 { return 0 },
	})
	s.Attach(e)
	spin(e, 10_000)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := rec.samples()
	if len(got) != 10 {
		t.Fatalf("emitted %d samples over 10000ns at 1000ns cadence, want 10", len(got))
	}
	var last int64 = -1
	for i, e := range got {
		if e.TNS != int64(1000*(i+1)) {
			t.Fatalf("sample %d at t=%d, want %d", i, e.TNS, 1000*(i+1))
		}
		if e.TNS <= last {
			t.Fatalf("samples not monotonic at %d", i)
		}
		last = e.TNS
		if e.HeapUsed != 42 || e.LiveEst != 17 {
			t.Fatalf("gauge fields lost: %+v", e)
		}
		// One thread busy on a 2-hw machine: mutator fraction 0.5.
		if e.MutFrac < 0.49 || e.MutFrac > 0.51 {
			t.Fatalf("sample %d MutFrac = %v, want ~0.5", i, e.MutFrac)
		}
		if e.GCFrac != 0 || e.StallFrac != 0 {
			t.Fatalf("idle gauges nonzero: %+v", e)
		}
	}
	if s.Emitted() != len(got) {
		t.Fatalf("Emitted() = %d, want %d", s.Emitted(), len(got))
	}
}

// TestSamplerDownsamples locks the stride-doubling rule: after MaxSamples
// emissions the cadence halves, so N ticks emit ~MaxSamples·log2 samples
// rather than N.
func TestSamplerDownsamples(t *testing.T) {
	e := sim.NewEngine(1, nil)
	rec := &sliceRec{}
	s := New(Config{IntervalNS: 100, MaxSamples: 8}, rec, Gauges{})
	s.Attach(e)
	spin(e, 100*1024) // 1024 ticks
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := rec.samples()
	// Strides 1,2,4,… each contribute 8 emissions: 8 cover 8 ticks, next 8
	// cover 16, then 32… 1024 ticks = 8·(1+2+4+8+16+32+64) + 8 extra at
	// stride 128 ⇒ emitted stays logarithmic in run length.
	if len(got) >= 200 || len(got) < 40 {
		t.Fatalf("emitted %d samples from 1024 ticks, want logarithmic decimation", len(got))
	}
	// Gaps between consecutive emissions never shrink.
	lastGap := int64(0)
	for i := 1; i < len(got); i++ {
		gap := got[i].TNS - got[i-1].TNS
		if gap < lastGap {
			t.Fatalf("emission gap shrank from %d to %d at %d", lastGap, gap, i)
		}
		lastGap = gap
	}
	if lastGap < 2*100 {
		t.Fatalf("final gap %dns: stride never widened", lastGap)
	}
}

// TestSamplerFractionsCoverCoarsenedWindow checks utilization is computed
// over the window since the previous emission, not the base interval, so
// decimation averages rather than drops CPU time.
func TestSamplerFractionsCoverCoarsenedWindow(t *testing.T) {
	e := sim.NewEngine(1, nil)
	rec := &sliceRec{}
	s := New(Config{IntervalNS: 100, MaxSamples: 4}, rec, Gauges{
		MutatorCPUNS: e.TaskClock,
	})
	s.Attach(e)
	spin(e, 100*64)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, smp := range rec.samples() {
		if smp.MutFrac < 0.999 || smp.MutFrac > 1.001 {
			t.Fatalf("sample %d MutFrac = %v, want ~1.0 across every stride", i, smp.MutFrac)
		}
	}
}
