package obs

import (
	"strings"
	"testing"
)

// futureStream is a fixture stream as a build two schema versions ahead might
// write it: known events interleaved with kinds ("gc-teleport",
// "fleet-hologram") and fields ("warp_ns") this binary has never heard of,
// properly sequenced and cleanly terminated.
const futureStream = `{"kind":"gc-pause","t_ns":100,"seq":1,"dur_ns":10,"cycle":1}
{"kind":"gc-teleport","t_ns":150,"seq":2,"warp_ns":5,"dur_ns":3}
{"kind":"cache-hit","t_ns":200,"seq":3}
{"kind":"fleet-hologram","t_ns":250,"seq":4,"replica":7,"shimmer":0.5}
{"kind":"run_end","t_ns":0,"seq":5,"value":4}
`

// TestDecodeStreamFutureKinds is the forward-compatibility regression test:
// a stream written by a newer schema decodes with its unknown kinds counted
// and skipped — never handed to the callback, never failing the decode, and
// never flagged as an integrity problem.
func TestDecodeStreamFutureKinds(t *testing.T) {
	var got []Kind
	info, err := DecodeStream(strings.NewReader(futureStream), func(e Event) error {
		got = append(got, e.Kind)
		return nil
	})
	if err != nil {
		t.Fatalf("future stream failed to decode: %v", err)
	}
	if info.Unknown != 2 {
		t.Fatalf("Unknown = %d, want 2", info.Unknown)
	}
	if info.Events != 5 {
		t.Fatalf("Events = %d, want 5 (unknown events still audit)", info.Events)
	}
	if !info.Clean || info.Gaps != 0 || info.OutOfOrder != 0 {
		t.Fatalf("future stream audited %+v, want clean", info)
	}
	if werr := info.Err(); werr != nil {
		t.Fatalf("unknown kinds reported as integrity error: %v", werr)
	}
	want := []Kind{KindGCPause, KindCacheHit, KindRunEnd}
	if len(got) != len(want) {
		t.Fatalf("callback saw %d events %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("callback event %d = %v, want %v", i, got[i], want[i])
		}
	}
	// A dropped line in a future stream must still surface as a gap.
	lines := strings.SplitAfter(futureStream, "\n")
	dropped := lines[0] + lines[2] + lines[3] + lines[4]
	info, err = DecodeStream(strings.NewReader(dropped), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Gaps != 1 {
		t.Fatalf("dropped future line audited %+v, want 1 gap", info)
	}
}

// TestUnknownKindNeverEncodes: KindUnknown is a decode-side sentinel; its
// name must not round-trip back into a stream as a legal kind.
func TestUnknownKindNeverEncodes(t *testing.T) {
	if KindUnknown.String() != "unknown" {
		t.Fatalf("KindUnknown.String() = %q", KindUnknown.String())
	}
	if _, err := ParseKind("unknown"); err == nil {
		t.Fatal("ParseKind accepted the unknown sentinel as a real kind")
	}
}
