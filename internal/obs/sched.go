package obs

import (
	"fmt"
	"io"

	"chopin/internal/report"
)

// SchedWorker is one worker row of a scheduler-utilization summary, decoded
// from a KindSchedWorker event.
type SchedWorker struct {
	Worker      int
	BusyNS      float64
	StealNS     float64
	ParkNS      float64
	AnchorTasks int64
	GridTasks   int64
	Steals      int64
	QueueMax    int64
}

// SchedSummary collects the per-worker scheduler events of a telemetry
// stream, in worker order. Non-scheduler events are ignored.
func SchedSummary(events []Event) []SchedWorker {
	var out []SchedWorker
	for _, e := range events {
		if e.Kind != KindSchedWorker {
			continue
		}
		out = append(out, SchedWorker{
			Worker:      int(e.Value),
			BusyNS:      e.BusyNS,
			StealNS:     e.StealNS,
			ParkNS:      e.ParkNS,
			AnchorTasks: int64(e.AnchorTasks),
			GridTasks:   int64(e.GridTasks),
			Steals:      int64(e.Steals),
			QueueMax:    int64(e.QueueMax),
		})
	}
	return out
}

// WriteSchedTable renders the stream's scheduler telemetry as a one-screen
// utilization table: one row per pool worker with its busy/steal/park time
// split (and busy share of the three), anchor-vs-grid lane occupancy, steal
// count and deque high-water mark, plus a totals row. It writes nothing
// when the stream carries no scheduler events (engines emit them on Close).
func WriteSchedTable(w io.Writer, events []Event) {
	workers := SchedSummary(events)
	if len(workers) == 0 {
		return
	}
	t := report.NewTable("worker", "busy", "steal", "park", "util",
		"anchor", "grid", "steals", "qmax")
	var tot SchedWorker
	for _, ws := range workers {
		t.AddRow(fmt.Sprintf("%d", ws.Worker),
			fmtNS(ws.BusyNS), fmtNS(ws.StealNS), fmtNS(ws.ParkNS),
			fmtUtil(ws.BusyNS, ws.StealNS, ws.ParkNS),
			fmt.Sprintf("%d", ws.AnchorTasks),
			fmt.Sprintf("%d", ws.GridTasks),
			fmt.Sprintf("%d", ws.Steals),
			fmt.Sprintf("%d", ws.QueueMax))
		tot.BusyNS += ws.BusyNS
		tot.StealNS += ws.StealNS
		tot.ParkNS += ws.ParkNS
		tot.AnchorTasks += ws.AnchorTasks
		tot.GridTasks += ws.GridTasks
		tot.Steals += ws.Steals
		if ws.QueueMax > tot.QueueMax {
			tot.QueueMax = ws.QueueMax
		}
	}
	t.AddRow("total",
		fmtNS(tot.BusyNS), fmtNS(tot.StealNS), fmtNS(tot.ParkNS),
		fmtUtil(tot.BusyNS, tot.StealNS, tot.ParkNS),
		fmt.Sprintf("%d", tot.AnchorTasks),
		fmt.Sprintf("%d", tot.GridTasks),
		fmt.Sprintf("%d", tot.Steals),
		fmt.Sprintf("%d", tot.QueueMax))
	t.Render(w)
}

// fmtUtil renders busy time as a share of the worker's accounted lifetime.
func fmtUtil(busy, steal, park float64) string {
	total := busy + steal + park
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*busy/total)
}
