package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateSched = flag.Bool("update-sched", false, "rewrite the scheduler-table golden file")

func schedEvent(worker int, busy, steal, park, anchor, grid, steals, qmax float64) Event {
	return Event{
		Kind: KindSchedWorker, TNS: 1, Value: float64(worker),
		BusyNS: busy, StealNS: steal, ParkNS: park,
		AnchorTasks: anchor, GridTasks: grid, Steals: steals, QueueMax: qmax,
	}
}

// TestWriteSchedTableGolden pins the one-screen utilization table obsreport
// -sched renders: per-worker busy/steal/park splits, busy share, lane
// occupancy, steal counts, deque high-water marks and the totals row.
func TestWriteSchedTableGolden(t *testing.T) {
	events := []Event{
		{Kind: KindJobStart, TNS: 1}, // non-scheduler events are ignored
		schedEvent(0, 812_400_000, 12_300_000, 101_000_000, 14, 120, 9, 37),
		schedEvent(1, 790_100_000, 25_800_000, 110_600_000, 3, 131, 17, 29),
		schedEvent(2, 640_000_000, 4_100_000, 282_000_000, 0, 98, 2, 31),
		schedEvent(3, 12_500_000, 900_000, 913_000_000, 0, 4, 1, 2),
	}
	var buf bytes.Buffer
	WriteSchedTable(&buf, events)

	golden := filepath.Join("testdata", "sched_table.golden")
	if *updateSched {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-sched to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("scheduler table drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteSchedTableEmpty pins that a stream without scheduler events
// renders nothing rather than an empty table frame.
func TestWriteSchedTableEmpty(t *testing.T) {
	var buf bytes.Buffer
	WriteSchedTable(&buf, []Event{{Kind: KindJobStart}})
	if buf.Len() != 0 {
		t.Errorf("expected no output for a stream without sched events, got:\n%s", buf.String())
	}
}

// TestSchedWorkerRoundTrip pins that the dedicated scheduler fields survive
// the JSONL encode/decode path obsreport consumes.
func TestSchedWorkerRoundTrip(t *testing.T) {
	var sink bytes.Buffer
	j := NewJSONL(&sink)
	in := schedEvent(2, 1e9, 2e6, 3e7, 5, 40, 7, 12)
	j.Record(in)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var out []Event
	if _, err := DecodeStream(&sink, func(e Event) error {
		if e.Kind == KindSchedWorker {
			out = append(out, e)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("decoded %d sched events, want 1", len(out))
	}
	got := out[0]
	if got.BusyNS != in.BusyNS || got.StealNS != in.StealNS || got.ParkNS != in.ParkNS ||
		got.AnchorTasks != in.AnchorTasks || got.GridTasks != in.GridTasks ||
		got.Steals != in.Steals || got.QueueMax != in.QueueMax || got.Value != in.Value {
		t.Fatalf("scheduler fields did not round-trip: got %+v want %+v", got, in)
	}
}
