package benchdiff

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// one builds a single-sample Series for threshold-fallback tests.
func one(ns float64) *Series {
	s := &Series{}
	s.Add(NsPerOp, ns)
	return s
}

func TestParseJSON(t *testing.T) {
	s, err := Parse(strings.NewReader(`{
  "BenchmarkEngineStep/threads=8": {"ns_per_op":77.03,"b_per_op":0,"allocs_per_op":0,"iterations":4152824},
  "BenchmarkEngineTimerHeavy": {"ns_per_op":236.2,"iterations":1502066}
}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("parsed %d names, want 2", len(s))
	}
	step := s["BenchmarkEngineStep/threads=8"]
	if got := step.Samples(NsPerOp); len(got) != 1 || got[0] != 77.03 {
		t.Fatalf("JSON ns sample = %v", got)
	}
	// b_per_op:0 is a real zero-allocation measurement, not absence...
	if got := step.Samples(AllocsPerOp); len(got) != 1 || got[0] != 0 {
		t.Fatalf("JSON allocs sample = %v", got)
	}
	// ...while a map entry without the -benchmem keys has no series at all.
	if got := s["BenchmarkEngineTimerHeavy"].Samples(BytesPerOp); len(got) != 0 {
		t.Fatalf("absent b_per_op parsed as samples: %v", got)
	}
}

func TestParseBenchText(t *testing.T) {
	s, err := ParseFile(filepath.Join("testdata", "old.bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 4 {
		t.Fatalf("parsed %d names, want 4: %v", len(s), s)
	}
	// -count=5 accumulates five samples and the GOMAXPROCS suffix strips.
	got := s["BenchmarkEngineStep/threads=8"].Samples(NsPerOp)
	if len(got) != 5 {
		t.Fatalf("samples = %v, want 5 accumulated -count runs", got)
	}
	if got[0] != 77.10 {
		t.Fatalf("first sample = %v, want 77.10", got[0])
	}
	if allocs := s["BenchmarkEngineStep/threads=8"].Samples(AllocsPerOp); len(allocs) != 5 || allocs[0] != 0 {
		t.Fatalf("allocs samples = %v, want five zeros", allocs)
	}
}

// TestParseBenchLineCustomMetrics: b.ReportMetric interleaves custom units
// between ns/op and the -benchmem columns; the pairwise scan must step over
// them and still find B/op and allocs/op.
func TestParseBenchLineCustomMetrics(t *testing.T) {
	line := "BenchmarkFigure1GeomeanLBO-8   1   5771234567 ns/op   12.34 lbo-pct   56.7 sweeps/op   1048576 B/op   30912345 allocs/op"
	name, vals, has, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line with custom metrics rejected")
	}
	if name != "BenchmarkFigure1GeomeanLBO" {
		t.Fatalf("name = %q", name)
	}
	if !has[NsPerOp] || vals[NsPerOp] != 5771234567 {
		t.Fatalf("ns = %v (has %v)", vals[NsPerOp], has[NsPerOp])
	}
	if !has[BytesPerOp] || vals[BytesPerOp] != 1048576 {
		t.Fatalf("B/op = %v (has %v)", vals[BytesPerOp], has[BytesPerOp])
	}
	if !has[AllocsPerOp] || vals[AllocsPerOp] != 30912345 {
		t.Fatalf("allocs/op = %v (has %v)", vals[AllocsPerOp], has[AllocsPerOp])
	}
	// Without -benchmem the line ends after the custom metrics.
	_, _, has, ok = parseBenchLine("BenchmarkX-8   100   50.0 ns/op   3.0 widgets/op")
	if !ok || has[BytesPerOp] || has[AllocsPerOp] {
		t.Fatalf("no-benchmem line: ok=%v has=%v", ok, has)
	}
}

func TestParseEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("garbage input parsed without error")
	}
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Fatal("empty input parsed without error")
	}
}

func load(t *testing.T, name string) Samples {
	t.Helper()
	s, err := ParseFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// deltaFor finds the Delta for one (name, metric) pair.
func deltaFor(t *testing.T, rep Report, name string, m Metric) Delta {
	t.Helper()
	for _, d := range rep.Deltas {
		if d.Name == name && d.Metric == m {
			return d
		}
	}
	t.Fatalf("no delta for %s %s in %+v", name, m, rep.Deltas)
	return Delta{}
}

// TestCompareRegression: the injected 20% EngineStep slowdown is caught,
// and the two untouched benchmarks are not dragged along.
func TestCompareRegression(t *testing.T) {
	rep := Compare(load(t, "old.bench.txt"), load(t, "regression.bench.txt"), Options{})
	if rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%+v", rep.Regressions, rep.Deltas)
	}
	d := deltaFor(t, rep, "BenchmarkEngineStep/threads=8", NsPerOp)
	if d.Verdict != Regression {
		t.Fatalf("EngineStep verdict = %v, want Regression", d.Verdict)
	}
	if d.Pct < 0.15 || d.Pct > 0.25 {
		t.Fatalf("EngineStep delta = %v, want ~+0.20", d.Pct)
	}
	if !d.Tested || d.P >= 0.05 {
		t.Fatalf("EngineStep p = %v (tested=%v), want tested significant", d.P, d.Tested)
	}
	if d.NewLo > d.NewMedian || d.NewHi < d.NewMedian {
		t.Fatalf("bootstrap CI [%v,%v] excludes median %v", d.NewLo, d.NewHi, d.NewMedian)
	}
	for _, d := range rep.Deltas {
		if d.Name != "BenchmarkEngineStep/threads=8" || d.Metric != NsPerOp {
			if d.Verdict != Unchanged {
				t.Fatalf("%s %s verdict = %v, want Unchanged", d.Name, d.Metric, d.Verdict)
			}
		}
	}
}

// TestCompareAllocRegression: the fixtures' zero-allocation benchmarks gain
// allocations in allocregression.bench.txt; the 0 → nonzero rule must fail
// the gate even though ns/op is unchanged, and a large alloc increase on an
// already-allocating benchmark is caught by the ordinary threshold.
func TestCompareAllocRegression(t *testing.T) {
	rep := Compare(load(t, "old.bench.txt"), load(t, "allocregression.bench.txt"), Options{})
	if rep.Regressions != 4 {
		t.Fatalf("regressions = %d, want 4\n%+v", rep.Regressions, rep.Deltas)
	}
	d := deltaFor(t, rep, "BenchmarkEngineTimerHeavy", AllocsPerOp)
	if d.Verdict != Regression || !math.IsInf(d.Pct, 1) {
		t.Fatalf("0→2 allocs/op: verdict=%v pct=%v, want Regression +Inf", d.Verdict, d.Pct)
	}
	d = deltaFor(t, rep, "BenchmarkEngineTimerHeavy", BytesPerOp)
	if d.Verdict != Regression || !math.IsInf(d.Pct, 1) {
		t.Fatalf("0→48 B/op: verdict=%v pct=%v, want Regression +Inf", d.Verdict, d.Pct)
	}
	d = deltaFor(t, rep, "BenchmarkEngineAllocHeavy", AllocsPerOp)
	if d.Verdict != Regression || d.Pct < 0.9 || d.Pct > 1.1 {
		t.Fatalf("4→8 allocs/op: verdict=%v pct=%v, want Regression ~+1.0", d.Verdict, d.Pct)
	}
	d = deltaFor(t, rep, "BenchmarkEngineAllocHeavy", BytesPerOp)
	if d.Verdict != Regression {
		t.Fatalf("128→256 B/op: verdict=%v, want Regression", d.Verdict)
	}
	if d := deltaFor(t, rep, "BenchmarkEngineTimerHeavy", NsPerOp); d.Verdict != Unchanged {
		t.Fatalf("unchanged ns/op flagged: %+v", d)
	}
	if d := deltaFor(t, rep, "BenchmarkEngineBlockUnblockHeavy", AllocsPerOp); d.Verdict != Unchanged {
		t.Fatalf("0→0 allocs/op flagged: %+v", d)
	}
}

func TestCompareImprovement(t *testing.T) {
	rep := Compare(load(t, "old.bench.txt"), load(t, "improvement.bench.txt"), Options{})
	if rep.Regressions != 0 || rep.Improvements != 1 {
		t.Fatalf("regressions=%d improvements=%d, want 0/1\n%+v",
			rep.Regressions, rep.Improvements, rep.Deltas)
	}
}

func TestCompareNoChange(t *testing.T) {
	rep := Compare(load(t, "old.bench.txt"), load(t, "nochange.bench.txt"), Options{})
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Fatalf("noise flagged as change: regressions=%d improvements=%d\n%+v",
			rep.Regressions, rep.Improvements, rep.Deltas)
	}
}

func TestCompareIdenticalInputs(t *testing.T) {
	s := load(t, "old.bench.txt")
	rep := Compare(s, s, Options{})
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Fatalf("identical inputs flagged: %+v", rep.Deltas)
	}
	for _, d := range rep.Deltas {
		if d.Pct != 0 {
			t.Fatalf("identical inputs produced nonzero delta: %+v", d)
		}
	}
}

// TestCompareSmallSampleFallback: with n=1 per side (the checked-in
// BENCH_sim.json regime) there is no distribution to test, so the threshold
// alone decides.
func TestCompareSmallSampleFallback(t *testing.T) {
	old := Samples{"BenchmarkX": one(100), "BenchmarkY": one(100)}
	rep := Compare(old, Samples{"BenchmarkX": one(121), "BenchmarkY": one(103)}, Options{Threshold: 0.10})
	if rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (threshold-only fallback)\n%+v",
			rep.Regressions, rep.Deltas)
	}
	if d := rep.Deltas[0]; d.Name != "BenchmarkX" || d.Verdict != Regression || d.Tested {
		t.Fatalf("small-n delta wrong: %+v", d)
	}
	if d := rep.Deltas[1]; d.Verdict != Unchanged {
		t.Fatalf("3%% move under a 10%% threshold flagged: %+v", d)
	}
}

// TestCompareSignificanceGuards: a large-looking delta backed by wildly
// overlapping samples must NOT be flagged — that is the whole point of the
// statistical gate.
func TestCompareSignificanceGuards(t *testing.T) {
	oldS, newS := &Series{}, &Series{}
	for _, v := range []float64{100, 180, 95, 170, 105} {
		oldS.Add(NsPerOp, v)
	}
	for _, v := range []float64{165, 98, 175, 102, 160} {
		newS.Add(NsPerOp, v)
	}
	rep := Compare(Samples{"BenchmarkX": oldS}, Samples{"BenchmarkX": newS}, Options{Threshold: 0.05})
	if rep.Regressions != 0 {
		t.Fatalf("noisy overlap flagged as regression: %+v", rep.Deltas)
	}
}

// TestCompareAddedRemoved: names on one side only are reported, not failed.
func TestCompareAddedRemoved(t *testing.T) {
	rep := Compare(Samples{"BenchmarkGone": one(50)}, Samples{"BenchmarkNew": one(60)}, Options{})
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Fatal("added/removed benchmarks counted as changes")
	}
	verdicts := map[string]Verdict{}
	for _, d := range rep.Deltas {
		verdicts[d.Name] = d.Verdict
	}
	if verdicts["BenchmarkGone"] != OnlyOld || verdicts["BenchmarkNew"] != OnlyNew {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

// TestRenderGolden locks the benchstat-style table for the fixture
// comparisons.
func TestRenderGolden(t *testing.T) {
	old := load(t, "old.bench.txt")
	var buf bytes.Buffer
	for _, name := range []string{"regression", "allocregression", "improvement", "nochange"} {
		rep := Compare(old, load(t, name+".bench.txt"), Options{})
		buf.WriteString("== old vs " + name + " ==\n")
		rep.Render(&buf)
		buf.WriteString("\n")
	}
	path := filepath.Join("testdata", "render.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("table drifted from golden (run with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}
