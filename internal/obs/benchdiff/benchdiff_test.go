package benchdiff

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestParseJSON(t *testing.T) {
	s, err := Parse(strings.NewReader(`{
  "BenchmarkEngineStep/threads=8": {"ns_per_op":77.03,"b_per_op":0,"allocs_per_op":0,"iterations":4152824},
  "BenchmarkEngineTimerHeavy": {"ns_per_op":236.2,"iterations":1502066}
}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("parsed %d names, want 2", len(s))
	}
	if got := s["BenchmarkEngineStep/threads=8"]; len(got) != 1 || got[0] != 77.03 {
		t.Fatalf("JSON sample = %v", got)
	}
}

func TestParseBenchText(t *testing.T) {
	s, err := ParseFile(filepath.Join("testdata", "old.bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 {
		t.Fatalf("parsed %d names, want 3: %v", len(s), s)
	}
	// -count=5 accumulates five samples and the GOMAXPROCS suffix strips.
	got := s["BenchmarkEngineStep/threads=8"]
	if len(got) != 5 {
		t.Fatalf("samples = %v, want 5 accumulated -count runs", got)
	}
	if got[0] != 77.10 {
		t.Fatalf("first sample = %v, want 77.10", got[0])
	}
}

func TestParseEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("garbage input parsed without error")
	}
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Fatal("empty input parsed without error")
	}
}

func load(t *testing.T, name string) Samples {
	t.Helper()
	s, err := ParseFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCompareRegression: the injected 20% EngineStep slowdown is caught,
// and the two untouched benchmarks are not dragged along.
func TestCompareRegression(t *testing.T) {
	rep := Compare(load(t, "old.bench.txt"), load(t, "regression.bench.txt"), Options{})
	if rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%+v", rep.Regressions, rep.Deltas)
	}
	for _, d := range rep.Deltas {
		switch d.Name {
		case "BenchmarkEngineStep/threads=8":
			if d.Verdict != Regression {
				t.Fatalf("EngineStep verdict = %v, want Regression", d.Verdict)
			}
			if d.Pct < 0.15 || d.Pct > 0.25 {
				t.Fatalf("EngineStep delta = %v, want ~+0.20", d.Pct)
			}
			if !d.Tested || d.P >= 0.05 {
				t.Fatalf("EngineStep p = %v (tested=%v), want tested significant", d.P, d.Tested)
			}
			if d.NewLo > d.NewMedian || d.NewHi < d.NewMedian {
				t.Fatalf("bootstrap CI [%v,%v] excludes median %v", d.NewLo, d.NewHi, d.NewMedian)
			}
		default:
			if d.Verdict != Unchanged {
				t.Fatalf("%s verdict = %v, want Unchanged", d.Name, d.Verdict)
			}
		}
	}
}

func TestCompareImprovement(t *testing.T) {
	rep := Compare(load(t, "old.bench.txt"), load(t, "improvement.bench.txt"), Options{})
	if rep.Regressions != 0 || rep.Improvements != 1 {
		t.Fatalf("regressions=%d improvements=%d, want 0/1\n%+v",
			rep.Regressions, rep.Improvements, rep.Deltas)
	}
}

func TestCompareNoChange(t *testing.T) {
	rep := Compare(load(t, "old.bench.txt"), load(t, "nochange.bench.txt"), Options{})
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Fatalf("noise flagged as change: regressions=%d improvements=%d\n%+v",
			rep.Regressions, rep.Improvements, rep.Deltas)
	}
}

func TestCompareIdenticalInputs(t *testing.T) {
	s := load(t, "old.bench.txt")
	rep := Compare(s, s, Options{})
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Fatalf("identical inputs flagged: %+v", rep.Deltas)
	}
	for _, d := range rep.Deltas {
		if d.Pct != 0 {
			t.Fatalf("identical inputs produced nonzero delta: %+v", d)
		}
	}
}

// TestCompareSmallSampleFallback: with n=1 per side (the checked-in
// BENCH_sim.json regime) there is no distribution to test, so the threshold
// alone decides.
func TestCompareSmallSampleFallback(t *testing.T) {
	old := Samples{"BenchmarkX": {100}, "BenchmarkY": {100}}
	rep := Compare(old, Samples{"BenchmarkX": {121}, "BenchmarkY": {103}}, Options{Threshold: 0.10})
	if rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (threshold-only fallback)\n%+v",
			rep.Regressions, rep.Deltas)
	}
	if d := rep.Deltas[0]; d.Name != "BenchmarkX" || d.Verdict != Regression || d.Tested {
		t.Fatalf("small-n delta wrong: %+v", d)
	}
	if d := rep.Deltas[1]; d.Verdict != Unchanged {
		t.Fatalf("3%% move under a 10%% threshold flagged: %+v", d)
	}
}

// TestCompareSignificanceGuards: a large-looking delta backed by wildly
// overlapping samples must NOT be flagged — that is the whole point of the
// statistical gate.
func TestCompareSignificanceGuards(t *testing.T) {
	old := Samples{"BenchmarkX": {100, 180, 95, 170, 105}}
	new := Samples{"BenchmarkX": {165, 98, 175, 102, 160}}
	rep := Compare(old, new, Options{Threshold: 0.05})
	if rep.Regressions != 0 {
		t.Fatalf("noisy overlap flagged as regression: %+v", rep.Deltas)
	}
}

// TestCompareAddedRemoved: names on one side only are reported, not failed.
func TestCompareAddedRemoved(t *testing.T) {
	rep := Compare(Samples{"BenchmarkGone": {50}}, Samples{"BenchmarkNew": {60}}, Options{})
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Fatal("added/removed benchmarks counted as changes")
	}
	verdicts := map[string]Verdict{}
	for _, d := range rep.Deltas {
		verdicts[d.Name] = d.Verdict
	}
	if verdicts["BenchmarkGone"] != OnlyOld || verdicts["BenchmarkNew"] != OnlyNew {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

// TestRenderGolden locks the benchstat-style table for the three fixture
// comparisons.
func TestRenderGolden(t *testing.T) {
	old := load(t, "old.bench.txt")
	var buf bytes.Buffer
	for _, name := range []string{"regression", "improvement", "nochange"} {
		rep := Compare(old, load(t, name+".bench.txt"), Options{})
		buf.WriteString("== old vs " + name + " ==\n")
		rep.Render(&buf)
		buf.WriteString("\n")
	}
	path := filepath.Join("testdata", "render.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("table drifted from golden (run with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}
