// Package benchdiff is the statistical perf-regression gate: it compares
// two sets of benchmark measurements and decides — with a significance test,
// not eyeballing — whether the new side got worse.
//
// Inputs come in either of the repo's two benchmark formats, sniffed
// automatically: the BENCH_sim.json map written by cmd/benchjson
// (name → {ns_per_op, b_per_op, allocs_per_op, …}, one sample per name), or
// raw `go test -bench` text, where `-count=N` yields N samples per name.
// Each benchmark is compared per metric: ns/op always, and — when both
// sides carry them (`-benchmem`) — B/op and allocs/op, so an allocation
// regression fails the gate exactly like a time regression. With three or
// more samples on both sides a comparison runs the Mann-Whitney U test
// (internal/stats) and flags a change only when it is both statistically
// significant (p < Alpha) and practically large (|Δmedian| > Threshold);
// with fewer samples there is no distribution to test, so the gate falls
// back to the threshold alone. That keeps the gate honest in both regimes:
// multi-sample runs cannot be failed by noise, and the checked-in
// single-sample baseline still catches a 20% cliff. A metric that goes from
// an exactly-zero old median to a nonzero new one (e.g. 0 → 2 allocs/op) is
// always a regression: no relative threshold can express "was free, now
// isn't".
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"chopin/internal/report"
	"chopin/internal/stats"
)

// Metric identifies which benchmark column a sample series or delta refers
// to.
type Metric int

const (
	// NsPerOp is wall time per operation — present on every benchmark line.
	NsPerOp Metric = iota
	// BytesPerOp is heap bytes allocated per operation (-benchmem).
	BytesPerOp
	// AllocsPerOp is heap allocations per operation (-benchmem).
	AllocsPerOp
	numMetrics
)

func (m Metric) String() string {
	switch m {
	case BytesPerOp:
		return "B/op"
	case AllocsPerOp:
		return "allocs/op"
	default:
		return "ns/op"
	}
}

// Series holds one benchmark's samples, one slice per metric (empty when the
// input did not carry that column).
type Series struct {
	m [numMetrics][]float64
}

// Add appends one sample for metric m.
func (s *Series) Add(m Metric, v float64) { s.m[m] = append(s.m[m], v) }

// Samples returns the recorded values for metric m (nil if none).
func (s *Series) Samples(m Metric) []float64 {
	if s == nil {
		return nil
	}
	return s.m[m]
}

// Samples maps benchmark name → per-metric sample series.
type Samples map[string]*Series

func (s Samples) series(name string) *Series {
	sr := s[name]
	if sr == nil {
		sr = &Series{}
		s[name] = sr
	}
	return sr
}

// measurement mirrors cmd/benchjson's JSON value shape. The -benchmem
// columns are pointers so a benchmark recorded without them is
// distinguishable from one that genuinely allocates zero.
type measurement struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      *float64 `json:"b_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// ParseFile loads benchmark samples from path, sniffing the format: a file
// whose first non-space byte is '{' is a BENCH_sim.json map, anything else
// is `go test -bench` text.
func ParseFile(path string) (Samples, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse reads samples from r, sniffing the format as ParseFile does.
func Parse(r io.Reader) (Samples, error) {
	br := bufio.NewReader(r)
	for {
		c, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("benchdiff: empty input")
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			continue
		}
		br.UnreadByte()
		var s Samples
		if c == '{' {
			s, err = parseJSON(br)
		} else {
			s, err = parseBenchText(br)
		}
		if err != nil {
			return nil, err
		}
		deriveEfficiency(s)
		return s, nil
	}
}

// effSuffix names derived parallel-efficiency entries (workers=1 ns ÷
// workers=8 ns). The metric is higher-is-better, so compareMetric inverts
// the verdict direction for names carrying it.
const effSuffix = "/parallel-efficiency"

// deriveEfficiency synthesizes <base>/parallel-efficiency sample series
// from each benchmark's workers=1 and workers=8 ns samples, paired
// positionally — mirroring cmd/benchjson, so a raw `go test -bench` gate
// run compares cleanly against a JSON baseline that already carries the
// derived entry. Names already present (JSON baselines) are left alone.
func deriveEfficiency(s Samples) {
	for name, sr := range s {
		base, ok := strings.CutSuffix(name, "/workers=1")
		if !ok || s[base+effSuffix] != nil {
			continue
		}
		w1 := sr.Samples(NsPerOp)
		w8 := s[base+"/workers=8"].Samples(NsPerOp)
		for i := 0; i < len(w1) && i < len(w8); i++ {
			if w8[i] <= 0 {
				continue
			}
			s.series(base+effSuffix).Add(NsPerOp, w1[i]/w8[i])
		}
	}
}

func parseJSON(r io.Reader) (Samples, error) {
	var m map[string]measurement
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("benchdiff: bad JSON benchmark map: %w", err)
	}
	s := Samples{}
	for name, meas := range m {
		sr := s.series(name)
		sr.Add(NsPerOp, meas.NsPerOp)
		if meas.BPerOp != nil {
			sr.Add(BytesPerOp, *meas.BPerOp)
		}
		if meas.AllocsPerOp != nil {
			sr.Add(AllocsPerOp, *meas.AllocsPerOp)
		}
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmarks in JSON map")
	}
	return s, nil
}

// parseBenchText accumulates every matching line, so `go test -bench
// -count=N` output yields N samples per benchmark name (GOMAXPROCS suffix
// stripped, matching cmd/benchjson).
func parseBenchText(r io.Reader) (Samples, error) {
	s := Samples{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, vals, has, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		sr := s.series(name)
		for m := Metric(0); m < numMetrics; m++ {
			if has[m] {
				sr.Add(m, vals[m])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found")
	}
	return s, nil
}

// parseBenchLine extracts the metric columns from one `go test -bench` line.
// The layout after the iteration count is (value, unit) token pairs;
// benchmarks that call b.ReportMetric interleave custom units between ns/op
// and the -benchmem columns, so the pairs are scanned by unit rather than by
// position.
func parseBenchLine(line string) (name string, vals [numMetrics]float64, has [numMetrics]bool, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", vals, has, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", vals, has, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix, matching cmd/benchjson.
		if allDigits(name[i+1:]) {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		var m Metric
		switch fields[i+1] {
		case "ns/op":
			m = NsPerOp
		case "B/op":
			m = BytesPerOp
		case "allocs/op":
			m = AllocsPerOp
		default:
			continue // custom b.ReportMetric unit
		}
		var v float64
		if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
			return "", vals, has, false
		}
		vals[m], has[m] = v, true
	}
	if !has[NsPerOp] {
		return "", vals, has, false
	}
	return name, vals, has, true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Options tunes the gate's decision rule.
type Options struct {
	// Threshold is the minimum practically-significant |Δmedian| as a
	// fraction of the old median (default 0.05 = 5%).
	Threshold float64
	// Alpha is the Mann-Whitney significance level applied when both sides
	// have at least three samples (default 0.05).
	Alpha float64
	// BootstrapIters sizes the median bootstrap (default 1000).
	BootstrapIters int
	// Seed makes the bootstrap reproducible (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 0.05
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.BootstrapIters <= 0 {
		o.BootstrapIters = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Verdict is the gate's decision for one benchmark metric.
type Verdict int

const (
	// Unchanged means no significant difference was found.
	Unchanged Verdict = iota
	// Regression means the new side is significantly worse.
	Regression
	// Improvement means the new side is significantly better.
	Improvement
	// OnlyOld and OnlyNew flag benchmarks present on one side alone
	// (renamed, added or deleted) — reported, never failed on.
	OnlyOld
	OnlyNew
)

func (v Verdict) String() string {
	switch v {
	case Regression:
		return "REGRESSION"
	case Improvement:
		return "improvement"
	case OnlyOld:
		return "deleted"
	case OnlyNew:
		return "added"
	default:
		return "~"
	}
}

// Delta is the comparison result for one benchmark name and metric.
type Delta struct {
	Name    string
	Metric  Metric
	Verdict Verdict
	// OldMedian and NewMedian are in the metric's unit; Pct is the relative
	// change of the median ((new-old)/old), +Inf when an exactly-zero old
	// median became nonzero.
	OldMedian float64
	NewMedian float64
	Pct       float64
	// P is the Mann-Whitney two-sided p-value, or 1 when either side has
	// too few samples to test (Tested is then false).
	P      float64
	Tested bool
	// NewLo and NewHi bracket the new median (95% bootstrap CI) when the
	// new side has enough samples; both zero otherwise.
	NewLo, NewHi float64
	NOld, NNew   int
}

// Report is a full comparison: one Delta per benchmark name and metric
// present on both sides, sorted by name then metric.
type Report struct {
	Deltas       []Delta
	Regressions  int
	Improvements int
}

// Compare runs the gate over two sample sets. Every benchmark gets an ns/op
// delta; B/op and allocs/op deltas appear when both sides recorded them.
func Compare(old, new Samples, opt Options) Report {
	opt = opt.withDefaults()
	names := map[string]bool{}
	for n := range old {
		names[n] = true
	}
	for n := range new {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var rep Report
	for _, name := range sorted {
		so, sn := old[name], new[name]
		if so == nil {
			rep.Deltas = append(rep.Deltas, Delta{
				Name: name, Verdict: OnlyNew,
				NewMedian: stats.Median(sn.Samples(NsPerOp)),
				NNew:      len(sn.Samples(NsPerOp)), P: 1,
			})
			continue
		}
		if sn == nil {
			rep.Deltas = append(rep.Deltas, Delta{
				Name: name, Verdict: OnlyOld,
				OldMedian: stats.Median(so.Samples(NsPerOp)),
				NOld:      len(so.Samples(NsPerOp)), P: 1,
			})
			continue
		}
		for m := Metric(0); m < numMetrics; m++ {
			o, n := so.Samples(m), sn.Samples(m)
			if len(o) == 0 && len(n) == 0 {
				continue
			}
			// A metric recorded on one side only is a shape change (a bench
			// gained or lost -benchmem columns, a new benchmark's metric has
			// no baseline yet): reported as added/deleted, never a gate
			// failure — exactly like a name present on one side alone.
			if len(n) == 0 {
				rep.Deltas = append(rep.Deltas, Delta{
					Name: name, Metric: m, Verdict: OnlyOld,
					OldMedian: stats.Median(o), NOld: len(o), P: 1,
				})
				continue
			}
			if len(o) == 0 {
				rep.Deltas = append(rep.Deltas, Delta{
					Name: name, Metric: m, Verdict: OnlyNew,
					NewMedian: stats.Median(n), NNew: len(n), P: 1,
				})
				continue
			}
			d := compareMetric(name, m, o, n, opt)
			switch d.Verdict {
			case Regression:
				rep.Regressions++
			case Improvement:
				rep.Improvements++
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	return rep
}

// compareMetric decides one (benchmark, metric) pair.
func compareMetric(name string, m Metric, o, n []float64, opt Options) Delta {
	d := Delta{Name: name, Metric: m, NOld: len(o), NNew: len(n), P: 1}
	d.OldMedian = stats.Median(o)
	d.NewMedian = stats.Median(n)
	switch {
	case d.OldMedian != 0:
		d.Pct = (d.NewMedian - d.OldMedian) / d.OldMedian
	case d.NewMedian != 0:
		// Zero → nonzero: infinitely past any relative threshold. The
		// hot-path benches live here — their whole contract is 0 allocs/op.
		d.Pct = math.Inf(1)
	}
	significant := false
	if len(o) >= 3 && len(n) >= 3 {
		d.Tested = true
		_, d.P = stats.MannWhitneyU(o, n)
		d.NewLo, d.NewHi = stats.BootstrapMedianCI(n, opt.BootstrapIters, opt.Seed)
		significant = d.P < opt.Alpha
	} else {
		// Too few samples for a rank test: the threshold alone decides
		// (the single-sample checked-in baseline regime).
		significant = true
	}
	if significant {
		switch {
		case d.Pct > opt.Threshold:
			d.Verdict = Regression
		case d.Pct < -opt.Threshold:
			d.Verdict = Improvement
		}
		// Parallel efficiency is a speedup ratio: higher is better, so a
		// significant drop is the regression.
		if strings.HasSuffix(name, effSuffix) && d.Verdict != Unchanged {
			if d.Verdict == Regression {
				d.Verdict = Improvement
			} else {
				d.Verdict = Regression
			}
		}
	}
	return d
}

// Render writes the report as a benchstat-style aligned table.
func (r Report) Render(w io.Writer) {
	t := report.NewTable("benchmark", "metric", "old", "new", "delta", "p", "samples", "verdict")
	for _, d := range r.Deltas {
		old, new, delta, p := "-", "-", "-", "-"
		if d.NOld > 0 {
			old = report.FormatFloat(d.OldMedian)
		}
		if d.NNew > 0 {
			new = report.FormatFloat(d.NewMedian)
		}
		if d.NOld > 0 && d.NNew > 0 {
			if math.IsInf(d.Pct, 1) {
				delta = "+inf%"
			} else {
				delta = fmt.Sprintf("%+.1f%%", 100*d.Pct)
			}
			if d.Tested {
				p = fmt.Sprintf("%.3f", d.P)
			}
		}
		t.AddRow(d.Name, d.Metric.String(), old, new, delta, p,
			fmt.Sprintf("%d+%d", d.NOld, d.NNew), d.Verdict.String())
	}
	t.Render(w)
	switch {
	case r.Regressions > 0:
		fmt.Fprintf(w, "\n%d regression(s), %d improvement(s)\n", r.Regressions, r.Improvements)
	case r.Improvements > 0:
		fmt.Fprintf(w, "\nno regressions, %d improvement(s)\n", r.Improvements)
	default:
		fmt.Fprintf(w, "\nno significant changes\n")
	}
}
