// Package benchdiff is the statistical perf-regression gate: it compares
// two sets of benchmark timings and decides — with a significance test, not
// eyeballing — whether the new side got slower.
//
// Inputs come in either of the repo's two benchmark formats, sniffed
// automatically: the BENCH_sim.json map written by cmd/benchjson
// (name → {ns_per_op, …}, one sample per name), or raw `go test -bench`
// text, where `-count=N` yields N samples per name. With three or more
// samples on both sides a comparison runs the Mann-Whitney U test
// (internal/stats) and flags a change only when it is both statistically
// significant (p < Alpha) and practically large (|Δmedian| > Threshold);
// with fewer samples there is no distribution to test, so the gate falls
// back to the threshold alone. That keeps the gate honest in both regimes:
// multi-sample runs cannot be failed by noise, and the checked-in
// single-sample baseline still catches a 20% cliff.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"chopin/internal/report"
	"chopin/internal/stats"
)

// Samples maps benchmark name → ns/op timings (one per recorded run).
type Samples map[string][]float64

// measurement mirrors cmd/benchjson's JSON value shape.
type measurement struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// ParseFile loads benchmark samples from path, sniffing the format: a file
// whose first non-space byte is '{' is a BENCH_sim.json map, anything else
// is `go test -bench` text.
func ParseFile(path string) (Samples, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse reads samples from r, sniffing the format as ParseFile does.
func Parse(r io.Reader) (Samples, error) {
	br := bufio.NewReader(r)
	for {
		c, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("benchdiff: empty input")
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			continue
		}
		br.UnreadByte()
		if c == '{' {
			return parseJSON(br)
		}
		return parseBenchText(br)
	}
}

func parseJSON(r io.Reader) (Samples, error) {
	var m map[string]measurement
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("benchdiff: bad JSON benchmark map: %w", err)
	}
	s := Samples{}
	for name, meas := range m {
		s[name] = append(s[name], meas.NsPerOp)
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmarks in JSON map")
	}
	return s, nil
}

// parseBenchText accumulates every matching line, so `go test -bench
// -count=N` output yields N samples per benchmark name. The line regex is
// shared with cmd/benchjson via its published shape (GOMAXPROCS suffix
// stripped).
func parseBenchText(r io.Reader) (Samples, error) {
	s := Samples{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, ns, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		s[name] = append(s[name], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found")
	}
	return s, nil
}

// parseBenchLine extracts (name, ns/op) from one `go test -bench` line.
func parseBenchLine(line string) (string, float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix, matching cmd/benchjson.
		if allDigits(name[i+1:]) {
			name = name[:i]
		}
	}
	var ns float64
	if _, err := fmt.Sscanf(fields[2], "%g", &ns); err != nil {
		return "", 0, false
	}
	if fields[3] != "ns/op" {
		return "", 0, false
	}
	return name, ns, true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Options tunes the gate's decision rule.
type Options struct {
	// Threshold is the minimum practically-significant |Δmedian| as a
	// fraction of the old median (default 0.05 = 5%).
	Threshold float64
	// Alpha is the Mann-Whitney significance level applied when both sides
	// have at least three samples (default 0.05).
	Alpha float64
	// BootstrapIters sizes the median bootstrap (default 1000).
	BootstrapIters int
	// Seed makes the bootstrap reproducible (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 0.05
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.BootstrapIters <= 0 {
		o.BootstrapIters = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Verdict is the gate's decision for one benchmark.
type Verdict int

const (
	// Unchanged means no significant difference was found.
	Unchanged Verdict = iota
	// Regression means the new side is significantly slower.
	Regression
	// Improvement means the new side is significantly faster.
	Improvement
	// OnlyOld and OnlyNew flag benchmarks present on one side alone
	// (renamed, added or deleted) — reported, never failed on.
	OnlyOld
	OnlyNew
)

func (v Verdict) String() string {
	switch v {
	case Regression:
		return "REGRESSION"
	case Improvement:
		return "improvement"
	case OnlyOld:
		return "deleted"
	case OnlyNew:
		return "added"
	default:
		return "~"
	}
}

// Delta is the comparison result for one benchmark name.
type Delta struct {
	Name    string
	Verdict Verdict
	// OldMedian and NewMedian are ns/op; Pct is the relative change of the
	// median ((new-old)/old).
	OldMedian float64
	NewMedian float64
	Pct       float64
	// P is the Mann-Whitney two-sided p-value, or 1 when either side has
	// too few samples to test (Tested is then false).
	P      float64
	Tested bool
	// NewLo and NewHi bracket the new median (95% bootstrap CI) when the
	// new side has enough samples; both zero otherwise.
	NewLo, NewHi float64
	NOld, NNew   int
}

// Report is a full comparison: one Delta per benchmark name, sorted.
type Report struct {
	Deltas       []Delta
	Regressions  int
	Improvements int
}

// Compare runs the gate over two sample sets.
func Compare(old, new Samples, opt Options) Report {
	opt = opt.withDefaults()
	names := map[string]bool{}
	for n := range old {
		names[n] = true
	}
	for n := range new {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var rep Report
	for _, name := range sorted {
		o, n := old[name], new[name]
		d := Delta{Name: name, NOld: len(o), NNew: len(n), P: 1}
		switch {
		case len(o) == 0:
			d.Verdict = OnlyNew
			d.NewMedian = stats.Median(n)
		case len(n) == 0:
			d.Verdict = OnlyOld
			d.OldMedian = stats.Median(o)
		default:
			d.OldMedian = stats.Median(o)
			d.NewMedian = stats.Median(n)
			if d.OldMedian != 0 {
				d.Pct = (d.NewMedian - d.OldMedian) / d.OldMedian
			}
			significant := false
			if len(o) >= 3 && len(n) >= 3 {
				d.Tested = true
				_, d.P = stats.MannWhitneyU(o, n)
				d.NewLo, d.NewHi = stats.BootstrapMedianCI(n, opt.BootstrapIters, opt.Seed)
				significant = d.P < opt.Alpha
			} else {
				// Too few samples for a rank test: the threshold alone
				// decides (the single-sample checked-in baseline regime).
				significant = true
			}
			if significant {
				switch {
				case d.Pct > opt.Threshold:
					d.Verdict = Regression
					rep.Regressions++
				case d.Pct < -opt.Threshold:
					d.Verdict = Improvement
					rep.Improvements++
				}
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep
}

// Render writes the report as a benchstat-style aligned table.
func (r Report) Render(w io.Writer) {
	t := report.NewTable("benchmark", "old ns/op", "new ns/op", "delta", "p", "samples", "verdict")
	for _, d := range r.Deltas {
		old, new, delta, p := "-", "-", "-", "-"
		if d.NOld > 0 {
			old = report.FormatFloat(d.OldMedian)
		}
		if d.NNew > 0 {
			new = report.FormatFloat(d.NewMedian)
		}
		if d.NOld > 0 && d.NNew > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*d.Pct)
			if d.Tested {
				p = fmt.Sprintf("%.3f", d.P)
			}
		}
		t.AddRow(d.Name, old, new, delta, p,
			fmt.Sprintf("%d+%d", d.NOld, d.NNew), d.Verdict.String())
	}
	t.Render(w)
	switch {
	case r.Regressions > 0:
		fmt.Fprintf(w, "\n%d regression(s), %d improvement(s)\n", r.Regressions, r.Improvements)
	case r.Improvements > 0:
		fmt.Fprintf(w, "\nno regressions, %d improvement(s)\n", r.Improvements)
	default:
		fmt.Fprintf(w, "\nno significant changes\n")
	}
}
