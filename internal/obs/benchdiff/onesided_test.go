package benchdiff

import "testing"

// One-sided metric handling: a benchmark that loses (or gains) its -benchmem
// columns between runs is a shape change, not a performance change. Before
// the fix the empty side fed a zero-length sample set into the comparison,
// which read as a spurious regression or improvement of the gate.

// TestCompareBenchmemDropped: the new run recorded no B/op or allocs/op for
// a benchmark both sides ran. The metric deltas must come back as "deleted"
// (OnlyOld), untested, and must not move the gate counters.
func TestCompareBenchmemDropped(t *testing.T) {
	rep := Compare(load(t, "old.bench.txt"), load(t, "benchmem_dropped.bench.txt"), Options{})
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Fatalf("one-sided metrics moved the gate: %d regressions, %d improvements\n%+v",
			rep.Regressions, rep.Improvements, rep.Deltas)
	}
	for _, m := range []Metric{BytesPerOp, AllocsPerOp} {
		d := deltaFor(t, rep, "BenchmarkEngineStep/threads=8", m)
		if d.Verdict != OnlyOld {
			t.Fatalf("%s verdict = %v, want OnlyOld", m, d.Verdict)
		}
		if d.Tested || d.P != 1 {
			t.Fatalf("%s one-sided delta tested (p=%v)", m, d.P)
		}
		if d.NNew != 0 || d.NOld == 0 {
			t.Fatalf("%s sample counts = %d old, %d new", m, d.NOld, d.NNew)
		}
	}
	// Wall time is present on both sides and unchanged.
	if d := deltaFor(t, rep, "BenchmarkEngineStep/threads=8", NsPerOp); d.Verdict != Unchanged {
		t.Fatalf("ns/op verdict = %v, want Unchanged", d.Verdict)
	}
}

// TestCompareBenchmemGained: the mirror image — the old run lacked
// -benchmem. The metrics appear as "added" (OnlyNew), again without failing
// the gate.
func TestCompareBenchmemGained(t *testing.T) {
	rep := Compare(load(t, "benchmem_dropped.bench.txt"), load(t, "old.bench.txt"), Options{})
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Fatalf("gained metrics moved the gate: %d regressions, %d improvements",
			rep.Regressions, rep.Improvements)
	}
	for _, m := range []Metric{BytesPerOp, AllocsPerOp} {
		d := deltaFor(t, rep, "BenchmarkEngineStep/threads=8", m)
		if d.Verdict != OnlyNew {
			t.Fatalf("%s verdict = %v, want OnlyNew", m, d.Verdict)
		}
		if d.NOld != 0 || d.NNew == 0 {
			t.Fatalf("%s sample counts = %d old, %d new", m, d.NOld, d.NNew)
		}
	}
}
