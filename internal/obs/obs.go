// Package obs is the run-telemetry observability layer: a zero-dependency
// structured event stream plus lightweight counters and fixed-bucket
// histograms, behind a Recorder interface whose disabled path costs nothing.
//
// The paper's diagnostic work — reading Shenandoah's GC log to explain the
// lusearch anomaly (§6.3), attributing concurrent-collector CPU that hides
// from wall clock — needs per-run visibility that aggregate results cannot
// give. Every layer of this system therefore emits typed events through a
// Recorder: the simulator reports scheduler quiescent points and transition
// counts, collectors report GC phase start/end, pacer stalls, degenerations
// and OOMs, and the experiment engine reports job lifecycle and cache
// accounting. A JSONL sink serializes the stream for offline analysis
// (cmd/obsreport turns it back into per-phase breakdowns and stall
// histograms).
//
// # Hot-path discipline
//
// Recording must never tax a run that is not being observed. The contract:
//
//   - callers hold a non-nil Recorder (use Nop, never nil) and guard every
//     emission with Enabled(), so the disabled cost is one boolean method
//     call — components on per-event paths (the simulator engine) cache the
//     boolean once instead;
//   - Event is a flat value struct: constructing and passing one does not
//     allocate; all allocation (JSON encoding, buffering) happens inside
//     enabled sinks.
package obs

import (
	"fmt"
	"sync"
)

// Kind classifies a telemetry event.
type Kind uint8

// Event kinds, grouped by the layer that emits them.
const (
	// KindGCPhaseStart and KindGCPhaseEnd bracket one collection phase
	// (young, full, concurrent, mixed, degenerate). The end event carries
	// the phase's STW wall time (DurNS), its GC CPU (CPUNS) and the bytes
	// reclaimed (Value).
	KindGCPhaseStart Kind = iota
	KindGCPhaseEnd
	// KindGCPause is one stop-the-world interval (DurNS its wall time). A
	// concurrent cycle pauses twice (initial + final) but logs one phase-end
	// event, so pause events — not phase events — are what sum to the run's
	// reported STW time.
	KindGCPause
	// KindPacerStall is one allocation throttled by a concurrent collector's
	// pacer; DurNS is the stall length.
	KindPacerStall
	// KindDegenerateGC marks a concurrent cycle losing the race to the
	// application and falling back to a stop-the-world full collection.
	KindDegenerateGC
	// KindOOM marks the collector exhausting every option for an allocation.
	KindOOM
	// KindQuiescent is a scheduler quiescent point: no runnable threads and
	// no pending timers. DurNS is the virtual time advanced since the
	// previous quiescent point, Value the engine transitions processed, and
	// Aux the timers fired.
	KindQuiescent
	// KindJobStart and KindJobFinish bracket one experiment-engine job
	// (simulator invocation). The finish event carries whole-run wall
	// (DurNS) and task-clock (CPUNS) totals; Err is set if the job failed.
	KindJobStart
	KindJobFinish
	// KindCacheHit and KindCacheMiss record result-cache accounting for a
	// job key: a hit satisfies the job without simulation, a miss sends it
	// to the worker pool.
	KindCacheHit
	KindCacheMiss
	// KindMinHeap records a completed minimum-heap measurement; Value is the
	// measured bound in MB.
	KindMinHeap
	// KindSample is one continuous-sampling tick (internal/obs/sample): a
	// fixed-virtual-interval reading of heap occupancy, live-set estimate,
	// CPU utilization split and pacer-throttle fraction, carried in the
	// dedicated sampling fields.
	KindSample
	// KindRunEnd terminates a telemetry stream: the JSONL sink writes it on
	// Close, so a decoded stream without one is crash-truncated rather than
	// merely short. Value carries the number of events recorded before it.
	KindRunEnd
	// KindSchedWorker is one pool worker's lifetime scheduling summary,
	// emitted by the experiment engine when it closes: the worker's
	// busy/steal/park wall-time split, per-lane task counts, steal count
	// and deque high-water mark, carried in the dedicated scheduler
	// fields. Value is the worker index.
	KindSchedWorker
	// KindFleetReplica is one replica's end-of-run serving summary in a
	// fleet simulation (internal/fleet): Value is the replica index, Aux its
	// completed request count, DurNS its p99 latency, CPUNS its task-clock
	// total, HeapUsed its peak heap occupancy.
	KindFleetReplica
	// KindFleetRetry is one timed-out request re-injected into the fleet:
	// TNS the retry's injection (= original completion) time, Value the
	// request ID, Aux its retry depth, DurNS the latency that breached the
	// timeout.
	KindFleetRetry
	// KindFleetReport is the fleet-level SLO summary, one per fleet run:
	// Value the replica count, Aux total completed requests, DurNS the fleet
	// p99 latency, CPUNS the fleet task-clock total, StallFrac the host CPU
	// pressure (task clock over host-core wall capacity).
	KindFleetReport
	// KindFleetRoute is one balancer decision: TNS the injection (arrival)
	// time, Value the request ID, Cycle the attempt number (0 = first try),
	// Replica the chosen replica, Phase the decision reason (round-robin,
	// least-outstanding, gc-aware, gc-aware-avoid, gc-aware-fallback), Aux
	// the number of mid-STW replicas the balancer routed around, InFlight the
	// chosen replica's outstanding count after the decision.
	KindFleetRoute
	// KindFleetRequest is one completed logical request with its exact blame
	// decomposition: TNS the completion time, Aux the first arrival time,
	// Value the request ID, Replica the replica that served the final
	// attempt, Cycle the attempt count (1 = no retries), DurNS the
	// end-to-end latency, and QueueNS + GCNS + ServiceNS + RetryNS the blame
	// split, which sums exactly to DurNS. GCPauses counts the distinct STW
	// pauses the final attempt overlapped.
	KindFleetRequest
	// KindFleetWindow is one per-replica sliding-window fleet sample: TNS
	// the window end, DurNS the window length, Replica the replica, Value
	// the completions inside the window, Aux the SLO violations among them,
	// InFlight the replica's in-flight count at the window end, Goodput the
	// SLO-meeting completions per second, BurnRate the window's SLO burn
	// rate (violation fraction over the error budget; 1.0 = burning exactly
	// the budget).
	KindFleetWindow

	// KindUnknown is the sentinel lenient decoders assign to event kinds
	// written by a newer schema than this binary understands. It is never
	// recorded; DecodeStream counts and skips these (StreamInfo.Unknown).
	KindUnknown Kind = 255
)

var kindNames = [...]string{
	KindGCPhaseStart: "gc-phase-start",
	KindGCPhaseEnd:   "gc-phase-end",
	KindGCPause:      "gc-pause",
	KindPacerStall:   "pacer-stall",
	KindDegenerateGC: "degenerate-gc",
	KindOOM:          "oom",
	KindQuiescent:    "quiescent",
	KindJobStart:     "job-start",
	KindJobFinish:    "job-finish",
	KindCacheHit:     "cache-hit",
	KindCacheMiss:    "cache-miss",
	KindMinHeap:      "minheap",
	KindSample:       "sample",
	KindRunEnd:       "run_end",
	KindSchedWorker:  "sched-worker",
	KindFleetReplica: "fleet-replica",
	KindFleetRetry:   "fleet-retry",
	KindFleetReport:  "fleet-report",
	KindFleetRoute:   "fleet-route",
	KindFleetRequest: "fleet-request",
	KindFleetWindow:  "fleet-window",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	if k == KindUnknown {
		return "unknown"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a kind name as written to JSONL streams.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// MarshalText renders the kind by name, so JSONL streams are self-describing.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind by name. Unlike ParseKind it is lenient: a
// name this binary does not know (a stream written by a newer schema) decodes
// as KindUnknown instead of failing, so old readers skip new event kinds
// rather than rejecting the whole stream (DecodeStream counts them).
func (k *Kind) UnmarshalText(b []byte) error {
	kk, err := ParseKind(string(b))
	if err != nil {
		*k = KindUnknown
		return nil
	}
	*k = kk
	return nil
}

// Event is one telemetry record. It is a flat value struct so constructing
// one on an enabled path allocates nothing; unused fields marshal away.
type Event struct {
	Kind Kind `json:"kind"`
	// Seq is the event's position in its stream, assigned by the JSONL sink
	// (1, 2, 3, …). Decoders use it to surface dropped or reordered events
	// (DecodeStream); zero means the event never passed through a
	// seq-assigning sink.
	Seq int64 `json:"seq,omitempty"`
	// TNS is the event's timestamp in nanoseconds. Events emitted from
	// inside a simulation carry virtual time; engine-level job events carry
	// host wall-clock time (the two layers are never compared).
	TNS int64 `json:"t_ns"`
	// Run identifies the invocation the event belongs to — the engine job
	// key when the run executes as an engine job. Streams from concurrent
	// runs interleave; Run is what obsreport groups by.
	Run       string `json:"run,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Collector string `json:"collector,omitempty"`
	// Phase names the GC phase for phase events (young, full, concurrent,
	// mixed, degenerate).
	Phase string `json:"phase,omitempty"`
	// DurNS is the event's duration: STW wall time for gc-phase-end, stall
	// length for pacer-stall, whole-run wall for job-finish.
	DurNS float64 `json:"dur_ns,omitempty"`
	// CPUNS is GC CPU for gc-phase-end, whole-run task clock for job-finish.
	CPUNS float64 `json:"cpu_ns,omitempty"`
	// Value and Aux carry kind-specific magnitudes (bytes reclaimed,
	// transition counts, measured heap MB).
	Value float64 `json:"value,omitempty"`
	Aux   float64 `json:"aux,omitempty"`
	// Cycle is the collection the event belongs to: collectors assign every
	// collection (young, full, concurrent cycle) a per-run ID, stamped on
	// its phase-start/phase-end and gc-pause events. The span builder uses
	// it to nest pauses inside their cycle.
	Cycle int64 `json:"cycle,omitempty"`
	// Cause is the ID of the cycle that *caused* this event without owning
	// it: the concurrent cycle whose pacer stalled an allocation
	// (pacer-stall), or the cancelled cycle behind a degeneration.
	Cause int64 `json:"cause,omitempty"`
	// Sampling fields (KindSample). HeapUsed and LiveEst are bytes at the
	// tick; MutFrac and GCFrac split machine CPU capacity over the interval
	// since the previous emitted sample (idle is the remainder); StallFrac
	// is pacer-stall wall time per wall time over the same interval (can
	// exceed 1 when several mutators stall concurrently).
	HeapUsed  float64 `json:"heap_used,omitempty"`
	LiveEst   float64 `json:"live_est,omitempty"`
	MutFrac   float64 `json:"mut_frac,omitempty"`
	GCFrac    float64 `json:"gc_frac,omitempty"`
	StallFrac float64 `json:"stall_frac,omitempty"`
	// Scheduler fields (KindSchedWorker). BusyNS/StealNS/ParkNS split one
	// worker's wall time into executing tasks, scanning deques and blocked
	// on the parking condvar; AnchorTasks/GridTasks count tasks executed
	// per priority lane; Steals counts tasks taken from peers; QueueMax is
	// the worker's deque high-water depth.
	BusyNS      float64 `json:"busy_ns,omitempty"`
	StealNS     float64 `json:"steal_ns,omitempty"`
	ParkNS      float64 `json:"park_ns,omitempty"`
	AnchorTasks float64 `json:"anchor_tasks,omitempty"`
	GridTasks   float64 `json:"grid_tasks,omitempty"`
	Steals      float64 `json:"steals,omitempty"`
	QueueMax    float64 `json:"queue_max,omitempty"`
	// Replica identifies which fleet replica the event belongs to, stored
	// 1-based so replica 0 survives omitempty; zero means "not a fleet
	// replica event". Stamped by WithReplica on everything a replica's own
	// engine emits (gc-pause, sample, …) and set directly on fleet-route /
	// fleet-request / fleet-window events. The span builder partitions by it
	// so per-replica cycle IDs (each collector counts 1, 2, 3, …) never
	// collide across a merged fleet stream.
	Replica int `json:"replica,omitempty"`
	// Blame fields (KindFleetRequest): the exact integer decomposition of
	// the request's end-to-end latency. QueueNS is time between the final
	// attempt's arrival and its dispatch to a worker, net of STW pauses;
	// GCNS is the STW pause wall time overlapping the final attempt; ServiceNS
	// is dispatch-to-completion net of pauses (mutator work plus pacer
	// stalls); RetryNS is everything before the final attempt's arrival
	// (earlier attempts and timeout waits). The invariant
	// QueueNS+GCNS+ServiceNS+RetryNS == DurNS holds exactly, in int64
	// arithmetic, for every completed request.
	QueueNS   int64 `json:"queue_ns,omitempty"`
	GCNS      int64 `json:"gc_ns,omitempty"`
	ServiceNS int64 `json:"service_ns,omitempty"`
	RetryNS   int64 `json:"retry_ns,omitempty"`
	// GCPauses counts the distinct STW pauses overlapping the final attempt.
	GCPauses int64 `json:"gc_pauses,omitempty"`
	// Windowed fleet fields (KindFleetWindow, and InFlight on
	// KindFleetRoute): instantaneous in-flight requests, SLO-meeting
	// completions per second, and SLO budget burn rate over the window.
	InFlight int64   `json:"in_flight,omitempty"`
	Goodput  float64 `json:"goodput,omitempty"`
	BurnRate float64 `json:"burn_rate,omitempty"`
	// Err is the failure message on job-finish of a failed job, or "oom".
	Err string `json:"err,omitempty"`
}

// Recorder receives telemetry. Implementations must be safe for concurrent
// use: events arrive from every worker of an experiment pool at once.
type Recorder interface {
	// Enabled reports whether Record does anything; callers use it to skip
	// event construction entirely on hot paths.
	Enabled() bool
	// Record consumes one event.
	Record(Event)
}

// nop is the disabled recorder.
type nop struct{}

func (nop) Enabled() bool { return false }
func (nop) Record(Event)  {}

// Nop is the no-op Recorder: Enabled is false and Record does nothing. Use
// it instead of a nil Recorder so call sites never nil-check.
var Nop Recorder = nop{}

// Or returns r, or Nop when r is nil — the standard defaulting for optional
// Recorder fields.
func Or(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// runStamp wraps a Recorder, stamping run identity onto every event that
// does not already carry one. The engine wraps its recorder per job so
// events from concurrently executing invocations stay attributable.
type runStamp struct {
	r         Recorder
	run       string
	benchmark string
	collector string
}

// WithRun returns a Recorder that stamps run, benchmark and collector onto
// events recorded through it (without overwriting fields already set).
// Stamping a disabled recorder returns it unchanged.
func WithRun(r Recorder, run, benchmark, collector string) Recorder {
	r = Or(r)
	if !r.Enabled() {
		return r
	}
	return &runStamp{r: r, run: run, benchmark: benchmark, collector: collector}
}

func (s *runStamp) Enabled() bool { return true }

func (s *runStamp) Record(e Event) {
	if e.Run == "" {
		e.Run = s.run
	}
	if e.Benchmark == "" {
		e.Benchmark = s.benchmark
	}
	if e.Collector == "" {
		e.Collector = s.collector
	}
	s.r.Record(e)
}

// replicaStamp wraps a Recorder, stamping a fleet replica index onto every
// event that does not already carry one. The fleet driver wraps the shared
// recorder once per replica, so GC and sampling telemetry emitted from inside
// a replica's engine stays attributable after the streams merge.
type replicaStamp struct {
	r       Recorder
	replica int // 1-based, as stored on Event.Replica
}

// WithReplica returns a Recorder that stamps fleet replica idx (0-based, as
// the fleet numbers replicas) onto events recorded through it. Stamping a
// disabled recorder returns it unchanged.
func WithReplica(r Recorder, idx int) Recorder {
	r = Or(r)
	if !r.Enabled() {
		return r
	}
	return &replicaStamp{r: r, replica: idx + 1}
}

func (s *replicaStamp) Enabled() bool { return true }

func (s *replicaStamp) Record(e Event) {
	if e.Replica == 0 {
		e.Replica = s.replica
	}
	s.r.Record(e)
}

// Buffer is a Recorder that captures events in memory, in arrival order. It
// is safe for concurrent use; commands use it to keep a run's telemetry for
// post-run rendering (fleet timelines) alongside — or instead of — a JSONL
// file.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// Enabled always reports true.
func (b *Buffer) Enabled() bool { return true }

// Record appends the event.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// RecordBatch appends a batch under one lock acquisition.
func (b *Buffer) RecordBatch(evs []Event) {
	b.mu.Lock()
	b.events = append(b.events, evs...)
	b.mu.Unlock()
}

// Events returns the captured events. The slice is shared — callers must not
// record concurrently with using it.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.events
}

// Multi fans every event out to each of rs (disabled ones are dropped). It
// returns Nop when none are enabled, so the Enabled guard stays accurate.
func Multi(rs ...Recorder) Recorder {
	var live []Recorder
	for _, r := range rs {
		if r != nil && r.Enabled() {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Recorder

func (m multi) Enabled() bool { return true }
func (m multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

func (m multi) RecordBatch(evs []Event) {
	for _, r := range m {
		RecordAll(r, evs)
	}
}

// BatchRecorder is implemented by sinks that can consume a whole batch of
// events under one lock acquisition (JSONL does). Per-job buffers flush
// through it at job boundaries, so concurrently executing invocations
// contend the shared sink once per job instead of once per event.
type BatchRecorder interface {
	Recorder
	RecordBatch([]Event)
}

// RecordAll delivers evs to r, using its batch path when it has one and
// falling back to per-event Record otherwise.
func RecordAll(r Recorder, evs []Event) {
	if r == nil || !r.Enabled() || len(evs) == 0 {
		return
	}
	if br, ok := r.(BatchRecorder); ok {
		br.RecordBatch(evs)
		return
	}
	for _, e := range evs {
		r.Record(e)
	}
}
