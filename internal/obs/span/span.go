// Package span folds a flat telemetry event stream back into the causal
// structure the collector had when it emitted it: GC cycles become spans
// that own their stop-the-world pauses as children, pacer stalls hang off
// the concurrent cycle whose pacer throttled them, and scheduler activity
// intervals sit on their own track. The result is the intermediate form the
// trace exporters (internal/obs/traceview) render — Chrome trace-event JSON
// for Perfetto, or a plain-text timeline.
//
// # Span model
//
// Events carry two linkage fields. Cycle is ownership: every collection
// (young, full, concurrent) gets a per-run ID stamped on its
// phase-start/phase-end pair and on each gc-pause taken on its behalf.
// Cause is blame without ownership: a pacer-stall's Cause names the
// concurrent cycle whose pacer throttled the allocation, and a degenerate
// collection's Cause names the cancelled cycle it replaced. Build turns
// ownership into parent/child nesting and keeps blame as a cross-link
// (Span.Cause), because a blamed span may already be closed when its victim
// starts — nesting it would corrupt the timeline.
//
// Timestamp conventions follow the emitters: gc-pause events are stamped at
// pause *end* with DurNS the wall time (span [TNS−DurNS, TNS]); pacer-stall
// events are stamped at stall *start* (span [TNS, TNS+DurNS]); quiescent
// events close an activity interval (span [TNS−DurNS, TNS]).
//
// Truncated streams degrade instead of failing: a phase-start with no
// phase-end becomes an Open span clipped to the run's last timestamp, and a
// phase-end with no start is reconstructed from its own duration.
package span

import (
	"sort"

	"chopin/internal/obs"
)

// Track names. Each track renders as one row (Chrome: one thread) per run.
const (
	// TrackGC holds collection-cycle spans (young, full, concurrent, mixed).
	TrackGC = "gc"
	// TrackSTW holds stop-the-world pause spans, children of their cycle.
	TrackSTW = "stw"
	// TrackMutator holds pacer-stall spans, children of the throttling cycle.
	TrackMutator = "mutator"
	// TrackSched holds scheduler activity intervals between quiescent points.
	TrackSched = "sched"
)

// Span is one closed (or clipped) interval on a track.
type Span struct {
	// ID is unique within the tree (1, 2, …, in event order).
	ID int64
	// Parent is the owning span's ID, zero for roots. Pause and stall spans
	// parent to their cycle span; cycle and sched spans are roots.
	Parent int64
	Track  string
	Name   string
	// Start and End are virtual nanoseconds. End >= Start always.
	Start int64
	End   int64
	// Cycle is the collection ID the span belongs to (zero on sched spans).
	Cycle int64
	// Cause is a cross-link to the blamed collection: the cancelled cycle
	// behind a degenerate collection, or the throttling cycle of a stall.
	Cause int64
	// CPUNS and Value carry the closing event's GC CPU and bytes reclaimed
	// (cycle spans only).
	CPUNS float64
	Value float64
	// Open marks a span whose end event never arrived (truncated stream);
	// End is then clipped to the run's last observed timestamp.
	Open bool
}

// DurNS returns the span's duration in nanoseconds.
func (s Span) DurNS() int64 { return s.End - s.Start }

// Mark is an instant event worth flagging on the timeline.
type Mark struct {
	TNS  int64
	Name string // "degenerate-gc", "oom"
	// Cause is the blamed collection ID, zero if unknown.
	Cause int64
}

// Tree is the span forest of one run, plus its instants and sampled series.
type Tree struct {
	Run       string
	Benchmark string
	Collector string
	// Replica is the fleet replica the tree belongs to, 1-based as stamped
	// on events (internal/fleet); zero for ordinary single-process runs.
	// Fleet streams carry one tree per (run, replica) because each replica's
	// collector numbers its cycles independently — merging them would alias
	// cycle IDs.
	Replica int
	// Spans is sorted by Start, then ID. Parent references are by ID.
	Spans []Span
	Marks []Mark
	// Samples are the run's KindSample events in stream order.
	Samples []obs.Event
	// EndNS is the largest virtual timestamp observed in the run.
	EndNS int64
}

// SumTrack returns the total duration of the tree's spans on one track.
// Summing TrackSTW reproduces the run's trace.Log TotalPauseNS; summing
// TrackMutator reproduces its StallNS (locked by tests).
func (t *Tree) SumTrack(track string) float64 {
	var sum float64
	for _, s := range t.Spans {
		if s.Track == track {
			sum += float64(s.DurNS())
		}
	}
	return sum
}

// Span returns the span with the given ID, or nil.
func (t *Tree) Span(id int64) *Span {
	for i := range t.Spans {
		if t.Spans[i].ID == id {
			return &t.Spans[i]
		}
	}
	return nil
}

// builder accumulates one run's tree while streaming events.
type builder struct {
	tree   Tree
	nextID int64
	// openCycle maps a collection ID to the index (in tree.Spans) of its
	// still-open cycle span; cycleSpan keeps the mapping after close so
	// late pauses and stalls can still resolve their parent.
	openCycle map[int64]int
	cycleSpan map[int64]int64 // collection ID -> span ID
}

func newBuilder(run string, replica int) *builder {
	return &builder{
		tree:      Tree{Run: run, Replica: replica},
		openCycle: map[int64]int{},
		cycleSpan: map[int64]int64{},
	}
}

func (b *builder) add(s Span) int {
	b.nextID++
	s.ID = b.nextID
	b.tree.Spans = append(b.tree.Spans, s)
	return len(b.tree.Spans) - 1
}

func (b *builder) see(tns int64) {
	if tns > b.tree.EndNS {
		b.tree.EndNS = tns
	}
}

func (b *builder) event(e obs.Event) {
	if b.tree.Benchmark == "" {
		b.tree.Benchmark = e.Benchmark
	}
	if b.tree.Collector == "" {
		b.tree.Collector = e.Collector
	}
	switch e.Kind {
	case obs.KindGCPhaseStart:
		b.see(e.TNS)
		i := b.add(Span{
			Track: TrackGC, Name: e.Phase,
			Start: e.TNS, End: e.TNS,
			Cycle: e.Cycle, Cause: e.Cause, Open: true,
		})
		b.openCycle[e.Cycle] = i
		b.cycleSpan[e.Cycle] = b.tree.Spans[i].ID
	case obs.KindGCPhaseEnd:
		b.see(e.TNS)
		i, ok := b.openCycle[e.Cycle]
		if !ok {
			// Start event lost (stream began mid-run): reconstruct from the
			// pause duration, the only extent the end event knows.
			i = b.add(Span{
				Track: TrackGC, Name: e.Phase,
				Start: e.TNS - int64(e.DurNS), Cycle: e.Cycle, Cause: e.Cause,
			})
			b.cycleSpan[e.Cycle] = b.tree.Spans[i].ID
		}
		delete(b.openCycle, e.Cycle)
		s := &b.tree.Spans[i]
		s.End = e.TNS
		s.Open = false
		s.CPUNS = e.CPUNS
		s.Value = e.Value
		if e.Phase != "" {
			// The closing kind wins: a G1 cycle starts "concurrent" and
			// ends "mixed".
			s.Name = e.Phase
		}
	case obs.KindGCPause:
		b.see(e.TNS)
		b.add(Span{
			Track: TrackSTW, Name: "pause", Parent: b.cycleSpan[e.Cycle],
			Start: e.TNS - int64(e.DurNS), End: e.TNS, Cycle: e.Cycle,
		})
	case obs.KindPacerStall:
		end := e.TNS + int64(e.DurNS)
		b.see(end)
		b.add(Span{
			Track: TrackMutator, Name: "stall", Parent: b.cycleSpan[e.Cause],
			Start: e.TNS, End: end, Cycle: e.Cause, Cause: e.Cause,
		})
	case obs.KindQuiescent:
		b.see(e.TNS)
		b.add(Span{
			Track: TrackSched, Name: "active",
			Start: e.TNS - int64(e.DurNS), End: e.TNS, Value: e.Value,
		})
	case obs.KindDegenerateGC:
		b.see(e.TNS)
		b.tree.Marks = append(b.tree.Marks, Mark{TNS: e.TNS, Name: "degenerate-gc", Cause: e.Cause})
	case obs.KindOOM:
		b.see(e.TNS)
		b.tree.Marks = append(b.tree.Marks, Mark{TNS: e.TNS, Name: "oom"})
	case obs.KindSample:
		b.see(e.TNS)
		b.tree.Samples = append(b.tree.Samples, e)
	}
	// Job, cache and run_end events carry host time or stream metadata, not
	// virtual-run structure; the aggregate reporter owns them.
}

func (b *builder) finish() *Tree {
	// Clip spans whose end never arrived to the run's horizon.
	for _, i := range sortedValues(b.openCycle) {
		s := &b.tree.Spans[i]
		if b.tree.EndNS > s.End {
			s.End = b.tree.EndNS
		}
	}
	sort.SliceStable(b.tree.Spans, func(i, j int) bool {
		a, c := b.tree.Spans[i], b.tree.Spans[j]
		if a.Start != c.Start {
			return a.Start < c.Start
		}
		return a.ID < c.ID
	})
	sort.SliceStable(b.tree.Marks, func(i, j int) bool {
		return b.tree.Marks[i].TNS < b.tree.Marks[j].TNS
	})
	return &b.tree
}

func sortedValues(m map[int64]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Build folds a telemetry stream into one span tree per run — per (run,
// replica) for fleet streams, whose per-replica collectors each number their
// cycles from 1 — in order of first appearance. Events from different runs
// may interleave arbitrarily (concurrent engine jobs share one sink); events
// within a run must be in emission order, which the seq-stamped JSONL stream
// guarantees.
func Build(events []obs.Event) []*Tree {
	type groupKey struct {
		run     string
		replica int
	}
	builders := map[groupKey]*builder{}
	var order []groupKey
	for _, e := range events {
		k := groupKey{e.Run, e.Replica}
		bb := builders[k]
		if bb == nil {
			bb = newBuilder(e.Run, e.Replica)
			builders[k] = bb
			order = append(order, k)
		}
		bb.event(e)
	}
	trees := make([]*Tree, 0, len(order))
	for _, k := range order {
		t := builders[k].finish()
		// A tree with no spans, marks or samples (e.g. the pseudo-run of
		// unstamped engine events) would render as an empty process.
		if len(t.Spans) > 0 || len(t.Marks) > 0 || len(t.Samples) > 0 {
			trees = append(trees, t)
		}
	}
	return trees
}
