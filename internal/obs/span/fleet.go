package span

import (
	"sort"

	"chopin/internal/obs"
)

// Fleet trace assembly: folding a merged multi-replica telemetry stream
// (internal/fleet with an enabled recorder) back into one cross-replica
// trace per fleet run. Each replica contributes its own span tree — GC
// cycles, STW pauses, pacer stalls, samples, emitted from inside its engine
// and stamped with its replica index — and the fleet driver contributes the
// request layer: balancer routes, per-request blame decompositions, retries
// and per-replica metric windows. The result is what the fleet renderers
// (traceview.WriteFleetChrome / WriteFleetTimeline) and the obsreport -fleet
// tables consume.

// FleetRequest is one completed logical request with its exact blame split
// (decoded from a KindFleetRequest event). QueueNS+GCNS+ServiceNS+RetryNS
// equals E2ENS exactly — the tracer's int64 invariant survives the JSON
// round-trip because every value is far below 2^53.
type FleetRequest struct {
	ID       int64
	Replica  int // 0-based
	Start    int64
	End      int64
	E2ENS    int64
	Attempts int
	QueueNS  int64
	GCNS     int64
	ServNS   int64
	RetryNS  int64
	GCPauses int64
}

// FleetRoute is one balancer decision.
type FleetRoute struct {
	TNS      int64
	ID       int64
	Replica  int // 0-based
	Reason   string
	Avoided  int
	Attempt  int
	InFlight int64
}

// FleetRetry is one timed-out attempt's re-injection.
type FleetRetry struct {
	TNS     int64
	ID      int64
	Replica int // 0-based; the replica whose slow attempt triggered it
	Depth   int
	LatNS   float64
}

// FleetWindow is one per-replica metric window.
type FleetWindow struct {
	EndNS       int64
	DurNS       int64
	Replica     int // 0-based
	Completions int64
	Violations  int64
	InFlight    int64
	Goodput     float64
	BurnRate    float64
}

// ReplicaTrack is one replica's view of a fleet run: its own span tree plus
// its metric windows.
type ReplicaTrack struct {
	Index   int // 0-based
	Tree    *Tree
	Windows []FleetWindow
}

// FleetTrace is one fleet run's assembled cross-replica trace.
type FleetTrace struct {
	Run       string
	Benchmark string
	Collector string
	Replicas  []*ReplicaTrack
	Requests  []FleetRequest
	Routes    []FleetRoute
	Retries   []FleetRetry
	// EndNS is the largest virtual timestamp observed across every layer.
	EndNS int64
}

// fleetAsm accumulates one run's fleet trace while streaming events.
type fleetAsm struct {
	ft      FleetTrace
	reps    map[int]*ReplicaTrack // by 0-based index
	sub     map[int]*builder      // per-replica span builders
	isFleet bool                  // run carries fleet-layer events
	// benchFleet marks that Benchmark came from a fleet-layer event, which
	// carries the workload name; engine job events carry the literal job
	// kind ("fleet") and must not win.
	benchFleet bool
}

// ident captures run identity from a fleet-layer event, overriding whatever
// an earlier engine-level event supplied.
func (a *fleetAsm) ident(e obs.Event) {
	a.isFleet = true
	a.see(e.TNS)
	if !a.benchFleet && e.Benchmark != "" {
		a.ft.Benchmark = e.Benchmark
		a.benchFleet = true
	}
}

// replica returns (creating on demand) the track for 0-based index i.
func (a *fleetAsm) replica(run string, i int) *ReplicaTrack {
	rt := a.reps[i]
	if rt == nil {
		rt = &ReplicaTrack{Index: i}
		a.reps[i] = rt
		a.sub[i] = newBuilder(run, i+1)
	}
	return rt
}

func (a *fleetAsm) see(tns int64) {
	if tns > a.ft.EndNS {
		a.ft.EndNS = tns
	}
}

// BuildFleet folds a telemetry stream into one FleetTrace per fleet run, in
// order of first appearance. Runs with no fleet-layer events (ordinary
// single-process invocations) are skipped — render those with Build. Like
// Build, events from different runs may interleave; within a run they must
// be in emission order.
func BuildFleet(events []obs.Event) []*FleetTrace {
	asms := map[string]*fleetAsm{}
	var order []string
	for _, e := range events {
		a := asms[e.Run]
		if a == nil {
			a = &fleetAsm{
				ft:   FleetTrace{Run: e.Run},
				reps: map[int]*ReplicaTrack{},
				sub:  map[int]*builder{},
			}
			asms[e.Run] = a
			order = append(order, e.Run)
		}
		a.event(e)
	}
	var out []*FleetTrace
	for _, run := range order {
		a := asms[run]
		if !a.isFleet {
			continue
		}
		idxs := make([]int, 0, len(a.reps))
		for i := range a.reps {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			rt := a.reps[i]
			rt.Tree = a.sub[i].finish()
			if rt.Tree.EndNS > a.ft.EndNS {
				a.ft.EndNS = rt.Tree.EndNS
			}
			a.ft.Replicas = append(a.ft.Replicas, rt)
		}
		out = append(out, &a.ft)
	}
	return out
}

func (a *fleetAsm) event(e obs.Event) {
	if a.ft.Benchmark == "" {
		a.ft.Benchmark = e.Benchmark
	}
	if a.ft.Collector == "" && e.Collector != "" {
		a.ft.Collector = e.Collector
	}
	switch e.Kind {
	case obs.KindFleetRoute:
		a.ident(e)
		a.replica(a.ft.Run, e.Replica-1)
		a.ft.Routes = append(a.ft.Routes, FleetRoute{
			TNS: e.TNS, ID: int64(e.Value), Replica: e.Replica - 1,
			Reason: e.Phase, Avoided: int(e.Aux), Attempt: int(e.Cycle),
			InFlight: e.InFlight,
		})
	case obs.KindFleetRequest:
		a.ident(e)
		a.replica(a.ft.Run, e.Replica-1)
		a.ft.Requests = append(a.ft.Requests, FleetRequest{
			ID: int64(e.Value), Replica: e.Replica - 1,
			Start: int64(e.Aux), End: e.TNS, E2ENS: int64(e.DurNS),
			Attempts: int(e.Cycle),
			QueueNS:  e.QueueNS, GCNS: e.GCNS, ServNS: e.ServiceNS,
			RetryNS: e.RetryNS, GCPauses: e.GCPauses,
		})
	case obs.KindFleetRetry:
		a.ident(e)
		rep := e.Replica - 1
		if e.Replica == 0 {
			rep = -1 // pre-PR-9 streams carried no replica on retries
		}
		a.ft.Retries = append(a.ft.Retries, FleetRetry{
			TNS: e.TNS, ID: int64(e.Value), Replica: rep,
			Depth: int(e.Aux), LatNS: e.DurNS,
		})
	case obs.KindFleetWindow:
		a.ident(e)
		rt := a.replica(a.ft.Run, e.Replica-1)
		rt.Windows = append(rt.Windows, FleetWindow{
			EndNS: e.TNS, DurNS: int64(e.DurNS), Replica: e.Replica - 1,
			Completions: int64(e.Value), Violations: int64(e.Aux),
			InFlight: e.InFlight, Goodput: e.Goodput, BurnRate: e.BurnRate,
		})
	case obs.KindFleetReplica, obs.KindFleetReport:
		a.ident(e)
	default:
		// Replica-stamped engine telemetry feeds that replica's span tree;
		// unstamped events (engine job bookkeeping) carry no fleet structure.
		if e.Replica > 0 {
			a.sub[a.replica(a.ft.Run, e.Replica-1).Index].event(e)
		}
	}
}

// TopSlowest returns the k slowest requests by end-to-end latency,
// descending, ties broken by request ID for determinism.
func TopSlowest(reqs []FleetRequest, k int) []FleetRequest {
	out := append([]FleetRequest(nil), reqs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].E2ENS != out[j].E2ENS {
			return out[i].E2ENS > out[j].E2ENS
		}
		return out[i].ID < out[j].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// ReplicaCorr is one row of the pause/traffic correlation table: how much
// STW a replica generated, how much traffic the balancer sent it, and how
// much request latency its pauses were blamed for.
type ReplicaCorr struct {
	Index    int
	Routes   int64 // injections the balancer sent here
	Requests int64 // logical requests that finished here
	Retries  int64 // retries triggered by slow attempts served here
	// PauseNS and Pauses summarize the replica's own STW record (its span
	// tree); BlamedGCNS is the GC time requests actually sat through —
	// pause wall weighted by collisions, the paper's "attributed" view.
	PauseNS    int64
	Pauses     int64
	BlamedGCNS int64
	QueueNS    int64 // total queue wait blamed to requests finishing here
	MeanE2ENS  float64
}

// CorrelateReplicas derives the per-replica pause/traffic correlation table
// from an assembled fleet trace.
func CorrelateReplicas(ft *FleetTrace) []ReplicaCorr {
	rows := make([]ReplicaCorr, len(ft.Replicas))
	byIdx := map[int]*ReplicaCorr{}
	for i, rt := range ft.Replicas {
		rows[i].Index = rt.Index
		byIdx[rt.Index] = &rows[i]
		for _, s := range rt.Tree.Spans {
			if s.Track == TrackSTW {
				rows[i].Pauses++
				rows[i].PauseNS += s.DurNS()
			}
		}
	}
	for _, r := range ft.Routes {
		if c := byIdx[r.Replica]; c != nil {
			c.Routes++
		}
	}
	for _, r := range ft.Retries {
		if c := byIdx[r.Replica]; c != nil {
			c.Retries++
		}
	}
	for _, q := range ft.Requests {
		c := byIdx[q.Replica]
		if c == nil {
			continue
		}
		c.Requests++
		c.BlamedGCNS += q.GCNS
		c.QueueNS += q.QueueNS
		c.MeanE2ENS += float64(q.E2ENS)
	}
	for i := range rows {
		if rows[i].Requests > 0 {
			rows[i].MeanE2ENS /= float64(rows[i].Requests)
		}
	}
	return rows
}

// RetryStats summarizes a run's retry behaviour for storm forensics.
type RetryStats struct {
	Total    int64
	Unique   int64 // distinct request IDs that retried at least once
	MaxDepth int
	// PeakWindowStart/PeakCount locate the worst burst: the metric-window
	// bucket containing the most re-injections — where the storm peaked.
	PeakWindowStart int64
	PeakCount       int64
	WindowNS        int64
}

// SummarizeRetries buckets a run's retries on the metric-window grid (width
// taken from the trace's windows, 10ms when absent) and reports the storm
// shape.
func SummarizeRetries(ft *FleetTrace) RetryStats {
	st := RetryStats{WindowNS: 10_000_000}
	for _, rt := range ft.Replicas {
		if len(rt.Windows) > 0 && rt.Windows[0].DurNS > 0 {
			st.WindowNS = rt.Windows[0].DurNS
			break
		}
	}
	seen := map[int64]bool{}
	buckets := map[int64]int64{}
	for _, r := range ft.Retries {
		st.Total++
		if !seen[r.ID] {
			seen[r.ID] = true
			st.Unique++
		}
		if r.Depth > st.MaxDepth {
			st.MaxDepth = r.Depth
		}
		buckets[r.TNS/st.WindowNS]++
	}
	for b, n := range buckets {
		if n > st.PeakCount || (n == st.PeakCount && b*st.WindowNS < st.PeakWindowStart) {
			st.PeakCount = n
			st.PeakWindowStart = b * st.WindowNS
		}
	}
	return st
}

// BlameTotals sums the blame components across requests. The grand total
// equals the summed end-to-end latency exactly.
type BlameTotals struct {
	QueueNS, GCNS, ServNS, RetryNS, E2ENS int64
	Requests                              int64
}

// SumBlame aggregates the blame decomposition over a request set.
func SumBlame(reqs []FleetRequest) BlameTotals {
	var t BlameTotals
	for _, q := range reqs {
		t.QueueNS += q.QueueNS
		t.GCNS += q.GCNS
		t.ServNS += q.ServNS
		t.RetryNS += q.RetryNS
		t.E2ENS += q.E2ENS
		t.Requests++
	}
	return t
}
