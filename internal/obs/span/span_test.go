package span_test

import (
	"math"
	"sync"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/obs"
	"chopin/internal/obs/span"
	"chopin/internal/workload"
)

type sliceRecorder struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *sliceRecorder) Enabled() bool { return true }
func (r *sliceRecorder) Record(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// TestBuildSynthetic locks the folding rules on a hand-written stream: a
// concurrent cycle with a stall and two pauses, a degeneration, and an
// orphaned phase-end.
func TestBuildSynthetic(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindGCPhaseStart, TNS: 100, Run: "r", Phase: "concurrent", Cycle: 1},
		{Kind: obs.KindGCPause, TNS: 120, Run: "r", DurNS: 20, Cycle: 1},
		{Kind: obs.KindPacerStall, TNS: 150, Run: "r", DurNS: 30, Cause: 1},
		{Kind: obs.KindDegenerateGC, TNS: 200, Run: "r", Cause: 1},
		{Kind: obs.KindGCPhaseEnd, TNS: 200, Run: "r", Phase: "concurrent", Cycle: 1, CPUNS: 55},
		{Kind: obs.KindGCPhaseStart, TNS: 200, Run: "r", Phase: "degenerate", Cycle: 2, Cause: 1},
		{Kind: obs.KindGCPause, TNS: 260, Run: "r", DurNS: 60, Cycle: 2},
		{Kind: obs.KindGCPhaseEnd, TNS: 260, Run: "r", Phase: "degenerate", Cycle: 2, DurNS: 60, Value: 4096},
		// Orphaned end: its start was lost to truncation upstream.
		{Kind: obs.KindGCPhaseEnd, TNS: 400, Run: "r", Phase: "young", Cycle: 3, DurNS: 40},
		{Kind: obs.KindQuiescent, TNS: 500, Run: "r", DurNS: 500, Value: 12},
	}
	trees := span.Build(events)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tr := trees[0]
	if tr.Run != "r" || tr.EndNS != 500 {
		t.Fatalf("tree header wrong: run=%q end=%d", tr.Run, tr.EndNS)
	}

	byName := map[string][]span.Span{}
	for _, s := range tr.Spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	conc := byName["concurrent"]
	if len(conc) != 1 || conc[0].Start != 100 || conc[0].End != 200 || conc[0].CPUNS != 55 {
		t.Fatalf("concurrent span wrong: %+v", conc)
	}
	if conc[0].Open {
		t.Fatal("closed cycle marked Open")
	}
	deg := byName["degenerate"]
	if len(deg) != 1 || deg[0].Cause != 1 || deg[0].Value != 4096 {
		t.Fatalf("degenerate span wrong: %+v", deg)
	}
	if y := byName["young"]; len(y) != 1 || y[0].Start != 360 || y[0].End != 400 {
		t.Fatalf("orphaned phase-end not reconstructed from duration: %+v", y)
	}

	pauses := byName["pause"]
	if len(pauses) != 2 {
		t.Fatalf("got %d pause spans, want 2", len(pauses))
	}
	if pauses[0].Parent != conc[0].ID || pauses[0].Start != 100 || pauses[0].End != 120 {
		t.Fatalf("first pause not nested in concurrent cycle: %+v", pauses[0])
	}
	if pauses[1].Parent != deg[0].ID {
		t.Fatalf("second pause not nested in degenerate collection: %+v", pauses[1])
	}

	stalls := byName["stall"]
	if len(stalls) != 1 || stalls[0].Parent != conc[0].ID || stalls[0].Start != 150 || stalls[0].End != 180 {
		t.Fatalf("stall span wrong: %+v", stalls)
	}
	if len(tr.Marks) != 1 || tr.Marks[0].Name != "degenerate-gc" || tr.Marks[0].Cause != 1 {
		t.Fatalf("marks wrong: %+v", tr.Marks)
	}
	if act := byName["active"]; len(act) != 1 || act[0].Start != 0 || act[0].End != 500 {
		t.Fatalf("sched span wrong: %+v", act)
	}
}

// TestBuildClipsTruncatedStream checks a phase-start with no end becomes an
// Open span clipped to the run horizon instead of a zero-length artifact.
func TestBuildClipsTruncatedStream(t *testing.T) {
	trees := span.Build([]obs.Event{
		{Kind: obs.KindGCPhaseStart, TNS: 100, Run: "r", Phase: "concurrent", Cycle: 1},
		{Kind: obs.KindGCPause, TNS: 300, Run: "r", DurNS: 10, Cycle: 1},
	})
	s := trees[0].Spans[0]
	if !s.Open || s.Start != 100 || s.End != 300 {
		t.Fatalf("truncated cycle span = %+v, want Open [100,300]", s)
	}
}

// TestBuildGroupsInterleavedRuns checks events from concurrently executing
// jobs (one shared sink) separate cleanly by Run.
func TestBuildGroupsInterleavedRuns(t *testing.T) {
	trees := span.Build([]obs.Event{
		{Kind: obs.KindGCPhaseStart, TNS: 10, Run: "a", Phase: "young", Cycle: 1},
		{Kind: obs.KindGCPhaseStart, TNS: 10, Run: "b", Phase: "full", Cycle: 1},
		{Kind: obs.KindGCPhaseEnd, TNS: 20, Run: "a", Phase: "young", Cycle: 1},
		{Kind: obs.KindGCPhaseEnd, TNS: 30, Run: "b", Phase: "full", Cycle: 1},
	})
	if len(trees) != 2 || trees[0].Run != "a" || trees[1].Run != "b" {
		t.Fatalf("runs not separated: %+v", trees)
	}
	for _, tr := range trees {
		if len(tr.Spans) != 1 {
			t.Fatalf("run %s has %d spans, want 1", tr.Run, len(tr.Spans))
		}
	}
}

// checkWellFormed asserts the structural invariants every tree from a
// complete stream must satisfy.
func checkWellFormed(t *testing.T, tr *span.Tree) {
	t.Helper()
	ids := map[int64]span.Span{}
	for _, s := range tr.Spans {
		if _, dup := ids[s.ID]; dup {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		ids[s.ID] = s
		if s.End < s.Start {
			t.Fatalf("span %d ends before it starts: %+v", s.ID, s)
		}
		if s.Open {
			t.Fatalf("complete stream produced an Open span: %+v", s)
		}
		if s.End > tr.EndNS {
			t.Fatalf("span %d extends past the run horizon %d: %+v", s.ID, tr.EndNS, s)
		}
	}

	cycleByID := map[int64]span.Span{}
	for _, s := range tr.Spans {
		if s.Track == span.TrackGC {
			cycleByID[s.Cycle] = s
		}
	}

	var stw []span.Span
	for _, s := range tr.Spans {
		switch s.Track {
		case span.TrackSTW:
			// Every pause nests in exactly one collection span.
			if s.Parent == 0 {
				t.Fatalf("pause span %d has no owning cycle: %+v", s.ID, s)
			}
			p, ok := ids[s.Parent]
			if !ok {
				t.Fatalf("pause span %d parents missing span %d", s.ID, s.Parent)
			}
			if p.Track != span.TrackGC {
				t.Fatalf("pause span %d parents non-cycle span %+v", s.ID, p)
			}
			if s.Start < p.Start || s.End > p.End {
				t.Fatalf("pause span [%d,%d] escapes its cycle [%d,%d]",
					s.Start, s.End, p.Start, p.End)
			}
			stw = append(stw, s)
		case span.TrackMutator:
			// Every stall blames a cycle that was live when it began.
			cy, ok := cycleByID[s.Cause]
			if !ok {
				t.Fatalf("stall span %d blames unknown cycle %d", s.ID, s.Cause)
			}
			if s.Start < cy.Start || s.Start > cy.End {
				t.Fatalf("stall starting at %d blames cycle [%d,%d] that was not live",
					s.Start, cy.Start, cy.End)
			}
		}
	}
	// The world pauses once at a time: STW spans never overlap. Spans are
	// sorted by Start, so adjacent comparison suffices.
	for i := 1; i < len(stw); i++ {
		if stw[i].Start < stw[i-1].End {
			t.Fatalf("STW spans overlap: [%d,%d] then [%d,%d]",
				stw[i-1].Start, stw[i-1].End, stw[i].Start, stw[i].End)
		}
	}
}

// TestSpanTreeInvariantsAcrossSeeds is the property test: span trees built
// from 100+ seeded runs across collectors and heap pressures are always
// well-formed — pauses nest in exactly one cycle, STW spans never overlap,
// stalls blame a cycle live at stall start.
func TestSpanTreeInvariantsAcrossSeeds(t *testing.T) {
	d, err := workload.ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []gc.Kind{gc.Serial, gc.Parallel, gc.G1, gc.Shenandoah, gc.ZGC, gc.GenZGC}
	factors := []float64{1.8, 2.5, 4}
	runs := 0
	for _, kind := range kinds {
		for _, f := range factors {
			for seed := uint64(1); seed <= 6; seed++ {
				runs++
				rec := &sliceRecorder{}
				_, err := workload.Run(d, workload.RunConfig{
					HeapMB:    d.LiveMB * f,
					Collector: kind,
					Events:    250,
					Seed:      seed*977 + uint64(runs),
					Recorder:  rec,
				})
				if err != nil {
					// OOM at a tight heap is a legitimate outcome; its
					// partial stream must still fold cleanly.
					if _, ok := err.(*workload.ErrOutOfMemory); !ok {
						t.Fatalf("%v/%.1fx seed %d: %v", kind, f, seed, err)
					}
				}
				trees := span.Build(rec.events)
				if len(trees) > 1 {
					t.Fatalf("%v/%.1fx seed %d: %d trees from one run", kind, f, seed, len(trees))
				}
				for _, tr := range trees {
					checkWellFormed(t, tr)
				}
			}
		}
	}
	if runs < 100 {
		t.Fatalf("property test covered %d runs, want >= 100", runs)
	}
}

// TestSpanTotalsMatchLog is the acceptance lock: summing exported span
// durations reproduces the run's trace.Log totals — STW track to
// TotalPauseNS, mutator track to StallNS, cycle-span CPU to TotalGCCPUNS.
// This is the same Build path cmd/obsreport -trace-out exports through.
func TestSpanTotalsMatchLog(t *testing.T) {
	d, err := workload.ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	rec := &sliceRecorder{}
	res, err := workload.Run(d, workload.RunConfig{
		HeapMB:     d.LiveMB * 2.2,
		Collector:  gc.Shenandoah,
		Iterations: 2,
		Events:     400,
		Seed:       7,
		Recorder:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	trees := span.Build(rec.events)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tr := trees[0]
	if got, want := tr.SumTrack(span.TrackSTW), res.Log.TotalPauseNS(); !closeTo(got, want) {
		t.Errorf("STW span sum = %v, log TotalPauseNS = %v", got, want)
	}
	if got, want := tr.SumTrack(span.TrackMutator), res.Log.StallNS; !closeTo(got, want) {
		t.Errorf("stall span sum = %v, log StallNS = %v", got, want)
	}
	var cpu float64
	for _, s := range tr.Spans {
		if s.Track == span.TrackGC {
			cpu += s.CPUNS
		}
	}
	if got, want := cpu, res.Log.TotalGCCPUNS(); !closeTo(got, want) {
		t.Errorf("cycle span CPU sum = %v, log TotalGCCPUNS = %v", got, want)
	}
	if len(tr.Spans) < 4 {
		t.Fatalf("suspiciously few spans (%d): %+v", len(tr.Spans), tr.Spans)
	}
}

func closeTo(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}
