package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); int(k) < len(kindNames); k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

func TestNopCostsNothing(t *testing.T) {
	r := Nop
	allocs := testing.AllocsPerRun(1000, func() {
		if r.Enabled() {
			r.Record(Event{Kind: KindGCPhaseEnd, TNS: 1, DurNS: 2})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled recording allocated %v per op", allocs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Event{
		{Kind: KindGCPhaseStart, TNS: 100, Run: "k1", Phase: "young"},
		{Kind: KindGCPhaseEnd, TNS: 250, Run: "k1", Phase: "young", DurNS: 150, CPUNS: 900, Value: 1 << 20},
		{Kind: KindPacerStall, TNS: 300, Run: "k1", DurNS: 5e5},
		{Kind: KindJobFinish, TNS: 400, Run: "k1", Benchmark: "lusearch", Collector: "Shenandoah", DurNS: 1e9, CPUNS: 4e9},
	}
	for _, e := range want {
		j.Record(e)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Events() != int64(len(want)) {
		t.Fatalf("Events() = %d, want %d", j.Events(), len(want))
	}
	var got []Event
	if err := DecodeJSONL(&buf, func(e Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDecodeJSONLTruncated(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Record(Event{Kind: KindCacheHit, TNS: 1})
	j.Record(Event{Kind: KindCacheMiss, TNS: 2})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	torn := buf.String()
	torn = torn[:len(torn)-10] // cut mid-line, as a killed run would
	var n int
	err := DecodeJSONL(strings.NewReader(torn), func(Event) error { n++; return nil })
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if n != 1 {
		t.Fatalf("decoded %d whole events before the tear, want 1", n)
	}
}

// TestJSONLConcurrent hammers one sink from many goroutines; under -race
// (make tier1) this is the serialization proof, and line-atomicity is
// checked by decoding everything back.
func TestJSONLConcurrent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	const workers, per = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Record(Event{Kind: KindJobFinish, TNS: int64(i), Run: fmt.Sprintf("r%d", w)})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := DecodeJSONL(&buf, func(e Event) error {
		if e.Kind != KindJobFinish {
			t.Errorf("interleaved write corrupted an event: %+v", e)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != workers*per {
		t.Fatalf("decoded %d events, want %d", n, workers*per)
	}
}

func TestWithRunStamps(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	r := WithRun(j, "key123", "h2", "G1")
	r.Record(Event{Kind: KindGCPhaseEnd, Phase: "young"})
	r.Record(Event{Kind: KindGCPhaseEnd, Run: "other", Benchmark: "kafka", Collector: "ZGC"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := DecodeJSONL(&buf, func(e Event) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if got[0].Run != "key123" || got[0].Benchmark != "h2" || got[0].Collector != "G1" {
		t.Errorf("stamp missing: %+v", got[0])
	}
	if got[1].Run != "other" || got[1].Benchmark != "kafka" || got[1].Collector != "ZGC" {
		t.Errorf("stamp overwrote explicit identity: %+v", got[1])
	}
	if r := WithRun(Nop, "k", "b", "c"); r.Enabled() {
		t.Error("stamping Nop produced an enabled recorder")
	}
}

func TestMulti(t *testing.T) {
	if Multi(Nop, nil, Nop).Enabled() {
		t.Error("Multi of disabled recorders is enabled")
	}
	var a, b bytes.Buffer
	ja, jb := NewJSONL(&a), NewJSONL(&b)
	m := Multi(ja, Nop, jb)
	m.Record(Event{Kind: KindOOM})
	ja.Close()
	jb.Close()
	if a.Len() == 0 || b.Len() == 0 {
		t.Error("Multi did not fan out to both sinks")
	}
	if one := Multi(Nop, ja); one != Recorder(ja) {
		t.Error("Multi with one live recorder should return it directly")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 1}
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	if h.Sum() != 5+10+11+100+500+5000 {
		t.Fatalf("sum = %v", h.Sum())
	}
	h.Observe(math.NaN())
	if math.IsNaN(h.Sum()) {
		t.Fatal("NaN observation poisoned the sum")
	}
	if h.Total() != 6 {
		t.Fatalf("NaN observation counted: total = %d", h.Total())
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatalf("String() rendered no bars:\n%s", h.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(StallBoundsNS)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(1000 * (i + 1) * (j + 1)))
			}
		}(i)
	}
	wg.Wait()
	if h.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", h.Total())
	}
}
