package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); int(k) < len(kindNames); k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

func TestNopCostsNothing(t *testing.T) {
	r := Nop
	allocs := testing.AllocsPerRun(1000, func() {
		if r.Enabled() {
			r.Record(Event{Kind: KindGCPhaseEnd, TNS: 1, DurNS: 2})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled recording allocated %v per op", allocs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Event{
		{Kind: KindGCPhaseStart, TNS: 100, Run: "k1", Phase: "young"},
		{Kind: KindGCPhaseEnd, TNS: 250, Run: "k1", Phase: "young", DurNS: 150, CPUNS: 900, Value: 1 << 20},
		{Kind: KindPacerStall, TNS: 300, Run: "k1", DurNS: 5e5},
		{Kind: KindJobFinish, TNS: 400, Run: "k1", Benchmark: "lusearch", Collector: "Shenandoah", DurNS: 1e9, CPUNS: 4e9},
	}
	for _, e := range want {
		j.Record(e)
	}
	if j.Events() != int64(len(want)) {
		t.Fatalf("Events() = %d, want %d", j.Events(), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := DecodeJSONL(&buf, func(e Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The sink stamps sequence numbers and terminates the stream with a
	// run_end event on Close.
	if len(got) != len(want)+1 {
		t.Fatalf("decoded %d events, want %d + run_end", len(got), len(want))
	}
	for i := range want {
		want[i].Seq = int64(i + 1)
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	end := got[len(got)-1]
	if end.Kind != KindRunEnd || end.Value != float64(len(want)) || end.Seq != int64(len(want)+1) {
		t.Errorf("terminal event = %+v, want run_end over %d events", end, len(want))
	}
}

func TestDecodeJSONLTruncated(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Record(Event{Kind: KindCacheHit, TNS: 1})
	j.Record(Event{Kind: KindCacheMiss, TNS: 2})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	torn := buf.String()
	torn = torn[:len(torn)-10] // cut mid-line, as a killed run would
	var n int
	err := DecodeJSONL(strings.NewReader(torn), func(Event) error { n++; return nil })
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	// The tear lands inside the run_end line, so both real events survive.
	if n != 2 {
		t.Fatalf("decoded %d whole events before the tear, want 2", n)
	}
}

// TestDecodeStreamIntegrity is the truncation-detection contract: a closed
// stream audits clean, a stream cut on a line boundary (no decode error, but
// no run_end either) is flagged truncated, and dropped lines surface as
// sequence gaps rather than silently skewing downstream analysis.
func TestDecodeStreamIntegrity(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Record(Event{Kind: KindCacheHit, TNS: 1})
	j.Record(Event{Kind: KindCacheMiss, TNS: 2})
	j.Record(Event{Kind: KindGCPause, TNS: 3, DurNS: 10})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := DecodeStream(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Clean || info.Gaps != 0 || info.OutOfOrder != 0 || info.Events != 4 {
		t.Fatalf("clean stream audited %+v", info)
	}
	if info.Err() != nil {
		t.Fatalf("clean stream reported %v", info.Err())
	}

	lines := strings.SplitAfter(buf.String(), "\n")
	// Cut the stream on a line boundary before run_end: decoding succeeds,
	// so only the missing run_end distinguishes this from a short run.
	cut := strings.Join(lines[:2], "")
	info, err = DecodeStream(strings.NewReader(cut), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Clean {
		t.Fatal("truncated stream audited clean")
	}
	if info.Err() == nil {
		t.Fatal("truncated stream reported no error")
	}

	// Drop a middle line: the sequence gap must surface.
	dropped := lines[0] + lines[2] + lines[3]
	info, err = DecodeStream(strings.NewReader(dropped), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Gaps != 1 || !info.Clean {
		t.Fatalf("dropped line audited %+v, want 1 gap on a clean-ended stream", info)
	}

	// Swap two lines: reordering must surface.
	swapped := lines[1] + lines[0] + lines[2] + lines[3]
	info, err = DecodeStream(strings.NewReader(swapped), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.OutOfOrder == 0 {
		t.Fatalf("reordered stream audited %+v, want out-of-order events", info)
	}

	// Unsequenced hand-built events audit as such, not as gaps.
	info, err = DecodeStream(strings.NewReader(`{"kind":"oom","t_ns":1}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Unsequenced != 1 || info.Gaps != 0 {
		t.Fatalf("unsequenced stream audited %+v", info)
	}
}

// TestJSONLConcurrent hammers one sink from many goroutines; under -race
// (make tier1) this is the serialization proof, and line-atomicity is
// checked by decoding everything back.
func TestJSONLConcurrent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	const workers, per = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Record(Event{Kind: KindJobFinish, TNS: int64(i), Run: fmt.Sprintf("r%d", w)})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var n int
	var lastSeq int64
	if err := DecodeJSONL(&buf, func(e Event) error {
		if e.Kind != KindJobFinish && e.Kind != KindRunEnd {
			t.Errorf("interleaved write corrupted an event: %+v", e)
		}
		if e.Seq != lastSeq+1 {
			t.Errorf("sequence broke: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != workers*per+1 {
		t.Fatalf("decoded %d events, want %d + run_end", n, workers*per)
	}
}

func TestWithRunStamps(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	r := WithRun(j, "key123", "h2", "G1")
	r.Record(Event{Kind: KindGCPhaseEnd, Phase: "young"})
	r.Record(Event{Kind: KindGCPhaseEnd, Run: "other", Benchmark: "kafka", Collector: "ZGC"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := DecodeJSONL(&buf, func(e Event) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if got[0].Run != "key123" || got[0].Benchmark != "h2" || got[0].Collector != "G1" {
		t.Errorf("stamp missing: %+v", got[0])
	}
	if got[1].Run != "other" || got[1].Benchmark != "kafka" || got[1].Collector != "ZGC" {
		t.Errorf("stamp overwrote explicit identity: %+v", got[1])
	}
	if r := WithRun(Nop, "k", "b", "c"); r.Enabled() {
		t.Error("stamping Nop produced an enabled recorder")
	}
}

func TestMulti(t *testing.T) {
	if Multi(Nop, nil, Nop).Enabled() {
		t.Error("Multi of disabled recorders is enabled")
	}
	var a, b bytes.Buffer
	ja, jb := NewJSONL(&a), NewJSONL(&b)
	m := Multi(ja, Nop, jb)
	m.Record(Event{Kind: KindOOM})
	ja.Close()
	jb.Close()
	if a.Len() == 0 || b.Len() == 0 {
		t.Error("Multi did not fan out to both sinks")
	}
	if one := Multi(Nop, ja); one != Recorder(ja) {
		t.Error("Multi with one live recorder should return it directly")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 1}
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
	if h.Sum() != 5+10+11+100+500+5000 {
		t.Fatalf("sum = %v", h.Sum())
	}
	h.Observe(math.NaN())
	if math.IsNaN(h.Sum()) {
		t.Fatal("NaN observation poisoned the sum")
	}
	if h.Total() != 6 {
		t.Fatalf("NaN observation counted: total = %d", h.Total())
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatalf("String() rendered no bars:\n%s", h.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(StallBoundsNS)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(1000 * (i + 1) * (j + 1)))
			}
		}(i)
	}
	wg.Wait()
	if h.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", h.Total())
	}
}
