package obs

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// Counter is a lock-free monotonic counter, cheap enough for per-event
// paths that want an aggregate without emitting an event per occurrence.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// Histogram is a fixed-bucket histogram: bucket i counts observations
// v <= Bounds[i], with one overflow bucket above the last bound. Bounds are
// fixed at construction, so Observe is a binary search plus one atomic add —
// no allocation, safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Uint64  // math.Float64bits-encoded total, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// StallBoundsNS is the standard bucket ladder for pause/stall durations,
// log-spaced from 10µs to 100ms.
var StallBoundsNS = []float64{
	1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8,
}

// Observe records one sample. NaN samples are dropped: a NaN duration is a
// producer bug, and poisoning the sum would hide every later sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns the histogram's bucket bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Counts returns a snapshot of the per-bucket counts; the last entry is the
// overflow bucket.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// String renders the histogram as an ASCII table with one row per occupied
// bucket, for human consumption in obsreport.
func (h *Histogram) String() string {
	counts := h.Counts()
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i, c := range counts {
		if c == 0 {
			continue
		}
		var label string
		switch {
		case i == 0:
			label = fmt.Sprintf("<= %s", fmtNS(h.bounds[0]))
		case i == len(h.bounds):
			label = fmt.Sprintf(" > %s", fmtNS(h.bounds[len(h.bounds)-1]))
		default:
			label = fmt.Sprintf("%s..%s", fmtNS(h.bounds[i-1]), fmtNS(h.bounds[i]))
		}
		bar := strings.Repeat("#", int(math.Ceil(40*float64(c)/float64(total))))
		fmt.Fprintf(&b, "%16s %8d %s\n", label, c, bar)
	}
	return b.String()
}

// fmtNS renders a nanosecond duration with a human unit.
func fmtNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.4gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gus", ns/1e3)
	}
	return fmt.Sprintf("%.4gns", ns)
}
