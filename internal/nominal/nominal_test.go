package nominal

import (
	"math"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/workload"
)

func TestMetricsTableComplete(t *testing.T) {
	// The paper's Table 1 caption says 47, but the table itself enumerates
	// 48 rows (the U group has 13 entries); we implement everything listed.
	if len(Metrics) != 48 {
		t.Fatalf("have %d metrics, want 48 (all of Table 1)", len(Metrics))
	}
	groups := map[byte]int{}
	for _, m := range Metrics {
		if len(m.Name) != 3 {
			t.Errorf("metric %q is not a three-letter acronym", m.Name)
		}
		if m.Description == "" {
			t.Errorf("metric %q lacks a description", m.Name)
		}
		groups[m.Group()]++
	}
	want := map[byte]int{'A': 5, 'B': 7, 'G': 12, 'P': 11, 'U': 13}
	for g, n := range want {
		if groups[g] != n {
			t.Errorf("group %c has %d metrics, want %d", g, groups[g], n)
		}
	}
}

func TestMetricByName(t *testing.T) {
	m, ok := MetricByName("ARA")
	if !ok || m.Name != "ARA" {
		t.Fatalf("MetricByName(ARA) = %+v, %v", m, ok)
	}
	if _, ok := MetricByName("XXX"); ok {
		t.Fatal("unknown metric should not resolve")
	}
}

func TestMinHeapFindsTightBound(t *testing.T) {
	d := workload.Lusearch
	cfg := workload.RunConfig{Collector: gc.G1, Iterations: 1, Events: 200, Seed: 1}
	got, err := MinHeap(d, cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The minimum must be at least the live set and should be near it.
	if got < d.LiveMB {
		t.Fatalf("min heap %vMB below live set %vMB", got, d.LiveMB)
	}
	if got > d.LiveMB*1.6 {
		t.Fatalf("min heap %vMB implausibly far above live set %vMB", got, d.LiveMB)
	}
	// It must actually complete at the bound and fail just below it.
	cfg.HeapMB = got
	if _, err := workload.Run(d, cfg); err != nil {
		t.Fatalf("run at measured minimum failed: %v", err)
	}
}

func TestMinHeapZGCExceedsG1(t *testing.T) {
	d := workload.Fop
	base := workload.RunConfig{Collector: gc.G1, Iterations: 1, Events: 200, Seed: 1}
	g1Min, err := MinHeap(d, base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	zcfg := base
	zcfg.Collector = gc.ZGC
	zgcMin, err := MinHeap(d, zcfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if zgcMin <= g1Min*1.2 {
		t.Fatalf("ZGC min heap %v should clearly exceed G1's %v (no compressed oops)",
			zgcMin, g1Min)
	}
}

func characterizeQuick(t *testing.T, d *workload.Descriptor) *Characterization {
	t.Helper()
	c, err := Characterize(d, Options{
		Events: 200, Invocations: 3, WarmupIters: 8, Seed: 42, SkipSizeVariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCharacterizeProducesAllMetrics(t *testing.T) {
	c := characterizeQuick(t, workload.Lusearch)
	for _, m := range Metrics {
		v, ok := c.Values[m.Name]
		if !ok {
			t.Errorf("metric %s missing", m.Name)
			continue
		}
		switch m.Name {
		case "GMS", "GML", "GMV":
			if !math.IsNaN(v) {
				t.Errorf("%s should be NaN when size variants are skipped", m.Name)
			}
		default:
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("metric %s = %v", m.Name, v)
			}
		}
	}
}

func TestCharacterizePlausibleValues(t *testing.T) {
	c := characterizeQuick(t, workload.Lusearch)
	if v := c.Value("GMD"); v < workload.Lusearch.LiveMB || v > workload.Lusearch.MinHeapMB*2 {
		t.Errorf("GMD = %v, want within [live, 2x published]", v)
	}
	if v := c.Value("GMU"); v <= c.Value("GMD") {
		t.Errorf("GMU %v should exceed GMD %v (uncompressed pointers)", v, c.Value("GMD"))
	}
	if v := c.Value("ARA"); v < workload.Lusearch.ARA*0.2 || v > workload.Lusearch.ARA*5 {
		t.Errorf("ARA = %v, want same order as calibrated %v", v, workload.Lusearch.ARA)
	}
	if v := c.Value("GSS"); v <= 0 {
		t.Errorf("GSS = %v, want positive for the suite's heaviest allocator", v)
	}
	if v := c.Value("GCC"); v < 1 {
		t.Errorf("GCC = %v, want at least one GC at 2x heap", v)
	}
	if v := c.Value("UIP"); math.Abs(v-workload.Lusearch.Traits.UIP) > 1 {
		t.Errorf("UIP = %v, want ~%v", v, workload.Lusearch.Traits.UIP)
	}
	if v := c.Value("PIN"); v < 100 {
		t.Errorf("PIN = %v%%, want >100%% for an interpreter-sensitive workload", v)
	}
	if v := c.Value("PKP"); v <= 0 || v > 15 {
		t.Errorf("PKP = %v, want small positive share", v)
	}
}

func TestCharacterizeJmeIsInsensitive(t *testing.T) {
	c := characterizeQuick(t, workload.Jme)
	// jme barely allocates: almost no GC activity at 2x heap and near-zero
	// heap-size sensitivity (paper scores it lowest on GSS).
	if v := c.Value("GSS"); v > 20 {
		t.Errorf("jme GSS = %v%%, want near zero", v)
	}
	if v := c.Value("PIN"); v > 10 {
		t.Errorf("jme PIN = %v%%, want ~1%%", v)
	}
	if v := c.Value("PFS"); v > 6 {
		t.Errorf("jme PFS = %v%%, want near zero (GPU-bound)", v)
	}
}

func TestSuiteTableRanksAndScores(t *testing.T) {
	a := characterizeQuick(t, workload.Lusearch)
	b := characterizeQuick(t, workload.Jme)
	c := characterizeQuick(t, workload.H2o)
	table := BuildSuite([]*Characterization{a, b, c})

	j := table.MetricIndex("ARA")
	if j < 0 {
		t.Fatal("ARA column missing")
	}
	// lusearch has the suite's top allocation rate: rank 1, score 10.
	if table.Ranks[0][j] != 1 || table.Scores[0][j] != 10 {
		t.Fatalf("lusearch ARA rank/score = %d/%d, want 1/10",
			table.Ranks[0][j], table.Scores[0][j])
	}
	// jme has the lowest: rank 3, score 1.
	if table.Ranks[1][j] != 3 || table.Scores[1][j] != 1 {
		t.Fatalf("jme ARA rank/score = %d/%d, want 3/1",
			table.Ranks[1][j], table.Scores[1][j])
	}
}

func TestCompleteMetricMatrixExcludesNaN(t *testing.T) {
	a := characterizeQuick(t, workload.Lusearch)
	b := characterizeQuick(t, workload.Jme)
	table := BuildSuite([]*Characterization{a, b})
	names, data := table.CompleteMetricMatrix()
	for _, n := range names {
		if n == "GMS" || n == "GML" || n == "GMV" {
			t.Fatalf("skipped metric %s should not be in the complete matrix", n)
		}
	}
	if len(data) != 2 || len(data[0]) != len(names) {
		t.Fatalf("matrix shape %dx%d vs %d names", len(data), len(data[0]), len(names))
	}
	for _, row := range data {
		for _, v := range row {
			if math.IsNaN(v) {
				t.Fatal("NaN leaked into complete matrix")
			}
		}
	}
}

func TestTable2MetricsAreKnown(t *testing.T) {
	if len(Table2Metrics) != 12 {
		t.Fatalf("Table 2 has %d metrics, want 12", len(Table2Metrics))
	}
	for _, n := range Table2Metrics {
		if _, ok := MetricByName(n); !ok {
			t.Errorf("Table 2 metric %s unknown", n)
		}
	}
}

func TestSuitePCAAndMostDeterminant(t *testing.T) {
	chars := []*Characterization{
		characterizeQuick(t, workload.Lusearch),
		characterizeQuick(t, workload.Jme),
		characterizeQuick(t, workload.H2o),
		characterizeQuick(t, workload.Biojava),
	}
	table := BuildSuite(chars)
	names, res, err := table.PCA()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 || len(res.Components) != len(names) {
		t.Fatalf("PCA shape: %d names, %d components", len(names), len(res.Components))
	}
	top, err := table.MostDeterminant(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("MostDeterminant returned %d metrics, want 5", len(top))
	}
	seen := map[string]bool{}
	for _, n := range top {
		if seen[n] {
			t.Fatalf("duplicate metric %s in determinant list", n)
		}
		seen[n] = true
		if _, ok := MetricByName(n); !ok {
			t.Fatalf("unknown metric %s", n)
		}
	}
	// Asking for more metrics than exist clamps.
	all, err := table.MostDeterminant(10000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(names) {
		t.Fatalf("clamped list = %d, want %d", len(all), len(names))
	}
}

func TestCharacterizationValueAbsent(t *testing.T) {
	c := &Characterization{Values: map[string]float64{"ARA": 5}}
	if got := c.Value("ARA"); got != 5 {
		t.Fatalf("Value(ARA) = %v", got)
	}
	if got := c.Value("XYZ"); !math.IsNaN(got) {
		t.Fatalf("absent metric = %v, want NaN", got)
	}
}

func TestMetricIndexUnknown(t *testing.T) {
	table := BuildSuite(nil)
	if got := table.MetricIndex("XXX"); got != -1 {
		t.Fatalf("MetricIndex(XXX) = %d, want -1", got)
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults(workload.Lusearch)
	if o.Events < 200 || o.Invocations != 5 || o.WarmupIters != 12 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{Events: 123, Invocations: 2, WarmupIters: 3}.withDefaults(workload.Lusearch)
	if o2.Events != 123 || o2.Invocations != 2 || o2.WarmupIters != 3 {
		t.Fatalf("explicit options clobbered: %+v", o2)
	}
}

func TestCharacterizeWithSizeVariants(t *testing.T) {
	// The non-skip path: GMS < GMD < GML < GMV for a small workload.
	c, err := Characterize(workload.Avrora, Options{
		Events: 200, Invocations: 2, WarmupIters: 6, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	gms, gmd := c.Value("GMS"), c.Value("GMD")
	gml, gmv := c.Value("GML"), c.Value("GMV")
	if !(gms < gmd && gmd < gml && gml < gmv) {
		t.Fatalf("size-variant heaps out of order: GMS %v GMD %v GML %v GMV %v",
			gms, gmd, gml, gmv)
	}
}

func TestMinHeapExponentialGrowthPath(t *testing.T) {
	// A live set far above the initial guess exercises the exponential
	// upper-bound search; the result must still land near the live set.
	// (The live set must stay below the workload's total allocation —
	// avrora allocates ~224MB per iteration — or it never materialises,
	// which is equally true of the real suite's methodology.)
	d := *workload.Avrora
	d.Name = "avrora-test-copy"
	d.LiveMB = 150
	got, err := MinHeap(&d, workload.RunConfig{Collector: gc.G1, Iterations: 1, Events: 100, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got < 150 || got > 220 {
		t.Fatalf("min heap %vMB, want near the 150MB live set", got)
	}
}
