// Package nominal implements the paper's nominal workload statistics
// (Section 5.1, Table 1): 47 per-benchmark metrics across five groups —
// Allocation, Bytecode, Garbage collection, Performance and
// U(micro)-architecture — each benchmark ranked and scored 1..10 against the
// rest of the suite.
//
// Every metric our substrate can measure is measured by running experiments:
// min-heap searches, heap sweeps, compiler-configuration runs, machine
// swaps, size-distribution sampling for the allocation statistics, and
// instrumented execution of a synthesized program image for the bytecode-mix
// statistics (internal/bytecode). Only PPE and the cross-architecture
// affinities remain declared traits.
package nominal

// Metric describes one nominal statistic.
type Metric struct {
	// Name is the three-letter acronym; its first letter is the group.
	Name string
	// Description matches Table 1 of the paper.
	Description string
	// Measured reports whether the value is produced by running the
	// simulator (true) or taken from the workload's declared traits (false).
	Measured bool
}

// Group returns the metric's group letter (A, B, G, P or U).
func (m Metric) Group() byte { return m.Name[0] }

// Metrics lists all 47 nominal statistics in Table 1 order.
var Metrics = []Metric{
	{"AOA", "nominal average object size (bytes)", true},
	{"AOL", "nominal 90-percentile object size (bytes)", true},
	{"AOM", "nominal median object size (bytes)", true},
	{"AOS", "nominal 10-percentile object size (bytes)", true},
	{"ARA", "nominal allocation rate (bytes / usec)", true},
	{"BAL", "nominal aaload per usec", true},
	{"BAS", "nominal aastore per usec", true},
	{"BEF", "nominal execution focus / dominance of hot code", true},
	{"BGF", "nominal getfield per usec", true},
	{"BPF", "nominal putfield per usec", true},
	{"BUB", "nominal thousands of unique bytecodes executed", true},
	{"BUF", "nominal thousands of unique function calls executed", true},
	{"GCA", "nominal average post-GC heap size as percent of min heap, when run at 2X min heap with G1", true},
	{"GCC", "nominal GC count at 2X minimum heap size (G1)", true},
	{"GCM", "nominal median post-GC heap size as percent of min heap, when run at 2X min heap with G1", true},
	{"GCP", "nominal percentage of time spent in GC pauses at 2X minimum heap size (G1)", true},
	{"GLK", "nominal percent 10th iteration memory leakage (10 iterations / 1 iterations)", true},
	{"GMD", "nominal minimum heap size (MB) for default size configuration (with compressed pointers)", true},
	{"GML", "nominal minimum heap size (MB) for large size configuration (with compressed pointers)", true},
	{"GMS", "nominal minimum heap size (MB) for small size configuration (with compressed pointers)", true},
	{"GMU", "nominal minimum heap size (MB) for default size without compressed pointers", true},
	{"GMV", "nominal minimum heap size (MB) for vlarge size configuration (with compressed pointers)", true},
	{"GSS", "nominal heap size sensitivity (slowdown with tight heap, as a percentage)", true},
	{"GTO", "nominal memory turnover (total alloc bytes / min heap bytes)", true},
	{"PCC", "nominal percentage slowdown due to forced c2 compilation compared to tiered baseline (compiler cost)", true},
	{"PCS", "nominal percentage slowdown due to worst compiler configuration compared to best (sensitivity to compiler)", true},
	{"PET", "nominal execution time (sec)", true},
	{"PFS", "nominal percentage speedup due to enabling frequency scaling (CPU frequency sensitivity)", true},
	{"PIN", "nominal percentage slowdown due to using the interpreter (sensitivity to interpreter)", true},
	{"PKP", "nominal percentage of time spent in kernel mode (as percentage of user plus kernel time)", true},
	{"PLS", "nominal percentage slowdown due to 1/16 reduction of LLC capacity (LLC sensitivity)", true},
	{"PMS", "nominal percentage slowdown due to slower DRAM (memory speed sensitivity)", true},
	{"PPE", "nominal parallel efficiency (speedup as percentage of ideal speedup for 32 threads)", false},
	{"PSD", "nominal standard deviation among invocations at peak performance (as percentage of performance)", true},
	{"PWU", "nominal iterations to warm up to within 1.5% of best", true},
	{"UAA", "nominal percentage change (slowdown) when running on ARM Neoverse N1 v AMD Zen 4 on a single core", true},
	{"UAI", "nominal percentage change (slowdown) when running on Intel Golden Cove v AMD Zen 4 on a single core", true},
	{"UBM", "nominal backend bound (memory)", true},
	{"UBP", "nominal 1000 x bad speculation: mispredicts", true},
	{"UBR", "nominal 1000000 x bad speculation: pipeline restarts", true},
	{"UBS", "nominal 1000 x bad speculation", true},
	{"UDC", "nominal data cache misses per K instructions", true},
	{"UDT", "nominal DTLB misses per M instructions", true},
	{"UIP", "nominal 100 x instructions per cycle (IPC)", true},
	{"ULL", "nominal LLC misses per M instructions", true},
	{"USB", "nominal 100 x back end bound", true},
	{"USC", "nominal 1000 x SMT contention", true},
	{"USF", "nominal 100 x front end bound", true},
}

// MetricByName returns the metric definition, or false if unknown.
func MetricByName(name string) (Metric, bool) {
	for _, m := range Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}
