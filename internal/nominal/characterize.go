package nominal

import (
	"fmt"
	"math"

	"chopin/internal/bytecode"
	"chopin/internal/cpuarch"
	"chopin/internal/gc"
	"chopin/internal/heap"
	"chopin/internal/jit"
	"chopin/internal/sim"
	"chopin/internal/stats"
	"chopin/internal/workload"
)

// Options controls the cost/fidelity tradeoff of a characterization.
type Options struct {
	// Events is the per-iteration event count used for characterization
	// runs; 0 picks a quarter of the workload's default (min 200).
	Events int
	// Invocations is the sample size for the PSD statistic (default 5).
	Invocations int
	// WarmupIters is how many iterations the PWU search runs (default 12).
	WarmupIters int
	// Seed perturbs all runs.
	Seed uint64
	// SkipSizeVariants skips the GMS/GML/GMV minimum-heap searches (the
	// most expensive part) and reports NaN for them.
	SkipSizeVariants bool
	// Run executes each characterization invocation (default workload.Run).
	// Passing an experiment engine's Run makes every probe a cacheable job.
	Run RunFunc
}

func (o Options) withDefaults(d *workload.Descriptor) Options {
	if o.Run == nil {
		o.Run = workload.Run
	}
	if o.Events == 0 {
		o.Events = d.Events / 4
		if o.Events < 200 {
			o.Events = 200
		}
	}
	if o.Invocations == 0 {
		o.Invocations = 5
	}
	if o.WarmupIters == 0 {
		o.WarmupIters = 12
	}
	return o
}

// Characterization is the measured nominal profile of one workload.
type Characterization struct {
	Workload string
	// Values maps metric name to value; metrics that are unavailable for
	// the workload are NaN (the paper's tables leave them blank).
	Values map[string]float64
	// MinHeapMB is the measured GMD, the denominator for heap-factor sweeps.
	MinHeapMB float64
}

// Value returns the metric's value (NaN when absent).
func (c *Characterization) Value(name string) float64 {
	if v, ok := c.Values[name]; ok {
		return v
	}
	return math.NaN()
}

// Characterize measures every nominal statistic for the workload: it
// searches minimum heaps, runs the G1 2x-heap profile, warmup and invocation
// series, compiler-configuration and machine-swap experiments, and merges
// the declared trait metrics.
func Characterize(d *workload.Descriptor, opt Options) (*Characterization, error) {
	opt = opt.withDefaults(d)
	c := &Characterization{Workload: d.Name, Values: map[string]float64{}}
	set := func(name string, v float64) { c.Values[name] = v }

	base := workload.RunConfig{
		Collector:  gc.G1,
		Iterations: 1,
		Events:     opt.Events,
		Seed:       opt.Seed,
	}

	// --- Minimum heaps (GMD and variants). Everything else hangs off GMD.
	// The paper defines GMD over a 5-iteration run, which matters for leaky
	// workloads whose live set grows per iteration; we probe with 3
	// iterations as a cost compromise.
	minheapCfg := base
	minheapCfg.Iterations = 3
	gmd, err := MinHeapWith(opt.Run, d, minheapCfg, 1)
	if err != nil {
		return nil, fmt.Errorf("characterize %s: GMD: %w", d.Name, err)
	}
	c.MinHeapMB = gmd
	set("GMD", gmd)

	uncompressed := minheapCfg
	uncompressed.DisableCompressedOops = true
	gmu, err := MinHeapWith(opt.Run, d, uncompressed, 1)
	if err != nil {
		return nil, fmt.Errorf("characterize %s: GMU: %w", d.Name, err)
	}
	set("GMU", gmu)

	if opt.SkipSizeVariants {
		set("GMS", math.NaN())
		set("GML", math.NaN())
		set("GMV", math.NaN())
	} else {
		for _, sv := range []struct {
			name string
			size workload.Size
		}{{"GMS", workload.SizeSmall}, {"GML", workload.SizeLarge}, {"GMV", workload.SizeVLarge}} {
			// Keep the characterization event budget: minimum heaps are
			// live-set dominated, so probing with fewer events is safe.
			v, err := MinHeapWith(opt.Run, d.Scaled(sv.size), minheapCfg, 1)
			if err != nil {
				return nil, fmt.Errorf("characterize %s: %s: %w", d.Name, sv.name, err)
			}
			set(sv.name, v)
		}
	}

	// --- The G1 2x-minheap profile run: ARA, PET, PKP, GTO, GCA/GCC/GCM/GCP.
	profileCfg := base
	profileCfg.HeapMB = 2 * gmd
	profileCfg.Iterations = 3
	prof, err := opt.Run(d, profileCfg)
	if err != nil {
		return nil, fmt.Errorf("characterize %s: profile run: %w", d.Name, err)
	}
	last := prof.Last()
	set("PET", last.WallNS/1e9)
	set("ARA", last.Allocated/(last.WallNS/1e3))
	set("PKP", pct(last.KernelNS/last.CPUNS))
	var totalAlloc float64
	for _, it := range prof.Iterations {
		totalAlloc += it.Allocated
	}
	set("GTO", totalAlloc/float64(len(prof.Iterations))/(gmd*workload.MB))

	minheapBytes := gmd * workload.MB
	var postGC []float64
	for _, e := range prof.Log.Events {
		postGC = append(postGC, e.UsedAfter/minheapBytes*100)
	}
	set("GCC", float64(len(prof.Log.Events)))
	if len(postGC) > 0 {
		set("GCA", stats.Mean(postGC))
		set("GCM", stats.Percentile(postGC, 50))
	} else {
		set("GCA", math.NaN())
		set("GCM", math.NaN())
	}
	var wallTotal float64
	for _, it := range prof.Iterations {
		wallTotal += it.WallNS
	}
	set("GCP", pct(prof.Log.TotalPauseNS()/wallTotal))

	// --- Heap size sensitivity: tight (1.1x) vs roomy (6x) heap.
	tight, err := lastWall(opt.Run, d, withHeap(base, 1.1*gmd, 2))
	if err != nil {
		return nil, fmt.Errorf("characterize %s: GSS tight: %w", d.Name, err)
	}
	roomy, err := lastWall(opt.Run, d, withHeap(base, 6*gmd, 2))
	if err != nil {
		return nil, fmt.Errorf("characterize %s: GSS roomy: %w", d.Name, err)
	}
	set("GSS", pct(tight/roomy-1))

	// --- Leakage: declared live growth over iterations 1..10 (the
	// simulator's live set follows the descriptor's leak schedule exactly).
	if d.LiveMB > 0 {
		set("GLK", pct(d.LeakMBPerIter*9/d.LiveMB))
	} else {
		set("GLK", 0)
	}

	// --- Warmup series (PWU) and iteration-0 data for PCC.
	warmCfg := withHeap(base, 2*gmd, opt.WarmupIters)
	warm, err := opt.Run(d, warmCfg)
	if err != nil {
		return nil, fmt.Errorf("characterize %s: warmup: %w", d.Name, err)
	}
	set("PWU", float64(warmedUpBy(warm)))

	// --- Compiler configurations: PIN, PCS (steady state), PCC (first
	// iteration under forced C2 versus tiered). The baseline must match the
	// experiment's iteration count: leaky workloads grow their live set per
	// iteration, so a 12-iteration-warmed baseline is not comparable to a
	// 2-iteration configuration run.
	// The paper times iteration 5 (-n 5), by which the tiered default is
	// well warmed for default-size inputs.
	tieredSteady, err := lastWall(opt.Run, d, withHeap(base, 2*gmd, 5))
	if err != nil {
		return nil, err
	}
	pin, err := lastWall(opt.Run, d, withCompiler(withHeap(base, 2*gmd, 5), jit.InterpreterOnly))
	if err != nil {
		return nil, err
	}
	set("PIN", pct(pin/tieredSteady-1))
	pcs, err := lastWall(opt.Run, d, withCompiler(withHeap(base, 2*gmd, 5), jit.WorstTier))
	if err != nil {
		return nil, err
	}
	set("PCS", pct(pcs/tieredSteady-1))
	c2Cfg := withCompiler(withHeap(base, 2*gmd, 1), jit.ForcedC2)
	c2, err := opt.Run(d, c2Cfg)
	if err != nil {
		return nil, err
	}
	set("PCC", pct(c2.Iterations[0].WallNS/warm.Iterations[0].WallNS-1))

	// --- Machine sensitivity: frequency boost (PFS), small LLC (PLS),
	// slow DRAM (PMS), other architectures (UAI, UAA).
	baseline2 := warm.Last().WallNS
	machineRun := func(m cpuarch.Machine) (float64, error) {
		cfg := withHeap(base, 2*gmd, opt.WarmupIters)
		cfg.Machine = m
		r, err := opt.Run(d, cfg)
		if err != nil {
			return 0, err
		}
		return r.Last().WallNS, nil
	}
	boost, err := machineRun(cpuarch.Zen4.WithBoost(cpuarch.ZenBoostGHz))
	if err != nil {
		return nil, err
	}
	set("PFS", pct(baseline2/boost-1))
	smallLLC, err := machineRun(cpuarch.Zen4.WithLLCScale(1.0 / 16))
	if err != nil {
		return nil, err
	}
	set("PLS", pct(smallLLC/baseline2-1))
	slowDRAM, err := machineRun(cpuarch.Zen4.WithSlowDRAM())
	if err != nil {
		return nil, err
	}
	set("PMS", pct(slowDRAM/baseline2-1))
	set("UAA", pct(d.Arch.TimeFactor(cpuarch.NeoverseN1)-1))
	set("UAI", pct(d.Arch.TimeFactor(cpuarch.GoldenCove)-1))

	// --- Invocation noise (PSD): coefficient of variation of the warmed
	// iteration across seeds.
	var walls []float64
	for i := 0; i < opt.Invocations; i++ {
		w, err := lastWall(opt.Run, d, reseed(withHeap(base, 2*gmd, 2), opt.Seed+uint64(i)*7919+1))
		if err != nil {
			return nil, err
		}
		walls = append(walls, w)
	}
	if m := stats.Mean(walls); m > 0 {
		set("PSD", pct(stats.StdDev(walls)/m))
	}

	// --- Microarchitectural profile via the CPU model on the reference
	// machine.
	td := d.Arch.Analyze(cpuarch.Zen4)
	set("UIP", 100*td.IPC)
	set("USF", 100*td.FrontEnd)
	set("USB", 100*td.BackEnd)
	set("UBM", 100*td.BackEndMemory)
	set("UBS", 1000*td.BadSpec)
	set("UBP", d.Arch.MispredictFrac1000)
	set("UBR", d.Arch.RestartFrac1M)
	set("UDC", d.Arch.DCMissPerKI)
	set("UDT", d.Arch.DTLBMissPerMI)
	set("ULL", d.Arch.LLCMissPerMI)
	set("USC", 1000*d.Arch.SMTContention)

	// --- Object demographics, measured by sampling the workload's fitted
	// size distribution (the analogue of the suite's bytecode-instrumented
	// allocation profiling). Falls back to the declared quantiles if the
	// distribution cannot be fitted.
	if dist, derr := heap.NewSizeDistribution(d.Demo); derr == nil {
		rng := sim.NewRNG(opt.Seed ^ 0xA11C)
		avg, p10, median, p90 := dist.MeasuredStats(rng, 100_000)
		set("AOA", avg)
		set("AOL", p90)
		set("AOM", median)
		set("AOS", p10)
	} else {
		set("AOA", d.Demo.AvgObjectBytes)
		set("AOL", d.Demo.ObjectBytesP90)
		set("AOM", d.Demo.ObjectBytesMedian)
		set("AOS", d.Demo.ObjectBytesP10)
	}
	// --- Bytecode-mix statistics, measured by instrumented execution of the
	// workload's synthesized program image (the suite ships equivalent
	// instrumentation tools; see internal/bytecode). Falls back to the
	// declared traits if synthesis fails.
	bt := bytecode.Targets{
		AALoadPerUS: d.Traits.BAL, AAStorePerUS: d.Traits.BAS,
		GetFieldPerUS: d.Traits.BGF, PutFieldPerUS: d.Traits.BPF,
		UniqueBytecodesK: d.Traits.BUB, UniqueFunctionsK: d.Traits.BUF,
		Focus:      d.Traits.BEF,
		ExecTimeUS: last.WallNS / 1e3,
	}
	if rep, berr := bytecode.Measure(bt, opt.Seed); berr == nil {
		set("BAL", rep.BAL)
		set("BAS", rep.BAS)
		set("BEF", rep.BEF)
		set("BGF", rep.BGF)
		set("BPF", rep.BPF)
		set("BUB", rep.BUB)
		set("BUF", rep.BUF)
	} else {
		set("BAL", d.Traits.BAL)
		set("BAS", d.Traits.BAS)
		set("BEF", d.Traits.BEF)
		set("BGF", d.Traits.BGF)
		set("BPF", d.Traits.BPF)
		set("BUB", d.Traits.BUB)
		set("BUF", d.Traits.BUF)
	}
	set("PPE", d.Traits.PPE)

	return c, nil
}

func pct(x float64) float64 { return 100 * x }

func withHeap(cfg workload.RunConfig, heapMB float64, iters int) workload.RunConfig {
	cfg.HeapMB = heapMB
	cfg.Iterations = iters
	return cfg
}

func withCompiler(cfg workload.RunConfig, c jit.Config) workload.RunConfig {
	cfg.Compiler = c
	return cfg
}

func reseed(cfg workload.RunConfig, seed uint64) workload.RunConfig {
	cfg.Seed = seed
	return cfg
}

// lastWall runs the workload and returns the final iteration's wall time.
func lastWall(run RunFunc, d *workload.Descriptor, cfg workload.RunConfig) (float64, error) {
	r, err := run(d, cfg)
	if err != nil {
		return 0, fmt.Errorf("characterize %s: %w", d.Name, err)
	}
	return r.Last().WallNS, nil
}

// warmedUpBy returns the first iteration whose wall time is within 1.5% of
// the best iteration — the paper's warmup criterion, measured from actual
// iteration times.
func warmedUpBy(r *workload.Result) int {
	best := math.Inf(1)
	for _, it := range r.Iterations {
		best = math.Min(best, it.WallNS)
	}
	for i, it := range r.Iterations {
		if it.WallNS <= best*1.015 {
			return i
		}
	}
	return len(r.Iterations)
}
