package nominal

import (
	"errors"
	"fmt"

	"chopin/internal/workload"
)

// RunFunc executes one benchmark invocation. The package's measurements are
// defined against workload.Run, but callers can inject an alternative — the
// experiment engine passes its own cached, deduplicated executor so every
// probe becomes a first-class job.
type RunFunc func(*workload.Descriptor, workload.RunConfig) (*workload.Result, error)

// MinHeap finds the minimum heap size, in MB, at which the workload runs to
// completion under cfg (Recommendation H2's prerequisite: heap sizes must be
// expressed as multiples of a measured per-benchmark minimum). It grows an
// upper bound geometrically until the run completes, then bisects to within
// tolMB or 1% of the bound, whichever is larger.
func MinHeap(d *workload.Descriptor, cfg workload.RunConfig, tolMB float64) (float64, error) {
	return MinHeapWith(workload.Run, d, cfg, tolMB)
}

// MinHeapWith is MinHeap with the probe executor injected; every probe
// invocation goes through run.
func MinHeapWith(run RunFunc, d *workload.Descriptor, cfg workload.RunConfig, tolMB float64) (float64, error) {
	if tolMB <= 0 {
		tolMB = 1
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 1
	}
	completes := func(heapMB float64) (bool, error) {
		c := cfg
		c.HeapMB = heapMB
		_, err := run(d, c)
		if err == nil {
			return true, nil
		}
		var oom *workload.ErrOutOfMemory
		if errors.As(err, &oom) {
			return false, nil
		}
		return false, err
	}

	// Exponential search for a feasible upper bound.
	hi := d.LiveMB + 4
	if hi < 4 {
		hi = 4
	}
	var ok bool
	var err error
	for i := 0; i < 24; i++ {
		ok, err = completes(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		hi *= 2
	}
	if !ok {
		return 0, fmt.Errorf("nominal: %s does not complete even at %.0fMB", d.Name, hi)
	}
	lo := hi / 2
	if hi == d.LiveMB+4 {
		lo = 1
	}

	for hi-lo > tolMB && hi-lo > hi*0.01 {
		mid := (lo + hi) / 2
		ok, err := completes(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
