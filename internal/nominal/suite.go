package nominal

import (
	"fmt"
	"math"
	"sort"

	"chopin/internal/pca"
	"chopin/internal/stats"
)

// SuiteTable is the suite-wide nominal statistics table: values, ranks and
// scores for every (benchmark, metric) pair, the data behind the paper's
// appendix tables and PCA.
type SuiteTable struct {
	Benchmarks []string
	// Values[i][j] is benchmark i's value for Metrics[j]; NaN when absent.
	Values [][]float64
	// Ranks[i][j] is the benchmark's rank for the metric (1 = largest
	// value); 0 when absent.
	Ranks [][]int
	// Scores[i][j] maps the rank onto 1..10 (10 = rank 1); 0 when absent.
	Scores [][]int
}

// BuildSuite assembles the table from per-benchmark characterizations.
func BuildSuite(chars []*Characterization) *SuiteTable {
	t := &SuiteTable{}
	for _, c := range chars {
		t.Benchmarks = append(t.Benchmarks, c.Workload)
		row := make([]float64, len(Metrics))
		for j, m := range Metrics {
			row[j] = c.Value(m.Name)
		}
		t.Values = append(t.Values, row)
	}
	n := len(t.Benchmarks)
	t.Ranks = make([][]int, n)
	t.Scores = make([][]int, n)
	for i := range t.Ranks {
		t.Ranks[i] = make([]int, len(Metrics))
		t.Scores[i] = make([]int, len(Metrics))
	}
	for j := range Metrics {
		// Rank only benchmarks that have the metric.
		var present []int
		var vals []float64
		for i := 0; i < n; i++ {
			if !math.IsNaN(t.Values[i][j]) {
				present = append(present, i)
				vals = append(vals, t.Values[i][j])
			}
		}
		if len(present) == 0 {
			continue
		}
		ranks := stats.Rank(vals)
		for k, i := range present {
			t.Ranks[i][j] = ranks[k]
			t.Scores[i][j] = stats.ScoreFromRank(ranks[k], len(present))
		}
	}
	return t
}

// MetricIndex returns the column index of the named metric, or -1.
func (t *SuiteTable) MetricIndex(name string) int {
	for j, m := range Metrics {
		if m.Name == name {
			return j
		}
	}
	return -1
}

// CompleteMetricMatrix returns the submatrix of metrics for which every
// benchmark has a value — the paper uses the 33 such metrics for its PCA —
// along with their names.
func (t *SuiteTable) CompleteMetricMatrix() ([]string, [][]float64) {
	var cols []int
	var names []string
	for j, m := range Metrics {
		complete := true
		for i := range t.Benchmarks {
			if math.IsNaN(t.Values[i][j]) {
				complete = false
				break
			}
		}
		if complete {
			cols = append(cols, j)
			names = append(names, m.Name)
		}
	}
	data := make([][]float64, len(t.Benchmarks))
	for i := range data {
		data[i] = make([]float64, len(cols))
		for k, j := range cols {
			data[i][k] = t.Values[i][j]
		}
	}
	return names, data
}

// PCA runs the paper's diversity analysis over the complete-metric matrix:
// raw values, standard scaling, principal components.
func (t *SuiteTable) PCA() (names []string, res *pca.Result, err error) {
	names, data := t.CompleteMetricMatrix()
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("nominal: no complete metrics for PCA")
	}
	res, err = pca.Fit(data)
	return names, res, err
}

// Table2Metrics is the paper's Table 2 selection: the twelve most
// determinant nominal statistics as revealed by its PCA.
var Table2Metrics = []string{
	"GLK", "GMU", "PET", "PFS", "PKP", "PWU",
	"UAA", "UAI", "UBP", "UBR", "UBS", "USF",
}

// MostDeterminant ranks metrics by their summed absolute loadings over the
// top k principal components, weighted by explained variance — the analysis
// behind Table 2's selection.
func (t *SuiteTable) MostDeterminant(n, topComponents int) ([]string, error) {
	names, res, err := t.PCA()
	if err != nil {
		return nil, err
	}
	if topComponents > len(res.Components) {
		topComponents = len(res.Components)
	}
	weight := make([]float64, len(names))
	for c := 0; c < topComponents; c++ {
		for j := range names {
			weight[j] += math.Abs(res.Components[c][j]) * res.ExplainedVariance[c]
		}
	}
	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return weight[idx[a]] > weight[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = names[idx[i]]
	}
	return out, nil
}
