package stats

import (
	"math"
	"testing"
)

var (
	nan = math.NaN()
	inf = math.Inf(1)
)

// TestAggregateEdgeCases locks in the degraded-input contract: every
// aggregate is computed over finite samples only, and inputs with none yield
// defined zeros — never NaN and never a panic.
func TestAggregateEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		fn   func([]float64) float64
		want float64
	}{
		{"mean empty", nil, Mean, 0},
		{"mean single", []float64{7}, Mean, 7},
		{"mean all-NaN", []float64{nan, nan}, Mean, 0},
		{"mean skips NaN", []float64{2, nan, 4}, Mean, 3},
		{"mean skips Inf", []float64{2, inf, 4}, Mean, 3},
		{"mean skips -Inf", []float64{2, -inf, 4}, Mean, 3},

		{"geomean empty", nil, GeoMean, 0},
		{"geomean single", []float64{9}, GeoMean, 9},
		{"geomean pair", []float64{2, 8}, GeoMean, 4},
		{"geomean skips zero", []float64{2, 0, 8}, GeoMean, 4},
		{"geomean skips negative", []float64{2, -5, 8}, GeoMean, 4},
		{"geomean skips NaN", []float64{2, nan, 8}, GeoMean, 4},
		{"geomean skips Inf", []float64{2, inf, 8}, GeoMean, 4},
		{"geomean all invalid", []float64{0, -1, nan}, GeoMean, 0},

		{"stddev empty", nil, StdDev, 0},
		{"stddev single", []float64{5}, StdDev, 0},
		{"stddev pair", []float64{1, 3}, StdDev, math.Sqrt2},
		{"stddev one finite among NaN", []float64{5, nan, nan}, StdDev, 0},
		{"stddev skips NaN", []float64{1, nan, 3}, StdDev, math.Sqrt2},

		{"ci95 empty", nil, CI95, 0},
		{"ci95 single", []float64{5}, CI95, 0},
		{"ci95 one finite among NaN", []float64{5, nan}, CI95, 0},
	}
	for _, c := range cases {
		got := c.fn(c.in)
		if math.IsNaN(got) {
			t.Errorf("%s: got NaN, want %v", c.name, c.want)
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// TestCI95SkipsNaN checks the degrees of freedom follow the finite count:
// {1,3} with NaN noise must produce exactly the CI of {1,3}.
func TestCI95SkipsNaN(t *testing.T) {
	clean := CI95([]float64{1, 3})
	noisy := CI95([]float64{1, nan, 3, nan})
	if clean == 0 || clean != noisy {
		t.Fatalf("CI95 with NaN noise = %v, want %v", noisy, clean)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"single p0", []float64{42}, 0, 42},
		{"single p50", []float64{42}, 50, 42},
		{"single p100", []float64{42}, 100, 42},
		{"all-NaN", []float64{nan, nan}, 50, 0},
		{"NaN dropped", []float64{3, nan, 1, nan, 2}, 50, 2},
		{"NaN dropped p100", []float64{3, nan, 1}, 100, 3},
		{"below range", []float64{1, 2}, -5, 1},
		{"above range", []float64{1, 2}, 200, 2},
		{"interpolated", []float64{0, 10}, 25, 2.5},
		{"NaN rank", []float64{1, 2, 3}, nan, 0},
	}
	for _, c := range cases {
		got := Percentile(c.in, c.p)
		if math.IsNaN(got) {
			t.Errorf("%s: got NaN, want %v", c.name, c.want)
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zeros", s)
	}
	s := Summarize([]float64{nan, 4, inf, 2})
	if s.N != 2 {
		t.Fatalf("N = %d, want 2 finite samples", s.N)
	}
	if s.Min != 2 || s.Max != 4 || s.Mean != 3 {
		t.Fatalf("min/mean/max = %v/%v/%v, want 2/3/4", s.Min, s.Mean, s.Max)
	}
	if s = Summarize([]float64{nan}); s.N != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("Summarize all-NaN = %+v, want zeros", s)
	}
}

// TestTQuantileCoverage walks every df the CI code can request, so a gap in
// the sparse t-table (e.g. df 21-24 falling between table rows) can never
// return a zero critical value.
func TestTQuantileCoverage(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		q := tQuantile(df)
		if q < 1.960 {
			t.Fatalf("tQuantile(%d) = %v, below the normal limit 1.960", df, q)
		}
		if q > prev {
			t.Fatalf("tQuantile(%d) = %v rose above tQuantile(%d) = %v", df, q, df-1, prev)
		}
		prev = q
	}
	if q := tQuantile(0); q != 0 {
		t.Fatalf("tQuantile(0) = %v, want 0 (undefined df)", q)
	}
}
