package stats

import (
	"math"
	"math/rand"
	"sort"
)

// This file holds the two-sample machinery the perf-regression gate
// (internal/obs/benchdiff) builds on: a distribution-free location test and
// a resampled confidence interval on the median. Benchmark timing samples
// are small, skewed and contaminated by scheduler noise, so the normal-
// theory tools above (Student-t CIs on means) are the wrong instrument —
// rank and resampling statistics are the standard replacements (what
// benchstat uses).

// finite filters xs down to its ordinary numbers, per the package contract.
func finite(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if isFinite(x) {
			out = append(out, x)
		}
	}
	return out
}

// Median returns the 50th percentile of the finite values of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MannWhitneyU performs the two-sided Mann-Whitney U test (Wilcoxon
// rank-sum) on two independent samples. It returns the U statistic of the
// smaller-rank side and the two-sided p-value from the normal approximation
// with tie correction and continuity correction — accurate enough for the
// n >= 3 sample counts a benchmark gate sees, with no distributional
// assumption on the timings themselves.
//
// Degenerate inputs (an empty side, or all values tied so the rank variance
// vanishes) return p = 1: no evidence of a difference.
func MannWhitneyU(a, b []float64) (u, p float64) {
	a, b = finite(a), finite(b)
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}

	type obs struct {
		v    float64
		from int // 0 = a, 1 = b
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, x := range a {
		all = append(all, obs{x, 0})
	}
	for _, x := range b {
		all = append(all, obs{x, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks for ties, accumulating the tie-correction term Σ(t³−t).
	n := len(all)
	ranks := make([]float64, n)
	var tieTerm float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		if t := float64(j - i); t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}

	var r1 float64
	for i, o := range all {
		if o.from == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - n1*(n1+1)/2
	u2 := n1*n2 - u1
	u = math.Min(u1, u2)

	nn := n1 + n2
	variance := n1 * n2 / 12 * ((nn + 1) - tieTerm/(nn*(nn-1)))
	if variance <= 0 {
		return u, 1 // every observation tied: the test carries no information
	}
	mu := n1 * n2 / 2
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	p = math.Erfc(z / math.Sqrt2) // two-sided tail of the standard normal
	if p > 1 {
		p = 1
	}
	return u, p
}

// BootstrapMedianCI returns a 95% percentile-bootstrap confidence interval
// for the median of xs: iters resamples with replacement, each reduced to
// its median, with the interval read off the 2.5th and 97.5th percentiles
// of that bootstrap distribution. The generator is explicitly seeded so
// reports are reproducible run to run.
//
// Fewer than two finite samples yield a zero-width interval at the sample
// value (there is nothing to resample).
func BootstrapMedianCI(xs []float64, iters int, seed uint64) (lo, hi float64) {
	xs = finite(xs)
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	if iters <= 0 {
		iters = 1000
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	meds := make([]float64, iters)
	resample := make([]float64, len(xs))
	for i := 0; i < iters; i++ {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		sort.Float64s(resample)
		meds[i] = PercentileSorted(resample, 50)
	}
	sort.Float64s(meds)
	return PercentileSorted(meds, 2.5), PercentileSorted(meds, 97.5)
}
