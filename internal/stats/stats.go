// Package stats provides the descriptive statistics the paper's methodology
// requires: means, geometric means (the aggregate used for all cross-suite
// figures), standard deviations, Student-t 95% confidence intervals (the
// paper runs 10 invocations and plots 95% CIs), and percentiles.
package stats

import (
	"math"
	"sort"
)

// Every aggregate here is defined over the *finite* samples of its input:
// NaN and ±Inf are dropped rather than propagated, and an input with no
// usable samples yields 0, never a panic or NaN. A sweep cell whose one bad
// invocation produced a NaN must degrade that cell, not poison the
// cross-suite geomean it feeds.

// isFinite reports whether x is an ordinary number (not NaN or ±Inf).
func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// meanCount returns the mean over finite samples and how many there were.
func meanCount(xs []float64) (float64, int) {
	var sum float64
	var n int
	for _, x := range xs {
		if !isFinite(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Mean returns the arithmetic mean of the finite values of xs; 0 when there
// are none.
func Mean(xs []float64) float64 {
	m, _ := meanCount(xs)
	return m
}

// GeoMean returns the geometric mean of xs, the aggregation the paper uses
// for cross-benchmark overheads. Non-positive and non-finite values carry no
// usable magnitude on a log scale and are dropped; 0 is returned when no
// value qualifies.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x <= 0 || !isFinite(x) {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// StdDev returns the sample standard deviation (n-1 denominator) of the
// finite values of xs; 0 with fewer than two of them.
func StdDev(xs []float64) float64 {
	m, n := meanCount(xs)
	if n < 2 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		if !isFinite(x) {
			continue
		}
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tTable holds two-sided 97.5% Student-t quantiles for small degrees of
// freedom; beyond the table the normal approximation is used.
var tTable = []float64{
	0:  0, // unused
	1:  12.706,
	2:  4.303,
	3:  3.182,
	4:  2.776,
	5:  2.571,
	6:  2.447,
	7:  2.365,
	8:  2.306,
	9:  2.262,
	10: 2.228,
	11: 2.201,
	12: 2.179,
	13: 2.160,
	14: 2.145,
	15: 2.131,
	16: 2.120,
	17: 2.110,
	18: 2.101,
	19: 2.093,
	20: 2.086,
	25: 2.060,
	30: 2.042,
}

// tQuantile returns the two-sided 95% Student-t critical value for df
// degrees of freedom.
func tQuantile(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= 20 {
		return tTable[df]
	}
	if df <= 25 {
		return tTable[25]
	}
	if df <= 30 {
		return tTable[30]
	}
	return 1.960
}

// CI95 returns the half-width of the 95% confidence interval of the mean of
// the finite values of xs, using the Student-t distribution as the paper's
// plots do; 0 with fewer than two usable samples.
func CI95(xs []float64) float64 {
	_, n := meanCount(xs)
	if n < 2 {
		return 0
	}
	return tQuantile(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// Summary bundles the statistics reported for one measured quantity.
type Summary struct {
	// N counts the finite samples the other fields are computed over.
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over the finite values of xs.
func Summarize(xs []float64) Summary {
	_, n := meanCount(xs)
	s := Summary{N: n, Mean: Mean(xs), StdDev: StdDev(xs), CI95: CI95(xs)}
	first := true
	for _, x := range xs {
		if !isFinite(x) {
			continue
		}
		if first {
			s.Min, s.Max = x, x
			first = false
			continue
		}
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics, matching the conventional
// definition used for latency distributions. xs need not be sorted. Like
// every aggregate in this package it is defined over the finite samples
// only: NaN and ±Inf are dropped (a +Inf sample would otherwise pin every
// upper tail quantile at +Inf and poison interpolated ranks with NaN), and
// 0 is returned when nothing remains.
func Percentile(xs []float64, p float64) float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if isFinite(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// Tail returns the given percentiles of xs in one pass: one finite-sample
// filter and sort shared across all quantiles, for callers (SLA ladders,
// fleet SLO reports) that read p50/p99/p99.9/max off the same distribution.
// The result is index-aligned with ps; every entry is 0 when no finite
// samples remain.
func Tail(xs []float64, ps ...float64) []float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if isFinite(x) {
			sorted = append(sorted, x)
		}
	}
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	if len(sorted) == 0 {
		return out
	}
	for i, p := range ps {
		out[i] = PercentileSorted(sorted, p)
	}
	return out
}

// PercentileSorted is Percentile over an already-sorted, NaN-free slice,
// avoiding the copy for repeated queries. A NaN rank query returns 0.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 || math.IsNaN(p) {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Rank assigns descending ranks (1 = largest) to vals, resolving ties by
// first occurrence; it mirrors the paper's nominal-statistic ranking.
func Rank(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	ranks := make([]int, len(vals))
	for r, i := range idx {
		ranks[i] = r + 1
	}
	return ranks
}

// ScoreFromRank linearly maps rank 1..n (1 = largest value) onto a score
// 10..1 as the paper's nominal statistics do: 10 is the highest-ranked
// benchmark, 1 (or 0 for very large suites) the lowest.
func ScoreFromRank(rank, n int) int {
	if n <= 1 {
		return 10
	}
	score := int(math.Round(10 - 9*float64(rank-1)/float64(n-1)))
	if score < 0 {
		score = 0
	}
	if score > 10 {
		score = 10
	}
	return score
}
