package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Extreme-tail quantile audit: the fleet's SLO report reads p99/p99.9 off
// latency distributions that can legitimately contain a handful of enormous
// samples (a request queued behind a full GC) and, before the finite-sample
// fix, could contain ±Inf from degenerate rate math. These properties pin
// the quantile semantics the SLA ladder depends on.

// naivePercentile is an independent reference implementation: sort, linear
// interpolation between order statistics.
func naivePercentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func TestPercentileMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 1e6
		}
		for _, p := range []float64{0, 1, 25, 50, 75, 90, 99, 99.9, 99.99, 100} {
			got := Percentile(xs, p)
			want := naivePercentile(xs, p)
			if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("p%v of %v = %v, reference %v", p, xs, got, want)
			}
		}
	}
}

// TestPercentileMonotoneInP: for any sample set, the quantile function is
// non-decreasing in p all the way into the extreme tail.
func TestPercentileMonotoneInP(t *testing.T) {
	f := func(xs []float64) bool {
		prev := math.Inf(-1)
		any := false
		for _, x := range xs {
			if isFinite(x) {
				any = true
			}
		}
		if !any {
			return true
		}
		for _, p := range []float64{0, 10, 50, 90, 99, 99.9, 99.99, 100, 150} {
			q := Percentile(xs, p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentileExtremeTail: p100 is the max, p≥100 clamps, and with n
// samples p99.9 lands between the two largest order statistics.
func TestPercentileExtremeTail(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 1e12, 7} // one catastrophic outlier
	if got := Percentile(xs, 100); got != 1e12 {
		t.Fatalf("p100 = %v, want the max", got)
	}
	if got := Percentile(xs, 250); got != 1e12 {
		t.Fatalf("p250 = %v, want clamped to max", got)
	}
	p999 := Percentile(xs, 99.9)
	if p999 <= 9 || p999 > 1e12 {
		t.Fatalf("p99.9 = %v, want within (second-largest, max]", p999)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v, want the min", got)
	}
	if got := Percentile([]float64{3, 1}, 50); got != 2 {
		t.Fatalf("median of {1,3} = %v, want interpolated 2", got)
	}
}

// TestPercentileDropsNonFinite is the regression test for the audit's bug: a
// single +Inf latency sample (a degenerate rate division upstream) used to
// pin every upper quantile at +Inf and poison interpolated ranks with NaN.
func TestPercentileDropsNonFinite(t *testing.T) {
	finite := []float64{1, 2, 3, 4, 5}
	polluted := append([]float64{math.Inf(1), math.Inf(-1), math.NaN()}, finite...)
	for _, p := range []float64{0, 50, 99, 99.9, 100} {
		got := Percentile(polluted, p)
		want := Percentile(finite, p)
		if got != want {
			t.Fatalf("p%v with non-finite pollution = %v, want %v", p, got, want)
		}
	}
	if got := Percentile([]float64{math.Inf(1), math.NaN()}, 99); got != 0 {
		t.Fatalf("all-non-finite p99 = %v, want 0", got)
	}
}

// TestTailAlignsWithPercentile: Tail's shared-sort fast path must agree with
// independent Percentile calls, index-aligned with its ps.
func TestTailAlignsWithPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 1e6
	}
	xs[17] = math.Inf(1) // pollution must be dropped identically
	ps := []float64{50, 90, 99, 99.9, 100}
	got := Tail(xs, ps...)
	if len(got) != len(ps) {
		t.Fatalf("Tail returned %d values for %d ps", len(got), len(ps))
	}
	for i, p := range ps {
		if want := Percentile(xs, p); got[i] != want {
			t.Fatalf("Tail p%v = %v, Percentile = %v", p, got[i], want)
		}
	}
	if empty := Tail(nil, 50, 99); empty[0] != 0 || empty[1] != 0 {
		t.Fatalf("Tail of nothing = %v, want zeros", empty)
	}
}
