package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("mean of empty = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", got)
	}
	if got := GeoMean([]float64{3, 3, 3}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("geomean = %v, want 3", got)
	}
}

func TestGeoMeanDropsNonPositive(t *testing.T) {
	// Non-positive values have no log-scale magnitude; they are dropped
	// rather than panicking, so one broken cell degrades instead of killing
	// a whole suite aggregation (see edge_test.go for the full contract).
	if got := GeoMean([]float64{1, 0}); got != 1 {
		t.Fatalf("GeoMean([1,0]) = %v, want 1", got)
	}
}

func TestStdDevKnownValue(t *testing.T) {
	// sample stddev of {2,4,4,4,5,5,7,9} is ~2.138 (n-1 denominator).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("stddev = %v, want 2.138", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("stddev of singleton should be 0")
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=10, df=9, t=2.262; stddev of 1..10 is ~3.0277.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	want := 2.262 * StdDev(xs) / math.Sqrt(10)
	if got := CI95(xs); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
}

func TestCI95LargeSampleUsesNormal(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 7)
	}
	want := 1.960 * StdDev(xs) / 10
	if got := CI95(xs); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 50); math.Abs(got-25) > 1e-9 {
		t.Fatalf("p50 = %v, want 25", got)
	}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v, want 10", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("p100 = %v, want 40", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %v", got)
	}
}

func TestRank(t *testing.T) {
	ranks := Rank([]float64{10, 30, 20})
	want := []int{3, 1, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestRankTiesStable(t *testing.T) {
	ranks := Rank([]float64{5, 5, 5})
	want := []int{1, 2, 3}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("tied ranks = %v, want %v", ranks, want)
		}
	}
}

func TestScoreFromRank(t *testing.T) {
	// 22 benchmarks, like the suite: rank 1 -> 10, rank 22 -> 1.
	if got := ScoreFromRank(1, 22); got != 10 {
		t.Fatalf("score(1) = %d, want 10", got)
	}
	if got := ScoreFromRank(22, 22); got != 1 {
		t.Fatalf("score(22) = %d, want 1", got)
	}
	mid := ScoreFromRank(11, 22)
	if mid < 5 || mid > 6 {
		t.Fatalf("score(11) = %d, want 5 or 6", mid)
	}
}

func TestQuickGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		min, max := math.Inf(1), 0.0
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			min = math.Min(min, xs[i])
			max = math.Max(max, xs[i])
		}
		g := GeoMean(xs)
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRankIsPermutation(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		ranks := Rank(vals)
		seen := make([]bool, len(ranks))
		for _, r := range ranks {
			if r < 1 || r > len(ranks) || seen[r-1] {
				return false
			}
			seen[r-1] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTQuantileBands(t *testing.T) {
	// Exercise each branch of the t-table lookup.
	cases := map[int]float64{
		1:   12.706,
		9:   2.262,
		20:  2.086,
		23:  2.060, // 21..25 band
		28:  2.042, // 26..30 band
		100: 1.960, // normal approximation
	}
	for df, want := range cases {
		xs := make([]float64, df+1)
		for i := range xs {
			xs[i] = float64(i % 5)
		}
		wantCI := want * StdDev(xs) / math.Sqrt(float64(df+1))
		if got := CI95(xs); math.Abs(got-wantCI) > 1e-9 {
			t.Errorf("df=%d: CI = %v, want %v", df, got, wantCI)
		}
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI of singleton should be 0")
	}
}

func TestScoreFromRankClamps(t *testing.T) {
	if got := ScoreFromRank(5, 1); got != 10 {
		t.Fatalf("single-benchmark score = %d, want 10", got)
	}
	for rank := 1; rank <= 22; rank++ {
		s := ScoreFromRank(rank, 22)
		if s < 1 || s > 10 {
			t.Fatalf("score(%d,22) = %d out of range", rank, s)
		}
	}
	// Scores are monotone in rank.
	prev := 11
	for rank := 1; rank <= 22; rank++ {
		s := ScoreFromRank(rank, 22)
		if s > prev {
			t.Fatalf("score increased with rank at %d", rank)
		}
		prev = s
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}
