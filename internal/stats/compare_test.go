package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("Median = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("Median = %v, want 2.5", m)
	}
	if m := Median([]float64{1, math.NaN(), 3}); m != 2 {
		t.Fatalf("Median with NaN = %v, want 2", m)
	}
}

// TestMannWhitneyKnownValue checks the U statistic against a hand-computed
// example (no ties): a = {1,2,3}, b = {4,5,6} is maximal separation, U = 0.
func TestMannWhitneyKnownValue(t *testing.T) {
	u, p := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6})
	if u != 0 {
		t.Fatalf("U = %v, want 0 for fully separated samples", u)
	}
	if p >= 0.2 || p <= 0 {
		t.Fatalf("p = %v, want small but nonzero (normal approximation)", p)
	}
	// Symmetry: swapping the samples changes nothing.
	u2, p2 := MannWhitneyU([]float64{4, 5, 6}, []float64{1, 2, 3})
	if u2 != u || p2 != p {
		t.Fatalf("test not symmetric: (%v,%v) vs (%v,%v)", u, p, u2, p2)
	}
}

// TestMannWhitneyInterleaved checks overlapping samples are not flagged.
func TestMannWhitneyInterleaved(t *testing.T) {
	_, p := MannWhitneyU([]float64{1, 3, 5, 7}, []float64{2, 4, 6, 8})
	if p < 0.4 {
		t.Fatalf("interleaved samples got p = %v, want clearly insignificant", p)
	}
}

// TestMannWhitneyDetectsShift checks a real location shift at realistic
// benchmark sample counts is detected.
func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var a, b []float64
	for i := 0; i < 10; i++ {
		a = append(a, 100+rng.Float64()*2)
		b = append(b, 120+rng.Float64()*2) // 20% slower, tiny noise
	}
	_, p := MannWhitneyU(a, b)
	if p >= 0.01 {
		t.Fatalf("clear 20%% shift got p = %v, want < 0.01", p)
	}
}

// TestMannWhitneyDegenerate locks the no-information paths: empty sides and
// all-tied samples must say "no evidence" (p=1), never NaN.
func TestMannWhitneyDegenerate(t *testing.T) {
	if _, p := MannWhitneyU(nil, []float64{1, 2}); p != 1 {
		t.Fatalf("empty side: p = %v, want 1", p)
	}
	if _, p := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Fatalf("all tied: p = %v, want 1", p)
	}
	if _, p := MannWhitneyU([]float64{math.NaN()}, []float64{1}); p != 1 {
		t.Fatalf("NaN-only side: p = %v, want 1", p)
	}
}

// TestMannWhitneyTieCorrection checks heavy ties still yield a finite,
// sane p-value (the tie-corrected variance stays positive).
func TestMannWhitneyTieCorrection(t *testing.T) {
	a := []float64{1, 1, 1, 2, 2}
	b := []float64{1, 2, 2, 2, 3}
	_, p := MannWhitneyU(a, b)
	if math.IsNaN(p) || p <= 0 || p > 1 {
		t.Fatalf("tied samples: p = %v, want in (0,1]", p)
	}
}

// TestBootstrapMedianCI checks the interval brackets the true median, is
// deterministic under a fixed seed, and moves with the seed.
func TestBootstrapMedianCI(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = 100 + rng.NormFloat64()*5
	}
	lo, hi := BootstrapMedianCI(xs, 500, 1)
	if !(lo <= hi) {
		t.Fatalf("inverted interval [%v, %v]", lo, hi)
	}
	med := Median(xs)
	if med < lo || med > hi {
		t.Fatalf("sample median %v outside bootstrap interval [%v, %v]", med, lo, hi)
	}
	if hi-lo <= 0 || hi-lo > 20 {
		t.Fatalf("implausible interval width %v", hi-lo)
	}
	lo2, hi2 := BootstrapMedianCI(xs, 500, 1)
	if lo2 != lo || hi2 != hi {
		t.Fatal("same seed produced a different interval")
	}
}

func TestBootstrapMedianCIDegenerate(t *testing.T) {
	if lo, hi := BootstrapMedianCI(nil, 100, 1); lo != 0 || hi != 0 {
		t.Fatalf("empty input: [%v, %v], want [0, 0]", lo, hi)
	}
	if lo, hi := BootstrapMedianCI([]float64{42}, 100, 1); lo != 42 || hi != 42 {
		t.Fatalf("single sample: [%v, %v], want [42, 42]", lo, hi)
	}
}
