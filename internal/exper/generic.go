package exper

import (
	"encoding/json"
	"sync/atomic"
	"time"

	"chopin/internal/obs"
	"chopin/internal/persist"
)

// Generic jobs: arbitrary cacheable computations under the engine's
// machinery. Subsystems above workload.Run — fleet sweep cells, future
// composite experiments — need the same single-flight deduplication,
// in-process memoization, persistent caching and pooled execution the
// invocation path has, but their results are not workload.Results. A generic
// job is keyed by the content hash of a caller-supplied parameter payload
// and resolves to an opaque JSON blob the caller owns both sides of.
//
// The contract: the run function must be a pure function of the payload
// (that is what makes the cache sound), its result must be stable across
// processes, and errors are treated as transient — never cached, so a
// failed cell re-runs on the next attempt. Callers whose domain has
// cacheable failure outcomes (a fleet replica OOMing is a stable property
// of the cell) encode them inside the returned payload.

// genOutcome is one generic job's resolution.
type genOutcome struct {
	data []byte
	err  error
}

// genCall is one in-flight generic execution, shared by deduplicated
// tickets. out is written before done closes and read only after it.
type genCall struct {
	done chan struct{}
	out  genOutcome
}

// GenericTicket is a handle to a submitted generic job.
type GenericTicket struct {
	key Key
	c   *genCall
}

// Wait blocks until the job completes and returns its payload.
func (t *GenericTicket) Wait() ([]byte, error) {
	<-t.c.done
	return t.c.out.data, t.c.out.err
}

// Key returns the job's canonical content hash.
func (t *GenericTicket) Key() Key { return t.key }

// GenericKey computes the canonical content hash of a generic job: the
// schema version, the namespaced job kind, and the caller's parameter
// payload in canonical JSON. Payloads must marshal deterministically (no
// maps with more than one key ordering — struct types do).
func GenericKey(kind string, payload any) (Key, error) {
	return hashPayload(struct {
		Schema  int    `json:"schema"`
		Kind    string `json:"kind"`
		Payload any    `json:"payload"`
	}{schemaVersion, "generic:" + kind, payload})
}

// SubmitGeneric registers a generic job and returns immediately with a
// ticket for its outcome. kind namespaces the job family (it participates
// in the key and labels progress events); payload is the job's complete
// parameter set; run computes the result, receiving a Recorder that buffers
// the job's telemetry for batch flush at the job boundary exactly like an
// invocation job's. Identical in-flight submissions coalesce onto one
// execution, completed ones are satisfied from the in-process memo (when
// enabled) or the persistent cache.
func (e *Engine) SubmitGeneric(kind string, payload any, run func(rec obs.Recorder) ([]byte, error)) (*GenericTicket, error) {
	k, err := GenericKey(kind, payload)
	if err != nil {
		return nil, err
	}
	sh := e.shard(k)
	sh.mu.Lock()
	if out, ok := sh.genMemo[k]; ok {
		sh.mu.Unlock()
		atomic.AddInt64(&e.memoHits, 1)
		c := &genCall{done: make(chan struct{}), out: out}
		close(c.done)
		return &GenericTicket{key: k, c: c}, nil
	}
	if c, ok := sh.geninflight[k]; ok {
		sh.mu.Unlock()
		atomic.AddInt64(&e.deduped, 1)
		return &GenericTicket{key: k, c: c}, nil
	}
	c := &genCall{done: make(chan struct{})}
	sh.geninflight[k] = c
	sh.mu.Unlock()

	e.emit(Event{Kind: JobQueued, Key: k, Benchmark: kind})
	if !e.pool.submit(func() { e.runGeneric(kind, k, c, run) }, laneGrid) {
		// Pool already closed: execute inline in the submitter, same
		// no-drop contract as ordinary jobs.
		e.runGeneric(kind, k, c, run)
	}
	return &GenericTicket{key: k, c: c}, nil
}

// RunGeneric executes one generic job synchronously: SubmitGeneric + Wait.
func (e *Engine) RunGeneric(kind string, payload any, run func(rec obs.Recorder) ([]byte, error)) ([]byte, error) {
	t, err := e.SubmitGeneric(kind, payload, run)
	if err != nil {
		return nil, err
	}
	return t.Wait()
}

// runGeneric is the single flight for a registered generic call.
func (e *Engine) runGeneric(kind string, k Key, c *genCall, run func(rec obs.Recorder) ([]byte, error)) {
	out := e.executeGeneric(kind, k, run)
	sh := e.shard(k)
	sh.mu.Lock()
	delete(sh.geninflight, k)
	if e.memoize && out.err == nil {
		sh.genMemo[k] = out
	}
	sh.mu.Unlock()
	c.out = out
	close(c.done)
}

// executeGeneric satisfies a generic job from the cache or runs it, on the
// calling (worker) goroutine.
func (e *Engine) executeGeneric(kind string, k Key, run func(rec obs.Recorder) ([]byte, error)) genOutcome {
	if e.cache != nil {
		if rec, ok := e.cache.getGeneric(k); ok {
			atomic.AddInt64(&e.cacheHits, 1)
			e.emit(Event{Kind: JobCacheHit, Key: k, Benchmark: kind})
			e.recordGeneric(obs.KindCacheHit, kind, k, 0, "")
			return genOutcome{data: []byte(rec.Data)}
		}
		e.recordGeneric(obs.KindCacheMiss, kind, k, 0, "")
	}

	// Telemetry buffering mirrors the invocation path: the run's events land
	// in a worker-owned buffer, flushed to the shared sink in one batch at
	// the job boundary.
	rec := obs.Recorder(obs.Nop)
	var buf *jobRecorder
	if e.rec.Enabled() || e.traceDir != "" {
		buf = e.bufs.Get().(*jobRecorder)
		buf.reset(string(k), kind, "")
		rec = buf
	}

	e.emit(Event{Kind: JobStarted, Key: k, Benchmark: kind})
	e.recordGeneric(obs.KindJobStart, kind, k, 0, "")
	hostStart := time.Now()
	data, err := run(rec)
	atomic.AddInt64(&e.executed, 1)

	if buf != nil {
		obs.RecordAll(e.rec, buf.events)
		if e.traceDir != "" {
			if werr := e.writeJobTrace(k, buf.events); werr != nil && err == nil {
				err = werr
			}
		}
		e.bufs.Put(buf)
	}

	if err != nil {
		atomic.AddInt64(&e.failures, 1)
		e.recordGeneric(obs.KindJobFinish, kind, k, float64(time.Since(hostStart)), err.Error())
		e.emit(Event{Kind: JobFailed, Key: k, Benchmark: kind, Err: err.Error()})
		return genOutcome{err: err}
	}
	e.recordGeneric(obs.KindJobFinish, kind, k, float64(time.Since(hostStart)), "")
	if e.cache != nil {
		e.cache.putGeneric(k, &persist.GenericRecord{
			Key: string(k), Kind: kind, Data: json.RawMessage(data),
		})
	}
	e.emit(Event{Kind: JobFinished, Key: k, Benchmark: kind})
	return genOutcome{data: data}
}

// recordGeneric emits an engine-level telemetry event for a generic job.
func (e *Engine) recordGeneric(kind obs.Kind, jobKind string, k Key, dur float64, errStr string) {
	if !e.rec.Enabled() {
		return
	}
	e.rec.Record(obs.Event{
		Kind:      kind,
		TNS:       time.Now().UnixNano(),
		Run:       string(k),
		Benchmark: jobKind,
		DurNS:     dur,
		Err:       errStr,
	})
}
