package exper

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"chopin/internal/gc"
	"chopin/internal/workload"
)

// CLI bundles the engine flags every experiment command shares: cache
// location, forced cold re-runs, worker count and progress reporting.
// Register the flags on the command's FlagSet, then Build an engine after
// parsing.
type CLI struct {
	CacheDir string
	Cold     bool
	Progress bool
	Workers  int
}

// RegisterFlags installs the shared engine flags. cacheDefault seeds -cache
// (empty disables caching unless the user opts in).
func (c *CLI) RegisterFlags(fs *flag.FlagSet, cacheDefault string) {
	fs.StringVar(&c.CacheDir, "cache", cacheDefault, "result cache directory ('none' or empty disables caching)")
	fs.BoolVar(&c.Cold, "cold", false, "ignore cached results and re-run every invocation (fresh results still cached)")
	fs.BoolVar(&c.Progress, "progress", false, "print per-invocation progress events")
	fs.IntVar(&c.Workers, "workers", 0, "concurrent invocations (0 = NumCPU)")
}

// Build opens the cache (if configured) and starts an engine. Progress
// events go to w, prefixed like "runbms: ".
func (c *CLI) Build(w io.Writer, prefix string) (*Engine, error) {
	opt := Options{Workers: c.Workers}
	if c.CacheDir != "" && c.CacheDir != "none" {
		mode := ReadWrite
		if c.Cold {
			mode = WriteOnly
		}
		cache, err := OpenCache(c.CacheDir, mode)
		if err != nil {
			return nil, err
		}
		opt.Cache = cache
	}
	if c.Progress {
		opt.Observer = Progress(w, prefix)
	}
	return New(opt), nil
}

// Summary formats the engine's counters as a one-line run report.
func Summary(s Stats) string {
	return fmt.Sprintf("%d invocations run, %d from cache (%d OOM, %d failed)",
		s.Executed, s.CacheHits, s.OOMs, s.Failures)
}

// SelectBenchmarks resolves a comma-separated benchmark list, defaulting to
// the whole suite when empty.
func SelectBenchmarks(list string) ([]*workload.Descriptor, error) {
	if list == "" {
		return workload.All(), nil
	}
	var ds []*workload.Descriptor
	for _, name := range strings.Split(list, ",") {
		d, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	return ds, nil
}

// ParseFactors parses a comma-separated list of positive heap factors; an
// empty string means "use the defaults" (nil).
func ParseFactors(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad heap factor %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

// ParseCollectors parses a comma-separated list of collector names; an
// empty string means "use the defaults" (nil).
func ParseCollectors(s string) ([]gc.Kind, error) {
	if s == "" {
		return nil, nil
	}
	var out []gc.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := gc.ParseKind(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}
