package exper

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof serves the standard profiling endpoints
	"os"
	"runtime/trace"
	"strconv"
	"strings"

	"chopin/internal/gc"
	"chopin/internal/obs"
	"chopin/internal/workload"
)

// CLI bundles the engine flags every experiment command shares: cache
// location, forced cold re-runs, worker count, progress reporting and the
// observability trio (-telemetry, -pprof, -trace). Register the flags on the
// command's FlagSet, Build an engine after parsing, and Close when the
// command finishes so telemetry and trace buffers reach disk.
type CLI struct {
	CacheDir  string
	Cold      bool
	Progress  bool
	Workers   int
	Ladder    int
	Speculate string
	Telemetry string
	Pprof     string
	Trace     string
	JobTraces string

	// Extra, when non-nil, receives every telemetry event alongside (or
	// instead of) the -telemetry sink. Commands set an obs.Buffer here to
	// keep a run's events in memory for post-run rendering — cmd/fleet's
	// -timeline and -trace-out flags work this way.
	Extra obs.Recorder

	eng       *Engine
	telem     *obs.JSONL
	telemFile *os.File
	traceFile *os.File
	pprofSrv  *http.Server
}

// RegisterFlags installs the shared engine flags. cacheDefault seeds -cache
// (empty disables caching unless the user opts in).
func (c *CLI) RegisterFlags(fs *flag.FlagSet, cacheDefault string) {
	fs.StringVar(&c.CacheDir, "cache", cacheDefault, "result cache directory ('none' or empty disables caching)")
	fs.BoolVar(&c.Cold, "cold", false, "ignore cached results and re-run every invocation (fresh results still cached)")
	fs.BoolVar(&c.Progress, "progress", false, "print per-invocation progress events")
	fs.IntVar(&c.Workers, "workers", 0, "concurrent invocations (0 = NumCPU)")
	fs.IntVar(&c.Ladder, "ladder", 0, "min-heap probe ladder width (0 = auto: min(workers, NumCPU) capped at 8; 1 = sequential search)")
	fs.StringVar(&c.Speculate, "speculate", "auto", "speculative grid submission from unvalidated min-heap candidates: auto, on or off")
	fs.StringVar(&c.Telemetry, "telemetry", "", "write per-run telemetry events to this JSONL file (summarize with obsreport)")
	fs.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&c.Trace, "trace", "", "write a runtime/trace execution trace to this file")
	fs.StringVar(&c.JobTraces, "job-traces", "", "write one Chrome trace-event JSON timeline per executed job into this directory")
}

// Build opens the cache (if configured), the telemetry sink and profiling
// outputs, and starts an engine. Progress events go to w, prefixed like
// "runbms: ". Call Close once the command's work is done.
func (c *CLI) Build(w io.Writer, prefix string) (*Engine, error) {
	opt := Options{Workers: c.Workers, LadderWidth: c.Ladder, TraceDir: c.JobTraces}
	switch c.Speculate {
	case "", "auto":
		opt.Speculate = SpecAuto
	case "on":
		opt.Speculate = SpecOn
	case "off":
		opt.Speculate = SpecOff
	default:
		return nil, fmt.Errorf("bad -speculate %q (want auto, on or off)", c.Speculate)
	}
	if c.CacheDir != "" && c.CacheDir != "none" {
		mode := ReadWrite
		if c.Cold {
			mode = WriteOnly
		}
		cache, err := OpenCache(c.CacheDir, mode)
		if err != nil {
			return nil, err
		}
		opt.Cache = cache
	}
	if c.Progress {
		opt.Observer = Progress(w, prefix)
	}
	if c.Telemetry != "" {
		f, err := os.Create(c.Telemetry)
		if err != nil {
			return nil, fmt.Errorf("opening telemetry sink: %w", err)
		}
		c.telemFile = f
		c.telem = obs.NewJSONL(f)
	}
	var recs []obs.Recorder
	if c.telem != nil {
		recs = append(recs, c.telem)
	}
	if c.Extra != nil {
		recs = append(recs, c.Extra)
	}
	if rec := obs.Multi(recs...); rec.Enabled() {
		opt.Recorder = rec
	}
	if c.Trace != "" {
		f, err := os.Create(c.Trace)
		if err != nil {
			return nil, fmt.Errorf("opening trace output: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting runtime trace: %w", err)
		}
		c.traceFile = f
	}
	if c.Pprof != "" {
		srv := &http.Server{Addr: c.Pprof} // DefaultServeMux carries the pprof handlers
		c.pprofSrv = srv
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(w, "%spprof server: %v\n", prefix, err)
			}
		}()
	}
	c.eng = New(opt)
	return c.eng, nil
}

// Close shuts down the engine — draining the pool and flushing the
// write-behind result cache to disk — then flushes and closes the telemetry
// sink, stops the runtime trace and shuts down the pprof server. Skipping it
// loses whatever tail of cached results is still queued behind the cache
// writer. It is safe to call when none were enabled.
func (c *CLI) Close() error {
	var first error
	if c.eng != nil {
		if err := c.eng.Close(); err != nil && first == nil {
			first = err
		}
		c.eng = nil
	}
	if c.telem != nil {
		if err := c.telem.Close(); err != nil && first == nil {
			first = err
		}
		if err := c.telemFile.Close(); err != nil && first == nil {
			first = err
		}
		c.telem, c.telemFile = nil, nil
	}
	if c.traceFile != nil {
		trace.Stop()
		if err := c.traceFile.Close(); err != nil && first == nil {
			first = err
		}
		c.traceFile = nil
	}
	if c.pprofSrv != nil {
		c.pprofSrv.Close()
		c.pprofSrv = nil
	}
	return first
}

// CloseOrWarn closes the CLI's observability outputs, reporting any flush
// error to w — for deferred use in commands, where a torn telemetry file
// should warn but not change the exit status.
func (c *CLI) CloseOrWarn(w io.Writer, prefix string) {
	if err := c.Close(); err != nil {
		fmt.Fprintf(w, "%s%v\n", prefix, err)
	}
}

// Summary formats the engine's counters as a one-line run report.
func Summary(s Stats) string {
	return fmt.Sprintf("%d invocations run, %d from cache (%d OOM, %d failed)",
		s.Executed, s.CacheHits, s.OOMs, s.Failures)
}

// SelectBenchmarks resolves a comma-separated benchmark list, defaulting to
// the whole suite when empty.
func SelectBenchmarks(list string) ([]*workload.Descriptor, error) {
	if list == "" {
		return workload.All(), nil
	}
	var ds []*workload.Descriptor
	for _, name := range strings.Split(list, ",") {
		d, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	return ds, nil
}

// ParseFactors parses a comma-separated list of positive heap factors; an
// empty string means "use the defaults" (nil).
func ParseFactors(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad heap factor %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

// ParseCollectors parses a comma-separated list of collector names; an
// empty string means "use the defaults" (nil).
func ParseCollectors(s string) ([]gc.Kind, error) {
	if s == "" {
		return nil, nil
	}
	var out []gc.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := gc.ParseKind(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}
