package exper

import (
	"os"
	"path/filepath"
	"testing"

	"chopin/internal/persist"
)

func testRecord(k Key) *persist.InvocationRecord {
	return &persist.InvocationRecord{
		Key: string(k), Workload: "lusearch", Collector: "G1",
		HeapMB: 100, OOM: true, // OOM-only record keeps the fixture tiny
	}
}

// TestOpenCacheSweepsOrphanedTemps kills-and-restarts in miniature: a run
// that dies between write and rename leaves *.tmp debris that no future
// rename will ever publish. Opening the cache must clear it while leaving
// completed archives untouched.
func TestOpenCacheSweepsOrphanedTemps(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k := Key("abcdef0123456789")
	if err := c.putInvocation(k, testRecord(k)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Plant debris at both levels a torn write can leave it.
	orphans := []string{
		c.path(k) + ".tmp",
		filepath.Join(dir, "ff", "fedcba.json.tmp"),
		filepath.Join(dir, "stray.tmp"),
	}
	for _, p := range orphans {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(`{"version":2,"ki`), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c2, err := OpenCache(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived reopen", p)
		}
	}
	rec, ok := c2.getInvocation(k)
	if !ok || rec.Key != string(k) {
		t.Fatalf("completed archive lost by the sweep: ok=%v rec=%+v", ok, rec)
	}
}

// TestTruncatedArchiveIsMiss writes a valid archive, tears it at every
// prefix length that could arise from a partial write, and checks each torn
// state registers as a cache miss the job layer can heal by re-running —
// never an error, never a bogus hit.
func TestTruncatedArchiveIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k := Key("0011223344556677")
	if err := c.putInvocation(k, testRecord(k)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(c.path(k))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.getInvocation(k); !ok {
		t.Fatal("intact archive should hit")
	}

	for _, n := range []int{0, 1, len(whole) / 2, len(whole) - 1} {
		if err := os.WriteFile(c.path(k), whole[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.getInvocation(k); ok {
			t.Fatalf("archive truncated to %d bytes served as a hit", n)
		}
	}

	// The miss is recoverable: a re-run's put repairs the entry in place.
	if err := c.putInvocation(k, testRecord(k)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.getInvocation(k); !ok {
		t.Fatal("rewritten archive should hit again")
	}
}

// TestWrongKeyArchiveIsMiss guards the content-address check: an archive
// whose embedded key disagrees with its filename (say, a hand-copied file)
// must not be served for the key it squats on.
func TestWrongKeyArchiveIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	k := Key("8899aabbccddeeff")
	other := Key("1122334455667788")
	if err := persist.SaveInvocation(c.path(k), testRecord(other)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.getInvocation(k); ok {
		t.Fatal("archive with mismatched key served as a hit")
	}
}
