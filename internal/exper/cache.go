package exper

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"chopin/internal/persist"
)

// CacheMode selects how the engine uses its persistent cache.
type CacheMode int

const (
	// ReadWrite is the normal resumable mode: completed jobs are skipped
	// via cache hits, new results are written back.
	ReadWrite CacheMode = iota
	// WriteOnly forces a cold re-run: every job executes, and the fresh
	// results overwrite the cached ones for the next warm run.
	WriteOnly
)

// Cache is the content-addressed, invocation-level result store: one
// persist archive per job key, sharded two-hex-characters deep
// (dir/ab/abcdef….json) so large plans do not pile thousands of files into
// one directory. Writes are atomic (write-then-rename in persist), so a
// killed run leaves only complete archives behind — which is what makes
// plans resumable.
type Cache struct {
	dir  string
	mode CacheMode
}

// OpenCache opens (creating if necessary) a result cache rooted at dir.
func OpenCache(dir string, mode CacheMode) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("exper: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exper: opening cache: %w", err)
	}
	sweepTemps(dir)
	return &Cache{dir: dir, mode: mode}, nil
}

// sweepTemps removes write-then-rename debris a killed run leaves behind. A
// *.tmp file is never a valid archive — the rename that would have published
// it did not happen — so deleting it on open is always safe, and keeps the
// orphans from accumulating under long-lived cache directories. Best effort:
// a file another process races us for is someone else's problem.
func sweepTemps(dir string) {
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.HasSuffix(d.Name(), ".tmp") {
			os.Remove(path)
		}
		return nil
	})
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.Shard(), string(k)+".json")
}

// getInvocation loads the cached record for the key, if present and valid.
// Unreadable or stale archives are treated as misses, never as failures:
// the job simply re-runs and overwrites them.
func (c *Cache) getInvocation(k Key) (*persist.InvocationRecord, bool) {
	if c.mode == WriteOnly {
		return nil, false
	}
	rec, err := persist.LoadInvocation(c.path(k))
	if err != nil || rec.Key != string(k) {
		return nil, false
	}
	return rec, true
}

func (c *Cache) putInvocation(k Key, rec *persist.InvocationRecord) error {
	return persist.SaveInvocation(c.path(k), rec)
}

func (c *Cache) getMinHeap(k Key) (*persist.MinHeapRecord, bool) {
	if c.mode == WriteOnly {
		return nil, false
	}
	rec, err := persist.LoadMinHeap(c.path(k))
	if err != nil || rec.Key != string(k) {
		return nil, false
	}
	return rec, true
}

func (c *Cache) putMinHeap(k Key, rec *persist.MinHeapRecord) error {
	return persist.SaveMinHeap(c.path(k), rec)
}
