package exper

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"chopin/internal/persist"
)

// CacheMode selects how the engine uses its persistent cache.
type CacheMode int

const (
	// ReadWrite is the normal resumable mode: completed jobs are skipped
	// via cache hits, new results are written back.
	ReadWrite CacheMode = iota
	// WriteOnly forces a cold re-run: every job executes, and the fresh
	// results overwrite the cached ones for the next warm run.
	WriteOnly
)

// writeDepth bounds the write-behind queue. Deep enough that a burst of
// completing workers never blocks on the writer; shallow enough that a dying
// process loses at most a bounded window of results (each of which simply
// re-runs next time).
const writeDepth = 128

// Cache is the content-addressed, invocation-level result store: one
// persist archive per job key, sharded two-hex-characters deep
// (dir/ab/abcdef….json) so large plans do not pile thousands of files into
// one directory. Writes are atomic (write-then-rename in persist), so a
// killed run leaves only complete archives behind — which is what makes
// plans resumable.
//
// Invocation writes are write-behind: putInvocation parks the record in a
// pending map and hands the serialization to a single writer goroutine, so
// pool workers completing jobs concurrently never contend on disk I/O or on
// each other. Reads consult the pending map first, making the deferral
// invisible; write errors latch and surface at Flush (which Engine.Close
// calls), degrading a full disk to a cold next run rather than a failed
// sweep. Min-heap records are rare (one per workload per sweep shape) and
// stay synchronous.
type Cache struct {
	dir  string
	mode CacheMode

	mu      sync.Mutex
	pending map[Key]*persist.InvocationRecord
	err     error // first write error; latched, reported by Flush

	writes chan cacheWrite
}

// cacheWrite is one queue entry: a record to serialize, or — when ack is
// non-nil — a flush sentinel that reports the latched error once every
// preceding write has drained (the queue is FIFO).
type cacheWrite struct {
	key Key
	rec *persist.InvocationRecord
	ack chan error
}

// OpenCache opens (creating if necessary) a result cache rooted at dir and
// starts its write-behind goroutine.
func OpenCache(dir string, mode CacheMode) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("exper: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exper: opening cache: %w", err)
	}
	sweepTemps(dir)
	c := &Cache{
		dir:     dir,
		mode:    mode,
		pending: map[Key]*persist.InvocationRecord{},
		writes:  make(chan cacheWrite, writeDepth),
	}
	go c.writer()
	return c, nil
}

// sweepTemps removes write-then-rename debris a killed run leaves behind. A
// *.tmp file is never a valid archive — the rename that would have published
// it did not happen — so deleting it on open is always safe, and keeps the
// orphans from accumulating under long-lived cache directories. Best effort:
// a file another process races us for is someone else's problem.
func sweepTemps(dir string) {
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.HasSuffix(d.Name(), ".tmp") {
			os.Remove(path)
		}
		return nil
	})
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.Shard(), string(k)+".json")
}

// writer is the write-behind goroutine: it drains the queue, serializing
// records one at a time and retiring them from the pending map, and answers
// flush sentinels with the latched error.
func (c *Cache) writer() {
	for w := range c.writes {
		if w.ack != nil {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			w.ack <- err
			continue
		}
		err := persist.SaveInvocation(c.path(w.key), w.rec)
		c.mu.Lock()
		if cur, ok := c.pending[w.key]; ok && cur == w.rec {
			delete(c.pending, w.key)
		}
		if err != nil && c.err == nil {
			c.err = fmt.Errorf("exper: caching %s: %w", w.key, err)
		}
		c.mu.Unlock()
	}
}

// Flush blocks until every queued invocation write has reached disk and
// returns the first write error latched since the previous Flush cleared —
// the point where a sweep learns its results did not all persist. The cache
// remains usable after Flush; Engine.Close flushes the engine's cache.
func (c *Cache) Flush() error {
	ack := make(chan error, 1)
	c.writes <- cacheWrite{ack: ack}
	err := <-ack
	c.mu.Lock()
	c.err = nil
	c.mu.Unlock()
	return err
}

// Close flushes every queued write and stops the write-behind goroutine,
// returning the first latched write error. The cache must not be used after
// Close. Engine.Close does NOT close its cache — the caller owns it and may
// share it across engines — so callers that open caches dynamically (one per
// sweep, one per test) should Close them, or the abandoned write-behind
// goroutines accumulate for the life of the process.
func (c *Cache) Close() error {
	err := c.Flush()
	close(c.writes)
	return err
}

// getInvocation loads the cached record for the key, if present and valid.
// Records still queued behind the write-behind path are served from memory,
// so callers never observe the deferral. Unreadable or stale archives are
// treated as misses, never as failures: the job simply re-runs and
// overwrites them.
func (c *Cache) getInvocation(k Key) (*persist.InvocationRecord, bool) {
	if c.mode == WriteOnly {
		return nil, false
	}
	c.mu.Lock()
	if rec, ok := c.pending[k]; ok {
		c.mu.Unlock()
		return rec, true
	}
	c.mu.Unlock()
	rec, err := persist.LoadInvocation(c.path(k))
	if err != nil || rec.Key != string(k) {
		return nil, false
	}
	return rec, true
}

// putInvocation queues the record for write-behind persistence. It returns
// immediately (backpressure only when the queue is writeDepth deep); any
// previously latched write error is returned as a courtesy, but the
// authoritative error check is Flush.
func (c *Cache) putInvocation(k Key, rec *persist.InvocationRecord) error {
	c.mu.Lock()
	c.pending[k] = rec
	err := c.err
	c.mu.Unlock()
	c.writes <- cacheWrite{key: k, rec: rec}
	return err
}

// getGeneric loads a cached generic job payload, if present and valid.
// Generic jobs are coarse (one per fleet sweep cell, not one per event), so
// their records stay synchronous like min-heap records — no write-behind.
func (c *Cache) getGeneric(k Key) (*persist.GenericRecord, bool) {
	if c.mode == WriteOnly {
		return nil, false
	}
	rec, err := persist.LoadGeneric(c.path(k))
	if err != nil || rec.Key != string(k) {
		return nil, false
	}
	return rec, true
}

func (c *Cache) putGeneric(k Key, rec *persist.GenericRecord) error {
	return persist.SaveGeneric(c.path(k), rec)
}

func (c *Cache) getMinHeap(k Key) (*persist.MinHeapRecord, bool) {
	if c.mode == WriteOnly {
		return nil, false
	}
	rec, err := persist.LoadMinHeap(c.path(k))
	if err != nil || rec.Key != string(k) {
		return nil, false
	}
	return rec, true
}

func (c *Cache) putMinHeap(k Key, rec *persist.MinHeapRecord) error {
	return persist.SaveMinHeap(c.path(k), rec)
}
