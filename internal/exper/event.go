package exper

import (
	"fmt"
	"io"
	"sync"
)

// EventKind classifies a progress event.
type EventKind int

// Progress events, in a job's lifecycle order.
const (
	// JobQueued fires when a job enters the worker pool.
	JobQueued EventKind = iota
	// JobStarted fires when a worker picks the job up.
	JobStarted
	// JobFinished fires when a job's invocation completes, with its wall
	// and task-clock telemetry.
	JobFinished
	// JobCacheHit fires when a job is satisfied from the result cache
	// without touching the simulator.
	JobCacheHit
	// JobFailed fires when a job's invocation errors (OOM included).
	JobFailed
	// MinHeapStarted and MinHeapFinished bracket a minimum-heap
	// measurement; MinHeapCacheHit replaces both on a cache hit.
	MinHeapStarted
	MinHeapFinished
	MinHeapCacheHit
)

func (k EventKind) String() string {
	switch k {
	case JobQueued:
		return "queued"
	case JobStarted:
		return "started"
	case JobFinished:
		return "finished"
	case JobCacheHit:
		return "cache-hit"
	case JobFailed:
		return "failed"
	case MinHeapStarted:
		return "minheap-started"
	case MinHeapFinished:
		return "minheap"
	case MinHeapCacheHit:
		return "minheap-cache-hit"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one structured progress notification — the observability seam
// consumed by runbms -progress and available to any embedding system.
type Event struct {
	Kind      EventKind
	Key       Key
	Benchmark string
	Collector string
	HeapMB    float64
	Seed      uint64
	// WallNS and CPUNS are the invocation's whole-run wall and task-clock
	// totals (JobFinished only).
	WallNS float64
	CPUNS  float64
	// MinHeapMB carries the measured bound on MinHeapFinished/CacheHit.
	MinHeapMB float64
	// Err is the failure message on JobFailed.
	Err string
}

// Progress returns an observer that renders events as one-line progress
// updates on w, prefixed like "runbms: ". Queued and started events are
// suppressed — at plan scale they are noise — and a running tally of
// executed versus cache-hit jobs contextualizes each line.
func Progress(w io.Writer, prefix string) func(Event) {
	var mu sync.Mutex
	var done, hits int
	return func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.Kind {
		case JobFinished:
			done++
			fmt.Fprintf(w, "%s[%d run, %d cached] %s %s %.0fMB seed=%d wall=%.2fs cpu=%.2fs\n",
				prefix, done, hits, e.Benchmark, e.Collector, e.HeapMB, e.Seed,
				e.WallNS/1e9, e.CPUNS/1e9)
		case JobCacheHit:
			hits++
			fmt.Fprintf(w, "%s[%d run, %d cached] %s %s %.0fMB seed=%d (cache)\n",
				prefix, done, hits, e.Benchmark, e.Collector, e.HeapMB, e.Seed)
		case JobFailed:
			done++
			fmt.Fprintf(w, "%s[%d run, %d cached] %s %s %.0fMB seed=%d FAILED: %s\n",
				prefix, done, hits, e.Benchmark, e.Collector, e.HeapMB, e.Seed, e.Err)
		case MinHeapFinished:
			fmt.Fprintf(w, "%s%s minimum heap: %.1fMB\n", prefix, e.Benchmark, e.MinHeapMB)
		case MinHeapCacheHit:
			fmt.Fprintf(w, "%s%s minimum heap: %.1fMB (cache)\n", prefix, e.Benchmark, e.MinHeapMB)
		}
	}
}
