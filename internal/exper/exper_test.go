package exper

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"chopin/internal/cpuarch"
	"chopin/internal/gc"
	"chopin/internal/workload"
)

func testBench(t *testing.T) *workload.Descriptor {
	t.Helper()
	d, err := workload.ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallCfg() workload.RunConfig {
	return workload.RunConfig{
		HeapMB:     100,
		Collector:  gc.G1,
		Iterations: 1,
		Events:     200,
		Seed:       1,
	}
}

func TestJobKeyStable(t *testing.T) {
	d := testBench(t)
	a, err := NewJob(d, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewJob(d, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == "" || a.Key() != b.Key() {
		t.Fatalf("keys differ for identical jobs: %q vs %q", a.Key(), b.Key())
	}
	if len(a.Key()) != 64 {
		t.Fatalf("key %q is not hex sha256", a.Key())
	}
}

func TestJobKeyDistinguishesConfigs(t *testing.T) {
	d := testBench(t)
	base, _ := NewJob(d, smallCfg())
	seen := map[Key]string{base.Key(): "base"}
	variants := map[string]workload.RunConfig{}

	c := smallCfg()
	c.HeapMB = 120
	variants["heap"] = c
	c = smallCfg()
	c.Seed = 2
	variants["seed"] = c
	c = smallCfg()
	c.Collector = gc.Serial
	variants["collector"] = c
	c = smallCfg()
	c.Events = 300
	variants["events"] = c
	c = smallCfg()
	c.Iterations = 2
	variants["iterations"] = c
	c = smallCfg()
	c.RecordLatency = true
	variants["latency"] = c

	for name, cfg := range variants {
		j, err := NewJob(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[j.Key()]; dup {
			t.Fatalf("variant %q collides with %q", name, prev)
		}
		seen[j.Key()] = name
	}
}

// Size-scaled descriptors share a name; their jobs must not share a key.
func TestJobKeyDistinguishesScaledDescriptors(t *testing.T) {
	d := testBench(t)
	big := d.Scaled(workload.SizeLarge)
	if big.Name != d.Name {
		t.Fatalf("scaling changed the name: %q", big.Name)
	}
	a, _ := NewJob(d, smallCfg())
	b, _ := NewJob(big, smallCfg())
	if a.Key() == b.Key() {
		t.Fatal("scaled descriptor shares the default descriptor's job key")
	}
}

// Configs that execute identically must hash identically: the zero machine
// is the reference Zen4, iterations are clamped to at least 1.
func TestJobKeyNormalization(t *testing.T) {
	d := testBench(t)
	implicit := smallCfg()
	implicit.Iterations = 0
	explicit := smallCfg()
	explicit.Iterations = 1
	explicit.Machine = cpuarch.Zen4

	a, _ := NewJob(d, implicit)
	b, _ := NewJob(d, explicit)
	if a.Key() != b.Key() {
		t.Fatal("equivalent spellings of the same config hash differently")
	}
}

func TestMinHeapKeyCoversParams(t *testing.T) {
	d := testBench(t)
	p := MinHeapParams{Events: 200, Iterations: 2, Invocations: 2, Seed: 7}
	a, err := minHeapKey(d, p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.Seed = 8
	b, err := minHeapKey(d, p2)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("min-heap key ignores the seed")
	}
	j, _ := NewJob(d, smallCfg())
	if a == j.Key() {
		t.Fatal("min-heap key collides with an invocation key")
	}
}

func TestPoolRunsEverything(t *testing.T) {
	p := newPool(4)
	var n int64
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		p.submit(func() {
			atomic.AddInt64(&n, 1)
			wg.Done()
		}, lane(i%int(numLanes)))
	}
	wg.Wait()
	p.close()
	if n != 200 {
		t.Fatalf("ran %d of 200 tasks", n)
	}
}

func TestEngineMemoize(t *testing.T) {
	e := New(Options{Workers: 2, Memoize: true})
	defer e.Close()
	d := testBench(t)

	r1, err := e.Run(d, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(d, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("memoized run returned a different result pointer")
	}
	s := e.Stats()
	if s.Executed != 1 || s.MemoHits != 1 {
		t.Fatalf("stats = %+v, want 1 executed / 1 memo hit", s)
	}
}

func TestEngineDedupsConcurrentIdenticalJobs(t *testing.T) {
	e := New(Options{Workers: 4, Memoize: true})
	defer e.Close()
	d := testBench(t)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Run(d, smallCfg())
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Executed != 1 {
		t.Fatalf("identical concurrent jobs executed %d times", s.Executed)
	}
	if s.Deduped+s.MemoHits != n-1 {
		t.Fatalf("stats = %+v, want %d deduped+memo hits", s, n-1)
	}
}

func TestEngineCachesResults(t *testing.T) {
	dir := t.TempDir()
	d := testBench(t)

	cache, err := OpenCache(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Options{Workers: 2, Cache: cache})
	want, err := e1.Run(d, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()
	if s := e1.Stats(); s.Executed != 1 || s.CacheHits != 0 {
		t.Fatalf("cold stats = %+v", s)
	}

	// A fresh engine over the same cache must not touch the simulator.
	cache2, err := OpenCache(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{Workers: 2, Cache: cache2})
	defer e2.Close()
	got, err := e2.Run(d, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s := e2.Stats(); s.Executed != 0 || s.CacheHits != 1 {
		t.Fatalf("warm stats = %+v, want 0 executed / 1 cache hit", s)
	}
	if got.Last().WallNS != want.Last().WallNS || got.GCCPUNS != want.GCCPUNS {
		t.Fatalf("cached result differs: %v vs %v", got.Last(), want.Last())
	}
}

func TestEngineCachesOOM(t *testing.T) {
	dir := t.TempDir()
	d := testBench(t)
	cfg := smallCfg()
	cfg.HeapMB = 1 // far below fop's minimum

	cache, _ := OpenCache(dir, ReadWrite)
	e1 := New(Options{Workers: 1, Cache: cache})
	_, err := e1.Run(d, cfg)
	var oom *workload.ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want OOM", err)
	}
	e1.Close()
	if s := e1.Stats(); s.OOMs != 1 || s.Executed != 1 {
		t.Fatalf("stats = %+v", s)
	}

	cache2, _ := OpenCache(dir, ReadWrite)
	e2 := New(Options{Workers: 1, Cache: cache2})
	defer e2.Close()
	_, err = e2.Run(d, cfg)
	if !errors.As(err, &oom) {
		t.Fatalf("cached err = %v, want OOM", err)
	}
	if oom.Workload != d.Name || oom.HeapMB != 1 {
		t.Fatalf("reconstructed OOM = %+v", oom)
	}
	if s := e2.Stats(); s.Executed != 0 || s.CacheHits != 1 {
		t.Fatalf("warm stats = %+v, want OOM served from cache", s)
	}
}

// WriteOnly mode is the -cold flag: every job re-executes, fresh results
// still land in the cache for the next warm run.
func TestWriteOnlyModeForcesColdRun(t *testing.T) {
	dir := t.TempDir()
	d := testBench(t)

	cache, _ := OpenCache(dir, ReadWrite)
	e1 := New(Options{Workers: 1, Cache: cache})
	if _, err := e1.Run(d, smallCfg()); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	cold, _ := OpenCache(dir, WriteOnly)
	e2 := New(Options{Workers: 1, Cache: cold})
	if _, err := e2.Run(d, smallCfg()); err != nil {
		t.Fatal(err)
	}
	e2.Close()
	if s := e2.Stats(); s.Executed != 1 || s.CacheHits != 0 {
		t.Fatalf("cold stats = %+v, want forced execution", s)
	}

	// The overwritten record still serves the next warm engine.
	warm, _ := OpenCache(dir, ReadWrite)
	e3 := New(Options{Workers: 1, Cache: warm})
	defer e3.Close()
	if _, err := e3.Run(d, smallCfg()); err != nil {
		t.Fatal(err)
	}
	if s := e3.Stats(); s.Executed != 0 || s.CacheHits != 1 {
		t.Fatalf("post-cold stats = %+v", s)
	}
}

func TestEngineMinHeapCached(t *testing.T) {
	dir := t.TempDir()
	d := testBench(t)
	p := MinHeapParams{Events: 200, Iterations: 1, Invocations: 2, Seed: 7}

	cache, _ := OpenCache(dir, ReadWrite)
	e1 := New(Options{Workers: 4, Cache: cache})
	mb1, err := e1.MinHeapMB(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if mb1 <= 0 {
		t.Fatalf("min heap = %v", mb1)
	}
	// Second call in-process comes from the memo, not a new search.
	mb2, err := e1.MinHeapMB(d, p)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()
	if mb2 != mb1 {
		t.Fatalf("memoized min heap %v != %v", mb2, mb1)
	}
	if s := e1.Stats(); s.MinHeapSearches != 1 {
		t.Fatalf("stats = %+v, want one search", s)
	}

	// A fresh engine finds the measurement in the cache: no probes run.
	cache2, _ := OpenCache(dir, ReadWrite)
	e2 := New(Options{Workers: 4, Cache: cache2})
	defer e2.Close()
	mb3, err := e2.MinHeapMB(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if mb3 != mb1 {
		t.Fatalf("cached min heap %v != %v", mb3, mb1)
	}
	s := e2.Stats()
	if s.MinHeapCacheHits != 1 || s.MinHeapSearches != 0 || s.Executed != 0 {
		t.Fatalf("warm stats = %+v, want pure cache hit", s)
	}
}

// stubRun fabricates results: OOM below threshold, success above.
func stubRun(thresholdMB float64, calls *int64) func(*workload.Descriptor, workload.RunConfig) (*workload.Result, error) {
	return func(d *workload.Descriptor, cfg workload.RunConfig) (*workload.Result, error) {
		atomic.AddInt64(calls, 1)
		if cfg.HeapMB < thresholdMB {
			return nil, &workload.ErrOutOfMemory{Workload: d.Name, HeapMB: cfg.HeapMB, Kind: cfg.Collector}
		}
		return &workload.Result{Workload: d.Name, Config: cfg,
			Iterations: []workload.IterationResult{{WallNS: 1}}}, nil
	}
}

func TestValidateMinHeapGrowsToValidBound(t *testing.T) {
	d := testBench(t)
	var calls int64
	// The searched bound (40MB) is below what the sweep seeds need (45MB):
	// validation must grow it past the threshold and return the grown value.
	run := stubRun(45, &calls)
	p := MinHeapParams{Events: 100, Iterations: 1, Invocations: 3, Seed: 9}
	got, err := validateMinHeap(run, d, workload.RunConfig{Collector: gc.G1}, 40, p)
	if err != nil {
		t.Fatal(err)
	}
	if got < 45 {
		t.Fatalf("validated bound %v below the viable threshold", got)
	}
	if got > 40*1.2 {
		t.Fatalf("bound %v grew far past the threshold", got)
	}
}

// The satellite fix: a bound that still OOMs after 20 growth attempts is an
// error, not a silently returned unusable heap size.
func TestValidateMinHeapErrorsWhenNeverValid(t *testing.T) {
	d := testBench(t)
	var calls int64
	run := stubRun(1e9, &calls) // nothing ever fits
	p := MinHeapParams{Events: 100, Iterations: 1, Invocations: 2, Seed: 9}
	_, err := validateMinHeap(run, d, workload.RunConfig{Collector: gc.G1}, 40, p)
	if err == nil {
		t.Fatal("validation that never succeeds must return an error")
	}
	if want := int64(minHeapGrowthAttempts * 2); calls != want {
		t.Fatalf("ran %d probes, want %d (every attempt, every invocation)", calls, want)
	}
}

// Transient (non-OOM) failures abort validation immediately.
func TestValidateMinHeapPropagatesTransientErrors(t *testing.T) {
	d := testBench(t)
	boom := fmt.Errorf("disk on fire")
	run := func(*workload.Descriptor, workload.RunConfig) (*workload.Result, error) {
		return nil, boom
	}
	p := MinHeapParams{Events: 100, Iterations: 1, Invocations: 1, Seed: 9}
	_, err := validateMinHeap(run, d, workload.RunConfig{Collector: gc.G1}, 40, p)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped transient failure", err)
	}
}
