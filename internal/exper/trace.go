package exper

import (
	"fmt"
	"os"
	"path/filepath"

	"chopin/internal/obs"
	"chopin/internal/obs/span"
	"chopin/internal/obs/traceview"
)

// jobRecorder is the worker-owned telemetry buffer for one executing job.
// It captures the run's whole event stream in memory, stamping job identity
// (key, benchmark, collector) onto events that do not already carry it —
// replicating obs.WithRun — and is flushed to the shared sink in a single
// batch at the job boundary (obs.RecordAll), so concurrent invocations
// contend the sink once per job instead of once per event.
//
// A simulator run records from exactly one goroutine, and the buffer is
// owned by the executing worker for exactly one job (pooled in
// Engine.bufs between jobs), so it needs no lock — unlike the shared sinks
// behind the Recorder contract.
type jobRecorder struct {
	run       string
	benchmark string
	collector string
	events    []obs.Event
}

// reset prepares a pooled buffer for a new job, retaining its backing array.
func (b *jobRecorder) reset(run, benchmark, collector string) {
	b.run, b.benchmark, b.collector = run, benchmark, collector
	b.events = b.events[:0]
}

func (b *jobRecorder) Enabled() bool { return true }

func (b *jobRecorder) Record(e obs.Event) {
	if e.Run == "" {
		e.Run = b.run
	}
	if e.Benchmark == "" {
		e.Benchmark = b.benchmark
	}
	if e.Collector == "" {
		e.Collector = b.collector
	}
	b.events = append(b.events, e)
}

// writeJobTrace folds a completed job's buffered events into spans and
// writes them as <TraceDir>/<key>.trace.json.
func (e *Engine) writeJobTrace(k Key, events []obs.Event) error {
	if len(events) == 0 {
		return nil
	}
	if err := os.MkdirAll(e.traceDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(e.traceDir, fmt.Sprintf("%s.trace.json", k))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := traceview.WriteChromeTrace(f, span.Build(events)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
