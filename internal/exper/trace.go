package exper

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"chopin/internal/obs"
	"chopin/internal/obs/span"
	"chopin/internal/obs/traceview"
)

// traceBuffer captures one executing job's telemetry in memory so the
// engine can fold it into a per-job Chrome trace file (Options.TraceDir).
// It is a Recorder so it slots into the same Multi fan-out as the shared
// telemetry sink; the mutex keeps it safe under the Recorder contract even
// though a single simulation records sequentially.
type traceBuffer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (b *traceBuffer) Enabled() bool { return true }

func (b *traceBuffer) Record(e obs.Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// orNil converts a possibly-nil *traceBuffer into a Recorder operand for
// obs.Multi, which skips nils.
func (b *traceBuffer) orNil() obs.Recorder {
	if b == nil {
		return nil
	}
	return b
}

func (b *traceBuffer) take() []obs.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	evs := b.events
	b.events = nil
	return evs
}

// writeJobTrace folds a completed job's buffered events into spans and
// writes them as <TraceDir>/<key>.trace.json.
func (e *Engine) writeJobTrace(k Key, events []obs.Event) error {
	if len(events) == 0 {
		return nil
	}
	if err := os.MkdirAll(e.traceDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(e.traceDir, fmt.Sprintf("%s.trace.json", k))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := traceview.WriteChromeTrace(f, span.Build(events)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
