// Package exper is the unified experiment engine: every simulator
// invocation — sweep cell, latency run, min-heap probe — becomes a
// first-class Job, canonically hashed over its (descriptor, RunConfig)
// content and executed by a single work-stealing worker pool shared across
// an entire experiment plan.
//
// Three layers make plans incremental and resumable:
//
//   - deduplication: concurrent submissions of an identical job coalesce
//     onto one execution (min-heap probes shared by several sweeps run
//     once, as an upstream job in the plan's job graph);
//   - memoization: an optional in-process memo returns completed outcomes
//     without re-execution;
//   - the content-addressed result cache (Cache, layered on
//     internal/persist schema v2): completed invocations survive process
//     death, so a killed or re-invoked plan skips straight to its first
//     unfinished job, and figures re-render offline from cached results.
//
// The engine emits structured progress events (queued, started, finished,
// cache-hit, with wall and task-clock telemetry) through an observer — the
// observability seam consumed by runbms -progress.
package exper

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chopin/internal/obs"
	"chopin/internal/persist"
	"chopin/internal/workload"
)

// Options configures an engine.
type Options struct {
	// Workers sizes the shared worker pool (default: NumCPU). This bounds
	// concurrent simulator invocations for the whole plan, however many
	// sweeps submit jobs at once.
	Workers int
	// Cache is the persistent result store; nil disables persistence
	// (in-flight deduplication still applies).
	Cache *Cache
	// Memoize keeps completed outcomes in memory, so repeated identical
	// jobs within one process return instantly even without a Cache. Off
	// by default: a full-suite sweep holds gigabytes of event logs.
	Memoize bool
	// Observer receives progress events; it must be safe for concurrent
	// use (Progress is). nil disables events.
	Observer func(Event)
	// Recorder receives structured telemetry (job lifecycle, cache
	// accounting, and — injected per job — the run's GC and scheduler
	// events, stamped with the job key). nil disables telemetry.
	Recorder obs.Recorder
	// TraceDir, when non-empty, captures each executed job's telemetry in
	// memory and writes it as Chrome trace-event JSON to
	// <TraceDir>/<key>.trace.json — one causal timeline per invocation,
	// loadable in Perfetto. Cache hits write nothing (they did not run).
	TraceDir string
}

// Engine executes jobs. One engine should be shared across everything a
// process runs — commands build one and pass it down via harness.Options.
type Engine struct {
	pool     *pool
	cache    *Cache
	memoize  bool
	obs      func(Event)
	rec      obs.Recorder
	traceDir string

	mu        sync.Mutex
	inflight  map[Key]*call
	memo      map[Key]outcome
	minMemo   map[Key]float64
	minflight map[Key]*minCall

	executed         int64
	cacheHits        int64
	memoHits         int64
	deduped          int64
	ooms             int64
	failures         int64
	minHeapSearches  int64
	minHeapCacheHits int64
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Executed counts simulator invocations actually run — the number the
	// cache exists to drive to zero on a warm re-run.
	Executed int64
	// CacheHits counts jobs satisfied from the persistent cache; MemoHits
	// from the in-process memo; Deduped jobs coalesced onto an identical
	// in-flight execution.
	CacheHits int64
	MemoHits  int64
	Deduped   int64
	// OOMs counts invocations that ran out of memory (a cacheable,
	// expected outcome at tight heaps); Failures counts other errors.
	OOMs     int64
	Failures int64
	// MinHeapSearches counts full minimum-heap measurements performed;
	// MinHeapCacheHits counts measurements satisfied from the cache.
	MinHeapSearches  int64
	MinHeapCacheHits int64
}

type outcome struct {
	res *workload.Result
	err error
}

type call struct {
	done chan struct{}
	out  outcome
}

type minCall struct {
	done chan struct{}
	mb   float64
	err  error
}

// New builds an engine and starts its worker pool.
func New(opt Options) *Engine {
	if opt.Workers <= 0 {
		opt.Workers = runtime.NumCPU()
	}
	return &Engine{
		pool:      newPool(opt.Workers),
		cache:     opt.Cache,
		memoize:   opt.Memoize,
		obs:       opt.Observer,
		rec:       obs.Or(opt.Recorder),
		traceDir:  opt.TraceDir,
		inflight:  map[Key]*call{},
		memo:      map[Key]outcome{},
		minMemo:   map[Key]float64{},
		minflight: map[Key]*minCall{},
	}
}

// Close stops the worker pool once submitted jobs drain. Using the engine
// afterwards panics; long-lived engines need never close.
func (e *Engine) Close() { e.pool.close() }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Executed:         atomic.LoadInt64(&e.executed),
		CacheHits:        atomic.LoadInt64(&e.cacheHits),
		MemoHits:         atomic.LoadInt64(&e.memoHits),
		Deduped:          atomic.LoadInt64(&e.deduped),
		OOMs:             atomic.LoadInt64(&e.ooms),
		Failures:         atomic.LoadInt64(&e.failures),
		MinHeapSearches:  atomic.LoadInt64(&e.minHeapSearches),
		MinHeapCacheHits: atomic.LoadInt64(&e.minHeapCacheHits),
	}
}

func (e *Engine) emit(ev Event) {
	if e.obs != nil {
		e.obs(ev)
	}
}

// recordJob emits an engine-level telemetry event stamped with job identity.
// Engine events carry host wall-clock timestamps (jobs have no shared virtual
// clock); Value is the job's heap size in MB.
func (e *Engine) recordJob(kind obs.Kind, j Job, k Key, dur, cpu float64, errStr string) {
	if !e.rec.Enabled() {
		return
	}
	e.rec.Record(obs.Event{
		Kind:      kind,
		TNS:       time.Now().UnixNano(),
		Run:       string(k),
		Benchmark: j.Desc.Name,
		Collector: j.Cfg.Collector.String(),
		DurNS:     dur,
		CPUNS:     cpu,
		Value:     j.Cfg.HeapMB,
		Err:       errStr,
	})
}

func jobEvent(kind EventKind, j Job) Event {
	return Event{
		Kind:      kind,
		Key:       j.Key(),
		Benchmark: j.Desc.Name,
		Collector: j.Cfg.Collector.String(),
		HeapMB:    j.Cfg.HeapMB,
		Seed:      j.Cfg.Seed,
	}
}

// Run executes one invocation of the benchmark under cfg as an engine job:
// deduplicated against identical in-flight jobs, satisfied from the result
// cache when warm, otherwise executed on the shared worker pool and cached.
// It blocks until the outcome is available; submit concurrent goroutines to
// exploit the pool.
func (e *Engine) Run(d *workload.Descriptor, cfg workload.RunConfig) (*workload.Result, error) {
	job, err := NewJob(d, cfg)
	if err != nil {
		return nil, err
	}
	k := job.Key()

	e.mu.Lock()
	if out, ok := e.memo[k]; ok {
		e.mu.Unlock()
		atomic.AddInt64(&e.memoHits, 1)
		return out.res, out.err
	}
	if c, ok := e.inflight[k]; ok {
		e.mu.Unlock()
		atomic.AddInt64(&e.deduped, 1)
		<-c.done
		return c.out.res, c.out.err
	}
	c := &call{done: make(chan struct{})}
	e.inflight[k] = c
	e.mu.Unlock()

	out := e.execute(job)

	e.mu.Lock()
	delete(e.inflight, k)
	if e.memoize && cacheable(out) {
		e.memo[k] = out
	}
	e.mu.Unlock()
	c.out = out
	close(c.done)
	return out.res, out.err
}

// cacheable reports whether the outcome is a stable property of the job
// (success or OOM) rather than a transient failure.
func cacheable(out outcome) bool {
	if out.err == nil {
		return true
	}
	var oom *workload.ErrOutOfMemory
	return errors.As(out.err, &oom)
}

// execute satisfies a job from the cache or runs it on the pool.
func (e *Engine) execute(job Job) outcome {
	k := job.Key()
	if e.cache != nil {
		if rec, ok := e.cache.getInvocation(k); ok {
			atomic.AddInt64(&e.cacheHits, 1)
			e.emit(jobEvent(JobCacheHit, job))
			e.recordJob(obs.KindCacheHit, job, k, 0, 0, "")
			if rec.OOM {
				return outcome{nil, &workload.ErrOutOfMemory{
					Workload: job.Desc.Name, HeapMB: job.Cfg.HeapMB, Kind: job.Cfg.Collector,
				}}
			}
			return outcome{rec.Result, nil}
		}
		e.recordJob(obs.KindCacheMiss, job, k, 0, 0, "")
	}

	// Inject the telemetry stream into the run, stamped with the job key so
	// events from concurrently executing invocations stay attributable. A
	// recorder already set on the config wins (and still gets stamped); a
	// TraceDir additionally buffers the job's own events for its per-job
	// trace file.
	var jobTrace *traceBuffer
	if e.traceDir != "" {
		jobTrace = &traceBuffer{}
	}
	base := obs.Or(job.Cfg.Recorder)
	if !base.Enabled() {
		base = e.rec
	}
	if r := obs.Multi(base, jobTrace.orNil()); r.Enabled() {
		job.Cfg.Recorder = obs.WithRun(r, string(k), job.Desc.Name, job.Cfg.Collector.String())
	}

	e.emit(jobEvent(JobQueued, job))
	done := make(chan outcome, 1)
	e.pool.submit(func() {
		e.emit(jobEvent(JobStarted, job))
		e.recordJob(obs.KindJobStart, job, k, 0, 0, "")
		hostStart := time.Now()
		res, err := workload.Run(job.Desc, job.Cfg)
		atomic.AddInt64(&e.executed, 1)
		if err != nil {
			e.recordJob(obs.KindJobFinish, job, k, float64(time.Since(hostStart)), 0, err.Error())
		} else {
			var cpu float64
			for _, it := range res.Iterations {
				cpu += it.CPUNS
			}
			e.recordJob(obs.KindJobFinish, job, k, float64(time.Since(hostStart)), cpu, "")
		}
		done <- outcome{res, err}
	})
	out := <-done

	if jobTrace != nil {
		if werr := e.writeJobTrace(k, jobTrace.take()); werr != nil && out.err == nil {
			return outcome{nil, fmt.Errorf("exper: writing %s trace: %w", job.Desc.Name, werr)}
		}
	}

	if out.err != nil {
		var oom *workload.ErrOutOfMemory
		if errors.As(out.err, &oom) {
			atomic.AddInt64(&e.ooms, 1)
			if e.cache != nil {
				if werr := e.cache.putInvocation(k, e.record(job, nil, true)); werr != nil {
					return outcome{nil, fmt.Errorf("exper: caching %s OOM: %w", job.Desc.Name, werr)}
				}
			}
		} else {
			atomic.AddInt64(&e.failures, 1)
		}
		ev := jobEvent(JobFailed, job)
		ev.Err = out.err.Error()
		e.emit(ev)
		return out
	}

	if e.cache != nil {
		if werr := e.cache.putInvocation(k, e.record(job, out.res, false)); werr != nil {
			return outcome{nil, fmt.Errorf("exper: caching %s result: %w", job.Desc.Name, werr)}
		}
	}
	ev := jobEvent(JobFinished, job)
	for _, it := range out.res.Iterations {
		ev.WallNS += it.WallNS
		ev.CPUNS += it.CPUNS
	}
	e.emit(ev)
	return out
}

func (e *Engine) record(job Job, res *workload.Result, oom bool) *persist.InvocationRecord {
	return &persist.InvocationRecord{
		Key:       string(job.Key()),
		Workload:  job.Desc.Name,
		Collector: job.Cfg.Collector.String(),
		HeapMB:    job.Cfg.HeapMB,
		Seed:      job.Cfg.Seed,
		OOM:       oom,
		Result:    res,
	}
}
