// Package exper is the unified experiment engine: every simulator
// invocation — sweep cell, latency run, min-heap probe — becomes a
// first-class Job, canonically hashed over its (descriptor, RunConfig)
// content and executed by a single work-stealing worker pool shared across
// an entire experiment plan.
//
// Whole-suite sweeps are expressed as batches of jobs submitted up front:
// Submit registers a job and returns a Ticket immediately, Wait blocks for
// its outcome, and a harness submits every cell of a factorial grid before
// collecting any of them — so the pool sees the entire plan at once and
// keeps every host core saturated until the last job drains. Min-heap
// measurements are asynchronous too (SubmitMinHeap), forming the
// prerequisite layer of a plan's job DAG: grid cells are submitted the
// moment their anchor resolves.
//
// Three layers make plans incremental and resumable:
//
//   - deduplication: submissions of a job identical to one already in
//     flight coalesce onto the single execution, from the moment it is
//     submitted to the moment its outcome resolves (min-heap probes shared
//     by several sweeps run once, as an upstream job in the plan's graph);
//   - memoization: an optional in-process memo returns completed outcomes
//     without re-execution;
//   - the content-addressed result cache (Cache, layered on
//     internal/persist schema v2): completed invocations survive process
//     death, so a killed or re-invoked plan skips straight to its first
//     unfinished job, and figures re-render offline from cached results.
//
// Concurrency layout: the engine's job state (in-flight calls, memo) is
// sharded by key across independently locked shards, the pool's deques are
// per-worker behind per-deque locks, each executing job's telemetry is
// buffered in a worker-owned buffer flushed to the shared sink in one batch
// at the job boundary, and cache writes are handed to a write-behind
// goroutine — so at full host-core saturation no per-event or per-transition
// path crosses a pool-wide lock.
//
// The engine emits structured progress events (queued, started, finished,
// cache-hit, with wall and task-clock telemetry) through an observer — the
// observability seam consumed by runbms -progress.
package exper

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chopin/internal/obs"
	"chopin/internal/persist"
	"chopin/internal/workload"
)

// Options configures an engine.
type Options struct {
	// Workers sizes the shared worker pool (default: NumCPU). This bounds
	// concurrent simulator invocations for the whole plan, however many
	// sweeps submit jobs at once.
	Workers int
	// Cache is the persistent result store; nil disables persistence
	// (in-flight deduplication still applies).
	Cache *Cache
	// Memoize keeps completed outcomes in memory, so repeated identical
	// jobs within one process return instantly even without a Cache. Off
	// by default: a full-suite sweep holds gigabytes of event logs.
	Memoize bool
	// Observer receives progress events; it must be safe for concurrent
	// use (Progress is). nil disables events.
	Observer func(Event)
	// Recorder receives structured telemetry (job lifecycle, cache
	// accounting, and — injected per job — the run's GC and scheduler
	// events, stamped with the job key). nil disables telemetry.
	Recorder obs.Recorder
	// TraceDir, when non-empty, captures each executed job's telemetry in
	// memory and writes it as Chrome trace-event JSON to
	// <TraceDir>/<key>.trace.json — one causal timeline per invocation,
	// loadable in Perfetto. Cache hits write nothing (they did not run).
	TraceDir string
	// LadderWidth bounds how many speculative probes a min-heap search
	// keeps in flight per round (the parallel probe ladder). 0 means auto:
	// min(Workers, NumCPU), capped at 8 — width 1 degenerates to the
	// sequential search. The measured bound is width-independent by
	// construction (the arbiter replays the sequential decision procedure),
	// so width is an engine tuning knob, not part of any content hash.
	LadderWidth int
	// Speculate controls speculative submission beyond the ladder itself:
	// harnesses consult Speculative() to start grid cells from a search's
	// unvalidated candidate bound. Auto enables it only when both the pool
	// and the host are parallel; speculation on one core only adds work.
	Speculate SpecPolicy

	// runFn replaces the simulator entry point in tests (execution
	// counting, fault injection); nil means workload.Run.
	runFn func(*workload.Descriptor, workload.RunConfig) (*workload.Result, error)
}

// SpecPolicy selects whether the engine wants speculative work submitted
// ahead of resolved dependencies.
type SpecPolicy int

const (
	// SpecAuto speculates when Workers > 1 and the host has more than one
	// CPU — the only regime where discarded speculation is free.
	SpecAuto SpecPolicy = iota
	// SpecOn forces speculation regardless of host shape (tests).
	SpecOn
	// SpecOff disables it.
	SpecOff
)

// ErrEngineClosed resolves speculative jobs that were submitted while the
// engine was shutting down: instead of executing inline in the submitter —
// the contract for ordinary jobs, which a caller is synchronously waiting
// on — a cancellable job's ticket fails with this error, nothing is
// simulated, and nothing is written to the cache. Min-heap searches abort
// on it, so a Close racing an in-flight ladder never persists a partial
// search.
var ErrEngineClosed = errors.New("exper: engine closed")

// numShards is the engine's lock-shard count for job state. Keys are
// uniformly distributed SHA-256 hashes, so 32 shards keep the per-shard
// collision probability negligible at any realistic worker count.
const numShards = 32

// engineShard is one independently locked slice of the engine's job state.
// Sharding by key keeps a whole-suite batch — thousands of submissions and
// completions — from funnelling through one engine-wide mutex.
type engineShard struct {
	mu        sync.Mutex
	inflight  map[Key]*call
	memo      map[Key]outcome
	minflight map[Key]*MinHeapTicket
	minMemo   map[Key]float64
	// Generic-job state (SubmitGeneric): opaque-payload jobs share the same
	// single-flight/memo discipline as invocations, in separate maps so key
	// kinds can never alias.
	geninflight map[Key]*genCall
	genMemo     map[Key]genOutcome
}

// Engine executes jobs. One engine should be shared across everything a
// process runs — commands build one and pass it down via harness.Options.
type Engine struct {
	pool        *pool
	cache       *Cache
	memoize     bool
	obs         func(Event)
	rec         obs.Recorder
	traceDir    string
	ladderWidth int
	spec        bool
	closing     atomic.Bool // set before the pool closes; gates cancellation
	runFn       func(*workload.Descriptor, workload.RunConfig) (*workload.Result, error)

	shards [numShards]engineShard
	bufs   sync.Pool // *jobRecorder, reused across job executions

	// costs holds learned per-(benchmark, collector) expected simulated
	// wall cost, fed by executions and cache hits alike. Harnesses use it
	// to enqueue grid batches longest-expected-first; it only ever affects
	// submission order, never results.
	costMu sync.Mutex
	costs  map[costKey]float64

	executed         int64
	cacheHits        int64
	memoHits         int64
	deduped          int64
	ooms             int64
	failures         int64
	minHeapSearches  int64
	minHeapCacheHits int64
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Executed counts simulator invocations actually run — the number the
	// cache exists to drive to zero on a warm re-run.
	Executed int64
	// CacheHits counts jobs satisfied from the persistent cache; MemoHits
	// from the in-process memo; Deduped jobs coalesced onto an identical
	// in-flight execution.
	CacheHits int64
	MemoHits  int64
	Deduped   int64
	// OOMs counts invocations that ran out of memory (a cacheable,
	// expected outcome at tight heaps); Failures counts other errors.
	OOMs     int64
	Failures int64
	// MinHeapSearches counts full minimum-heap measurements performed;
	// MinHeapCacheHits counts measurements satisfied from the cache.
	MinHeapSearches  int64
	MinHeapCacheHits int64
}

type outcome struct {
	res *workload.Result
	err error
}

// call is one in-flight execution, shared by every ticket deduplicated onto
// it. out is written before done closes and read only after it.
type call struct {
	done chan struct{}
	out  outcome
}

// resolvedCall wraps an already-known outcome as a completed call, so memo
// hits hand out tickets indistinguishable from executed ones.
func resolvedCall(out outcome) *call {
	c := &call{done: make(chan struct{}), out: out}
	close(c.done)
	return c
}

// Ticket is a handle to a submitted job. Wait blocks until the job's
// outcome is available; any number of tickets may share one execution.
type Ticket struct {
	job Job
	c   *call
}

// Wait blocks until the job completes and returns its outcome.
func (t *Ticket) Wait() (*workload.Result, error) {
	<-t.c.done
	return t.c.out.res, t.c.out.err
}

// Key returns the canonical content hash of the submitted job.
func (t *Ticket) Key() Key { return t.job.Key() }

// New builds an engine and starts its worker pool.
func New(opt Options) *Engine {
	if opt.Workers <= 0 {
		opt.Workers = runtime.NumCPU()
	}
	if opt.LadderWidth <= 0 {
		opt.LadderWidth = opt.Workers
		if n := runtime.NumCPU(); opt.LadderWidth > n {
			opt.LadderWidth = n
		}
		if opt.LadderWidth > 8 {
			opt.LadderWidth = 8
		}
	}
	if opt.LadderWidth < 1 {
		opt.LadderWidth = 1
	}
	e := &Engine{
		pool:        newPool(opt.Workers),
		cache:       opt.Cache,
		memoize:     opt.Memoize,
		obs:         opt.Observer,
		rec:         obs.Or(opt.Recorder),
		traceDir:    opt.TraceDir,
		ladderWidth: opt.LadderWidth,
		runFn:       opt.runFn,
		costs:       map[costKey]float64{},
	}
	switch opt.Speculate {
	case SpecOn:
		e.spec = true
	case SpecOff:
		e.spec = false
	default:
		e.spec = opt.Workers > 1 && runtime.NumCPU() > 1
	}
	if e.runFn == nil {
		e.runFn = workload.Run
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.inflight = map[Key]*call{}
		sh.memo = map[Key]outcome{}
		sh.minflight = map[Key]*MinHeapTicket{}
		sh.minMemo = map[Key]float64{}
		sh.geninflight = map[Key]*genCall{}
		sh.genMemo = map[Key]genOutcome{}
	}
	e.bufs.New = func() any { return &jobRecorder{} }
	return e
}

// shard maps a key to its lock shard. Keys are hex SHA-256, so the first
// two characters are uniformly distributed over [0, 256).
func (e *Engine) shard(k Key) *engineShard {
	if len(k) < 2 {
		return &e.shards[0]
	}
	return &e.shards[(hexVal(k[0])<<4|hexVal(k[1]))%numShards]
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	}
	return 0
}

// Close stops the worker pool once submitted jobs drain, emits the pool's
// scheduler telemetry, then flushes the write-behind result cache,
// returning its first write error. Submitting to a closed engine does not
// panic: an ordinary job executes inline in the caller, while cancellable
// speculative jobs (ladder probes racing Close) resolve with
// ErrEngineClosed. Long-lived engines need never close, but commands
// should, so queued cache writes reach disk.
func (e *Engine) Close() error {
	e.closing.Store(true)
	e.pool.close()
	e.recordSched()
	if e.cache != nil {
		return e.cache.Flush()
	}
	return nil
}

// Speculative reports whether callers should submit speculative work ahead
// of resolved dependencies (harness grid cells from an unvalidated
// candidate bound). Governed by Options.Speculate.
func (e *Engine) Speculative() bool { return e.spec }

// recordSched emits one KindSchedWorker event per pool worker — the
// scheduler-utilization summary obsreport -sched renders. Called after the
// pool drains, so the totals are quiescent.
func (e *Engine) recordSched() {
	if !e.rec.Enabled() {
		return
	}
	now := time.Now().UnixNano()
	for _, ws := range e.pool.workerStats() {
		e.rec.Record(obs.Event{
			Kind:        obs.KindSchedWorker,
			TNS:         now,
			Value:       float64(ws.Worker),
			BusyNS:      float64(ws.BusyNS),
			StealNS:     float64(ws.StealNS),
			ParkNS:      float64(ws.ParkNS),
			AnchorTasks: float64(ws.AnchorTasks),
			GridTasks:   float64(ws.GridTasks),
			Steals:      float64(ws.Steals),
			QueueMax:    float64(ws.QueueMax),
		})
	}
}

// costKey identifies a learned cost estimate: expected simulated wall time
// of one invocation of benchmark under collector.
type costKey struct {
	bench     string
	collector string
}

// noteCost folds one completed invocation's simulated wall total into the
// engine's cost estimate for its (benchmark, collector). Cache hits count
// too — a warm sweep still learns its ordering.
func (e *Engine) noteCost(job Job, res *workload.Result) {
	if res == nil {
		return
	}
	var wall float64
	for _, it := range res.Iterations {
		wall += it.WallNS
	}
	if wall <= 0 {
		return
	}
	k := costKey{job.Desc.Name, job.Cfg.Collector.String()}
	e.costMu.Lock()
	if c, ok := e.costs[k]; ok {
		e.costs[k] = 0.7*c + 0.3*wall // EWMA: recent heap factors dominate
	} else {
		e.costs[k] = wall
	}
	e.costMu.Unlock()
}

// EstimateCost returns the engine's learned expected simulated wall cost of
// one invocation of benchmark under collector, or 0 when nothing has been
// observed yet. Harnesses sort grid submission longest-expected-first with
// it; collection order never depends on the estimate.
func (e *Engine) EstimateCost(benchmark, collector string) float64 {
	e.costMu.Lock()
	defer e.costMu.Unlock()
	return e.costs[costKey{benchmark, collector}]
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Executed:         atomic.LoadInt64(&e.executed),
		CacheHits:        atomic.LoadInt64(&e.cacheHits),
		MemoHits:         atomic.LoadInt64(&e.memoHits),
		Deduped:          atomic.LoadInt64(&e.deduped),
		OOMs:             atomic.LoadInt64(&e.ooms),
		Failures:         atomic.LoadInt64(&e.failures),
		MinHeapSearches:  atomic.LoadInt64(&e.minHeapSearches),
		MinHeapCacheHits: atomic.LoadInt64(&e.minHeapCacheHits),
	}
}

func (e *Engine) emit(ev Event) {
	if e.obs != nil {
		e.obs(ev)
	}
}

// recordJob emits an engine-level telemetry event stamped with job identity.
// Engine events carry host wall-clock timestamps (jobs have no shared virtual
// clock); Value is the job's heap size in MB.
func (e *Engine) recordJob(kind obs.Kind, j Job, k Key, dur, cpu float64, errStr string) {
	if !e.rec.Enabled() {
		return
	}
	e.rec.Record(obs.Event{
		Kind:      kind,
		TNS:       time.Now().UnixNano(),
		Run:       string(k),
		Benchmark: j.Desc.Name,
		Collector: j.Cfg.Collector.String(),
		DurNS:     dur,
		CPUNS:     cpu,
		Value:     j.Cfg.HeapMB,
		Err:       errStr,
	})
}

func jobEvent(kind EventKind, j Job) Event {
	return Event{
		Kind:      kind,
		Key:       j.Key(),
		Benchmark: j.Desc.Name,
		Collector: j.Cfg.Collector.String(),
		HeapMB:    j.Cfg.HeapMB,
		Seed:      j.Cfg.Seed,
	}
}

// Submit registers one invocation of the benchmark under cfg as an engine
// job and returns immediately with a ticket for its outcome. The job is
// deduplicated against identical in-flight submissions (single-flight: a
// second Submit for the same key shares the first's execution, from
// submission to resolution), satisfied from the in-process memo when warm,
// and otherwise enqueued on the shared worker pool, where the executing
// worker checks the persistent cache before touching the simulator.
// Submit whole sweeps up front and Wait in output order: the pool sees the
// entire batch at once, and merged results are deterministic because
// collection order is the caller's, not the scheduler's.
func (e *Engine) Submit(d *workload.Descriptor, cfg workload.RunConfig) (*Ticket, error) {
	job, err := NewJob(d, cfg)
	if err != nil {
		return nil, err
	}
	return e.submitJob(job, laneGrid, submitFlags{}), nil
}

// SubmitSpeculative registers a job whose result may never be collected: a
// harness starting grid cells from a min-heap search's unvalidated
// candidate bound. It differs from Submit in two ways. The outcome is
// retained in the in-process memo even when Options.Memoize is off, so the
// later identical real submission consumes it instead of re-running (with
// Memoize off, an uncollected speculative outcome would otherwise be lost
// the moment it resolves). And a submission racing Close is cancelled
// (ErrEngineClosed) rather than run inline — nobody is waiting on it.
// Discarded speculation is therefore only ever memo and cache entries,
// never merged output.
func (e *Engine) SubmitSpeculative(d *workload.Descriptor, cfg workload.RunConfig) (*Ticket, error) {
	job, err := NewJob(d, cfg)
	if err != nil {
		return nil, err
	}
	return e.submitJob(job, laneGrid, submitFlags{cancelOnClose: true, retain: true}), nil
}

// Run executes one invocation synchronously: Submit plus Wait. Use Submit
// directly to batch jobs; Run remains the entry point for sequential
// callers (min-heap bisection probes, nominal characterization).
func (e *Engine) Run(d *workload.Descriptor, cfg workload.RunConfig) (*workload.Result, error) {
	t, err := e.Submit(d, cfg)
	if err != nil {
		return nil, err
	}
	return t.Wait()
}

// submitFlags qualifies a submission. cancelOnClose marks the job
// speculative: refused by a closing pool, it resolves with ErrEngineClosed
// instead of executing inline. retain keeps the outcome in the in-process
// memo regardless of Options.Memoize, so a speculative result survives
// until the real submission arrives for it.
type submitFlags struct {
	cancelOnClose bool
	retain        bool
}

func (e *Engine) submitJob(job Job, ln lane, fl submitFlags) *Ticket {
	k := job.Key()
	sh := e.shard(k)
	sh.mu.Lock()
	if out, ok := sh.memo[k]; ok {
		if !e.memoize {
			// The entry is a retained speculative outcome: hand it over
			// once. Without eviction, speculation would grow an unbounded
			// memo in engines that opted out of memoization.
			delete(sh.memo, k)
		}
		sh.mu.Unlock()
		atomic.AddInt64(&e.memoHits, 1)
		return &Ticket{job: job, c: resolvedCall(out)}
	}
	if c, ok := sh.inflight[k]; ok {
		sh.mu.Unlock()
		atomic.AddInt64(&e.deduped, 1)
		return &Ticket{job: job, c: c}
	}
	c := &call{done: make(chan struct{})}
	sh.inflight[k] = c
	sh.mu.Unlock()

	e.emit(jobEvent(JobQueued, job))
	if !e.pool.submit(func() { e.runJob(job, c, fl) }, ln) {
		if fl.cancelOnClose && e.closing.Load() {
			// Speculative job racing Close: cancel instead of running it
			// inline — nothing is simulated, nothing reaches the cache, and
			// every ticket deduplicated onto this call sees the cancellation.
			sh.mu.Lock()
			delete(sh.inflight, k)
			sh.mu.Unlock()
			c.out = outcome{nil, ErrEngineClosed}
			close(c.done)
			ev := jobEvent(JobFailed, job)
			ev.Err = ErrEngineClosed.Error()
			e.emit(ev)
			return &Ticket{job: job, c: c}
		}
		// The pool lost a shutdown race: execute inline in the submitter
		// rather than panicking or dropping the job.
		e.runJob(job, c, fl)
	}
	return &Ticket{job: job, c: c}
}

// runJob executes the single flight for a registered call and resolves it.
// Runs on a pool worker (or inline in the submitter after Close).
func (e *Engine) runJob(job Job, c *call, fl submitFlags) {
	out := e.execute(job)

	k := job.Key()
	sh := e.shard(k)
	sh.mu.Lock()
	delete(sh.inflight, k)
	if (e.memoize || fl.retain) && cacheable(out) {
		sh.memo[k] = out
	}
	sh.mu.Unlock()
	c.out = out
	close(c.done)
}

// cacheable reports whether the outcome is a stable property of the job
// (success or OOM) rather than a transient failure.
func cacheable(out outcome) bool {
	if out.err == nil {
		return true
	}
	var oom *workload.ErrOutOfMemory
	return errors.As(out.err, &oom)
}

// execute satisfies a job from the cache or runs it, entirely on the
// calling (worker) goroutine.
func (e *Engine) execute(job Job) outcome {
	k := job.Key()
	if e.cache != nil {
		if rec, ok := e.cache.getInvocation(k); ok {
			atomic.AddInt64(&e.cacheHits, 1)
			e.emit(jobEvent(JobCacheHit, job))
			e.recordJob(obs.KindCacheHit, job, k, 0, 0, "")
			if rec.OOM {
				return outcome{nil, &workload.ErrOutOfMemory{
					Workload: job.Desc.Name, HeapMB: job.Cfg.HeapMB, Kind: job.Cfg.Collector,
				}}
			}
			e.noteCost(job, rec.Result)
			return outcome{rec.Result, nil}
		}
		e.recordJob(obs.KindCacheMiss, job, k, 0, 0, "")
	}

	// Telemetry for the run goes into a worker-owned per-job buffer — a
	// recorder already set on the config, or the engine's, receives the
	// whole run's events in one batch at the job boundary, so concurrent
	// invocations never contend the shared sink per event. A simulator run
	// records from exactly one goroutine, so the buffer needs no lock.
	base := obs.Or(job.Cfg.Recorder)
	if !base.Enabled() {
		base = e.rec
	}
	var buf *jobRecorder
	if base.Enabled() || e.traceDir != "" {
		buf = e.bufs.Get().(*jobRecorder)
		buf.reset(string(k), job.Desc.Name, job.Cfg.Collector.String())
		job.Cfg.Recorder = buf
	}

	e.emit(jobEvent(JobStarted, job))
	e.recordJob(obs.KindJobStart, job, k, 0, 0, "")
	hostStart := time.Now()
	res, err := e.runFn(job.Desc, job.Cfg)
	atomic.AddInt64(&e.executed, 1)
	out := outcome{res, err}

	if buf != nil {
		obs.RecordAll(base, buf.events)
		if e.traceDir != "" {
			if werr := e.writeJobTrace(k, buf.events); werr != nil && out.err == nil {
				out = outcome{nil, fmt.Errorf("exper: writing %s trace: %w", job.Desc.Name, werr)}
			}
		}
		e.bufs.Put(buf)
	}

	if err != nil {
		e.recordJob(obs.KindJobFinish, job, k, float64(time.Since(hostStart)), 0, err.Error())
	} else {
		var cpu float64
		for _, it := range res.Iterations {
			cpu += it.CPUNS
		}
		e.recordJob(obs.KindJobFinish, job, k, float64(time.Since(hostStart)), cpu, "")
	}

	if out.err != nil {
		var oom *workload.ErrOutOfMemory
		if errors.As(out.err, &oom) {
			atomic.AddInt64(&e.ooms, 1)
			if e.cache != nil {
				e.cache.putInvocation(k, e.record(job, nil, true))
			}
		} else {
			atomic.AddInt64(&e.failures, 1)
		}
		ev := jobEvent(JobFailed, job)
		ev.Err = out.err.Error()
		e.emit(ev)
		return out
	}

	e.noteCost(job, out.res)
	if e.cache != nil {
		e.cache.putInvocation(k, e.record(job, out.res, false))
	}
	ev := jobEvent(JobFinished, job)
	for _, it := range out.res.Iterations {
		ev.WallNS += it.WallNS
		ev.CPUNS += it.CPUNS
	}
	e.emit(ev)
	return out
}

func (e *Engine) record(job Job, res *workload.Result, oom bool) *persist.InvocationRecord {
	return &persist.InvocationRecord{
		Key:       string(job.Key()),
		Workload:  job.Desc.Name,
		Collector: job.Cfg.Collector.String(),
		HeapMB:    job.Cfg.HeapMB,
		Seed:      job.Cfg.Seed,
		OOM:       oom,
		Result:    res,
	}
}
