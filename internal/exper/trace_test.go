package exper_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chopin/internal/exper"
	"chopin/internal/gc"
	"chopin/internal/workload"
)

// TestTraceDirWritesPerJobTimeline checks Options.TraceDir captures each
// executed job's telemetry as a loadable Chrome trace file named by key,
// and that cache-free re-execution of the same key overwrites cleanly.
func TestTraceDirWritesPerJobTimeline(t *testing.T) {
	dir := t.TempDir()
	eng := exper.New(exper.Options{Workers: 2, TraceDir: dir})
	defer eng.Close()

	d, err := workload.ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.RunConfig{
		HeapMB: d.LiveMB * 2.2, Collector: gc.Shenandoah, Events: 200, Seed: 3,
	}
	if _, err := eng.Run(d, cfg); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d trace files, want 1", len(entries))
	}
	name := entries[0].Name()
	if !strings.HasSuffix(name, ".trace.json") {
		t.Fatalf("trace file %q lacks .trace.json suffix", name)
	}
	job, err := exper.NewJob(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := string(job.Key()) + ".trace.json"; name != want {
		t.Fatalf("trace file %q, want %q (named by job key)", name, want)
	}

	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var spans int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("trace file contains no spans")
	}
}

// TestTraceDirUnsetWritesNothing locks the default: no TraceDir, no files
// and no per-job buffering.
func TestTraceDirUnsetWritesNothing(t *testing.T) {
	eng := exper.New(exper.Options{Workers: 1})
	defer eng.Close()
	d, err := workload.ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(d, workload.RunConfig{
		HeapMB: d.LiveMB * 3, Collector: gc.G1, Events: 150, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
}
