package exper

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"chopin/internal/workload"
)

// ladderTuple is one seeded (workload, params) point in the differential
// property test's space. The search base is always G1 (the paper's GMD
// definition), so the collector axis is exercised through the probe
// configuration the params induce rather than a collector field.
type ladderTuple struct {
	bench string
	p     MinHeapParams
}

// ladderTuples enumerates 220 seeded tuples: every registered workload
// crossed with ten parameter variations — seeds, event counts, invocation
// counts and iteration counts all vary, so the tuples cover short and long
// probe chains, single- and multi-seed validation, and every descriptor's
// live-set scale.
func ladderTuples() []ladderTuple {
	var tuples []ladderTuple
	for wi, name := range workload.Names() {
		for i := 0; i < 10; i++ {
			tuples = append(tuples, ladderTuple{
				bench: name,
				p: MinHeapParams{
					Events:      20 + 10*(i%2),
					Iterations:  1,
					Invocations: 1 + i%2,
					Seed:        uint64(1_000*wi + 37*i + 1),
				},
			})
		}
	}
	return tuples
}

// TestLadderMatchesSequentialReference is the differential property test for
// the parallel probe ladder: for 220 seeded (workload, params) tuples, the
// ladder's MinHeapMB must equal ReferenceMinHeapMB — the retained sequential
// searcher, kept as the oracle the way sim.NewReferenceEngine is for the
// scheduler — bit for bit, including error outcomes. The engine forces a
// ladder width above 1 so the speculation tree and validation look-ahead are
// exercised even on single-core hosts where the auto width degenerates.
func TestLadderMatchesSequentialReference(t *testing.T) {
	tuples := ladderTuples()
	if testing.Short() {
		tuples = tuples[:len(tuples)/8]
	}
	e := New(Options{Workers: 4, LadderWidth: 4, Memoize: true})
	defer e.Close()
	for _, tc := range tuples {
		d, err := workload.ByName(tc.bench)
		if err != nil {
			t.Fatal(err)
		}
		got, gotErr := e.MinHeapMB(d, tc.p)
		want, wantErr := e.ReferenceMinHeapMB(d, tc.p)
		if (gotErr == nil) != (wantErr == nil) ||
			(gotErr != nil && gotErr.Error() != wantErr.Error()) {
			t.Fatalf("%s %+v: ladder err %v, reference err %v", tc.bench, tc.p, gotErr, wantErr)
		}
		if got != want {
			t.Fatalf("%s %+v: ladder %vMB, reference %vMB", tc.bench, tc.p, got, want)
		}
	}
}

// TestLadderWidthInvariance pins the width-independence claim directly:
// the same tuple searched at widths 1, 2, 3 and 8 — from the degenerate
// sequential ladder to a deeper speculation tree than any auto
// configuration — must produce the identical bound. Each width gets a fresh
// engine so nothing is served from a previous width's memo.
func TestLadderWidthInvariance(t *testing.T) {
	d, err := workload.ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	p := MinHeapParams{Events: 60, Iterations: 1, Invocations: 2, Seed: 11}
	var bounds []float64
	for _, width := range []int{1, 2, 3, 8} {
		e := New(Options{Workers: 4, LadderWidth: width})
		mb, err := e.MinHeapMB(d, p)
		e.Close()
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		bounds = append(bounds, mb)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != bounds[0] {
			t.Fatalf("bounds vary with ladder width: %v", bounds)
		}
	}
}

// TestCloseDuringLadderCancelsCleanly is the shutdown stress test: Close
// racing an in-flight ladder must cancel the outstanding speculative probes
// cleanly — the ticket resolves with ErrEngineClosed in its chain (never
// hangs), no partial ladder is written to the persistent cache, and no
// orchestration or probe goroutine leaks. The sleep schedule sweeps the
// close point across the search's phases so some iterations interrupt the
// exponential ladder, some the bisection tree, some the validation rungs,
// and some lose the race entirely (which must then have cached a complete,
// correct record).
func TestCloseDuringLadderCancelsCleanly(t *testing.T) {
	d, err := workload.ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	for i := 0; i < 20; i++ {
		dir := t.TempDir()
		cache, err := OpenCache(dir, ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		e := New(Options{Workers: 2, LadderWidth: 4, Cache: cache})
		p := MinHeapParams{Events: 120, Iterations: 1, Invocations: 2, Seed: uint64(i + 1)}
		tk, err := e.SubmitMinHeap(d, p)
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(i) * 2 * time.Millisecond)
		if err := e.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", i, err)
		}

		select {
		case <-tk.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("iter %d: ticket never resolved after Close", i)
		}
		mb, waitErr := tk.Wait()
		if err := cache.Close(); err != nil {
			t.Fatalf("iter %d: cache close: %v", i, err)
		}

		// Reopen the cache: a cancelled search must have written nothing; a
		// search that beat the close must have written the full record.
		reopened, err := OpenCache(dir, ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		k, err := minHeapKey(d, p)
		if err != nil {
			t.Fatal(err)
		}
		rec, cached := reopened.getMinHeap(k)
		if err := reopened.Close(); err != nil {
			t.Fatal(err)
		}
		if waitErr != nil {
			if !errors.Is(waitErr, ErrEngineClosed) {
				t.Fatalf("iter %d: ticket error %v, want ErrEngineClosed in chain", i, waitErr)
			}
			if cached {
				t.Fatalf("iter %d: cancelled ladder persisted a partial record: %+v", i, rec)
			}
		} else if cached && rec.MinHeapMB != mb {
			t.Fatalf("iter %d: cached %vMB, ticket resolved %vMB", i, rec.MinHeapMB, mb)
		}
	}

	// Goroutine-leak check: allow the runtime a moment to retire workers.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutines leaked across shutdowns: %d now vs %d at start", n, baseline)
	}
}

// TestSubmitSpeculativeRefusedAfterClose pins the cancellation contract:
// a speculative submission against a closed engine resolves immediately
// with ErrEngineClosed instead of running inline (ordinary Submit keeps
// the inline fallback — see TestRunAfterCloseExecutesInline).
func TestSubmitSpeculativeRefusedAfterClose(t *testing.T) {
	e := New(Options{Workers: 1})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	d := testBench(t)
	tk, err := e.SubmitSpeculative(d, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("speculative submit after Close resolved %v, want ErrEngineClosed", err)
	}
	if s := e.Stats(); s.Executed != 0 {
		t.Fatalf("speculative submit after Close executed inline: %+v", s)
	}
}

// TestSubmitSpeculativeRetainsOnce pins the discard semantics the harness's
// grid speculation relies on: with memoization off, a speculative result is
// retained for exactly one later consumer — the real grid submission — and
// then dropped, so discarded speculation is bounded memory, not a leak.
func TestSubmitSpeculativeRetainsOnce(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	d := testBench(t)

	tk, err := e.SubmitSpeculative(d, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(d, smallCfg()); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Executed != 1 || s.MemoHits != 1 {
		t.Fatalf("stats after speculate+run = %+v, want the run served from the retained result", s)
	}
	// The retained entry was consumed: a further run executes again.
	if _, err := e.Run(d, smallCfg()); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Executed != 2 {
		t.Fatalf("stats after second run = %+v, want re-execution (consume-once)", s)
	}
}

// TestPoolAnchorLanePreemptsGrid pins the priority inversion the ladder
// depends on: with both lanes populated, a worker drains its anchor lane
// before touching grid work, so min-heap probes are never stuck behind a
// backlog of speculative grid cells.
func TestPoolAnchorLanePreemptsGrid(t *testing.T) {
	p := newPool(1)
	defer p.close()

	release := make(chan struct{})
	started := make(chan struct{})
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup

	p.submit(func() {
		close(started)
		<-release
	}, laneGrid)
	<-started // the single worker is now occupied; later submits queue up

	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		p.submit(func() {
			mu.Lock()
			order = append(order, fmt.Sprintf("grid%d", i))
			mu.Unlock()
			wg.Done()
		}, laneGrid)
	}
	wg.Add(1)
	p.submit(func() {
		mu.Lock()
		order = append(order, "anchor")
		mu.Unlock()
		wg.Done()
	}, laneAnchor)

	close(release)
	wg.Wait()

	if len(order) != 4 || order[0] != "anchor" {
		t.Fatalf("execution order %v, want the anchor task first", order)
	}
}
