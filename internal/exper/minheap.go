package exper

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chopin/internal/gc"
	"chopin/internal/nominal"
	"chopin/internal/obs"
	"chopin/internal/persist"
	"chopin/internal/workload"
)

// minHeapGrowthAttempts bounds how many times a candidate minimum heap is
// grown by minHeapGrowthFactor while validating it against every invocation
// seed a sweep will use.
const (
	minHeapGrowthAttempts = 20
	minHeapGrowthFactor   = 1.03
)

// minHeapExpRounds is the exponential search's doubling budget, identical
// to the sequential reference (nominal.MinHeapWith).
const minHeapExpRounds = 24

// MinHeapTicket is a handle to an asynchronous minimum-heap measurement.
// In a plan's job DAG it is the prerequisite node: every sweep's heap sizes
// derive from its result, so harnesses submit the min-heap measurements for
// all workloads up front and attach each grid as a dependent the moment its
// anchor resolves.
//
// A ticket additionally exposes the search's candidate bound — the bisection
// result, before seed validation — the moment it is known. Harnesses on a
// speculative engine use it to start grid cells early, overlapping grid work
// with the validation tail of its own anchor.
type MinHeapTicket struct {
	key  Key
	done chan struct{}
	mb   float64
	err  error

	candSet atomic.Bool
	candMB  float64
	cand    chan struct{}
}

// Wait blocks until the measurement completes and returns the bound in MB.
func (t *MinHeapTicket) Wait() (float64, error) {
	<-t.done
	return t.mb, t.err
}

// Done is closed when the measurement completes.
func (t *MinHeapTicket) Done() <-chan struct{} { return t.done }

// Key returns the canonical content hash of the measurement.
func (t *MinHeapTicket) Key() Key { return t.key }

// CandidateReady is closed once the search's candidate bound is known —
// after bisection, before validation (or at resolution, whichever is
// first). It never closes when the search fails before producing one; pair
// it with Done in a select.
func (t *MinHeapTicket) CandidateReady() <-chan struct{} { return t.cand }

// Candidate returns the candidate bound, valid only after CandidateReady.
// The candidate is a speculation target, not a result: validation may still
// grow the final bound above it.
func (t *MinHeapTicket) Candidate() (float64, bool) {
	select {
	case <-t.cand:
		return t.candMB, true
	default:
		return 0, false
	}
}

// setCandidate publishes the candidate bound once; later calls are no-ops.
func (t *MinHeapTicket) setCandidate(mb float64) {
	if t.candSet.CompareAndSwap(false, true) {
		t.candMB = mb
		close(t.cand)
	}
}

func newMinHeapTicket(k Key) *MinHeapTicket {
	return &MinHeapTicket{key: k, done: make(chan struct{}), cand: make(chan struct{})}
}

func resolvedMinHeapTicket(k Key, mb float64) *MinHeapTicket {
	t := newMinHeapTicket(k)
	t.mb = mb
	t.setCandidate(mb)
	close(t.done)
	return t
}

// SubmitMinHeap starts measuring the benchmark's minimum viable heap under p
// and returns immediately with a ticket for the bound. The measurement runs
// as a speculative parallel probe ladder — every probe an ordinary
// content-addressed engine job on the pool's anchor lane, submitted up to
// the engine's ladder width ahead of the arbiter that consumes them — on a
// dedicated orchestration goroutine, off the pool, so probe jobs always
// have workers to land on. Measurements are content-addressed,
// single-flighted (concurrent submissions for the same key share one
// search), memoized in-process and persisted in the cache.
func (e *Engine) SubmitMinHeap(d *workload.Descriptor, p MinHeapParams) (*MinHeapTicket, error) {
	if p.Invocations < 1 {
		p.Invocations = 1
	}
	if p.Iterations < 1 {
		p.Iterations = 1
	}
	k, err := minHeapKey(d, p)
	if err != nil {
		return nil, err
	}

	sh := e.shard(k)
	sh.mu.Lock()
	if mb, ok := sh.minMemo[k]; ok {
		sh.mu.Unlock()
		return resolvedMinHeapTicket(k, mb), nil
	}
	if t, ok := sh.minflight[k]; ok {
		sh.mu.Unlock()
		return t, nil
	}
	t := newMinHeapTicket(k)
	sh.minflight[k] = t
	sh.mu.Unlock()

	go func() {
		mb, err := e.minHeap(t, k, d, p)
		sh.mu.Lock()
		delete(sh.minflight, k)
		if err == nil {
			sh.minMemo[k] = mb
		}
		sh.mu.Unlock()
		t.mb, t.err = mb, err
		if err == nil {
			t.setCandidate(mb)
		}
		close(t.done)
	}()
	return t, nil
}

// MinHeapMB measures the benchmark's minimum viable heap under p: a
// bracketing search (every probe an engine job, so probes dedup and cache
// like any other invocation), then validation of the bound against every
// invocation seed the sweep will use, growing it 3% per failed attempt.
// Synchronous form of SubmitMinHeap.
//
// Unlike the pre-engine harness, a bound that still fails validation after
// 20 growth attempts is an error — not a silently returned heap size whose
// 1x row then OOMs its way through the whole sweep.
func (e *Engine) MinHeapMB(d *workload.Descriptor, p MinHeapParams) (float64, error) {
	t, err := e.SubmitMinHeap(d, p)
	if err != nil {
		return 0, err
	}
	return t.Wait()
}

// ReferenceMinHeapMB measures the bound with the pre-ladder sequential
// algorithm — nominal.MinHeapWith's exponential-then-bisection search
// followed by serial 3%-growth seed validation — bypassing the min-heap
// memo and cache. It is the differential oracle for the parallel probe
// ladder, the way sim.NewReferenceEngine is for the O(log n) scheduler:
// for any (workload, params), MinHeapMB and ReferenceMinHeapMB must agree
// bit-for-bit, at every ladder width.
func (e *Engine) ReferenceMinHeapMB(d *workload.Descriptor, p MinHeapParams) (float64, error) {
	if p.Invocations < 1 {
		p.Invocations = 1
	}
	if p.Iterations < 1 {
		p.Iterations = 1
	}
	base := minHeapBase(p)
	bound, err := nominal.MinHeapWith(e.Run, d, base, 1)
	if err != nil {
		return 0, fmt.Errorf("measuring min heap for %s: %w", d.Name, err)
	}
	return validateMinHeap(e.Run, d, base, bound, p)
}

func minHeapEvent(kind EventKind, d *workload.Descriptor, k Key, mb float64) Event {
	return Event{Kind: kind, Key: k, Benchmark: d.Name, MinHeapMB: mb}
}

// minHeapBase is the probe configuration every measurement derives from:
// the paper's GMD definition anchors min-heap bounds on the baseline G1
// collector.
func minHeapBase(p MinHeapParams) workload.RunConfig {
	return workload.RunConfig{
		Collector:  gc.G1,
		Iterations: 1,
		Events:     p.Events,
		Seed:       p.Seed,
	}
}

// minHeap runs one measurement: ladder search, candidate publication,
// ladder validation, then — only on success — the cache write, so a search
// aborted by Close never persists a partial result.
func (e *Engine) minHeap(t *MinHeapTicket, k Key, d *workload.Descriptor, p MinHeapParams) (float64, error) {
	if e.cache != nil {
		if rec, ok := e.cache.getMinHeap(k); ok {
			atomic.AddInt64(&e.minHeapCacheHits, 1)
			e.emit(minHeapEvent(MinHeapCacheHit, d, k, rec.MinHeapMB))
			e.recordMinHeap(obs.KindCacheHit, d, k, rec.MinHeapMB)
			return rec.MinHeapMB, nil
		}
		e.recordMinHeap(obs.KindCacheMiss, d, k, 0)
	}

	e.emit(minHeapEvent(MinHeapStarted, d, k, 0))
	atomic.AddInt64(&e.minHeapSearches, 1)

	base := minHeapBase(p)
	bound, err := e.ladderSearch(d, base, 1)
	if err != nil {
		return 0, fmt.Errorf("measuring min heap for %s: %w", d.Name, err)
	}
	t.setCandidate(bound)
	bound, err = e.ladderValidate(d, base, bound, p)
	if err != nil {
		return 0, err
	}

	if e.cache != nil {
		rec := &persist.MinHeapRecord{Key: string(k), Workload: d.Name, MinHeapMB: bound}
		if werr := e.cache.putMinHeap(k, rec); werr != nil {
			return 0, fmt.Errorf("exper: caching %s min heap: %w", d.Name, werr)
		}
	}
	e.emit(minHeapEvent(MinHeapFinished, d, k, bound))
	e.recordMinHeap(obs.KindMinHeap, d, k, bound)
	return bound, nil
}

// recordMinHeap emits a telemetry event for min-heap measurement accounting;
// Value carries the measured bound in MB (zero before measurement).
func (e *Engine) recordMinHeap(kind obs.Kind, d *workload.Descriptor, k Key, mb float64) {
	if !e.rec.Enabled() {
		return
	}
	e.rec.Record(obs.Event{
		Kind: kind, TNS: time.Now().UnixNano(),
		Run: string(k), Benchmark: d.Name, Value: mb,
	})
}

// probeSet tracks a search's in-flight feasibility probes, keyed by heap
// size. Probes are speculative engine jobs on the anchor lane: submitting
// one the arbiter later turns out not to need costs a cache entry, never
// correctness, and re-submitting a size is a map lookup (plus the engine's
// own single-flight underneath). Probes are cancellable — a Close racing
// the search resolves outstanding probes with ErrEngineClosed, which the
// search surfaces as a hard error without writing anything.
type probeSet struct {
	e    *Engine
	d    *workload.Descriptor
	base workload.RunConfig
	m    map[float64]*Ticket
}

func newProbeSet(e *Engine, d *workload.Descriptor, base workload.RunConfig) *probeSet {
	return &probeSet{e: e, d: d, base: base, m: map[float64]*Ticket{}}
}

// submit ensures a probe for heapMB is in flight.
func (ps *probeSet) submit(heapMB float64) error {
	if _, ok := ps.m[heapMB]; ok {
		return nil
	}
	cfg := ps.base
	cfg.HeapMB = heapMB
	job, err := NewJob(ps.d, cfg)
	if err != nil {
		return err
	}
	ps.m[heapMB] = ps.e.submitJob(job, laneAnchor, submitFlags{cancelOnClose: true})
	return nil
}

// completes resolves the probe at heapMB: feasible, infeasible (OOM), or a
// hard error. Identical decision semantics to the sequential reference's
// completes closure.
func (ps *probeSet) completes(heapMB float64) (bool, error) {
	if err := ps.submit(heapMB); err != nil {
		return false, err
	}
	_, err := ps.m[heapMB].Wait()
	if err == nil {
		return true, nil
	}
	var oom *workload.ErrOutOfMemory
	if errors.As(err, &oom) {
		return false, nil
	}
	return false, err
}

// ladderSearch finds the minimum completing heap by speculative parallel
// probing, bit-identical to nominal.MinHeapWith(run, d, base, tolMB): the
// arbiter below replays the sequential decision procedure exactly —
// identical float arithmetic, identical probe outcomes (content-addressed
// jobs are deterministic), identical branch order — and only the set of
// *additionally* submitted speculative probes varies with the ladder width.
//
// Phase 1 is the exponential upper-bound search: the doubling sequence is
// known in advance, so the ladder keeps `width` rungs in flight while the
// arbiter consumes outcomes in rung order. Phase 2 is bisection: each
// midpoint depends on the previous verdict, so the ladder instead submits
// the full binary tree of the next `depth` rounds' possible midpoints
// (2^depth − 1 ≤ width probes) and the arbiter walks the realized path —
// every probe it needs is already warm, whichever way the verdicts fall.
// An O(k)-deep sequential probe chain becomes O(k/depth) rounds of
// parallel work.
func (e *Engine) ladderSearch(d *workload.Descriptor, base workload.RunConfig, tolMB float64) (float64, error) {
	width := e.ladderWidth
	ps := newProbeSet(e, d, base)

	// Phase 1: exponential search for a feasible upper bound, same start
	// and doubling budget as the sequential reference.
	start := d.LiveMB + 4
	if start < 4 {
		start = 4
	}
	rungs := make([]float64, minHeapExpRounds)
	for i, v := 0, start; i < len(rungs); i++ {
		rungs[i] = v
		v *= 2
	}
	found := -1
	for i := 0; i < len(rungs) && found < 0; i++ {
		for j := i; j < len(rungs) && j < i+width; j++ {
			if err := ps.submit(rungs[j]); err != nil {
				return 0, err
			}
		}
		ok, err := ps.completes(rungs[i])
		if err != nil {
			return 0, err
		}
		if ok {
			found = i
		}
	}
	if found < 0 {
		// Byte-identical to the sequential reference's exhaustion error,
		// which reports the bound after its final doubling.
		return 0, fmt.Errorf("nominal: %s does not complete even at %.0fMB",
			d.Name, rungs[len(rungs)-1]*2)
	}
	hi := rungs[found]
	lo := hi / 2
	if hi == d.LiveMB+4 {
		lo = 1
	}

	// Phase 2: bisection. depth is the largest tree the width affords;
	// width 1 degenerates to the sequential one-probe-per-round search.
	depth := 1
	for (1<<(depth+1))-1 <= width {
		depth++
	}
	cond := func(lo, hi float64) bool { return hi-lo > tolMB && hi-lo > hi*0.01 }
	var speculate func(lo, hi float64, levels int) error
	speculate = func(lo, hi float64, levels int) error {
		if levels == 0 || !cond(lo, hi) {
			return nil
		}
		mid := (lo + hi) / 2
		if err := ps.submit(mid); err != nil {
			return err
		}
		if err := speculate(lo, mid, levels-1); err != nil {
			return err
		}
		return speculate(mid, hi, levels-1)
	}
	for cond(lo, hi) {
		if depth > 1 {
			if err := speculate(lo, hi, depth); err != nil {
				return 0, err
			}
		}
		for level := 0; level < depth && cond(lo, hi); level++ {
			mid := (lo + hi) / 2
			ok, err := ps.completes(mid)
			if err != nil {
				return 0, err
			}
			if ok {
				hi = mid
			} else {
				lo = mid
			}
		}
	}
	return hi, nil
}

// ladderValidate confirms the searched bound completes under every
// invocation seed the sweep will use, growing it by 3% per failed attempt —
// the same attempts, seeds, growth arithmetic and error semantics as the
// sequential validateMinHeap, but with the next few growth rungs' whole
// invocation batches speculatively in flight while the arbiter scans the
// current rung. An OOM under any seed fails the attempt; any other error
// aborts the measurement. A bound that never validates is an error.
func (e *Engine) ladderValidate(d *workload.Descriptor, base workload.RunConfig, bound float64, p MinHeapParams) (float64, error) {
	// Growth rungs beyond the next couple are usually dead speculation —
	// most bounds validate within a rung or two — so cap the look-ahead
	// below the probe ladder's width.
	ahead := e.ladderWidth
	if ahead > 4 {
		ahead = 4
	}

	// The rung values replay the sequential search's cumulative float
	// multiplication exactly; vals[minHeapGrowthAttempts] is the value the
	// exhaustion error reports (grown once more after the last attempt).
	vals := make([]float64, minHeapGrowthAttempts+1)
	for i, v := 0, bound; i < len(vals); i++ {
		vals[i] = v
		v *= minHeapGrowthFactor
	}

	rungs := make([][]*Ticket, minHeapGrowthAttempts)
	submitRung := func(r int) error {
		if rungs[r] != nil {
			return nil
		}
		rungs[r] = make([]*Ticket, 0, p.Invocations)
		for i := 0; i < p.Invocations; i++ {
			cfg := base
			cfg.HeapMB = vals[r]
			cfg.Iterations = p.Iterations
			cfg.Seed = p.Seed + uint64(i)*1_000_003 + 17
			job, err := NewJob(d, cfg)
			if err != nil {
				return err
			}
			rungs[r] = append(rungs[r], e.submitJob(job, laneAnchor, submitFlags{cancelOnClose: true}))
		}
		return nil
	}

	for attempt := 0; attempt < minHeapGrowthAttempts; attempt++ {
		for j := attempt; j < minHeapGrowthAttempts && j < attempt+ahead; j++ {
			if err := submitRung(j); err != nil {
				return 0, err
			}
		}
		// Arbiter: scan the rung's invocations in seed order — the first
		// non-OOM error aborts, any OOM fails the attempt — exactly the
		// sequential scan over its errs slice.
		ok := true
		for _, tk := range rungs[attempt] {
			_, err := tk.Wait()
			if err == nil {
				continue
			}
			var oom *workload.ErrOutOfMemory
			if !errors.As(err, &oom) {
				return 0, fmt.Errorf("validating min heap for %s: %w", d.Name, err)
			}
			ok = false
		}
		if ok {
			return vals[attempt], nil
		}
	}
	return 0, fmt.Errorf("exper: %s: minimum heap failed validation after %d growth attempts (reached %.1fMB)",
		d.Name, minHeapGrowthAttempts, vals[minHeapGrowthAttempts])
}

// validateMinHeap is the sequential validation the ladder replays: serial
// growth rounds, each round's invocations in parallel goroutines. Retained
// as the reference oracle's second half (ReferenceMinHeapMB) and pinned by
// the ladder-equivalence property test.
func validateMinHeap(run nominal.RunFunc, d *workload.Descriptor, base workload.RunConfig, bound float64, p MinHeapParams) (float64, error) {
	for attempt := 0; attempt < minHeapGrowthAttempts; attempt++ {
		errs := make([]error, p.Invocations)
		var wg sync.WaitGroup
		for i := 0; i < p.Invocations; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cfg := base
				cfg.HeapMB = bound
				cfg.Iterations = p.Iterations
				cfg.Seed = p.Seed + uint64(i)*1_000_003 + 17
				_, errs[i] = run(d, cfg)
			}(i)
		}
		wg.Wait()

		ok := true
		for _, err := range errs {
			if err == nil {
				continue
			}
			var oom *workload.ErrOutOfMemory
			if !errors.As(err, &oom) {
				return 0, fmt.Errorf("validating min heap for %s: %w", d.Name, err)
			}
			ok = false
		}
		if ok {
			return bound, nil
		}
		bound *= minHeapGrowthFactor
	}
	return 0, fmt.Errorf("exper: %s: minimum heap failed validation after %d growth attempts (reached %.1fMB)",
		d.Name, minHeapGrowthAttempts, bound)
}
