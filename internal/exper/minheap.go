package exper

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chopin/internal/gc"
	"chopin/internal/nominal"
	"chopin/internal/obs"
	"chopin/internal/persist"
	"chopin/internal/workload"
)

// minHeapGrowthAttempts bounds how many times a candidate minimum heap is
// grown by minHeapGrowthFactor while validating it against every invocation
// seed a sweep will use.
const (
	minHeapGrowthAttempts = 20
	minHeapGrowthFactor   = 1.03
)

// MinHeapTicket is a handle to an asynchronous minimum-heap measurement.
// In a plan's job DAG it is the prerequisite node: every sweep's heap sizes
// derive from its result, so harnesses submit the min-heap measurements for
// all workloads up front and attach each grid as a dependent the moment its
// anchor resolves.
type MinHeapTicket struct {
	key  Key
	done chan struct{}
	mb   float64
	err  error
}

// Wait blocks until the measurement completes and returns the bound in MB.
func (t *MinHeapTicket) Wait() (float64, error) {
	<-t.done
	return t.mb, t.err
}

// Key returns the canonical content hash of the measurement.
func (t *MinHeapTicket) Key() Key { return t.key }

func resolvedMinHeapTicket(k Key, mb float64) *MinHeapTicket {
	t := &MinHeapTicket{key: k, done: make(chan struct{}), mb: mb}
	close(t.done)
	return t
}

// SubmitMinHeap starts measuring the benchmark's minimum viable heap under p
// and returns immediately with a ticket for the bound. The measurement —
// bisection search plus seed validation, every probe an ordinary engine job
// sharing the worker pool — runs on a dedicated orchestration goroutine, off
// the pool, so probe jobs always have workers to land on. Measurements are
// content-addressed, single-flighted (concurrent submissions for the same
// key share one search), memoized in-process and persisted in the cache.
func (e *Engine) SubmitMinHeap(d *workload.Descriptor, p MinHeapParams) (*MinHeapTicket, error) {
	if p.Invocations < 1 {
		p.Invocations = 1
	}
	if p.Iterations < 1 {
		p.Iterations = 1
	}
	k, err := minHeapKey(d, p)
	if err != nil {
		return nil, err
	}

	sh := e.shard(k)
	sh.mu.Lock()
	if mb, ok := sh.minMemo[k]; ok {
		sh.mu.Unlock()
		return resolvedMinHeapTicket(k, mb), nil
	}
	if t, ok := sh.minflight[k]; ok {
		sh.mu.Unlock()
		return t, nil
	}
	t := &MinHeapTicket{key: k, done: make(chan struct{})}
	sh.minflight[k] = t
	sh.mu.Unlock()

	go func() {
		mb, err := e.minHeap(k, d, p)
		sh.mu.Lock()
		delete(sh.minflight, k)
		if err == nil {
			sh.minMemo[k] = mb
		}
		sh.mu.Unlock()
		t.mb, t.err = mb, err
		close(t.done)
	}()
	return t, nil
}

// MinHeapMB measures the benchmark's minimum viable heap under p: a
// bisection search (every probe an engine job, so probes dedup and cache
// like any other invocation), then validation of the bound against every
// invocation seed the sweep will use, growing it 3% per failed attempt.
// Synchronous form of SubmitMinHeap.
//
// Unlike the pre-engine harness, a bound that still fails validation after
// 20 growth attempts is an error — not a silently returned heap size whose
// 1x row then OOMs its way through the whole sweep.
func (e *Engine) MinHeapMB(d *workload.Descriptor, p MinHeapParams) (float64, error) {
	t, err := e.SubmitMinHeap(d, p)
	if err != nil {
		return 0, err
	}
	return t.Wait()
}

func minHeapEvent(kind EventKind, d *workload.Descriptor, k Key, mb float64) Event {
	return Event{Kind: kind, Key: k, Benchmark: d.Name, MinHeapMB: mb}
}

func (e *Engine) minHeap(k Key, d *workload.Descriptor, p MinHeapParams) (float64, error) {
	if e.cache != nil {
		if rec, ok := e.cache.getMinHeap(k); ok {
			atomic.AddInt64(&e.minHeapCacheHits, 1)
			e.emit(minHeapEvent(MinHeapCacheHit, d, k, rec.MinHeapMB))
			e.recordMinHeap(obs.KindCacheHit, d, k, rec.MinHeapMB)
			return rec.MinHeapMB, nil
		}
		e.recordMinHeap(obs.KindCacheMiss, d, k, 0)
	}

	e.emit(minHeapEvent(MinHeapStarted, d, k, 0))
	atomic.AddInt64(&e.minHeapSearches, 1)

	base := workload.RunConfig{
		Collector:  gc.G1,
		Iterations: 1,
		Events:     p.Events,
		Seed:       p.Seed,
	}
	min, err := nominal.MinHeapWith(e.Run, d, base, 1)
	if err != nil {
		return 0, fmt.Errorf("measuring min heap for %s: %w", d.Name, err)
	}
	min, err = validateMinHeap(e.Run, d, base, min, p)
	if err != nil {
		return 0, err
	}

	if e.cache != nil {
		rec := &persist.MinHeapRecord{Key: string(k), Workload: d.Name, MinHeapMB: min}
		if werr := e.cache.putMinHeap(k, rec); werr != nil {
			return 0, fmt.Errorf("exper: caching %s min heap: %w", d.Name, werr)
		}
	}
	e.emit(minHeapEvent(MinHeapFinished, d, k, min))
	e.recordMinHeap(obs.KindMinHeap, d, k, min)
	return min, nil
}

// recordMinHeap emits a telemetry event for min-heap measurement accounting;
// Value carries the measured bound in MB (zero before measurement).
func (e *Engine) recordMinHeap(kind obs.Kind, d *workload.Descriptor, k Key, mb float64) {
	if !e.rec.Enabled() {
		return
	}
	e.rec.Record(obs.Event{
		Kind: kind, TNS: time.Now().UnixNano(),
		Run: string(k), Benchmark: d.Name, Value: mb,
	})
}

// validateMinHeap confirms the searched bound completes under every
// invocation seed the sweep will use, growing it by 3% per failed attempt.
// An OOM under any seed fails the attempt; any other error aborts the
// measurement. A bound that never validates is an error.
func validateMinHeap(run nominal.RunFunc, d *workload.Descriptor, base workload.RunConfig, min float64, p MinHeapParams) (float64, error) {
	for attempt := 0; attempt < minHeapGrowthAttempts; attempt++ {
		errs := make([]error, p.Invocations)
		var wg sync.WaitGroup
		for i := 0; i < p.Invocations; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cfg := base
				cfg.HeapMB = min
				cfg.Iterations = p.Iterations
				cfg.Seed = p.Seed + uint64(i)*1_000_003 + 17
				_, errs[i] = run(d, cfg)
			}(i)
		}
		wg.Wait()

		ok := true
		for _, err := range errs {
			if err == nil {
				continue
			}
			var oom *workload.ErrOutOfMemory
			if !errors.As(err, &oom) {
				return 0, fmt.Errorf("validating min heap for %s: %w", d.Name, err)
			}
			ok = false
		}
		if ok {
			return min, nil
		}
		min *= minHeapGrowthFactor
	}
	return 0, fmt.Errorf("exper: %s: minimum heap failed validation after %d growth attempts (reached %.1fMB)",
		d.Name, minHeapGrowthAttempts, min)
}
