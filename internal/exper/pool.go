package exper

import "sync"

// pool is the engine's work-stealing worker pool: each worker owns a deque,
// submissions are distributed round-robin, a worker pops its own deque LIFO
// (freshly submitted jobs have warm sweeps behind them) and steals FIFO
// from the most loaded peer when its own deque drains. One pool is shared
// across an entire experiment plan, so parallelism is bounded per-plan
// rather than per-sweep: a sweep with one straggling cell no longer idles
// the cores that its finished cells were using.
type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]func()
	next   int // round-robin submission cursor
	closed bool
	wg     sync.WaitGroup
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	p := &pool{deques: make([][]func(), workers)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// submit enqueues one task; it never blocks.
func (p *pool) submit(task func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("exper: submit on closed pool")
	}
	w := p.next % len(p.deques)
	p.next++
	p.deques[w] = append(p.deques[w], task)
	p.mu.Unlock()
	p.cond.Signal()
}

// take pops from the worker's own deque back, or steals from the front of
// the longest peer deque. Returns nil when the pool is closed and drained.
func (p *pool) take(self int) func() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if own := p.deques[self]; len(own) > 0 {
			t := own[len(own)-1]
			p.deques[self] = own[:len(own)-1]
			return t
		}
		victim, best := -1, 0
		for i, dq := range p.deques {
			if i != self && len(dq) > best {
				victim, best = i, len(dq)
			}
		}
		if victim >= 0 {
			t := p.deques[victim][0]
			p.deques[victim] = p.deques[victim][1:]
			return t
		}
		if p.closed {
			return nil
		}
		p.cond.Wait()
	}
}

func (p *pool) worker(self int) {
	defer p.wg.Done()
	for {
		t := p.take(self)
		if t == nil {
			return
		}
		t()
	}
}

// close stops the workers once the deques drain. Tasks already submitted
// still run; submitting afterwards panics.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
