package exper

import (
	"sync"
	"sync/atomic"
	"time"
)

// lane classifies a task's scheduling priority. The pool is critical-path
// aware: a whole-suite plan's min-heap probes and validation batches gate
// every grid cell behind them, so they must never queue behind grid
// backlog — each deque holds two lanes and workers drain anchor work first,
// both from their own deque and when stealing.
type lane int

const (
	// laneAnchor is the critical path: min-heap ladder probes and
	// validation invocations, whose latency bounds the whole plan.
	laneAnchor lane = iota
	// laneGrid is bulk backlog: sweep and latency cells that only gate
	// their own collection.
	laneGrid

	numLanes
)

// pool is the engine's work-stealing worker pool, sharded for whole-suite
// submission rates: each worker owns a deque behind its own mutex, so a
// batch of thousands of jobs submitted up front spreads across deques
// without funnelling every push and pop through one pool-wide lock (the
// pre-refactor design serialized `submit` and `take` on a single Mutex —
// measurable once every sweep cell is enqueued at once instead of trickling
// in from per-cell goroutines). Submissions are distributed round-robin by
// an atomic cursor; a worker pops its own deque LIFO (freshly submitted
// jobs have warm sweeps behind them) and steals FIFO from the most loaded
// peer when its own deque drains — anchor-lane work always before grid
// backlog. Idle workers park on a single condition variable that is only
// touched when a worker actually runs dry, keeping the steady-state path
// lock-light.
type pool struct {
	deques []dequeShard
	stats  []workerStat
	cursor atomic.Uint64 // round-robin submission cursor
	idle   atomic.Int64  // workers inside the parking protocol

	parkMu sync.Mutex // guards closed and the parking condvar
	parked *sync.Cond
	closed bool

	wg sync.WaitGroup
}

// dequeShard is one worker's deque behind its own lock, one slice per lane.
// The pad keeps neighbouring shards off one cache line, so workers pushing
// and popping concurrently do not false-share. depthMax is the shard's
// queue-depth high-water mark across both lanes.
type dequeShard struct {
	mu       sync.Mutex
	lanes    [numLanes][]func()
	depthMax int
	closed   bool
	_        [32]byte
}

// workerStat is one worker's lifetime scheduling accounting, written by the
// owning worker and read by stats snapshots. Task-grained updates (jobs are
// milliseconds) keep the atomics off any hot path.
type workerStat struct {
	busyNS  atomic.Int64 // executing tasks
	stealNS atomic.Int64 // scanning deques between tasks (awake, not running)
	parkNS  atomic.Int64 // blocked on the parking condvar
	tasks   [numLanes]atomic.Int64
	steals  atomic.Int64 // tasks taken from a peer's deque
}

// WorkerStat is a snapshot of one pool worker's scheduling accounting,
// exposed for the engine's scheduler telemetry.
type WorkerStat struct {
	Worker      int
	BusyNS      int64
	StealNS     int64
	ParkNS      int64
	AnchorTasks int64
	GridTasks   int64
	Steals      int64
	// QueueMax is the high-water depth of the worker's own deque (both
	// lanes combined).
	QueueMax int
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	p := &pool{
		deques: make([]dequeShard, workers),
		stats:  make([]workerStat, workers),
	}
	p.parked = sync.NewCond(&p.parkMu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// submit enqueues one task on ln without blocking and reports whether the
// pool accepted it. It returns false — instead of panicking, which is what
// the pre-refactor pool did and what a Close racing a straggling sweep
// would hit — once the pool has been closed; the caller then runs the task
// inline (or cancels it, for speculative probes). The shard's closed flag
// is set under the same lock that guards its deque, so a task accepted here
// is always still visible to the draining workers.
func (p *pool) submit(task func(), ln lane) bool {
	w := int(p.cursor.Add(1)-1) % len(p.deques)
	dq := &p.deques[w]
	dq.mu.Lock()
	if dq.closed {
		dq.mu.Unlock()
		return false
	}
	dq.lanes[ln] = append(dq.lanes[ln], task)
	if d := len(dq.lanes[laneAnchor]) + len(dq.lanes[laneGrid]); d > dq.depthMax {
		dq.depthMax = d
	}
	dq.mu.Unlock()

	// Wake a parked worker only when one might exist: a worker increments
	// idle under parkMu *before* its final empty re-scan, so if idle reads 0
	// here, any worker that parks later re-scans after this push and finds
	// the task itself. The busy steady state therefore never touches the
	// pool-wide parking lock.
	if p.idle.Load() > 0 {
		p.parkMu.Lock()
		p.parked.Signal()
		p.parkMu.Unlock()
	}
	return true
}

// popOwn pops the back of the shard's highest-priority non-empty lane.
func (dq *dequeShard) popOwn() (func(), lane, bool) {
	for ln := laneAnchor; ln < numLanes; ln++ {
		if n := len(dq.lanes[ln]); n > 0 {
			t := dq.lanes[ln][n-1]
			dq.lanes[ln][n-1] = nil
			dq.lanes[ln] = dq.lanes[ln][:n-1]
			return t, ln, true
		}
	}
	return nil, 0, false
}

// stealFront pops the front of the shard's ln lane.
func (dq *dequeShard) stealFront(ln lane) (func(), bool) {
	q := dq.lanes[ln]
	if len(q) == 0 {
		return nil, false
	}
	t := q[0]
	copy(q, q[1:])
	q[len(q)-1] = nil
	dq.lanes[ln] = q[:len(q)-1]
	return t, true
}

// tryTake pops the worker's own deque from the back (anchor lane first), or
// steals from the front of the longest peer lane — scanning every peer's
// anchor lane before falling back to grid backlog, so critical-path work
// preempts bulk cells pool-wide. It locks one shard at a time and never
// blocks; nil means every deque was empty at the moment it was scanned.
func (p *pool) tryTake(self int) (func(), lane) {
	own := &p.deques[self]
	own.mu.Lock()
	if t, ln, ok := own.popOwn(); ok {
		own.mu.Unlock()
		return t, ln
	}
	own.mu.Unlock()

	// Steal scan: find the longest peer lane — anchor lanes first — then
	// re-lock just that shard. The length read is racy by design — a stale
	// pick only costs an extra scan, never correctness.
	for ln := laneAnchor; ln < numLanes; ln++ {
		victim, best := -1, 0
		for i := range p.deques {
			if i == self {
				continue
			}
			dq := &p.deques[i]
			dq.mu.Lock()
			if n := len(dq.lanes[ln]); n > best {
				victim, best = i, n
			}
			dq.mu.Unlock()
		}
		if victim < 0 {
			continue
		}
		dq := &p.deques[victim]
		dq.mu.Lock()
		t, ok := dq.stealFront(ln)
		dq.mu.Unlock()
		if !ok { // lost the race to another thief
			continue
		}
		p.stats[self].steals.Add(1)
		return t, ln
	}
	return nil, 0
}

// take returns the next task and its lane, parking the worker when every
// deque is empty. Returns nil when the pool is closed and drained. The
// double-check under parkMu pairs with submit signalling under parkMu: a
// task pushed before the signal is found by the re-scan, a task pushed
// after wakes the waiter, so no submission is ever lost to a parked worker.
func (p *pool) take(self int) (func(), lane) {
	st := &p.stats[self]
	start := time.Now()
	var parked int64
	// account splits the elapsed scan time into steal (awake) and park.
	account := func() {
		st.stealNS.Add(time.Since(start).Nanoseconds() - parked)
		st.parkNS.Add(parked)
	}
	if t, ln := p.tryTake(self); t != nil {
		account()
		return t, ln
	}
	p.parkMu.Lock()
	defer p.parkMu.Unlock()
	p.idle.Add(1)
	defer p.idle.Add(-1)
	for {
		if t, ln := p.tryTake(self); t != nil {
			account()
			return t, ln
		}
		if p.closed {
			account()
			return nil, 0
		}
		ps := time.Now()
		p.parked.Wait()
		parked += time.Since(ps).Nanoseconds()
	}
}

func (p *pool) worker(self int) {
	defer p.wg.Done()
	st := &p.stats[self]
	for {
		t, ln := p.take(self)
		if t == nil {
			return
		}
		start := time.Now()
		t()
		st.busyNS.Add(time.Since(start).Nanoseconds())
		st.tasks[ln].Add(1)
	}
}

// workerStats snapshots every worker's scheduling accounting. Call after
// close for quiescent totals; concurrent snapshots are safe but torn across
// fields.
func (p *pool) workerStats() []WorkerStat {
	out := make([]WorkerStat, len(p.stats))
	for i := range p.stats {
		st := &p.stats[i]
		p.deques[i].mu.Lock()
		depth := p.deques[i].depthMax
		p.deques[i].mu.Unlock()
		out[i] = WorkerStat{
			Worker:      i,
			BusyNS:      st.busyNS.Load(),
			StealNS:     st.stealNS.Load(),
			ParkNS:      st.parkNS.Load(),
			AnchorTasks: st.tasks[laneAnchor].Load(),
			GridTasks:   st.tasks[laneGrid].Load(),
			Steals:      st.steals.Load(),
			QueueMax:    depth,
		}
	}
	return out
}

// close stops the workers once the deques drain. Tasks already accepted
// still run; submissions that lose the race to close are refused (submit
// returns false) and execute inline at the caller — or resolve as cancelled
// when the submitter marked them speculative.
func (p *pool) close() {
	for i := range p.deques {
		dq := &p.deques[i]
		dq.mu.Lock()
		dq.closed = true
		dq.mu.Unlock()
	}
	p.parkMu.Lock()
	p.closed = true
	p.parkMu.Unlock()
	p.parked.Broadcast()
	p.wg.Wait()
}
