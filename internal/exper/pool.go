package exper

import (
	"sync"
	"sync/atomic"
)

// pool is the engine's work-stealing worker pool, sharded for whole-suite
// submission rates: each worker owns a deque behind its own mutex, so a
// batch of thousands of jobs submitted up front spreads across deques
// without funnelling every push and pop through one pool-wide lock (the
// pre-refactor design serialized `submit` and `take` on a single Mutex —
// measurable once every sweep cell is enqueued at once instead of trickling
// in from per-cell goroutines). Submissions are distributed round-robin by
// an atomic cursor; a worker pops its own deque LIFO (freshly submitted
// jobs have warm sweeps behind them) and steals FIFO from the most loaded
// peer when its own deque drains. Idle workers park on a single condition
// variable that is only touched when a worker actually runs dry, keeping
// the steady-state path lock-light.
type pool struct {
	deques []dequeShard
	cursor atomic.Uint64 // round-robin submission cursor
	idle   atomic.Int64  // workers inside the parking protocol

	parkMu sync.Mutex // guards closed and the parking condvar
	parked *sync.Cond
	closed bool

	wg sync.WaitGroup
}

// dequeShard is one worker's deque behind its own lock. The pad keeps
// neighbouring shards off one cache line, so workers pushing and popping
// concurrently do not false-share.
type dequeShard struct {
	mu     sync.Mutex
	tasks  []func()
	closed bool
	_      [32]byte
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	p := &pool{deques: make([]dequeShard, workers)}
	p.parked = sync.NewCond(&p.parkMu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// submit enqueues one task without blocking and reports whether the pool
// accepted it. It returns false — instead of panicking, which is what the
// pre-refactor pool did and what a Close racing a straggling sweep would
// hit — once the pool has been closed; the caller then runs the task
// inline. The shard's closed flag is set under the same lock that guards
// its deque, so a task accepted here is always still visible to the
// draining workers.
func (p *pool) submit(task func()) bool {
	w := int(p.cursor.Add(1)-1) % len(p.deques)
	dq := &p.deques[w]
	dq.mu.Lock()
	if dq.closed {
		dq.mu.Unlock()
		return false
	}
	dq.tasks = append(dq.tasks, task)
	dq.mu.Unlock()

	// Wake a parked worker only when one might exist: a worker increments
	// idle under parkMu *before* its final empty re-scan, so if idle reads 0
	// here, any worker that parks later re-scans after this push and finds
	// the task itself. The busy steady state therefore never touches the
	// pool-wide parking lock.
	if p.idle.Load() > 0 {
		p.parkMu.Lock()
		p.parked.Signal()
		p.parkMu.Unlock()
	}
	return true
}

// tryTake pops the worker's own deque from the back, or steals from the
// front of the longest peer deque. It locks one shard at a time and never
// blocks; nil means every deque was empty at the moment it was scanned.
func (p *pool) tryTake(self int) func() {
	own := &p.deques[self]
	own.mu.Lock()
	if n := len(own.tasks); n > 0 {
		t := own.tasks[n-1]
		own.tasks[n-1] = nil
		own.tasks = own.tasks[:n-1]
		own.mu.Unlock()
		return t
	}
	own.mu.Unlock()

	// Steal scan: find the longest peer deque, then re-lock just that one.
	// The length read is racy by design — a stale pick only costs an extra
	// scan, never correctness.
	victim, best := -1, 0
	for i := range p.deques {
		if i == self {
			continue
		}
		dq := &p.deques[i]
		dq.mu.Lock()
		if n := len(dq.tasks); n > best {
			victim, best = i, n
		}
		dq.mu.Unlock()
	}
	if victim < 0 {
		return nil
	}
	dq := &p.deques[victim]
	dq.mu.Lock()
	if len(dq.tasks) == 0 { // lost the race to another thief
		dq.mu.Unlock()
		return nil
	}
	t := dq.tasks[0]
	copy(dq.tasks, dq.tasks[1:])
	dq.tasks[len(dq.tasks)-1] = nil
	dq.tasks = dq.tasks[:len(dq.tasks)-1]
	dq.mu.Unlock()
	return t
}

// take returns the next task, parking the worker when every deque is empty.
// Returns nil when the pool is closed and drained. The double-check under
// parkMu pairs with submit signalling under parkMu: a task pushed before
// the signal is found by the re-scan, a task pushed after wakes the waiter,
// so no submission is ever lost to a parked worker.
func (p *pool) take(self int) func() {
	if t := p.tryTake(self); t != nil {
		return t
	}
	p.parkMu.Lock()
	defer p.parkMu.Unlock()
	p.idle.Add(1)
	defer p.idle.Add(-1)
	for {
		if t := p.tryTake(self); t != nil {
			return t
		}
		if p.closed {
			return nil
		}
		p.parked.Wait()
	}
}

func (p *pool) worker(self int) {
	defer p.wg.Done()
	for {
		t := p.take(self)
		if t == nil {
			return
		}
		t()
	}
}

// close stops the workers once the deques drain. Tasks already accepted
// still run; submissions that lose the race to close are refused (submit
// returns false) and execute inline at the caller.
func (p *pool) close() {
	for i := range p.deques {
		dq := &p.deques[i]
		dq.mu.Lock()
		dq.closed = true
		dq.mu.Unlock()
	}
	p.parkMu.Lock()
	p.closed = true
	p.parkMu.Unlock()
	p.parked.Broadcast()
	p.wg.Wait()
}
