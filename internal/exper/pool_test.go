package exper

import (
	"sync"
	"sync/atomic"
	"testing"

	"chopin/internal/workload"
)

// TestSubmitCloseRaceNeverPanicsOrDrops stresses the shutdown race the old
// pool lost: submitters racing close() hit a panic on the closed channel.
// The sharded pool must instead refuse the task (submit returns false) so
// the caller runs it inline — every task runs exactly once, none panic,
// none vanish. Run under -race in tier 1.
func TestSubmitCloseRaceNeverPanicsOrDrops(t *testing.T) {
	const (
		iters      = 40
		submitters = 8
		perG       = 50
	)
	for iter := 0; iter < iters; iter++ {
		p := newPool(4)
		var ran atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					task := func() { ran.Add(1) }
					if !p.submit(task, lane(i%int(numLanes))) {
						task() // refused by a closed pool: inline execution
					}
				}
			}()
		}
		p.close() // races the submitters on purpose
		wg.Wait()
		// close() drains accepted tasks and wg.Wait() covers inline ones,
		// so by here every task has run exactly once.
		if got := ran.Load(); got != submitters*perG {
			t.Fatalf("iter %d: %d tasks ran, want %d", iter, got, submitters*perG)
		}
	}
}

// TestRunAfterCloseExecutesInline pins the engine-level consequence: a job
// submitted after Close is not lost and does not panic — it executes inline
// in the submitter and resolves its ticket normally.
func TestRunAfterCloseExecutesInline(t *testing.T) {
	d := testBench(t)
	var executions atomic.Int64
	e := New(Options{
		Workers: 2,
		runFn: func(d *workload.Descriptor, cfg workload.RunConfig) (*workload.Result, error) {
			executions.Add(1)
			return workload.Run(d, cfg)
		},
	})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(d, smallCfg())
	if err != nil {
		t.Fatalf("Run after Close: %v", err)
	}
	if res == nil || executions.Load() != 1 {
		t.Fatalf("Run after Close did not execute inline (res=%v, executions=%d)",
			res, executions.Load())
	}
}

// TestPoolParkedWorkersWake exercises the parking protocol: workers that
// went idle must be woken by a later submit, not leak asleep. A lost wakeup
// here deadlocks the drain in close().
func TestPoolParkedWorkersWake(t *testing.T) {
	p := newPool(4)
	var ran atomic.Int64
	// Let workers park, then submit in pulses; each pulse must complete.
	for pulse := 0; pulse < 20; pulse++ {
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			if !p.submit(func() { ran.Add(1); wg.Done() }, laneGrid) {
				t.Fatal("open pool refused a task")
			}
		}
		wg.Wait()
	}
	p.close()
	if got := ran.Load(); got != 20*16 {
		t.Fatalf("%d tasks ran, want %d", got, 20*16)
	}
}
