package exper

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"chopin/internal/cpuarch"
	"chopin/internal/workload"
)

// schemaVersion invalidates every cached result when the engine's hashing
// layout or the shape of stored results changes incompatibly. It tracks
// persist's archive schema.
const schemaVersion = 2

// Key is the canonical content hash of a job: hex SHA-256 over the schema
// version, the complete workload descriptor and the normalized RunConfig.
// Hashing the descriptor's content (not just its name) keeps size-scaled
// variants — which share a name — from colliding, and invalidates cached
// results whenever a workload model is recalibrated.
type Key string

// Shard returns the two-character directory shard the key files under.
func (k Key) Shard() string {
	if len(k) < 2 {
		return "xx"
	}
	return string(k[:2])
}

// Job is one first-class unit of work: a single simulator invocation of one
// benchmark under one configuration. Everything the engine executes —
// sweep cells, latency runs, min-heap probes — is a Job.
type Job struct {
	Desc *workload.Descriptor
	Cfg  workload.RunConfig
	key  Key
}

// NewJob builds a job and its canonical key. The config is normalized the
// same way workload.Run normalizes it (default machine, minimum iteration
// count), so spellings that execute identically hash identically.
func NewJob(d *workload.Descriptor, cfg workload.RunConfig) (Job, error) {
	j := Job{Desc: d, Cfg: cfg}
	key, err := hashPayload(struct {
		Schema     int                  `json:"schema"`
		Kind       string               `json:"kind"`
		Descriptor *workload.Descriptor `json:"descriptor"`
		Cfg        workload.RunConfig   `json:"cfg"`
	}{schemaVersion, "invocation", d, normalize(cfg)})
	if err != nil {
		return Job{}, fmt.Errorf("exper: hashing %s job: %w", d.Name, err)
	}
	j.key = key
	return j, nil
}

// Key returns the job's canonical content hash.
func (j Job) Key() Key { return j.key }

// MinHeapParams selects a minimum-heap measurement: the probe budget and
// the invocation seeds the bound must be validated against. It mirrors the
// sweep options whose 1x row the bound anchors.
type MinHeapParams struct {
	Events      int    `json:"events"`
	Iterations  int    `json:"iterations"`
	Invocations int    `json:"invocations"`
	Seed        uint64 `json:"seed"`
}

// minHeapKey is the canonical key of a min-heap measurement, covering the
// descriptor content and the search parameters.
func minHeapKey(d *workload.Descriptor, p MinHeapParams) (Key, error) {
	key, err := hashPayload(struct {
		Schema     int                  `json:"schema"`
		Kind       string               `json:"kind"`
		Descriptor *workload.Descriptor `json:"descriptor"`
		Params     MinHeapParams        `json:"params"`
	}{schemaVersion, "minheap", d, p})
	if err != nil {
		return "", fmt.Errorf("exper: hashing %s min-heap: %w", d.Name, err)
	}
	return key, nil
}

// normalize applies workload.Run's own defaulting so equivalent configs
// share a hash: the zero machine is the reference Zen4, iterations are at
// least 1.
func normalize(cfg workload.RunConfig) workload.RunConfig {
	if cfg.Machine.Name == "" {
		cfg.Machine = cpuarch.Zen4
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}
	return cfg
}

// hashPayload hashes the canonical JSON encoding of v. encoding/json emits
// struct fields in declaration order and round-trips float64 exactly, which
// makes the encoding a stable canonical form.
func hashPayload(v interface{}) (Key, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return Key(hex.EncodeToString(sum[:])), nil
}
