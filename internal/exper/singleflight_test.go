package exper

import (
	"sync"
	"sync/atomic"
	"testing"

	"chopin/internal/workload"
)

// TestColdCacheSingleFlight pins the single-flight guarantee at its
// narrowest: many concurrent submissions of one key against a cold cache
// and no memoization must funnel into exactly one simulator execution. The
// runFn seam holds the first execution open until every submission has
// registered, so the test deterministically covers the window where a
// second submission could slip past the in-flight map and re-execute.
func TestColdCacheSingleFlight(t *testing.T) {
	d := testBench(t)
	cache, err := OpenCache(t.TempDir(), ReadWrite)
	if err != nil {
		t.Fatal(err)
	}

	var executions atomic.Int64
	release := make(chan struct{})
	e := New(Options{
		Workers: 4,
		Cache:   cache,
		runFn: func(d *workload.Descriptor, cfg workload.RunConfig) (*workload.Result, error) {
			executions.Add(1)
			<-release
			return workload.Run(d, cfg)
		},
	})
	defer e.Close()

	const n = 16
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := e.Submit(d, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	close(release)

	var wg sync.WaitGroup
	for _, tk := range tickets {
		wg.Add(1)
		go func(tk *Ticket) {
			defer wg.Done()
			if _, err := tk.Wait(); err != nil {
				t.Errorf("deduplicated submission failed: %v", err)
			}
		}(tk)
	}
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("cold-cache single flight executed %d times, want 1", got)
	}
	s := e.Stats()
	if s.Executed != 1 || s.Deduped != n-1 {
		t.Fatalf("stats = %+v, want Executed=1 Deduped=%d", s, n-1)
	}

	// After the flight resolves, the same key is served by the cache (the
	// write-behind pending map or disk), never by a third execution.
	if _, err := e.Run(d, smallCfg()); err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("warm re-run executed again (%d executions)", got)
	}
	if s := e.Stats(); s.CacheHits != 1 {
		t.Fatalf("warm re-run did not hit the cache: %+v", s)
	}
}

// TestConcurrentRunsColdCacheExecuteOnce is the unstaged form of the
// single-flight regression: real goroutines racing Run for one key, cold
// cache, no memo. However the submissions interleave, the execution count
// must be exactly one — a second execution means the in-flight window
// leaked between the cache check and the job registration.
func TestConcurrentRunsColdCacheExecuteOnce(t *testing.T) {
	d := testBench(t)
	cache, err := OpenCache(t.TempDir(), ReadWrite)
	if err != nil {
		t.Fatal(err)
	}

	var executions atomic.Int64
	start := make(chan struct{})
	e := New(Options{
		Workers: 8,
		Cache:   cache,
		runFn: func(d *workload.Descriptor, cfg workload.RunConfig) (*workload.Result, error) {
			executions.Add(1)
			return workload.Run(d, cfg)
		},
	})
	defer e.Close()

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := e.Run(d, smallCfg()); err != nil {
				t.Errorf("concurrent Run failed: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("%d concurrent cold Runs executed %d times, want 1", n, got)
	}
	s := e.Stats()
	if s.Executed != 1 {
		t.Fatalf("stats disagree with the seam: %+v", s)
	}
	if s.Deduped+s.CacheHits != n-1 {
		t.Fatalf("the other %d submissions must dedup or cache-hit: %+v", n-1, s)
	}
}
