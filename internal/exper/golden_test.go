package exper_test

import (
	"encoding/json"
	"testing"

	"chopin/internal/exper"
	"chopin/internal/gc"
	"chopin/internal/harness"
	"chopin/internal/workload"
)

// goldenOpt is a small fixed-seed sweep: one benchmark, two collectors, two
// heap factors, two invocations — 8 sweep jobs plus the min-heap probes.
func goldenOpt(eng *exper.Engine) harness.Options {
	return harness.Options{
		Collectors:  []gc.Kind{gc.Serial, gc.G1},
		HeapFactors: []float64{1.5, 3},
		Invocations: 2,
		Iterations:  2,
		Events:      200,
		Seed:        7,
		Engine:      eng,
	}
}

func goldenBench(t *testing.T) *workload.Descriptor {
	t.Helper()
	d, err := workload.ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func gridBytes(t *testing.T, d *workload.Descriptor, eng *exper.Engine) ([]byte, float64) {
	t.Helper()
	grid, minMB, err := harness.LBOGrid(d, goldenOpt(eng))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(grid)
	if err != nil {
		t.Fatal(err)
	}
	return b, minMB
}

// TestGoldenDeterminism runs the same plan serial, parallel, and warm from
// cache, and demands byte-identical aggregated results: scheduling and
// caching must be invisible in the output.
func TestGoldenDeterminism(t *testing.T) {
	d := goldenBench(t)
	dir := t.TempDir()

	// Cold, serial, caching as it goes.
	cache, err := exper.OpenCache(dir, exper.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	serial := exper.New(exper.Options{Workers: 1, Cache: cache})
	serialBytes, serialMin := gridBytes(t, d, serial)
	serial.Close()
	if s := serial.Stats(); s.Executed == 0 {
		t.Fatalf("cold run executed nothing: %+v", s)
	}

	// Cold again, wide pool, separate cache: execution order scrambled.
	cache2, err := exper.OpenCache(t.TempDir(), exper.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	parallel := exper.New(exper.Options{Workers: 8, Cache: cache2})
	parallelBytes, parallelMin := gridBytes(t, d, parallel)
	parallel.Close()

	if serialMin != parallelMin {
		t.Fatalf("min heap differs serial vs parallel: %v vs %v", serialMin, parallelMin)
	}
	if string(serialBytes) != string(parallelBytes) {
		t.Fatal("serial and parallel runs produced different grids")
	}

	// Warm: a fresh engine over the serial run's cache must reproduce the
	// grid byte-for-byte with ZERO simulator invocations.
	warmCache, err := exper.OpenCache(dir, exper.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	warm := exper.New(exper.Options{Workers: 8, Cache: warmCache})
	warmBytes, warmMin := gridBytes(t, d, warm)
	warm.Close()

	if warmMin != serialMin {
		t.Fatalf("min heap differs warm vs cold: %v vs %v", warmMin, serialMin)
	}
	if string(warmBytes) != string(serialBytes) {
		t.Fatal("warm-cache run produced a different grid than the cold run")
	}
	s := warm.Stats()
	if s.Executed != 0 {
		t.Fatalf("warm run executed %d invocations, want 0", s.Executed)
	}
	if s.CacheHits == 0 || s.MinHeapCacheHits != 1 {
		t.Fatalf("warm stats = %+v, want pure cache traffic", s)
	}
}

// TestInterruptedPlanResumes warms the cache with a subset of the plan (as
// if the process died mid-sweep), then runs the full plan: only the missing
// cells execute.
func TestInterruptedPlanResumes(t *testing.T) {
	d := goldenBench(t)
	dir := t.TempDir()

	// "Interrupted" first run: only the 1.5x column completes.
	cache, err := exper.OpenCache(dir, exper.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	partial := exper.New(exper.Options{Workers: 4, Cache: cache})
	opt := goldenOpt(partial)
	opt.HeapFactors = []float64{1.5}
	if _, _, err := harness.LBOGrid(d, opt); err != nil {
		t.Fatal(err)
	}
	partial.Close()

	// Resumed run over the full plan: the 1.5x column and the min-heap
	// measurement come from the cache; only the 3x column executes —
	// 2 collectors x 1 new factor x 2 invocations = 4 jobs.
	cache2, err := exper.OpenCache(dir, exper.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	resumed := exper.New(exper.Options{Workers: 4, Cache: cache2})
	grid, _, err := harness.LBOGrid(d, goldenOpt(resumed))
	if err != nil {
		t.Fatal(err)
	}
	resumed.Close()

	s := resumed.Stats()
	if s.Executed != 4 {
		t.Fatalf("resumed run executed %d invocations, want exactly the 4 missing", s.Executed)
	}
	if s.MinHeapCacheHits != 1 || s.MinHeapSearches != 0 {
		t.Fatalf("resumed stats = %+v, want the min-heap bound from cache", s)
	}
	if len(grid.Cells) != 4 { // 2 collectors x 2 factors
		t.Fatalf("grid has %d cells, want 4", len(grid.Cells))
	}
	for _, c := range grid.Cells {
		if !c.Completed {
			t.Fatalf("cell %+v incomplete after resume", c)
		}
	}
}

// TestLatencyEventsSurviveCache checks that a latency experiment served from
// the cache still carries its per-event samples — distributions rendered
// offline must match the original run.
func TestLatencyEventsSurviveCache(t *testing.T) {
	d := goldenBench(t)
	dir := t.TempDir()

	run := func() []harness.LatencyResult {
		cache, err := exper.OpenCache(dir, exper.ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		eng := exper.New(exper.Options{Workers: 4, Cache: cache})
		defer eng.Close()
		res, err := harness.Latency(d, []float64{3}, goldenOpt(eng))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run()
	warmRes := run()
	if len(cold) != len(warmRes) {
		t.Fatalf("result count changed: %d vs %d", len(cold), len(warmRes))
	}
	for i := range cold {
		if !cold[i].Completed || !warmRes[i].Completed {
			t.Fatalf("cell %d incomplete", i)
		}
		if len(cold[i].Events) == 0 || len(cold[i].Events) != len(warmRes[i].Events) {
			t.Fatalf("cell %d events: %d cold vs %d warm", i, len(cold[i].Events), len(warmRes[i].Events))
		}
		if cold[i].Simple.Percentile(99) != warmRes[i].Simple.Percentile(99) {
			t.Fatalf("cell %d p99 differs cold vs warm", i)
		}
	}
}
