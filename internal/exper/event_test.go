package exper

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// countingWriter fails the test if Write is ever entered concurrently — the
// direct detection of unserialized emission, independent of the race
// detector.
type countingWriter struct {
	t      *testing.T
	mu     sync.Mutex
	active bool
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	if w.active {
		w.mu.Unlock()
		w.t.Error("concurrent Write on the progress writer")
		return len(p), nil
	}
	w.active = true
	w.mu.Unlock()

	n, err := w.buf.Write(p)

	w.mu.Lock()
	w.active = false
	w.mu.Unlock()
	return n, err
}

// TestProgressConcurrent hammers one Progress observer from many goroutines,
// as pool workers do. Under -race (make tier1) this proves the closure's
// internal tallies are serialized; the assertions prove the output is too:
// every line must be whole and the final tallies exact.
func TestProgressConcurrent(t *testing.T) {
	w := &countingWriter{t: t}
	obs := Progress(w, "test: ")

	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				kind := JobFinished
				switch j % 3 {
				case 1:
					kind = JobCacheHit
				case 2:
					kind = JobFailed
				}
				obs(Event{
					Kind:      kind,
					Benchmark: fmt.Sprintf("bench-%d", i),
					Collector: "G1",
					HeapMB:    100,
					Seed:      uint64(j),
					WallNS:    1e9,
					CPUNS:     2e9,
					Err:       "boom",
				})
			}
		}(i)
	}
	wg.Wait()

	const total = workers * perWorker
	var lines, finished, cached, failed int
	var wantRun, wantHits int // mirror the emission loop's kind schedule
	for j := 0; j < perWorker; j++ {
		if j%3 == 1 {
			wantHits += workers
		} else {
			wantRun += workers
		}
	}
	sc := bufio.NewScanner(&w.buf)
	for sc.Scan() {
		line := sc.Text()
		lines++
		if !strings.HasPrefix(line, "test: [") {
			t.Fatalf("torn or interleaved line: %q", line)
		}
		switch {
		case strings.Contains(line, "FAILED: boom"):
			failed++
		case strings.Contains(line, "(cache)"):
			cached++
		default:
			finished++
		}
		// The final line must carry the complete tallies.
		if lines == total {
			want := fmt.Sprintf("[%d run, %d cached]", wantRun, wantHits)
			if !strings.Contains(line, want) {
				t.Fatalf("final tally = %q, want %s", line, want)
			}
		}
	}
	if lines != total {
		t.Fatalf("emitted %d lines, want %d", lines, total)
	}
	if cached != wantHits || finished+failed != wantRun {
		t.Fatalf("lines by kind: finished=%d cached=%d failed=%d, want run=%d cached=%d",
			finished, cached, failed, wantRun, wantHits)
	}
}
