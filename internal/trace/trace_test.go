package trace

import "testing"

func sampleLog() *Log {
	l := &Log{}
	l.AddEvent(GCEvent{Kind: GCYoung, Start: 0, End: 100, PauseNS: 100, CPUNS: 100, Reclaimed: 50})
	l.AddEvent(GCEvent{Kind: GCYoung, Start: 500, End: 650, PauseNS: 150, CPUNS: 300, Reclaimed: 70})
	l.AddEvent(GCEvent{Kind: GCFull, Start: 900, End: 1400, PauseNS: 500, CPUNS: 900, Reclaimed: 200})
	l.AddPause(Pause{0, 100})
	l.AddPause(Pause{500, 650})
	l.AddPause(Pause{900, 1400})
	return l
}

func TestTotals(t *testing.T) {
	l := sampleLog()
	if got := l.TotalPauseNS(); got != 750 {
		t.Fatalf("total pause = %v, want 750", got)
	}
	if got := l.TotalGCCPUNS(); got != 1300 {
		t.Fatalf("total GC CPU = %v, want 1300", got)
	}
	if got := l.MaxPauseNS(); got != 500 {
		t.Fatalf("max pause = %v, want 500", got)
	}
}

func TestCount(t *testing.T) {
	l := sampleLog()
	if l.Count(GCYoung) != 2 || l.Count(GCFull) != 1 || l.Count(GCConcurrent) != 0 {
		t.Fatalf("counts wrong: young=%d full=%d conc=%d",
			l.Count(GCYoung), l.Count(GCFull), l.Count(GCConcurrent))
	}
}

func TestPausesBetween(t *testing.T) {
	l := sampleLog()
	got := l.PausesBetween(600, 1000)
	if len(got) != 2 {
		t.Fatalf("pauses in [600,1000) = %d, want 2 (overlapping ones)", len(got))
	}
	if got := l.PausesBetween(2000, 3000); len(got) != 0 {
		t.Fatalf("pauses in empty window = %d", len(got))
	}
}

func TestStallAccumulation(t *testing.T) {
	l := &Log{}
	l.AddStall(100)
	l.AddStall(250)
	if l.StallNS != 350 {
		t.Fatalf("stall = %v, want 350", l.StallNS)
	}
}

func TestReset(t *testing.T) {
	l := sampleLog()
	l.AddStall(10)
	l.Reset()
	if len(l.Events) != 0 || len(l.Pauses) != 0 || l.StallNS != 0 {
		t.Fatal("reset did not clear the log")
	}
}

func TestKindString(t *testing.T) {
	want := map[GCKind]string{
		GCYoung: "young", GCFull: "full", GCConcurrent: "concurrent",
		GCDegenerate: "degenerate", GCMixed: "mixed", GCKind(42): "gc(42)",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", k, got, s)
		}
	}
}

func TestPauseDuration(t *testing.T) {
	if got := (Pause{Start: 10, End: 35}).Duration(); got != 25 {
		t.Fatalf("duration = %v, want 25", got)
	}
}

func TestFootprintAUC(t *testing.T) {
	l := &Log{}
	// Occupancy staircase: 100 bytes until t=400, then 50 until t=1000.
	l.AddEvent(GCEvent{Kind: GCYoung, End: 0, UsedAfter: 100})
	l.AddEvent(GCEvent{Kind: GCYoung, End: 400, UsedAfter: 50})
	got := l.FootprintAUC(0, 1000)
	want := (100*400 + 50*600) / 1000.0
	if got != want {
		t.Fatalf("AUC = %v, want %v", got, want)
	}
}

func TestFootprintAUCWindowed(t *testing.T) {
	l := &Log{}
	l.AddEvent(GCEvent{Kind: GCYoung, End: 100, UsedAfter: 10})
	l.AddEvent(GCEvent{Kind: GCYoung, End: 200, UsedAfter: 30})
	// Window after both events: constant at the last level.
	if got := l.FootprintAUC(500, 600); got != 30 {
		t.Fatalf("late-window AUC = %v, want 30", got)
	}
	if got := l.FootprintAUC(600, 600); got != 0 {
		t.Fatalf("empty window = %v, want 0", got)
	}
}

func TestPeakFootprint(t *testing.T) {
	l := &Log{}
	l.AddEvent(GCEvent{Kind: GCYoung, End: 100, UsedAfter: 10})
	l.AddEvent(GCEvent{Kind: GCFull, End: 200, UsedAfter: 90})
	l.AddEvent(GCEvent{Kind: GCYoung, End: 300, UsedAfter: 40})
	if got := l.PeakFootprint(0, 1000); got != 90 {
		t.Fatalf("peak = %v, want 90", got)
	}
	if got := l.PeakFootprint(250, 1000); got != 40 {
		t.Fatalf("windowed peak = %v, want 40", got)
	}
}
