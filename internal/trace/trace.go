// Package trace records garbage-collection telemetry during a simulated run:
// the GC event log, stop-the-world pause intervals, allocation-stall time and
// post-GC heap occupancy samples.
//
// This is the simulated equivalent of what the paper obtains from JVMTI and
// GC logs, and it feeds every downstream methodology: LBO subtracts the
// easily-attributable costs recorded here, MMU and the GCP nominal statistic
// are computed from the pause intervals, GCA/GCC/GCM come from the event log,
// and the appendix heap-size figures replay the occupancy samples.
package trace

import "fmt"

// GCKind classifies a collection event.
type GCKind int

// Collection kinds.
const (
	GCYoung      GCKind = iota // nursery collection (STW or concurrent minor)
	GCFull                     // full-heap STW collection
	GCConcurrent               // concurrent cycle (mark/evacuate)
	GCDegenerate               // concurrent collector fell back to STW full
	GCMixed                    // G1 post-mark mixed evacuation
)

func (k GCKind) String() string {
	switch k {
	case GCYoung:
		return "young"
	case GCFull:
		return "full"
	case GCConcurrent:
		return "concurrent"
	case GCDegenerate:
		return "degenerate"
	case GCMixed:
		return "mixed"
	}
	return fmt.Sprintf("gc(%d)", int(k))
}

// GCEvent is one logged collection.
type GCEvent struct {
	Kind      GCKind
	Start     int64   // virtual ns at which the collection began
	End       int64   // virtual ns at which its effects were applied
	PauseNS   float64 // total STW wall time within the event
	CPUNS     float64 // CPU consumed by GC threads for the event
	Reclaimed float64 // bytes returned to free space
	Copied    float64 // bytes moved
	UsedAfter float64 // heap occupancy after the event
	LiveAfter float64 // declared live set after the event
}

// Pause is one STW interval during which all mutators were blocked.
type Pause struct {
	Start, End int64
}

// Duration returns the pause length in nanoseconds.
func (p Pause) Duration() float64 { return float64(p.End - p.Start) }

// Log accumulates telemetry for a single benchmark invocation.
type Log struct {
	Events  []GCEvent
	Pauses  []Pause
	StallNS float64 // cumulative mutator allocation-stall time (pacing)
}

// AddEvent appends a collection event.
func (l *Log) AddEvent(e GCEvent) { l.Events = append(l.Events, e) }

// AddPause appends an STW interval.
func (l *Log) AddPause(p Pause) { l.Pauses = append(l.Pauses, p) }

// AddStall accumulates mutator allocation-stall wall time.
func (l *Log) AddStall(ns float64) { l.StallNS += ns }

// TotalPauseNS returns the summed STW wall time.
func (l *Log) TotalPauseNS() float64 {
	var sum float64
	for _, p := range l.Pauses {
		sum += p.Duration()
	}
	return sum
}

// TotalGCCPUNS returns the summed GC-thread CPU time.
func (l *Log) TotalGCCPUNS() float64 {
	var sum float64
	for _, e := range l.Events {
		sum += e.CPUNS
	}
	return sum
}

// Count returns the number of events of the given kind.
func (l *Log) Count(kind GCKind) int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// MaxPauseNS returns the longest single pause, or 0 for a pause-free run.
func (l *Log) MaxPauseNS() float64 {
	var max float64
	for _, p := range l.Pauses {
		if d := p.Duration(); d > max {
			max = d
		}
	}
	return max
}

// PausesBetween returns the pauses overlapping the window [from, to).
func (l *Log) PausesBetween(from, to int64) []Pause {
	var out []Pause
	for _, p := range l.Pauses {
		if p.End > from && p.Start < to {
			out = append(out, p)
		}
	}
	return out
}

// Reset clears the log for reuse between invocations.
func (l *Log) Reset() {
	l.Events = l.Events[:0]
	l.Pauses = l.Pauses[:0]
	l.StallNS = 0
}
