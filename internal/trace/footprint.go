package trace

// The paper (Section 4.2) notes that minimum-heap methodologies reflect a
// workload's peak memory use, and that "a metric which reflected the 'area
// under the memory use curve' might better reflect the net memory footprint
// of a workload". This file implements that suggested metric over the GC
// telemetry: the time-weighted mean of post-collection occupancy.

// FootprintAUC returns the time-weighted average heap occupancy in bytes
// over [start, end), integrating the post-GC occupancy staircase recorded in
// the log. Between two collections the occupancy is at least the level the
// previous collection left (allocation only adds to it), so this is a lower
// bound on true average footprint — conservative in the same direction as
// LBO.
func (l *Log) FootprintAUC(start, end int64) float64 {
	if end <= start {
		return 0
	}
	var area float64 // byte-nanoseconds
	cursor := start
	level := 0.0
	for _, e := range l.Events {
		if e.End < start {
			level = e.UsedAfter
			continue
		}
		if e.End >= end {
			break
		}
		area += level * float64(e.End-cursor)
		cursor = e.End
		level = e.UsedAfter
	}
	area += level * float64(end-cursor)
	return area / float64(end-start)
}

// PeakFootprint returns the highest post-GC occupancy observed in
// [start, end), the staircase's high-water mark.
func (l *Log) PeakFootprint(start, end int64) float64 {
	var peak float64
	for _, e := range l.Events {
		if e.End >= start && e.End < end && e.UsedAfter > peak {
			peak = e.UsedAfter
		}
	}
	return peak
}
