// Package figures renders experiment results in the shape of the paper's
// tables and figures: LBO curves (Figures 1, 5 and appendix), latency
// percentile tables and CDFs (Figures 3, 6), the PCA scatter (Figure 4), the
// nominal-statistics tables (Tables 1-3) and heap timelines (appendix).
package figures

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"chopin/internal/harness"
	"chopin/internal/latency"
	"chopin/internal/lbo"
	"chopin/internal/nominal"
	"chopin/internal/report"
	"chopin/internal/stats"
	"chopin/internal/trace"
)

// GeomeanFigure renders Figure 1: cross-suite geometric-mean LBO curves as a
// function of heap factor, one plot for wall clock and one for task clock.
// Incomplete points (a collector that could not run every benchmark) are
// omitted, as in the paper.
func GeomeanFigure(pts []lbo.GeomeanPoint, collectors []string) string {
	var b strings.Builder
	wall := &report.LinePlot{
		Title:  "Figure 1(a): lower bound wall-clock overhead (geomean)",
		XLabel: "heap size (x minheap)", YLabel: "normalized time overhead (LBO)",
		YMin: 1, YMax: 2,
	}
	cpu := &report.LinePlot{
		Title:  "Figure 1(b): lower bound total CPU overhead (geomean, TASK_CLOCK)",
		XLabel: "heap size (x minheap)", YLabel: "normalized CPU overhead (LBO)",
		YMin: 1, YMax: 2,
	}
	for _, c := range collectors {
		var xs, yw, yc []float64
		for _, p := range pts {
			if p.Collector != c || !p.Complete {
				continue
			}
			xs = append(xs, p.HeapFactor)
			yw = append(yw, p.Wall)
			yc = append(yc, p.CPU)
		}
		if len(xs) == 0 {
			continue
		}
		m := report.MarkerFor(c)
		wall.Series = append(wall.Series, report.Series{Label: c, Marker: m, X: xs, Y: yw})
		cpu.Series = append(cpu.Series, report.Series{Label: c, Marker: m, X: xs, Y: yc})
	}
	wall.Render(&b)
	b.WriteByte('\n')
	cpu.Render(&b)
	b.WriteByte('\n')
	b.WriteString(GeomeanTable(pts))
	return b.String()
}

// GeomeanTable renders the Figure 1 data as rows (collector x heap factor).
func GeomeanTable(pts []lbo.GeomeanPoint) string {
	t := report.NewTable("collector", "heap(x)", "wall LBO", "cpu LBO", "benchmarks", "complete")
	for _, p := range pts {
		t.AddRowf(p.Collector, p.HeapFactor, p.Wall, p.CPU, p.Benchmarks, p.Complete)
	}
	return t.String()
}

// LBOFigure renders a per-benchmark LBO figure pair (Figure 5 / appendix):
// wall and CPU overhead curves over heap factor for each collector.
func LBOFigure(grid *lbo.Grid, minMB float64) (string, error) {
	ovs, err := grid.Overheads()
	if err != nil {
		return "", err
	}
	byCollector := map[string][]lbo.Overhead{}
	var order []string
	for _, o := range ovs {
		if _, seen := byCollector[o.Collector]; !seen {
			order = append(order, o.Collector)
		}
		byCollector[o.Collector] = append(byCollector[o.Collector], o)
	}
	var b strings.Builder
	wall := &report.LinePlot{
		Title:  fmt.Sprintf("%s: wall-clock LBO (minheap %.0fMB)", grid.Benchmark, minMB),
		XLabel: "heap size (x minheap)", YLabel: "normalized time overhead",
		YMin: 1, YMax: 2,
	}
	cpu := &report.LinePlot{
		Title:  fmt.Sprintf("%s: total CPU LBO (TASK_CLOCK)", grid.Benchmark),
		XLabel: "heap size (x minheap)", YLabel: "normalized CPU overhead",
		YMin: 1, YMax: 2,
	}
	// 95% confidence intervals of the normalized overheads, from the
	// per-invocation samples (the paper shades its curves the same way).
	ci := map[string][2]float64{}
	bw, _ := grid.BaselineWall()
	bc, _ := grid.BaselineCPU()
	for _, m := range grid.Cells {
		if !m.Completed || bw <= 0 || bc <= 0 {
			continue
		}
		key := fmt.Sprintf("%s@%g", m.Collector, m.HeapFactor)
		ci[key] = [2]float64{stats.CI95(m.WallSamples) / bw, stats.CI95(m.CPUSamples) / bc}
	}
	tab := report.NewTable("collector", "heap(x)", "heap(MB)", "wall LBO", "±95%", "cpu LBO", "±95%")
	for _, c := range order {
		var xs, yw, yc []float64
		for _, o := range byCollector[c] {
			if !o.Completed {
				tab.AddRowf(o.Collector, o.HeapFactor, o.HeapMB, "OOM", "", "OOM", "")
				continue
			}
			xs = append(xs, o.HeapFactor)
			yw = append(yw, o.Wall)
			yc = append(yc, o.CPU)
			bounds := ci[fmt.Sprintf("%s@%g", o.Collector, o.HeapFactor)]
			tab.AddRowf(o.Collector, o.HeapFactor, o.HeapMB, o.Wall, bounds[0], o.CPU, bounds[1])
		}
		if len(xs) == 0 {
			continue
		}
		m := report.MarkerFor(c)
		wall.Series = append(wall.Series, report.Series{Label: c, Marker: m, X: xs, Y: yw})
		cpu.Series = append(cpu.Series, report.Series{Label: c, Marker: m, X: xs, Y: yc})
	}
	wall.Render(&b)
	b.WriteByte('\n')
	cpu.Render(&b)
	b.WriteByte('\n')
	tab.Render(&b)
	return b.String(), nil
}

// latencyViews maps view names to distribution accessors.
var latencyViews = []struct {
	name string
	get  func(harness.LatencyResult) *latency.Distribution
}{
	{"simple", func(r harness.LatencyResult) *latency.Distribution { return r.Simple }},
	{"metered-100ms", func(r harness.LatencyResult) *latency.Distribution { return r.Metered100 }},
	{"metered-full", func(r harness.LatencyResult) *latency.Distribution { return r.MeteredFull }},
}

// LatencyFigure renders a latency experiment (Figures 3/6): for each heap
// factor and view, a percentile table of every collector in ms.
func LatencyFigure(results []harness.LatencyResult) string {
	var b strings.Builder
	factors := map[float64]bool{}
	for _, r := range results {
		factors[r.HeapFactor] = true
	}
	var fs []float64
	for f := range factors {
		fs = append(fs, f)
	}
	sort.Float64s(fs)
	for _, f := range fs {
		for _, view := range latencyViews {
			fmt.Fprintf(&b, "%s latency, %s, %.1fx heap (ms):\n",
				viewTitle(view.name), benchName(results), f)
			t := report.NewTable(append([]string{"collector"}, percentileHeaders()...)...)
			for _, r := range results {
				if r.HeapFactor != f {
					continue
				}
				if !r.Completed {
					t.AddRow(r.Collector, "OOM")
					continue
				}
				cells := []interface{}{r.Collector}
				for _, v := range view.get(r).Report() {
					cells = append(cells, v/1e6)
				}
				t.AddRowf(cells...)
			}
			t.Render(&b)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func viewTitle(v string) string {
	switch v {
	case "simple":
		return "Simple"
	case "metered-100ms":
		return "Metered (100ms smoothing)"
	default:
		return "Metered (full smoothing)"
	}
}

func benchName(results []harness.LatencyResult) string {
	if len(results) > 0 {
		return results[0].Benchmark
	}
	return "?"
}

func percentileHeaders() []string {
	out := make([]string, len(latency.ReportPercentiles))
	for i, p := range latency.ReportPercentiles {
		if p == 0 {
			out[i] = "min"
		} else {
			out[i] = fmt.Sprintf("p%g", p)
		}
	}
	return out
}

// MMUFigure renders the MMU-vs-window curves (the Figure 2 discussion) for
// each collector of a latency experiment at one heap factor.
func MMUFigure(results []harness.LatencyResult) string {
	windows := []float64{1e6, 1e7, 1e8, 1e9, 1e10} // 1ms .. 10s
	t := report.NewTable("collector", "heap(x)", "mmu@1ms", "mmu@10ms",
		"mmu@100ms", "mmu@1s", "mmu@10s")
	for _, r := range results {
		if !r.Completed {
			continue
		}
		cells := []interface{}{r.Collector, r.HeapFactor}
		for _, w := range windows {
			cells = append(cells, latency.MMU(r.Pauses, r.RunStart, r.RunEnd, w))
		}
		t.AddRowf(cells...)
	}
	return t.String()
}

// PauseSummary contrasts GC pause statistics with user-experienced latency,
// the paper's core latency argument: pause times systematically understate
// what users experience.
func PauseSummary(results []harness.LatencyResult) string {
	t := report.NewTable("collector", "heap(x)", "pauses", "max pause (ms)",
		"p99.9 simple (ms)", "p99.9 metered-full (ms)")
	for _, r := range results {
		if !r.Completed {
			continue
		}
		var maxPause float64
		for _, p := range r.Pauses {
			maxPause = math.Max(maxPause, p.Duration())
		}
		t.AddRowf(r.Collector, r.HeapFactor, len(r.Pauses), maxPause/1e6,
			r.Simple.Percentile(99.9)/1e6, r.MeteredFull.Percentile(99.9)/1e6)
	}
	return t.String()
}

// CriticalJOPSTable renders a SPECjbb2015-style critical-jOPS comparison of
// the collectors in a latency experiment (Section 3.2's metric, computed
// from the same event data as the latency figures). Scores are relative
// events/second; higher is better.
func CriticalJOPSTable(results []harness.LatencyResult) string {
	t := report.NewTable("collector", "heap(x)", "critical-jOPS (events/s)")
	for _, r := range results {
		if !r.Completed {
			t.AddRow(r.Collector, report.FormatFloat(r.HeapFactor), "OOM")
			continue
		}
		t.AddRowf(r.Collector, r.HeapFactor, latency.CriticalJOPS(r.Events, nil))
	}
	return t.String()
}

// PCAFigure renders Figure 4: PC1/PC2 and PC3/PC4 scatter plots of the
// suite plus the explained-variance summary.
func PCAFigure(table *nominal.SuiteTable) (string, error) {
	names, res, err := table.PCA()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "PCA over %d complete nominal metrics, %d benchmarks\n",
		len(names), len(table.Benchmarks))
	for c := 0; c < 4 && c < len(res.ExplainedVariance); c++ {
		fmt.Fprintf(&b, "PC%d explains %.0f%% of variance\n",
			c+1, res.ExplainedVariance[c]*100)
	}
	b.WriteByte('\n')
	plotPair := func(a, bIdx int) {
		if bIdx >= len(res.Components) {
			return
		}
		p := &report.ScatterPlot{
			Title:  fmt.Sprintf("Figure 4: PC%d vs PC%d", a+1, bIdx+1),
			XLabel: fmt.Sprintf("PC%d (%.0f%%)", a+1, res.ExplainedVariance[a]*100),
			YLabel: fmt.Sprintf("PC%d (%.0f%%)", bIdx+1, res.ExplainedVariance[bIdx]*100),
			Names:  table.Benchmarks,
		}
		for i := range table.Benchmarks {
			p.X = append(p.X, res.Projected[i][a])
			p.Y = append(p.Y, res.Projected[i][bIdx])
		}
		p.Render(&b)
		b.WriteByte('\n')
	}
	plotPair(0, 1)
	plotPair(2, 3)
	return b.String(), nil
}

// Table1 renders the nominal-statistics catalogue.
func Table1() string {
	t := report.NewTable("metric", "group", "source", "description")
	for _, m := range nominal.Metrics {
		src := "trait"
		if m.Measured {
			src = "measured"
		}
		t.AddRow(m.Name, string(m.Group()), src, m.Description)
	}
	return t.String()
}

// Table2 renders the twelve most determinant nominal statistics for every
// benchmark: rank (per the suite) and concrete value.
func Table2(table *nominal.SuiteTable) string {
	t := report.NewTable(append([]string{"benchmark"}, nominal.Table2Metrics...)...)
	for i, bench := range table.Benchmarks {
		cells := []string{bench}
		for _, mn := range nominal.Table2Metrics {
			j := table.MetricIndex(mn)
			if j < 0 || table.Ranks[i][j] == 0 {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%d: %s",
				table.Ranks[i][j], report.FormatFloat(table.Values[i][j])))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// BenchmarkTable renders a benchmark's complete nominal statistics in the
// appendix format: score, value, rank, and the suite's min/median/max.
func BenchmarkTable(table *nominal.SuiteTable, bench string) (string, error) {
	idx := -1
	for i, b := range table.Benchmarks {
		if b == bench {
			idx = i
			break
		}
	}
	if idx < 0 {
		return "", fmt.Errorf("figures: %s not in suite table", bench)
	}
	t := report.NewTable("metric", "score", "value", "rank", "min", "median", "max", "description")
	for j, m := range nominal.Metrics {
		v := table.Values[idx][j]
		if math.IsNaN(v) {
			continue // not available for this benchmark, as in the paper
		}
		var all []float64
		for i := range table.Benchmarks {
			if !math.IsNaN(table.Values[i][j]) {
				all = append(all, table.Values[i][j])
			}
		}
		t.AddRowf(m.Name, table.Scores[idx][j], v, table.Ranks[idx][j],
			stats.Summarize(all).Min, stats.Percentile(all, 50),
			stats.Summarize(all).Max, m.Description)
	}
	return t.String(), nil
}

// HeapTimelineFigure renders the appendix post-GC heap-size figure.
func HeapTimelineFigure(bench string, samples []harness.HeapSample) string {
	p := &report.LinePlot{
		Title:  fmt.Sprintf("%s: heap size after each GC (G1, 2.0x heap)", bench),
		XLabel: "time (s)", YLabel: "heap size (MB)",
	}
	var xs, ys []float64
	for _, s := range samples {
		xs = append(xs, s.TimeSec)
		ys = append(ys, s.UsedMB)
	}
	p.Series = []report.Series{{Label: "post-GC used", Marker: '*', X: xs, Y: ys}}
	var b strings.Builder
	p.Render(&b)
	return b.String()
}

// PausesOf re-exports the pause slice type for callers that only see
// harness results.
func PausesOf(r harness.LatencyResult) []trace.Pause { return r.Pauses }
