package figures

import (
	"strings"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/harness"
	"chopin/internal/lbo"
	"chopin/internal/nominal"
	"chopin/internal/trace"
	"chopin/internal/workload"
)

func testGrid() *lbo.Grid {
	g := &lbo.Grid{Benchmark: "demo"}
	for _, c := range []string{"Serial", "ZGC"} {
		for _, f := range []float64{2, 6} {
			m := lbo.Measurement{
				Collector: c, HeapFactor: f, HeapMB: f * 100, Completed: true,
				WallNS: 200 / f * 2, CPUNS: 300 / f * 2, STWWallNS: 20, GCCPUNS: 30,
			}
			g.Add(m)
		}
	}
	g.Add(lbo.Measurement{Collector: "ZGC", HeapFactor: 1, Completed: false})
	return g
}

func TestGeomeanFigureRendersAndOmitsIncomplete(t *testing.T) {
	pts := []lbo.GeomeanPoint{
		{Collector: "Serial", HeapFactor: 2, Wall: 1.5, CPU: 1.2, Benchmarks: 2, Complete: true},
		{Collector: "Serial", HeapFactor: 6, Wall: 1.1, CPU: 1.05, Benchmarks: 2, Complete: true},
		{Collector: "ZGC", HeapFactor: 2, Wall: 2.0, CPU: 3.0, Benchmarks: 1, Complete: false},
	}
	out := GeomeanFigure(pts, []string{"Serial", "ZGC"})
	if !strings.Contains(out, "Figure 1(a)") || !strings.Contains(out, "Figure 1(b)") {
		t.Fatal("missing figure titles")
	}
	if !strings.Contains(out, "S=Serial") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "false") {
		t.Fatal("table should record incomplete points")
	}
}

func TestLBOFigure(t *testing.T) {
	out, err := LBOFigure(testGrid(), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "wall-clock LBO", "TASK_CLOCK", "OOM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("LBO figure missing %q", want)
		}
	}
}

func TestTable1ContainsAllMetrics(t *testing.T) {
	out := Table1()
	for _, m := range nominal.Metrics {
		if !strings.Contains(out, m.Name) {
			t.Fatalf("Table 1 missing %s", m.Name)
		}
	}
}

func quickChar(t *testing.T, d *workload.Descriptor) *nominal.Characterization {
	t.Helper()
	c, err := nominal.Characterize(d, nominal.Options{
		Events: 200, Invocations: 2, WarmupIters: 6, SkipSizeVariants: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTable2AndBenchmarkTable(t *testing.T) {
	table := nominal.BuildSuite([]*nominal.Characterization{
		quickChar(t, workload.Fop), quickChar(t, workload.Jme),
	})
	t2 := Table2(table)
	for _, want := range []string{"fop", "jme", "GLK", "USF"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("Table 2 missing %q", want)
		}
	}
	bt, err := BenchmarkTable(table, "fop")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GMD", "score", "rank", "median"} {
		if !strings.Contains(bt, want) {
			t.Fatalf("benchmark table missing %q", want)
		}
	}
	if strings.Contains(bt, "GMV") {
		t.Fatal("skipped metric should be omitted from the appendix table")
	}
	if _, err := BenchmarkTable(table, "nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestPCAFigure(t *testing.T) {
	table := nominal.BuildSuite([]*nominal.Characterization{
		quickChar(t, workload.Fop), quickChar(t, workload.Jme),
		quickChar(t, workload.H2o),
	})
	out, err := PCAFigure(table)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PC1", "variance", "a=fop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("PCA figure missing %q", want)
		}
	}
}

func TestLatencyMMUAndPauseFigures(t *testing.T) {
	results, err := harness.Latency(workload.Kafka, []float64{2}, harness.Options{
		Collectors: []gc.Kind{gc.Serial}, Events: 300, Iterations: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lf := LatencyFigure(results)
	for _, want := range []string{"Simple latency", "Metered (100ms smoothing)",
		"Metered (full smoothing)", "p99.9"} {
		if !strings.Contains(lf, want) {
			t.Fatalf("latency figure missing %q", want)
		}
	}
	mmu := MMUFigure(results)
	if !strings.Contains(mmu, "mmu@100ms") {
		t.Fatal("MMU figure missing window columns")
	}
	ps := PauseSummary(results)
	if !strings.Contains(ps, "max pause") {
		t.Fatal("pause summary missing columns")
	}
}

func TestHeapTimelineFigure(t *testing.T) {
	out := HeapTimelineFigure("x", []harness.HeapSample{
		{TimeSec: 0.1, UsedMB: 10}, {TimeSec: 0.2, UsedMB: 14},
	})
	if !strings.Contains(out, "heap size after each GC") {
		t.Fatal("missing title")
	}
}

func TestCriticalJOPSTable(t *testing.T) {
	results, err := harness.Latency(workload.Kafka, []float64{2}, harness.Options{
		Collectors: []gc.Kind{gc.Serial}, Events: 300, Iterations: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := CriticalJOPSTable(results)
	if !strings.Contains(out, "critical-jOPS") || !strings.Contains(out, "Serial") {
		t.Fatalf("jops table malformed:\n%s", out)
	}
	// An OOM row renders as such.
	out = CriticalJOPSTable([]harness.LatencyResult{{Collector: "ZGC", HeapFactor: 1}})
	if !strings.Contains(out, "OOM") {
		t.Fatalf("OOM row missing:\n%s", out)
	}
}

func TestPausesOf(t *testing.T) {
	r := harness.LatencyResult{Pauses: []trace.Pause{{Start: 1, End: 2}}}
	if got := PausesOf(r); len(got) != 1 {
		t.Fatalf("PausesOf = %v", got)
	}
}
