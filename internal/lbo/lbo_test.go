package lbo

import (
	"math"
	"testing"
	"testing/quick"
)

// hand-built grid: two collectors, two heap sizes, known distilled costs.
func testGrid() *Grid {
	g := &Grid{Benchmark: "test"}
	// "simple" collector: cheap attributable cost, low mutator tax.
	g.Add(Measurement{Collector: "simple", HeapFactor: 1, Completed: true,
		WallNS: 150, CPUNS: 160, STWWallNS: 45, GCCPUNS: 50})
	g.Add(Measurement{Collector: "simple", HeapFactor: 2, Completed: true,
		WallNS: 115, CPUNS: 120, STWWallNS: 15, GCCPUNS: 20}) // distilled: 100 wall, 100 cpu
	// "fancy" collector: concurrent, little STW but lots of CPU.
	g.Add(Measurement{Collector: "fancy", HeapFactor: 1, Completed: false})
	g.Add(Measurement{Collector: "fancy", HeapFactor: 2, Completed: true,
		WallNS: 112, CPUNS: 180, STWWallNS: 2, GCCPUNS: 60})
	return g
}

func TestDistilledBaselines(t *testing.T) {
	g := testGrid()
	bw, err := g.BaselineWall()
	if err != nil {
		t.Fatal(err)
	}
	if bw != 100 {
		t.Fatalf("wall baseline = %v, want 100", bw)
	}
	bc, err := g.BaselineCPU()
	if err != nil {
		t.Fatal(err)
	}
	if bc != 100 {
		t.Fatalf("cpu baseline = %v, want 100", bc)
	}
}

func TestOverheadsNormalized(t *testing.T) {
	g := testGrid()
	ovs, err := g.Overheads()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Overhead{}
	for _, o := range ovs {
		byKey[o.Collector+string(rune('0'+int(o.HeapFactor)))] = o
	}
	if got := byKey["simple2"].Wall; math.Abs(got-1.15) > 1e-9 {
		t.Fatalf("simple@2 wall LBO = %v, want 1.15", got)
	}
	if got := byKey["fancy2"].CPU; math.Abs(got-1.80) > 1e-9 {
		t.Fatalf("fancy@2 cpu LBO = %v, want 1.80", got)
	}
	if byKey["fancy1"].Completed {
		t.Fatal("incomplete cell should stay incomplete")
	}
}

func TestOverheadAtLeastOneAtBaselinePoint(t *testing.T) {
	g := testGrid()
	ovs, _ := g.Overheads()
	for _, o := range ovs {
		if o.Completed && (o.Wall < 1 || o.CPU < 1) {
			t.Fatalf("LBO below 1 for completed cell: %+v", o)
		}
	}
}

func TestIncompleteCellsExcludedFromBaseline(t *testing.T) {
	g := &Grid{Benchmark: "x"}
	g.Add(Measurement{Collector: "a", HeapFactor: 1, Completed: false,
		WallNS: 1, CPUNS: 1}) // would be an absurd baseline if included
	g.Add(Measurement{Collector: "a", HeapFactor: 2, Completed: true,
		WallNS: 100, CPUNS: 110, STWWallNS: 10, GCCPUNS: 10})
	bw, err := g.BaselineWall()
	if err != nil {
		t.Fatal(err)
	}
	if bw != 90 {
		t.Fatalf("baseline = %v, want 90", bw)
	}
}

func TestNoCompletedCellsIsError(t *testing.T) {
	g := &Grid{Benchmark: "x"}
	g.Add(Measurement{Collector: "a", Completed: false})
	if _, err := g.BaselineWall(); err == nil {
		t.Fatal("expected error for grid with no completed cells")
	}
	if _, err := g.Overheads(); err == nil {
		t.Fatal("expected error from Overheads too")
	}
}

func TestNonPositiveBaselineIsError(t *testing.T) {
	g := &Grid{Benchmark: "x"}
	g.Add(Measurement{Collector: "a", HeapFactor: 1, Completed: true,
		WallNS: 10, CPUNS: 10, STWWallNS: 10, GCCPUNS: 10})
	if _, err := g.BaselineWall(); err == nil {
		t.Fatal("expected error for zero distilled baseline")
	}
}

func TestGeomeanAcrossBenchmarks(t *testing.T) {
	mk := func(wall2 float64) *Grid {
		g := &Grid{}
		g.Add(Measurement{Collector: "a", HeapFactor: 2, Completed: true,
			WallNS: wall2, CPUNS: wall2, STWWallNS: wall2 - 100, GCCPUNS: wall2 - 100})
		return g
	}
	// Baselines are 100 in both grids; overheads 1.2 and 1.8.
	pts, err := Geomean([]*Grid{mk(120), mk(180)}, []string{"a"}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1", len(pts))
	}
	want := math.Sqrt(1.2 * 1.8)
	if math.Abs(pts[0].Wall-want) > 1e-9 {
		t.Fatalf("geomean = %v, want %v", pts[0].Wall, want)
	}
	if !pts[0].Complete || pts[0].Benchmarks != 2 {
		t.Fatalf("point should be complete over 2 benchmarks: %+v", pts[0])
	}
}

func TestGeomeanMarksIncompleteCollectors(t *testing.T) {
	ok := &Grid{}
	ok.Add(Measurement{Collector: "z", HeapFactor: 1, Completed: true,
		WallNS: 120, CPUNS: 120, STWWallNS: 20, GCCPUNS: 20})
	bad := &Grid{}
	bad.Add(Measurement{Collector: "z", HeapFactor: 1, Completed: false})
	bad.Add(Measurement{Collector: "z", HeapFactor: 2, Completed: true,
		WallNS: 120, CPUNS: 120, STWWallNS: 20, GCCPUNS: 20})
	pts, err := Geomean([]*Grid{ok, bad}, []string{"z"}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.HeapFactor == 1 && p.Complete {
			t.Fatal("factor-1 point should be incomplete (one benchmark OOMed)")
		}
	}
}

// Property: scaling all costs of a grid uniformly leaves every overhead
// unchanged (LBO is scale-free).
func TestQuickOverheadScaleInvariant(t *testing.T) {
	f := func(scaleRaw uint16, wallRaw, stwRaw []uint16) bool {
		if len(wallRaw) == 0 {
			return true
		}
		scale := 1 + float64(scaleRaw%1000)/10
		build := func(s float64) *Grid {
			g := &Grid{}
			for i, w := range wallRaw {
				wall := (float64(w%10000) + 200) * s
				stw := wall * 0.3
				if i < len(stwRaw) {
					stw = wall * (float64(stwRaw[i]%90) / 100)
				}
				g.Add(Measurement{Collector: "c", HeapFactor: float64(i),
					Completed: true, WallNS: wall, CPUNS: wall * 1.5,
					STWWallNS: stw, GCCPUNS: stw})
			}
			return g
		}
		a, errA := build(1).Overheads()
		b, errB := build(scale).Overheads()
		if errA != nil || errB != nil {
			return errA != nil && errB != nil
		}
		for i := range a {
			if math.Abs(a[i].Wall-b[i].Wall) > 1e-9 || math.Abs(a[i].CPU-b[i].CPU) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
