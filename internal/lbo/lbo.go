// Package lbo implements the lower-bound overhead methodology of Cai et al.
// (ISPASS 2022) as used throughout the paper (Sections 2, 4.5 and 6.2).
//
// The idea: a perfect zero-cost GC would be the right baseline for measuring
// collector overhead, and although it cannot exist it can be approximated by
// taking real measurements and subtracting the costs that are easily
// attributable to collection — stop-the-world time from the wall clock, GC
// thread CPU from the task clock. The lowest such "distilled" cost across
// every collector and heap size is the baseline; each configuration's
// overhead is its total cost over that baseline. Because the baseline still
// contains unattributable GC costs (barriers, allocator work, locality
// damage), the resulting overhead is systematically an underestimate: a
// lower bound.
package lbo

import (
	"fmt"
	"math"
)

// Measurement is one (collector, heap size) cell of a benchmark's grid.
type Measurement struct {
	Collector  string
	HeapFactor float64 // multiple of the benchmark's minimum heap
	HeapMB     float64
	// Completed is false when the collector could not run the benchmark at
	// this heap size (OOM); such cells carry no data and are excluded, as
	// the paper excludes them from its plots.
	Completed bool
	// WallNS and CPUNS are mean total costs across invocations.
	WallNS float64
	CPUNS  float64
	// STWWallNS is the wall time spent in stop-the-world pauses; GCCPUNS is
	// the CPU consumed by GC threads. These are the "easily attributable"
	// costs the distillation subtracts.
	STWWallNS float64
	GCCPUNS   float64
	// WallSamples and CPUSamples are per-invocation totals for confidence
	// intervals.
	WallSamples []float64
	CPUSamples  []float64
}

// DistilledWall returns the cell's approximation to GC-free wall time.
func (m Measurement) DistilledWall() float64 { return m.WallNS - m.STWWallNS }

// DistilledCPU returns the cell's approximation to GC-free CPU time.
func (m Measurement) DistilledCPU() float64 { return m.CPUNS - m.GCCPUNS }

// Grid is one benchmark's measurements over the (collector, heap) plane.
type Grid struct {
	Benchmark string
	Cells     []Measurement
}

// Add appends a measurement.
func (g *Grid) Add(m Measurement) { g.Cells = append(g.Cells, m) }

// BaselineWall returns the distilled wall-clock baseline: the minimum
// distilled wall time over all completed cells.
func (g *Grid) BaselineWall() (float64, error) {
	return g.baseline(Measurement.DistilledWall)
}

// BaselineCPU returns the distilled task-clock baseline.
func (g *Grid) BaselineCPU() (float64, error) {
	return g.baseline(Measurement.DistilledCPU)
}

func (g *Grid) baseline(distill func(Measurement) float64) (float64, error) {
	best := math.Inf(1)
	for _, m := range g.Cells {
		if !m.Completed {
			continue
		}
		if d := distill(m); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("lbo: %s has no completed cells", g.Benchmark)
	}
	if best <= 0 {
		return 0, fmt.Errorf("lbo: %s distilled baseline %v is non-positive", g.Benchmark, best)
	}
	return best, nil
}

// Overhead is the lower-bound overhead of one cell: total cost normalized to
// the benchmark's distilled baseline (>= the baseline cell's own ratio, and
// >= 1 at the baseline point by construction).
type Overhead struct {
	Collector  string
	HeapFactor float64
	HeapMB     float64
	Completed  bool
	Wall       float64 // normalized wall-clock overhead
	CPU        float64 // normalized task-clock overhead
}

// Overheads normalizes every cell against the grid's distilled baselines.
func (g *Grid) Overheads() ([]Overhead, error) {
	bw, err := g.BaselineWall()
	if err != nil {
		return nil, err
	}
	bc, err := g.BaselineCPU()
	if err != nil {
		return nil, err
	}
	out := make([]Overhead, 0, len(g.Cells))
	for _, m := range g.Cells {
		o := Overhead{
			Collector:  m.Collector,
			HeapFactor: m.HeapFactor,
			HeapMB:     m.HeapMB,
			Completed:  m.Completed,
		}
		if m.Completed {
			o.Wall = m.WallNS / bw
			o.CPU = m.CPUNS / bc
		}
		out = append(out, o)
	}
	return out, nil
}

// GeomeanPoint is one point of a cross-benchmark LBO curve (Figure 1).
type GeomeanPoint struct {
	Collector  string
	HeapFactor float64
	Wall       float64
	CPU        float64
	// Benchmarks is how many benchmarks contributed; Complete reports
	// whether the collector completed every benchmark at this heap factor —
	// the paper only plots complete points.
	Benchmarks int
	Complete   bool
}

// Geomean aggregates per-benchmark overhead grids into the cross-suite
// geometric-mean curves of Figure 1. Points where a collector did not
// complete every benchmark are returned with Complete=false so callers can
// omit them exactly as the paper does.
func Geomean(grids []*Grid, collectors []string, factors []float64) ([]GeomeanPoint, error) {
	type key struct {
		collector string
		factor    float64
	}
	overheadsByBench := make([]map[key]Overhead, len(grids))
	for i, g := range grids {
		ovs, err := g.Overheads()
		if err != nil {
			return nil, err
		}
		m := make(map[key]Overhead, len(ovs))
		for _, o := range ovs {
			m[key{o.Collector, o.HeapFactor}] = o
		}
		overheadsByBench[i] = m
	}

	var out []GeomeanPoint
	for _, c := range collectors {
		for _, f := range factors {
			pt := GeomeanPoint{Collector: c, HeapFactor: f, Complete: true}
			logWall, logCPU := 0.0, 0.0
			for _, m := range overheadsByBench {
				o, ok := m[key{c, f}]
				if !ok || !o.Completed {
					pt.Complete = false
					continue
				}
				logWall += math.Log(o.Wall)
				logCPU += math.Log(o.CPU)
				pt.Benchmarks++
			}
			if pt.Benchmarks > 0 {
				pt.Wall = math.Exp(logWall / float64(pt.Benchmarks))
				pt.CPU = math.Exp(logCPU / float64(pt.Benchmarks))
			}
			out = append(out, pt)
		}
	}
	return out, nil
}
