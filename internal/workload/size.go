package workload

import "fmt"

// Size selects one of the suite's input-size configurations. The real suite
// ships different inputs per size; our models scale the live set (and with
// it the minimum heap) and the event count. The paper's headline range —
// minimum heaps from 5MB (avrora, default) to 20GB (h2, vlarge) — comes from
// these configurations.
type Size int

// Input sizes.
const (
	SizeDefault Size = iota
	SizeSmall
	SizeLarge
	SizeVLarge
)

func (s Size) String() string {
	switch s {
	case SizeDefault:
		return "default"
	case SizeSmall:
		return "small"
	case SizeLarge:
		return "large"
	case SizeVLarge:
		return "vlarge"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

// ParseSize resolves a size name.
func ParseSize(name string) (Size, error) {
	for _, s := range []Size{SizeDefault, SizeSmall, SizeLarge, SizeVLarge} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown size %q", name)
}

// sizeScales maps a size to (live-set multiplier, event multiplier). The
// live multipliers follow the published GMS/GML/GMV-to-GMD ratios of the
// suite (small ~1/4, large ~8x, vlarge ~30x — h2's vlarge minimum heap is
// 20.6GB against a 681MB default).
var sizeScales = map[Size]struct{ live, events float64 }{
	SizeDefault: {1, 1},
	SizeSmall:   {0.25, 0.5},
	SizeLarge:   {8, 2},
	SizeVLarge:  {30, 4},
}

// Scaled returns a copy of the descriptor configured for the given input
// size. The default size returns the descriptor unchanged.
func (d *Descriptor) Scaled(s Size) *Descriptor {
	if s == SizeDefault {
		return d
	}
	scale, ok := sizeScales[s]
	if !ok {
		panic(fmt.Sprintf("workload: no scale for %v", s))
	}
	out := *d
	out.LiveMB *= scale.live
	out.LeakMBPerIter *= scale.live
	out.MinHeapMB *= scale.live
	out.Events = int(float64(d.Events) * scale.events)
	if out.Events < 100 {
		out.Events = 100
	}
	// Larger inputs allocate more in total and run longer; the allocation
	// *rate* is an intrinsic property and stays put.
	out.PETSeconds *= scale.events
	return &out
}
