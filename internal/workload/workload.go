// Package workload defines the 22 DaCapo-Chopin-style benchmark models and
// the runtime that executes them on the simulated machine.
//
// Each workload is a Descriptor: the mechanistic parameters that drive the
// simulation (worker threads, per-event service cost, allocation rate, live
// set and its phases, object demographics) plus the intrinsic trait profiles
// (microarchitectural behaviour, compiler sensitivity, bytecode mix) that
// feed the CPU model and the nominal-statistics characterization. The
// mechanistic parameters are calibrated so that measured nominal statistics
// land near the values the paper publishes for the real suite; the traits are
// taken from the paper's appendix tables directly.
package workload

import (
	"fmt"
	"sort"

	"chopin/internal/cpuarch"
	"chopin/internal/heap"
	"chopin/internal/jit"
)

// Class describes a workload's execution structure.
type Class int

// Workload classes.
const (
	// Batch workloads run a fixed amount of divisible work to completion
	// (compilers, renderers, analyzers).
	Batch Class = iota
	// Request workloads process a pre-determined stream of requests with a
	// pool of workers, DaCapo style: each worker starts its next request
	// when its previous one completes.
	Request
	// Frame workloads render consecutive frames on a single driving thread
	// plus helpers (jme).
	Frame
)

func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case Request:
		return "request"
	case Frame:
		return "frame"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// MB is a megabyte in bytes, as a float for heap arithmetic.
const MB = float64(1 << 20)

// Traits carries the intrinsic per-workload statistics that are not
// derivable from the heap/CPU simulation: bytecode-mix measures gathered by
// instrumentation in the real suite and a few hardware-measured values. They
// feed the nominal-statistics report and the PCA exactly as published.
type Traits struct {
	BAL float64 // aaload per usec
	BAS float64 // aastore per usec
	BEF float64 // execution focus / hot-code dominance
	BGF float64 // getfield per usec
	BPF float64 // putfield per usec
	BUB float64 // thousands of unique bytecodes executed
	BUF float64 // thousands of unique function calls
	PPE float64 // parallel efficiency, % of ideal 32-thread speedup
	PFS float64 // published frequency-scaling speedup % (cross-check)
	PLS float64 // published LLC-sensitivity % (cross-check)
	PMS float64 // published memory-speed sensitivity % (cross-check)
	GSS float64 // published heap-size sensitivity % (cross-check)
	UIP float64 // published 100 x IPC (cross-check for the CPU model)
}

// Descriptor is the complete definition of one benchmark.
type Descriptor struct {
	Name        string
	Description string
	Class       Class
	// LatencySensitive marks the nine workloads that time every event and
	// report request latency.
	LatencySensitive bool
	// NewInChopin marks the eight workloads introduced by this release.
	NewInChopin bool
	// Estimated marks workloads whose calibration targets were estimated
	// (our source text truncated their appendix tables).
	Estimated bool

	// Threads is the number of mutator workers (the workload's effective
	// parallelism, which folds in its real-world parallel efficiency).
	Threads int
	// Events is the default number of requests/chunks/frames per iteration.
	Events int
	// PETSeconds is the nominal single-iteration execution time the workload
	// is calibrated to (nominal statistic PET).
	PETSeconds float64
	// ARA is the nominal allocation rate in bytes per wall microsecond.
	ARA float64
	// ServiceSigma is the log-normal shape of per-event service cost.
	ServiceSigma float64

	// LiveMB is the steady-state live set in MB. BuildFrac is the fraction
	// of the first iteration spent constructing it (e.g. h2's database
	// population); during the build the live set ramps from near zero.
	LiveMB    float64
	BuildFrac float64
	// LeakMBPerIter grows the live set every iteration (nominal GLK).
	LeakMBPerIter float64

	// MinHeapMB is the published nominal minimum heap (GMD), used as a
	// calibration cross-check, never as simulator input.
	MinHeapMB float64

	Demo   heap.Demographics
	Arch   cpuarch.Profile
	Jit    jit.Model
	Traits Traits

	// KernelFrac is the share of mutator CPU spent in kernel mode (PKP/100).
	KernelFrac float64
}

// Validate reports the first configuration error in the descriptor.
func (d *Descriptor) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("workload: empty name")
	case d.Threads < 1:
		return fmt.Errorf("workload %s: threads %d < 1", d.Name, d.Threads)
	case d.Events < 1:
		return fmt.Errorf("workload %s: events %d < 1", d.Name, d.Events)
	case d.PETSeconds <= 0:
		return fmt.Errorf("workload %s: PET %v <= 0", d.Name, d.PETSeconds)
	case d.ARA < 0:
		return fmt.Errorf("workload %s: ARA %v < 0", d.Name, d.ARA)
	case d.LiveMB < 0:
		return fmt.Errorf("workload %s: live %vMB < 0", d.Name, d.LiveMB)
	case d.BuildFrac < 0 || d.BuildFrac >= 1:
		return fmt.Errorf("workload %s: build fraction %v out of [0,1)", d.Name, d.BuildFrac)
	case d.KernelFrac < 0 || d.KernelFrac > 1:
		return fmt.Errorf("workload %s: kernel fraction %v out of [0,1]", d.Name, d.KernelFrac)
	}
	return nil
}

// ServiceMedianNS returns the median per-event CPU cost, sized so an ideal
// GC-free iteration takes about PETSeconds of wall time: each of Threads
// workers processes Events/Threads events sequentially.
func (d *Descriptor) ServiceMedianNS(events int) float64 {
	if events < 1 {
		events = d.Events
	}
	return d.PETSeconds * 1e9 * float64(d.Threads) / float64(events)
}

// BytesPerEvent returns the allocation attached to each event, sized so an
// iteration allocates ARA bytes per microsecond of nominal wall time.
func (d *Descriptor) BytesPerEvent(events int) float64 {
	if events < 1 {
		events = d.Events
	}
	return d.ARA * d.PETSeconds * 1e6 / float64(events)
}

// registry of all workloads, populated by defs.go.
var registry = map[string]*Descriptor{}

func register(d *Descriptor) *Descriptor {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[d.Name]; dup {
		panic("workload: duplicate " + d.Name)
	}
	registry[d.Name] = d
	return d
}

// ByName returns the workload with the given name.
func ByName(name string) (*Descriptor, error) {
	d, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return d, nil
}

// Names returns all benchmark names in alphabetical order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns all descriptors in alphabetical name order.
func All() []*Descriptor {
	names := Names()
	out := make([]*Descriptor, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// LatencySensitive returns the latency-sensitive subset, in name order.
func LatencySensitive() []*Descriptor {
	var out []*Descriptor
	for _, d := range All() {
		if d.LatencySensitive {
			out = append(out, d)
		}
	}
	return out
}
