package workload

import (
	"errors"
	"math"
	"strings"
	"testing"

	"chopin/internal/gc"
)

// intervalFor runs the interval computation the way runOpenLoopIteration
// does, with only the fields it reads populated.
func intervalFor(t *testing.T, events int, headroom float64) (float64, error) {
	t.Helper()
	d := MicroPauseProbe
	r := &runner{
		d:      d,
		cfg:    RunConfig{OpenLoopHeadroom: headroom},
		events: events,
	}
	return r.openLoopInterval()
}

// TestOpenLoopIntervalGuards is the regression suite for the degenerate
// schedules the raw PET/events division used to admit: zero events divided to
// +Inf (and the first arrival timer then never fired, hanging the iteration),
// and a non-finite headroom poisoned every deadline with NaN.
func TestOpenLoopIntervalGuards(t *testing.T) {
	cases := []struct {
		name     string
		events   int
		headroom float64
		reason   string
	}{
		{"zero events", 0, 0, "no events"},
		{"negative events", -3, 0, "no events"},
		{"NaN headroom", 100, math.NaN(), "finite non-negative"},
		{"+Inf headroom", 100, math.Inf(1), "finite non-negative"},
		{"-Inf headroom", 100, math.Inf(-1), "finite non-negative"},
		{"negative headroom", 100, -0.5, "finite non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := intervalFor(t, tc.events, tc.headroom)
			var cfgErr *ErrOpenLoopConfig
			if !errors.As(err, &cfgErr) {
				t.Fatalf("err = %v, want *ErrOpenLoopConfig", err)
			}
			if cfgErr.Events != tc.events || cfgErr.Workload != MicroPauseProbe.Name {
				t.Fatalf("error fields = %+v", cfgErr)
			}
			if !strings.Contains(cfgErr.Error(), tc.reason) {
				t.Fatalf("error %q does not explain %q", cfgErr, tc.reason)
			}
		})
	}
}

// TestOpenLoopIntervalValues: the healthy path divides PET over events,
// stretches by headroom, and clamps to the 1ns floor instead of scheduling a
// sub-nanosecond event storm.
func TestOpenLoopIntervalValues(t *testing.T) {
	d := MicroPauseProbe
	nominal := d.PETSeconds * 1e9 / 1000

	got, err := intervalFor(t, 1000, 0)
	if err != nil || got != nominal {
		t.Fatalf("interval = %v, %v; want %v", got, err, nominal)
	}
	got, err = intervalFor(t, 1000, 2.5)
	if err != nil || got != nominal*2.5 {
		t.Fatalf("stretched interval = %v, %v; want %v", got, err, nominal*2.5)
	}
	// A vanishing headroom would schedule ~1e-10 ns arrivals: clamp, don't
	// storm.
	got, err = intervalFor(t, 1000, 1e-16)
	if err != nil || got != 1.0 {
		t.Fatalf("clamped interval = %v, %v; want the 1ns floor", got, err)
	}
}

// TestOpenLoopZeroEventsRunErrors: end-to-end, a zero-event open-loop run
// must fail fast — before these guards it hung on an arrival timer scheduled
// at +Inf. Descriptor validation is the outer layer and rejects the schedule
// first; the typed interval guard covers paths that bypass Validate (direct
// runner drivers).
func TestOpenLoopZeroEventsRunErrors(t *testing.T) {
	d := *MicroPauseProbe
	d.Events = 0
	_, err := Run(&d, RunConfig{
		HeapMB:     2 * d.MinHeapMB,
		Collector:  gc.G1,
		Iterations: 1,
		Seed:       1,
		OpenLoop:   true,
	})
	if err == nil || !strings.Contains(err.Error(), "events") {
		t.Fatalf("err = %v, want a zero-events rejection", err)
	}
}

// TestOpenLoopBadHeadroomRunErrors: same end-to-end guard for a poisoned
// headroom factor.
func TestOpenLoopBadHeadroomRunErrors(t *testing.T) {
	for _, h := range []float64{math.NaN(), math.Inf(1), -1} {
		_, err := Run(MicroPauseProbe, RunConfig{
			HeapMB:           2 * MicroPauseProbe.MinHeapMB,
			Collector:        gc.G1,
			Iterations:       1,
			Events:           200,
			Seed:             1,
			OpenLoop:         true,
			OpenLoopHeadroom: h,
		})
		var cfgErr *ErrOpenLoopConfig
		if !errors.As(err, &cfgErr) {
			t.Fatalf("headroom %v: err = %v, want *ErrOpenLoopConfig", h, err)
		}
	}
}
