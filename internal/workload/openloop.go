package workload

import (
	"fmt"
	"math"

	"chopin/internal/sim"
)

// Open-loop execution mode.
//
// DaCapo's request workloads are closed-loop by design: each worker starts
// its next request when its previous one completes, and the paper's metered
// latency then *models* the queueing behaviour of a real open system by
// assigning uniform synthetic arrival times (Section 4.4: "Sacrificing some
// realism for determinism"). Our substrate is a simulator, so it can do what
// the real suite could not: actually run the open system. In open-loop mode
// requests arrive on a fixed schedule regardless of completion, queue when
// all workers are busy, and each event's latency runs from *arrival* to
// completion — the ground truth that metered latency approximates. The
// ablation bench compares the two.
//
// Mechanically, arrivals are driven by engine timers; to respect the
// collector's pause discipline (mutator quanta may only start from Alloc
// callbacks), an arrival never Execs a worker directly — it enqueues, and
// idle workers are kicked through the collector's Alloc path, which defers
// across stop-the-world pauses.

// ErrOpenLoopConfig reports a degenerate open-loop arrival schedule: a
// configuration whose computed inter-arrival interval is not a positive
// finite duration (zero events, a non-finite or negative headroom). It is a
// configuration error, typed so sweeps can distinguish it from simulation
// failures.
type ErrOpenLoopConfig struct {
	Workload string
	Events   int
	Headroom float64
	Reason   string
}

func (e *ErrOpenLoopConfig) Error() string {
	return fmt.Sprintf("%s: degenerate open-loop schedule (events=%d, headroom=%v): %s",
		e.Workload, e.Events, e.Headroom, e.Reason)
}

// minOpenLoopIntervalNS floors the inter-arrival interval at one virtual
// nanosecond. A tiny-but-positive headroom on a small PET can otherwise
// schedule sub-nanosecond arrivals, which truncate to the same integer
// timestamp and degrade the engine into a zero-dt event storm.
const minOpenLoopIntervalNS = 1.0

// olItem is one queued open-loop arrival: its arrival time and caller-chosen
// identity. The runner's own schedule numbers arrivals 0..events-1; a fleet
// driver injecting arrivals assigns fleet-wide request IDs.
type olItem struct {
	at sim.Time
	id int32
}

// openLoopState is the runner's open-loop machinery, allocated once per run
// and reused across iterations: the FIFO arrival queue (a slice with a head
// index, compacted when drained so the backing array stabilizes at the peak
// backlog), the per-worker busy flags, and the single arrival callback every
// timer shares.
type openLoopState struct {
	queue     []olItem // queued arrivals; FIFO from head
	head      int
	busy      []bool // indexed by worker position in runner.workers
	arrived   int
	completed int
	arrivalFn func() // bound once to runner.openLoopArrival
	// Arrival i's deadline is startF + i*intervalNS; arrivals are armed one
	// at a time (each firing schedules the next via Engine.At), so only one
	// arrival timer is ever live instead of one per event.
	startF     float64
	intervalNS float64
}

// openLoopArrival is the shared timer callback: one request joins the queue
// at the current virtual time, and the next arrival (if any) is armed at its
// precomputed absolute deadline.
func (r *runner) openLoopArrival() {
	ol := &r.ol
	ol.arrived++
	ol.queue = append(ol.queue, olItem{at: r.eng.Now(), id: int32(ol.arrived - 1)})
	if ol.arrived < r.events {
		r.eng.At(ol.startF+float64(ol.arrived)*ol.intervalNS, ol.arrivalFn)
	}
	r.dispatchOpenLoop()
}

// injectArrival is the externally driven arrival path (fleet replicas): one
// request with a caller-assigned ID joins the queue at the current virtual
// time, exactly as a scheduled arrival would, but nothing further is armed —
// the driver owns the schedule.
func (r *runner) injectArrival(id int32) {
	ol := &r.ol
	ol.arrived++
	ol.queue = append(ol.queue, olItem{at: r.eng.Now(), id: id})
	r.dispatchOpenLoop()
}

// dispatchOpenLoop pairs queued arrivals with idle workers until one of the
// two runs out. The first idle worker in registration order serves the head
// of the queue, exactly as the closure-based implementation did.
func (r *runner) dispatchOpenLoop() {
	if r.oom {
		return
	}
	ol := &r.ol
	for ol.head < len(ol.queue) {
		widx := -1
		for i := range r.workers {
			if !ol.busy[i] {
				widx = i
				break
			}
		}
		if widx < 0 {
			return
		}
		item := ol.queue[ol.head]
		ol.head++
		if ol.head == len(ol.queue) {
			ol.queue = ol.queue[:0]
			ol.head = 0
		}
		ol.busy[widx] = true
		if r.onDispatch != nil {
			r.onDispatch(item.id, r.eng.Now())
		}
		f := r.newFrame()
		f.w = r.workers[widx]
		f.idx = widx
		f.open = true
		f.start = item.at
		f.olID = item.id
		f.begin()
	}
}

// completeOpen finishes an open-loop event: latency runs from arrival to
// completion, the worker frees up, and the queue re-dispatches. The
// onComplete hook (fleet replicas) observes the completion before the next
// dispatch, so a driver draining completions after a step sees them in
// completion order.
func (f *eventFrame) completeOpen() {
	r := f.r
	if r.recording {
		r.latencies = append(r.latencies, Event{Start: f.start, End: r.eng.Now()})
	}
	if r.onComplete != nil {
		r.onComplete(f.olID, f.start, r.eng.Now())
	}
	r.ol.completed++
	r.ol.busy[f.idx] = false
	r.releaseFrame(f)
	r.dispatchOpenLoop()
}

// openLoopInterval computes the iteration's inter-arrival interval — events
// spread uniformly across the workload's nominal duration, stretched by any
// headroom — guarding the degenerate schedules a raw division admits: zero
// events divide to +Inf, a NaN/Inf headroom poisons every deadline, and a
// vanishing product schedules sub-nanosecond arrivals (clamped to the 1ns
// floor).
func (r *runner) openLoopInterval() (float64, error) {
	if r.events <= 0 {
		return 0, &ErrOpenLoopConfig{r.d.Name, r.events, r.cfg.OpenLoopHeadroom,
			"no events to schedule"}
	}
	h := r.cfg.OpenLoopHeadroom
	if h != 0 && (math.IsNaN(h) || math.IsInf(h, 0) || h < 0) {
		return 0, &ErrOpenLoopConfig{r.d.Name, r.events, h,
			"headroom must be a finite non-negative factor"}
	}
	intervalNS := r.d.PETSeconds * 1e9 / float64(r.events)
	if h > 0 {
		intervalNS *= h
	}
	if math.IsNaN(intervalNS) || math.IsInf(intervalNS, 0) || intervalNS <= 0 {
		return 0, &ErrOpenLoopConfig{r.d.Name, r.events, h,
			fmt.Sprintf("computed interval %v ns is not a positive finite duration", intervalNS)}
	}
	if intervalNS < minOpenLoopIntervalNS {
		intervalNS = minOpenLoopIntervalNS
	}
	return intervalNS, nil
}

// runOpenLoopIteration executes one iteration with scheduled arrivals at the
// workload's nominal rate (events spread uniformly over PET seconds).
func (r *runner) runOpenLoopIteration(iter int) (IterationResult, error) {
	intervalNS, err := r.openLoopInterval()
	if err != nil {
		return IterationResult{}, err
	}
	r.iter = iter
	r.recording = iter == r.cfg.Iterations-1 &&
		(r.d.LatencySensitive || r.cfg.RecordLatency)
	if r.recording {
		r.latencies = r.latencies[:0] // preallocated once in Run, reused
	}
	r.h.SetTargetLive(r.targetLive(iter))

	start := r.eng.Now()
	cpu0 := r.eng.TaskClock() // O(1) running aggregate, cheap per iteration
	alloc0 := r.h.TotalAllocated()
	kern0 := r.kernelCPU()

	ol := &r.ol
	ol.queue = ol.queue[:0]
	ol.head = 0
	if ol.busy == nil {
		ol.busy = make([]bool, len(r.workers))
		ol.arrivalFn = r.openLoopArrival
	}
	for i := range ol.busy {
		ol.busy[i] = false
	}
	ol.arrived, ol.completed = 0, 0
	ol.startF = r.eng.NowF()
	ol.intervalNS = intervalNS

	r.eng.At(ol.startF, ol.arrivalFn) // arrival 0; each arrival arms the next
	if err := r.eng.Run(); err != nil {
		return IterationResult{}, fmt.Errorf("%s: %w", r.d.Name, err)
	}
	if r.oom {
		return IterationResult{}, &ErrOutOfMemory{r.d.Name, r.cfg.HeapMB, r.cfg.Collector}
	}
	if ol.completed != r.events {
		return IterationResult{}, fmt.Errorf(
			"%s: open-loop iteration lost events: %d arrived, %d completed",
			r.d.Name, ol.arrived, ol.completed)
	}
	end := r.eng.Now()
	return IterationResult{
		WallNS:    float64(end - start),
		CPUNS:     r.eng.TaskClock() - cpu0,
		KernelNS:  r.kernelCPU() - kern0,
		Allocated: r.h.TotalAllocated() - alloc0,
		StartNS:   start,
		EndNS:     end,
	}, nil
}
