package workload

import (
	"fmt"

	"chopin/internal/sim"
)

// Open-loop execution mode.
//
// DaCapo's request workloads are closed-loop by design: each worker starts
// its next request when its previous one completes, and the paper's metered
// latency then *models* the queueing behaviour of a real open system by
// assigning uniform synthetic arrival times (Section 4.4: "Sacrificing some
// realism for determinism"). Our substrate is a simulator, so it can do what
// the real suite could not: actually run the open system. In open-loop mode
// requests arrive on a fixed schedule regardless of completion, queue when
// all workers are busy, and each event's latency runs from *arrival* to
// completion — the ground truth that metered latency approximates. The
// ablation bench compares the two.
//
// Mechanically, arrivals are driven by engine timers; to respect the
// collector's pause discipline (mutator quanta may only start from Alloc
// callbacks), an arrival never Execs a worker directly — it enqueues, and
// idle workers are kicked through the collector's Alloc path, which defers
// across stop-the-world pauses.

// runOpenLoopIteration executes one iteration with scheduled arrivals at the
// workload's nominal rate (events spread uniformly over PET seconds).
func (r *runner) runOpenLoopIteration(iter int) (IterationResult, error) {
	r.iter = iter
	r.recording = iter == r.cfg.Iterations-1 &&
		(r.d.LatencySensitive || r.cfg.RecordLatency)
	if r.recording {
		r.latencies = make([]Event, 0, r.events)
	}
	r.h.SetTargetLive(r.targetLive(iter))

	start := r.eng.Now()
	cpu0 := r.eng.TaskClock() // O(1) running aggregate, cheap per iteration
	alloc0 := r.h.TotalAllocated()
	kern0 := r.kernelCPU()

	// Arrival schedule: r.events arrivals spread uniformly across the
	// iteration's nominal duration.
	intervalNS := r.d.PETSeconds * 1e9 / float64(r.events)
	if r.cfg.OpenLoopHeadroom > 0 {
		intervalNS *= r.cfg.OpenLoopHeadroom
	}
	type pending struct{ arrival sim.Time }
	var queue []pending
	busy := make(map[*sim.Thread]bool)
	arrived, completed := 0, 0

	var dispatch func()
	serve := func(w *sim.Thread, p pending) {
		busy[w] = true
		r.executeEvent(w, func() {
			if r.recording {
				r.latencies = append(r.latencies, Event{Start: p.arrival, End: r.eng.Now()})
			}
			completed++
			busy[w] = false
			dispatch()
		})
	}
	dispatch = func() {
		if r.oom {
			return
		}
		for len(queue) > 0 {
			var w *sim.Thread
			for _, cand := range r.workers {
				if !busy[cand] {
					w = cand
					break
				}
			}
			if w == nil {
				return
			}
			p := queue[0]
			queue = queue[1:]
			serve(w, p)
		}
	}

	for i := 0; i < r.events; i++ {
		at := float64(i) * intervalNS
		r.eng.After(at, func() {
			arrived++
			queue = append(queue, pending{arrival: r.eng.Now()})
			dispatch()
		})
	}
	if err := r.eng.Run(); err != nil {
		return IterationResult{}, fmt.Errorf("%s: %w", r.d.Name, err)
	}
	if r.oom {
		return IterationResult{}, &ErrOutOfMemory{r.d.Name, r.cfg.HeapMB, r.cfg.Collector}
	}
	if completed != r.events {
		return IterationResult{}, fmt.Errorf(
			"%s: open-loop iteration lost events: %d arrived, %d completed",
			r.d.Name, arrived, completed)
	}
	end := r.eng.Now()
	return IterationResult{
		WallNS:    float64(end - start),
		CPUNS:     r.eng.TaskClock() - cpu0,
		KernelNS:  r.kernelCPU() - kern0,
		Allocated: r.h.TotalAllocated() - alloc0,
		StartNS:   start,
		EndNS:     end,
	}, nil
}
