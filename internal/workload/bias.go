package workload

import "chopin/internal/sim"

// Measurement bias (Mytkowicz et al., cited by the paper's Section 4.3).
//
// "Producing wrong data without doing anything obviously wrong!" showed that
// incidental experimental-setup details — the byte length of environment
// variables shifting stack alignment, link order shifting code layout — can
// bias measurements by several percent, enough to flip conclusions. The
// paper tells researchers to heed that advice; this file gives the simulator
// the machinery to (a) inject such a bias so the pitfall can be demonstrated
// and (b) randomize the setup per invocation, the standard mitigation.
//
// A Setup models one concrete experimental environment. Its bias is a
// deterministic function of the environment-block length and link seed — the
// same setup always produces the same bias, which is exactly what makes the
// pitfall insidious: it is perfectly repeatable and looks like signal.

// Setup describes the incidental experimental environment of an invocation.
type Setup struct {
	// EnvBytes is the total byte length of the process environment block
	// (the UNIX env Mytkowicz et al. varied by changing a variable's
	// length).
	EnvBytes int
	// LinkSeed stands for the link order / code layout of the binary.
	LinkSeed uint64
}

// maxBiasFrac bounds the layout-induced execution-time bias; Mytkowicz et
// al. observed effects up to ~10%, commonly a few percent.
const maxBiasFrac = 0.08

// Bias returns the setup's deterministic execution-time multiplier in
// [1-maxBiasFrac/2, 1+maxBiasFrac/2]. Alignment effects are periodic in the
// environment size (stack alignment wraps at cache-line granularity), which
// the hash structure reflects.
func (s Setup) Bias() float64 {
	h := sim.NewRNG(uint64(s.EnvBytes%4096)*2654435761 ^ s.LinkSeed)
	return 1 + maxBiasFrac*(h.Float64()-0.5)
}

// RandomizedSetups returns n distinct setups drawn from a seed — the
// mitigation: measuring across randomized environments turns layout bias
// into visible variance instead of invisible offset.
func RandomizedSetups(n int, seed uint64) []Setup {
	rng := sim.NewRNG(seed ^ 0x5e7095)
	out := make([]Setup, n)
	for i := range out {
		out[i] = Setup{
			EnvBytes: 512 + rng.Intn(3584),
			LinkSeed: rng.Uint64(),
		}
	}
	return out
}
