package workload

import (
	"errors"
	"math"
	"strings"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/trace"
)

func TestSuiteComposition(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("suite has %d workloads, want 22", len(all))
	}
	lat := LatencySensitive()
	if len(lat) != 9 {
		t.Fatalf("latency-sensitive subset has %d workloads, want 9", len(lat))
	}
	newCount := 0
	for _, d := range all {
		if d.NewInChopin {
			newCount++
		}
	}
	if newCount != 8 {
		t.Fatalf("suite has %d new workloads, want 8", newCount)
	}
}

func TestAllDescriptorsValid(t *testing.T) {
	for _, d := range All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.Arch.TargetIPC <= 0 {
			t.Errorf("%s: missing IPC", d.Name)
		}
		if d.Demo.AvgObjectBytes <= 0 {
			t.Errorf("%s: missing object demographics", d.Name)
		}
		if d.MinHeapMB <= 0 {
			t.Errorf("%s: missing published min heap", d.Name)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("lusearch")
	if err != nil || d.Name != "lusearch" {
		t.Fatalf("ByName(lusearch) = %v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestMinHeapRangeMatchesPaper(t *testing.T) {
	// Paper: default-size minimum heaps range from 5MB (avrora) to 681MB (h2).
	var minName, maxName string
	min, max := math.Inf(1), 0.0
	for _, d := range All() {
		if d.MinHeapMB < min {
			min, minName = d.MinHeapMB, d.Name
		}
		if d.MinHeapMB > max {
			max, maxName = d.MinHeapMB, d.Name
		}
	}
	if minName != "avrora" || min != 5 {
		t.Fatalf("smallest heap = %s (%vMB), want avrora (5MB)", minName, min)
	}
	if maxName != "h2" || max != 681 {
		t.Fatalf("largest heap = %s (%vMB), want h2 (681MB)", maxName, max)
	}
}

func TestHighestAllocationRateIsLusearch(t *testing.T) {
	for _, d := range All() {
		if d.Name != "lusearch" && d.ARA >= Lusearch.ARA {
			t.Fatalf("%s ARA %v >= lusearch %v", d.Name, d.ARA, Lusearch.ARA)
		}
	}
}

func smallRun(t *testing.T, d *Descriptor, cfg RunConfig) *Result {
	t.Helper()
	if cfg.Events == 0 {
		cfg.Events = 300
	}
	if cfg.HeapMB == 0 {
		cfg.HeapMB = 2 * d.MinHeapMB
	}
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatalf("%s: %v", d.Name, err)
	}
	return res
}

func TestRunProducesMeasurements(t *testing.T) {
	res := smallRun(t, Lusearch, RunConfig{Collector: gc.G1, Iterations: 2, Seed: 1})
	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %d, want 2", len(res.Iterations))
	}
	for i, it := range res.Iterations {
		if it.WallNS <= 0 || it.CPUNS <= 0 || it.Allocated <= 0 {
			t.Fatalf("iteration %d has empty measurements: %+v", i, it)
		}
		if it.CPUNS < it.WallNS*0.5 {
			t.Fatalf("iteration %d: task clock %v implausibly below wall %v with 11 workers",
				i, it.CPUNS, it.WallNS)
		}
	}
	if res.GCCPUNS <= 0 {
		t.Fatal("no GC CPU with a 2x heap and the suite's highest allocation rate")
	}
	if len(res.Events) == 0 {
		t.Fatal("latency-sensitive workload recorded no events")
	}
}

func TestRunDeterministicForSameSeed(t *testing.T) {
	a := smallRun(t, Cassandra, RunConfig{Collector: gc.G1, Iterations: 1, Seed: 7})
	b := smallRun(t, Cassandra, RunConfig{Collector: gc.G1, Iterations: 1, Seed: 7})
	if a.Last().WallNS != b.Last().WallNS || a.Last().CPUNS != b.Last().CPUNS {
		t.Fatalf("same seed diverged: %v vs %v", a.Last(), b.Last())
	}
	c := smallRun(t, Cassandra, RunConfig{Collector: gc.G1, Iterations: 1, Seed: 8})
	if a.Last().WallNS == c.Last().WallNS {
		t.Fatal("different seeds produced identical wall time")
	}
}

func TestOOMBelowMinimumHeap(t *testing.T) {
	_, err := Run(Lusearch, RunConfig{
		HeapMB: 2, Collector: gc.Serial, Iterations: 1, Events: 300, Seed: 1,
	})
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestZGCNeedsMoreHeapThanSerial(t *testing.T) {
	// At exactly the compressed-oops minimum heap, Serial completes but
	// ZGC's uncompressed footprint cannot (paper: ZGC is absent from 1x
	// points in every LBO figure).
	heapMB := Cassandra.MinHeapMB
	if _, err := Run(Cassandra, RunConfig{
		HeapMB: heapMB, Collector: gc.Serial, Iterations: 1, Events: 400, Seed: 1,
	}); err != nil {
		t.Fatalf("Serial at 1x: %v", err)
	}
	_, err := Run(Cassandra, RunConfig{
		HeapMB: heapMB, Collector: gc.ZGC, Iterations: 1, Events: 400, Seed: 1,
	})
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("ZGC at 1x should OOM, got %v", err)
	}
}

func TestDisableCompressedOopsRaisesFootprint(t *testing.T) {
	// A heap just above minimum works compressed but not uncompressed.
	heapMB := Fop.MinHeapMB * 1.10
	if _, err := Run(Fop, RunConfig{
		HeapMB: heapMB, Collector: gc.G1, Iterations: 1, Events: 300, Seed: 1,
	}); err != nil {
		t.Fatalf("compressed at 1.10x: %v", err)
	}
	_, err := Run(Fop, RunConfig{
		HeapMB: heapMB, Collector: gc.G1, Iterations: 1, Events: 300, Seed: 1,
		DisableCompressedOops: true,
	})
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("uncompressed at 1.10x should OOM, got %v", err)
	}
}

func TestWarmupImprovesIterations(t *testing.T) {
	res := smallRun(t, Jython, RunConfig{Collector: gc.G1, Iterations: 6, Seed: 3, Events: 400})
	first := res.Iterations[0].WallNS
	last := res.Last().WallNS
	if last >= first {
		t.Fatalf("no warmup: iteration 0 %v vs last %v", first, last)
	}
}

func TestTightHeapSlowsExecution(t *testing.T) {
	loose := smallRun(t, Biojava, RunConfig{
		Collector: gc.G1, Iterations: 2, Seed: 2, Events: 400,
		HeapMB: 6 * Biojava.MinHeapMB,
	})
	tight := smallRun(t, Biojava, RunConfig{
		Collector: gc.G1, Iterations: 2, Seed: 2, Events: 400,
		HeapMB: 1.05 * Biojava.MinHeapMB,
	})
	if tight.Last().WallNS <= loose.Last().WallNS {
		t.Fatalf("tight heap %v not slower than loose %v",
			tight.Last().WallNS, loose.Last().WallNS)
	}
}

func TestLeakyWorkloadGrowsHeap(t *testing.T) {
	res := smallRun(t, Zxing, RunConfig{
		Collector: gc.G1, Iterations: 4, Seed: 2, Events: 300,
		HeapMB: 4 * Zxing.MinHeapMB,
	})
	var lastLive float64
	for _, e := range res.Log.Events {
		lastLive = e.LiveAfter
	}
	if lastLive <= Zxing.LiveMB*MB {
		t.Fatalf("leaky workload live %v did not grow beyond base %v",
			lastLive, Zxing.LiveMB*MB)
	}
}

func TestBuildPhasePopulatesH2Database(t *testing.T) {
	res := smallRun(t, H2, RunConfig{Collector: gc.G1, Iterations: 1, Seed: 2, Events: 600})
	// The build phase must be excluded from latency events.
	want := 600 - int(0.30*600)
	if len(res.Events) != want {
		t.Fatalf("latency events = %d, want %d (build excluded)", len(res.Events), want)
	}
	// The heap must end up holding the database.
	if live := res.Log.Events[len(res.Log.Events)-1].LiveAfter; live < H2.LiveMB*MB*0.85 {
		t.Fatalf("live after run = %v, want >=85%% of %v", live, H2.LiveMB*MB)
	}
}

func TestEventsAreOrderedAndPositive(t *testing.T) {
	res := smallRun(t, Spring, RunConfig{Collector: gc.Parallel, Iterations: 1, Seed: 4})
	for i, e := range res.Events {
		if e.End < e.Start {
			t.Fatalf("event %d inverted: %+v", i, e)
		}
	}
}

func TestKernelTimeAccounted(t *testing.T) {
	res := smallRun(t, Kafka, RunConfig{Collector: gc.G1, Iterations: 1, Seed: 5})
	it := res.Last()
	frac := it.KernelNS / (it.CPUNS)
	// kafka's mutators spend 25% of their CPU in the kernel; GC CPU dilutes
	// the ratio but it must remain clearly positive.
	if frac <= 0.05 || frac > 0.30 {
		t.Fatalf("kernel fraction = %v, want ~0.1-0.25", frac)
	}
}

func TestServiceSizingMatchesPET(t *testing.T) {
	// An unconstrained run should take roughly PET seconds of wall time.
	res := smallRun(t, Jme, RunConfig{
		Collector: gc.G1, Iterations: 2, Seed: 6,
		HeapMB: 6 * Jme.MinHeapMB, Events: Jme.Events,
	})
	wallSec := res.Last().WallNS / 1e9
	if wallSec < Jme.PETSeconds*0.5 || wallSec > Jme.PETSeconds*2.5 {
		t.Fatalf("iteration wall %vs, want ~%vs", wallSec, Jme.PETSeconds)
	}
}

func TestGCLogConsistency(t *testing.T) {
	res := smallRun(t, H2o, RunConfig{Collector: gc.Serial, Iterations: 2, Seed: 9})
	if res.Log.Count(trace.GCYoung) == 0 {
		t.Fatal("no young collections for a high-turnover workload at 2x heap")
	}
	for _, e := range res.Log.Events {
		if e.End < e.Start {
			t.Fatalf("event time inverted: %+v", e)
		}
		if e.Reclaimed < 0 || e.UsedAfter < 0 {
			t.Fatalf("negative telemetry: %+v", e)
		}
	}
}

func TestScaledSizes(t *testing.T) {
	d := H2
	small := d.Scaled(SizeSmall)
	large := d.Scaled(SizeLarge)
	vlarge := d.Scaled(SizeVLarge)
	if d.Scaled(SizeDefault) != d {
		t.Fatal("default size should return the descriptor itself")
	}
	if small.LiveMB >= d.LiveMB || large.LiveMB <= d.LiveMB || vlarge.LiveMB <= large.LiveMB {
		t.Fatalf("live scaling broken: %v %v %v %v",
			small.LiveMB, d.LiveMB, large.LiveMB, vlarge.LiveMB)
	}
	// The paper: h2's vlarge minimum heap is ~20GB against a 681MB default.
	if got := vlarge.MinHeapMB; got < 15000 || got > 25000 {
		t.Fatalf("h2 vlarge min heap = %vMB, want ~20GB", got)
	}
	if small.ARA != d.ARA {
		t.Fatal("allocation rate is intrinsic and must not scale")
	}
	if err := vlarge.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSize(t *testing.T) {
	for _, s := range []Size{SizeDefault, SizeSmall, SizeLarge, SizeVLarge} {
		got, err := ParseSize(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseSize(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Fatal("unknown size should error")
	}
}

func TestScaledVLargeRuns(t *testing.T) {
	// A vlarge workload must actually run: 30x live set, heap to match.
	d := Fop.Scaled(SizeVLarge)
	res, err := Run(d, RunConfig{
		HeapMB: d.LiveMB * 2, Collector: gc.G1, Iterations: 1, Events: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Last().Allocated <= 0 {
		t.Fatal("no allocation recorded")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{Batch: "batch", Request: "request", Frame: "frame", Class(9): "class(9)"}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", c, got, s)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	base := *Fop
	cases := []func(*Descriptor){
		func(d *Descriptor) { d.Name = "" },
		func(d *Descriptor) { d.Threads = 0 },
		func(d *Descriptor) { d.Events = 0 },
		func(d *Descriptor) { d.PETSeconds = 0 },
		func(d *Descriptor) { d.ARA = -1 },
		func(d *Descriptor) { d.LiveMB = -1 },
		func(d *Descriptor) { d.BuildFrac = 1.5 },
		func(d *Descriptor) { d.KernelFrac = 2 },
	}
	for i, mutate := range cases {
		d := base
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid descriptor accepted", i)
		}
	}
}

func TestSizingHelpers(t *testing.T) {
	d := Fop
	// Default-events path (0 argument).
	if got, want := d.ServiceMedianNS(0), d.ServiceMedianNS(d.Events); got != want {
		t.Fatalf("ServiceMedianNS default = %v, want %v", got, want)
	}
	if got, want := d.BytesPerEvent(0), d.BytesPerEvent(d.Events); got != want {
		t.Fatalf("BytesPerEvent default = %v, want %v", got, want)
	}
	// Total allocation is events-invariant (rate is intrinsic).
	tot1 := d.BytesPerEvent(100) * 100
	tot2 := d.BytesPerEvent(1000) * 1000
	if math.Abs(tot1-tot2) > 1 {
		t.Fatalf("total allocation depends on event count: %v vs %v", tot1, tot2)
	}
}

func TestErrOutOfMemoryMessage(t *testing.T) {
	e := &ErrOutOfMemory{Workload: "fop", HeapMB: 7, Kind: gc.ZGC}
	msg := e.Error()
	for _, want := range []string{"fop", "ZGC", "7"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestMicroErrorMessage(t *testing.T) {
	_, err := MicroByName("zap")
	if err == nil || !strings.Contains(err.Error(), "zap") {
		t.Fatalf("micro error = %v", err)
	}
}

func TestOpenLoopMode(t *testing.T) {
	res, err := Run(Spring, RunConfig{
		HeapMB: 3 * Spring.MinHeapMB, Collector: gc.G1,
		Iterations: 2, Events: 600, Seed: 5, OpenLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 600 {
		t.Fatalf("events = %d, want 600", len(res.Events))
	}
	for i, e := range res.Events {
		if e.End < e.Start {
			t.Fatalf("event %d inverted: %+v", i, e)
		}
	}
	// Arrival spacing: starts are the scheduled arrivals, ~uniform.
	first, last := res.Events[0].Start, res.Events[len(res.Events)-1].Start
	span := float64(last - first)
	nominal := Spring.PETSeconds * 1e9
	if span < 0.5*nominal || span > 1.5*nominal {
		t.Fatalf("arrival span %v, want ~%v", span, nominal)
	}
}

func TestOpenLoopQueueingRaisesTail(t *testing.T) {
	// The whole point of open loop: when the system stalls (GC pause), the
	// queue backs up and later events pay for it from their arrival time.
	// Closed-loop simple latency hides that; open-loop latency must be at
	// least as heavy in the tail as closed-loop simple latency under the
	// same pausing collector at a tight heap.
	run := func(open bool) float64 {
		res, err := Run(Lusearch, RunConfig{
			HeapMB: 1.5 * Lusearch.MinHeapMB, Collector: gc.Serial,
			Iterations: 2, Events: 800, Seed: 6, OpenLoop: open,
		})
		if err != nil {
			t.Fatal(err)
		}
		var max float64
		for _, e := range res.Events {
			if d := float64(e.End - e.Start); d > max {
				max = d
			}
		}
		return max
	}
	openTail := run(true)
	closedTail := run(false)
	if openTail < closedTail*0.9 {
		t.Fatalf("open-loop tail %v should not be lighter than closed-loop %v",
			openTail, closedTail)
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	run := func() float64 {
		res, err := Run(Kafka, RunConfig{
			HeapMB: 2 * Kafka.MinHeapMB, Collector: gc.G1,
			Iterations: 1, Events: 300, Seed: 9, OpenLoop: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Last().WallNS
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("open loop not deterministic: %v vs %v", a, b)
	}
}

func TestMytkowiczBiasIsRepeatableAndBounded(t *testing.T) {
	a := Setup{EnvBytes: 1024, LinkSeed: 7}
	if a.Bias() != a.Bias() {
		t.Fatal("setup bias must be deterministic")
	}
	for i := 0; i < 200; i++ {
		b := Setup{EnvBytes: 512 + i*13, LinkSeed: uint64(i)}.Bias()
		if b < 0.96-1e-9 || b > 1.04+1e-9 {
			t.Fatalf("bias %v outside the modelled band", b)
		}
	}
}

func TestMytkowiczPitfallDemonstrable(t *testing.T) {
	// Two fixed setups, identical workload and seed: the measured times
	// differ by the hidden layout bias — perfectly repeatable, so it looks
	// like a real effect (the paper's Section 4.3 warning).
	run := func(setup *Setup) float64 {
		res, err := Run(Fop, RunConfig{
			HeapMB: 3 * Fop.MinHeapMB, Collector: gc.G1,
			Iterations: 2, Events: 300, Seed: 5, Setup: setup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Last().WallNS
	}
	// Search for two setups with clearly different biases.
	s1 := Setup{EnvBytes: 600, LinkSeed: 1}
	var s2 Setup
	for i := 0; i < 100; i++ {
		s2 = Setup{EnvBytes: 600 + i*17, LinkSeed: uint64(i)}
		if math.Abs(s2.Bias()-s1.Bias()) > 0.03 {
			break
		}
	}
	t1, t2 := run(&s1), run(&s2)
	if t1 == t2 {
		t.Fatal("distinct setups produced identical times; bias not applied")
	}
	ratio := t1 / t2
	wantRatio := s1.Bias() / s2.Bias()
	if math.Abs(ratio-wantRatio) > 0.02 {
		t.Fatalf("measured ratio %v, biases predict %v", ratio, wantRatio)
	}
	// The mitigation: randomized setups expose the bias as variance with a
	// mean near neutral.
	setups := RandomizedSetups(64, 9)
	var sum float64
	for _, s := range setups {
		sum += s.Bias()
	}
	if mean := sum / float64(len(setups)); math.Abs(mean-1) > 0.01 {
		t.Fatalf("randomized setups mean bias %v, want ~1", mean)
	}
}
