package workload

import (
	"fmt"

	"chopin/internal/cpuarch"
	"chopin/internal/gc"
	"chopin/internal/heap"
	"chopin/internal/jit"
	"chopin/internal/obs"
	"chopin/internal/obs/sample"
	"chopin/internal/sim"
	"chopin/internal/trace"
)

// RunConfig selects everything about one benchmark invocation: the JVM-side
// knobs the paper sweeps (collector, heap size, compiler configuration,
// compressed oops) and the experiment-side knobs (machine model, iteration
// and event counts, seed).
type RunConfig struct {
	// HeapMB is the -Xmx/-Xms heap limit in megabytes.
	HeapMB float64
	// Collector selects the garbage collector.
	Collector gc.Kind
	// CollectorParams, when non-nil, overrides the collector's preset —
	// the hook for ablation studies (pacer off, generational off, barrier
	// tax sweeps).
	CollectorParams *gc.Params
	// Machine is the processor model; the zero value means the reference
	// Zen4 machine.
	Machine cpuarch.Machine
	// Compiler is the JIT configuration (default tiered).
	Compiler jit.Config
	// Iterations is the number of benchmark iterations (-n); default 1.
	Iterations int
	// Events overrides the per-iteration event count (0 = workload default).
	// Scaling events down keeps the workload's rates intact while making
	// sweeps affordable.
	Events int
	// Seed makes the invocation deterministic; different seeds model
	// different invocations.
	Seed uint64
	// DisableCompressedOops inflates the footprint of compressed-pointer
	// collectors by ~1.3x (the GMU experiment). ZGC is unaffected: it never
	// compresses pointers.
	DisableCompressedOops bool
	// ThreadsOverride replaces the workload's worker count (0 = default);
	// used by parallel-efficiency experiments.
	ThreadsOverride int
	// RecordLatency forces per-event timing even for workloads that are not
	// latency-sensitive.
	RecordLatency bool
	// Setup injects a Mytkowicz-style experimental-environment bias (see
	// bias.go): the same setup biases every quantum by the same hidden
	// factor. nil means a neutral environment.
	Setup *Setup
	// OpenLoopHeadroom stretches the open-loop arrival interval by the given
	// factor (0 means 1.0 = arrivals at the workload's nominal ideal rate).
	// Real load tests drive below saturation; with GC overhead, nominal-rate
	// arrivals can exceed capacity and diverge, which is itself a valid
	// experiment but not the usual one.
	OpenLoopHeadroom float64
	// OpenLoop replaces the DaCapo-style closed-loop request discipline with
	// scheduled arrivals at the workload's nominal rate: requests queue when
	// workers are busy and latency runs from arrival to completion. This is
	// the ground-truth queueing behaviour that metered latency approximates
	// (see internal/workload/openloop.go). Build phases are not modelled in
	// open-loop mode; the live set is installed directly.
	OpenLoop bool
	// Recorder receives the run's telemetry (GC phases, pacer stalls,
	// scheduler quiescent points); nil disables recording. Excluded from JSON
	// so it never participates in job hashing or result persistence.
	Recorder obs.Recorder `json:"-"`
}

// Event is one timed request/frame: its processing start and end in virtual
// nanoseconds. The latency methodology consumes these.
type Event struct {
	Start, End sim.Time
}

// IterationResult is the measurement of a single iteration.
type IterationResult struct {
	WallNS    float64
	CPUNS     float64 // task-clock delta: all threads, including GC
	KernelNS  float64 // mutator kernel-mode share
	Allocated float64 // bytes allocated this iteration
	StartNS   sim.Time
	EndNS     sim.Time
}

// Result is the outcome of one invocation.
type Result struct {
	Workload   string
	Config     RunConfig
	Iterations []IterationResult
	// Events holds the last iteration's per-event times (build-phase events
	// excluded) when latency was recorded.
	Events []Event
	// Log is the full-run GC telemetry.
	Log *trace.Log
	// GCCPUNS is the total CPU consumed by GC threads over the run.
	GCCPUNS float64
	// MutatorCPUNS is the total CPU consumed by mutator threads.
	MutatorCPUNS float64
}

// Last returns the final (best-warmed) iteration measurement.
func (r *Result) Last() IterationResult {
	return r.Iterations[len(r.Iterations)-1]
}

// ErrOutOfMemory is returned when the collector cannot satisfy an allocation
// even after a full collection: the heap is below the workload's minimum.
type ErrOutOfMemory struct {
	Workload string
	HeapMB   float64
	Kind     gc.Kind
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("%s: OutOfMemory with %v at %.0fMB", e.Workload, e.Kind, e.HeapMB)
}

// runner drives one invocation.
type runner struct {
	d       *Descriptor
	cfg     RunConfig
	eng     *sim.Engine
	h       *heap.Heap
	col     *gc.Collector
	log     *trace.Log
	rng     *sim.RNG
	workers []*sim.Thread

	events      int
	medianNS    float64
	bytesPer    float64
	archFactor  float64
	buildEvents int

	iter      int
	nextEvent int
	oom       bool
	recording bool
	latencies []Event

	// onComplete, when set, observes every open-loop completion with the
	// arrival's caller-assigned ID (see runner.injectArrival) — the seam a
	// fleet replica hangs its bookkeeping on. The hook runs inside the
	// completion callback and must not re-enter the runner.
	onComplete func(id int32, start, end sim.Time)
	// onDispatch, when set, observes an open-loop arrival leaving the queue
	// for an idle worker — the queue-wait / service-time boundary the fleet
	// tracer needs for blame attribution. Same discipline as onComplete: runs
	// inside dispatch, must not re-enter the runner.
	onDispatch func(id int32, at sim.Time)

	// freeFrames recycles event continuation frames (see eventFrame): the
	// steady-state invocation path allocates nothing per event.
	freeFrames *eventFrame
	ol         openLoopState
}

// eventFrame is the pooled continuation state for one in-flight event: the
// explicit form of what used to be a chain of per-event closures threaded
// through Collector.Alloc and Thread.Exec callbacks. A frame is claimed when
// a worker starts an event, walks the event's sliced allocate-then-compute
// sequence via its two pre-bound callbacks, and returns to the runner's free
// list on completion — so a run needs at most one live frame per worker and
// the per-event hot path is allocation-free in steady state (same free-list
// pattern as the engine's timer nodes, internal/sim/timer.go).
type eventFrame struct {
	r          *runner
	w          *sim.Thread
	remaining  int // allocate-compute slices left in this event
	sliceBytes float64
	sliceCost  float64
	start      sim.Time // claim time (closed loop) or arrival time (open loop)
	idx        int      // event index (closed loop); worker index (open loop)
	olID       int32    // open loop: the arrival's caller-assigned identity
	open       bool     // which completion discipline applies
	next       *eventFrame

	// onAlloc and onExec are this frame's method values, bound once when the
	// frame is first created; reusing them through the pool is what removes
	// the per-slice closure allocations.
	onAlloc func(bool)
	onExec  func()
}

// newFrame claims a frame from the free list, minting one (with its two
// callback bindings) only when the pool is empty.
func (r *runner) newFrame() *eventFrame {
	f := r.freeFrames
	if f != nil {
		r.freeFrames = f.next
		f.next = nil
		return f
	}
	f = &eventFrame{r: r}
	f.onAlloc = f.allocDone
	f.onExec = f.execDone
	return f
}

// releaseFrame returns a completed (or abandoned) frame to the pool.
func (r *runner) releaseFrame(f *eventFrame) {
	f.w = nil
	f.next = r.freeFrames
	r.freeFrames = f
}

// begin samples the event's allocation volume and service cost (in the same
// RNG order as always), splits them into slices, and starts the walk.
func (f *eventFrame) begin() {
	r := f.r
	bytes := r.rng.Jitter(r.bytesPer, 0.10)
	slices := 1 + int(bytes/allocSliceBytes)
	if slices > 64 {
		slices = 64
	}
	cost := r.rng.LogNormal(r.medianNS, r.d.ServiceSigma) *
		r.archFactor *
		r.d.Jit.Factor(r.cfg.Compiler, r.iter)
	f.sliceBytes = bytes / float64(slices)
	f.sliceCost = cost / float64(slices)
	f.remaining = slices
	f.step()
}

// step advances the event by one allocate-then-compute slice, or completes
// it when none remain.
func (f *eventFrame) step() {
	if f.remaining == 0 {
		f.complete()
		return
	}
	f.remaining--
	f.r.col.Alloc(f.sliceBytes, f.onAlloc)
}

// allocDone is the frame's Collector.Alloc continuation: on success it burns
// the slice's service CPU (the barrier tax is sampled per slice so
// concurrent-cycle activity is reflected while it is actually running); on
// OutOfMemory it flags the run and parks.
func (f *eventFrame) allocDone(ok bool) {
	if !ok {
		f.r.oom = true
		f.r.releaseFrame(f)
		return
	}
	f.w.Exec(f.sliceCost*f.r.col.MutatorFactor(), f.onExec)
}

// execDone is the frame's Thread.Exec continuation.
func (f *eventFrame) execDone() { f.step() }

// complete finishes the event under the frame's discipline: closed-loop
// events record claim-to-completion latency and have the worker claim the
// next event; open-loop events record arrival-to-completion latency and
// re-dispatch the queue.
func (f *eventFrame) complete() {
	r := f.r
	if f.open {
		f.completeOpen()
		return
	}
	inBuild := r.iter == 0 && f.idx < r.buildEvents
	if inBuild {
		frac := float64(f.idx+1) / float64(r.buildEvents)
		r.h.SetTargetLive(r.targetLive(0) * frac)
	} else if r.recording {
		r.latencies = append(r.latencies, Event{Start: f.start, End: r.eng.Now()})
	}
	w := f.w
	r.releaseFrame(f)
	r.startNext(w)
}

// newRunner performs the whole invocation setup — config defaulting,
// engine/heap/collector construction, RNG seeding, worker registration,
// sampler attachment — shared verbatim by Run and by fleet replicas
// (NewReplica), so a replica's simulation state is bit-identical to a
// standalone invocation's at iteration start.
func newRunner(d *Descriptor, cfg RunConfig) (*runner, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if cfg.HeapMB <= 0 {
		return nil, fmt.Errorf("workload %s: heap %vMB invalid", d.Name, cfg.HeapMB)
	}
	if cfg.Machine.Name == "" {
		cfg.Machine = cpuarch.Zen4
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}

	p := cfg.Collector.Params(cfg.Machine.Cores)
	if cfg.CollectorParams != nil {
		p = *cfg.CollectorParams
	}
	expansion := p.Expansion
	if cfg.DisableCompressedOops && expansion < 1.30 {
		expansion = 1.30
	}

	eng := sim.NewEngine(cfg.Machine.HWThreads, cfg.Machine.Capacity(d.Arch.SMTContention))
	eng.SetEventLimit(500_000_000)
	h := heap.New(heap.Config{SizeBytes: cfg.HeapMB * MB, Expansion: expansion}, d.Demo)
	// Pre-sized so early GC cycles append without growth on a stepping hot
	// loop; long runs amortize further doublings as usual.
	log := &trace.Log{
		Events: make([]trace.GCEvent, 0, 64),
		Pauses: make([]trace.Pause, 0, 64),
	}
	col := gc.New(p, eng, h, log)
	if rec := obs.Or(cfg.Recorder); rec.Enabled() {
		eng.SetRecorder(rec)
		col.SetRecorder(rec)
	}

	threads := d.Threads
	if cfg.ThreadsOverride > 0 {
		threads = cfg.ThreadsOverride
	}
	events := d.Events
	if cfg.Events > 0 {
		events = cfg.Events
	}

	r := &runner{
		d: d, cfg: cfg, eng: eng, h: h, col: col, log: log,
		rng:        sim.NewRNG(cfg.Seed ^ hashName(d.Name)),
		events:     events,
		medianNS:   d.ServiceMedianNS(events),
		bytesPer:   d.BytesPerEvent(events),
		archFactor: d.Arch.TimeFactor(cfg.Machine),
	}
	if cfg.Setup != nil {
		// Layout bias multiplies all compute, indistinguishable from a
		// slightly different machine — which is the point.
		r.archFactor *= cfg.Setup.Bias()
	}
	if d.BuildFrac > 0 {
		r.buildEvents = int(float64(events) * d.BuildFrac)
	}
	if d.LatencySensitive || cfg.RecordLatency {
		// One latency buffer per run, reused across recorded iterations; the
		// final iteration's events become Result.Events.
		r.latencies = make([]Event, 0, events)
	}
	for i := 0; i < threads; i++ {
		w := eng.NewThread(fmt.Sprintf("%s-worker-%d", d.Name, i))
		w.SetKernelFraction(d.KernelFrac)
		col.RegisterMutator(w)
		r.workers = append(r.workers, w)
	}
	if rec := obs.Or(cfg.Recorder); rec.Enabled() {
		// Continuous sampling rides the same stream as the discrete events:
		// heap occupancy, declared live set, the mutator/GC CPU split and
		// pacer throttling, at a fixed virtual cadence with stride-doubling
		// decimation (see internal/obs/sample).
		sample.New(sample.Config{}, rec, sample.Gauges{
			HeapUsed:     h.Used,
			LiveEst:      h.TargetLive,
			GCCPUNS:      col.GCCPU,
			MutatorCPUNS: r.mutatorCPU,
			StallNS:      func() float64 { return log.StallNS },
		}).Attach(eng)
	}
	return r, nil
}

// Run executes the workload under cfg and returns its measurements.
func Run(d *Descriptor, cfg RunConfig) (*Result, error) {
	r, err := newRunner(d, cfg)
	if err != nil {
		return nil, err
	}
	cfg = r.cfg // normalized defaults (machine, iterations)

	res := &Result{Workload: d.Name, Config: cfg, Log: r.log}
	for iter := 0; iter < cfg.Iterations; iter++ {
		var it IterationResult
		var err error
		if cfg.OpenLoop {
			it, err = r.runOpenLoopIteration(iter)
		} else {
			it, err = r.runIteration(iter)
		}
		if err != nil {
			return nil, err
		}
		res.Iterations = append(res.Iterations, it)
	}
	res.Events = r.latencies
	res.GCCPUNS = r.col.GCCPU()
	res.MutatorCPUNS = r.mutatorCPU()
	return res, nil
}

// hashName derives a per-workload seed component (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// targetLive returns the declared live set for an iteration, including leak.
func (r *runner) targetLive(iter int) float64 {
	return r.d.LiveMB*MB + r.d.LeakMBPerIter*MB*float64(iter)
}

func (r *runner) runIteration(iter int) (IterationResult, error) {
	r.iter = iter
	r.nextEvent = 0
	r.recording = iter == r.cfg.Iterations-1 &&
		(r.d.LatencySensitive || r.cfg.RecordLatency)
	if r.recording {
		r.latencies = r.latencies[:0] // preallocated once in Run, reused
	}
	if iter == 0 && r.buildEvents > 0 {
		// The live set ramps up as the build phase progresses.
		r.h.SetTargetLive(0)
	} else {
		r.h.SetTargetLive(r.targetLive(iter))
	}

	start := r.eng.Now()
	cpu0 := r.eng.TaskClock() // O(1) running aggregate, cheap per iteration
	alloc0 := r.h.TotalAllocated()
	kern0 := r.kernelCPU()

	for _, w := range r.workers {
		r.startNext(w)
	}
	if err := r.eng.Run(); err != nil {
		return IterationResult{}, fmt.Errorf("%s: %w", r.d.Name, err)
	}
	if r.oom {
		return IterationResult{}, &ErrOutOfMemory{r.d.Name, r.cfg.HeapMB, r.cfg.Collector}
	}
	end := r.eng.Now()
	return IterationResult{
		WallNS:    float64(end - start),
		CPUNS:     r.eng.TaskClock() - cpu0,
		KernelNS:  r.kernelCPU() - kern0,
		Allocated: r.h.TotalAllocated() - alloc0,
		StartNS:   start,
		EndNS:     end,
	}, nil
}

func (r *runner) kernelCPU() float64 {
	var sum float64
	for _, w := range r.workers {
		sum += w.KernelCPU()
	}
	return sum
}

// mutatorCPU derives total worker CPU for the sampler's utilization gauge in
// O(1): the engine's task clock covers every thread, so subtracting the
// collector's share leaves the mutators'. The sampler reads this gauge on
// every tick, so an O(threads) sum here would scale sampling cost with the
// machine model.
func (r *runner) mutatorCPU() float64 {
	return r.eng.TaskClock() - r.col.GCCPU()
}

// allocSliceBytes bounds a single allocation request so that one event's
// allocation cannot dwarf a small heap; events allocating more are split
// into slices with the service CPU interleaved, which also lets GC activity
// land mid-event as it does in reality.
const allocSliceBytes = 512 << 10

// startNext has worker w claim and process the next event of the iteration:
// allocate (possibly stalling in GC), burn service CPU, record, repeat.
func (r *runner) startNext(w *sim.Thread) {
	if r.oom || r.nextEvent >= r.events {
		return // worker parks; the engine drains when all park
	}
	f := r.newFrame()
	f.w = w
	f.idx = r.nextEvent
	f.open = false
	f.start = r.eng.Now()
	r.nextEvent++
	f.begin()
}
