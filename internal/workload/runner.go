package workload

import (
	"fmt"

	"chopin/internal/cpuarch"
	"chopin/internal/gc"
	"chopin/internal/heap"
	"chopin/internal/jit"
	"chopin/internal/obs"
	"chopin/internal/obs/sample"
	"chopin/internal/sim"
	"chopin/internal/trace"
)

// RunConfig selects everything about one benchmark invocation: the JVM-side
// knobs the paper sweeps (collector, heap size, compiler configuration,
// compressed oops) and the experiment-side knobs (machine model, iteration
// and event counts, seed).
type RunConfig struct {
	// HeapMB is the -Xmx/-Xms heap limit in megabytes.
	HeapMB float64
	// Collector selects the garbage collector.
	Collector gc.Kind
	// CollectorParams, when non-nil, overrides the collector's preset —
	// the hook for ablation studies (pacer off, generational off, barrier
	// tax sweeps).
	CollectorParams *gc.Params
	// Machine is the processor model; the zero value means the reference
	// Zen4 machine.
	Machine cpuarch.Machine
	// Compiler is the JIT configuration (default tiered).
	Compiler jit.Config
	// Iterations is the number of benchmark iterations (-n); default 1.
	Iterations int
	// Events overrides the per-iteration event count (0 = workload default).
	// Scaling events down keeps the workload's rates intact while making
	// sweeps affordable.
	Events int
	// Seed makes the invocation deterministic; different seeds model
	// different invocations.
	Seed uint64
	// DisableCompressedOops inflates the footprint of compressed-pointer
	// collectors by ~1.3x (the GMU experiment). ZGC is unaffected: it never
	// compresses pointers.
	DisableCompressedOops bool
	// ThreadsOverride replaces the workload's worker count (0 = default);
	// used by parallel-efficiency experiments.
	ThreadsOverride int
	// RecordLatency forces per-event timing even for workloads that are not
	// latency-sensitive.
	RecordLatency bool
	// Setup injects a Mytkowicz-style experimental-environment bias (see
	// bias.go): the same setup biases every quantum by the same hidden
	// factor. nil means a neutral environment.
	Setup *Setup
	// OpenLoopHeadroom stretches the open-loop arrival interval by the given
	// factor (0 means 1.0 = arrivals at the workload's nominal ideal rate).
	// Real load tests drive below saturation; with GC overhead, nominal-rate
	// arrivals can exceed capacity and diverge, which is itself a valid
	// experiment but not the usual one.
	OpenLoopHeadroom float64
	// OpenLoop replaces the DaCapo-style closed-loop request discipline with
	// scheduled arrivals at the workload's nominal rate: requests queue when
	// workers are busy and latency runs from arrival to completion. This is
	// the ground-truth queueing behaviour that metered latency approximates
	// (see internal/workload/openloop.go). Build phases are not modelled in
	// open-loop mode; the live set is installed directly.
	OpenLoop bool
	// Recorder receives the run's telemetry (GC phases, pacer stalls,
	// scheduler quiescent points); nil disables recording. Excluded from JSON
	// so it never participates in job hashing or result persistence.
	Recorder obs.Recorder `json:"-"`
}

// Event is one timed request/frame: its processing start and end in virtual
// nanoseconds. The latency methodology consumes these.
type Event struct {
	Start, End sim.Time
}

// IterationResult is the measurement of a single iteration.
type IterationResult struct {
	WallNS    float64
	CPUNS     float64 // task-clock delta: all threads, including GC
	KernelNS  float64 // mutator kernel-mode share
	Allocated float64 // bytes allocated this iteration
	StartNS   sim.Time
	EndNS     sim.Time
}

// Result is the outcome of one invocation.
type Result struct {
	Workload   string
	Config     RunConfig
	Iterations []IterationResult
	// Events holds the last iteration's per-event times (build-phase events
	// excluded) when latency was recorded.
	Events []Event
	// Log is the full-run GC telemetry.
	Log *trace.Log
	// GCCPUNS is the total CPU consumed by GC threads over the run.
	GCCPUNS float64
	// MutatorCPUNS is the total CPU consumed by mutator threads.
	MutatorCPUNS float64
}

// Last returns the final (best-warmed) iteration measurement.
func (r *Result) Last() IterationResult {
	return r.Iterations[len(r.Iterations)-1]
}

// ErrOutOfMemory is returned when the collector cannot satisfy an allocation
// even after a full collection: the heap is below the workload's minimum.
type ErrOutOfMemory struct {
	Workload string
	HeapMB   float64
	Kind     gc.Kind
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("%s: OutOfMemory with %v at %.0fMB", e.Workload, e.Kind, e.HeapMB)
}

// runner drives one invocation.
type runner struct {
	d       *Descriptor
	cfg     RunConfig
	eng     *sim.Engine
	h       *heap.Heap
	col     *gc.Collector
	log     *trace.Log
	rng     *sim.RNG
	workers []*sim.Thread

	events      int
	medianNS    float64
	bytesPer    float64
	archFactor  float64
	buildEvents int

	iter      int
	nextEvent int
	oom       bool
	recording bool
	latencies []Event
}

// Run executes the workload under cfg and returns its measurements.
func Run(d *Descriptor, cfg RunConfig) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if cfg.HeapMB <= 0 {
		return nil, fmt.Errorf("workload %s: heap %vMB invalid", d.Name, cfg.HeapMB)
	}
	if cfg.Machine.Name == "" {
		cfg.Machine = cpuarch.Zen4
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}

	p := cfg.Collector.Params(cfg.Machine.Cores)
	if cfg.CollectorParams != nil {
		p = *cfg.CollectorParams
	}
	expansion := p.Expansion
	if cfg.DisableCompressedOops && expansion < 1.30 {
		expansion = 1.30
	}

	eng := sim.NewEngine(cfg.Machine.HWThreads, cfg.Machine.Capacity(d.Arch.SMTContention))
	eng.SetEventLimit(500_000_000)
	h := heap.New(heap.Config{SizeBytes: cfg.HeapMB * MB, Expansion: expansion}, d.Demo)
	log := &trace.Log{}
	col := gc.New(p, eng, h, log)
	if rec := obs.Or(cfg.Recorder); rec.Enabled() {
		eng.SetRecorder(rec)
		col.SetRecorder(rec)
	}

	threads := d.Threads
	if cfg.ThreadsOverride > 0 {
		threads = cfg.ThreadsOverride
	}
	events := d.Events
	if cfg.Events > 0 {
		events = cfg.Events
	}

	r := &runner{
		d: d, cfg: cfg, eng: eng, h: h, col: col, log: log,
		rng:        sim.NewRNG(cfg.Seed ^ hashName(d.Name)),
		events:     events,
		medianNS:   d.ServiceMedianNS(events),
		bytesPer:   d.BytesPerEvent(events),
		archFactor: d.Arch.TimeFactor(cfg.Machine),
	}
	if cfg.Setup != nil {
		// Layout bias multiplies all compute, indistinguishable from a
		// slightly different machine — which is the point.
		r.archFactor *= cfg.Setup.Bias()
	}
	if d.BuildFrac > 0 {
		r.buildEvents = int(float64(events) * d.BuildFrac)
	}
	for i := 0; i < threads; i++ {
		w := eng.NewThread(fmt.Sprintf("%s-worker-%d", d.Name, i))
		w.SetKernelFraction(d.KernelFrac)
		col.RegisterMutator(w)
		r.workers = append(r.workers, w)
	}
	if rec := obs.Or(cfg.Recorder); rec.Enabled() {
		// Continuous sampling rides the same stream as the discrete events:
		// heap occupancy, declared live set, the mutator/GC CPU split and
		// pacer throttling, at a fixed virtual cadence with stride-doubling
		// decimation (see internal/obs/sample).
		sample.New(sample.Config{}, rec, sample.Gauges{
			HeapUsed:     h.Used,
			LiveEst:      h.TargetLive,
			GCCPUNS:      col.GCCPU,
			MutatorCPUNS: func() float64 { return r.mutatorCPU() },
			StallNS:      func() float64 { return log.StallNS },
		}).Attach(eng)
	}

	res := &Result{Workload: d.Name, Config: cfg, Log: log}
	for iter := 0; iter < cfg.Iterations; iter++ {
		var it IterationResult
		var err error
		if cfg.OpenLoop {
			it, err = r.runOpenLoopIteration(iter)
		} else {
			it, err = r.runIteration(iter)
		}
		if err != nil {
			return nil, err
		}
		res.Iterations = append(res.Iterations, it)
	}
	res.Events = r.latencies
	res.GCCPUNS = col.GCCPU()
	for _, w := range r.workers {
		res.MutatorCPUNS += w.CPU()
	}
	return res, nil
}

// hashName derives a per-workload seed component (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// targetLive returns the declared live set for an iteration, including leak.
func (r *runner) targetLive(iter int) float64 {
	return r.d.LiveMB*MB + r.d.LeakMBPerIter*MB*float64(iter)
}

func (r *runner) runIteration(iter int) (IterationResult, error) {
	r.iter = iter
	r.nextEvent = 0
	r.recording = iter == r.cfg.Iterations-1 &&
		(r.d.LatencySensitive || r.cfg.RecordLatency)
	if r.recording {
		r.latencies = make([]Event, 0, r.events)
	}
	if iter == 0 && r.buildEvents > 0 {
		// The live set ramps up as the build phase progresses.
		r.h.SetTargetLive(0)
	} else {
		r.h.SetTargetLive(r.targetLive(iter))
	}

	start := r.eng.Now()
	cpu0 := r.eng.TaskClock() // O(1) running aggregate, cheap per iteration
	alloc0 := r.h.TotalAllocated()
	kern0 := r.kernelCPU()

	for _, w := range r.workers {
		r.startNext(w)
	}
	if err := r.eng.Run(); err != nil {
		return IterationResult{}, fmt.Errorf("%s: %w", r.d.Name, err)
	}
	if r.oom {
		return IterationResult{}, &ErrOutOfMemory{r.d.Name, r.cfg.HeapMB, r.cfg.Collector}
	}
	end := r.eng.Now()
	return IterationResult{
		WallNS:    float64(end - start),
		CPUNS:     r.eng.TaskClock() - cpu0,
		KernelNS:  r.kernelCPU() - kern0,
		Allocated: r.h.TotalAllocated() - alloc0,
		StartNS:   start,
		EndNS:     end,
	}, nil
}

func (r *runner) kernelCPU() float64 {
	var sum float64
	for _, w := range r.workers {
		sum += w.KernelCPU()
	}
	return sum
}

// mutatorCPU sums worker CPU for the sampler's utilization gauge.
func (r *runner) mutatorCPU() float64 {
	var sum float64
	for _, w := range r.workers {
		sum += w.CPU()
	}
	return sum
}

// allocSliceBytes bounds a single allocation request so that one event's
// allocation cannot dwarf a small heap; events allocating more are split
// into slices with the service CPU interleaved, which also lets GC activity
// land mid-event as it does in reality.
const allocSliceBytes = 512 << 10

// executeEvent runs one event's sliced allocate-then-compute sequence on
// worker w and calls done when the event completes (or flags OOM and stops).
// Both the closed-loop and open-loop disciplines are built on it.
func (r *runner) executeEvent(w *sim.Thread, done func()) {
	bytes := r.rng.Jitter(r.bytesPer, 0.10)
	slices := 1 + int(bytes/allocSliceBytes)
	if slices > 64 {
		slices = 64
	}
	cost := r.rng.LogNormal(r.medianNS, r.d.ServiceSigma) *
		r.archFactor *
		r.d.Jit.Factor(r.cfg.Compiler, r.iter)
	sliceBytes := bytes / float64(slices)
	sliceCost := cost / float64(slices)

	remaining := slices
	var step func()
	step = func() {
		if remaining == 0 {
			done()
			return
		}
		remaining--
		r.col.Alloc(sliceBytes, func(ok bool) {
			if !ok {
				r.oom = true
				return
			}
			// The barrier tax is sampled per slice so concurrent-cycle
			// activity is reflected while it is actually running.
			w.Exec(sliceCost*r.col.MutatorFactor(), step)
		})
	}
	step()
}

// startNext has worker w claim and process the next event of the iteration:
// allocate (possibly stalling in GC), burn service CPU, record, repeat.
func (r *runner) startNext(w *sim.Thread) {
	if r.oom || r.nextEvent >= r.events {
		return // worker parks; the engine drains when all park
	}
	idx := r.nextEvent
	r.nextEvent++
	start := r.eng.Now()
	r.executeEvent(w, func() {
		inBuild := r.iter == 0 && idx < r.buildEvents
		if inBuild {
			frac := float64(idx+1) / float64(r.buildEvents)
			r.h.SetTargetLive(r.targetLive(0) * frac)
		} else if r.recording {
			r.latencies = append(r.latencies, Event{Start: start, End: r.eng.Now()})
		}
		r.startNext(w)
	})
}
