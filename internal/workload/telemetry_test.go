package workload

import (
	"math"
	"sync"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/obs"
)

// sliceRecorder collects events in memory for assertions.
type sliceRecorder struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *sliceRecorder) Enabled() bool { return true }
func (r *sliceRecorder) Record(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// TestTelemetryReconstructsLogTotals is the wiring contract: summing the
// telemetry stream by kind must reproduce the trace.Log totals the
// methodologies report — gc-pause durations sum to TotalPauseNS, phase-end
// CPU to TotalGCCPUNS, pacer stalls to StallNS. Shenandoah at a tight heap
// exercises pacing, concurrent cycles and (usually) degenerations at once.
func TestTelemetryReconstructsLogTotals(t *testing.T) {
	d, err := ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	rec := &sliceRecorder{}
	res, err := Run(d, RunConfig{
		HeapMB:     d.LiveMB * 2.2,
		Collector:  gc.Shenandoah,
		Iterations: 2,
		Events:     400,
		Seed:       7,
		Recorder:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	var pauseSum, cpuSum, stallSum float64
	var phaseEnds, pauses, stalls, quiescents int
	for _, e := range rec.events {
		switch e.Kind {
		case obs.KindGCPause:
			pauseSum += e.DurNS
			pauses++
		case obs.KindGCPhaseEnd:
			cpuSum += e.CPUNS
			phaseEnds++
		case obs.KindPacerStall:
			stallSum += e.DurNS
			stalls++
		case obs.KindQuiescent:
			quiescents++
		}
	}

	if pauses == 0 || phaseEnds == 0 {
		t.Fatalf("no GC telemetry recorded (pauses=%d phases=%d)", pauses, phaseEnds)
	}
	if got, want := pauseSum, res.Log.TotalPauseNS(); !closeTo(got, want) {
		t.Errorf("gc-pause sum = %v, log TotalPauseNS = %v", got, want)
	}
	if got, want := cpuSum, res.Log.TotalGCCPUNS(); !closeTo(got, want) {
		t.Errorf("gc-phase-end CPU sum = %v, log TotalGCCPUNS = %v", got, want)
	}
	if got, want := stallSum, res.Log.StallNS; !closeTo(got, want) {
		t.Errorf("pacer-stall sum = %v, log StallNS = %v", got, want)
	}
	if len(res.Log.Pauses) != pauses {
		t.Errorf("gc-pause events = %d, log pauses = %d", pauses, len(res.Log.Pauses))
	}
	if len(res.Log.Events) != phaseEnds {
		t.Errorf("gc-phase-end events = %d, log events = %d", phaseEnds, len(res.Log.Events))
	}
	// One quiescent point per engine drain: the runner calls Run once per
	// iteration.
	if quiescents != 2 {
		t.Errorf("quiescent events = %d, want one per iteration (2)", quiescents)
	}
}

// TestTelemetryDisabledByDefault confirms a nil Recorder records nothing and
// the run still succeeds (the hot-path guard contract).
func TestTelemetryDisabledByDefault(t *testing.T) {
	d, err := ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, RunConfig{
		HeapMB: d.LiveMB * 3, Collector: gc.G1, Iterations: 1, Events: 200,
	}); err != nil {
		t.Fatal(err)
	}
}

// closeTo allows only float summation-order slack: the telemetry stream and
// the log accumulate the same values, so agreement must be near-exact.
func closeTo(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
