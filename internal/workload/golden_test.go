package workload

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/obs"
	"chopin/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// The golden determinism fixtures lock the invocation hot path's observable
// behaviour byte-for-byte: the full trace.Log (GC events, pause intervals,
// stall time), the complete telemetry stream (including sampler ticks), the
// per-iteration measurements and the recorded latency events, for every
// collector under both request disciplines, plus the OOM/degeneration paths.
// They were recorded before the pooled-continuation refactor of the runner
// and the collector's bump-allocation fast path, and any refactor of those
// layers must reproduce them exactly (run with -update only after an
// intentional behaviour change, never to paper over drift).
//
// Floats are formatted at 12 significant digits: enough to pin behaviour,
// while tolerating the last-ULP reassociation slack of computing the same
// aggregate in a different summation order (the same slack telemetry_test.go
// grants when reconciling stream sums against log totals).

// goldenCase is one fixture: a workload, a collector, a loop discipline, and
// a heap sizing chosen to exercise a particular regime.
type goldenCase struct {
	name       string
	workload   string
	collector  gc.Kind
	openLoop   bool
	heapFactor float64 // multiplies the workload's LiveMB
	wantOOM    bool
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	// The full collector x discipline matrix runs avrora (the suite's lowest
	// allocation rate) so each fixture stays a few hundred KB while still
	// collecting: at 2.2x live pressure the heap turns over continuously.
	for _, k := range gc.AllKinds {
		lower := strings.ToLower(k.String())
		cases = append(cases,
			goldenCase{name: lower + "-closed", workload: "avrora", collector: k, heapFactor: 2.2},
			goldenCase{name: lower + "-open", workload: "avrora", collector: k, openLoop: true, heapFactor: 2.2},
		)
	}
	// The stress pair: fop's high allocation-rate-to-live ratio under
	// Shenandoah at 2x exercises the pacer, concurrent cycles and (usually)
	// degenerations in a run that still completes.
	cases = append(cases,
		goldenCase{name: "stress-shenandoah-closed", workload: "fop", collector: gc.Shenandoah, heapFactor: 2.0},
		goldenCase{name: "stress-shenandoah-open", workload: "fop", collector: gc.Shenandoah, openLoop: true, heapFactor: 2.0},
	)
	// The failure paths: a heap below the live set must OOM after the
	// collector exhausts every option, under both disciplines.
	cases = append(cases,
		goldenCase{name: "oom-closed", workload: "avrora", collector: gc.Shenandoah, heapFactor: 0.5, wantOOM: true},
		goldenCase{name: "oom-open", workload: "avrora", collector: gc.Shenandoah, openLoop: true, heapFactor: 0.5, wantOOM: true},
	)
	return cases
}

// TestGoldenDeterminism runs each golden case and compares the serialized
// run against its committed fixture.
func TestGoldenDeterminism(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ByName(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			rec := &sliceRecorder{}
			cfg := RunConfig{
				HeapMB:        d.LiveMB * tc.heapFactor,
				Collector:     tc.collector,
				Iterations:    2,
				Events:        300,
				Seed:          11,
				RecordLatency: true,
				OpenLoop:      tc.openLoop,
				Recorder:      rec,
			}
			if tc.openLoop {
				// Below saturation, as a real load test would drive.
				cfg.OpenLoopHeadroom = 1.5
			}
			res, err := Run(d, cfg)
			if tc.wantOOM && err == nil {
				t.Fatalf("%s: expected OutOfMemory, run succeeded", tc.name)
			}
			if !tc.wantOOM && err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got := serializeRun(d.Name, cfg, res, err, rec.events)
			path := filepath.Join("testdata", "golden", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from its pre-refactor golden (run with -update only after an intentional behaviour change)\n%s",
					tc.name, diffHint(got, want))
			}
		})
	}
}

// TestGoldenRerunIdentical guards the serializer itself: two identical runs
// must serialize identically, or fixture mismatches would be unactionable.
func TestGoldenRerunIdentical(t *testing.T) {
	d, err := ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		rec := &sliceRecorder{}
		cfg := RunConfig{
			HeapMB: d.LiveMB * 2.2, Collector: gc.G1, Iterations: 2,
			Events: 300, Seed: 11, RecordLatency: true, Recorder: rec,
		}
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return serializeRun(d.Name, cfg, res, err, rec.events)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical runs serialized differently")
	}
}

// diffHint reports the first line where got and want diverge.
func diffHint(got, want []byte) string {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("first divergence at line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(g), len(w))
}

// f formats a float at 12 significant digits (see the package comment above
// for why not full precision).
func f(v float64) string { return fmt.Sprintf("%.12g", v) }

// fm formats the sampler's mutator-utilisation gauge. MutFrac is the one
// serialized quantity derived by subtracting two large, nearly-equal CPU
// aggregates over a short window (catastrophic cancellation), so a mere
// change in the aggregates' summation order moves it by up to ~1e-12
// relative — and flips the sign of an exact zero — far beyond the last-ULP
// slack the other fields need. Nine significant digits with an absolute
// floor at 1e-9 (pure subtraction residue) still pin the gauge several
// orders of magnitude tighter than anything consumers read off it.
func fm(v float64) string {
	if math.Abs(v) < 1e-9 {
		return "0"
	}
	return fmt.Sprintf("%.9g", v)
}

// serializeRun renders one invocation's complete observable output as
// deterministic text.
func serializeRun(workload string, cfg RunConfig, res *Result, runErr error, events []obs.Event) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "run workload=%s collector=%s openloop=%v heapMB=%s events=%d iters=%d seed=%d\n",
		workload, cfg.Collector, cfg.OpenLoop, f(cfg.HeapMB), cfg.Events, cfg.Iterations, cfg.Seed)
	if runErr != nil {
		fmt.Fprintf(&b, "err: %v\n", runErr)
	} else {
		fmt.Fprintf(&b, "err: <nil>\n")
	}
	if res != nil {
		for i, it := range res.Iterations {
			fmt.Fprintf(&b, "iter[%d]: wall=%s cpu=%s kernel=%s alloc=%s start=%d end=%d\n",
				i, f(it.WallNS), f(it.CPUNS), f(it.KernelNS), f(it.Allocated), it.StartNS, it.EndNS)
		}
		fmt.Fprintf(&b, "result: gccpu=%s mutcpu=%s\n", f(res.GCCPUNS), f(res.MutatorCPUNS))
		serializeLog(&b, res.Log)
		for i, e := range res.Events {
			fmt.Fprintf(&b, "latency[%d]: %d %d\n", i, e.Start, e.End)
		}
	}
	for i, e := range events {
		serializeTelemetry(&b, i, e)
	}
	return b.Bytes()
}

func serializeLog(b *bytes.Buffer, log *trace.Log) {
	fmt.Fprintf(b, "log: stall=%s pauses=%d events=%d\n", f(log.StallNS), len(log.Pauses), len(log.Events))
	for i, p := range log.Pauses {
		fmt.Fprintf(b, "pause[%d]: %d %d\n", i, p.Start, p.End)
	}
	for i, e := range log.Events {
		fmt.Fprintf(b, "gcevent[%d]: kind=%s start=%d end=%d pause=%s cpu=%s reclaimed=%s copied=%s usedafter=%s liveafter=%s\n",
			i, e.Kind, e.Start, e.End, f(e.PauseNS), f(e.CPUNS), f(e.Reclaimed), f(e.Copied), f(e.UsedAfter), f(e.LiveAfter))
	}
}

func serializeTelemetry(b *bytes.Buffer, i int, e obs.Event) {
	fmt.Fprintf(b, "telemetry[%d]: kind=%s t=%d", i, e.Kind, e.TNS)
	if e.Phase != "" {
		fmt.Fprintf(b, " phase=%s", e.Phase)
	}
	if e.DurNS != 0 {
		fmt.Fprintf(b, " dur=%s", f(e.DurNS))
	}
	if e.CPUNS != 0 {
		fmt.Fprintf(b, " cpu=%s", f(e.CPUNS))
	}
	if e.Value != 0 {
		fmt.Fprintf(b, " value=%s", f(e.Value))
	}
	if e.Aux != 0 {
		fmt.Fprintf(b, " aux=%s", f(e.Aux))
	}
	if e.Cycle != 0 {
		fmt.Fprintf(b, " cycle=%d", e.Cycle)
	}
	if e.Cause != 0 {
		fmt.Fprintf(b, " cause=%d", e.Cause)
	}
	if e.Kind == obs.KindSample {
		fmt.Fprintf(b, " heap=%s live=%s mut=%s gc=%s stallfrac=%s",
			f(e.HeapUsed), f(e.LiveEst), fm(e.MutFrac), f(e.GCFrac), f(e.StallFrac))
	}
	if e.Err != "" {
		fmt.Fprintf(b, " err=%s", e.Err)
	}
	fmt.Fprintf(b, "\n")
}
