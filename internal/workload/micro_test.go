package workload

import (
	"math"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/latency"
)

func TestMicrosOutsideTheSuite(t *testing.T) {
	if len(Micros()) != 4 {
		t.Fatalf("micro family has %d members, want 4", len(Micros()))
	}
	for _, m := range Micros() {
		if _, err := ByName(m.Name); err == nil {
			t.Fatalf("micro %s leaked into the 22-workload suite", m.Name)
		}
		got, err := MicroByName(m.Name)
		if err != nil || got != m {
			t.Fatalf("MicroByName(%s) = %v, %v", m.Name, got, err)
		}
	}
	if _, err := MicroByName("nope"); err == nil {
		t.Fatal("unknown micro should error")
	}
}

func TestMicroSteadyIsNearlyGCFree(t *testing.T) {
	// The zero-GC control: in a 4x heap with ~no allocation, GC overhead
	// must be negligible for every collector that fits.
	for _, kind := range []gc.Kind{gc.Serial, gc.Parallel, gc.G1} {
		res, err := Run(MicroSteady, RunConfig{
			HeapMB: 4 * MicroSteady.MinHeapMB, Collector: kind,
			Iterations: 2, Events: 500, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		last := res.Last()
		if frac := res.Log.TotalPauseNS() / (2 * last.WallNS); frac > 0.01 {
			t.Errorf("%v: pause fraction %.3f on the zero-GC control", kind, frac)
		}
	}
}

func TestMicroGCBenchOverheadMatchesClosedForm(t *testing.T) {
	// For a deterministic allocation-bound workload under Serial, young GC
	// CPU per allocated byte is approximately
	// survival(nursery) * (mark + copy) ns/B. Check the measured total GC
	// CPU against that closed form within a factor band.
	d := MicroGCBench
	heapMB := 4 * d.MinHeapMB
	res, err := Run(d, RunConfig{
		HeapMB: heapMB, Collector: gc.Serial, Iterations: 2, Events: 800, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var alloc float64
	for _, it := range res.Iterations {
		alloc += it.Allocated
	}
	p := gc.Serial.Params(16)
	// The nursery floats with free space; bound it by the configured policy.
	freeAfterLive := heapMB*MB - d.LiveMB*MB
	nursery := freeAfterLive * p.YoungFracOfFree
	surv := d.Demo.SurvivalAt(nursery)
	predicted := alloc * surv * (p.MarkNsPerByte + p.CopyNsPerByte)
	measured := res.Log.TotalGCCPUNS()
	ratio := measured / predicted
	if ratio < 0.5 || ratio > 3 {
		t.Fatalf("GC CPU %.3gns vs closed-form %.3gns (ratio %.2f) — cost model drifted",
			measured, predicted, ratio)
	}
}

func TestMicroAllocStormStressesEveryCollector(t *testing.T) {
	for _, kind := range gc.Kinds {
		res, err := Run(MicroAllocStorm, RunConfig{
			HeapMB: 4 * MicroAllocStorm.MinHeapMB, Collector: kind,
			Iterations: 1, Events: 600, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(res.Log.Events) == 0 {
			t.Errorf("%v: no collections under an allocation storm", kind)
		}
	}
}

func TestMicroPauseProbeTailReadsPauses(t *testing.T) {
	// The probe's service time is nearly constant, so the latency tail
	// (p99.9 - p50) under Serial must be explained by pauses: it should be
	// on the order of the maximum pause.
	res, err := Run(MicroPauseProbe, RunConfig{
		HeapMB: 2 * MicroPauseProbe.MinHeapMB, Collector: gc.Serial,
		Iterations: 2, Events: 3000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := make([]latency.Event, len(res.Events))
	for i, e := range res.Events {
		evs[i] = latency.Event{Start: e.Start, End: e.End}
	}
	dist := latency.NewDistribution(latency.Simple(evs))
	tail := dist.Percentile(99.9) - dist.Percentile(50)
	maxPause := res.Log.MaxPauseNS()
	if maxPause <= 0 {
		t.Skip("no pauses in probe run")
	}
	if tail < 0.3*maxPause || tail > 5*maxPause {
		t.Fatalf("latency tail %.3gms not explained by pauses (max %.3gms)",
			tail/1e6, maxPause/1e6)
	}
}

func TestMicroDeterminism(t *testing.T) {
	run := func() float64 {
		res, err := Run(MicroGCBench, RunConfig{
			HeapMB: 3 * MicroGCBench.MinHeapMB, Collector: gc.G1,
			Iterations: 1, Events: 400, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Last().WallNS
	}
	if a, b := run(), run(); a != b || math.IsNaN(a) {
		t.Fatalf("micro run not deterministic: %v vs %v", a, b)
	}
}
