package workload

import (
	"chopin/internal/cpuarch"
	"chopin/internal/heap"
	"chopin/internal/jit"
)

// The 22 DaCapo Chopin workload models, calibrated to the per-benchmark
// nominal statistics published in the paper's appendix (Tables 2-24). For
// each workload:
//
//   - Mechanistic parameters (Threads, PETSeconds, ARA, LiveMB, demographic
//     survival) drive the simulation; they were chosen so the *measured*
//     nominal statistics land near the published values. LiveMB is set to
//     0.85x the published minimum heap GMD, the empirical live-to-minheap
//     ratio of our G1 model.
//   - Trait parameters (Arch, Jit, Traits) are the published values
//     themselves, in the paper's units.
//   - Threads is the workload's *effective* parallelism, derived from the
//     published parallel efficiency PPE (~ 32 x PPE/100): the simulator
//     models a workload's imperfect scaling by how many workers make
//     progress, not by simulating its locks.
//
// tomcat, tradebeans, tradesoap, xalan, zxing and the tail of sunflow were
// truncated in our source text; their entries are estimated from Table 2
// (which covers all 22 benchmarks), the GMU row, and Section 6.4, and carry
// Estimated: true.

// llcSens maps a published PLS value (% slowdown with 1/16 LLC) to the
// miss-rate power-law exponent that approximately reproduces it.
func llcSens(pls float64) float64 {
	switch {
	case pls <= 0:
		return 0
	case pls <= 2:
		return 0.05
	case pls <= 6:
		return 0.15
	case pls <= 12:
		return 0.30
	case pls <= 25:
		return 0.55
	default:
		return 0.85
	}
}

// survivalFor maps a published memory-turnover GTO (total allocation over
// minimum heap) to a young-survival fraction: high-turnover workloads churn
// short-lived objects.
func survivalFor(gto float64) float64 {
	switch {
	case gto >= 400:
		return 0.04
	case gto >= 100:
		return 0.08
	case gto >= 30:
		return 0.15
	default:
		return 0.30
	}
}

// demo builds a demographic profile from published object-size quantiles and
// turnover.
func demo(gto, aoa, aos, aom, aol float64) heap.Demographics {
	return heap.Demographics{
		YoungSurvival:     survivalFor(gto),
		RefNursery:        8 * MB,
		SurvivalDecay:     0.5,
		CompactFraction:   0.5,
		AvgObjectBytes:    aoa,
		ObjectBytesP10:    aos,
		ObjectBytesMedian: aom,
		ObjectBytesP90:    aol,
	}
}

// Avrora simulates AVR microcontrollers with one thread per device; heavy
// locking makes it kernel-bound and front-end bound with almost no usable
// parallelism.
var Avrora = register(&Descriptor{
	Name:        "avrora",
	Description: "AVR microcontroller simulation framework; fine-grained lock-heavy concurrency",
	Class:       Batch,
	Threads:     1, Events: 1200, PETSeconds: 4, ARA: 56, ServiceSigma: 0.3,
	LiveMB: 4.2, MinHeapMB: 5,
	Demo: demo(33, 34, 24, 32, 32),
	Arch: cpuarch.Profile{
		TargetIPC: 1.13, DCMissPerKI: 18, DTLBMissPerMI: 131, LLCMissPerMI: 3398,
		MispredictFrac1000: 19, RestartFrac1M: 164, BadSpecFrac1000: 20,
		FrontEndBound: 0.51, BackEndBound: 0.26, BackEndMemory: 0.23,
		SMTContention: 0.007, LLCSensitivity: llcSens(2),
		ARMAffinity: 0.53, IntelAffinity: -0.19,
	},
	Jit:        jit.Model{WarmupIters: 2, InterpFactor: 0.07, C2Cost: 0.83, WorstFactor: 0.07},
	KernelFrac: 0.56,
	Traits: Traits{BAL: 31, BAS: 0, BEF: 5, BGF: 692, BPF: 206, BUB: 33, BUF: 4,
		PPE: 3, PFS: 18, PLS: 2, PMS: 6, GSS: 18, UIP: 113},
})

// Batik renders SVG files; very low allocation and the lowest memory
// turnover in the suite.
var Batik = register(&Descriptor{
	Name:        "batik",
	Description: "Apache Batik SVG rasterizer; low allocation, back-end bound",
	Class:       Batch,
	Threads:     1, Events: 1200, PETSeconds: 2, ARA: 506, ServiceSigma: 0.3,
	LiveMB: 149, MinHeapMB: 175,
	Demo: demo(3, 58, 24, 32, 72),
	Arch: cpuarch.Profile{
		TargetIPC: 2.28, DCMissPerKI: 4, DTLBMissPerMI: 50, LLCMissPerMI: 1872,
		MispredictFrac1000: 52, RestartFrac1M: 2388, BadSpecFrac1000: 55,
		FrontEndBound: 0.10, BackEndBound: 0.46, BackEndMemory: 0.37,
		SMTContention: 0.016, LLCSensitivity: llcSens(0),
		ARMAffinity: 0.80, IntelAffinity: 0.25,
	},
	Jit:        jit.Model{WarmupIters: 4, InterpFactor: 0.24, C2Cost: 3.06, WorstFactor: 0.24},
	KernelFrac: 0.0,
	Traits: Traits{BAL: 41, BAS: 0, BEF: 4, BGF: 126, BPF: 28, BUB: 32, BUF: 4,
		PPE: 4, PFS: 20, PLS: 0, PMS: 2, GSS: 40, UIP: 228},
})

// Biojava computes physico-chemical properties of protein sequences; the
// highest IPC in the suite and extreme heap-size sensitivity.
var Biojava = register(&Descriptor{
	Name:        "biojava",
	Description: "BioJava protein-sequence property analysis; compute-dense, heap-size sensitive",
	Class:       Batch,
	NewInChopin: true,
	Threads:     2, Events: 1200, PETSeconds: 5, ARA: 2041, ServiceSigma: 0.3,
	LiveMB: 79, MinHeapMB: 93,
	Demo: demo(102, 28, 24, 24, 24),
	Arch: cpuarch.Profile{
		TargetIPC: 4.76, DCMissPerKI: 2, DTLBMissPerMI: 30, LLCMissPerMI: 1427,
		MispredictFrac1000: 29, RestartFrac1M: 3487, BadSpecFrac1000: 33,
		FrontEndBound: 0.06, BackEndBound: 0.19, BackEndMemory: 0.15,
		SMTContention: 0.041, LLCSensitivity: llcSens(1),
		ARMAffinity: 1.21, IntelAffinity: 0.14,
	},
	Jit:        jit.Model{WarmupIters: 1, InterpFactor: 1.06, C2Cost: 2.24, WorstFactor: 1.06},
	KernelFrac: 0.01,
	Traits: Traits{BAL: 0, BAS: 0, BEF: 28, BGF: 171, BPF: 2, BUB: 18, BUF: 2,
		PPE: 5, PFS: 19, PLS: 1, PMS: 0, GSS: 7107, UIP: 476},
})

// Cassandra runs YCSB over the Cassandra NoSQL store; request-based,
// leaky, cache-hostile, and only moderately parallel — which is why
// concurrent collectors soak its idle cores (Figure 5).
var Cassandra = register(&Descriptor{
	Name:             "cassandra",
	Description:      "YCSB workload over Apache Cassandra; latency-sensitive NoSQL requests",
	Class:            Request,
	LatencySensitive: true,
	NewInChopin:      true,
	Threads:          4, Events: 4000, PETSeconds: 6, ARA: 890, ServiceSigma: 0.6,
	LiveMB: 148, MinHeapMB: 174, LeakMBPerIter: 7.6,
	Demo: demo(34, 40, 24, 32, 56),
	Arch: cpuarch.Profile{
		TargetIPC: 1.08, DCMissPerKI: 24, DTLBMissPerMI: 576, LLCMissPerMI: 5719,
		MispredictFrac1000: 37, RestartFrac1M: 619, BadSpecFrac1000: 38,
		FrontEndBound: 0.40, BackEndBound: 0.29, BackEndMemory: 0.26,
		ExternalBound: 0.66,
		SMTContention: 0.092, LLCSensitivity: llcSens(3),
		ARMAffinity: 1.68, IntelAffinity: -0.09,
	},
	Jit:        jit.Model{WarmupIters: 2, InterpFactor: 0.31, C2Cost: 0.60, WorstFactor: 0.31},
	KernelFrac: 0.11,
	Traits: Traits{BAL: 9, BAS: 1, BEF: 3, BGF: 314, BPF: 57, BUB: 114, BUF: 18,
		PPE: 13, PFS: 2, PLS: 3, PMS: 2, GSS: 14, UIP: 108},
})

// Eclipse runs the Eclipse IDE performance tests; the longest-running
// workload, dominated by hot code and compiler-sensitive.
var Eclipse = register(&Descriptor{
	Name:        "eclipse",
	Description: "Eclipse IDE performance tests; compiler- and LLC-sensitive",
	Class:       Batch,
	Threads:     2, Events: 1600, PETSeconds: 8, ARA: 1043, ServiceSigma: 0.3,
	LiveMB: 115, MinHeapMB: 135, LeakMBPerIter: 0.13,
	Demo: demo(52, 84, 24, 32, 88),
	Arch: cpuarch.Profile{
		TargetIPC: 1.78, DCMissPerKI: 11, DTLBMissPerMI: 283, LLCMissPerMI: 3108,
		MispredictFrac1000: 97, RestartFrac1M: 994, BadSpecFrac1000: 98,
		FrontEndBound: 0.30, BackEndBound: 0.29, BackEndMemory: 0.25,
		SMTContention: 0.030, LLCSensitivity: llcSens(23),
		ARMAffinity: 0.92, IntelAffinity: 0.36,
	},
	Jit:        jit.Model{WarmupIters: 3, InterpFactor: 2.24, C2Cost: 3.49, WorstFactor: 2.24},
	KernelFrac: 0.06,
	Traits: Traits{BAL: 0, BAS: 0, BEF: 29, BGF: 0, BPF: 0, BUB: 1, BUF: 0,
		PPE: 5, PFS: 18, PLS: 23, PMS: 5, GSS: 16, UIP: 178},
})

// Fop renders XSL-FO documents to PDF; tiny heap, slow warmup, the worst
// bad-speculation in the suite and the highest forced-C2 cost.
var Fop = register(&Descriptor{
	Name:        "fop",
	Description: "Apache FOP XSL-FO to PDF formatter; small heap, mispredict-heavy",
	Class:       Batch,
	Threads:     3, Events: 1200, PETSeconds: 1, ARA: 3340, ServiceSigma: 0.3,
	LiveMB: 11, MinHeapMB: 13,
	Demo: demo(75, 58, 24, 32, 56),
	Arch: cpuarch.Profile{
		TargetIPC: 1.81, DCMissPerKI: 14, DTLBMissPerMI: 174, LLCMissPerMI: 2138,
		MispredictFrac1000: 134, RestartFrac1M: 2653, BadSpecFrac1000: 137,
		FrontEndBound: 0.32, BackEndBound: 0.25, BackEndMemory: 0.21,
		ExternalBound: 0.145,
		SMTContention: 0.019, LLCSensitivity: llcSens(37),
		ARMAffinity: 0.76, IntelAffinity: 0.35,
	},
	Jit:        jit.Model{WarmupIters: 8, InterpFactor: 0.23, C2Cost: 10.83, WorstFactor: 0.23},
	KernelFrac: 0.02,
	Traits: Traits{BAL: 34, BAS: 6, BEF: 1, BGF: 527, BPF: 95, BUB: 177, BUF: 26,
		PPE: 9, PFS: 13, PLS: 37, PMS: 12, GSS: 755, UIP: 181},
})

// Graphchi factorizes the Netflix matrix with the GraphChi engine; the
// most compiler-sensitive workload, array-traversal heavy.
var Graphchi = register(&Descriptor{
	Name:        "graphchi",
	Description: "GraphChi ALS matrix factorization (Netflix dataset); array-bound",
	Class:       Batch,
	NewInChopin: true,
	Threads:     3, Events: 1200, PETSeconds: 3, ARA: 2737, ServiceSigma: 0.3,
	LiveMB: 149, MinHeapMB: 175,
	Demo: demo(38, 110, 16, 24, 160),
	Arch: cpuarch.Profile{
		TargetIPC: 2.34, DCMissPerKI: 3, DTLBMissPerMI: 45, LLCMissPerMI: 1746,
		MispredictFrac1000: 5, RestartFrac1M: 704, BadSpecFrac1000: 5,
		FrontEndBound: 0.04, BackEndBound: 0.38, BackEndMemory: 0.19,
		ExternalBound: 0.085,
		SMTContention: 0.192, LLCSensitivity: llcSens(5),
		ARMAffinity: 1.12, IntelAffinity: 0.35,
	},
	Jit:        jit.Model{WarmupIters: 2, InterpFactor: 3.23, C2Cost: 2.76, WorstFactor: 3.23},
	KernelFrac: 0.01,
	Traits: Traits{BAL: 2204, BAS: 1, BEF: 12, BGF: 9217, BPF: 43, BUB: 8, BUF: 1,
		PPE: 9, PFS: 14, PLS: 5, PMS: 10, GSS: 382, UIP: 234},
})

// H2 executes a TPC-C-like transactional workload over an in-memory H2
// database: it first populates a large database (the build phase) and then
// times 100k queries; the largest heap in the suite.
var H2 = register(&Descriptor{
	Name:             "h2",
	Description:      "TPC-C-like transactions over the in-memory H2 database; largest heap",
	Class:            Request,
	LatencySensitive: true,
	Threads:          8, Events: 5000, PETSeconds: 2, ARA: 11858, ServiceSigma: 0.8,
	LiveMB: 579, MinHeapMB: 681, BuildFrac: 0.30,
	Demo: demo(30, 41, 24, 32, 64),
	Arch: cpuarch.Profile{
		TargetIPC: 1.35, DCMissPerKI: 16, DTLBMissPerMI: 476, LLCMissPerMI: 4315,
		MispredictFrac1000: 29, RestartFrac1M: 920, BadSpecFrac1000: 30,
		FrontEndBound: 0.17, BackEndBound: 0.43, BackEndMemory: 0.40,
		ExternalBound: 0.367,
		SMTContention: 0.140, LLCSensitivity: llcSens(31),
		ARMAffinity: 1.27, IntelAffinity: 0.24,
	},
	Jit:        jit.Model{WarmupIters: 2, InterpFactor: 0.55, C2Cost: 0.87, WorstFactor: 0.55},
	KernelFrac: 0.0,
	Traits: Traits{BAL: 234, BAS: 28, BEF: 7, BGF: 3677, BPF: 601, BUB: 17, BUF: 2,
		PPE: 24, PFS: 5, PLS: 31, PMS: 40, GSS: 38, UIP: 135},
})

// H2o trains models on the citibike dataset with the H2O ML platform; the
// lowest IPC in the suite, thoroughly memory-bound, and leaky.
var H2o = register(&Descriptor{
	Name:        "h2o",
	Description: "H2O machine-learning platform on citibike data; memory-bound, lowest IPC",
	Class:       Batch,
	NewInChopin: true,
	Threads:     2, Events: 1200, PETSeconds: 3, ARA: 5740, ServiceSigma: 0.4,
	LiveMB: 61, MinHeapMB: 72, LeakMBPerIter: 1.15,
	Demo: demo(187, 142, 16, 24, 152),
	Arch: cpuarch.Profile{
		TargetIPC: 0.89, DCMissPerKI: 23, DTLBMissPerMI: 499, LLCMissPerMI: 8506,
		MispredictFrac1000: 29, RestartFrac1M: 1126, BadSpecFrac1000: 30,
		FrontEndBound: 0.18, BackEndBound: 0.53, BackEndMemory: 0.41,
		ExternalBound: 0.136,
		SMTContention: 0.102, LLCSensitivity: llcSens(11),
		ARMAffinity: 1.02, IntelAffinity: 0.32,
	},
	Jit:        jit.Model{WarmupIters: 4, InterpFactor: 0.57, C2Cost: 2.07, WorstFactor: 0.57},
	KernelFrac: 0.04,
	Traits: Traits{BAL: 231, BAS: 31, BEF: 6, BGF: 3002, BPF: 142, BUB: 87, BUF: 11,
		PPE: 4, PFS: 9, PLS: 11, PMS: 21, GSS: 249, UIP: 89},
})

// Jme renders frames with the jMonkeyEngine game engine; almost no GC
// pressure, insensitive to nearly everything (the GPU does the work), but
// every frame is an event whose latency users see.
var Jme = register(&Descriptor{
	Name:             "jme",
	Description:      "jMonkeyEngine 3-D engine rendering a frame sequence; latency-sensitive",
	Class:            Frame,
	LatencySensitive: true,
	NewInChopin:      true,
	Threads:          1, Events: 1000, PETSeconds: 7, ARA: 54, ServiceSigma: 0.12,
	LiveMB: 25, MinHeapMB: 29,
	Demo: demo(12, 42, 24, 24, 56),
	Arch: cpuarch.Profile{
		TargetIPC: 2.04, DCMissPerKI: 11, DTLBMissPerMI: 96, LLCMissPerMI: 1558,
		MispredictFrac1000: 89, RestartFrac1M: 1226, BadSpecFrac1000: 90,
		FrontEndBound: 0.32, BackEndBound: 0.27, BackEndMemory: 0.19,
		ExternalBound: 0.853,
		SMTContention: 0.001, LLCSensitivity: llcSens(0),
		ARMAffinity: 0.02, IntelAffinity: 0.01,
	},
	Jit:        jit.Model{WarmupIters: 1, InterpFactor: 0.01, C2Cost: 0.72, WorstFactor: 0.01},
	KernelFrac: 0.08,
	Traits: Traits{BAL: 0, BAS: 0, BEF: 4, BGF: 26, BPF: 10, BUB: 34, BUF: 4,
		PPE: 3, PFS: 0, PLS: 0, PMS: 0, GSS: 0, UIP: 204},
})

// Jython runs a Python benchmark on the Jython interpreter; the slowest to
// warm up, the most function calls, extremely compiler-sensitive.
var Jython = register(&Descriptor{
	Name:        "jython",
	Description: "Python interpreter in Java running pybench; interpreter-loop bound",
	Class:       Batch,
	Threads:     2, Events: 1200, PETSeconds: 3, ARA: 1462, ServiceSigma: 0.3,
	LiveMB: 21, MinHeapMB: 25,
	Demo: demo(139, 37, 16, 32, 48),
	Arch: cpuarch.Profile{
		TargetIPC: 2.68, DCMissPerKI: 9, DTLBMissPerMI: 78, LLCMissPerMI: 1160,
		MispredictFrac1000: 85, RestartFrac1M: 1105, BadSpecFrac1000: 86,
		FrontEndBound: 0.21, BackEndBound: 0.20, BackEndMemory: 0.17,
		SMTContention: 0.035, LLCSensitivity: llcSens(1),
		ARMAffinity: 1.02, IntelAffinity: 0.32,
	},
	Jit:        jit.Model{WarmupIters: 9, InterpFactor: 2.77, C2Cost: 2.11, WorstFactor: 2.77},
	KernelFrac: 0.01,
	Traits: Traits{BAL: 39, BAS: 13, BEF: 8, BGF: 256, BPF: 83, BUB: 149, BUF: 29,
		PPE: 5, PFS: 20, PLS: 1, PMS: 0, GSS: 2024, UIP: 268},
})

// Kafka pushes publish-subscribe messages through Apache Kafka; the most
// kernel-intensive workload, cache-hostile, GC-insensitive.
var Kafka = register(&Descriptor{
	Name:             "kafka",
	Description:      "Apache Kafka publish-subscribe messaging; kernel- and front-end bound",
	Class:            Request,
	LatencySensitive: true,
	NewInChopin:      true,
	Threads:          2, Events: 4000, PETSeconds: 6, ARA: 803, ServiceSigma: 0.5,
	LiveMB: 171, MinHeapMB: 201,
	Demo: demo(19, 54, 16, 32, 56),
	Arch: cpuarch.Profile{
		TargetIPC: 1.27, DCMissPerKI: 27, DTLBMissPerMI: 230, LLCMissPerMI: 6819,
		MispredictFrac1000: 30, RestartFrac1M: 547, BadSpecFrac1000: 31,
		FrontEndBound: 0.43, BackEndBound: 0.30, BackEndMemory: 0.26,
		ExternalBound: 0.718,
		SMTContention: 0.020, LLCSensitivity: llcSens(0),
		ARMAffinity: 0.19, IntelAffinity: 0.13,
	},
	Jit:        jit.Model{WarmupIters: 3, InterpFactor: 0.34, C2Cost: 2.55, WorstFactor: 0.34},
	KernelFrac: 0.25,
	Traits: Traits{BAL: 1, BAS: 0, BEF: 1, BGF: 183, BPF: 55, BUB: 159, BUF: 28,
		PPE: 3, PFS: 1, PLS: 0, PMS: 0, GSS: 0, UIP: 127},
})

// Luindex builds a Lucene search index over a document corpus; the largest
// objects in the suite and the strongest LLC sensitivity.
var Luindex = register(&Descriptor{
	Name:        "luindex",
	Description: "Apache Lucene index construction; large objects, LLC-sensitive",
	Class:       Batch,
	Threads:     1, Events: 1200, PETSeconds: 3, ARA: 841, ServiceSigma: 0.3,
	LiveMB: 25, MinHeapMB: 29,
	Demo: demo(76, 211, 24, 32, 88),
	Arch: cpuarch.Profile{
		TargetIPC: 2.63, DCMissPerKI: 6, DTLBMissPerMI: 66, LLCMissPerMI: 930,
		MispredictFrac1000: 109, RestartFrac1M: 3280, BadSpecFrac1000: 112,
		FrontEndBound: 0.12, BackEndBound: 0.36, BackEndMemory: 0.31,
		SMTContention: 0.004, LLCSensitivity: llcSens(38),
		ARMAffinity: 0.90, IntelAffinity: 0.25,
	},
	Jit:        jit.Model{WarmupIters: 2, InterpFactor: 0.61, C2Cost: 2.01, WorstFactor: 0.61},
	KernelFrac: 0.02,
	Traits: Traits{BAL: 33, BAS: 1, BEF: 3, BGF: 1179, BPF: 306, BUB: 54, BUF: 5,
		PPE: 3, PFS: 18, PLS: 38, PMS: 2, GSS: 56, UIP: 263},
})

// Lusearch issues search queries against a Lucene index from 32 client
// threads; the highest allocation rate and memory turnover in the suite —
// the workload that exposes Shenandoah's pacer (Figure 5c/5d).
var Lusearch = register(&Descriptor{
	Name:             "lusearch",
	Description:      "Apache Lucene search queries; highest allocation rate in the suite",
	Class:            Request,
	LatencySensitive: true,
	Threads:          11, Events: 4000, PETSeconds: 2, ARA: 23556, ServiceSigma: 0.6,
	LiveMB: 16, MinHeapMB: 19,
	Demo: demo(1211, 75, 24, 24, 88),
	Arch: cpuarch.Profile{
		TargetIPC: 1.49, DCMissPerKI: 12, DTLBMissPerMI: 154, LLCMissPerMI: 2830,
		MispredictFrac1000: 40, RestartFrac1M: 596, BadSpecFrac1000: 41,
		FrontEndBound: 0.23, BackEndBound: 0.29, BackEndMemory: 0.20,
		ExternalBound: 0.235,
		SMTContention: 0.198, LLCSensitivity: llcSens(19),
		ARMAffinity: 0.87, IntelAffinity: 0.56,
	},
	Jit:        jit.Model{WarmupIters: 8, InterpFactor: 2.02, C2Cost: 1.72, WorstFactor: 2.02},
	KernelFrac: 0.07,
	Traits: Traits{BAL: 252, BAS: 126, BEF: 5, BGF: 12289, BPF: 3863, BUB: 26, BUF: 3,
		PPE: 34, PFS: 11, PLS: 19, PMS: 9, GSS: 2159, UIP: 149},
})

// Pmd statically analyses a source-code corpus; back-end bound with high SMT
// contention, slow warmup and a mild leak.
var Pmd = register(&Descriptor{
	Name:        "pmd",
	Description: "PMD static source-code analyzer; back-end bound, memory-speed sensitive",
	Class:       Batch,
	Threads:     3, Events: 1200, PETSeconds: 1, ARA: 6721, ServiceSigma: 0.4,
	LiveMB: 162, MinHeapMB: 191, LeakMBPerIter: 0.9,
	Demo: demo(32, 32, 16, 24, 48),
	Arch: cpuarch.Profile{
		TargetIPC: 1.09, DCMissPerKI: 16, DTLBMissPerMI: 258, LLCMissPerMI: 4478,
		MispredictFrac1000: 38, RestartFrac1M: 1295, BadSpecFrac1000: 39,
		FrontEndBound: 0.21, BackEndBound: 0.40, BackEndMemory: 0.35,
		ExternalBound: 0.1,
		SMTContention: 0.155, LLCSensitivity: llcSens(31),
		ARMAffinity: 1.12, IntelAffinity: 0.47,
	},
	Jit:        jit.Model{WarmupIters: 7, InterpFactor: 0.74, C2Cost: 1.79, WorstFactor: 0.74},
	KernelFrac: 0.01,
	Traits: Traits{BAL: 82, BAS: 1, BEF: 4, BGF: 1719, BPF: 583, BUB: 95, BUF: 15,
		PPE: 10, PFS: 11, PLS: 31, PMS: 19, GSS: 467, UIP: 109},
})

// Spring serves the petclinic microservice workload on Spring Boot with a
// deterministic request stream; high turnover and good parallelism.
var Spring = register(&Descriptor{
	Name:             "spring",
	Description:      "Spring Boot petclinic microservices; latency-sensitive requests",
	Class:            Request,
	LatencySensitive: true,
	NewInChopin:      true,
	Threads:          12, Events: 4000, PETSeconds: 2, ARA: 10849, ServiceSigma: 0.6,
	LiveMB: 47, MinHeapMB: 55,
	Demo: demo(283, 70, 24, 32, 200),
	Arch: cpuarch.Profile{
		TargetIPC: 1.22, DCMissPerKI: 13, DTLBMissPerMI: 392, LLCMissPerMI: 4264,
		MispredictFrac1000: 60, RestartFrac1M: 1475, BadSpecFrac1000: 61,
		FrontEndBound: 0.32, BackEndBound: 0.32, BackEndMemory: 0.28,
		ExternalBound: 0.307,
		SMTContention: 0.100, LLCSensitivity: llcSens(6),
		ARMAffinity: 0.87, IntelAffinity: 0.30,
	},
	Jit:        jit.Model{WarmupIters: 2, InterpFactor: 1.10, C2Cost: 1.62, WorstFactor: 1.10},
	KernelFrac: 0.07,
	Traits: Traits{BAL: 11, BAS: 2, BEF: 2, BGF: 395, BPF: 94, BUB: 170, BUF: 26,
		PPE: 36, PFS: 8, PLS: 6, PMS: 20, GSS: 397, UIP: 122},
})

// Sunflow ray-traces images with near-perfect parallelism, a very high
// allocation rate and the highest aaload/getfield rates in the suite.
var Sunflow = register(&Descriptor{
	Name:        "sunflow",
	Description: "Sunflow photorealistic ray tracer; embarrassingly parallel, allocation-heavy",
	Class:       Batch,
	Estimated:   true, // tail of the published table truncated in our source
	Threads:     24, Events: 2400, PETSeconds: 3, ARA: 10518, ServiceSigma: 0.3,
	LiveMB: 25, MinHeapMB: 29,
	Demo: demo(711, 40, 24, 48, 48),
	Arch: cpuarch.Profile{
		TargetIPC: 1.70, DCMissPerKI: 8, DTLBMissPerMI: 120, LLCMissPerMI: 1900,
		MispredictFrac1000: 21, RestartFrac1M: 2380, BadSpecFrac1000: 24,
		FrontEndBound: 0.05, BackEndBound: 0.45, BackEndMemory: 0.25,
		SMTContention: 0.280, LLCSensitivity: llcSens(0),
		ARMAffinity: 0.98, IntelAffinity: 0.19,
	},
	Jit:        jit.Model{WarmupIters: 6, InterpFactor: 0.90, C2Cost: 1.70, WorstFactor: 0.90},
	KernelFrac: 0.01,
	Traits: Traits{BAL: 2204, BAS: 2, BEF: 3, BGF: 32087, BPF: 3200, BUB: 20, BUF: 1,
		PPE: 87, PFS: 16, PLS: 0, PMS: 5, GSS: 6329, UIP: 170},
})

// Tomcat serves servlet requests on Apache Tomcat; network-heavy (second
// highest kernel share) and the most front-end-bound request workload.
var Tomcat = register(&Descriptor{
	Name:             "tomcat",
	Description:      "Apache Tomcat servlet container request workload",
	Class:            Request,
	LatencySensitive: true,
	Estimated:        true,
	Threads:          5, Events: 4000, PETSeconds: 4, ARA: 1500, ServiceSigma: 0.6,
	LiveMB: 15, MinHeapMB: 18,
	Demo: demo(100, 48, 24, 32, 56),
	Arch: cpuarch.Profile{
		TargetIPC: 1.10, DCMissPerKI: 20, DTLBMissPerMI: 300, LLCMissPerMI: 5000,
		MispredictFrac1000: 44, RestartFrac1M: 584, BadSpecFrac1000: 45,
		FrontEndBound: 0.45, BackEndBound: 0.28, BackEndMemory: 0.24,
		ExternalBound: 0.674,
		SMTContention: 0.050, LLCSensitivity: llcSens(2),
		ARMAffinity: 0.14, IntelAffinity: 0.04,
	},
	Jit:        jit.Model{WarmupIters: 2, InterpFactor: 0.40, C2Cost: 1.00, WorstFactor: 0.40},
	KernelFrac: 0.19,
	Traits: Traits{BAL: 12, BAS: 2, BEF: 2, BGF: 350, BPF: 80, BUB: 120, BUF: 20,
		PPE: 15, PFS: 2, PLS: 2, PMS: 2, GSS: 50, UIP: 110},
})

// Tradebeans runs the DayTrader EJB trading application in-process; leaky
// and ARM-hostile.
var Tradebeans = register(&Descriptor{
	Name:             "tradebeans",
	Description:      "DayTrader stock-trading application via EJB; leaky request workload",
	Class:            Request,
	LatencySensitive: true,
	Estimated:        true,
	Threads:          3, Events: 3000, PETSeconds: 1, ARA: 2500, ServiceSigma: 0.6,
	LiveMB: 93, MinHeapMB: 109, LeakMBPerIter: 2.7,
	Demo: demo(50, 50, 24, 32, 64),
	Arch: cpuarch.Profile{
		TargetIPC: 1.30, DCMissPerKI: 12, DTLBMissPerMI: 250, LLCMissPerMI: 3500,
		MispredictFrac1000: 38, RestartFrac1M: 1187, BadSpecFrac1000: 39,
		FrontEndBound: 0.38, BackEndBound: 0.30, BackEndMemory: 0.26,
		SMTContention: 0.080, LLCSensitivity: llcSens(8),
		ARMAffinity: 1.44, IntelAffinity: 0.42,
	},
	Jit:        jit.Model{WarmupIters: 6, InterpFactor: 1.00, C2Cost: 2.00, WorstFactor: 1.00},
	KernelFrac: 0.02,
	Traits: Traits{BAL: 20, BAS: 3, BEF: 3, BGF: 500, BPF: 120, BUB: 130, BUF: 22,
		PPE: 8, PFS: 17, PLS: 8, PMS: 5, GSS: 100, UIP: 130},
})

// Tradesoap is DayTrader again but through its SOAP web-services interface,
// adding serialization weight to every request.
var Tradesoap = register(&Descriptor{
	Name:             "tradesoap",
	Description:      "DayTrader stock-trading application via SOAP web services",
	Class:            Request,
	LatencySensitive: true,
	Estimated:        true,
	Threads:          3, Events: 3000, PETSeconds: 1, ARA: 3000, ServiceSigma: 0.6,
	LiveMB: 75, MinHeapMB: 88, LeakMBPerIter: 0.5,
	Demo: demo(60, 55, 24, 32, 64),
	Arch: cpuarch.Profile{
		TargetIPC: 1.40, DCMissPerKI: 11, DTLBMissPerMI: 230, LLCMissPerMI: 3200,
		MispredictFrac1000: 73, RestartFrac1M: 1087, BadSpecFrac1000: 74,
		FrontEndBound: 0.35, BackEndBound: 0.28, BackEndMemory: 0.24,
		SMTContention: 0.070, LLCSensitivity: llcSens(7),
		ARMAffinity: 1.47, IntelAffinity: 0.34,
	},
	Jit:        jit.Model{WarmupIters: 5, InterpFactor: 1.20, C2Cost: 2.20, WorstFactor: 1.20},
	KernelFrac: 0.02,
	Traits: Traits{BAL: 22, BAS: 3, BEF: 3, BGF: 520, BPF: 130, BUB: 140, BUF: 24,
		PPE: 8, PFS: 16, PLS: 7, PMS: 4, GSS: 120, UIP: 140},
})

// Xalan transforms XML documents to HTML; poor locality (very high cache and
// DTLB miss rates) gives it one of the lowest IPCs (Section 6.4).
var Xalan = register(&Descriptor{
	Name:        "xalan",
	Description: "Apache Xalan XSLT processor; locality-hostile XML transformation",
	Class:       Batch,
	Estimated:   true,
	Threads:     8, Events: 1600, PETSeconds: 1, ARA: 8000, ServiceSigma: 0.4,
	LiveMB: 11, MinHeapMB: 13, LeakMBPerIter: 0.1,
	Demo: demo(400, 48, 24, 32, 56),
	Arch: cpuarch.Profile{
		TargetIPC: 0.94, DCMissPerKI: 22, DTLBMissPerMI: 450, LLCMissPerMI: 6000,
		MispredictFrac1000: 39, RestartFrac1M: 785, BadSpecFrac1000: 39,
		FrontEndBound: 0.36, BackEndBound: 0.33, BackEndMemory: 0.29,
		ExternalBound: 0.105,
		SMTContention: 0.100, LLCSensitivity: llcSens(25),
		ARMAffinity: 1.01, IntelAffinity: 0.13,
	},
	Jit:        jit.Model{WarmupIters: 1, InterpFactor: 0.50, C2Cost: 0.80, WorstFactor: 0.50},
	KernelFrac: 0.14,
	Traits: Traits{BAL: 60, BAS: 5, BEF: 4, BGF: 900, BPF: 200, BUB: 60, BUF: 8,
		PPE: 25, PFS: 12, PLS: 25, PMS: 10, GSS: 500, UIP: 94},
})

// Zxing decodes barcode images; the largest iteration-to-iteration memory
// leak in the suite (GLK 120%).
var Zxing = register(&Descriptor{
	Name:        "zxing",
	Description: "ZXing barcode image decoder; largest per-iteration memory leak",
	Class:       Batch,
	NewInChopin: true,
	Estimated:   true,
	Threads:     6, Events: 1200, PETSeconds: 1, ARA: 3000, ServiceSigma: 0.4,
	LiveMB: 83, MinHeapMB: 98, LeakMBPerIter: 11,
	Demo: demo(40, 48, 24, 32, 56),
	Arch: cpuarch.Profile{
		TargetIPC: 1.50, DCMissPerKI: 10, DTLBMissPerMI: 200, LLCMissPerMI: 2500,
		MispredictFrac1000: 52, RestartFrac1M: 374, BadSpecFrac1000: 52,
		FrontEndBound: 0.18, BackEndBound: 0.30, BackEndMemory: 0.24,
		ExternalBound: 0.79,
		SMTContention: 0.060, LLCSensitivity: llcSens(5),
		ARMAffinity: 0.77, IntelAffinity: 0.42,
	},
	Jit:        jit.Model{WarmupIters: 7, InterpFactor: 1.00, C2Cost: 1.50, WorstFactor: 1.00},
	KernelFrac: 0.05,
	Traits: Traits{BAL: 40, BAS: 4, BEF: 3, BGF: 600, BPF: 150, BUB: 80, BUF: 12,
		PPE: 20, PFS: 0, PLS: 5, PMS: 5, GSS: 80, UIP: 150},
})
