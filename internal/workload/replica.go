package workload

import (
	"chopin/internal/sim"
	"chopin/internal/trace"
)

// Replica is one serving instance in a fleet (internal/fleet): a complete
// invocation — its own engine, heap, collector, JIT warmup state and worker
// pool — run in open-loop discipline but fed by an external driver instead
// of its own arrival schedule. Construction reuses the exact setup path of
// a standalone invocation (newRunner), so a replica's simulation is
// bit-identical to workload.Run given the same config and seed; the only
// difference is who arms the arrival timers.
//
// A replica is driven in three moves: InjectAt arms an arrival at an
// absolute virtual time (which must be at or after the replica's clock —
// the sim.Cluster stepping discipline guarantees this for a driver that
// injects before stepping past the arrival time); the cluster steps the
// replica's engine; DrainCompletions hands back the requests that finished
// during those steps. All methods are single-goroutine, like the engine.
type Replica struct {
	r   *runner
	idx int

	outstanding int
	served      int64

	// pending arrival IDs, FIFO: injections are armed in non-decreasing time
	// order and same-instant timers fire in creation order, so the shared
	// timer callback can pop IDs in order instead of closing over each one.
	pendIDs  []int32
	pendHead int
	injectFn func() // bound once to arrive

	comps []Completion
}

// Completion is one finished request: its fleet-assigned ID and its
// arrival-to-completion interval in virtual nanoseconds.
type Completion struct {
	ID         int32
	Start, End sim.Time
}

// NewReplica builds replica idx of a fleet from the same descriptor and
// config a standalone invocation would take. cfg.Seed should already carry
// any per-replica offset; cfg.Iterations bounds JIT warmup (the live set and
// JIT factor advance one iteration per Events completions, capped at
// Iterations-1). Latency recording is always on — the replica's recorded
// events are the fleet's measurement.
func NewReplica(d *Descriptor, cfg RunConfig, idx int) (*Replica, error) {
	cfg.OpenLoop = true
	r, err := newRunner(d, cfg)
	if err != nil {
		return nil, err
	}
	rp := &Replica{r: r, idx: idx,
		// Pre-sized so a replica's first injections and completions never
		// allocate on the fleet driving loop.
		pendIDs: make([]int32, 0, 8),
		comps:   make([]Completion, 0, 8),
	}
	rp.injectFn = rp.arrive
	r.onComplete = rp.completed
	r.recording = true
	if r.latencies == nil {
		r.latencies = make([]Event, 0, r.events)
	}
	r.iter = 0
	r.h.SetTargetLive(r.targetLive(0))
	r.ol.busy = make([]bool, len(r.workers))
	r.ol.queue = make([]olItem, 0, 8)
	// Pre-mint one event frame per worker (each carries two bound method
	// values) so a replica's first requests never allocate frames on the
	// fleet driving loop; a standalone run warms the same pool within its
	// first few events instead.
	minted := make([]*eventFrame, len(r.workers))
	for i := range minted {
		minted[i] = r.newFrame()
	}
	for _, f := range minted {
		r.releaseFrame(f)
	}
	return rp, nil
}

// Index returns the replica's position in its fleet.
func (rp *Replica) Index() int { return rp.idx }

// SetDispatchHook installs fn to observe each injected request leaving the
// replica's queue for an idle worker, at the dispatch instant — the boundary
// between queue wait and service. A nil hook (the default) costs nothing.
// The hook runs inside the dispatch loop and must not re-enter the replica.
func (rp *Replica) SetDispatchHook(fn func(id int32, at sim.Time)) {
	rp.r.onDispatch = fn
}

// Engine returns the replica's simulation engine, for cluster stepping and
// clock reads.
func (rp *Replica) Engine() *sim.Engine { return rp.r.eng }

// InjectAt arms the arrival of request id at absolute virtual time t. The
// request queues behind the replica's workers on arrival and completes
// through DrainCompletions. Injections must be made in non-decreasing t
// order, before the engine steps past t.
func (rp *Replica) InjectAt(t float64, id int32) {
	rp.pendIDs = append(rp.pendIDs, id)
	rp.outstanding++
	rp.r.eng.At(t, rp.injectFn)
}

// arrive is the shared injection timer callback: the oldest pending ID
// arrives at the replica's current virtual time.
func (rp *Replica) arrive() {
	id := rp.pendIDs[rp.pendHead]
	rp.pendHead++
	if rp.pendHead == len(rp.pendIDs) {
		rp.pendIDs = rp.pendIDs[:0]
		rp.pendHead = 0
	}
	rp.r.injectArrival(id)
}

// completed is the runner's open-loop completion hook: bookkeeping, JIT/live
// warmup advance, and the driver-facing completion buffer.
func (rp *Replica) completed(id int32, start, end sim.Time) {
	rp.outstanding--
	rp.served++
	if rp.served%int64(rp.r.events) == 0 && rp.r.iter < rp.r.cfg.Iterations-1 {
		// One warmup "iteration" per nominal event count: the JIT factor
		// improves and the live set (including any leak) advances, exactly as
		// the iteration loop of a standalone invocation would.
		rp.r.iter++
		rp.r.h.SetTargetLive(rp.r.targetLive(rp.r.iter))
	}
	rp.comps = append(rp.comps, Completion{ID: id, Start: start, End: end})
}

// DrainCompletions returns the requests completed since the previous drain.
// The returned slice is reused; consume it before the next engine step.
func (rp *Replica) DrainCompletions() []Completion {
	out := rp.comps
	rp.comps = rp.comps[:0]
	return out
}

// Outstanding returns the number of requests injected but not yet completed
// — queued or in service — the load-balancing signal.
func (rp *Replica) Outstanding() int { return rp.outstanding }

// Paused reports whether the replica's collector is currently inside a
// stop-the-world pause — the GC-aware balancer's routing signal.
func (rp *Replica) Paused() bool { return rp.r.col.Paused() }

// OOM reports whether the replica's heap was exhausted; a fleet run aborts
// when any replica OOMs (the condition is sticky).
func (rp *Replica) OOM() bool { return rp.r.oom }

// OOMErr returns the replica's typed out-of-memory error (nil if healthy).
func (rp *Replica) OOMErr() error {
	if !rp.r.oom {
		return nil
	}
	return &ErrOutOfMemory{rp.r.d.Name, rp.r.cfg.HeapMB, rp.r.cfg.Collector}
}

// Served returns the number of requests the replica has completed.
func (rp *Replica) Served() int64 { return rp.served }

// Latencies returns every recorded completion (arrival → completion), in
// completion order — identical, for a single-replica fleet under constant
// arrivals, to the open-loop runner's recorded events on the same seed.
func (rp *Replica) Latencies() []Event { return rp.r.latencies }

// Log returns the replica's GC telemetry log.
func (rp *Replica) Log() *trace.Log { return rp.r.log }

// GCCPU returns the total CPU consumed by the replica's collector, in
// virtual nanoseconds.
func (rp *Replica) GCCPU() float64 { return rp.r.col.GCCPU() }

// TaskClock returns the replica's total CPU consumption (all threads), the
// co-location pressure numerator.
func (rp *Replica) TaskClock() float64 { return rp.r.eng.TaskClock() }

// HeapPeak returns the replica's peak heap occupancy in bytes.
func (rp *Replica) HeapPeak() float64 { return rp.r.h.PeakUsed() }

// WarmupIter returns the replica's current warmup iteration (0-based).
func (rp *Replica) WarmupIter() int { return rp.r.iter }

// Interval returns the replica's nominal open-loop inter-arrival interval in
// nanoseconds — PET spread over the event count, stretched by headroom —
// which fleet arrival processes use as the per-replica mean. The degenerate
// configurations are rejected exactly as the open-loop runner rejects them.
func (rp *Replica) Interval() (float64, error) { return rp.r.openLoopInterval() }

// SetPauseHook installs fn to observe the replica collector's stop-the-world
// transitions (true at world stop, false at restart) — the signal an indexed
// GC-aware balancer maintains its paused-replica set from, replacing the
// per-pick Paused() poll. A nil hook costs nothing.
func (rp *Replica) SetPauseHook(fn func(paused bool)) { rp.r.col.SetPauseHook(fn) }
