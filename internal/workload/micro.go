package workload

import (
	"chopin/internal/cpuarch"
	"chopin/internal/heap"
	"chopin/internal/jit"
)

// The paper's related-work discussion (Section 3.2) distinguishes realistic
// suites from micro benchmarks — gcbench, JSR-166 tests, the benchmarks
// game — and notes that "simple, deterministic workloads can be particularly
// helpful in identifying and attributing specific performance regressions
// with high fidelity". This file provides that complement: a small family of
// micro workloads with analytically-known behaviour, kept *outside* the
// 22-workload suite (they do not appear in All/Names) and reachable via
// Micros/MicroByName. The test suite uses them to validate collector
// behaviour against closed-form expectations.

var microRegistry = map[string]*Descriptor{}

func registerMicro(d *Descriptor) *Descriptor {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	if _, dup := microRegistry[d.Name]; dup {
		panic("workload: duplicate micro " + d.Name)
	}
	microRegistry[d.Name] = d
	return d
}

// Micros returns the micro-benchmark family, in a fixed order.
func Micros() []*Descriptor {
	return []*Descriptor{MicroGCBench, MicroAllocStorm, MicroSteady, MicroPauseProbe}
}

// MicroByName returns the named micro benchmark.
func MicroByName(name string) (*Descriptor, error) {
	if d, ok := microRegistry[name]; ok {
		return d, nil
	}
	return nil, errUnknownMicro(name)
}

type errUnknownMicro string

func (e errUnknownMicro) Error() string {
	return "workload: unknown micro benchmark \"" + string(e) + "\""
}

// neutralArch is a featureless CPU profile: IPC 2 with no stalls or
// sensitivities, so micro results isolate GC behaviour.
var neutralArch = cpuarch.Profile{TargetIPC: 2.0}

// neutralJit warms instantly.
var neutralJit = jit.Model{WarmupIters: 1}

// MicroGCBench models the classic Ellis/Kovac/Boehm gcbench: build and drop
// complete binary trees. Almost everything dies young; a small long-lived
// tree persists. Allocation-bound with uniform node sizes.
var MicroGCBench = registerMicro(&Descriptor{
	Name:        "micro-gcbench",
	Description: "gcbench-style binary tree churn; uniform nodes, everything dies young",
	Class:       Batch,
	Threads:     1, Events: 1000, PETSeconds: 1, ARA: 4000, ServiceSigma: 0,
	LiveMB: 16, MinHeapMB: 20,
	Demo: heap.Demographics{
		YoungSurvival: 0.05, RefNursery: 8 * MB, SurvivalDecay: 0.4,
		CompactFraction: 0.5,
		AvgObjectBytes:  40, ObjectBytesP10: 40, ObjectBytesMedian: 40, ObjectBytesP90: 40,
	},
	Arch: neutralArch, Jit: neutralJit,
})

// MicroAllocStorm allocates as fast as a single thread can with a minimal
// live set: the pure allocation-rate stressor (a lusearch distillate).
var MicroAllocStorm = registerMicro(&Descriptor{
	Name:        "micro-allocstorm",
	Description: "maximum-rate allocation with a tiny live set",
	Class:       Batch,
	Threads:     4, Events: 1000, PETSeconds: 1, ARA: 20000, ServiceSigma: 0,
	LiveMB: 4, MinHeapMB: 6,
	Demo: heap.Demographics{
		YoungSurvival: 0.02, RefNursery: 8 * MB, SurvivalDecay: 0.4,
		CompactFraction: 0.5,
		AvgObjectBytes:  64, ObjectBytesP10: 64, ObjectBytesMedian: 64, ObjectBytesP90: 64,
	},
	Arch: neutralArch, Jit: neutralJit,
})

// MicroSteady holds a fixed live set and allocates slowly: in a roomy heap
// it should trigger (nearly) no collections, making it the zero-overhead
// control for LBO sanity checks.
var MicroSteady = registerMicro(&Descriptor{
	Name:        "micro-steady",
	Description: "steady live set, negligible allocation; the zero-GC control",
	Class:       Batch,
	Threads:     2, Events: 1000, PETSeconds: 1, ARA: 10, ServiceSigma: 0,
	LiveMB: 32, MinHeapMB: 36,
	Demo: heap.Demographics{
		YoungSurvival: 0.10, RefNursery: 8 * MB, SurvivalDecay: 0.4,
		CompactFraction: 0.5,
		AvgObjectBytes:  48, ObjectBytesP10: 48, ObjectBytesMedian: 48, ObjectBytesP90: 48,
	},
	Arch: neutralArch, Jit: neutralJit,
})

// MicroPauseProbe is a request workload with perfectly regular, cheap
// requests: any latency above the service time is runtime-induced, so its
// latency distribution reads GC behaviour directly.
var MicroPauseProbe = registerMicro(&Descriptor{
	Name:             "micro-pauseprobe",
	Description:      "regular cheap requests; latency tail is pure runtime interference",
	Class:            Request,
	LatencySensitive: true,
	Threads:          2, Events: 4000, PETSeconds: 2, ARA: 2000, ServiceSigma: 0.01,
	LiveMB: 16, MinHeapMB: 20,
	Demo: heap.Demographics{
		YoungSurvival: 0.05, RefNursery: 8 * MB, SurvivalDecay: 0.4,
		CompactFraction: 0.5,
		AvgObjectBytes:  56, ObjectBytesP10: 56, ObjectBytesMedian: 56, ObjectBytesP90: 56,
	},
	Arch: neutralArch, Jit: neutralJit,
})
