// Package bytecode is the suite's bytecode-instrumentation analogue.
//
// The real DaCapo Chopin gathers its seven B-group nominal statistics (BAL,
// BAS, BEF, BGF, BPF, BUB, BUF) and its allocation statistics by running
// workloads under bytecode instrumentation, and ships the instrumentation
// tools with the suite. Our workloads have no Java bytecode, so this package
// provides the honest equivalent: each workload's trait profile is expanded
// into a synthetic program — methods composed of JVM-like opcodes with a
// hotness distribution — and an instrumented executor runs it, counting
// opcode executions, unique instruction sites and unique methods. The
// B-group statistics are then *measured* from those counts exactly as the
// paper computes them: counts divided by uninstrumented execution time.
package bytecode

import (
	"fmt"

	"chopin/internal/sim"
)

// Opcode is a JVM-like abstract instruction.
type Opcode uint8

// The opcode set: the four the suite tracks explicitly, plus the filler mix
// that makes up real method bodies.
const (
	OpAALoad   Opcode = iota // array object load (BAL)
	OpAAStore                // array object store (BAS)
	OpGetField               // field read (BGF)
	OpPutField               // field write (BPF)
	OpILoad
	OpIStore
	OpIAdd
	OpIfCmp
	OpGoto
	OpInvoke
	OpReturn
	OpNew
	OpLdc
	OpArrayLen
	numOpcodes
)

func (o Opcode) String() string {
	names := [...]string{
		"aaload", "aastore", "getfield", "putfield", "iload", "istore",
		"iadd", "if_icmp", "goto", "invokevirtual", "return", "new", "ldc",
		"arraylength",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Targets are the trait values a synthesized program is built to reproduce.
type Targets struct {
	// Per-microsecond dynamic rates of the tracked opcodes.
	AALoadPerUS   float64 // BAL
	AAStorePerUS  float64 // BAS
	GetFieldPerUS float64 // BGF
	PutFieldPerUS float64 // BPF
	// UniqueBytecodesK and UniqueFunctionsK are thousands of distinct
	// instruction sites and methods the workload executes (BUB, BUF).
	UniqueBytecodesK float64
	UniqueFunctionsK float64
	// Focus is the hot-code dominance (BEF, 1..30): the share of dynamic
	// execution owned by the hottest 1% of methods, times 30.
	Focus float64
	// ExecTimeUS is the uninstrumented execution time used to normalize
	// counts into rates, as the paper does.
	ExecTimeUS float64
}

// Method is one synthetic function body.
type Method struct {
	ID   int
	Body []Opcode
}

// Program is a synthesized workload image: methods plus a hotness
// distribution over them.
type Program struct {
	Methods  []Method
	hotCut   int     // methods [0, hotCut) are the hot set
	hotShare float64 // probability mass of the hot set
	targets  Targets
}

// trackedShare is the fraction of dynamic instructions belonging to the four
// tracked opcodes in a typical method body; the rest is the filler mix.
const trackedShare = 0.35

// Synthesize expands targets into a program. The shape is derived, not
// free: method count from BUF, sites per method from BUB/BUF, opcode mix
// from the four tracked rates, hotness split from Focus.
func Synthesize(t Targets, seed uint64) (*Program, error) {
	if t.ExecTimeUS <= 0 {
		return nil, fmt.Errorf("bytecode: non-positive execution time %v", t.ExecTimeUS)
	}
	rng := sim.NewRNG(seed ^ 0xB17EC0DE)

	methods := int(t.UniqueFunctionsK * 1000)
	if methods < 1 {
		methods = 1
	}
	if methods > 40000 {
		methods = 40000 // cap the image; density below compensates
	}
	sites := int(t.UniqueBytecodesK * 1000)
	if sites < methods*2 {
		sites = methods * 2
	}
	bodyLen := sites / methods
	if bodyLen < 2 {
		bodyLen = 2
	}
	if bodyLen > 400 {
		bodyLen = 400
	}

	// Opcode mix: tracked opcodes in proportion to their target rates,
	// occupying trackedShare of each body; filler spread over the rest.
	totalRate := t.AALoadPerUS + t.AAStorePerUS + t.GetFieldPerUS + t.PutFieldPerUS
	mix := make([]float64, numOpcodes)
	if totalRate > 0 {
		mix[OpAALoad] = trackedShare * t.AALoadPerUS / totalRate
		mix[OpAAStore] = trackedShare * t.AAStorePerUS / totalRate
		mix[OpGetField] = trackedShare * t.GetFieldPerUS / totalRate
		mix[OpPutField] = trackedShare * t.PutFieldPerUS / totalRate
	}
	used := mix[OpAALoad] + mix[OpAAStore] + mix[OpGetField] + mix[OpPutField]
	filler := (1 - used) / float64(numOpcodes-4)
	for op := OpILoad; op < numOpcodes; op++ {
		mix[op] = filler
	}

	p := &Program{targets: t}
	for m := 0; m < methods; m++ {
		body := make([]Opcode, bodyLen)
		for i := range body {
			body[i] = sampleOpcode(mix, rng)
		}
		p.Methods = append(p.Methods, Method{ID: m, Body: body})
	}

	// Hotness: the hottest 1% of methods own Focus/30 of the execution.
	p.hotCut = methods / 100
	if p.hotCut < 1 {
		p.hotCut = 1
	}
	p.hotShare = t.Focus / 30
	if p.hotShare > 0.97 {
		p.hotShare = 0.97
	}
	if p.hotShare < 0.01 {
		p.hotShare = 0.01
	}
	return p, nil
}

func sampleOpcode(mix []float64, rng *sim.RNG) Opcode {
	u := rng.Float64()
	var acc float64
	for op, f := range mix {
		acc += f
		if u < acc {
			return Opcode(op)
		}
	}
	return OpReturn
}

// Counts is what the instrumented execution observed.
type Counts struct {
	Executed      int64 // dynamic instruction count
	PerOp         [numOpcodes]int64
	UniqueSites   int
	UniqueMethods int
	HotExecuted   int64 // dynamic instructions from the hot set
}

// Execute runs the program for the given number of method invocations under
// instrumentation and returns the counts.
func (p *Program) Execute(invocations int, seed uint64) Counts {
	rng := sim.NewRNG(seed ^ 0xE8EC)
	var c Counts
	seenMethod := make([]bool, len(p.Methods))
	seenSiteCount := make([]int, len(p.Methods)) // full-body execution marks all sites
	for i := 0; i < invocations; i++ {
		var m int
		if rng.Float64() < p.hotShare {
			m = rng.Intn(p.hotCut)
		} else if len(p.Methods) > p.hotCut {
			m = p.hotCut + rng.Intn(len(p.Methods)-p.hotCut)
		}
		method := &p.Methods[m]
		if !seenMethod[m] {
			seenMethod[m] = true
			c.UniqueMethods++
		}
		if seenSiteCount[m] == 0 {
			seenSiteCount[m] = len(method.Body)
			c.UniqueSites += len(method.Body)
		}
		for _, op := range method.Body {
			c.PerOp[op]++
		}
		c.Executed += int64(len(method.Body))
		if m < p.hotCut {
			c.HotExecuted += int64(len(method.Body))
		}
	}
	return c
}

// Report is the B-group nominal statistics derived from an instrumented
// execution, in the paper's units.
type Report struct {
	BAL float64 // aaload per usec
	BAS float64 // aastore per usec
	BGF float64 // getfield per usec
	BPF float64 // putfield per usec
	BUB float64 // thousands of unique bytecodes executed
	BUF float64 // thousands of unique function calls executed
	BEF float64 // execution focus / dominance of hot code
}

// Report normalizes counts into the published statistics. Rates divide
// dynamic counts by the *uninstrumented* execution time, exactly as the
// paper combines instrumented counts with separate timing runs; because the
// instrumented execution samples a fixed invocation budget rather than the
// full run, tracked-opcode counts are rescaled to the workload's total
// dynamic volume first.
func (c Counts) Report(t Targets) Report {
	r := Report{
		BUB: float64(c.UniqueSites) / 1000,
		BUF: float64(c.UniqueMethods) / 1000,
	}
	if c.Executed > 0 {
		r.BEF = 30 * float64(c.HotExecuted) / float64(c.Executed)
	}
	if c.Executed == 0 || t.ExecTimeUS <= 0 {
		return r
	}
	// Scale sampled counts up to the run's total tracked-opcode volume.
	totalRate := t.AALoadPerUS + t.AAStorePerUS + t.GetFieldPerUS + t.PutFieldPerUS
	sampledTracked := c.PerOp[OpAALoad] + c.PerOp[OpAAStore] +
		c.PerOp[OpGetField] + c.PerOp[OpPutField]
	if sampledTracked == 0 || totalRate == 0 {
		return r
	}
	scale := totalRate * t.ExecTimeUS / float64(sampledTracked)
	r.BAL = float64(c.PerOp[OpAALoad]) * scale / t.ExecTimeUS
	r.BAS = float64(c.PerOp[OpAAStore]) * scale / t.ExecTimeUS
	r.BGF = float64(c.PerOp[OpGetField]) * scale / t.ExecTimeUS
	r.BPF = float64(c.PerOp[OpPutField]) * scale / t.ExecTimeUS
	return r
}

// Measure is the one-call pipeline: synthesize, execute enough invocations
// to converge the unique-site census, and report.
func Measure(t Targets, seed uint64) (Report, error) {
	p, err := Synthesize(t, seed)
	if err != nil {
		return Report{}, err
	}
	invocations := 30 * len(p.Methods)
	if invocations < 50_000 {
		invocations = 50_000
	}
	if invocations > 2_000_000 {
		invocations = 2_000_000
	}
	c := p.Execute(invocations, seed)
	return c.Report(t), nil
}

// SiteCount returns the program's static instruction-site count.
func (p *Program) SiteCount() int {
	n := 0
	for _, m := range p.Methods {
		n += len(m.Body)
	}
	return n
}

// HotShare returns the configured probability mass of the hot method set.
func (p *Program) HotShare() float64 { return p.hotShare }

// expectedBEF is exposed for tests: the BEF value Execute should converge to.
func (p *Program) expectedBEF() float64 { return 30 * p.hotShare }
