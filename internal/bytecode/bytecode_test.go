package bytecode

import (
	"math"
	"testing"
	"testing/quick"
)

// lusearch-like targets.
func testTargets() Targets {
	return Targets{
		AALoadPerUS: 252, AAStorePerUS: 126, GetFieldPerUS: 12289, PutFieldPerUS: 3863,
		UniqueBytecodesK: 26, UniqueFunctionsK: 3, Focus: 5,
		ExecTimeUS: 2e6,
	}
}

func TestSynthesizeShape(t *testing.T) {
	p, err := Synthesize(testTargets(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Methods) != 3000 {
		t.Fatalf("methods = %d, want 3000 (BUF 3k)", len(p.Methods))
	}
	sites := p.SiteCount()
	if sites < 20000 || sites > 32000 {
		t.Fatalf("sites = %d, want ~26000 (BUB 26k)", sites)
	}
}

func TestMeasuredRatesMatchTargets(t *testing.T) {
	tg := testTargets()
	r, err := Measure(tg, 7)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want, tol float64) {
		if want == 0 {
			return
		}
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s = %v, want ~%v", name, got, want)
		}
	}
	// The low-rate opcodes occupy few sites, so hot-set composition adds
	// sampling variance; allow a wider band for them.
	within("BAL", r.BAL, tg.AALoadPerUS, 0.30)
	within("BAS", r.BAS, tg.AAStorePerUS, 0.30)
	within("BGF", r.BGF, tg.GetFieldPerUS, 0.05)
	within("BPF", r.BPF, tg.PutFieldPerUS, 0.05)
	within("BUB", r.BUB, tg.UniqueBytecodesK, 0.25)
	within("BUF", r.BUF, tg.UniqueFunctionsK, 0.25)
	within("BEF", r.BEF, tg.Focus, 0.25)
}

func TestEclipseLikeExtremeFocus(t *testing.T) {
	// eclipse: BEF 29 (almost everything in hot code), BUB 1k, BUF ~0.
	tg := Targets{Focus: 29, UniqueBytecodesK: 1, UniqueFunctionsK: 0, ExecTimeUS: 8e6}
	r, err := Measure(tg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.BEF < 24 || r.BEF > 30 {
		t.Fatalf("BEF = %v, want ~29 (clamped at 29.1)", r.BEF)
	}
	if r.BUF > 0.01 {
		t.Fatalf("BUF = %v, want ~0 (single method)", r.BUF)
	}
}

func TestZeroTrackedRates(t *testing.T) {
	// eclipse also has BAL=BAS=BGF=BPF=0: the mix degenerates to filler.
	tg := Targets{UniqueBytecodesK: 1, UniqueFunctionsK: 0.1, Focus: 29, ExecTimeUS: 1e6}
	r, err := Measure(tg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.BAL != 0 || r.BGF != 0 {
		t.Fatalf("tracked rates should be ~0: %+v", r)
	}
	if r.BUB <= 0 {
		t.Fatal("no sites executed")
	}
}

func TestExecutionDeterministic(t *testing.T) {
	a, _ := Measure(testTargets(), 42)
	b, _ := Measure(testTargets(), 42)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestInvalidTargets(t *testing.T) {
	if _, err := Measure(Targets{}, 1); err == nil {
		t.Fatal("zero execution time should error")
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpAALoad.String() != "aaload" || OpGetField.String() != "getfield" {
		t.Fatal("opcode names wrong")
	}
	if Opcode(200).String() == "" {
		t.Fatal("unknown opcode should still render")
	}
}

func TestHotSetDominatesExecution(t *testing.T) {
	p, err := Synthesize(testTargets(), 5)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Execute(200000, 5)
	gotShare := float64(c.HotExecuted) / float64(c.Executed)
	if math.Abs(gotShare-p.HotShare()) > 0.02 {
		t.Fatalf("hot share = %v, configured %v", gotShare, p.HotShare())
	}
	if got := p.expectedBEF(); math.Abs(got-30*p.HotShare()) > 1e-9 {
		t.Fatalf("expectedBEF inconsistent: %v", got)
	}
}

func TestQuickMeasureSane(t *testing.T) {
	f := func(balRaw, bubRaw, bufRaw, focusRaw uint16) bool {
		tg := Targets{
			AALoadPerUS:      float64(balRaw % 2300),
			GetFieldPerUS:    float64(balRaw%900) * 3,
			UniqueBytecodesK: float64(bubRaw%180) + 1,
			UniqueFunctionsK: float64(bufRaw % 30),
			Focus:            float64(focusRaw%29) + 1,
			ExecTimeUS:       1e6,
		}
		r, err := Measure(tg, uint64(balRaw)<<16|uint64(bubRaw))
		if err != nil {
			return false
		}
		for _, v := range []float64{r.BAL, r.BAS, r.BGF, r.BPF, r.BUB, r.BUF, r.BEF} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return r.BEF <= 30.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
