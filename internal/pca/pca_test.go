package pca

import (
	"math"
	"testing"
	"testing/quick"

	"chopin/internal/sim"
)

func TestTwoDimensionalLine(t *testing.T) {
	// Points on a perfect line y = 2x: all variance on PC1.
	data := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}, {5, 10}}
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ExplainedVariance[0]; math.Abs(got-1) > 1e-9 {
		t.Fatalf("PC1 explains %v, want 1", got)
	}
	// After standardization the line is x=y, so PC1 is (1,1)/sqrt(2).
	c := r.Components[0]
	if math.Abs(math.Abs(c[0])-1/math.Sqrt2) > 1e-9 ||
		math.Abs(math.Abs(c[1])-1/math.Sqrt2) > 1e-9 {
		t.Fatalf("PC1 = %v, want (±0.707, ±0.707)", c)
	}
	if c[0]*c[1] < 0 {
		t.Fatalf("PC1 loadings should share sign for correlated metrics: %v", c)
	}
}

func TestIndependentMetricsSplitVariance(t *testing.T) {
	// Two independent metrics with equal (unit, after scaling) variance.
	data := [][]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}, {2, 0}, {-2, 0}, {0, 2}, {0, -2}}
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ExplainedVariance[0]-0.5) > 1e-9 {
		t.Fatalf("symmetric data should split variance evenly: %v", r.ExplainedVariance)
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := sim.NewRNG(42)
	data := make([][]float64, 22)
	for i := range data {
		data[i] = make([]float64, 7)
		for j := range data[i] {
			data[i][j] = rng.NormFloat64()*float64(j+1) + float64(j)
		}
	}
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < len(r.Components); a++ {
		for b := a; b < len(r.Components); b++ {
			var dot float64
			for j := range r.Components[a] {
				dot += r.Components[a][j] * r.Components[b][j]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("components %d,%d dot = %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestEigenvaluesSortedAndExplainSumToOne(t *testing.T) {
	rng := sim.NewRNG(7)
	data := make([][]float64, 30)
	for i := range data {
		data[i] = make([]float64, 5)
		for j := range data[i] {
			data[i][j] = rng.Float64() * float64(10*(j+1))
		}
	}
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, ev := range r.Eigenvalues {
		if i > 0 && ev > r.Eigenvalues[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", r.Eigenvalues)
		}
		sum += r.ExplainedVariance[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("explained variance sums to %v, want 1", sum)
	}
}

func TestProjectionPreservesTotalVariance(t *testing.T) {
	rng := sim.NewRNG(13)
	n, m := 22, 6
	data := make([][]float64, n)
	for i := range data {
		data[i] = make([]float64, m)
		for j := range data[i] {
			data[i][j] = rng.NormFloat64() * float64(j+1)
		}
	}
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	// Total variance of projections equals the eigenvalue sum.
	var projVar float64
	for c := 0; c < m; c++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += r.Projected[i][c]
		}
		mean /= float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			d := r.Projected[i][c] - mean
			ss += d * d
		}
		projVar += ss / float64(n-1)
	}
	var eigSum float64
	for _, v := range r.Eigenvalues {
		eigSum += v
	}
	if math.Abs(projVar-eigSum) > 1e-6*eigSum {
		t.Fatalf("projected variance %v != eigenvalue sum %v", projVar, eigSum)
	}
}

func TestConstantMetricHandled(t *testing.T) {
	data := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	r, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	// The constant metric contributes nothing; PC1 explains everything.
	if math.Abs(r.ExplainedVariance[0]-1) > 1e-9 {
		t.Fatalf("explained = %v, want PC1=1", r.ExplainedVariance)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Fit([][]float64{{1, 2}}); err == nil {
		t.Fatal("expected error for single observation")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := Fit([][]float64{{1, math.NaN()}, {2, 3}}); err == nil {
		t.Fatal("expected error for NaN input")
	}
	if _, err := Fit([][]float64{{}, {}}); err == nil {
		t.Fatal("expected error for zero metrics")
	}
}

func TestDeterministicSigns(t *testing.T) {
	data := [][]float64{{1, 2, 1}, {2, 4, 0}, {3, 5, 2}, {4, 9, 1}, {5, 9, 3}}
	a, err := Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Fit(data)
	for c := range a.Components {
		for j := range a.Components[c] {
			if a.Components[c][j] != b.Components[c][j] {
				t.Fatal("PCA not deterministic")
			}
		}
	}
}

// Property: eigenvalues are non-negative (covariance matrices are PSD) and
// projections are finite for arbitrary well-formed data.
func TestQuickEigenvaluesNonNegative(t *testing.T) {
	f := func(seed uint32, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 3
		m := int(mRaw%6) + 2
		rng := sim.NewRNG(uint64(seed))
		data := make([][]float64, n)
		for i := range data {
			data[i] = make([]float64, m)
			for j := range data[i] {
				data[i][j] = rng.NormFloat64() * 10
			}
		}
		r, err := Fit(data)
		if err != nil {
			return false
		}
		for _, v := range r.Eigenvalues {
			if v < -1e-9 || math.IsNaN(v) {
				return false
			}
		}
		for _, row := range r.Projected {
			for _, x := range row {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
