// Package pca implements principal components analysis as the paper uses it
// (Section 5.2): standard-scale the benchmark-by-metric matrix (zero mean,
// unit variance per metric), eigendecompose the covariance matrix with the
// cyclic Jacobi method, and project the benchmarks onto the leading
// components to quantify the diversity of the suite.
package pca

import (
	"fmt"
	"math"
	"sort"
)

// Result holds a fitted PCA.
type Result struct {
	// Components holds the principal axes, one row per component, sorted by
	// decreasing explained variance; each row has one loading per metric.
	Components [][]float64
	// Eigenvalues are the variances along each component, same order.
	Eigenvalues []float64
	// ExplainedVariance is each eigenvalue as a fraction of the total.
	ExplainedVariance []float64
	// Projected holds the standardized data projected onto the components:
	// one row per observation, one column per component.
	Projected [][]float64
	// Means and Scales are the per-metric standardization parameters.
	Means  []float64
	Scales []float64
}

// Fit runs PCA over data (rows = observations/benchmarks, columns =
// metrics). Metrics with zero variance are scaled by 1 (they carry no
// information and get zero loadings naturally).
func Fit(data [][]float64) (*Result, error) {
	n := len(data)
	if n < 2 {
		return nil, fmt.Errorf("pca: need at least 2 observations, got %d", n)
	}
	m := len(data[0])
	if m < 1 {
		return nil, fmt.Errorf("pca: need at least 1 metric")
	}
	for i, row := range data {
		if len(row) != m {
			return nil, fmt.Errorf("pca: row %d has %d metrics, want %d", i, len(row), m)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("pca: row %d metric %d is %v", i, j, v)
			}
		}
	}

	// Standard scaling: zero mean, unit variance per metric (population
	// variance, matching sklearn's StandardScaler).
	means := make([]float64, m)
	scales := make([]float64, m)
	for j := 0; j < m; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += data[i][j]
		}
		means[j] = sum / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			d := data[i][j] - means[j]
			ss += d * d
		}
		scales[j] = math.Sqrt(ss / float64(n))
		if scales[j] == 0 {
			scales[j] = 1
		}
	}
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			x[i][j] = (data[i][j] - means[j]) / scales[j]
		}
	}

	// Covariance matrix (n-1 denominator).
	cov := make([][]float64, m)
	for j := range cov {
		cov[j] = make([]float64, m)
	}
	for j := 0; j < m; j++ {
		for k := j; k < m; k++ {
			var s float64
			for i := 0; i < n; i++ {
				s += x[i][j] * x[i][k]
			}
			c := s / float64(n-1)
			cov[j][k] = c
			cov[k][j] = c
		}
	}

	eigVals, eigVecs := jacobi(cov)

	// Sort by decreasing eigenvalue.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return eigVals[order[a]] > eigVals[order[b]] })

	res := &Result{Means: means, Scales: scales}
	var total float64
	for _, v := range eigVals {
		if v > 0 {
			total += v
		}
	}
	for _, idx := range order {
		v := eigVals[idx]
		if v < 0 {
			v = 0
		}
		res.Eigenvalues = append(res.Eigenvalues, v)
		if total > 0 {
			res.ExplainedVariance = append(res.ExplainedVariance, v/total)
		} else {
			res.ExplainedVariance = append(res.ExplainedVariance, 0)
		}
		comp := make([]float64, m)
		for j := 0; j < m; j++ {
			comp[j] = eigVecs[j][idx]
		}
		res.Components = append(res.Components, comp)
	}

	// Fix component sign deterministically: largest-magnitude loading
	// positive, so runs are comparable.
	for _, comp := range res.Components {
		maxAbs, sign := 0.0, 1.0
		for _, v := range comp {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
				if v < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		if sign < 0 {
			for j := range comp {
				comp[j] = -comp[j]
			}
		}
	}

	res.Projected = make([][]float64, n)
	for i := 0; i < n; i++ {
		res.Projected[i] = make([]float64, m)
		for c, comp := range res.Components {
			var s float64
			for j := 0; j < m; j++ {
				s += x[i][j] * comp[j]
			}
			res.Projected[i][c] = s
		}
	}
	return res, nil
}

// jacobi diagonalizes the symmetric matrix a with the cyclic Jacobi method,
// returning eigenvalues and the matrix of column eigenvectors. a is not
// modified.
func jacobi(a [][]float64) ([]float64, [][]float64) {
	m := len(a)
	// Working copy.
	w := make([][]float64, m)
	for i := range w {
		w[i] = make([]float64, m)
		copy(w[i], a[i])
	}
	// Eigenvector accumulator, starts as identity.
	v := make([][]float64, m)
	for i := range v {
		v[i] = make([]float64, m)
		v[i][i] = 1
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < m; p++ {
			for q := p + 1; q < m; q++ {
				off += w[p][q] * w[p][q]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < m; p++ {
			for q := p + 1; q < m; q++ {
				if math.Abs(w[p][q]) < 1e-15 {
					continue
				}
				// Compute the rotation that zeroes w[p][q].
				theta := (w[q][q] - w[p][p]) / (2 * w[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				for k := 0; k < m; k++ {
					wkp, wkq := w[k][p], w[k][q]
					w[k][p] = c*wkp - s*wkq
					w[k][q] = s*wkp + c*wkq
				}
				for k := 0; k < m; k++ {
					wpk, wqk := w[p][k], w[q][k]
					w[p][k] = c*wpk - s*wqk
					w[q][k] = s*wpk + c*wqk
				}
				for k := 0; k < m; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}

	vals := make([]float64, m)
	for i := 0; i < m; i++ {
		vals[i] = w[i][i]
	}
	return vals, v
}
