// Package persist saves and reloads experiment results as JSON, so
// expensive sweeps can be archived and figures re-rendered offline — the
// role running-ng's results directory plays for the paper's artifact.
package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"chopin/internal/lbo"
	"chopin/internal/nominal"
)

// Archive is the top-level saved document.
type Archive struct {
	// Version guards the schema; bump on incompatible change.
	Version int `json:"version"`
	// Kind describes the payload: "lbo-grid", "geomean", "characterization".
	Kind string `json:"kind"`

	Grid             *lbo.Grid                 `json:"grid,omitempty"`
	Geomean          []lbo.GeomeanPoint        `json:"geomean,omitempty"`
	Characterization *nominal.Characterization `json:"characterization,omitempty"`
}

const currentVersion = 1

// SaveGrid writes a benchmark's LBO grid.
func SaveGrid(path string, g *lbo.Grid) error {
	return write(path, Archive{Version: currentVersion, Kind: "lbo-grid", Grid: g})
}

// SaveGeomean writes cross-suite geomean points.
func SaveGeomean(path string, pts []lbo.GeomeanPoint) error {
	return write(path, Archive{Version: currentVersion, Kind: "geomean", Geomean: pts})
}

// SaveCharacterization writes one workload's nominal statistics.
func SaveCharacterization(path string, c *nominal.Characterization) error {
	return write(path, Archive{Version: currentVersion, Kind: "characterization", Characterization: c})
}

func write(path string, a Archive) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads any archive and validates its envelope.
func Load(path string) (*Archive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var a Archive
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("persist: %s: %w", path, err)
	}
	if a.Version != currentVersion {
		return nil, fmt.Errorf("persist: %s: version %d, want %d", path, a.Version, currentVersion)
	}
	switch a.Kind {
	case "lbo-grid":
		if a.Grid == nil {
			return nil, fmt.Errorf("persist: %s: lbo-grid archive without grid", path)
		}
	case "geomean":
		if a.Geomean == nil {
			return nil, fmt.Errorf("persist: %s: geomean archive without points", path)
		}
	case "characterization":
		if a.Characterization == nil {
			return nil, fmt.Errorf("persist: %s: characterization archive without payload", path)
		}
	default:
		return nil, fmt.Errorf("persist: %s: unknown kind %q", path, a.Kind)
	}
	return &a, nil
}

// LoadGrid reads an LBO grid archive.
func LoadGrid(path string) (*lbo.Grid, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	if a.Kind != "lbo-grid" {
		return nil, fmt.Errorf("persist: %s holds %q, want lbo-grid", path, a.Kind)
	}
	return a.Grid, nil
}

// LoadGeomean reads a geomean archive.
func LoadGeomean(path string) ([]lbo.GeomeanPoint, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	if a.Kind != "geomean" {
		return nil, fmt.Errorf("persist: %s holds %q, want geomean", path, a.Kind)
	}
	return a.Geomean, nil
}

// LoadCharacterization reads a characterization archive.
func LoadCharacterization(path string) (*nominal.Characterization, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	if a.Kind != "characterization" {
		return nil, fmt.Errorf("persist: %s holds %q, want characterization", path, a.Kind)
	}
	return a.Characterization, nil
}
