// Package persist saves and reloads experiment results as JSON, so
// expensive sweeps can be archived and figures re-rendered offline — the
// role running-ng's results directory plays for the paper's artifact.
//
// Schema v2 extends the archive with two invocation-level kinds that back
// the experiment engine's content-addressed result cache (internal/exper):
// "invocation" (one simulator run, keyed by the canonical job hash) and
// "minheap" (one measured per-benchmark minimum heap). v1 archives of the
// original kinds load transparently through the migration path.
package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"chopin/internal/lbo"
	"chopin/internal/nominal"
	"chopin/internal/workload"
)

// Archive is the top-level saved document.
type Archive struct {
	// Version guards the schema; bump on incompatible change.
	Version int `json:"version"`
	// Kind describes the payload: "lbo-grid", "geomean", "characterization",
	// "invocation", "minheap", "generic".
	Kind string `json:"kind"`

	Grid             *lbo.Grid                 `json:"grid,omitempty"`
	Geomean          []lbo.GeomeanPoint        `json:"geomean,omitempty"`
	Characterization *nominal.Characterization `json:"characterization,omitempty"`
	Invocation       *InvocationRecord         `json:"invocation,omitempty"`
	MinHeap          *MinHeapRecord            `json:"min_heap,omitempty"`
	Generic          *GenericRecord            `json:"generic,omitempty"`
}

// InvocationRecord is one cached simulator invocation: the complete Result
// of running a workload under one RunConfig, or the fact that the
// configuration ran out of memory. Key is the canonical content hash of the
// (descriptor, RunConfig) pair that produced it, so a record is valid for
// exactly the job that would reproduce it.
type InvocationRecord struct {
	Key       string  `json:"key"`
	Workload  string  `json:"workload"`
	Collector string  `json:"collector"`
	HeapMB    float64 `json:"heap_mb"`
	Seed      uint64  `json:"seed"`
	// OOM records that the invocation failed with OutOfMemory — a cacheable
	// outcome (the 1x rows of tight sweeps), distinct from transient errors,
	// which are never cached.
	OOM    bool             `json:"oom,omitempty"`
	Result *workload.Result `json:"result,omitempty"`
}

// MinHeapRecord is one cached minimum-heap measurement: the validated GMD
// for a (descriptor, search parameters) pair, keyed like an invocation.
type MinHeapRecord struct {
	Key       string  `json:"key"`
	Workload  string  `json:"workload"`
	MinHeapMB float64 `json:"min_heap_mb"`
}

// GenericRecord is one cached result of an arbitrary engine job kind
// (exper.SubmitGeneric): an opaque JSON payload owned by the submitting
// subsystem (fleet sweep cells, future experiment kinds), keyed by the
// canonical content hash of the job's parameters. Kind names the submitting
// job family, for humans browsing a cache directory.
type GenericRecord struct {
	Key  string          `json:"key"`
	Kind string          `json:"job_kind"`
	Data json.RawMessage `json:"data"`
}

const (
	// currentVersion is the archive schema. v2 added the invocation-cache
	// kinds; earlier versions migrate on load.
	currentVersion = 2
	oldestVersion  = 1
)

// CurrentVersion reports the schema version new archives are written with.
func CurrentVersion() int { return currentVersion }

// SaveGrid writes a benchmark's LBO grid.
func SaveGrid(path string, g *lbo.Grid) error {
	return write(path, Archive{Version: currentVersion, Kind: "lbo-grid", Grid: g})
}

// SaveGeomean writes cross-suite geomean points.
func SaveGeomean(path string, pts []lbo.GeomeanPoint) error {
	return write(path, Archive{Version: currentVersion, Kind: "geomean", Geomean: pts})
}

// SaveCharacterization writes one workload's nominal statistics.
func SaveCharacterization(path string, c *nominal.Characterization) error {
	return write(path, Archive{Version: currentVersion, Kind: "characterization", Characterization: c})
}

// SaveInvocation writes one cached invocation result.
func SaveInvocation(path string, r *InvocationRecord) error {
	return write(path, Archive{Version: currentVersion, Kind: "invocation", Invocation: r})
}

// SaveMinHeap writes one cached minimum-heap measurement.
func SaveMinHeap(path string, r *MinHeapRecord) error {
	return write(path, Archive{Version: currentVersion, Kind: "minheap", MinHeap: r})
}

// SaveGeneric writes one cached generic job result.
func SaveGeneric(path string, r *GenericRecord) error {
	return write(path, Archive{Version: currentVersion, Kind: "generic", Generic: r})
}

func write(path string, a Archive) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	// Write-then-rename so concurrent engine workers never observe a
	// half-written archive.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// migrate upgrades an archive from its stored version to currentVersion,
// one version step at a time.
func migrate(path string, a *Archive) error {
	for a.Version < currentVersion {
		switch a.Version {
		case 1:
			// v1 -> v2: the envelope is unchanged for the original kinds;
			// the invocation-cache kinds did not exist yet, so a v1 archive
			// claiming one is corrupt rather than old.
			switch a.Kind {
			case "invocation", "minheap", "generic":
				return fmt.Errorf("persist: %s: kind %q requires version 2, archive claims version 1", path, a.Kind)
			}
			a.Version = 2
		default:
			return fmt.Errorf("persist: %s: no migration from version %d", path, a.Version)
		}
	}
	return nil
}

// Load reads any archive, migrating older versions, and validates its
// envelope.
func Load(path string) (*Archive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var a Archive
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("persist: %s: %w", path, err)
	}
	if a.Version < oldestVersion || a.Version > currentVersion {
		return nil, fmt.Errorf("persist: %s: version %d outside supported range [%d, %d]",
			path, a.Version, oldestVersion, currentVersion)
	}
	if err := migrate(path, &a); err != nil {
		return nil, err
	}
	switch a.Kind {
	case "lbo-grid":
		if a.Grid == nil {
			return nil, fmt.Errorf("persist: %s: lbo-grid archive without grid", path)
		}
	case "geomean":
		if a.Geomean == nil {
			return nil, fmt.Errorf("persist: %s: geomean archive without points", path)
		}
	case "characterization":
		if a.Characterization == nil {
			return nil, fmt.Errorf("persist: %s: characterization archive without payload", path)
		}
	case "invocation":
		if a.Invocation == nil {
			return nil, fmt.Errorf("persist: %s: invocation archive without record", path)
		}
		if !a.Invocation.OOM && a.Invocation.Result == nil {
			return nil, fmt.Errorf("persist: %s: invocation archive with neither result nor OOM", path)
		}
	case "minheap":
		if a.MinHeap == nil {
			return nil, fmt.Errorf("persist: %s: minheap archive without record", path)
		}
		if a.MinHeap.MinHeapMB <= 0 {
			return nil, fmt.Errorf("persist: %s: minheap archive with non-positive heap %v",
				path, a.MinHeap.MinHeapMB)
		}
	case "generic":
		if a.Generic == nil {
			return nil, fmt.Errorf("persist: %s: generic archive without record", path)
		}
		if len(a.Generic.Data) == 0 {
			return nil, fmt.Errorf("persist: %s: generic archive without payload", path)
		}
	default:
		return nil, fmt.Errorf("persist: %s: unknown kind %q", path, a.Kind)
	}
	return &a, nil
}

// LoadGrid reads an LBO grid archive.
func LoadGrid(path string) (*lbo.Grid, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	if a.Kind != "lbo-grid" {
		return nil, fmt.Errorf("persist: %s holds %q, want lbo-grid", path, a.Kind)
	}
	return a.Grid, nil
}

// LoadGeomean reads a geomean archive.
func LoadGeomean(path string) ([]lbo.GeomeanPoint, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	if a.Kind != "geomean" {
		return nil, fmt.Errorf("persist: %s holds %q, want geomean", path, a.Kind)
	}
	return a.Geomean, nil
}

// LoadCharacterization reads a characterization archive.
func LoadCharacterization(path string) (*nominal.Characterization, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	if a.Kind != "characterization" {
		return nil, fmt.Errorf("persist: %s holds %q, want characterization", path, a.Kind)
	}
	return a.Characterization, nil
}

// LoadInvocation reads a cached invocation archive.
func LoadInvocation(path string) (*InvocationRecord, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	if a.Kind != "invocation" {
		return nil, fmt.Errorf("persist: %s holds %q, want invocation", path, a.Kind)
	}
	return a.Invocation, nil
}

// LoadMinHeap reads a cached minimum-heap archive.
func LoadMinHeap(path string) (*MinHeapRecord, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	if a.Kind != "minheap" {
		return nil, fmt.Errorf("persist: %s holds %q, want minheap", path, a.Kind)
	}
	return a.MinHeap, nil
}

// LoadGeneric reads a cached generic job archive.
func LoadGeneric(path string) (*GenericRecord, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	if a.Kind != "generic" {
		return nil, fmt.Errorf("persist: %s holds %q, want generic", path, a.Kind)
	}
	return a.Generic, nil
}
