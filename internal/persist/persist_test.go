package persist

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/lbo"
	"chopin/internal/nominal"
	"chopin/internal/trace"
	"chopin/internal/workload"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func sampleGrid() *lbo.Grid {
	g := &lbo.Grid{Benchmark: "fop"}
	g.Add(lbo.Measurement{
		Collector: "G1", HeapFactor: 2, HeapMB: 26, Completed: true,
		WallNS: 100, CPUNS: 150, STWWallNS: 10, GCCPUNS: 20,
		WallSamples: []float64{99, 101}, CPUSamples: []float64{149, 151},
	})
	g.Add(lbo.Measurement{Collector: "ZGC", HeapFactor: 1, Completed: false})
	return g
}

func TestGridRoundTrip(t *testing.T) {
	path := tempPath(t, "grid.json")
	if err := SaveGrid(path, sampleGrid()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != "fop" || len(got.Cells) != 2 {
		t.Fatalf("grid = %+v", got)
	}
	if got.Cells[0].WallNS != 100 || len(got.Cells[0].WallSamples) != 2 {
		t.Fatalf("cell lost data: %+v", got.Cells[0])
	}
	// The reloaded grid must still compute overheads.
	ovs, err := got.Overheads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ovs) != 2 || !ovs[0].Completed || ovs[1].Completed {
		t.Fatalf("overheads = %+v", ovs)
	}
}

func TestGeomeanRoundTrip(t *testing.T) {
	path := tempPath(t, "geo.json")
	pts := []lbo.GeomeanPoint{
		{Collector: "Serial", HeapFactor: 2, Wall: 1.5, CPU: 1.2, Benchmarks: 22, Complete: true},
	}
	if err := SaveGeomean(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGeomean(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != pts[0] {
		t.Fatalf("points = %+v", got)
	}
}

func TestCharacterizationRoundTrip(t *testing.T) {
	path := tempPath(t, "char.json")
	c := &nominal.Characterization{
		Workload:  "fop",
		MinHeapMB: 12.5,
		Values:    map[string]float64{"ARA": 3340, "GMD": 12.5},
	}
	if err := SaveCharacterization(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCharacterization(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != "fop" || got.Value("ARA") != 3340 {
		t.Fatalf("characterization = %+v", got)
	}
	if !math.IsNaN(got.Value("XYZ")) {
		t.Fatal("absent metric should be NaN after reload")
	}
}

func TestKindMismatch(t *testing.T) {
	path := tempPath(t, "grid.json")
	if err := SaveGrid(path, sampleGrid()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGeomean(path); err == nil {
		t.Fatal("loading a grid as geomean should fail")
	}
	if _, err := LoadCharacterization(path); err == nil {
		t.Fatal("loading a grid as characterization should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(tempPath(t, "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
	bad := tempPath(t, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed JSON should error")
	}
	wrongVersion := tempPath(t, "v9.json")
	os.WriteFile(wrongVersion, []byte(`{"version":9,"kind":"geomean","geomean":[]}`), 0o644)
	if _, err := Load(wrongVersion); err == nil {
		t.Fatal("future version should error")
	}
	unknownKind := tempPath(t, "kind.json")
	os.WriteFile(unknownKind, []byte(`{"version":1,"kind":"mystery"}`), 0o644)
	if _, err := Load(unknownKind); err == nil {
		t.Fatal("unknown kind should error")
	}
	empty := tempPath(t, "empty.json")
	os.WriteFile(empty, []byte(`{"version":1,"kind":"lbo-grid"}`), 0o644)
	if _, err := Load(empty); err == nil {
		t.Fatal("missing payload should error")
	}
}

func sampleInvocation() *InvocationRecord {
	return &InvocationRecord{
		Key:       "abc123",
		Workload:  "fop",
		Collector: "G1",
		HeapMB:    26,
		Seed:      42,
		Result: &workload.Result{
			Workload: "fop",
			Config:   workload.RunConfig{HeapMB: 26, Collector: gc.G1, Iterations: 2},
			Iterations: []workload.IterationResult{
				{WallNS: 2e9, CPUNS: 3e9, Allocated: 1e9},
				{WallNS: 1e9, CPUNS: 1.5e9, Allocated: 1e9, StartNS: 2e9, EndNS: 3e9},
			},
			Log:     &trace.Log{},
			GCCPUNS: 4e8,
		},
	}
}

func TestInvocationRoundTrip(t *testing.T) {
	path := tempPath(t, "inv.json")
	rec := sampleInvocation()
	if err := SaveInvocation(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInvocation(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != rec.Key || got.Workload != "fop" || got.OOM {
		t.Fatalf("record = %+v", got)
	}
	if got.Result == nil || len(got.Result.Iterations) != 2 {
		t.Fatalf("result lost: %+v", got.Result)
	}
	if got.Result.Last().WallNS != 1e9 || got.Result.GCCPUNS != 4e8 {
		t.Fatalf("result data lost: %+v", got.Result)
	}
	if got.Result.Config.Collector != gc.G1 || got.Result.Config.HeapMB != 26 {
		t.Fatalf("config lost: %+v", got.Result.Config)
	}
}

func TestInvocationOOMRoundTrip(t *testing.T) {
	path := tempPath(t, "oom.json")
	rec := &InvocationRecord{Key: "k1", Workload: "h2", Collector: "ZGC", HeapMB: 8, OOM: true}
	if err := SaveInvocation(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInvocation(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.OOM || got.Result != nil || got.HeapMB != 8 {
		t.Fatalf("record = %+v", got)
	}
}

func TestMinHeapRoundTrip(t *testing.T) {
	path := tempPath(t, "minheap.json")
	rec := &MinHeapRecord{Key: "mh1", Workload: "fop", MinHeapMB: 13.25}
	if err := SaveMinHeap(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMinHeap(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rec {
		t.Fatalf("record = %+v, want %+v", got, rec)
	}
	// Cross-kind loads must fail.
	if _, err := LoadInvocation(path); err == nil {
		t.Fatal("loading a minheap as invocation should fail")
	}
}

func TestInvocationWithoutPayloadRejected(t *testing.T) {
	path := tempPath(t, "empty-inv.json")
	os.WriteFile(path, []byte(`{"version":2,"kind":"invocation","invocation":{"key":"k","workload":"fop"}}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("invocation with neither result nor OOM should error")
	}
	neg := tempPath(t, "neg-minheap.json")
	os.WriteFile(neg, []byte(`{"version":2,"kind":"minheap","min_heap":{"key":"k","workload":"fop","min_heap_mb":0}}`), 0o644)
	if _, err := Load(neg); err == nil {
		t.Fatal("minheap with non-positive bound should error")
	}
}

// TestV1Migration feeds Load a hand-written v1 archive — the schema the seed
// release wrote — and expects it to come back migrated to the current
// version with its payload intact.
func TestV1Migration(t *testing.T) {
	path := tempPath(t, "v1.json")
	body := `{
  "version": 1,
  "kind": "lbo-grid",
  "grid": {
    "Benchmark": "fop",
    "Cells": [
      {"Collector": "G1", "HeapFactor": 2, "HeapMB": 26, "Completed": true,
       "WallNS": 100, "CPUNS": 150}
    ]
  }
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != CurrentVersion() {
		t.Fatalf("migrated version = %d, want %d", a.Version, CurrentVersion())
	}
	if a.Grid == nil || a.Grid.Benchmark != "fop" || len(a.Grid.Cells) != 1 {
		t.Fatalf("payload lost in migration: %+v", a.Grid)
	}
}

// A v1 archive claiming an invocation-cache kind is corrupt, not old: those
// kinds did not exist before v2.
func TestV1InvocationRejected(t *testing.T) {
	path := tempPath(t, "v1-inv.json")
	os.WriteFile(path, []byte(`{"version":1,"kind":"invocation","invocation":{"key":"k","oom":true}}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("v1 invocation archive should be rejected")
	}
	mh := tempPath(t, "v1-mh.json")
	os.WriteFile(mh, []byte(`{"version":1,"kind":"minheap","min_heap":{"key":"k","min_heap_mb":10}}`), 0o644)
	if _, err := Load(mh); err == nil {
		t.Fatal("v1 minheap archive should be rejected")
	}
}

func TestVersionBelowRangeRejected(t *testing.T) {
	path := tempPath(t, "v0.json")
	os.WriteFile(path, []byte(`{"version":0,"kind":"lbo-grid","grid":{"Benchmark":"fop"}}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("version 0 should be rejected")
	}
}
