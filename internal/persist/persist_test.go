package persist

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"chopin/internal/lbo"
	"chopin/internal/nominal"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func sampleGrid() *lbo.Grid {
	g := &lbo.Grid{Benchmark: "fop"}
	g.Add(lbo.Measurement{
		Collector: "G1", HeapFactor: 2, HeapMB: 26, Completed: true,
		WallNS: 100, CPUNS: 150, STWWallNS: 10, GCCPUNS: 20,
		WallSamples: []float64{99, 101}, CPUSamples: []float64{149, 151},
	})
	g.Add(lbo.Measurement{Collector: "ZGC", HeapFactor: 1, Completed: false})
	return g
}

func TestGridRoundTrip(t *testing.T) {
	path := tempPath(t, "grid.json")
	if err := SaveGrid(path, sampleGrid()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != "fop" || len(got.Cells) != 2 {
		t.Fatalf("grid = %+v", got)
	}
	if got.Cells[0].WallNS != 100 || len(got.Cells[0].WallSamples) != 2 {
		t.Fatalf("cell lost data: %+v", got.Cells[0])
	}
	// The reloaded grid must still compute overheads.
	ovs, err := got.Overheads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ovs) != 2 || !ovs[0].Completed || ovs[1].Completed {
		t.Fatalf("overheads = %+v", ovs)
	}
}

func TestGeomeanRoundTrip(t *testing.T) {
	path := tempPath(t, "geo.json")
	pts := []lbo.GeomeanPoint{
		{Collector: "Serial", HeapFactor: 2, Wall: 1.5, CPU: 1.2, Benchmarks: 22, Complete: true},
	}
	if err := SaveGeomean(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGeomean(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != pts[0] {
		t.Fatalf("points = %+v", got)
	}
}

func TestCharacterizationRoundTrip(t *testing.T) {
	path := tempPath(t, "char.json")
	c := &nominal.Characterization{
		Workload:  "fop",
		MinHeapMB: 12.5,
		Values:    map[string]float64{"ARA": 3340, "GMD": 12.5},
	}
	if err := SaveCharacterization(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCharacterization(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != "fop" || got.Value("ARA") != 3340 {
		t.Fatalf("characterization = %+v", got)
	}
	if !math.IsNaN(got.Value("XYZ")) {
		t.Fatal("absent metric should be NaN after reload")
	}
}

func TestKindMismatch(t *testing.T) {
	path := tempPath(t, "grid.json")
	if err := SaveGrid(path, sampleGrid()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGeomean(path); err == nil {
		t.Fatal("loading a grid as geomean should fail")
	}
	if _, err := LoadCharacterization(path); err == nil {
		t.Fatal("loading a grid as characterization should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(tempPath(t, "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
	bad := tempPath(t, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed JSON should error")
	}
	wrongVersion := tempPath(t, "v9.json")
	os.WriteFile(wrongVersion, []byte(`{"version":9,"kind":"geomean","geomean":[]}`), 0o644)
	if _, err := Load(wrongVersion); err == nil {
		t.Fatal("future version should error")
	}
	unknownKind := tempPath(t, "kind.json")
	os.WriteFile(unknownKind, []byte(`{"version":1,"kind":"mystery"}`), 0o644)
	if _, err := Load(unknownKind); err == nil {
		t.Fatal("unknown kind should error")
	}
	empty := tempPath(t, "empty.json")
	os.WriteFile(empty, []byte(`{"version":1,"kind":"lbo-grid"}`), 0o644)
	if _, err := Load(empty); err == nil {
		t.Fatal("missing payload should error")
	}
}
