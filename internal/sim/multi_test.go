package sim

import "testing"

// TestNextEventAtMatchesStep: the peek must equal the time the next Step
// actually advances to, across quantum completions and timers, without
// perturbing the engine.
func TestNextEventAtMatchesStep(t *testing.T) {
	e := NewEngine(2, nil)
	th := e.NewThread("w")
	var chain func(n int)
	chain = func(n int) {
		if n > 0 {
			th.Exec(137, func() { chain(n - 1) })
		}
	}
	chain(5)
	e.After(300, func() {})
	e.After(990, func() {})

	for {
		at, ok := e.NextEventAt()
		// A second peek must agree: peeking is side-effect-free.
		at2, ok2 := e.NextEventAt()
		if at != at2 || ok != ok2 {
			t.Fatalf("peek not idempotent: (%v,%v) then (%v,%v)", at, ok, at2, ok2)
		}
		if !ok {
			if e.Step() {
				t.Fatal("peek said quiescent but Step advanced")
			}
			break
		}
		if !e.Step() {
			t.Fatalf("peek said %v but engine was quiescent", at)
		}
		if now := e.NowF(); now != at {
			t.Fatalf("stepped to %v, peek promised %v", now, at)
		}
	}
}

// TestNextEventAtQuiescent: a fresh engine has no next event.
func TestNextEventAtQuiescent(t *testing.T) {
	e := NewEngine(1, nil)
	if at, ok := e.NextEventAt(); ok {
		t.Fatalf("idle engine peeked %v", at)
	}
}

// TestNextEventAtCancelledTimer: a cancelled timer at the heap top must not
// surface as the next event.
func TestNextEventAtCancelledTimer(t *testing.T) {
	e := NewEngine(1, nil)
	tm := e.After(100, func() { t.Fatal("cancelled timer fired") })
	e.After(250, func() {})
	tm.Cancel()
	at, ok := e.NextEventAt()
	if !ok || at != 250 {
		t.Fatalf("peek = (%v, %v), want (250, true)", at, ok)
	}
}

// TestClusterInterleavesInTimeOrder: cluster steps advance engines in global
// event-time order with ties to the lowest index, and every engine's clock
// stays at or before the last step's time.
func TestClusterInterleavesInTimeOrder(t *testing.T) {
	a, b, c := NewEngine(1, nil), NewEngine(1, nil), NewEngine(1, nil)
	var fired []int
	// a: events at 100, 300; b: 200, 400; c: 100 (ties with a's first —
	// lowest index wins, so a fires before c).
	a.After(100, func() { fired = append(fired, 0) })
	a.After(300, func() { fired = append(fired, 0) })
	b.After(200, func() { fired = append(fired, 1) })
	b.After(400, func() { fired = append(fired, 1) })
	c.After(100, func() { fired = append(fired, 2) })

	cl := NewCluster(a, b, c)
	if cl.Len() != 3 || cl.Engine(1) != b {
		t.Fatal("cluster accessors broken")
	}
	prev := 0.0
	for {
		idx, at, ok := cl.Peek()
		if !ok {
			break
		}
		if at < prev {
			t.Fatalf("cluster time went backwards: %v after %v", at, prev)
		}
		prev = at
		sidx, sok := cl.Step()
		if !sok || sidx != idx {
			t.Fatalf("Step advanced engine %d, Peek promised %d", sidx, idx)
		}
		for i := 0; i < cl.Len(); i++ {
			if now := cl.Engine(i).NowF(); now > at {
				t.Fatalf("engine %d clock %v ran past step time %v", i, now, at)
			}
		}
	}
	want := []int{0, 2, 1, 0, 1}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v (tie must break to lowest index)", fired, want)
		}
	}
	if idx, ok := cl.Step(); ok || idx != -1 {
		t.Fatalf("drained cluster stepped engine %d", idx)
	}
}

// TestClusterInjectBeforeStep: work injected at time t before the cluster
// steps past t gets an exact deadline — the invariant the fleet driver's
// injection discipline relies on.
func TestClusterInjectBeforeStep(t *testing.T) {
	a, b := NewEngine(1, nil), NewEngine(1, nil)
	a.After(500, func() {})
	b.After(800, func() {})
	cl := NewCluster(a, b)

	_, at, ok := cl.Peek()
	if !ok || at != 500 {
		t.Fatalf("peek = (%v, %v), want (500, true)", at, ok)
	}
	// 450 <= global min next event, so either engine can take it exactly.
	var firedAt float64
	b.At(450, func() { firedAt = b.NowF() })
	for {
		if _, ok := cl.Step(); !ok {
			break
		}
	}
	if firedAt != 450 {
		t.Fatalf("injected timer fired at %v, want exactly 450", firedAt)
	}
}
