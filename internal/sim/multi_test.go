package sim

import "testing"

// TestNextEventAtMatchesStep: the peek must equal the time the next Step
// actually advances to, across quantum completions and timers, without
// perturbing the engine.
func TestNextEventAtMatchesStep(t *testing.T) {
	e := NewEngine(2, nil)
	th := e.NewThread("w")
	var chain func(n int)
	chain = func(n int) {
		if n > 0 {
			th.Exec(137, func() { chain(n - 1) })
		}
	}
	chain(5)
	e.After(300, func() {})
	e.After(990, func() {})

	for {
		at, ok := e.NextEventAt()
		// A second peek must agree: peeking is side-effect-free.
		at2, ok2 := e.NextEventAt()
		if at != at2 || ok != ok2 {
			t.Fatalf("peek not idempotent: (%v,%v) then (%v,%v)", at, ok, at2, ok2)
		}
		if !ok {
			if e.Step() {
				t.Fatal("peek said quiescent but Step advanced")
			}
			break
		}
		if !e.Step() {
			t.Fatalf("peek said %v but engine was quiescent", at)
		}
		if now := e.NowF(); now != at {
			t.Fatalf("stepped to %v, peek promised %v", now, at)
		}
	}
}

// TestNextEventAtQuiescent: a fresh engine has no next event.
func TestNextEventAtQuiescent(t *testing.T) {
	e := NewEngine(1, nil)
	if at, ok := e.NextEventAt(); ok {
		t.Fatalf("idle engine peeked %v", at)
	}
}

// TestNextEventAtCancelledTimer: a cancelled timer at the heap top must not
// surface as the next event.
func TestNextEventAtCancelledTimer(t *testing.T) {
	e := NewEngine(1, nil)
	tm := e.After(100, func() { t.Fatal("cancelled timer fired") })
	e.After(250, func() {})
	tm.Cancel()
	at, ok := e.NextEventAt()
	if !ok || at != 250 {
		t.Fatalf("peek = (%v, %v), want (250, true)", at, ok)
	}
}

// TestClusterInterleavesInTimeOrder: cluster steps advance engines in global
// event-time order with ties to the lowest index, and every engine's clock
// stays at or before the last step's time.
func TestClusterInterleavesInTimeOrder(t *testing.T) {
	a, b, c := NewEngine(1, nil), NewEngine(1, nil), NewEngine(1, nil)
	var fired []int
	// a: events at 100, 300; b: 200, 400; c: 100 (ties with a's first —
	// lowest index wins, so a fires before c).
	a.After(100, func() { fired = append(fired, 0) })
	a.After(300, func() { fired = append(fired, 0) })
	b.After(200, func() { fired = append(fired, 1) })
	b.After(400, func() { fired = append(fired, 1) })
	c.After(100, func() { fired = append(fired, 2) })

	cl := NewCluster(a, b, c)
	if cl.Len() != 3 || cl.Engine(1) != b {
		t.Fatal("cluster accessors broken")
	}
	prev := 0.0
	for {
		idx, at, ok := cl.Peek()
		if !ok {
			break
		}
		if at < prev {
			t.Fatalf("cluster time went backwards: %v after %v", at, prev)
		}
		prev = at
		sidx, sok := cl.Step()
		if !sok || sidx != idx {
			t.Fatalf("Step advanced engine %d, Peek promised %d", sidx, idx)
		}
		for i := 0; i < cl.Len(); i++ {
			if now := cl.Engine(i).NowF(); now > at {
				t.Fatalf("engine %d clock %v ran past step time %v", i, now, at)
			}
		}
	}
	want := []int{0, 2, 1, 0, 1}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v (tie must break to lowest index)", fired, want)
		}
	}
	if idx, ok := cl.Step(); ok || idx != -1 {
		t.Fatalf("drained cluster stepped engine %d", idx)
	}
}

// TestClusterInjectBeforeStep: work injected at time t before the cluster
// steps past t gets an exact deadline — the invariant the fleet driver's
// injection discipline relies on.
func TestClusterInjectBeforeStep(t *testing.T) {
	a, b := NewEngine(1, nil), NewEngine(1, nil)
	a.After(500, func() {})
	b.After(800, func() {})
	cl := NewCluster(a, b)

	_, at, ok := cl.Peek()
	if !ok || at != 500 {
		t.Fatalf("peek = (%v, %v), want (500, true)", at, ok)
	}
	// 450 <= global min next event, so either engine can take it exactly.
	var firedAt float64
	b.At(450, func() { firedAt = b.NowF() })
	for {
		if _, ok := cl.Step(); !ok {
			break
		}
	}
	if firedAt != 450 {
		t.Fatalf("injected timer fired at %v, want exactly 450", firedAt)
	}
}

// stepRec is one cluster step for the differential trace: which engine
// advanced, to what time.
type stepRec struct {
	idx int
	at  float64
}

// buildClusterEngines constructs n engines with seeded schedules. With
// collide set, every engine draws from the same stream, so their schedules —
// and therefore their next-event times — are identical, forcing an exact
// cross-engine tie at every step.
func buildClusterEngines(seed uint64, n int, collide bool) []*Engine {
	engines := make([]*Engine, n)
	for i := 0; i < n; i++ {
		s := seed
		if !collide {
			s = seed + uint64(i)*0x9e3779b97f4a7c15
		}
		rng := NewRNG(s)
		e := NewEngine(2, nil)
		for w := 0; w < 2; w++ {
			th := e.NewThread("w")
			var chain func(d int)
			chain = func(d int) {
				if d > 0 {
					th.Exec(float64(50+rng.Uint64()%200), func() { chain(d - 1) })
				}
			}
			chain(3 + int(rng.Uint64()%5))
		}
		for t := 0; t < 4; t++ {
			e.After(float64(100+rng.Uint64()%1000), func() {})
		}
		engines[i] = e
	}
	return engines
}

// driveCluster runs the cluster dry, recording every step, and keeps it alive
// with periodic injections — including into engines that have already gone
// quiescent, the wake path the event heap must not lose.
func driveCluster(t *testing.T, cl *Cluster, engines []*Engine, seed uint64) []stepRec {
	t.Helper()
	irng := NewRNG(seed ^ 0x5bf03635)
	var recs []stepRec
	pending := 24
	for {
		idx, at, ok := cl.Peek()
		if !ok {
			if pending == 0 {
				break
			}
			// Whole cluster quiescent: wake a random engine with a timer in
			// the global future (every clock is ≤ the last step time).
			j := int(irng.Uint64() % uint64(len(engines)))
			var tmax float64
			for _, e := range engines {
				if e.NowF() > tmax {
					tmax = e.NowF()
				}
			}
			engines[j].At(tmax+float64(10+irng.Uint64()%100), func() {})
			pending--
			continue
		}
		recs = append(recs, stepRec{idx, at})
		if _, ok := cl.Step(); !ok {
			t.Fatal("Peek promised an event but Step found none")
		}
		if len(recs)%7 == 0 && pending > 0 {
			// Mid-run injection at the current global time, exercising the
			// inject-before-step discipline on a possibly-lagging engine.
			j := int(irng.Uint64() % uint64(len(engines)))
			engines[j].At(at+float64(irng.Uint64()%50), func() {})
			pending--
		}
		if len(recs) > 100000 {
			t.Fatal("cluster failed to drain")
		}
	}
	return recs
}

// TestClusterDifferential: the heap-indexed cluster and the linear reference
// cluster must produce byte-identical step sequences over identical engine
// sets — including schedules built to collide exactly across engines, where
// the (time, index) tie rule is the only thing fixing the order.
func TestClusterDifferential(t *testing.T) {
	for _, collide := range []bool{false, true} {
		for seed := uint64(1); seed <= 12; seed++ {
			for _, n := range []int{1, 2, 5, 16} {
				fast := buildClusterEngines(seed, n, collide)
				ref := buildClusterEngines(seed, n, collide)
				got := driveCluster(t, NewCluster(fast...), fast, seed)
				want := driveCluster(t, NewReferenceCluster(ref...), ref, seed)
				if len(got) != len(want) {
					t.Fatalf("collide=%v seed=%d n=%d: heap cluster took %d steps, reference %d",
						collide, seed, n, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("collide=%v seed=%d n=%d: step %d diverged: heap %+v, reference %+v",
							collide, seed, n, i, got[i], want[i])
					}
				}
				if collide && n > 1 {
					// With identical schedules the first steps are the same
					// event on every engine: the tie must resolve 0,1,2,...
					// (only the pre-injection prefix is this predictable; the
					// first mid-run injection lands after step 7).
					for i := 0; i < n && i < 7; i++ {
						if got[i].idx != i {
							t.Fatalf("seed=%d n=%d: colliding step %d went to engine %d, want %d (lowest index first)",
								seed, n, i, got[i].idx, i)
						}
					}
				}
			}
		}
	}
}

// TestClusterWakesQuiescentEngine: an engine that drained to quiescence and
// lost its heap entry must resurface when a timer is armed on it — the
// injection path the fleet driver depends on.
func TestClusterWakesQuiescentEngine(t *testing.T) {
	a, b := NewEngine(1, nil), NewEngine(1, nil)
	a.After(100, func() {})
	cl := NewCluster(a, b)
	for {
		if _, ok := cl.Step(); !ok {
			break
		}
	}
	if _, _, ok := cl.Peek(); ok {
		t.Fatal("drained cluster still peeks an event")
	}
	fired := false
	b.At(250, func() { fired = true })
	idx, at, ok := cl.Peek()
	if !ok || idx != 1 || at != 250 {
		t.Fatalf("woken cluster peek = (%d, %v, %v), want (1, 250, true)", idx, at, ok)
	}
	if _, ok := cl.Step(); !ok || !fired {
		t.Fatalf("woken engine did not step (fired=%v)", fired)
	}
}

// TestClusterDoubleMembershipPanics: an engine registered with one
// heap-indexed cluster cannot join another — its change notifications can
// only target one event heap.
func TestClusterDoubleMembershipPanics(t *testing.T) {
	e := NewEngine(1, nil)
	NewCluster(e)
	defer func() {
		if recover() == nil {
			t.Fatal("second NewCluster over the same engine did not panic")
		}
	}()
	NewCluster(e)
}
