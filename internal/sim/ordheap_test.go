package sim

import (
	"sort"
	"testing"
)

// testEntry exercises ordHeap with the same (primary, seq) shape both real
// entry types use.
type testEntry struct {
	key float64
	seq int64
}

func (a testEntry) lessThan(b testEntry) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func TestOrdHeapPopsInOrder(t *testing.T) {
	var h ordHeap[testEntry]
	rng := NewRNG(21)
	var want []testEntry
	for i := 0; i < 500; i++ {
		e := testEntry{key: float64(rng.Uint64() % 64), seq: int64(i)}
		h.push(e)
		want = append(want, e)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].lessThan(want[j]) })
	for i, w := range want {
		if h.len() != len(want)-i {
			t.Fatalf("len = %d at pop %d", h.len(), i)
		}
		if got := h.peek(); got != w {
			t.Fatalf("peek %d = %+v, want %+v", i, got, w)
		}
		if got := h.pop(); got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not drained: %d left", h.len())
	}
}

func TestOrdHeapInterleavedPushPop(t *testing.T) {
	var h ordHeap[testEntry]
	rng := NewRNG(9)
	seq := int64(0)
	lastKey := -1.0
	for round := 0; round < 200; round++ {
		for i := 0; i < int(rng.Uint64()%8); i++ {
			seq++
			h.push(testEntry{key: lastKey + float64(rng.Uint64()%100), seq: seq})
		}
		for i := 0; i < int(rng.Uint64()%8) && h.len() > 0; i++ {
			e := h.pop()
			if e.key < lastKey {
				t.Fatalf("pop went backwards: %v after %v", e.key, lastKey)
			}
			lastKey = e.key
		}
	}
}

func TestOrdHeapFilter(t *testing.T) {
	var h ordHeap[testEntry]
	for i := 0; i < 300; i++ {
		h.push(testEntry{key: float64((i * 7919) % 1000), seq: int64(i)})
	}
	removed := h.filter(func(e testEntry) bool { return e.seq%3 != 0 })
	if removed != 100 {
		t.Fatalf("removed %d entries, want 100", removed)
	}
	if h.len() != 200 {
		t.Fatalf("len after filter = %d, want 200", h.len())
	}
	prev := testEntry{key: -1}
	for h.len() > 0 {
		e := h.pop()
		if e.seq%3 == 0 {
			t.Fatalf("filtered entry survived: %+v", e)
		}
		if e.lessThan(prev) {
			t.Fatalf("heap order violated after filter: %+v before %+v", prev, e)
		}
		prev = e
	}
}

func TestOrdHeapFilterAll(t *testing.T) {
	var h ordHeap[testEntry]
	for i := 0; i < 50; i++ {
		h.push(testEntry{key: float64(i)})
	}
	if removed := h.filter(func(testEntry) bool { return false }); removed != 50 {
		t.Fatalf("removed %d, want 50", removed)
	}
	if h.len() != 0 {
		t.Fatalf("len = %d, want 0", h.len())
	}
	h.push(testEntry{key: 1})
	if got := h.pop(); got.key != 1 {
		t.Fatalf("heap unusable after full filter: %+v", got)
	}
}
