package sim

import "math"

// Multi-instance stepping.
//
// A fleet simulation runs N independent engines — one per replica, each with
// its own heap, collector and thread population — on one shared virtual
// clock. Nothing in the engines is shared; the Cluster merely interleaves
// their steps in global time order, stepping whichever engine's next event
// is earliest. Because an engine's clock only advances when it is stepped,
// the sequence of step times is non-decreasing and every engine's Now stays
// at or before the time of the last step taken — which is what lets a driver
// inject work (an arriving request) at time t into any engine with exact
// timer deadlines, provided it injects before the cluster steps past t.

// NextEventAt returns the virtual time of the engine's next event — the
// earliest quantum completion or live timer — without advancing anything. It
// reports false when the engine is quiescent. Stale completion entries and
// cancelled timers surfacing at their heap tops are discarded, exactly as
// Step would discard them, so the peek is allocation-free and does not
// perturb the subsequent step.
func (e *Engine) NextEventAt() (float64, bool) {
	run := e.runCount
	if e.naive {
		run = 0
		for _, t := range e.threads {
			if t.state == StateRunnable {
				run++
			}
		}
	}
	if run == 0 {
		at, ok := e.nextTimerAt()
		if !ok {
			return 0, false
		}
		if at < e.now {
			at = e.now
		}
		return at, true
	}

	rate := e.rateFor(run)
	dt := math.Inf(1)
	if e.naive {
		for _, t := range e.threads {
			if t.state != StateRunnable {
				continue
			}
			if d := t.remaining / rate; d < dt {
				dt = d
			}
		}
	} else {
		for e.comp.len() > 0 {
			top := e.comp.peek()
			if top.epoch != top.t.epoch {
				e.comp.pop()
				e.staleComp--
				continue
			}
			dt = (top.finishS - e.vs) / rate
			break
		}
	}
	if math.IsInf(dt, 1) {
		panic("sim: runnable threads without completion entries")
	}
	if at, ok := e.nextTimerAt(); ok {
		if d := at - e.now; d < dt {
			dt = d
		}
	}
	if dt < 0 {
		dt = 0
	}
	return e.now + dt, true
}

// Cluster interleaves the steps of several independent engines in global
// virtual-time order. All engines advance on one logical clock: Step always
// steps the engine whose next event is earliest (ties broken by lowest
// index), so across the whole cluster event times are processed in
// non-decreasing order. The cluster owns no state beyond the engine list;
// engines may still be driven directly between cluster steps (scheduling
// timers, reading clocks).
type Cluster struct {
	engines []*Engine
}

// NewCluster builds a cluster over the given engines. The slice is retained;
// indices into it identify engines in Peek/Step results.
func NewCluster(engines ...*Engine) *Cluster {
	return &Cluster{engines: engines}
}

// Len returns the number of engines in the cluster.
func (c *Cluster) Len() int { return len(c.engines) }

// Engine returns the i-th engine.
func (c *Cluster) Engine(i int) *Engine { return c.engines[i] }

// Peek returns the index and next-event time of the engine the next Step
// would advance: the earliest next event across the cluster, lowest engine
// index on exact ties. ok is false when every engine is quiescent.
func (c *Cluster) Peek() (idx int, at float64, ok bool) {
	idx = -1
	for i, e := range c.engines {
		t, alive := e.NextEventAt()
		if !alive {
			continue
		}
		if idx < 0 || t < at {
			idx, at = i, t
		}
	}
	return idx, at, idx >= 0
}

// Step advances the globally earliest engine by one event and returns its
// index; ok is false (and nothing advances) when the whole cluster is
// quiescent.
func (c *Cluster) Step() (idx int, ok bool) {
	idx, _, ok = c.Peek()
	if !ok {
		return -1, false
	}
	c.engines[idx].Step()
	return idx, true
}
