package sim

import "math"

// Multi-instance stepping.
//
// A fleet simulation runs N independent engines — one per replica, each with
// its own heap, collector and thread population — on one shared virtual
// clock. Nothing in the engines is shared; the Cluster merely interleaves
// their steps in global time order, stepping whichever engine's next event
// is earliest. Because an engine's clock only advances when it is stepped,
// the sequence of step times is non-decreasing and every engine's Now stays
// at or before the time of the last step taken — which is what lets a driver
// inject work (an arriving request) at time t into any engine with exact
// timer deadlines, provided it injects before the cluster steps past t.

// NextEventAt returns the virtual time of the engine's next event — the
// earliest quantum completion or live timer — without advancing anything. It
// reports false when the engine is quiescent. Stale completion entries and
// cancelled timers surfacing at their heap tops are discarded, exactly as
// Step would discard them, so the peek is allocation-free and does not
// perturb the subsequent step.
func (e *Engine) NextEventAt() (float64, bool) {
	run := e.runCount
	if e.naive {
		run = 0
		for _, t := range e.threads {
			if t.state == StateRunnable {
				run++
			}
		}
	}
	if run == 0 {
		at, ok := e.nextTimerAt()
		if !ok {
			return 0, false
		}
		if at < e.now {
			at = e.now
		}
		return at, true
	}

	rate := e.rateFor(run)
	dt := math.Inf(1)
	if e.naive {
		for _, t := range e.threads {
			if t.state != StateRunnable {
				continue
			}
			if d := t.remaining / rate; d < dt {
				dt = d
			}
		}
	} else {
		for e.comp.len() > 0 {
			top := e.comp.peek()
			if top.epoch != top.t.epoch {
				e.comp.pop()
				e.staleComp--
				continue
			}
			dt = (top.finishS - e.vs) / rate
			break
		}
	}
	if math.IsInf(dt, 1) {
		panic("sim: runnable threads without completion entries")
	}
	if at, ok := e.nextTimerAt(); ok {
		if d := at - e.now; d < dt {
			dt = d
		}
	}
	if dt < 0 {
		dt = 0
	}
	return e.now + dt, true
}

// clusterEntry is the event-heap entry for one engine: the engine's next
// event as of generation gen. An entry whose gen lags the engine's current
// generation is stale — superseded by a fresher push — and is discarded when
// it surfaces at the top, exactly like the timer queue's lazy cancellation.
// The key is (time, index), so exact-time ties resolve to the lowest engine
// index, matching the linear reference scan.
type clusterEntry struct {
	at  float64
	idx int32
	gen uint64
}

func (a clusterEntry) lessThan(b clusterEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.idx < b.idx
}

// Cluster interleaves the steps of several independent engines in global
// virtual-time order. All engines advance on one logical clock: Step always
// steps the engine whose next event is earliest (ties broken by lowest
// index), so across the whole cluster event times are processed in
// non-decreasing order. Engines may still be driven directly between cluster
// steps (scheduling timers, injecting work, reading clocks).
//
// NewCluster maintains a min-heap of (next-event time, engine index) entries
// so Peek costs O(log N) amortized instead of the reference scan's O(N):
// every engine state change bumps the engine's generation counter and marks
// it dirty in its cluster, Peek re-derives dirty engines' entries before
// reading the top, and entries stamped with an older generation are popped
// as stale when they surface (or swept in bulk once they outnumber live
// ones). An engine that went quiescent carries no entry; the dirty mark from
// the timer arming that wakes it (e.g. a fleet driver injecting an arrival)
// is what resurfaces it. NewReferenceCluster retains the O(N) scan as the
// differential oracle.
type Cluster struct {
	engines []*Engine
	linear  bool // reference cluster: scan every engine per Peek

	heap     ordHeap[clusterEntry]
	dirty    []int32 // engines whose entry must be re-derived before peeking
	isDirty  []bool
	entryGen []uint64 // generation of engine i's live entry; 0 = none pushed
	stale    int      // superseded entries awaiting lazy discard or sweep
}

// NewCluster builds a heap-indexed cluster over the given engines. The slice
// is retained; indices into it identify engines in Peek/Step results. Each
// engine notifies the cluster of state changes, so an engine may belong to
// at most one heap-indexed cluster at a time (reference clusters do not
// register and are exempt).
func NewCluster(engines ...*Engine) *Cluster {
	c := &Cluster{
		engines:  engines,
		dirty:    make([]int32, 0, len(engines)),
		isDirty:  make([]bool, len(engines)),
		entryGen: make([]uint64, len(engines)),
	}
	// One live entry per engine plus slack for lazily-invalidated stale ones
	// before the bulk sweep: sized here so steady-state stepping never grows
	// the heap.
	c.heap.a = make([]clusterEntry, 0, 2*len(engines))
	for i, e := range engines {
		if e.cl != nil && e.cl != c {
			panic("sim: engine already belongs to another cluster")
		}
		e.cl, e.clIdx = c, int32(i)
		c.markDirty(int32(i))
	}
	return c
}

// NewReferenceCluster builds a cluster that re-derives every engine's next
// event on every Peek — the O(N) scan the event heap replaced, retained as
// the differential oracle. Its step sequence is byte-identical to
// NewCluster's over the same engines.
func NewReferenceCluster(engines ...*Engine) *Cluster {
	return &Cluster{engines: engines, linear: true}
}

// Len returns the number of engines in the cluster.
func (c *Cluster) Len() int { return len(c.engines) }

// Engine returns the i-th engine.
func (c *Cluster) Engine(i int) *Engine { return c.engines[i] }

// markDirty queues engine i for re-derivation at the next Peek. Duplicate
// marks between peeks collapse, so a step that bumps the generation many
// times (timer fires, thread transitions) costs one queue slot.
func (c *Cluster) markDirty(i int32) {
	if c.isDirty[i] {
		return
	}
	c.isDirty[i] = true
	c.dirty = append(c.dirty, i)
}

// refresh re-derives the next-event entries of every dirty engine.
func (c *Cluster) refresh() {
	for len(c.dirty) > 0 {
		i := c.dirty[len(c.dirty)-1]
		c.dirty = c.dirty[:len(c.dirty)-1]
		c.isDirty[i] = false
		e := c.engines[i]
		if c.entryGen[i] != 0 {
			// The previous entry for this engine is now superseded.
			c.stale++
		}
		if at, alive := e.NextEventAt(); alive {
			c.heap.push(clusterEntry{at: at, idx: i, gen: e.gen})
			c.entryGen[i] = e.gen
		} else {
			c.entryGen[i] = 0
		}
	}
	// Sweep superseded entries in bulk once they outnumber live ones, so an
	// engine whose next event keeps moving earlier cannot bury the heap in
	// stale entries that never surface.
	if c.heap.len() >= 64 && c.stale*2 > c.heap.len() {
		c.heap.filter(func(en clusterEntry) bool {
			return en.gen == c.engines[en.idx].gen && en.gen == c.entryGen[en.idx]
		})
		c.stale = 0
	}
}

// Peek returns the index and next-event time of the engine the next Step
// would advance: the earliest next event across the cluster, lowest engine
// index on exact ties. ok is false when every engine is quiescent.
func (c *Cluster) Peek() (idx int, at float64, ok bool) {
	if c.linear {
		idx = -1
		for i, e := range c.engines {
			t, alive := e.NextEventAt()
			if !alive {
				continue
			}
			if idx < 0 || t < at {
				idx, at = i, t
			}
		}
		return idx, at, idx >= 0
	}
	c.refresh()
	for c.heap.len() > 0 {
		top := c.heap.peek()
		if top.gen != c.engines[top.idx].gen {
			// Superseded: a fresher entry (or none, if the engine went
			// quiescent) was pushed by a later refresh.
			c.heap.pop()
			c.stale--
			continue
		}
		return int(top.idx), top.at, true
	}
	return -1, 0, false
}

// Step advances the globally earliest engine by one event and returns its
// index; ok is false (and nothing advances) when the whole cluster is
// quiescent.
func (c *Cluster) Step() (idx int, ok bool) {
	idx, _, ok = c.Peek()
	if !ok {
		return -1, false
	}
	c.engines[idx].Step()
	return idx, true
}
