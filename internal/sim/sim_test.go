package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSingleThreadRunsInRealTime(t *testing.T) {
	e := NewEngine(4, nil)
	th := e.NewThread("worker")
	done := false
	th.Exec(1000, func() { done = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("quantum completion callback did not run")
	}
	if got := e.Now(); got != 1000 {
		t.Fatalf("wall clock = %d, want 1000", got)
	}
	if got := th.CPU(); !almostEqual(got, 1000, 1e-6) {
		t.Fatalf("cpu = %v, want 1000", got)
	}
}

func TestProcessorSharingTwoThreadsOneCPU(t *testing.T) {
	// Two equal threads on one hardware thread: each runs at rate 1/2, so
	// both finish at t=2000 and each accrues 1000 CPU ns.
	e := NewEngine(1, nil)
	a := e.NewThread("a")
	b := e.NewThread("b")
	var ta, tb Time
	a.Exec(1000, func() { ta = e.Now() })
	b.Exec(1000, func() { tb = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ta != 2000 || tb != 2000 {
		t.Fatalf("completion times = %d, %d, want 2000, 2000", ta, tb)
	}
	if got := e.TaskClock(); !almostEqual(got, 2000, 1e-6) {
		t.Fatalf("task clock = %v, want 2000", got)
	}
}

func TestProcessorSharingStaggeredWork(t *testing.T) {
	// One CPU; thread a needs 100, thread b needs 300.
	// Phase 1: both runnable, rate 1/2; a finishes at t=200 having run 100.
	// Phase 2: b alone at rate 1, 200 CPU ns left, finishes at t=400.
	e := NewEngine(1, nil)
	a := e.NewThread("a")
	b := e.NewThread("b")
	var ta, tb Time
	a.Exec(100, func() { ta = e.Now() })
	b.Exec(300, func() { tb = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ta != 200 {
		t.Fatalf("a completed at %d, want 200", ta)
	}
	if tb != 400 {
		t.Fatalf("b completed at %d, want 400", tb)
	}
}

func TestMoreCPUsThanThreads(t *testing.T) {
	// Plenty of hardware: no sharing, everything runs at full speed.
	e := NewEngine(8, nil)
	var ends []Time
	for i := 0; i < 3; i++ {
		th := e.NewThread("w")
		th.Exec(500, func() { ends = append(ends, e.Now()) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, at := range ends {
		if at != 500 {
			t.Fatalf("completion at %d, want 500", at)
		}
	}
	if got := e.TaskClock(); !almostEqual(got, 1500, 1e-6) {
		t.Fatalf("task clock = %v, want 1500", got)
	}
}

func TestCustomCapacityFunction(t *testing.T) {
	// An SMT-style machine: 2 "cores", second pair of threads adds only 50%.
	capFn := func(n int) float64 {
		switch {
		case n <= 2:
			return float64(n)
		case n <= 4:
			return 2 + 0.5*float64(n-2)
		default:
			return 3
		}
	}
	e := NewEngine(4, capFn)
	for i := 0; i < 4; i++ {
		e.NewThread("w").Exec(300, nil)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 threads, capacity 3, per-thread rate 3/4: wall = 300/(3/4) = 400.
	if got := e.Now(); got != 400 {
		t.Fatalf("wall = %d, want 400", got)
	}
	if got := e.TaskClock(); !almostEqual(got, 1200, 1e-3) {
		t.Fatalf("task clock = %v, want 1200", got)
	}
}

func TestTimersFireInOrder(t *testing.T) {
	e := NewEngine(1, nil)
	var order []int
	e.After(300, func() { order = append(order, 3) })
	e.After(100, func() { order = append(order, 1) })
	e.After(200, func() { order = append(order, 2) })
	e.After(100, func() { order = append(order, 11) }) // same time: creation order
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if e.Now() != 300 {
		t.Fatalf("final time %d, want 300", e.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1, nil)
	fired := false
	tm := e.After(100, func() { fired = true })
	tm.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerDuringIdleMachine(t *testing.T) {
	// No runnable threads: the clock must jump to the timer.
	e := NewEngine(2, nil)
	th := e.NewThread("late")
	e.After(5000, func() { th.Exec(100, nil) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Now(); got != 5100 {
		t.Fatalf("final time %d, want 5100", got)
	}
}

func TestBlockPreservesRemainingWork(t *testing.T) {
	// Thread runs 1000ns of work; at t=400 it is blocked for 600ns.
	// It should finish at 400 + 600 + 600 = 1600 with exactly 1000 CPU ns.
	e := NewEngine(1, nil)
	th := e.NewThread("w")
	var end Time
	th.Exec(1000, func() { end = e.Now() })
	e.After(400, func() {
		th.Block()
		e.After(600, th.Unblock)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 1600 {
		t.Fatalf("end = %d, want 1600", end)
	}
	if got := th.CPU(); !almostEqual(got, 1000, 1e-6) {
		t.Fatalf("cpu = %v, want 1000", got)
	}
	if got := th.BlockedTime(); !almostEqual(got, 600, 1e-6) {
		t.Fatalf("blocked = %v, want 600", got)
	}
}

func TestBlockIdleThreadDefersExec(t *testing.T) {
	e := NewEngine(1, nil)
	th := e.NewThread("w")
	th.Block() // idle -> blocked
	e.After(100, th.Unblock)
	ran := false
	other := e.NewThread("driver")
	other.Exec(10, func() {
		if th.State() != StateBlocked {
			t.Errorf("state = %v, want blocked", th.State())
		}
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("driver did not run")
	}
	if th.State() != StateIdle {
		t.Fatalf("state after unblock = %v, want idle", th.State())
	}
}

func TestChainedQuanta(t *testing.T) {
	// A thread re-Execing itself from its completion callback models a worker
	// loop; 10 quanta of 100ns on an idle machine take exactly 1000ns.
	e := NewEngine(2, nil)
	th := e.NewThread("loop")
	count := 0
	var step func()
	step = func() {
		count++
		if count < 10 {
			th.Exec(100, step)
		}
	}
	th.Exec(100, step)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 1000 {
		t.Fatalf("time = %d, want 1000", e.Now())
	}
}

func TestFinishAbandonsQuantum(t *testing.T) {
	e := NewEngine(1, nil)
	th := e.NewThread("w")
	fired := false
	th.Exec(1e9, func() { fired = true })
	e.After(100, th.Finish)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("abandoned quantum's callback fired")
	}
	if th.State() != StateDone {
		t.Fatalf("state = %v, want done", th.State())
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine(1, nil)
	th := e.NewThread("spin")
	var spin func()
	spin = func() { th.Exec(10, spin) }
	th.Exec(10, spin)
	e.SetEventLimit(50)
	if err := e.Run(); err == nil {
		t.Fatal("expected event-limit error")
	}
}

func TestKernelFractionAccounting(t *testing.T) {
	e := NewEngine(1, nil)
	th := e.NewThread("sys")
	th.SetKernelFraction(0.25)
	th.Exec(1000, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := th.KernelCPU(); !almostEqual(got, 250, 1e-6) {
		t.Fatalf("kernel cpu = %v, want 250", got)
	}
}

func TestMinimumQuantum(t *testing.T) {
	e := NewEngine(1, nil)
	th := e.NewThread("w")
	th.Exec(0, nil) // rounds up to 1ns rather than looping forever
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() < 1 {
		t.Fatalf("time = %d, want >= 1", e.Now())
	}
}

// Property: for any mix of quanta on any machine size, task clock never
// exceeds wall * HW, and equals total submitted work.
func TestQuickTaskClockConservation(t *testing.T) {
	f := func(hwRaw uint8, workRaw []uint16) bool {
		hw := int(hwRaw%8) + 1
		if len(workRaw) == 0 || len(workRaw) > 24 {
			return true
		}
		e := NewEngine(hw, nil)
		var total float64
		for _, w := range workRaw {
			work := float64(w%5000) + 1
			total += work
			e.NewThread("w").Exec(work, nil)
		}
		if err := e.Run(); err != nil {
			return false
		}
		task := e.TaskClock()
		wall := float64(e.Now())
		if !almostEqual(task, total, 1e-3*float64(len(workRaw))) {
			return false
		}
		return task <= wall*float64(hw)+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: wall clock is at least total work / HW (machine can't run faster
// than its capacity) and at most total work (sharing never loses capacity
// when at least one thread is runnable).
func TestQuickWallClockBounds(t *testing.T) {
	f := func(hwRaw uint8, workRaw []uint16) bool {
		hw := int(hwRaw%8) + 1
		if len(workRaw) == 0 || len(workRaw) > 24 {
			return true
		}
		e := NewEngine(hw, nil)
		var total, maxWork float64
		for _, w := range workRaw {
			work := float64(w%5000) + 1
			total += work
			if work > maxWork {
				maxWork = work
			}
			e.NewThread("w").Exec(work, nil)
		}
		if err := e.Run(); err != nil {
			return false
		}
		wall := float64(e.Now())
		lower := math.Max(total/float64(hw), maxWork)
		return wall >= lower-1 && wall <= total+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	child := a.Split()
	// Parent sequence after a single Split must match a parent that drew one
	// value and discarded it.
	ref := NewRNG(7)
	ref.Uint64()
	for i := 0; i < 100; i++ {
		if a.Uint64() != ref.Uint64() {
			t.Fatal("Split perturbed parent stream beyond one draw")
		}
	}
	_ = child.Uint64()
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGLogNormalMedian(t *testing.T) {
	r := NewRNG(5)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(100, 0.5)
	}
	// Median of a log-normal equals the median parameter.
	lo, hi := 0, 0
	for _, v := range vals {
		if v < 100 {
			lo++
		} else {
			hi++
		}
	}
	ratio := float64(lo) / float64(n)
	if ratio < 0.48 || ratio > 0.52 {
		t.Fatalf("median split = %v, want ~0.5", ratio)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90-1e-9 || v > 110+1e-9 {
			t.Fatalf("jitter out of range: %v", v)
		}
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateIdle: "idle", StateRunnable: "runnable",
		StateBlocked: "blocked", StateDone: "done", State(9): "state(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestSimultaneousCompletionAndBlock(t *testing.T) {
	// Two threads finish quanta at the same instant; the first one's
	// completion callback blocks the second (a STW pause starting exactly
	// then). The second must stay blocked, its completion must still fire,
	// and a later Unblock must return it to idle without panicking.
	e := NewEngine(4, nil)
	a := e.NewThread("a")
	b := e.NewThread("b")
	bCompleted := false
	a.Exec(100, func() {
		if b.State() == StateRunnable {
			b.Block()
		}
	})
	b.Exec(100, func() { bCompleted = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bCompleted {
		t.Fatal("blocked thread's genuine completion was lost")
	}
	if b.State() != StateBlocked {
		t.Fatalf("b state = %v, want blocked", b.State())
	}
	b.Unblock()
	if b.State() != StateIdle {
		t.Fatalf("b state after unblock = %v, want idle", b.State())
	}
}

func TestSimultaneousCompletionAndAbandon(t *testing.T) {
	// The first completion abandons the second thread: its callback is
	// cancelled, matching Abandon's contract.
	e := NewEngine(4, nil)
	a := e.NewThread("a")
	b := e.NewThread("b")
	fired := false
	a.Exec(100, b.Abandon)
	b.Exec(100, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("abandoned thread's callback fired")
	}
	if b.State() != StateIdle {
		t.Fatalf("b state = %v, want idle", b.State())
	}
}

func TestAbandonReleasesBlockedThread(t *testing.T) {
	e := NewEngine(1, nil)
	th := e.NewThread("w")
	th.Exec(1000, nil)
	e.After(100, func() {
		th.Block()
		th.Abandon()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if th.State() != StateIdle {
		t.Fatalf("state = %v, want idle", th.State())
	}
	if th.BlockedTime() < 0 {
		t.Fatal("negative blocked time")
	}
}

func TestEngineAccessors(t *testing.T) {
	e := NewEngine(8, nil)
	if e.HWThreads() != 8 {
		t.Fatalf("HWThreads = %d", e.HWThreads())
	}
	if e.NowF() != 0 {
		t.Fatalf("NowF = %v", e.NowF())
	}
	e.NewThread("w").Exec(100, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Events() == 0 {
		t.Fatal("no events counted")
	}
	if e.NowF() != float64(e.Now()) {
		t.Fatalf("NowF %v != Now %d", e.NowF(), e.Now())
	}
	e.SetEventLimit(-1) // restores unlimited
	e.NewThread("w2").Exec(100, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpFloat64(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestInvalidEngineConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(0, nil)
}

func TestExecOnRunnablePanics(t *testing.T) {
	e := NewEngine(1, nil)
	th := e.NewThread("w")
	th.Exec(100, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	th.Exec(100, nil)
}

func TestUnblockOnRunnablePanics(t *testing.T) {
	e := NewEngine(1, nil)
	th := e.NewThread("w")
	th.Exec(100, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	th.Unblock()
}

func TestKernelFractionValidation(t *testing.T) {
	e := NewEngine(1, nil)
	th := e.NewThread("w")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	th.SetKernelFraction(1.5)
}

func TestThreadsAccessor(t *testing.T) {
	e := NewEngine(2, nil)
	a := e.NewThread("a")
	b := e.NewThread("b")
	ths := e.Threads()
	if len(ths) != 2 || ths[0] != a || ths[1] != b {
		t.Fatalf("Threads() = %v", ths)
	}
	if a.Name() != "a" {
		t.Fatalf("Name() = %q", a.Name())
	}
}
