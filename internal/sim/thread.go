package sim

import "fmt"

// State describes what a thread is doing.
type State uint8

// Thread states.
const (
	StateIdle     State = iota // created or between quanta; consumes nothing
	StateRunnable              // executing a quantum, sharing the CPUs
	StateBlocked               // suspended mid-quantum (e.g. by a STW pause)
	StateDone                  // finished; will never run again
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateRunnable:
		return "runnable"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Thread is a logical thread of execution in the simulated machine: a mutator
// worker, a GC worker, or a background task. Threads execute CPU quanta; the
// engine accounts their CPU time toward the task clock.
//
// Under the fast stepper, accounting is lazy: while a quantum is in flight
// ("active"), cpu and remaining are implied by the engine's service credit
// (cpu + S − startS consumed, finishS − S left) and materialized only when
// the thread leaves the runnable set or an accessor is called. The reference
// stepper keeps both fields eagerly up to date and never sets active.
type Thread struct {
	id         int32
	epoch      uint32 // bumped when leaving the runnable set; stales heap entries
	state      State
	active     bool // fast stepper: quantum in flight, counted in aggregates
	name       string
	eng        *Engine
	remaining  float64 // CPU ns left in the current quantum (stale while active)
	startS     float64 // service credit when the current stint began
	finishS    float64 // service credit at which the current quantum completes
	onDone     func()
	cpu        float64 // materialized CPU ns consumed (see CPU)
	kernelFrac float64 // fraction of this thread's CPU attributed to kernel mode
	blockedAt  float64 // wall time at which the thread last blocked
	blockedNS  float64 // cumulative wall time spent blocked
}

// NewThread registers a new logical thread with the engine. Threads start
// idle.
func (e *Engine) NewThread(name string) *Thread {
	t := &Thread{id: int32(len(e.threads)), name: name, eng: e}
	e.threads = append(e.threads, t)
	return t
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// State returns the thread's current state.
func (t *Thread) State() State { return t.state }

// CPU returns the total CPU nanoseconds this thread has consumed, including
// the in-flight portion of a quantum still executing.
func (t *Thread) CPU() float64 {
	if t.active {
		return t.cpu + (t.eng.vs - t.startS)
	}
	return t.cpu
}

// KernelCPU returns the portion of this thread's CPU time attributed to
// kernel mode, per the fraction set with SetKernelFraction.
func (t *Thread) KernelCPU() float64 { return t.CPU() * t.kernelFrac }

// BlockedTime returns the cumulative wall-clock time this thread has spent in
// StateBlocked.
func (t *Thread) BlockedTime() float64 { return t.blockedNS }

// SetKernelFraction declares what fraction of this thread's CPU time should
// be attributed to kernel mode (PKP accounting). It is a static property of
// the kind of work the thread does, e.g. lock-heavy or I/O-heavy code.
func (t *Thread) SetKernelFraction(f float64) {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("sim: kernel fraction %v out of [0,1]", f))
	}
	t.kernelFrac = f
}

// Exec schedules the thread to consume cpuNS nanoseconds of CPU and then call
// done. The thread must be idle. Quanta shorter than 1ns are rounded up so a
// zero-cost callback chain cannot stall the clock.
func (t *Thread) Exec(cpuNS float64, done func()) {
	if t.state != StateIdle {
		panic(fmt.Sprintf("sim: Exec on %s thread %q", t.state, t.name))
	}
	if cpuNS < 1 {
		cpuNS = 1
	}
	t.remaining = cpuNS
	t.onDone = done
	t.state = StateRunnable
	if !t.eng.naive {
		t.eng.activate(t)
	}
	t.eng.mutated()
}

// releaseQuantum takes an active thread out of the runnable set mid-quantum:
// consumed CPU is materialized, the residual work is captured in remaining,
// and the completion-heap entry is orphaned for lazy discard. A no-op for
// inactive threads (reference stepper, or a quantum whose completion has
// already been collected this event).
func (t *Thread) releaseQuantum() {
	if !t.active {
		return
	}
	e := t.eng
	e.deactivate(t)
	t.remaining = t.finishS - e.vs
	if t.remaining < 0 {
		t.remaining = 0
	}
	e.orphanEntry()
}

// Block suspends a runnable thread mid-quantum, preserving its remaining
// work. Blocking an idle thread pins it idle-blocked so a later Exec must
// wait for Unblock; blocking a blocked or done thread panics.
func (t *Thread) Block() {
	switch t.state {
	case StateRunnable, StateIdle:
		t.releaseQuantum()
		t.state = StateBlocked
		t.blockedAt = t.eng.now
		t.eng.mutated()
	default:
		panic(fmt.Sprintf("sim: Block on %s thread %q", t.state, t.name))
	}
}

// Unblock resumes a blocked thread. If it had remaining quantum work it
// becomes runnable again; otherwise it returns to idle.
func (t *Thread) Unblock() {
	if t.state != StateBlocked {
		panic(fmt.Sprintf("sim: Unblock on %s thread %q", t.state, t.name))
	}
	t.blockedNS += t.eng.now - t.blockedAt
	if t.remaining > 0 {
		t.state = StateRunnable
		if !t.eng.naive {
			t.eng.activate(t)
		}
	} else {
		t.state = StateIdle
	}
	t.eng.mutated()
}

// Abandon discards the thread's current quantum, returning it to idle
// without running the completion callback. CPU already consumed stays
// accounted. It is how a cancelled task (e.g. an aborted concurrent GC
// cycle) releases its worker.
func (t *Thread) Abandon() {
	if t.state == StateDone {
		panic(fmt.Sprintf("sim: Abandon on done thread %q", t.name))
	}
	if t.state == StateBlocked {
		t.blockedNS += t.eng.now - t.blockedAt
	}
	t.releaseQuantum()
	t.state = StateIdle
	t.onDone = nil
	t.remaining = 0
	t.eng.mutated()
}

// Finish marks the thread permanently done. Any in-flight quantum is
// abandoned without its completion callback running; an in-flight blocked
// interval is credited to BlockedTime, as Abandon does.
func (t *Thread) Finish() {
	if t.state == StateBlocked {
		t.blockedNS += t.eng.now - t.blockedAt
	}
	t.releaseQuantum()
	t.state = StateDone
	t.onDone = nil
	t.remaining = 0
	t.eng.mutated()
}

// Threads returns all threads registered with the engine, in creation order.
func (e *Engine) Threads() []*Thread { return e.threads }
