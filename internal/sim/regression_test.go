package sim

import (
	"testing"
)

func enginesUnderTest(t *testing.T, f func(t *testing.T, mk func() *Engine)) {
	t.Helper()
	t.Run("fast", func(t *testing.T) { f(t, func() *Engine { return NewEngine(2, nil) }) })
	t.Run("reference", func(t *testing.T) { f(t, func() *Engine { return NewReferenceEngine(2, nil) }) })
}

// Regression: Finish on a blocked thread used to drop the in-flight blocked
// interval — blockedNS was never credited, though Abandon credited it.
func TestFinishCreditsInFlightBlockedInterval(t *testing.T) {
	enginesUnderTest(t, func(t *testing.T, mk func() *Engine) {
		e := mk()
		th := e.NewThread("w")
		driver := e.NewThread("driver")
		th.Exec(10_000, nil)
		e.After(100, th.Block)
		e.After(400, th.Finish)
		// Keep the clock moving past the Finish so an uncredited interval
		// cannot masquerade as "the run ended at the block".
		driver.Exec(1000, nil)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if th.State() != StateDone {
			t.Fatalf("state = %v, want done", th.State())
		}
		if got := th.BlockedTime(); !almostEqual(got, 300, 1e-6) {
			t.Fatalf("BlockedTime = %v, want 300 (in-flight blocked interval dropped by Finish)", got)
		}
		if got := th.CPU(); !almostEqual(got, 100, 1e-6) {
			t.Fatalf("CPU = %v, want 100", got)
		}
	})
}

// Regression: the timer queue used to retain cancelled timers until popped,
// so schedule-and-cancel loops (pacer re-arming) grew the heap without
// bound. Lazy-cancel compaction must bound it near twice the live count.
func TestCancelledTimersDoNotGrowHeap(t *testing.T) {
	e := NewEngine(1, nil)
	fired := 0
	e.After(1e15, func() { fired++ }) // one live far-future timer
	for i := 0; i < 100_000; i++ {
		tm := e.After(1e12+float64(i), func() { t.Fatal("cancelled timer fired") })
		tm.Cancel()
	}
	if n := e.timers.len(); n > 64 {
		t.Fatalf("timer heap holds %d entries after 100k schedule-and-cancel cycles, want bounded", n)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("live timer fired %d times, want 1", fired)
	}
}

// The timer free list must make steady-state schedule/cancel/fire traffic
// allocation-free.
func TestTimerFreeListRecyclesNodes(t *testing.T) {
	e := NewEngine(1, nil)
	nop := func() {}
	// Warm the heap slice and free list.
	for i := 0; i < 1000; i++ {
		e.After(float64(i), nop).Cancel()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		e.After(1e9, nop).Cancel()
	})
	if allocs > 0 {
		t.Fatalf("schedule-and-cancel allocates %v objects per op, want 0", allocs)
	}
}

// A handle whose timer already fired must stay inert even after its node is
// recycled for a new timer: Cancel on it must not cancel the new arming.
func TestStaleTimerHandleCannotCancelRecycledNode(t *testing.T) {
	e := NewEngine(1, nil)
	var stale Timer
	stale = e.After(10, func() {})
	if err := e.Run(); err != nil { // fires; node goes to the free list
		t.Fatal(err)
	}
	fired := false
	fresh := e.After(10, func() { fired = true }) // recycles the node
	if fresh.n != stale.n {
		t.Skip("free list did not recycle the node; invariant untestable here")
	}
	stale.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale handle's Cancel killed a recycled timer")
	}
}

// Block/unblock churn orphans completion-heap entries; compaction must keep
// the heap proportional to the live runnable set.
func TestOrphanedCompletionsAreCompacted(t *testing.T) {
	e := NewEngine(4, nil)
	th := e.NewThread("w")
	driver := e.NewThread("driver")
	th.Exec(1e12, nil)
	cycles := 0
	var churn func()
	churn = func() {
		cycles++
		if cycles >= 50_000 {
			th.Abandon()
			return
		}
		th.Block()
		th.Unblock() // re-activates: pushes a fresh entry, orphaning none live
		driver.Exec(1, churn)
	}
	driver.Exec(1, churn)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n := e.comp.len(); n > 64 {
		t.Fatalf("completion heap holds %d entries after 50k block/unblock cycles, want bounded", n)
	}
}

// TaskClock must agree with the per-thread sum at arbitrary mid-run points,
// not just at quiescence — the O(1) aggregate and the lazy per-thread
// accessors are two views of the same state.
func TestTaskClockMatchesPerThreadSumMidRun(t *testing.T) {
	e := NewEngine(2, nil)
	var ths []*Thread
	for i := 0; i < 5; i++ {
		th := e.NewThread("w")
		th.Exec(float64(1000+300*i), nil)
		ths = append(ths, th)
	}
	checks := 0
	for at := 100.0; at < 3000; at += 137 {
		e.After(at, func() {
			var sum float64
			for _, th := range ths {
				sum += th.CPU()
			}
			if !almostEqual(sum, e.TaskClock(), 1e-6) {
				t.Errorf("at t=%v: ΣCPU = %v but TaskClock = %v", e.NowF(), sum, e.TaskClock())
			}
			checks++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if checks == 0 {
		t.Fatal("no mid-run checks executed")
	}
}

// The capacity function is memoized per runnable count; the engine must
// still reject invalid capacities the first time a count is seen.
func TestInvalidCapacityStillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity > n")
		}
	}()
	e := NewEngine(4, func(n int) float64 { return float64(n) + 1 })
	e.NewThread("w").Exec(100, nil)
	e.Step()
}
