package sim

import (
	"fmt"
	"math"
	"testing"
)

// Differential property test: the virtual-service-time stepper and the naive
// reference stepper are driven through the same seeded randomized schedule of
// Exec / Block / Unblock / Abandon / Finish / timer / cancel traffic, and
// must produce identical event traces and telemetry within timeEps.
//
// The script's only inputs are the RNG stream and engine-visible state
// (State(), Now()); if the two steppers are equivalent, every callback fires
// in the same order, both consume the RNG identically, and the traces match.
// Any semantic divergence compounds instead of hiding.

type propEvent struct {
	kind string // "done", "timer"
	id   int
	at   float64
}

type propResult struct {
	trace   []propEvent
	now     float64
	task    float64
	events  int64
	cpu     []float64
	blocked []float64
	states  []State
}

func runPropScript(seed uint64, reference bool) propResult {
	rng := NewRNG(seed)
	hw := 1 + int(rng.Uint64()%4)
	var e *Engine
	if reference {
		e = NewReferenceEngine(hw, nil)
	} else {
		e = NewEngine(hw, nil)
	}

	var res propResult
	nW := 2 + int(rng.Uint64()%5)
	ths := make([]*Thread, nW)
	opsLeft := make([]int, nW)
	for i := range ths {
		ths[i] = e.NewThread(fmt.Sprintf("w%d", i))
		opsLeft[i] = 3 + int(rng.Uint64()%12)
	}

	// Each worker chains random quanta until its budget runs out.
	var kick func(i int)
	kick = func(i int) {
		if opsLeft[i] <= 0 || ths[i].State() != StateIdle {
			return
		}
		opsLeft[i]--
		work := 1 + float64(rng.Uint64()%1500)
		ths[i].Exec(work, func() {
			res.trace = append(res.trace, propEvent{"done", i, e.NowF()})
			kick(i)
		})
	}

	// Meddler timers perturb the workers: STW-style block/unblock pairs,
	// abandons, finishes, extra work injection, and cancellation games.
	nT := 4 + int(rng.Uint64()%10)
	for j := 0; j < nT; j++ {
		j := j
		at := float64(1 + rng.Uint64()%4000)
		tgt := ths[int(rng.Uint64()%uint64(nW))]
		switch rng.Uint64() % 6 {
		case 0, 1: // pause the target for a while
			delay := float64(1 + rng.Uint64()%800)
			e.After(at, func() {
				res.trace = append(res.trace, propEvent{"timer", j, e.NowF()})
				if s := tgt.State(); s == StateRunnable || s == StateIdle {
					tgt.Block()
					e.After(delay, func() {
						if tgt.State() == StateBlocked {
							tgt.Unblock()
						}
					})
				}
			})
		case 2: // abandon the target's quantum
			e.After(at, func() {
				res.trace = append(res.trace, propEvent{"timer", j, e.NowF()})
				if tgt.State() != StateDone {
					tgt.Abandon()
				}
			})
		case 3: // retire the target (possibly mid-block: the Finish bugfix path)
			e.After(at, func() {
				res.trace = append(res.trace, propEvent{"timer", j, e.NowF()})
				if tgt.State() != StateDone {
					tgt.Finish()
				}
			})
		case 4: // cancellation: the cancel may land before or after the fire
			tm := e.After(at, func() {
				res.trace = append(res.trace, propEvent{"timer", j, e.NowF()})
			})
			e.After(float64(1+rng.Uint64()%6000), tm.Cancel)
		case 5: // inject extra work into an idle target
			e.After(at, func() {
				res.trace = append(res.trace, propEvent{"timer", j, e.NowF()})
				if tgt.State() == StateIdle {
					opsLeft[idOf(ths, tgt)] += 2
					kick(idOf(ths, tgt))
				}
			})
		}
	}

	for i := range ths {
		kick(i)
	}
	if err := e.Run(); err != nil {
		panic(err)
	}

	res.now = e.NowF()
	res.task = e.TaskClock()
	res.events = e.Events()
	for _, t := range ths {
		res.cpu = append(res.cpu, t.CPU())
		res.blocked = append(res.blocked, t.BlockedTime())
		res.states = append(res.states, t.State())
	}
	return res
}

func idOf(ths []*Thread, t *Thread) int {
	for i := range ths {
		if ths[i] == t {
			return i
		}
	}
	panic("unknown thread")
}

func propClose(a, b float64) bool {
	return math.Abs(a-b) <= timeEps*(1+1e-9*math.Max(math.Abs(a), math.Abs(b)))
}

func TestPropertyFastMatchesReference(t *testing.T) {
	const cases = 1200
	for seed := uint64(0); seed < cases; seed++ {
		fast := runPropScript(seed, false)
		ref := runPropScript(seed, true)

		if len(fast.trace) != len(ref.trace) {
			t.Fatalf("seed %d: trace length %d (fast) vs %d (reference)",
				seed, len(fast.trace), len(ref.trace))
		}
		for k := range fast.trace {
			f, r := fast.trace[k], ref.trace[k]
			if f.kind != r.kind || f.id != r.id || !propClose(f.at, r.at) {
				t.Fatalf("seed %d: trace[%d] = %+v (fast) vs %+v (reference)", seed, k, f, r)
			}
		}
		if !propClose(fast.now, ref.now) {
			t.Fatalf("seed %d: final now %v vs %v", seed, fast.now, ref.now)
		}
		if !propClose(fast.task, ref.task) {
			t.Fatalf("seed %d: task clock %v vs %v", seed, fast.task, ref.task)
		}
		if fast.events != ref.events {
			t.Fatalf("seed %d: events %d vs %d", seed, fast.events, ref.events)
		}
		for i := range fast.cpu {
			if !propClose(fast.cpu[i], ref.cpu[i]) {
				t.Fatalf("seed %d: thread %d cpu %v vs %v", seed, i, fast.cpu[i], ref.cpu[i])
			}
			if !propClose(fast.blocked[i], ref.blocked[i]) {
				t.Fatalf("seed %d: thread %d blocked %v vs %v", seed, i, fast.blocked[i], ref.blocked[i])
			}
			if fast.states[i] != ref.states[i] {
				t.Fatalf("seed %d: thread %d state %v vs %v", seed, i, fast.states[i], ref.states[i])
			}
		}
	}
}
