package sim

import "math"

// The reference stepper: the original O(threads)-per-event scheduler, kept
// as the correctness oracle for the virtual-service-time core. Each step it
// rebuilds the runnable set by scanning all threads, scans again for the
// earliest quantum completion, and eagerly updates every runnable thread's
// cpu/remaining for the segment. It shares the engine's thread states, timer
// queue and callback-dispatch semantics exactly; only the scheduling data
// structure differs. The seeded property test (prop_test.go) drives both
// steppers through randomized schedules and demands identical event traces
// and telemetry, and the engine benchmarks quantify the gap.

// NewReferenceEngine returns an engine identical in semantics to NewEngine
// but driven by the naive O(threads)-per-event stepper with eager per-thread
// accounting. It exists for differential testing and benchmarking; use
// NewEngine everywhere else.
func NewReferenceEngine(hw int, capacity CapacityFunc) *Engine {
	e := NewEngine(hw, capacity)
	e.naive = true
	return e
}

// Reference reports whether this engine uses the naive reference stepper.
func (e *Engine) Reference() bool { return e.naive }

// stepReference is one step of the naive scheduler: O(T) scans plus an
// eager per-thread update, against the fast stepper's O(log T) transitions.
func (e *Engine) stepReference() bool {
	e.runnable = e.runnable[:0]
	for _, t := range e.threads {
		if t.state == StateRunnable {
			e.runnable = append(e.runnable, t)
		}
	}

	if len(e.runnable) == 0 {
		at, ok := e.nextTimerAt()
		if !ok {
			return false
		}
		// Idle machine: jump straight to the next timer.
		if at > e.now {
			e.now = at
		}
		if e.now >= e.nextSample {
			e.crossSamples()
		}
		e.fireTimers()
		e.mutated()
		e.events++
		return true
	}

	rate := e.rateFor(len(e.runnable))

	// Earliest quantum completion under the current sharing rate.
	dt := math.Inf(1)
	for _, t := range e.runnable {
		if d := t.remaining / rate; d < dt {
			dt = d
		}
	}
	// Earliest timer.
	if at, ok := e.nextTimerAt(); ok {
		if d := at - e.now; d < dt {
			dt = d
		}
	}
	if dt < 0 {
		dt = 0
	}

	// Advance the segment, eagerly crediting every runnable thread (sampling
	// fires at the same point as the fast stepper, keeping the differential
	// oracle's event stream identical).
	e.now += dt
	if e.now >= e.nextSample {
		e.crossSamples()
	}
	progress := dt * rate
	e.finished = e.finished[:0]
	for _, t := range e.runnable {
		t.cpu += progress
		t.remaining -= progress
		if t.remaining <= timeEps {
			t.remaining = 0
			e.finished = append(e.finished, t)
		}
	}

	// Dispatch quantum completions (deterministic thread-creation order),
	// then timers due at or before the new now, under the same callback
	// semantics as the fast stepper (see Step).
	for _, t := range e.finished {
		if t.state == StateRunnable {
			t.state = StateIdle
		}
		done := t.onDone
		t.onDone = nil
		if done != nil {
			done()
		}
	}
	e.fireTimers()
	e.mutated()
	e.events++
	return true
}
