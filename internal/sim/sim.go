// Package sim implements the discrete-event simulation substrate on which
// the whole system runs.
//
// The model is an exact continuous processor-sharing simulation: a virtual
// machine with a fixed number of hardware threads executes a set of logical
// threads. Whenever n threads are runnable, the machine delivers an aggregate
// capacity C(n) (by default min(n, HW)), shared equally, so each runnable
// thread progresses at rate C(n)/n CPU-nanoseconds per virtual nanosecond.
// The engine advances time in piecewise-constant segments to the next quantum
// completion or timer expiry; within a segment all rates are constant, so the
// simulation is exact rather than time-stepped.
//
// Two clocks fall out of this, matching the paper's measurement methodology:
//
//   - wall clock: the virtual time elapsed (what a stopwatch sees), and
//   - task clock: the sum of CPU time consumed by every thread (what Linux
//     perf TASK_CLOCK reports), which exposes total computational cost even
//     when work hides on otherwise-idle cores.
//
// # Virtual service time
//
// Because every runnable thread progresses at the same instantaneous rate,
// the engine keeps one cumulative service credit S(t) — the CPU-nanoseconds
// any thread continuously runnable since t=0 would have consumed — and
// advances it segment by segment. A thread entering a quantum with r
// nanoseconds of work at credit S₀ completes exactly when S reaches S₀+r,
// a quantity fixed at entry and independent of later rate changes. A binary
// min-heap keyed on that completion credit therefore gives O(1) next-event
// lookup and O(log T) per state transition, instead of the naive stepper's
// O(T) rescan-and-update per segment. Per-thread cpu/remaining are
// materialized lazily from S deltas only when a thread leaves the runnable
// set (or when read), and the task clock is an O(1) aggregate. The naive
// stepper is retained (NewReferenceEngine) as the correctness oracle; a
// seeded property test drives both through randomized schedules and demands
// identical traces and telemetry.
//
// All state is confined to a single goroutine; the engine is deterministic
// given a seed, which is what lets invocations be replayed and confidence
// intervals be honest.
package sim

import (
	"fmt"
	"math"

	"chopin/internal/obs"
)

// Time is a point in virtual time, in nanoseconds.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Microsecond = 1e3
	Millisecond = 1e6
	Second      = 1e9
)

// CapacityFunc maps the number of runnable threads to the aggregate CPU
// capacity delivered by the machine, in units of hardware threads. It must
// satisfy 0 < C(n) <= n for n > 0, be non-decreasing in n, and be pure: the
// engine memoizes C(n) per runnable count.
type CapacityFunc func(runnable int) float64

// compEntry is the completion-heap entry for one runnable stint of a thread:
// the thread completes its quantum when the engine's service credit reaches
// finishS. Entries are orphaned (not removed) when a thread leaves the
// runnable set early; the epoch stamp identifies them as stale when they
// surface or when the heap compacts.
type compEntry struct {
	finishS float64
	id      int32
	epoch   uint32
	t       *Thread
}

func (a compEntry) lessThan(b compEntry) bool {
	if a.finishS != b.finishS {
		return a.finishS < b.finishS
	}
	return a.id < b.id
}

// Engine is the discrete-event simulator. The zero value is not usable; call
// NewEngine (or NewReferenceEngine for the naive oracle).
type Engine struct {
	now      float64
	vs       float64 // cumulative virtual service credit S(t)
	hw       int
	capacity CapacityFunc
	rates    []float64 // memoized C(n)/n by runnable count
	threads  []*Thread
	naive    bool // use the O(T)-per-event reference stepper

	// Completion queue (fast stepper only).
	comp      ordHeap[compEntry]
	staleComp int // orphaned entries awaiting lazy discard or compaction

	// Runnable-set aggregates, maintained incrementally on every state
	// transition so Step never rescans threads:
	//   TaskClock = cpuBase + runCount·S − sumStartS
	runCount  int     // |runnable|, counting only quanta still in flight
	sumStartS float64 // Σ startS over active threads
	cpuBase   float64 // Σ materialized cpu over all threads

	// Timer queue (shared by both steppers; see timer.go).
	timers          ordHeap[timerEntry]
	cancelledTimers int
	freeTimer       *timerNode
	timerSeq        int64

	events     int64
	maxEv      int64
	timerFires int64

	// Cluster membership (see multi.go). gen counts state changes that can
	// move the engine's next event: every processed step, thread transition,
	// timer arming and cancellation bumps it, staling any cluster-heap entry
	// carrying an older stamp. cl/clIdx notify the owning cluster so a
	// quiescent engine woken by an injection resurfaces in the event heap.
	gen   uint64
	cl    *Cluster
	clIdx int32

	// Telemetry. recOn caches rec.Enabled() so the per-step cost of disabled
	// telemetry is a plain bool test, not an interface call; the quiescent-
	// point deltas are relative to the previous quiescent event.
	rec    obs.Recorder
	recOn  bool
	lastQT float64
	lastQE int64
	lastQF int64

	// Continuous-sampling hook (SetSampler): when armed, the stepper calls
	// onSample at every crossed multiple of sampleEvery virtual nanoseconds.
	// Disarmed, nextSample is +Inf and the per-step cost is one float
	// compare — the hot path stays allocation-free and within the engine
	// benchmark budget.
	sampleEvery float64
	nextSample  float64
	onSample    func(tNS float64)

	// scratch buffers reused across steps to avoid per-step allocation.
	batch    []*Thread // fast stepper: threads completing this segment
	runnable []*Thread // reference stepper: runnable-set rescan
	finished []*Thread // reference stepper: completions this segment
}

// NewEngine returns an engine modelling a machine with hw hardware threads.
// If capacity is nil, the machine delivers min(n, hw) — perfect scaling up to
// the hardware thread count.
func NewEngine(hw int, capacity CapacityFunc) *Engine {
	if hw < 1 {
		panic(fmt.Sprintf("sim: hw threads must be >= 1, got %d", hw))
	}
	e := &Engine{hw: hw, capacity: capacity, maxEv: math.MaxInt64, rec: obs.Nop,
		nextSample: math.Inf(1)}
	// Warm the per-engine scratch: an engine's first few pushes and batches —
	// e.g. the first request a fleet driver injects into a fresh replica, or
	// its first GC pause — must not be the ones paying slice growth on a
	// driving hot loop.
	e.timers.a = make([]timerEntry, 0, 8)
	e.comp.a = make([]compEntry, 0, 32)
	e.batch = make([]*Thread, 0, 16)
	e.rates = make([]float64, 0, 32)
	e.releaseTimer(e.newTimerBlock())
	if e.capacity == nil {
		e.capacity = func(n int) float64 {
			if n > hw {
				return float64(hw)
			}
			return float64(n)
		}
	}
	return e
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() Time { return int64(e.now) }

// NowF returns the current virtual time as a float64 nanosecond count,
// useful for rate arithmetic without truncation.
func (e *Engine) NowF() float64 { return e.now }

// HWThreads returns the number of hardware threads in the machine model.
func (e *Engine) HWThreads() int { return e.hw }

// Events returns the number of scheduling events processed so far.
func (e *Engine) Events() int64 { return e.events }

// TimerFires returns the number of timer callbacks dispatched so far.
func (e *Engine) TimerFires() int64 { return e.timerFires }

// SetRecorder attaches a telemetry Recorder (nil restores the no-op). The
// engine emits one quiescent-point event per Run drain; heavier per-event
// telemetry would tax the stepper, so scheduler detail stays in counters
// (Events, TimerFires) that the recorder snapshots at quiescent points.
func (e *Engine) SetRecorder(r obs.Recorder) {
	e.rec = obs.Or(r)
	e.recOn = e.rec.Enabled()
}

// SetSampler arms the continuous-sampling hook: fn is called once per
// crossed multiple of intervalNS virtual nanoseconds, with the boundary time
// as its argument, from inside the stepper immediately after time advances
// past it (so the machine state fn observes is the state at the first event
// boundary at or after the tick). A nil fn or non-positive interval disarms
// the hook. Sampling happens on virtual time, not timers, so an armed
// sampler never keeps an otherwise-quiescent simulation alive.
func (e *Engine) SetSampler(intervalNS float64, fn func(tNS float64)) {
	if fn == nil || intervalNS <= 0 {
		e.sampleEvery, e.onSample = 0, nil
		e.nextSample = math.Inf(1)
		return
	}
	e.sampleEvery = intervalNS
	e.onSample = fn
	// First tick at the next boundary strictly after now.
	e.nextSample = (math.Floor(e.now/intervalNS) + 1) * intervalNS
}

// crossSamples dispatches the sampling hook for every interval boundary the
// stepper just crossed. It is kept out of Step's body so the disarmed path
// costs only the inlined float compare.
func (e *Engine) crossSamples() {
	for e.now >= e.nextSample {
		e.onSample(e.nextSample)
		e.nextSample += e.sampleEvery
	}
}

// SetEventLimit caps the number of events Run will process before giving up;
// it is a safety net against runaway simulations. Zero or negative restores
// the default (unlimited).
func (e *Engine) SetEventLimit(n int64) {
	if n <= 0 {
		n = math.MaxInt64
	}
	e.maxEv = n
}

// TaskClock returns the total CPU time consumed by all threads so far, in
// nanoseconds — the simulated equivalent of Linux perf TASK_CLOCK. Under the
// fast stepper it is an O(1) running aggregate: the materialized base plus
// each active thread's in-flight service credit.
func (e *Engine) TaskClock() float64 {
	if e.naive {
		var sum float64
		for _, t := range e.threads {
			sum += t.cpu
		}
		return sum
	}
	return e.cpuBase + float64(e.runCount)*e.vs - e.sumStartS
}

const timeEps = 1e-6 // tolerance for float time comparisons, in ns

// mutated records a state change that may have moved the engine's next event:
// the generation counter stales any cluster-heap entry stamped before it, and
// the owning cluster (if any) is told to re-derive this engine's entry on its
// next Peek. Standalone engines pay one increment and one nil check.
func (e *Engine) mutated() {
	e.gen++
	if e.cl != nil {
		e.cl.markDirty(e.clIdx)
	}
}

// rateFor returns the per-thread progress rate C(n)/n for n runnable
// threads, memoized (CapacityFunc is pure by contract).
func (e *Engine) rateFor(n int) float64 {
	for len(e.rates) <= n {
		e.rates = append(e.rates, 0)
	}
	r := e.rates[n]
	if r == 0 {
		c := e.capacity(n)
		if c <= 0 || c > float64(n)+timeEps {
			panic(fmt.Sprintf("sim: invalid capacity %v for %d runnable threads", c, n))
		}
		r = c / float64(n)
		e.rates[n] = r
	}
	return r
}

// activate enters a thread into the runnable set: its completion credit is
// fixed at S+remaining and pushed on the completion heap, and the aggregates
// pick it up. O(log T).
func (e *Engine) activate(t *Thread) {
	t.active = true
	t.startS = e.vs
	t.finishS = e.vs + t.remaining
	e.runCount++
	e.sumStartS += t.startS
	e.comp.push(compEntry{finishS: t.finishS, id: t.id, epoch: t.epoch, t: t})
}

// deactivate removes a thread from the runnable set, materializing the CPU
// it consumed during this stint from the service-credit delta. The caller
// decides what becomes of t.remaining (zero on completion/abandon, the
// residual finishS−S on block) and whether a heap entry was orphaned.
func (e *Engine) deactivate(t *Thread) {
	delta := e.vs - t.startS
	if delta < 0 {
		delta = 0
	}
	t.cpu += delta
	e.cpuBase += delta
	e.runCount--
	e.sumStartS -= t.startS
	if e.runCount == 0 {
		// Snap the aggregate at quiescent points so float residue from the
		// add/subtract stream cannot drift across busy periods.
		e.sumStartS = 0
	}
	t.active = false
	t.epoch++
}

// orphanEntry records that a deactivated thread left its completion-heap
// entry behind (Block/Abandon/Finish mid-quantum) and compacts the heap once
// stale entries outnumber live ones, so block-heavy workloads cannot grow it
// without bound.
func (e *Engine) orphanEntry() {
	e.staleComp++
	if e.comp.len() < 64 || e.staleComp*2 <= e.comp.len() {
		return
	}
	e.comp.filter(func(en compEntry) bool { return en.epoch == en.t.epoch })
	e.staleComp = 0
}

// Step advances the simulation to the next event (quantum completion or timer
// expiry) and dispatches callbacks. It returns false when the simulation is
// quiescent: no runnable threads and no pending (live) timers.
func (e *Engine) Step() bool {
	if e.naive {
		return e.stepReference()
	}
	if e.runCount == 0 {
		at, ok := e.nextTimerAt()
		if !ok {
			return false
		}
		// Idle machine: jump straight to the next timer.
		if at > e.now {
			e.now = at
		}
		if e.now >= e.nextSample {
			e.crossSamples()
		}
		e.fireTimers()
		e.mutated()
		e.events++
		return true
	}

	rate := e.rateFor(e.runCount)

	// Earliest quantum completion: the top of the heap, once stale entries
	// are discarded, completes when S reaches its credit.
	dt := math.Inf(1)
	for e.comp.len() > 0 {
		top := e.comp.peek()
		if top.epoch != top.t.epoch {
			e.comp.pop()
			e.staleComp--
			continue
		}
		dt = (top.finishS - e.vs) / rate
		break
	}
	if math.IsInf(dt, 1) {
		panic("sim: runnable threads without completion entries")
	}
	// Earliest timer.
	if at, ok := e.nextTimerAt(); ok {
		if d := at - e.now; d < dt {
			dt = d
		}
	}
	if dt < 0 {
		dt = 0
	}

	// Advance the segment: every active thread's progress is implied by the
	// credit advance; nothing per-thread is touched.
	e.now += dt
	e.vs += dt * rate
	if e.now >= e.nextSample {
		e.crossSamples()
	}

	// Collect quantum completions: every live entry whose credit is reached.
	e.batch = e.batch[:0]
	for e.comp.len() > 0 {
		top := e.comp.peek()
		if top.epoch != top.t.epoch {
			e.comp.pop()
			e.staleComp--
			continue
		}
		if top.finishS > e.vs+timeEps {
			break
		}
		e.comp.pop()
		e.deactivate(top.t)
		top.t.remaining = 0
		e.batch = append(e.batch, top.t)
	}
	// Dispatch in thread-creation order, matching the reference stepper
	// (heap order breaks credit ties by id but interleaves distinct credits
	// within timeEps). Batches are tiny; insertion sort, no allocation.
	for i := 1; i < len(e.batch); i++ {
		for j := i; j > 0 && e.batch[j].id < e.batch[j-1].id; j-- {
			e.batch[j], e.batch[j-1] = e.batch[j-1], e.batch[j]
		}
	}
	// A completion callback may block a later thread in this same batch (a
	// stop-the-world pause beginning at the very instant that thread's
	// quantum also completed): such a thread must stay blocked — only
	// clobber Runnable state — but its completion still fires, since the
	// quantum genuinely finished. A callback may also Abandon/Finish a later
	// thread, which clears its onDone and thereby cancels the completion.
	for _, t := range e.batch {
		if t.state == StateRunnable {
			t.state = StateIdle
		}
		done := t.onDone
		t.onDone = nil
		if done != nil {
			done()
		}
	}
	e.fireTimers()
	e.mutated()
	e.events++
	return true
}

// Run steps the simulation until it is quiescent. It returns an error if the
// event limit is exceeded.
func (e *Engine) Run() error {
	for e.Step() {
		if e.events >= e.maxEv {
			return fmt.Errorf("sim: event limit %d exceeded at t=%dns", e.maxEv, e.Now())
		}
	}
	if e.recOn {
		e.rec.Record(obs.Event{
			Kind:  obs.KindQuiescent,
			TNS:   e.Now(),
			DurNS: e.now - e.lastQT,
			Value: float64(e.events - e.lastQE),
			Aux:   float64(e.timerFires - e.lastQF),
		})
		e.lastQT, e.lastQE, e.lastQF = e.now, e.events, e.timerFires
	}
	return nil
}
