// Package sim implements the discrete-event simulation substrate on which
// the whole system runs.
//
// The model is an exact continuous processor-sharing simulation: a virtual
// machine with a fixed number of hardware threads executes a set of logical
// threads. Whenever n threads are runnable, the machine delivers an aggregate
// capacity C(n) (by default min(n, HW)), shared equally, so each runnable
// thread progresses at rate C(n)/n CPU-nanoseconds per virtual nanosecond.
// The engine advances time in piecewise-constant segments to the next quantum
// completion or timer expiry; within a segment all rates are constant, so the
// simulation is exact rather than time-stepped.
//
// Two clocks fall out of this, matching the paper's measurement methodology:
//
//   - wall clock: the virtual time elapsed (what a stopwatch sees), and
//   - task clock: the sum of CPU time consumed by every thread (what Linux
//     perf TASK_CLOCK reports), which exposes total computational cost even
//     when work hides on otherwise-idle cores.
//
// All state is confined to a single goroutine; the engine is deterministic
// given a seed, which is what lets invocations be replayed and confidence
// intervals be honest.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Microsecond = 1e3
	Millisecond = 1e6
	Second      = 1e9
)

// CapacityFunc maps the number of runnable threads to the aggregate CPU
// capacity delivered by the machine, in units of hardware threads. It must
// satisfy 0 < C(n) <= n for n > 0 and be non-decreasing in n; the engine
// shares the capacity equally among runnable threads.
type CapacityFunc func(runnable int) float64

// Engine is the discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now      float64
	hw       int
	capacity CapacityFunc
	threads  []*Thread
	timers   timerQueue
	timerSeq int64
	events   int64
	maxEv    int64

	// scratch buffers reused across steps to avoid per-step allocation.
	runnable []*Thread
	finished []*Thread
}

// NewEngine returns an engine modelling a machine with hw hardware threads.
// If capacity is nil, the machine delivers min(n, hw) — perfect scaling up to
// the hardware thread count.
func NewEngine(hw int, capacity CapacityFunc) *Engine {
	if hw < 1 {
		panic(fmt.Sprintf("sim: hw threads must be >= 1, got %d", hw))
	}
	e := &Engine{hw: hw, capacity: capacity, maxEv: math.MaxInt64}
	if e.capacity == nil {
		e.capacity = func(n int) float64 {
			if n > hw {
				return float64(hw)
			}
			return float64(n)
		}
	}
	return e
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() Time { return int64(e.now) }

// NowF returns the current virtual time as a float64 nanosecond count,
// useful for rate arithmetic without truncation.
func (e *Engine) NowF() float64 { return e.now }

// HWThreads returns the number of hardware threads in the machine model.
func (e *Engine) HWThreads() int { return e.hw }

// Events returns the number of scheduling events processed so far.
func (e *Engine) Events() int64 { return e.events }

// SetEventLimit caps the number of events Run will process before giving up;
// it is a safety net against runaway simulations. Zero or negative restores
// the default (unlimited).
func (e *Engine) SetEventLimit(n int64) {
	if n <= 0 {
		n = math.MaxInt64
	}
	e.maxEv = n
}

// TaskClock returns the total CPU time consumed by all threads so far, in
// nanoseconds — the simulated equivalent of Linux perf TASK_CLOCK.
func (e *Engine) TaskClock() float64 {
	var sum float64
	for _, t := range e.threads {
		sum += t.cpu
	}
	return sum
}

const timeEps = 1e-6 // tolerance for float time comparisons, in ns

// Step advances the simulation to the next event (quantum completion or timer
// expiry) and dispatches callbacks. It returns false when the simulation is
// quiescent: no runnable threads and no pending timers.
func (e *Engine) Step() bool {
	e.runnable = e.runnable[:0]
	for _, t := range e.threads {
		if t.state == StateRunnable {
			e.runnable = append(e.runnable, t)
		}
	}

	if len(e.runnable) == 0 {
		if len(e.timers) == 0 {
			return false
		}
		// Idle machine: jump straight to the next timer.
		e.now = math.Max(e.now, e.timers[0].at)
		e.fireTimers()
		e.events++
		return true
	}

	n := len(e.runnable)
	cap := e.capacity(n)
	if cap <= 0 || cap > float64(n)+timeEps {
		panic(fmt.Sprintf("sim: invalid capacity %v for %d runnable threads", cap, n))
	}
	rate := cap / float64(n)

	// Earliest quantum completion under the current sharing rate.
	dt := math.Inf(1)
	for _, t := range e.runnable {
		if d := t.remaining / rate; d < dt {
			dt = d
		}
	}
	// Earliest timer.
	if len(e.timers) > 0 {
		if d := e.timers[0].at - e.now; d < dt {
			dt = d
		}
	}
	if dt < 0 {
		dt = 0
	}

	// Advance the segment.
	e.now += dt
	progress := dt * rate
	e.finished = e.finished[:0]
	for _, t := range e.runnable {
		t.cpu += progress
		t.remaining -= progress
		if t.remaining <= timeEps {
			t.remaining = 0
			e.finished = append(e.finished, t)
		}
	}

	// Dispatch quantum completions (deterministic thread-creation order),
	// then timers due at or before the new now. A completion callback may
	// block a later thread in this same batch (a stop-the-world pause
	// beginning at the very instant that thread's quantum also completed):
	// such a thread must stay blocked — only clobber Runnable state — but
	// its completion still fires, since the quantum genuinely finished.
	// A callback may also Abandon/Finish a later thread, which clears its
	// onDone and thereby cancels the completion.
	for _, t := range e.finished {
		if t.state == StateRunnable {
			t.state = StateIdle
		}
		done := t.onDone
		t.onDone = nil
		if done != nil {
			done()
		}
	}
	e.fireTimers()
	e.events++
	return true
}

// Run steps the simulation until it is quiescent. It returns an error if the
// event limit is exceeded.
func (e *Engine) Run() error {
	for e.Step() {
		if e.events >= e.maxEv {
			return fmt.Errorf("sim: event limit %d exceeded at t=%dns", e.maxEv, e.Now())
		}
	}
	return nil
}

// fireTimers dispatches every timer due at or before now, in (time, creation)
// order. Callbacks may schedule further timers; those are honoured too if
// already due.
func (e *Engine) fireTimers() {
	for len(e.timers) > 0 && e.timers[0].at <= e.now+timeEps {
		tm := e.timers.pop()
		if tm.cancelled {
			continue
		}
		tm.fn()
	}
}

// After schedules fn to run at now+d. It returns a handle that can cancel the
// timer before it fires.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	if fn == nil {
		panic("sim: nil timer callback")
	}
	e.timerSeq++
	tm := &Timer{at: e.now + d, seq: e.timerSeq, fn: fn}
	e.timers.push(tm)
	return tm
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	at        float64
	seq       int64
	fn        func()
	cancelled bool
}

// Cancel prevents the timer from firing. Cancelling an already-fired timer is
// a no-op.
func (t *Timer) Cancel() { t.cancelled = true }

// timerQueue is a binary min-heap ordered by (at, seq). A hand-rolled heap
// (rather than container/heap) keeps the hot path free of interface calls.
type timerQueue []*Timer

func (q timerQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *timerQueue) push(t *Timer) {
	*q = append(*q, t)
	i := len(*q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		(*q)[i], (*q)[parent] = (*q)[parent], (*q)[i]
		i = parent
	}
}

func (q *timerQueue) pop() *Timer {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	*q = h[:last]
	q.siftDown(0)
	return top
}

func (q timerQueue) siftDown(i int) {
	n := len(q)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}
