package sim

// Timer subsystem.
//
// Timers live in an ordHeap of small value entries ordered by (deadline,
// sequence), so same-instant timers fire in creation order. Cancellation is
// lazy: Cancel only marks the timer's node; the heap entry stays put and is
// discarded when it surfaces, or swept out in bulk once cancelled entries
// outnumber live ones — a workload that repeatedly schedules-and-cancels
// (e.g. a pacer re-arming its deadline) therefore cannot grow the heap
// without bound. Fired and cancelled nodes are recycled through a free list,
// so steady-state timer traffic does not churn the Go allocator. Node reuse
// is made safe by sequence stamping: a Timer handle captures the sequence it
// was armed with, and Cancel on a handle whose node has since been recycled
// is a no-op.

// timerNode is the engine-owned state of one scheduled callback. Nodes are
// recycled through the engine's free list once they fire, are swept, or are
// discarded from the top of the heap.
type timerNode struct {
	fn        func()
	seq       int64 // sequence of the current arming; 0 = on the free list
	cancelled bool
	next      *timerNode // free-list link
}

// timerEntry is the heap entry for one arming of a timer.
type timerEntry struct {
	at  float64
	seq int64
	n   *timerNode
}

func (a timerEntry) lessThan(b timerEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Timer is a handle to a scheduled callback. It is a value: copying it is
// cheap and safe, and a handle outliving its timer (fired, cancelled, or
// swept) is inert.
type Timer struct {
	e   *Engine
	n   *timerNode
	seq int64
}

// Cancel prevents the timer from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (tm Timer) Cancel() {
	if tm.n == nil || tm.n.seq != tm.seq || tm.n.cancelled {
		return
	}
	tm.n.cancelled = true
	tm.e.cancelledTimers++
	tm.e.maybeCompactTimers()
	tm.e.mutated()
}

// After schedules fn to run at now+d. It returns a handle that can cancel
// the timer before it fires.
func (e *Engine) After(d float64, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now+d, fn)
}

// At schedules fn at the absolute virtual time t (a t already in the past
// fires at now). Unlike After(t-NowF()), the deadline is stored exactly as
// given — no relative round-trip through floating point — so a caller can
// reproduce a precomputed schedule bit-for-bit while arming timers one at a
// time.
func (e *Engine) At(t float64, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	return e.schedule(t, fn)
}

func (e *Engine) schedule(at float64, fn func()) Timer {
	if fn == nil {
		panic("sim: nil timer callback")
	}
	n := e.freeTimer
	if n != nil {
		e.freeTimer = n.next
		n.next = nil
	} else {
		n = e.newTimerBlock()
	}
	e.timerSeq++
	n.fn = fn
	n.seq = e.timerSeq
	n.cancelled = false
	e.timers.push(timerEntry{at: at, seq: e.timerSeq, n: n})
	e.mutated()
	return Timer{e: e, n: n, seq: e.timerSeq}
}

// newTimerBlock grows the free list by one block of nodes and returns the
// first. Block allocation keeps nodes cache-adjacent and makes free-list
// growth one allocation per eight timers instead of one each — NewEngine
// seeds one block so a typical engine never grows it on the stepping path.
func (e *Engine) newTimerBlock() *timerNode {
	block := make([]timerNode, 8)
	for i := 1; i < len(block); i++ {
		block[i].next = e.freeTimer
		e.freeTimer = &block[i]
	}
	return &block[0]
}

// releaseTimer returns a node to the free list. seq 0 marks it free, so any
// surviving handle's Cancel fails the sequence check and does nothing.
func (e *Engine) releaseTimer(n *timerNode) {
	n.fn = nil
	n.seq = 0
	n.cancelled = false
	n.next = e.freeTimer
	e.freeTimer = n
}

// nextTimerAt returns the deadline of the earliest live timer, discarding
// cancelled entries that have surfaced at the top of the heap.
func (e *Engine) nextTimerAt() (float64, bool) {
	for e.timers.len() > 0 {
		top := e.timers.peek()
		if top.n.cancelled {
			e.timers.pop()
			e.cancelledTimers--
			e.releaseTimer(top.n)
			continue
		}
		return top.at, true
	}
	return 0, false
}

// fireTimers dispatches every live timer due at or before now, in (time,
// creation) order. Callbacks may schedule further timers; those are honoured
// too if already due.
func (e *Engine) fireTimers() {
	for e.timers.len() > 0 {
		top := e.timers.peek()
		if top.n.cancelled {
			e.timers.pop()
			e.cancelledTimers--
			e.releaseTimer(top.n)
			continue
		}
		if top.at > e.now+timeEps {
			return
		}
		e.timers.pop()
		fn := top.n.fn
		e.releaseTimer(top.n)
		e.timerFires++
		fn()
	}
}

// maybeCompactTimers sweeps cancelled entries out of the heap once they
// outnumber live ones. The threshold keeps the sweep amortized O(1) per
// cancellation while bounding the heap at twice its live size.
func (e *Engine) maybeCompactTimers() {
	if e.timers.len() < 32 || e.cancelledTimers*2 <= e.timers.len() {
		return
	}
	e.timers.filter(func(en timerEntry) bool {
		if en.n.cancelled {
			e.releaseTimer(en.n)
			return false
		}
		return true
	})
	e.cancelledTimers = 0
}
