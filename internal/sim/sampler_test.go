package sim

import (
	"math"
	"testing"
)

// TestSamplerFixedBoundaries drives a busy engine and checks the hook fires
// exactly once per crossed interval boundary, with boundary-aligned times.
func TestSamplerFixedBoundaries(t *testing.T) {
	e := NewEngine(2, nil)
	var ticks []float64
	e.SetSampler(100, func(tNS float64) { ticks = append(ticks, tNS) })

	th := e.NewThread("w")
	var spin func()
	n := 0
	spin = func() {
		n++
		if n < 40 {
			th.Exec(37, spin)
		}
	}
	th.Exec(37, spin)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) == 0 {
		t.Fatal("sampler never fired")
	}
	for i, tick := range ticks {
		if want := float64(100 * (i + 1)); tick != want {
			t.Fatalf("tick %d at %v, want %v", i, tick, want)
		}
	}
	// 40 quanta of 37ns on one thread = 1480ns of virtual time: 14 ticks.
	if len(ticks) != 14 {
		t.Fatalf("fired %d ticks over 1480ns at interval 100, want 14", len(ticks))
	}
}

// TestSamplerIdleJump checks a timer-driven idle jump crossing several
// boundaries fires the hook once per boundary, and that an armed sampler
// does not keep an otherwise-quiescent engine alive.
func TestSamplerIdleJump(t *testing.T) {
	e := NewEngine(1, nil)
	var ticks []float64
	e.SetSampler(50, func(tNS float64) { ticks = append(ticks, tNS) })
	fired := false
	e.After(220, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("timer did not fire")
	}
	want := []float64{50, 100, 150, 200}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

// TestSamplerParity runs the same schedule on the fast and reference
// steppers and demands identical tick sequences — the sampler is part of the
// differential-oracle contract like every other observable.
func TestSamplerParity(t *testing.T) {
	run := func(e *Engine) []float64 {
		var ticks []float64
		e.SetSampler(75, func(tNS float64) { ticks = append(ticks, tNS) })
		a, b := e.NewThread("a"), e.NewThread("b")
		na, nb := 0, 0
		var spinA, spinB func()
		spinA = func() {
			if na++; na < 25 {
				a.Exec(53, spinA)
			}
		}
		spinB = func() {
			if nb++; nb < 25 {
				b.Exec(91, spinB)
			}
		}
		a.Exec(53, spinA)
		b.Exec(91, spinB)
		e.After(333, func() {})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return ticks
	}
	fast := run(NewEngine(2, nil))
	ref := run(NewReferenceEngine(2, nil))
	if len(fast) != len(ref) {
		t.Fatalf("fast fired %d ticks, reference %d", len(fast), len(ref))
	}
	for i := range fast {
		if fast[i] != ref[i] {
			t.Fatalf("tick %d: fast %v, reference %v", i, fast[i], ref[i])
		}
	}
}

// TestSamplerDisarm checks SetSampler(0, nil) restores the +Inf sentinel.
func TestSamplerDisarm(t *testing.T) {
	e := NewEngine(1, nil)
	e.SetSampler(10, func(float64) { t.Fatal("disarmed sampler fired") })
	e.SetSampler(0, nil)
	if !math.IsInf(e.nextSample, 1) {
		t.Fatalf("nextSample = %v after disarm, want +Inf", e.nextSample)
	}
	th := e.NewThread("w")
	th.Exec(100, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
