package sim

// ordHeap is a binary min-heap over value entries. It is the single heap
// implementation behind both the timer queue and the quantum-completion
// queue: hand-rolled (rather than container/heap) so the hot path is free of
// interface calls, and generic so it is written — and tested — exactly once.
//
// E is a small value type; entries are stored inline in one slice, so the
// heap itself never allocates beyond amortized slice growth, which the
// engine's steady state warms once.
type ordHeap[E heapOrd[E]] struct {
	a []E
}

// heapOrd is the ordering contract for heap entries: a.lessThan(b) reports
// whether a must pop before b. It must be a strict weak ordering and, for
// deterministic engines, a total order (ties broken by a sequence number or
// thread id).
type heapOrd[E any] interface {
	lessThan(E) bool
}

func (h *ordHeap[E]) len() int { return len(h.a) }

// peek returns the minimum entry. It must not be called on an empty heap.
func (h *ordHeap[E]) peek() E { return h.a[0] }

func (h *ordHeap[E]) push(x E) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.a[i].lessThan(h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *ordHeap[E]) pop() E {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	var zero E
	h.a[last] = zero // release any pointers held by the entry
	h.a = h.a[:last]
	h.siftDown(0)
	return top
}

func (h *ordHeap[E]) siftDown(i int) {
	n := len(h.a)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.a[l].lessThan(h.a[smallest]) {
			smallest = l
		}
		if r < n && h.a[r].lessThan(h.a[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
}

// filter drops every entry for which keep returns false, re-establishes the
// heap invariant in O(n), and returns how many entries were removed. It is
// the compaction primitive behind lazy cancellation: both queues tolerate
// stale entries and sweep them out in bulk once they outnumber live ones.
func (h *ordHeap[E]) filter(keep func(E) bool) int {
	live := h.a[:0]
	for _, x := range h.a {
		if keep(x) {
			live = append(live, x)
		}
	}
	removed := len(h.a) - len(live)
	var zero E
	for i := len(live); i < len(h.a); i++ {
		h.a[i] = zero
	}
	h.a = live
	for i := len(h.a)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return removed
}
