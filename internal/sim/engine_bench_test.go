package sim

import (
	"fmt"
	"testing"
)

// Engine scaling benchmarks. Run with -benchmem: the fast stepper must stay
// at zero allocs/op in steady state, so allocation regressions in the hot
// loop are visible. `make bench` captures the results to BENCH_sim.json.

// spinThreads populates the engine with T self-re-Execing workers whose
// quanta are pairwise distinct, so completions spread across segments and
// each event retires a single thread (the honest per-event comparison: the
// naive stepper pays its O(T) rescan per completion instead of amortizing it
// over a simultaneous batch).
func spinThreads(e *Engine, threads int) {
	for i := 0; i < threads; i++ {
		th := e.NewThread("w")
		work := float64(100 + 13*i)
		var spin func()
		spin = func() { th.Exec(work, spin) }
		th.Exec(work, spin)
	}
}

func benchSteps(b *testing.B, e *Engine, warm int) {
	for i := 0; i < warm; i++ {
		if !e.Step() {
			b.Fatal("engine quiesced during warmup")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("engine quiesced")
		}
	}
}

func BenchmarkEngineStep(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
			e := NewEngine(64, nil)
			spinThreads(e, n)
			benchSteps(b, e, 2*n)
		})
	}
}

// BenchmarkEngineStepNaive is the same workload on the retained reference
// stepper; the ratio to BenchmarkEngineStep is the tentpole's speedup.
func BenchmarkEngineStepNaive(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
			e := NewReferenceEngine(64, nil)
			spinThreads(e, n)
			benchSteps(b, e, 2*n)
		})
	}
}

// BenchmarkEngineTimerHeavy drives self-rescheduling timers that each also
// arm-and-cancel a decoy, exercising lazy cancellation, compaction, and the
// node free list under fire.
func BenchmarkEngineTimerHeavy(b *testing.B) {
	e := NewEngine(4, nil)
	nop := func() {}
	for i := 0; i < 64; i++ {
		period := float64(100 + 7*i)
		var fire func()
		fire = func() {
			e.After(period, fire)
			e.After(2*period, nop).Cancel()
		}
		e.After(period, fire)
	}
	benchSteps(b, e, 256)
}

// BenchmarkEngineBlockUnblockHeavy alternates STW-style block/unblock waves
// over a worker pool — the transition-heavy path where orphaned completion
// entries accumulate and must be compacted.
func BenchmarkEngineBlockUnblockHeavy(b *testing.B) {
	const workers = 64
	e := NewEngine(8, nil)
	ths := make([]*Thread, workers)
	for i := range ths {
		th := e.NewThread("w")
		var spin func()
		spin = func() { th.Exec(1e9, spin) }
		th.Exec(1e9, spin)
		ths[i] = th
	}
	// Pre-bind the unblock closures so the hot loop allocates nothing.
	unblock := make([]func(), workers)
	for i, th := range ths {
		unblock[i] = th.Unblock
	}
	driver := e.NewThread("driver")
	var wave func()
	wave = func() {
		for _, th := range ths {
			if th.State() == StateRunnable {
				th.Block()
			}
		}
		for i, th := range ths {
			if th.State() == StateBlocked {
				e.After(20, unblock[i])
			}
		}
		driver.Exec(50, wave)
	}
	driver.Exec(50, wave)
	benchSteps(b, e, 1024)
}
