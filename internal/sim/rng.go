package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64
// core). The simulator cannot use math/rand's global state: experiments must
// be exactly reproducible from a seed, and independent workload components
// need independent streams that do not perturb each other when one component
// draws more values.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child stream; drawing from the child does not
// affect the parent's sequence beyond this single call.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u <= 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// LogNormal returns a log-normal variate with the given median and sigma
// (shape parameter of the underlying normal). Service-time and object-size
// distributions are heavy-tailed in real systems; log-normal is the standard
// parametric stand-in.
func (r *RNG) LogNormal(median, sigma float64) float64 {
	return median * math.Exp(sigma*r.NormFloat64())
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Jitter returns base scaled by a uniform factor in [1-amp, 1+amp]. It is the
// standard way workloads perturb per-quantum costs so invocations differ.
func (r *RNG) Jitter(base, amp float64) float64 {
	return base * (1 + amp*(2*r.Float64()-1))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
