package gc

import (
	"testing"

	"chopin/internal/heap"
	"chopin/internal/sim"
	"chopin/internal/trace"
)

const mb = 1 << 20

func testDemo() heap.Demographics {
	return heap.Demographics{
		YoungSurvival:   0.10,
		RefNursery:      16 * mb,
		SurvivalDecay:   0.4,
		CompactFraction: 0.5,
		AvgObjectBytes:  64,
	}
}

// driver runs a single synthetic mutator against a collector: quanta of
// fixed CPU cost, each preceded by an allocation.
type driver struct {
	eng  *sim.Engine
	h    *heap.Heap
	log  *trace.Log
	col  *Collector
	mut  *sim.Thread
	oom  bool
	done int
}

func newDriver(kind Kind, heapMB float64, cores int) *driver {
	p := kind.Params(cores)
	eng := sim.NewEngine(cores*2, nil)
	h := heap.New(heap.Config{SizeBytes: heapMB * mb, Expansion: p.Expansion}, testDemo())
	log := &trace.Log{}
	col := New(p, eng, h, log)
	d := &driver{eng: eng, h: h, log: log, col: col, mut: eng.NewThread("mutator")}
	col.RegisterMutator(d.mut)
	return d
}

// run executes `quanta` mutator steps, each allocating bytesPer and burning
// quantumNS of CPU, then drains the engine.
func (d *driver) run(t *testing.T, quanta int, quantumNS, bytesPer float64) {
	t.Helper()
	i := 0
	var step func()
	step = func() {
		if i >= quanta {
			return
		}
		i++
		d.col.Alloc(bytesPer, func(ok bool) {
			if !ok {
				d.oom = true
				return
			}
			d.done++
			d.mut.Exec(quantumNS*d.col.MutatorFactor(), step)
		})
	}
	step()
	d.eng.SetEventLimit(50_000_000)
	if err := d.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSerialYoungCollectionsHappen(t *testing.T) {
	d := newDriver(Serial, 32, 4)
	d.h.SetTargetLive(4 * mb)
	// Allocate ~200MB through a 32MB heap: many young GCs required.
	d.run(t, 2000, 10*sim.Microsecond, 100*1024)
	if d.oom {
		t.Fatal("unexpected OOM")
	}
	if n := d.log.Count(trace.GCYoung); n == 0 {
		t.Fatal("no young collections in an allocation-heavy run")
	}
	if d.log.TotalPauseNS() <= 0 {
		t.Fatal("no pause time recorded")
	}
	if d.log.TotalGCCPUNS() <= 0 {
		t.Fatal("no GC CPU recorded")
	}
}

func TestPausesExtendWallClock(t *testing.T) {
	d := newDriver(Serial, 32, 4)
	d.h.SetTargetLive(4 * mb)
	d.run(t, 1000, 10*sim.Microsecond, 100*1024)
	pureCompute := float64(1000) * 10 * sim.Microsecond * d.col.MutatorFactor()
	if float64(d.eng.Now()) < pureCompute+d.log.TotalPauseNS()*0.99 {
		t.Fatalf("wall %v should include compute %v plus pauses %v",
			d.eng.Now(), pureCompute, d.log.TotalPauseNS())
	}
}

func TestOOMWhenLiveExceedsCapacity(t *testing.T) {
	d := newDriver(Serial, 16, 4)
	d.h.SetTargetLive(100 * mb) // cannot fit
	d.run(t, 5000, sim.Microsecond, 256*1024)
	if !d.oom {
		t.Fatal("expected OOM when live set exceeds heap")
	}
	if n := d.log.Count(trace.GCFull); n == 0 {
		t.Fatal("OOM should only follow a last-ditch full collection")
	}
}

func TestZGCFootprintCausesOOMWhereSerialFits(t *testing.T) {
	// Live set 12MB in a 16MB heap: fits compressed, not at 1.45x expansion.
	runOne := func(kind Kind) bool {
		d := newDriver(kind, 16, 4)
		d.h.SetTargetLive(12 * mb)
		d.run(t, 3000, sim.Microsecond, 64*1024)
		return d.oom
	}
	if runOne(Serial) {
		t.Fatal("Serial should fit a 12MB live set in 16MB")
	}
	if !runOne(ZGC) {
		t.Fatal("ZGC (no compressed oops) should OOM on a 1.33x heap")
	}
}

func TestConcurrentCollectorRunsCycles(t *testing.T) {
	d := newDriver(Shenandoah, 64, 8)
	d.h.SetTargetLive(8 * mb)
	d.run(t, 4000, 10*sim.Microsecond, 128*1024)
	if d.oom {
		t.Fatal("unexpected OOM")
	}
	conc := d.log.Count(trace.GCConcurrent)
	if conc == 0 {
		t.Fatal("no concurrent cycles for Shenandoah under allocation pressure")
	}
	// Concurrent collectors take only tiny pauses in the happy path.
	if max := d.log.MaxPauseNS(); max > 5*sim.Millisecond {
		t.Fatalf("max pause %v ns too long for a concurrent collector", max)
	}
}

func TestG1MixedCycleReclaimsOldGarbage(t *testing.T) {
	d := newDriver(G1, 48, 8)
	// High survival into old space forces old-occupancy growth.
	d.h.SetTargetLive(16 * mb)
	d.run(t, 6000, 5*sim.Microsecond, 128*1024)
	if d.oom {
		t.Fatal("unexpected OOM")
	}
	if n := d.log.Count(trace.GCMixed); n == 0 {
		t.Fatal("G1 never completed a concurrent mark + mixed evacuation")
	}
}

func TestPacerStallsUnderPressure(t *testing.T) {
	d := newDriver(Shenandoah, 24, 4)
	d.h.SetTargetLive(10 * mb)
	d.run(t, 6000, sim.Microsecond, 256*1024) // furious allocation
	if d.log.StallNS <= 0 {
		t.Fatal("expected pacer stalls under allocation pressure")
	}
}

func TestDegenerationWhenCycleLosesRace(t *testing.T) {
	d := newDriver(ZGC, 24, 2)
	d.h.SetTargetLive(10 * mb)
	d.run(t, 8000, sim.Microsecond, 512*1024)
	if d.oom {
		t.Fatal("unexpected OOM")
	}
	if d.col.Degenerations() == 0 {
		t.Fatal("expected degenerate collections when allocation outruns the cycle")
	}
	if n := d.log.Count(trace.GCDegenerate); n != d.col.Degenerations() {
		t.Fatalf("degenerate events %d != counter %d", n, d.col.Degenerations())
	}
}

func TestMutatorFactorRisesDuringCycle(t *testing.T) {
	p := Shenandoah.Params(8)
	eng := sim.NewEngine(16, nil)
	h := heap.New(heap.Config{SizeBytes: 64 * mb, Expansion: 1}, testDemo())
	log := &trace.Log{}
	col := New(p, eng, h, log)
	base := col.MutatorFactor()
	if base != 1+p.BarrierBase {
		t.Fatalf("idle factor = %v, want %v", base, 1+p.BarrierBase)
	}
	// The factor is cached; cycle-phase transitions invalidate it.
	col.cycle = &cycleState{}
	col.updateMutatorFactor()
	if got := col.MutatorFactor(); got != 1+p.BarrierBase+p.BarrierConc {
		t.Fatalf("cycle factor = %v, want %v", got, 1+p.BarrierBase+p.BarrierConc)
	}
	col.cycle = nil
	col.updateMutatorFactor()
	if got := col.MutatorFactor(); got != base {
		t.Fatalf("post-cycle factor = %v, want %v", got, base)
	}
}

func TestParallelBeatsSerialOnPauseTimeButNotCPU(t *testing.T) {
	run := func(kind Kind) (pause, cpu float64) {
		d := newDriver(kind, 32, 8)
		d.h.SetTargetLive(6 * mb)
		d.run(t, 3000, 5*sim.Microsecond, 128*1024)
		if d.oom {
			t.Fatalf("%v OOM", kind)
		}
		return d.log.TotalPauseNS(), d.log.TotalGCCPUNS()
	}
	serialPause, serialCPU := run(Serial)
	parPause, parCPU := run(Parallel)
	if parPause >= serialPause {
		t.Fatalf("Parallel pause %v should beat Serial %v", parPause, serialPause)
	}
	if parCPU <= serialCPU {
		t.Fatalf("Parallel CPU %v should exceed Serial %v (parallelism is never free)",
			parCPU, serialCPU)
	}
}

func TestPausesAreOrderedAndDisjoint(t *testing.T) {
	d := newDriver(G1, 32, 4)
	d.h.SetTargetLive(8 * mb)
	d.run(t, 3000, 5*sim.Microsecond, 128*1024)
	prevEnd := int64(-1)
	for i, p := range d.log.Pauses {
		if p.End < p.Start {
			t.Fatalf("pause %d inverted: %+v", i, p)
		}
		if p.Start < prevEnd {
			t.Fatalf("pause %d overlaps previous (start %d < prev end %d)", i, p.Start, prevEnd)
		}
		prevEnd = p.End
	}
	if last := d.log.Pauses[len(d.log.Pauses)-1].End; last > d.eng.Now() {
		t.Fatalf("pause ends after simulation end: %d > %d", last, d.eng.Now())
	}
}

func TestHeapOccupancyNeverExceedsCapacityDuringRun(t *testing.T) {
	for _, kind := range AllKinds {
		d := newDriver(kind, 40, 4)
		d.h.SetTargetLive(8 * mb)
		d.run(t, 2000, 2*sim.Microsecond, 200*1024)
		if d.h.Used() > d.h.Capacity()+1 {
			t.Fatalf("%v: used %v exceeds capacity %v", kind, d.h.Used(), d.h.Capacity())
		}
		for _, e := range d.log.Events {
			if e.UsedAfter > d.h.Capacity()+1 {
				t.Fatalf("%v: logged occupancy %v exceeds capacity", kind, e.UsedAfter)
			}
		}
	}
}

func TestAllocDuringOOMFailsFast(t *testing.T) {
	d := newDriver(Serial, 16, 2)
	d.h.SetTargetLive(100 * mb)
	d.run(t, 100, sim.Microsecond, mb)
	if !d.oom {
		t.Fatal("setup: expected OOM")
	}
	called := false
	d.col.Alloc(1024, func(ok bool) {
		called = true
		if ok {
			t.Error("allocation succeeded after OOM")
		}
	})
	if !called {
		t.Fatal("done callback not invoked synchronously after OOM")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range AllKinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("Epsilon"); err == nil {
		t.Fatal("expected error for unknown collector")
	}
}

func TestPresetSanity(t *testing.T) {
	for _, k := range AllKinds {
		p := k.Params(16)
		if p.STWThreads < 1 {
			t.Errorf("%v: no STW threads", k)
		}
		if p.Expansion < 1 {
			t.Errorf("%v: expansion %v < 1", k, p.Expansion)
		}
		if p.Style != StyleSTW && p.ConcThreads < 1 {
			t.Errorf("%v: concurrent style without concurrent threads", k)
		}
		if k == Serial && p.STWThreads != 1 {
			t.Errorf("Serial must use exactly one GC thread, got %d", p.STWThreads)
		}
	}
}

func TestBarrierTaxOrderingMatchesDesignHistory(t *testing.T) {
	// Newer latency-oriented collectors pay more mutator tax.
	serial := Serial.Params(16).BarrierBase
	g1 := G1.Params(16).BarrierBase
	shen := Shenandoah.Params(16).BarrierBase
	if !(serial < g1 && g1 < shen) {
		t.Fatalf("barrier taxes out of order: serial %v, g1 %v, shen %v", serial, g1, shen)
	}
}

func TestAdaptiveTriggerLearnsFromFullGCs(t *testing.T) {
	// G1 under pressure: the adaptive IHOP must lower the trigger after
	// full collections so later cycles start earlier.
	d := newDriver(G1, 24, 4)
	d.h.SetTargetLive(9 * mb)
	d.run(t, 4000, 2*sim.Microsecond, 256*1024)
	if d.oom {
		t.Fatal("unexpected OOM")
	}
	if d.col.trigger >= d.col.p.ConcTriggerFrac {
		t.Fatalf("trigger %v did not adapt below preset %v under pressure",
			d.col.trigger, d.col.p.ConcTriggerFrac)
	}
	if d.col.trigger < 0.20 {
		t.Fatalf("trigger %v escaped its clamp", d.col.trigger)
	}
}

func TestStaticCollectorsDoNotAdapt(t *testing.T) {
	d := newDriver(Shenandoah, 24, 4) // preset has AdaptiveTrigger=false
	d.h.SetTargetLive(9 * mb)
	d.run(t, 3000, 2*sim.Microsecond, 256*1024)
	if d.col.trigger != d.col.p.ConcTriggerFrac {
		t.Fatalf("non-adaptive trigger moved: %v != %v",
			d.col.trigger, d.col.p.ConcTriggerFrac)
	}
}

func TestShenandoahModes(t *testing.T) {
	for _, m := range []ShenandoahMode{ShenAdaptive, ShenStatic, ShenCompact, ShenAggressive} {
		got, err := ParseShenandoahMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseShenandoahMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseShenandoahMode("bogus"); err == nil {
		t.Fatal("unknown mode should error")
	}
	adaptive := ShenandoahParams(ShenAdaptive, 8)
	compact := ShenandoahParams(ShenCompact, 8)
	aggressive := ShenandoahParams(ShenAggressive, 8)
	if !(aggressive.ConcTriggerFrac < compact.ConcTriggerFrac &&
		compact.ConcTriggerFrac < adaptive.ConcTriggerFrac) {
		t.Fatal("mode triggers out of order")
	}
	if ShenandoahParams(ShenStatic, 8).Pacer {
		t.Fatal("static heuristic should not pace")
	}
}

func TestShenandoahCompactTradesCPUForFootprint(t *testing.T) {
	run := func(mode ShenandoahMode) (gcCPU, meanFootprint float64) {
		p := ShenandoahParams(mode, 4)
		eng := sim.NewEngine(8, nil)
		h := heap.New(heap.Config{SizeBytes: 48 * mb, Expansion: 1}, testDemo())
		log := &trace.Log{}
		col := New(p, eng, h, log)
		d := &driver{eng: eng, h: h, log: log, col: col, mut: eng.NewThread("mutator")}
		col.RegisterMutator(d.mut)
		d.h.SetTargetLive(8 * mb)
		d.run(t, 4000, 5*sim.Microsecond, 128*1024)
		if d.oom {
			t.Fatalf("%v OOM", mode)
		}
		return col.GCCPU(), log.FootprintAUC(0, eng.Now())
	}
	adCPU, adFoot := run(ShenAdaptive)
	coCPU, coFoot := run(ShenCompact)
	if coCPU <= adCPU {
		t.Fatalf("compact should burn more GC CPU: %v vs %v", coCPU, adCPU)
	}
	if coFoot >= adFoot {
		t.Fatalf("compact should hold a smaller footprint: %v vs %v", coFoot, adFoot)
	}
}
