// Package gc implements the five OpenJDK production garbage collectors the
// paper evaluates — Serial (1998), Parallel (2005), G1 (2009), Shenandoah
// (2014) and ZGC (2018) — plus Generational ZGC as an extension, as cost
// models over the simulated heap and machine.
//
// Each collector is the same engine configured with the design decisions
// that drive the paper's findings:
//
//   - when it collects (nursery exhaustion, occupancy-triggered concurrent
//     cycles, allocation failure),
//   - where the work runs (a single thread, a parallel STW gang with
//     imperfect scaling, or concurrent workers that soak otherwise-idle
//     cores and therefore show up in task clock but not wall clock),
//   - what the mutator pays continuously (write/load barrier taxes, higher
//     while a concurrent cycle is active),
//   - how it degrades (Shenandoah's pacer stalls allocating mutators when
//     reclamation falls behind; concurrent collectors fall back to a
//     degenerate STW full collection on exhaustion), and
//   - how much memory it wastes (ZGC runs without compressed object
//     pointers, inflating its footprint so it cannot run 1x minimum heaps).
//
// The collector records everything the paper's methodologies need into a
// trace.Log: pause intervals, per-event GC CPU, reclaimed bytes and post-GC
// occupancy.
package gc

import (
	"fmt"

	"chopin/internal/sim"
)

// Kind names a collector design.
type Kind int

// The collectors of OpenJDK 21.
const (
	Serial Kind = iota
	Parallel
	G1
	Shenandoah
	ZGC
	GenZGC // JEP 439 generational ZGC, an extension beyond the paper's five
)

// Kinds lists the paper's five production collectors in introduction order.
var Kinds = []Kind{Serial, Parallel, G1, Shenandoah, ZGC}

// AllKinds additionally includes the GenZGC extension.
var AllKinds = []Kind{Serial, Parallel, G1, Shenandoah, ZGC, GenZGC}

func (k Kind) String() string {
	switch k {
	case Serial:
		return "Serial"
	case Parallel:
		return "Parallel"
	case G1:
		return "G1"
	case Shenandoah:
		return "Shenandoah"
	case ZGC:
		return "ZGC"
	case GenZGC:
		return "GenZGC"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a collector name (case-sensitive, as printed by String).
func ParseKind(s string) (Kind, error) {
	for _, k := range AllKinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("gc: unknown collector %q", s)
}

// Style describes a collector's concurrency structure.
type Style int

// Collector styles.
const (
	// StyleSTW collects only in stop-the-world pauses (Serial, Parallel).
	StyleSTW Style = iota
	// StyleConcOld runs STW young collections plus an occupancy-triggered
	// concurrent old-marking cycle with a mixed evacuation pause (G1).
	StyleConcOld
	// StyleConcFull performs marking and evacuation concurrently with tiny
	// bracketing pauses (Shenandoah, ZGC, GenZGC).
	StyleConcFull
)

// Params is a collector configuration; Kind.Params returns production-like
// presets.
type Params struct {
	Kind         Kind
	Generational bool
	Style        Style

	// STWThreads is the gang size for stop-the-world work.
	STWThreads int
	// ConcThreads is the worker count for concurrent phases.
	ConcThreads int
	// ParLoss is the per-extra-thread efficiency loss of parallel GC work:
	// a gang of k threads does serial work inflated by 1 + ParLoss*(k-1).
	ParLoss float64

	// BarrierBase is the always-on mutator slowdown from the collector's
	// write/read barriers; BarrierConc is the additional tax while a
	// concurrent cycle is active.
	BarrierBase float64
	BarrierConc float64

	// Expansion is the heap footprint multiplier (1 for compressed-oops
	// collectors; ZGC cannot compress pointers).
	Expansion float64

	// Pacer enables allocation throttling while a concurrent cycle is
	// running: when free space falls below PacerFreeFrac of capacity,
	// allocations stall for up to PacerMaxStallNS.
	Pacer           bool
	PacerFreeFrac   float64
	PacerMaxStallNS float64

	// MarkNsPerByte and CopyNsPerByte are the tracing and evacuation costs.
	MarkNsPerByte float64
	CopyNsPerByte float64

	// PauseFloorNS is the fixed serial CPU cost of a young/full STW pause;
	// TinyPauseNS is the fixed cost of a concurrent cycle's bracketing
	// pauses.
	PauseFloorNS float64
	TinyPauseNS  float64

	// Nursery policy: the young space is YoungFracOfFree of post-GC free
	// space, clamped to [NurseryMinBytes, NurseryMaxBytes].
	YoungFracOfFree float64
	NurseryMinBytes float64
	NurseryMaxBytes float64

	// ConcTriggerFrac starts a concurrent cycle when occupancy (old
	// occupancy for StyleConcOld) exceeds this fraction of capacity.
	ConcTriggerFrac float64
	// EvacFraction estimates the share of traced bytes a concurrent cycle
	// evacuates (its copy cost).
	EvacFraction float64
	// MixedCopyFrac is the share of reclaimed old bytes G1's mixed
	// evacuation pause must copy.
	MixedCopyFrac float64
	// AdaptiveTrigger lets the collector move ConcTriggerFrac at runtime
	// like G1's adaptive IHOP: earlier after a degeneration, later after
	// cycles that finish with plenty of headroom.
	AdaptiveTrigger bool
}

// Params returns the production-like preset for the collector on a machine
// with the given core count. The relative values encode the design history
// the paper describes: each newer collector buys latency with CPU.
func (k Kind) Params(cores int) Params {
	if cores < 1 {
		cores = 1
	}
	conc := cores / 4
	if conc < 1 {
		conc = 1
	}
	base := Params{
		Kind:            k,
		Expansion:       1,
		MarkNsPerByte:   0.7,
		CopyNsPerByte:   0.9,
		PauseFloorNS:    150 * sim.Microsecond,
		TinyPauseNS:     50 * sim.Microsecond,
		YoungFracOfFree: 0.35,
		NurseryMinBytes: 2 << 20,
		NurseryMaxBytes: 512 << 20,
		EvacFraction:    0.35,
	}
	switch k {
	case Serial:
		base.Generational = true
		base.Style = StyleSTW
		base.STWThreads = 1
		base.BarrierBase = 0.010
	case Parallel:
		base.Generational = true
		base.Style = StyleSTW
		base.STWThreads = cores
		base.ParLoss = 0.030
		base.BarrierBase = 0.012
		base.PauseFloorNS = 250 * sim.Microsecond
	case G1:
		base.Generational = true
		base.Style = StyleConcOld
		base.STWThreads = cores
		base.ConcThreads = conc
		base.ParLoss = 0.035
		base.BarrierBase = 0.045
		base.BarrierConc = 0.020
		base.MarkNsPerByte = 0.85
		base.CopyNsPerByte = 1.1
		base.PauseFloorNS = 350 * sim.Microsecond
		base.ConcTriggerFrac = 0.45
		base.MixedCopyFrac = 0.30
		base.AdaptiveTrigger = true
	case Shenandoah:
		base.Style = StyleConcFull
		base.STWThreads = cores
		base.ConcThreads = cores / 2
		base.ParLoss = 0.035
		base.BarrierBase = 0.120
		base.BarrierConc = 0.060
		base.MarkNsPerByte = 0.55
		base.CopyNsPerByte = 0.75
		base.PauseFloorNS = 400 * sim.Microsecond
		base.TinyPauseNS = 60 * sim.Microsecond
		base.ConcTriggerFrac = 0.65
		base.Pacer = true
		base.PacerFreeFrac = 0.20
		base.PacerMaxStallNS = 1.5 * sim.Millisecond
	case ZGC:
		base.Style = StyleConcFull
		base.STWThreads = cores
		base.ConcThreads = cores / 2
		base.ParLoss = 0.035
		base.BarrierBase = 0.070
		base.BarrierConc = 0.050
		base.MarkNsPerByte = 0.60
		base.CopyNsPerByte = 0.80
		base.PauseFloorNS = 400 * sim.Microsecond
		base.TinyPauseNS = 40 * sim.Microsecond
		base.ConcTriggerFrac = 0.60
		base.Expansion = 1.45
		base.Pacer = true
		base.PacerFreeFrac = 0.10
		base.PacerMaxStallNS = 0.8 * sim.Millisecond
	case GenZGC:
		base.Generational = true
		base.Style = StyleConcFull
		base.STWThreads = cores
		base.ConcThreads = cores / 2
		base.ParLoss = 0.035
		base.BarrierBase = 0.080
		base.BarrierConc = 0.050
		base.MarkNsPerByte = 0.60
		base.CopyNsPerByte = 0.80
		base.PauseFloorNS = 400 * sim.Microsecond
		base.TinyPauseNS = 40 * sim.Microsecond
		base.ConcTriggerFrac = 0.65
		base.Expansion = 1.45
		base.Pacer = true
		base.PacerFreeFrac = 0.10
		base.PacerMaxStallNS = 0.8 * sim.Millisecond
	default:
		panic(fmt.Sprintf("gc: no preset for %v", k))
	}
	if base.ConcThreads < 1 {
		base.ConcThreads = 1
	}
	return base
}
