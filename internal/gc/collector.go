package gc

import (
	"fmt"

	"chopin/internal/heap"
	"chopin/internal/obs"
	"chopin/internal/sim"
	"chopin/internal/trace"
)

// Collector is a garbage collector instance bound to one simulated run. It
// mediates every mutator allocation, schedules collection work on its own
// simulated threads, and records telemetry.
//
// Protocol: the workload calls Alloc before each mutator quantum; the done
// callback fires (immediately or after GC activity) with ok=false only on
// OutOfMemory. Mutator threads must be registered so stop-the-world pauses
// can block them, and mutator quanta may only be started from quantum
// completions or Alloc callbacks — never directly from timers — so that no
// mutator can start running inside a pause.
type Collector struct {
	p    Params
	eng  *sim.Engine
	heap *heap.Heap
	log  *trace.Log
	rec  obs.Recorder

	mutators []*sim.Thread

	stwWorkers  []*sim.Thread
	concWorkers []*sim.Thread

	inPause    bool
	pauseHook  func(paused bool) // pause-transition observer (SetPauseHook)
	pauseStart sim.Time
	// pending and deferred are FIFO queues drained at pause end; both use a
	// head index and compact when empty so the backing arrays are reused for
	// the whole run instead of reallocated per pause.
	pending      []pendingAlloc
	pendingHead  int
	deferred     []deferredOp
	deferredHead int

	// The pause machinery is a single-flight state machine: only one world
	// pause is ever in flight (nested pauses panic), so its continuation
	// lives in collector fields and the STW workers share one pre-bound
	// completion callback instead of per-pause closures. Likewise for the
	// concurrent workers and the failing-allocation escalation chain
	// (allocCont/allocBytes/allocDone): a chain suspends at most once per
	// pause, and new allocations defer to pending until it resolves.
	pauseRemaining int
	pauseTotalCPU  float64
	pauseCont      pauseCont
	stwDoneFn      func()
	concDoneFn     func()

	allocCont  allocContKind
	allocBytes float64
	allocDone  func(bool)

	// freeStalls recycles pacer-stall timer continuations (the one callback
	// that must capture per-request state while multiple mutators stall
	// concurrently).
	freeStalls *stallCont

	cycle *cycleState
	// freeCycle recycles cycleStates (only one cycle runs at a time, so a
	// single slot suffices). A cancelled cycle's pointer may still sit in the
	// deferred queue when it is recycled; deferredOp.id detects that.
	freeCycle *cycleState
	// mutFactor caches MutatorFactor's value. The barrier tax only changes
	// when a concurrent cycle starts or ends, so it is recomputed on those
	// transitions instead of per mutator slice (the workload runner reads it
	// before every quantum).
	mutFactor float64
	// fastBudget is the bump-allocation fast path: the number of bytes that
	// can be allocated before *any* collector policy could possibly act — the
	// heap filling up, the concurrent trigger being crossed, or the nursery
	// budget being exhausted. While a request fits strictly inside the
	// budget, Alloc is a pure bump (heap.AllocFast) plus a subtraction; the
	// budget is recomputed whenever collector state changes (collection
	// completions via resizeNursery, cycle transitions, trigger adaptation,
	// pause boundaries) and zeroed whenever the slow path must decide
	// (in-pause, active cycle, OOM). See refreshFastBudget for the exact
	// bounds and why strict inequality keeps this behaviour-identical to the
	// slow path.
	fastBudget float64
	// blockedScratch is pauseWorld's reusable buffer of mutators blocked by
	// the current pause; only one pause is in flight at a time (nested
	// pauses panic), so a single buffer serves the whole run.
	blockedScratch []*sim.Thread
	// cycleSeq numbers every collection (young, full, concurrent) within
	// the run; activeID is the collection that owns the pause currently in
	// flight. Both are assigned unconditionally — IDs are part of the
	// deterministic run, telemetry merely reports them — so the event
	// stream is identical whether or not a recorder is attached.
	cycleSeq int64
	activeID int64
	// lastCycleAlloc is TotalAllocated when the previous concurrent cycle
	// finished; a new cycle needs fresh allocation behind it, or an
	// occupancy sitting just above the trigger would re-cycle continuously.
	lastCycleAlloc float64
	// trigger is the live concurrent-cycle trigger occupancy; with
	// AdaptiveTrigger it moves like G1's adaptive IHOP — earlier after a
	// degeneration, later after comfortable cycles.
	trigger float64
	nursery float64
	oom     bool

	// exposed run counters
	degenerations int
}

type pendingAlloc struct {
	bytes float64
	done  func(bool)
}

// deferredOp is one queued end-of-pause continuation: either a mutator's
// post-allocation policy run (done set) or a concurrent cycle completion
// (cy set). id snapshots cy.id at enqueue time: cycleStates are pooled, so
// by the time the entry drains the pointer may have been recycled into a
// newer cycle — a mismatched id marks the entry stale.
type deferredOp struct {
	done func(bool)
	cy   *cycleState
	id   int64
}

// pauseContKind selects the pause-end continuation held in Collector.pauseCont.
type pauseContKind int

const (
	pauseEndNone pauseContKind = iota
	// pauseEndSTWCollect closes a stop-the-world collection: resize the
	// nursery, log the event, then resume the allocation chain (allocCont).
	pauseEndSTWCollect
	// pauseEndCycleStart is a concurrent cycle's initial mark: launch the
	// concurrent workers.
	pauseEndCycleStart
	// pauseEndCycleFinish is a concurrent cycle's final pause: bookkeeping
	// and the cycle's trace event.
	pauseEndCycleFinish
)

// pauseCont carries the in-flight pause's continuation state.
type pauseCont struct {
	kind   pauseContKind
	gcKind trace.GCKind
	st     heap.CollectStats
	id     int64
	cause  int64
	cy     *cycleState
}

// allocContKind selects what happens to the suspended allocation chain when
// a stop-the-world collection's pause ends.
type allocContKind int

const (
	allocContNone allocContKind = iota
	// allocContDone: the allocation already succeeded; the collection was
	// nursery housekeeping. Resume the mutator.
	allocContDone
	// allocContRetryYoung: retry after a young collection; escalate to a
	// full collection on failure.
	allocContRetryYoung
	// allocContRetryFull: retry after a full collection; OOM on failure.
	allocContRetryFull
)

// stallCont is a pooled pacer-stall timer continuation.
type stallCont struct {
	c     *Collector
	bytes float64
	done  func(bool)
	fn    func() // bound once to fire
	next  *stallCont
}

func (c *Collector) newStallCont(bytes float64, done func(bool)) *stallCont {
	sc := c.freeStalls
	if sc == nil {
		sc = &stallCont{c: c}
		sc.fn = sc.fire
	} else {
		c.freeStalls = sc.next
	}
	sc.bytes, sc.done = bytes, done
	return sc
}

// fire re-enters the allocation path after the stall elapses, returning the
// continuation to the pool first (allocAfterStall may stall again and claim
// it immediately).
func (sc *stallCont) fire() {
	c := sc.c
	bytes, done := sc.bytes, sc.done
	sc.done = nil
	sc.next = c.freeStalls
	c.freeStalls = sc
	c.allocAfterStall(bytes, done)
}

type cycleState struct {
	id        int64
	snap      heap.Snapshot
	minor     bool // GenZGC young cycle
	start     sim.Time
	cpuStart  float64
	traced    float64 // live bytes the cycle must trace (set at start)
	remaining int
	cancelled bool
}

// New binds a collector with parameters p to an engine, heap and log.
func New(p Params, eng *sim.Engine, h *heap.Heap, log *trace.Log) *Collector {
	if p.STWThreads < 1 {
		p.STWThreads = 1
	}
	c := &Collector{p: p, eng: eng, heap: h, log: log, rec: obs.Nop, trigger: p.ConcTriggerFrac,
		// Pre-sized so the first pause's mutator sweep, the first deferred
		// allocation, and the first cycle's state never allocate on a
		// stepping hot loop.
		blockedScratch: make([]*sim.Thread, 0, 8),
		deferred:       make([]deferredOp, 0, 8),
		freeCycle:      &cycleState{}}
	for i := 0; i < p.STWThreads; i++ {
		c.stwWorkers = append(c.stwWorkers, eng.NewThread(fmt.Sprintf("gc-stw-%d", i)))
	}
	for i := 0; i < p.ConcThreads; i++ {
		c.concWorkers = append(c.concWorkers, eng.NewThread(fmt.Sprintf("gc-conc-%d", i)))
	}
	c.stwDoneFn = c.stwWorkerDone
	c.concDoneFn = c.concWorkerDone
	c.updateMutatorFactor()
	c.resizeNursery()
	return c
}

// Params returns the collector's configuration.
func (c *Collector) Params() Params { return c.p }

// SetRecorder attaches a telemetry Recorder (nil restores the no-op). Phase
// events are emitted through addEvent alongside the trace.Log entry they
// mirror, so per-kind telemetry sums reproduce the log's totals exactly.
func (c *Collector) SetRecorder(r obs.Recorder) { c.rec = obs.Or(r) }

// addEvent records a completed collection phase in the trace log and, when
// telemetry is live, emits the matching gc-phase-end event, stamped with the
// collection's cycle ID (and the causing cycle, for degenerate collections).
// The event copies the log entry's fields verbatim (wall pause, GC CPU,
// bytes reclaimed), so summing telemetry by kind reconstructs TotalPauseNS
// and TotalGCCPUNS.
func (c *Collector) addEvent(ev trace.GCEvent, id, cause int64) {
	c.log.AddEvent(ev)
	if c.rec.Enabled() {
		c.rec.Record(obs.Event{
			Kind:  obs.KindGCPhaseEnd,
			TNS:   ev.End,
			Phase: ev.Kind.String(),
			DurNS: ev.PauseNS,
			CPUNS: ev.CPUNS,
			Value: ev.Reclaimed,
			Aux:   ev.UsedAfter,
			Cycle: id,
			Cause: cause,
		})
	}
}

// phaseStart opens a new collection: it assigns the next cycle ID, marks it
// the owner of upcoming pauses, and emits a gc-phase-start event when
// telemetry is live. cause links a degenerate collection to the concurrent
// cycle that lost the race (zero otherwise).
func (c *Collector) phaseStart(kind trace.GCKind, cause int64) int64 {
	c.cycleSeq++
	id := c.cycleSeq
	c.activeID = id
	if c.rec.Enabled() {
		c.rec.Record(obs.Event{
			Kind:  obs.KindGCPhaseStart,
			TNS:   c.eng.Now(),
			Phase: kind.String(),
			Cycle: id,
			Cause: cause,
		})
	}
	return id
}

// Degenerations returns how many times a concurrent cycle lost the race and
// fell back to a stop-the-world full collection.
func (c *Collector) Degenerations() int { return c.degenerations }

// Paused reports whether the world is currently stopped: mutator quanta are
// deferred and any request routed here waits out the pause. A GC-aware load
// balancer reads this to route around pausing replicas.
func (c *Collector) Paused() bool { return c.inPause }

// SetPauseHook installs fn to observe every stop-the-world transition: it is
// called with true the instant the world stops (before any STW work runs)
// and false the instant it restarts (before blocked mutators resume). A
// GC-aware fleet balancer uses this to maintain its paused-replica index
// without polling; a nil hook (the default) costs one branch per pause. The
// hook runs inside the pause machinery and must not re-enter the collector.
func (c *Collector) SetPauseHook(fn func(paused bool)) { c.pauseHook = fn }

// RegisterMutator declares a mutator thread subject to STW pauses.
func (c *Collector) RegisterMutator(t *sim.Thread) {
	c.mutators = append(c.mutators, t)
}

// MutatorFactor returns the current execution-time multiplier mutator quanta
// must pay for the collector's barriers. The value is cached and invalidated
// on cycle-phase transitions (updateMutatorFactor), since those are the only
// points at which it can change.
func (c *Collector) MutatorFactor() float64 { return c.mutFactor }

// updateMutatorFactor recomputes the cached barrier tax; callers are the
// cycle-phase transitions (start, finish, cancel) and construction.
func (c *Collector) updateMutatorFactor() {
	f := 1 + c.p.BarrierBase
	if c.cycle != nil {
		f += c.p.BarrierConc
	}
	c.mutFactor = f
}

// GCCPU returns the total CPU consumed by the collector's threads so far.
// Thread.CPU materializes in-flight service credit lazily, so the sum is
// exact even when workers are mid-quantum (e.g. during a concurrent cycle).
func (c *Collector) GCCPU() float64 {
	var sum float64
	for _, t := range c.stwWorkers {
		sum += t.CPU()
	}
	for _, t := range c.concWorkers {
		sum += t.CPU()
	}
	return sum
}

// resizeNursery recomputes the young-space budget from current free space.
func (c *Collector) resizeNursery() {
	n := c.heap.Free() * c.p.YoungFracOfFree
	if n < c.p.NurseryMinBytes {
		n = c.p.NurseryMinBytes
	}
	if c.p.NurseryMaxBytes > 0 && n > c.p.NurseryMaxBytes {
		n = c.p.NurseryMaxBytes
	}
	c.nursery = n
	c.refreshFastBudget()
}

// refreshFastBudget recomputes how many bytes the bump fast path may hand
// out before any policy decision could differ from doing nothing:
//
//   - the allocation must fit (TryAlloc fails when used+b > capacity);
//   - it must not reach the concurrent trigger (maybeStartCycle acts when
//     post-allocation occupancy >= trigger*capacity — for StyleConcOld the
//     occupancy is old-space only, which mutator allocation cannot move, but
//     if it already sits at the trigger the per-allocation spacing rule must
//     be consulted, so the fast path is disabled);
//   - it must not exhaust the nursery (afterSuccessfulAlloc collects when
//     post-allocation young >= nursery).
//
// Every bound shrinks linearly in allocated bytes (or not at all), so one
// scalar decremented per fast allocation tracks all of them exactly; Alloc
// requires bytes strictly below the remaining budget, which keeps each ">="
// threshold unreached and the slow path's decisions vacuous. The budget is
// zero whenever the slow path must run: during pauses (allocations defer),
// while a concurrent cycle is active (the pacer may stall and the cycle's
// completion may be pending), and after OOM.
func (c *Collector) refreshFastBudget() {
	if c.oom || c.inPause || c.cycle != nil {
		c.fastBudget = 0
		return
	}
	cap := c.heap.Capacity()
	b := cap - c.heap.Used()
	if c.p.ConcTriggerFrac > 0 {
		if c.p.Style == StyleConcOld {
			if c.heap.OldLive()+c.heap.OldDead() >= c.trigger*cap {
				b = 0
			}
		} else if t := c.trigger*cap - c.heap.Used(); t < b {
			b = t
		}
	}
	if c.p.Generational {
		if n := c.nursery - c.heap.Young(); n < b {
			b = n
		}
	}
	if b < 0 {
		b = 0
	}
	c.fastBudget = b
}

// Alloc requests bytes for a mutator; done fires when the allocation is
// resolved. A false argument means the collector exhausted every option
// (OutOfMemoryError).
func (c *Collector) Alloc(bytes float64, done func(ok bool)) {
	// Bump fast path: strictly inside the precomputed budget, no collector
	// policy can act — allocate and return. This is the steady-state route
	// for every mutator slice between collections.
	if bytes < c.fastBudget && bytes >= 0 {
		c.fastBudget -= bytes
		c.heap.AllocFast(bytes)
		done(true)
		return
	}
	if c.oom {
		done(false)
		return
	}
	if c.inPause {
		c.pending = append(c.pending, pendingAlloc{bytes, done})
		return
	}
	// Pacing: while a concurrent cycle races the application, allocation is
	// throttled as free space runs out (Shenandoah's pacer, ZGC's
	// allocation stalls).
	if c.cycle != nil && c.p.Pacer {
		if stall := c.pacerStall(); stall > 0 {
			c.log.AddStall(stall)
			if c.rec.Enabled() {
				// TNS is the stall's start; Cause attributes it to the
				// concurrent cycle whose pacer throttled the allocation.
				c.rec.Record(obs.Event{
					Kind: obs.KindPacerStall, TNS: c.eng.Now(),
					DurNS: stall, Cause: c.cycle.id,
				})
			}
			c.eng.After(stall, c.newStallCont(bytes, done).fn)
			return
		}
	}
	if c.tryAlloc(bytes) {
		c.afterSuccessfulAlloc(done)
		return
	}
	c.handleFailure(bytes, done)
}

// tryAlloc is the slow path's heap allocation. A success consumes free space,
// so the fast-path budget shrinks by the same bytes: every bound the budget
// tracks decreases linearly with allocation (or, for G1's old-space trigger,
// not at all), so the decrement keeps it conservative without a full refresh.
func (c *Collector) tryAlloc(bytes float64) bool {
	if !c.heap.TryAlloc(bytes) {
		return false
	}
	if c.fastBudget > 0 {
		c.fastBudget -= bytes
		if c.fastBudget < 0 {
			c.fastBudget = 0
		}
	}
	return true
}

// allocAfterStall re-enters Alloc once a pacing stall elapses, deferring if a
// pause began meanwhile.
func (c *Collector) allocAfterStall(bytes float64, done func(bool)) {
	if c.inPause {
		c.pending = append(c.pending, pendingAlloc{bytes, done})
		return
	}
	// Do not stall twice in a row for the same request: proceed or collect.
	if c.tryAlloc(bytes) {
		c.afterSuccessfulAlloc(done)
		return
	}
	c.handleFailure(bytes, done)
}

// afterSuccessfulAlloc runs post-allocation policy: concurrent-cycle
// triggering and nursery-exhaustion young collections. Starting a concurrent
// cycle takes a synchronous initial pause, in which case the rest of the
// policy (and the mutator's continuation) must wait for the pause to end.
func (c *Collector) afterSuccessfulAlloc(done func(bool)) {
	c.maybeStartCycle()
	if c.inPause {
		c.deferred = append(c.deferred, deferredOp{done: done})
		return
	}
	if c.p.Generational && c.heap.Young() >= c.nursery {
		if c.p.Style == StyleConcFull {
			// GenZGC: minor collections are concurrent too.
			c.maybeStartMinorCycle()
			done(true)
			return
		}
		c.allocCont, c.allocBytes, c.allocDone = allocContDone, 0, done
		c.stwYoung()
		return
	}
	done(true)
}

// pacerStall returns how long an allocating mutator must stall right now.
func (c *Collector) pacerStall() float64 {
	threshold := c.p.PacerFreeFrac * c.heap.Capacity()
	free := c.heap.Free()
	if free >= threshold || threshold <= 0 {
		return 0
	}
	deficit := 1 - free/threshold
	return deficit * c.p.PacerMaxStallNS
}

// handleFailure escalates an allocation failure: young collection first for
// generational collectors, then a full (or degenerate) STW collection, then
// OOM. The chain's state (bytes, done, next step) suspends in the allocCont
// fields across each collection's pause; runAllocCont resumes it.
func (c *Collector) handleFailure(bytes float64, done func(bool)) {
	c.allocBytes, c.allocDone = bytes, done
	if c.cycle == nil && c.p.Generational && c.heap.Young() > 0 {
		c.allocCont = allocContRetryYoung
		c.stwYoung()
		return
	}
	// Either the concurrent cycle lost the race, or there is nothing young
	// to collect: go straight to the full collection.
	c.failFull()
}

// failFull runs the chain's last resort: cancel any concurrent cycle and
// take a full (or degenerate) STW collection, retrying the allocation at
// its end (allocContRetryFull).
func (c *Collector) failFull() {
	fullKind := trace.GCFull
	if c.p.Style == StyleConcFull {
		fullKind = trace.GCDegenerate
	}
	var cause int64
	if c.cycle != nil {
		cause = c.cycle.id
		c.cancelCycle()
	}
	c.degenerationsIf(fullKind, cause)
	// Any full collection means the concurrent policy started too late
	// (G1 logs these as full GCs, not degenerations).
	c.adaptTrigger(-0.08)
	c.allocCont = allocContRetryFull
	c.stwFull(fullKind, cause)
}

// runAllocCont resumes the suspended allocation chain after a stop-the-world
// collection completes.
func (c *Collector) runAllocCont() {
	cont, bytes, done := c.allocCont, c.allocBytes, c.allocDone
	switch cont {
	case allocContDone:
		c.allocCont, c.allocDone = allocContNone, nil
		done(true)
	case allocContRetryYoung:
		if c.tryAlloc(bytes) {
			c.allocCont, c.allocDone = allocContNone, nil
			done(true)
			return
		}
		c.failFull() // chain state stays set; the full collection retries
	case allocContRetryFull:
		c.allocCont, c.allocDone = allocContNone, nil
		if c.tryAlloc(bytes) {
			done(true)
			return
		}
		c.oom = true
		c.fastBudget = 0
		if c.rec.Enabled() {
			c.rec.Record(obs.Event{Kind: obs.KindOOM, TNS: c.eng.Now(), Value: bytes, Err: "oom"})
		}
		done(false)
	}
}

func (c *Collector) degenerationsIf(kind trace.GCKind, cause int64) {
	if kind == trace.GCDegenerate {
		c.degenerations++
		if c.rec.Enabled() {
			c.rec.Record(obs.Event{Kind: obs.KindDegenerateGC, TNS: c.eng.Now(), Cause: cause})
		}
	}
}

// adaptTrigger nudges the concurrent trigger occupancy when the collector's
// AdaptiveTrigger policy is enabled, clamped to a sane band.
func (c *Collector) adaptTrigger(delta float64) {
	if !c.p.AdaptiveTrigger {
		return
	}
	c.trigger += delta
	if c.trigger < 0.20 {
		c.trigger = 0.20
	}
	if c.trigger > 0.75 {
		c.trigger = 0.75
	}
	c.refreshFastBudget()
}

// stwYoung performs a stop-the-world young collection. The caller must have
// parked its continuation in the allocCont fields; it resumes at pause end.
func (c *Collector) stwYoung() {
	id := c.phaseStart(trace.GCYoung, 0)
	st := c.heap.CollectYoung()
	serial := c.p.PauseFloorNS +
		c.p.MarkNsPerByte*st.ScannedBytes + c.p.CopyNsPerByte*st.CopiedBytes
	c.pauseWorld(serial, pauseCont{kind: pauseEndSTWCollect, gcKind: trace.GCYoung, st: st, id: id})
}

// stwFull performs a stop-the-world full collection (or a degenerate one for
// a concurrent collector that lost the race; cause is then the lost cycle).
// Like stwYoung, the allocation chain resumes from allocCont at pause end.
func (c *Collector) stwFull(kind trace.GCKind, cause int64) {
	id := c.phaseStart(kind, cause)
	st := c.heap.CollectFull()
	serial := c.p.PauseFloorNS +
		c.p.MarkNsPerByte*st.ScannedBytes + c.p.CopyNsPerByte*st.CopiedBytes
	c.pauseWorld(serial, pauseCont{kind: pauseEndSTWCollect, gcKind: kind, st: st, id: id, cause: cause})
}

// maybeStartCycle begins a concurrent (major) cycle when the trigger
// occupancy is crossed.
func (c *Collector) maybeStartCycle() {
	if c.cycle != nil || c.p.ConcTriggerFrac <= 0 {
		return
	}
	occ := c.heap.Used()
	if c.p.Style == StyleConcOld {
		occ = c.heap.OldLive() + c.heap.OldDead()
	}
	cap := c.heap.Capacity()
	if occ < c.trigger*cap {
		return
	}
	// Cycle spacing: unless the heap is nearly exhausted, require fresh
	// allocation worth 20% of capacity since the previous cycle.
	if occ < 0.85*cap && c.heap.TotalAllocated()-c.lastCycleAlloc < 0.2*cap {
		return
	}
	c.startCycle(false)
}

// maybeStartMinorCycle begins a GenZGC-style concurrent young collection.
func (c *Collector) maybeStartMinorCycle() {
	if c.cycle != nil {
		return
	}
	c.startCycle(true)
}

// startCycle snapshots the heap, takes the initial tiny pause, and launches
// concurrent workers (from the pause-end continuation).
func (c *Collector) startCycle(minor bool) {
	id := c.phaseStart(trace.GCConcurrent, 0)
	snap, traced := c.heap.SnapshotForConcurrent()
	if minor {
		traced = c.heap.Young() * 0.5
	}
	cy := c.freeCycle
	if cy == nil {
		cy = &cycleState{}
	} else {
		c.freeCycle = nil
	}
	*cy = cycleState{id: id, snap: snap, minor: minor, start: c.eng.Now(), cpuStart: c.concCPU(), traced: traced}
	c.cycle = cy
	c.updateMutatorFactor()
	c.pauseWorld(c.p.TinyPauseNS, pauseCont{kind: pauseEndCycleStart, cy: cy})
}

// concWorkerDone is the shared completion callback for every concurrent
// worker quantum. It may read c.cycle directly: Thread.Abandon clears a
// cancelled cycle's pending callbacks, and a new cycle only starts once
// c.cycle is nil again, so a firing callback always belongs to the live cycle.
func (c *Collector) concWorkerDone() {
	cy := c.cycle
	cy.remaining--
	if cy.remaining == 0 && !cy.cancelled {
		c.tryFinishCycle(cy)
	}
}

// concCPU sums concurrent workers' CPU, for per-cycle attribution. It is
// read both at cycle start (workers idle) and at cancellation (workers
// mid-quantum); the engine's lazy accounting keeps both reads exact.
func (c *Collector) concCPU() float64 {
	var sum float64
	for _, t := range c.concWorkers {
		sum += t.CPU()
	}
	return sum
}

// tryFinishCycle completes a concurrent cycle with its final pause; if the
// world is currently paused (e.g. a G1 young collection is in flight), the
// completion is deferred to the end of that pause.
func (c *Collector) tryFinishCycle(cy *cycleState) {
	if cy.cancelled {
		return
	}
	if c.inPause {
		c.deferred = append(c.deferred, deferredOp{cy: cy, id: cy.id})
		return
	}
	st := c.heap.FinishConcurrent(cy.snap)
	finalWork := c.p.TinyPauseNS
	kind := trace.GCConcurrent
	if c.p.Style == StyleConcOld {
		// G1: the cycle ends in mixed evacuation pauses that copy live data
		// out of the most-garbage-rich regions.
		finalWork += c.p.CopyNsPerByte * st.ReclaimedBytes * c.p.MixedCopyFrac
		kind = trace.GCMixed
	}
	c.activeID = cy.id // the final pause belongs to the finishing cycle
	c.pauseWorld(finalWork, pauseCont{kind: pauseEndCycleFinish, gcKind: kind, st: st, cy: cy})
}

// cancelCycle aborts the active concurrent cycle (degeneration): workers
// abandon their remaining work; CPU already burned is logged as a fruitless
// concurrent event.
func (c *Collector) cancelCycle() {
	cy := c.cycle
	if cy == nil {
		return
	}
	cy.cancelled = true
	c.cycle = nil
	c.updateMutatorFactor()
	c.lastCycleAlloc = c.heap.TotalAllocated()
	for _, w := range c.concWorkers {
		if w.State() == sim.StateRunnable {
			w.Abandon()
		}
	}
	c.addEvent(trace.GCEvent{
		Kind:      trace.GCConcurrent,
		Start:     cy.start,
		End:       c.eng.Now(),
		CPUNS:     c.concCPU() - cy.cpuStart,
		UsedAfter: c.heap.Used(),
		LiveAfter: c.heap.TargetLive(),
	}, cy.id, 0)
	*cy = cycleState{}
	c.freeCycle = cy
}

// pauseWorld blocks every runnable mutator and executes serialCPU of GC work
// on the STW gang (inflated by the parallel-efficiency loss). The pause's
// continuation pc runs at pause end (endPause), before the mutators retry
// deferred allocations. Only one pause is ever in flight, so the pause state
// lives in collector fields and every STW worker shares the pre-bound
// stwDoneFn callback — no per-pause closures.
func (c *Collector) pauseWorld(serialCPU float64, pc pauseCont) {
	if c.inPause {
		panic("gc: nested world pause")
	}
	c.inPause = true
	if c.pauseHook != nil {
		c.pauseHook(true)
	}
	c.fastBudget = 0 // allocations must defer until the pause ends
	c.pauseStart = c.eng.Now()
	blocked := c.blockedScratch[:0]
	for _, m := range c.mutators {
		if m.State() == sim.StateRunnable {
			m.Block()
			blocked = append(blocked, m)
		}
	}
	// Keep any growth for the next pause; only one pause is ever in flight,
	// and endPause finishes with the slice before another can begin.
	c.blockedScratch = blocked
	k := c.p.STWThreads
	total := serialCPU * (1 + c.p.ParLoss*float64(k-1))
	share := total / float64(k)
	c.pauseRemaining = k
	c.pauseTotalCPU = total
	c.pauseCont = pc
	for i := 0; i < k; i++ {
		c.stwWorkers[i].Exec(share, c.stwDoneFn)
	}
}

// stwWorkerDone is the shared completion callback for every STW worker
// quantum; the last worker to finish closes out the pause.
func (c *Collector) stwWorkerDone() {
	c.pauseRemaining--
	if c.pauseRemaining == 0 {
		c.endPause()
	}
}

// endPause closes out a world pause: telemetry, mutator release, the pause's
// continuation, then deferred completions and pending allocation retries.
func (c *Collector) endPause() {
	now := c.eng.Now()
	wall := float64(now - c.pauseStart)
	c.log.AddPause(trace.Pause{Start: c.pauseStart, End: now})
	if c.rec.Enabled() {
		c.rec.Record(obs.Event{Kind: obs.KindGCPause, TNS: now, DurNS: wall, Cycle: c.activeID})
	}
	c.inPause = false
	if c.pauseHook != nil {
		c.pauseHook(false)
	}
	for _, m := range c.blockedScratch {
		m.Unblock()
	}
	c.runPauseEnd(c.pauseTotalCPU, wall)
	// Deferred cycle completions run before allocation retries so reclaimed
	// space is visible to them; both loops stop if a new pause begins. The
	// queues drain through a head index and compact when empty, reusing their
	// backing arrays across pauses.
	for !c.inPause && c.deferredHead < len(c.deferred) {
		op := c.deferred[c.deferredHead]
		c.deferred[c.deferredHead] = deferredOp{}
		c.deferredHead++
		if op.cy != nil {
			if op.cy.id == op.id { // stale entries point at a recycled cycleState
				c.tryFinishCycle(op.cy)
			}
		} else {
			c.afterSuccessfulAlloc(op.done)
		}
	}
	if c.deferredHead == len(c.deferred) {
		c.deferred = c.deferred[:0]
		c.deferredHead = 0
	}
	for !c.inPause && c.pendingHead < len(c.pending) {
		pa := c.pending[c.pendingHead]
		c.pending[c.pendingHead] = pendingAlloc{}
		c.pendingHead++
		c.Alloc(pa.bytes, pa.done)
	}
	if c.pendingHead == len(c.pending) {
		c.pending = c.pending[:0]
		c.pendingHead = 0
	}
}

// runPauseEnd dispatches the in-flight pause's continuation.
func (c *Collector) runPauseEnd(cpu, wall float64) {
	pe := c.pauseCont
	c.pauseCont = pauseCont{}
	switch pe.kind {
	case pauseEndSTWCollect:
		c.resizeNursery()
		c.logEvent(pe.gcKind, pe.st, cpu, wall, pe.id, pe.cause)
		c.runAllocCont()
	case pauseEndCycleStart:
		cy := pe.cy
		if cy.cancelled {
			return
		}
		work := c.p.MarkNsPerByte*cy.traced + c.p.CopyNsPerByte*cy.traced*c.p.EvacFraction
		k := len(c.concWorkers)
		work *= 1 + c.p.ParLoss*float64(k-1)
		cy.remaining = k
		share := work / float64(k)
		for _, w := range c.concWorkers {
			w.Exec(share, c.concDoneFn)
		}
	case pauseEndCycleFinish:
		cy := pe.cy
		concCPU := c.concCPU() - cy.cpuStart
		c.cycle = nil
		c.updateMutatorFactor()
		c.lastCycleAlloc = c.heap.TotalAllocated()
		if c.heap.Free() > 0.5*c.heap.Capacity() {
			c.adaptTrigger(+0.02) // comfortable finish: collect later next time
		}
		c.resizeNursery()
		ev := trace.GCEvent{
			Kind:      pe.gcKind,
			Start:     cy.start,
			End:       c.eng.Now(),
			PauseNS:   wall,
			CPUNS:     cpu + concCPU,
			Reclaimed: pe.st.ReclaimedBytes,
			Copied:    pe.st.CopiedBytes,
			UsedAfter: c.heap.Used(),
			LiveAfter: c.heap.TargetLive(),
		}
		c.addEvent(ev, cy.id, 0)
		// The finished cycle has no outstanding references (its one possible
		// deferred completion was consumed to get here), so recycle it.
		*cy = cycleState{}
		c.freeCycle = cy
	}
}

// logEvent records a completed STW collection.
func (c *Collector) logEvent(kind trace.GCKind, st heap.CollectStats, cpu, wall float64, id, cause int64) {
	c.addEvent(trace.GCEvent{
		Kind:      kind,
		Start:     c.eng.Now() - int64(wall),
		End:       c.eng.Now(),
		PauseNS:   wall,
		CPUNS:     cpu,
		Reclaimed: st.ReclaimedBytes,
		Copied:    st.CopiedBytes,
		UsedAfter: c.heap.Used(),
		LiveAfter: c.heap.TargetLive(),
	}, id, cause)
}
