package gc

import (
	"fmt"

	"chopin/internal/heap"
	"chopin/internal/obs"
	"chopin/internal/sim"
	"chopin/internal/trace"
)

// Collector is a garbage collector instance bound to one simulated run. It
// mediates every mutator allocation, schedules collection work on its own
// simulated threads, and records telemetry.
//
// Protocol: the workload calls Alloc before each mutator quantum; the done
// callback fires (immediately or after GC activity) with ok=false only on
// OutOfMemory. Mutator threads must be registered so stop-the-world pauses
// can block them, and mutator quanta may only be started from quantum
// completions or Alloc callbacks — never directly from timers — so that no
// mutator can start running inside a pause.
type Collector struct {
	p    Params
	eng  *sim.Engine
	heap *heap.Heap
	log  *trace.Log
	rec  obs.Recorder

	mutators []*sim.Thread

	stwWorkers  []*sim.Thread
	concWorkers []*sim.Thread

	inPause    bool
	pauseStart sim.Time
	pending    []pendingAlloc
	deferred   []func()

	cycle *cycleState
	// cycleSeq numbers every collection (young, full, concurrent) within
	// the run; activeID is the collection that owns the pause currently in
	// flight. Both are assigned unconditionally — IDs are part of the
	// deterministic run, telemetry merely reports them — so the event
	// stream is identical whether or not a recorder is attached.
	cycleSeq int64
	activeID int64
	// lastCycleAlloc is TotalAllocated when the previous concurrent cycle
	// finished; a new cycle needs fresh allocation behind it, or an
	// occupancy sitting just above the trigger would re-cycle continuously.
	lastCycleAlloc float64
	// trigger is the live concurrent-cycle trigger occupancy; with
	// AdaptiveTrigger it moves like G1's adaptive IHOP — earlier after a
	// degeneration, later after comfortable cycles.
	trigger float64
	nursery float64
	oom     bool

	// exposed run counters
	degenerations int
}

type pendingAlloc struct {
	bytes float64
	done  func(bool)
}

type cycleState struct {
	id        int64
	snap      heap.Snapshot
	minor     bool // GenZGC young cycle
	start     sim.Time
	cpuStart  float64
	remaining int
	cancelled bool
}

// New binds a collector with parameters p to an engine, heap and log.
func New(p Params, eng *sim.Engine, h *heap.Heap, log *trace.Log) *Collector {
	if p.STWThreads < 1 {
		p.STWThreads = 1
	}
	c := &Collector{p: p, eng: eng, heap: h, log: log, rec: obs.Nop, trigger: p.ConcTriggerFrac}
	for i := 0; i < p.STWThreads; i++ {
		c.stwWorkers = append(c.stwWorkers, eng.NewThread(fmt.Sprintf("gc-stw-%d", i)))
	}
	for i := 0; i < p.ConcThreads; i++ {
		c.concWorkers = append(c.concWorkers, eng.NewThread(fmt.Sprintf("gc-conc-%d", i)))
	}
	c.resizeNursery()
	return c
}

// Params returns the collector's configuration.
func (c *Collector) Params() Params { return c.p }

// SetRecorder attaches a telemetry Recorder (nil restores the no-op). Phase
// events are emitted through addEvent alongside the trace.Log entry they
// mirror, so per-kind telemetry sums reproduce the log's totals exactly.
func (c *Collector) SetRecorder(r obs.Recorder) { c.rec = obs.Or(r) }

// addEvent records a completed collection phase in the trace log and, when
// telemetry is live, emits the matching gc-phase-end event, stamped with the
// collection's cycle ID (and the causing cycle, for degenerate collections).
// The event copies the log entry's fields verbatim (wall pause, GC CPU,
// bytes reclaimed), so summing telemetry by kind reconstructs TotalPauseNS
// and TotalGCCPUNS.
func (c *Collector) addEvent(ev trace.GCEvent, id, cause int64) {
	c.log.AddEvent(ev)
	if c.rec.Enabled() {
		c.rec.Record(obs.Event{
			Kind:  obs.KindGCPhaseEnd,
			TNS:   ev.End,
			Phase: ev.Kind.String(),
			DurNS: ev.PauseNS,
			CPUNS: ev.CPUNS,
			Value: ev.Reclaimed,
			Aux:   ev.UsedAfter,
			Cycle: id,
			Cause: cause,
		})
	}
}

// phaseStart opens a new collection: it assigns the next cycle ID, marks it
// the owner of upcoming pauses, and emits a gc-phase-start event when
// telemetry is live. cause links a degenerate collection to the concurrent
// cycle that lost the race (zero otherwise).
func (c *Collector) phaseStart(kind trace.GCKind, cause int64) int64 {
	c.cycleSeq++
	id := c.cycleSeq
	c.activeID = id
	if c.rec.Enabled() {
		c.rec.Record(obs.Event{
			Kind:  obs.KindGCPhaseStart,
			TNS:   c.eng.Now(),
			Phase: kind.String(),
			Cycle: id,
			Cause: cause,
		})
	}
	return id
}

// Degenerations returns how many times a concurrent cycle lost the race and
// fell back to a stop-the-world full collection.
func (c *Collector) Degenerations() int { return c.degenerations }

// RegisterMutator declares a mutator thread subject to STW pauses.
func (c *Collector) RegisterMutator(t *sim.Thread) {
	c.mutators = append(c.mutators, t)
}

// MutatorFactor returns the current execution-time multiplier mutator quanta
// must pay for the collector's barriers.
func (c *Collector) MutatorFactor() float64 {
	f := 1 + c.p.BarrierBase
	if c.cycle != nil {
		f += c.p.BarrierConc
	}
	return f
}

// GCCPU returns the total CPU consumed by the collector's threads so far.
// Thread.CPU materializes in-flight service credit lazily, so the sum is
// exact even when workers are mid-quantum (e.g. during a concurrent cycle).
func (c *Collector) GCCPU() float64 {
	var sum float64
	for _, t := range c.stwWorkers {
		sum += t.CPU()
	}
	for _, t := range c.concWorkers {
		sum += t.CPU()
	}
	return sum
}

// resizeNursery recomputes the young-space budget from current free space.
func (c *Collector) resizeNursery() {
	n := c.heap.Free() * c.p.YoungFracOfFree
	if n < c.p.NurseryMinBytes {
		n = c.p.NurseryMinBytes
	}
	if c.p.NurseryMaxBytes > 0 && n > c.p.NurseryMaxBytes {
		n = c.p.NurseryMaxBytes
	}
	c.nursery = n
}

// Alloc requests bytes for a mutator; done fires when the allocation is
// resolved. A false argument means the collector exhausted every option
// (OutOfMemoryError).
func (c *Collector) Alloc(bytes float64, done func(ok bool)) {
	if c.oom {
		done(false)
		return
	}
	if c.inPause {
		c.pending = append(c.pending, pendingAlloc{bytes, done})
		return
	}
	// Pacing: while a concurrent cycle races the application, allocation is
	// throttled as free space runs out (Shenandoah's pacer, ZGC's
	// allocation stalls).
	if c.cycle != nil && c.p.Pacer {
		if stall := c.pacerStall(); stall > 0 {
			c.log.AddStall(stall)
			if c.rec.Enabled() {
				// TNS is the stall's start; Cause attributes it to the
				// concurrent cycle whose pacer throttled the allocation.
				c.rec.Record(obs.Event{
					Kind: obs.KindPacerStall, TNS: c.eng.Now(),
					DurNS: stall, Cause: c.cycle.id,
				})
			}
			c.eng.After(stall, func() { c.allocAfterStall(bytes, done) })
			return
		}
	}
	if c.heap.TryAlloc(bytes) {
		c.afterSuccessfulAlloc(done)
		return
	}
	c.handleFailure(bytes, done)
}

// allocAfterStall re-enters Alloc once a pacing stall elapses, deferring if a
// pause began meanwhile.
func (c *Collector) allocAfterStall(bytes float64, done func(bool)) {
	if c.inPause {
		c.pending = append(c.pending, pendingAlloc{bytes, done})
		return
	}
	// Do not stall twice in a row for the same request: proceed or collect.
	if c.heap.TryAlloc(bytes) {
		c.afterSuccessfulAlloc(done)
		return
	}
	c.handleFailure(bytes, done)
}

// afterSuccessfulAlloc runs post-allocation policy: concurrent-cycle
// triggering and nursery-exhaustion young collections. Starting a concurrent
// cycle takes a synchronous initial pause, in which case the rest of the
// policy (and the mutator's continuation) must wait for the pause to end.
func (c *Collector) afterSuccessfulAlloc(done func(bool)) {
	c.maybeStartCycle()
	if c.inPause {
		c.deferred = append(c.deferred, func() { c.afterSuccessfulAlloc(done) })
		return
	}
	if c.p.Generational && c.heap.Young() >= c.nursery {
		if c.p.Style == StyleConcFull {
			// GenZGC: minor collections are concurrent too.
			c.maybeStartMinorCycle()
			done(true)
			return
		}
		c.stwYoung(func() { done(true) })
		return
	}
	done(true)
}

// pacerStall returns how long an allocating mutator must stall right now.
func (c *Collector) pacerStall() float64 {
	threshold := c.p.PacerFreeFrac * c.heap.Capacity()
	free := c.heap.Free()
	if free >= threshold || threshold <= 0 {
		return 0
	}
	deficit := 1 - free/threshold
	return deficit * c.p.PacerMaxStallNS
}

// handleFailure escalates an allocation failure: young collection first for
// generational collectors, then a full (or degenerate) STW collection, then
// OOM.
func (c *Collector) handleFailure(bytes float64, done func(bool)) {
	fullKind := trace.GCFull
	if c.p.Style == StyleConcFull {
		fullKind = trace.GCDegenerate
	}
	full := func() {
		var cause int64
		if c.cycle != nil {
			cause = c.cycle.id
			c.cancelCycle()
		}
		c.degenerationsIf(fullKind, cause)
		// Any full collection means the concurrent policy started too late
		// (G1 logs these as full GCs, not degenerations).
		c.adaptTrigger(-0.08)
		c.stwFull(fullKind, cause, func() {
			if c.heap.TryAlloc(bytes) {
				done(true)
				return
			}
			c.oom = true
			if c.rec.Enabled() {
				c.rec.Record(obs.Event{Kind: obs.KindOOM, TNS: c.eng.Now(), Value: bytes, Err: "oom"})
			}
			done(false)
		})
	}
	if c.cycle != nil {
		// The concurrent cycle lost the race.
		full()
		return
	}
	if c.p.Generational && c.heap.Young() > 0 {
		c.stwYoung(func() {
			if c.heap.TryAlloc(bytes) {
				done(true)
				return
			}
			full()
		})
		return
	}
	full()
}

func (c *Collector) degenerationsIf(kind trace.GCKind, cause int64) {
	if kind == trace.GCDegenerate {
		c.degenerations++
		if c.rec.Enabled() {
			c.rec.Record(obs.Event{Kind: obs.KindDegenerateGC, TNS: c.eng.Now(), Cause: cause})
		}
	}
}

// adaptTrigger nudges the concurrent trigger occupancy when the collector's
// AdaptiveTrigger policy is enabled, clamped to a sane band.
func (c *Collector) adaptTrigger(delta float64) {
	if !c.p.AdaptiveTrigger {
		return
	}
	c.trigger += delta
	if c.trigger < 0.20 {
		c.trigger = 0.20
	}
	if c.trigger > 0.75 {
		c.trigger = 0.75
	}
}

// stwYoung performs a stop-the-world young collection.
func (c *Collector) stwYoung(after func()) {
	id := c.phaseStart(trace.GCYoung, 0)
	st := c.heap.CollectYoung()
	serial := c.p.PauseFloorNS +
		c.p.MarkNsPerByte*st.ScannedBytes + c.p.CopyNsPerByte*st.CopiedBytes
	c.pauseWorld(serial, func(cpu, wall float64) {
		c.resizeNursery()
		c.logEvent(trace.GCYoung, st, cpu, wall, id, 0)
		after()
	})
}

// stwFull performs a stop-the-world full collection (or a degenerate one for
// a concurrent collector that lost the race; cause is then the lost cycle).
func (c *Collector) stwFull(kind trace.GCKind, cause int64, after func()) {
	id := c.phaseStart(kind, cause)
	st := c.heap.CollectFull()
	serial := c.p.PauseFloorNS +
		c.p.MarkNsPerByte*st.ScannedBytes + c.p.CopyNsPerByte*st.CopiedBytes
	c.pauseWorld(serial, func(cpu, wall float64) {
		c.resizeNursery()
		c.logEvent(kind, st, cpu, wall, id, cause)
		after()
	})
}

// maybeStartCycle begins a concurrent (major) cycle when the trigger
// occupancy is crossed.
func (c *Collector) maybeStartCycle() {
	if c.cycle != nil || c.p.ConcTriggerFrac <= 0 {
		return
	}
	occ := c.heap.Used()
	if c.p.Style == StyleConcOld {
		occ = c.heap.OldLive() + c.heap.OldDead()
	}
	cap := c.heap.Capacity()
	if occ < c.trigger*cap {
		return
	}
	// Cycle spacing: unless the heap is nearly exhausted, require fresh
	// allocation worth 20% of capacity since the previous cycle.
	if occ < 0.85*cap && c.heap.TotalAllocated()-c.lastCycleAlloc < 0.2*cap {
		return
	}
	c.startCycle(false)
}

// maybeStartMinorCycle begins a GenZGC-style concurrent young collection.
func (c *Collector) maybeStartMinorCycle() {
	if c.cycle != nil {
		return
	}
	c.startCycle(true)
}

// startCycle snapshots the heap, takes the initial tiny pause, and launches
// concurrent workers.
func (c *Collector) startCycle(minor bool) {
	id := c.phaseStart(trace.GCConcurrent, 0)
	snap, traced := c.heap.SnapshotForConcurrent()
	if minor {
		traced = c.heap.Young() * 0.5
	}
	cy := &cycleState{id: id, snap: snap, minor: minor, start: c.eng.Now(), cpuStart: c.concCPU()}
	c.cycle = cy
	c.pauseWorld(c.p.TinyPauseNS, func(cpu, wall float64) {
		if cy.cancelled {
			return
		}
		work := c.p.MarkNsPerByte*traced + c.p.CopyNsPerByte*traced*c.p.EvacFraction
		k := len(c.concWorkers)
		work *= 1 + c.p.ParLoss*float64(k-1)
		cy.remaining = k
		share := work / float64(k)
		for _, w := range c.concWorkers {
			w.Exec(share, func() {
				cy.remaining--
				if cy.remaining == 0 && !cy.cancelled {
					c.tryFinishCycle(cy)
				}
			})
		}
	})
}

// concCPU sums concurrent workers' CPU, for per-cycle attribution. It is
// read both at cycle start (workers idle) and at cancellation (workers
// mid-quantum); the engine's lazy accounting keeps both reads exact.
func (c *Collector) concCPU() float64 {
	var sum float64
	for _, t := range c.concWorkers {
		sum += t.CPU()
	}
	return sum
}

// tryFinishCycle completes a concurrent cycle with its final pause; if the
// world is currently paused (e.g. a G1 young collection is in flight), the
// completion is deferred to the end of that pause.
func (c *Collector) tryFinishCycle(cy *cycleState) {
	if cy.cancelled {
		return
	}
	if c.inPause {
		c.deferred = append(c.deferred, func() { c.tryFinishCycle(cy) })
		return
	}
	st := c.heap.FinishConcurrent(cy.snap)
	finalWork := c.p.TinyPauseNS
	kind := trace.GCConcurrent
	if c.p.Style == StyleConcOld {
		// G1: the cycle ends in mixed evacuation pauses that copy live data
		// out of the most-garbage-rich regions.
		finalWork += c.p.CopyNsPerByte * st.ReclaimedBytes * c.p.MixedCopyFrac
		kind = trace.GCMixed
	}
	c.activeID = cy.id // the final pause belongs to the finishing cycle
	c.pauseWorld(finalWork, func(cpu, wall float64) {
		concCPU := c.concCPU() - cy.cpuStart
		c.cycle = nil
		c.lastCycleAlloc = c.heap.TotalAllocated()
		if c.heap.Free() > 0.5*c.heap.Capacity() {
			c.adaptTrigger(+0.02) // comfortable finish: collect later next time
		}
		c.resizeNursery()
		ev := trace.GCEvent{
			Kind:      kind,
			Start:     cy.start,
			End:       c.eng.Now(),
			PauseNS:   wall,
			CPUNS:     cpu + concCPU,
			Reclaimed: st.ReclaimedBytes,
			Copied:    st.CopiedBytes,
			UsedAfter: c.heap.Used(),
			LiveAfter: c.heap.TargetLive(),
		}
		c.addEvent(ev, cy.id, 0)
	})
}

// cancelCycle aborts the active concurrent cycle (degeneration): workers
// abandon their remaining work; CPU already burned is logged as a fruitless
// concurrent event.
func (c *Collector) cancelCycle() {
	cy := c.cycle
	if cy == nil {
		return
	}
	cy.cancelled = true
	c.cycle = nil
	c.lastCycleAlloc = c.heap.TotalAllocated()
	for _, w := range c.concWorkers {
		if w.State() == sim.StateRunnable {
			w.Abandon()
		}
	}
	c.addEvent(trace.GCEvent{
		Kind:      trace.GCConcurrent,
		Start:     cy.start,
		End:       c.eng.Now(),
		CPUNS:     c.concCPU() - cy.cpuStart,
		UsedAfter: c.heap.Used(),
		LiveAfter: c.heap.TargetLive(),
	}, cy.id, 0)
}

// pauseWorld blocks every runnable mutator, executes serialCPU of GC work on
// the STW gang (inflated by the parallel-efficiency loss), and calls onEnd
// with the gang CPU and the wall duration before releasing the mutators and
// retrying deferred allocations.
func (c *Collector) pauseWorld(serialCPU float64, onEnd func(cpu, wall float64)) {
	if c.inPause {
		panic("gc: nested world pause")
	}
	c.inPause = true
	c.pauseStart = c.eng.Now()
	var blocked []*sim.Thread
	for _, m := range c.mutators {
		if m.State() == sim.StateRunnable {
			m.Block()
			blocked = append(blocked, m)
		}
	}
	k := c.p.STWThreads
	total := serialCPU * (1 + c.p.ParLoss*float64(k-1))
	share := total / float64(k)
	remaining := k
	for i := 0; i < k; i++ {
		c.stwWorkers[i].Exec(share, func() {
			remaining--
			if remaining == 0 {
				c.endPause(blocked, total, onEnd)
			}
		})
	}
}

// endPause closes out a world pause: telemetry, mutator release, deferred
// completions and pending allocation retries.
func (c *Collector) endPause(blocked []*sim.Thread, cpu float64, onEnd func(cpu, wall float64)) {
	now := c.eng.Now()
	wall := float64(now - c.pauseStart)
	c.log.AddPause(trace.Pause{Start: c.pauseStart, End: now})
	if c.rec.Enabled() {
		c.rec.Record(obs.Event{Kind: obs.KindGCPause, TNS: now, DurNS: wall, Cycle: c.activeID})
	}
	c.inPause = false
	for _, m := range blocked {
		m.Unblock()
	}
	onEnd(cpu, wall)
	// Deferred cycle completions run before allocation retries so reclaimed
	// space is visible to them; both loops stop if a new pause begins.
	for !c.inPause && len(c.deferred) > 0 {
		fn := c.deferred[0]
		c.deferred = c.deferred[1:]
		fn()
	}
	for !c.inPause && len(c.pending) > 0 {
		pa := c.pending[0]
		c.pending = c.pending[1:]
		c.Alloc(pa.bytes, pa.done)
	}
}

// logEvent records a completed STW collection.
func (c *Collector) logEvent(kind trace.GCKind, st heap.CollectStats, cpu, wall float64, id, cause int64) {
	c.addEvent(trace.GCEvent{
		Kind:      kind,
		Start:     c.eng.Now() - int64(wall),
		End:       c.eng.Now(),
		PauseNS:   wall,
		CPUNS:     cpu,
		Reclaimed: st.ReclaimedBytes,
		Copied:    st.CopiedBytes,
		UsedAfter: c.heap.Used(),
		LiveAfter: c.heap.TargetLive(),
	}, id, cause)
}
