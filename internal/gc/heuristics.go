package gc

import "fmt"

// ShenandoahMode selects one of Shenandoah's heuristics, mirroring the real
// collector's -XX:ShenandoahGCHeuristics options. The paper evaluates only
// the default (adaptive); the other modes are provided for the ablation
// study of how trigger policy moves the time-space tradeoff.
type ShenandoahMode int

// Shenandoah heuristics.
const (
	// ShenAdaptive is the production default: trigger by occupancy with
	// pacing (what Shenandoah.Params returns).
	ShenAdaptive ShenandoahMode = iota
	// ShenStatic triggers at a fixed, earlier occupancy and never paces:
	// predictable, but wastes cycles in roomy heaps and degenerates more in
	// tight ones.
	ShenStatic
	// ShenCompact collects continuously to minimise footprint, paying the
	// highest CPU overhead for the smallest heap occupancy.
	ShenCompact
	// ShenAggressive starts a new cycle as soon as the previous finishes
	// and paces hard; the stress-test configuration.
	ShenAggressive
)

func (m ShenandoahMode) String() string {
	switch m {
	case ShenAdaptive:
		return "adaptive"
	case ShenStatic:
		return "static"
	case ShenCompact:
		return "compact"
	case ShenAggressive:
		return "aggressive"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseShenandoahMode resolves a heuristic by name.
func ParseShenandoahMode(s string) (ShenandoahMode, error) {
	for _, m := range []ShenandoahMode{ShenAdaptive, ShenStatic, ShenCompact, ShenAggressive} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("gc: unknown Shenandoah heuristic %q", s)
}

// ShenandoahParams returns Shenandoah configured with the given heuristic.
func ShenandoahParams(mode ShenandoahMode, cores int) Params {
	p := Shenandoah.Params(cores)
	switch mode {
	case ShenAdaptive:
		// the preset
	case ShenStatic:
		p.ConcTriggerFrac = 0.50
		p.Pacer = false
	case ShenCompact:
		p.ConcTriggerFrac = 0.10
		p.PacerFreeFrac = 0.35
		p.PacerMaxStallNS *= 2
	case ShenAggressive:
		p.ConcTriggerFrac = 0.01
		p.PacerFreeFrac = 0.50
		p.PacerMaxStallNS *= 4
	}
	return p
}
