// Package harness orchestrates the paper's experiments: multi-invocation
// runs, per-benchmark minimum-heap identification, collector-by-heap-factor
// sweeps for LBO (Figures 1 and 5 and the appendix), latency experiments
// (Figures 3 and 6), and heap-occupancy timelines (appendix).
//
// It embodies the paper's methodological recommendations directly: heap
// sizes are always expressed as multiples of a measured per-benchmark
// minimum (H2), several invocations feed 95% confidence intervals (P1), and
// overheads are reported via LBO on both wall and task clock (O1/O2).
//
// Execution is delegated to the experiment engine (internal/exper) as job
// DAGs: each sweep's minimum-heap measurement is submitted as an anchor job
// up front (SubmitLBOGrid, SubmitLatency), and the moment an anchor
// resolves, every cell of its grid is submitted as one batch of
// content-addressed jobs — so a whole-suite plan keeps the engine's
// work-stealing pool saturated across host cores from the first probe to
// the last cell, min-heap probes deduplicate across experiments, and — when
// the engine carries a result cache — sweeps are incremental and resumable.
// Results are collected and merged in fixed grid order, never scheduler
// order, so merged output is byte-identical at any worker count.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"chopin/internal/exper"
	"chopin/internal/gc"
	"chopin/internal/latency"
	"chopin/internal/lbo"
	"chopin/internal/obs"
	"chopin/internal/stats"
	"chopin/internal/trace"
	"chopin/internal/workload"
)

// Options configures an experiment sweep.
type Options struct {
	// Collectors to evaluate; nil means the paper's five production
	// collectors in introduction order.
	Collectors []gc.Kind
	// HeapFactors are multiples of the measured minimum heap; nil means the
	// paper's 1-6x range with extra resolution at small heaps, where the
	// time-space tradeoff carries the information.
	HeapFactors []float64
	// Invocations per configuration (default 3; the paper uses 10).
	Invocations int
	// Iterations per invocation; the last is timed (default 3).
	Iterations int
	// Events per iteration; 0 scales the workload default down 4x to keep
	// sweeps affordable.
	Events int
	// Seed perturbs all invocations deterministically.
	Seed uint64
	// Parallelism bounds concurrent invocations (default NumCPU). Ignored
	// when Engine is set — the engine's own pool bounds the plan.
	Parallelism int
	// Engine executes the sweep's jobs. nil uses a shared default engine
	// (no cache, Parallelism workers); commands that want caching, progress
	// events or resumability pass their own.
	Engine *exper.Engine
	// Recorder receives run telemetry for every invocation the sweep
	// launches; the engine stamps events with each job's key. nil disables
	// telemetry. Sweeps sharing the default engine still get per-run events
	// because the recorder travels on the RunConfig, not the engine.
	Recorder obs.Recorder
}

// DefaultHeapFactors mirrors the paper's sweep: dense at small heaps.
var DefaultHeapFactors = []float64{1, 1.25, 1.5, 2, 2.5, 3, 4, 5, 6}

func (o Options) withDefaults(d *workload.Descriptor) Options {
	if o.Collectors == nil {
		o.Collectors = gc.Kinds
	}
	if o.HeapFactors == nil {
		o.HeapFactors = DefaultHeapFactors
	}
	if o.Invocations <= 0 {
		o.Invocations = 3
	}
	if o.Iterations <= 0 {
		o.Iterations = 3
	}
	if o.Events <= 0 {
		o.Events = d.Events / 4
		if o.Events < 200 {
			o.Events = 200
		}
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	return o
}

// Default engines are created once per worker count and shared for the
// process lifetime; idle workers park on a condition variable, so they are
// never closed.
var (
	defaultEnginesMu sync.Mutex
	defaultEngines   = map[int]*exper.Engine{}
)

// engine returns the engine the sweep runs on. Call after withDefaults.
func (o Options) engine() *exper.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	defaultEnginesMu.Lock()
	defer defaultEnginesMu.Unlock()
	e, ok := defaultEngines[o.Parallelism]
	if !ok {
		e = exper.New(exper.Options{Workers: o.Parallelism})
		defaultEngines[o.Parallelism] = e
	}
	return e
}

// minHeapParams derives the engine min-heap request that anchors this
// sweep: the bound must validate under exactly the seeds the sweep uses.
func (o Options) minHeapParams() exper.MinHeapParams {
	return exper.MinHeapParams{
		Events:      o.Events,
		Iterations:  o.Iterations,
		Invocations: o.Invocations,
		Seed:        o.Seed,
	}
}

// MinHeapMB measures the benchmark's minimum heap under the baseline G1
// configuration (the paper's GMD definition), which anchors all heap-factor
// sweeps. The bound is validated against every invocation seed the sweep
// will use, growing by 3% steps until all of them complete; a bound that
// never validates is an error, so a sweep's 1x row is always runnable.
func MinHeapMB(d *workload.Descriptor, opt Options) (float64, error) {
	opt = opt.withDefaults(d)
	return opt.engine().MinHeapMB(d, opt.minHeapParams())
}

// invocationSet is the aggregate of several invocations of one
// configuration.
type invocationSet struct {
	completed bool
	wall, cpu []float64 // timed-iteration samples
	stwWall   []float64 // whole-run STW wall per invocation
	gcCPU     []float64 // whole-run GC CPU per invocation
	wholeWall []float64 // whole-run wall
	wholeCPU  []float64 // whole-run task clock
}

// pendingSet is a submitted-but-uncollected invocation set: one engine
// ticket per invocation, in seed order.
type pendingSet struct {
	tickets []*exper.Ticket
	err     error // submission error; the set collects as incomplete
}

// submitSet registers opt.Invocations runs of one configuration as engine
// jobs and returns immediately with their tickets. Submitting every set of
// a sweep before collecting any is what hands the engine the whole batch at
// once.
func submitSet(eng *exper.Engine, d *workload.Descriptor, cfg workload.RunConfig, opt Options) *pendingSet {
	ps := &pendingSet{}
	for i := 0; i < opt.Invocations; i++ {
		c := cfg
		c.Seed = opt.Seed + uint64(i)*1_000_003 + 17
		c.Recorder = opt.Recorder
		t, err := eng.Submit(d, c)
		if err != nil {
			ps.err = err
			return ps
		}
		ps.tickets = append(ps.tickets, t)
	}
	return ps
}

// collectSet waits for a pending set's invocations in seed order and
// aggregates them. A configuration counts as completed only if every
// invocation completes — matching the paper's all-or-nothing plotting rule.
// Collection order is fixed by submission, not by the scheduler, so the
// aggregate (including float reduction order) is deterministic at any
// worker count.
func collectSet(ps *pendingSet) *invocationSet {
	set := &invocationSet{completed: ps.err == nil}
	if !set.completed {
		return set
	}
	for _, t := range ps.tickets {
		r, err := t.Wait()
		if err != nil {
			set.completed = false
			return set
		}
		last := r.Last()
		set.wall = append(set.wall, last.WallNS)
		set.cpu = append(set.cpu, last.CPUNS)
		var ww, wc float64
		for _, it := range r.Iterations {
			ww += it.WallNS
			wc += it.CPUNS
		}
		set.wholeWall = append(set.wholeWall, ww)
		set.wholeCPU = append(set.wholeCPU, wc)
		set.stwWall = append(set.stwWall, r.Log.TotalPauseNS())
		set.gcCPU = append(set.gcCPU, r.GCCPUNS)
	}
	return set
}

// gridCell is one (collector, heap factor) coordinate of a sweep, in the
// fixed enumeration order every merge follows.
type gridCell struct {
	kind gc.Kind
	f    float64
}

func gridCells(collectors []gc.Kind, factors []float64) []gridCell {
	var cells []gridCell
	for _, kind := range collectors {
		for _, f := range factors {
			cells = append(cells, gridCell{kind, f})
		}
	}
	return cells
}

// cellConfig is the run configuration of one grid cell (before per-
// invocation seeding) — shared by real submission and speculation so the
// two produce identical job keys and dedup onto each other.
func cellConfig(c gridCell, minMB float64, opt Options) workload.RunConfig {
	return workload.RunConfig{
		HeapMB:     minMB * c.f,
		Collector:  c.kind,
		Iterations: opt.Iterations,
		Events:     opt.Events,
	}
}

// submitOrder returns the order cells are handed to the engine:
// longest-expected-first by the engine's learned per-(benchmark, collector)
// cost estimates, stable within ties, falling back to grid order when
// nothing has been learned yet. Long cells submitted first stop a sweep's
// slowest configuration from starting last and serializing the tail.
// Collection always walks gridCells order, so submission order is invisible
// in merged output.
func submitOrder(eng *exper.Engine, benchmark string, cells []gridCell) []int {
	order := make([]int, len(cells))
	est := make([]float64, len(cells))
	known := false
	for i, c := range cells {
		order[i] = i
		est[i] = eng.EstimateCost(benchmark, c.kind.String())
		if est[i] > 0 {
			known = true
		}
	}
	if !known {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool { return est[order[a]] > est[order[b]] })
	return order
}

// speculateGrid submits the benchmark's whole grid as speculative jobs
// anchored on an unvalidated candidate bound — fired while the min-heap
// search is still validating, so grid work overlaps the anchor's tail.
// Tickets are deliberately dropped: if the candidate survives validation,
// the real submissions dedup onto these in-flight jobs or consume their
// retained outcomes; if validation grows the bound, the speculated cells
// are just cache entries, never merged.
func speculateGrid(eng *exper.Engine, d *workload.Descriptor, opt Options, candMB float64) {
	cells := gridCells(opt.Collectors, opt.HeapFactors)
	for _, idx := range submitOrder(eng, d.Name, cells) {
		cfg := cellConfig(cells[idx], candMB, opt)
		for i := 0; i < opt.Invocations; i++ {
			c := cfg
			c.Seed = opt.Seed + uint64(i)*1_000_003 + 17
			c.Recorder = opt.Recorder
			if _, err := eng.SubmitSpeculative(d, c); err != nil {
				return // speculation is best-effort; the real pass reports
			}
		}
	}
}

// PendingGrid is a submitted-but-uncollected LBO sweep: the min-heap anchor
// job is in flight (or already cached), and the grid's cells are submitted
// as one batch the moment it resolves. Wait blocks for the merged grid.
type PendingGrid struct {
	done  chan struct{}
	grid  *lbo.Grid
	minMB float64
	err   error
}

// Wait blocks until the sweep's jobs complete and returns the merged grid
// and the measured minimum heap.
func (p *PendingGrid) Wait() (*lbo.Grid, float64, error) {
	<-p.done
	return p.grid, p.minMB, p.err
}

// SubmitLBOGrid registers one benchmark's whole LBO sweep as a job DAG and
// returns immediately: the minimum-heap measurement is the anchor
// (prerequisite) job, and every (collector, heap factor, invocation) cell
// job is submitted in a single batch when the anchor resolves. Submitting
// every benchmark's sweep up front is how a whole-suite run saturates the
// engine's pool; results merge in fixed grid order regardless of execution
// interleaving.
func SubmitLBOGrid(d *workload.Descriptor, opt Options) *PendingGrid {
	opt = opt.withDefaults(d)
	eng := opt.engine()
	p := &PendingGrid{done: make(chan struct{})}
	anchor, err := eng.SubmitMinHeap(d, opt.minHeapParams())
	if err != nil {
		p.err = fmt.Errorf("harness: %s min heap: %w", d.Name, err)
		close(p.done)
		return p
	}
	// Orchestration runs off the engine pool: it only submits jobs and
	// waits on tickets, so pool workers are never blocked on coordination.
	go func() {
		defer close(p.done)
		if eng.Speculative() {
			// Start the grid from the search's candidate bound the moment
			// bisection produces one, overlapping grid cells with the
			// anchor's validation tail. Only the anchor's *final* bound
			// ever reaches merged output below.
			select {
			case <-anchor.CandidateReady():
				if candMB, ok := anchor.Candidate(); ok {
					speculateGrid(eng, d, opt, candMB)
				}
			case <-anchor.Done():
			}
		}
		minMB, err := anchor.Wait()
		if err != nil {
			p.err = fmt.Errorf("harness: %s min heap: %w", d.Name, err)
			return
		}
		p.minMB = minMB
		p.grid = collectGrid(eng, d, opt, minMB)
	}()
	return p
}

// collectGrid submits every cell of the benchmark's grid as one batch of
// engine jobs — longest-expected-first, so the sweep's slow configurations
// never start last — then collects and merges them in fixed grid order.
func collectGrid(eng *exper.Engine, d *workload.Descriptor, opt Options, minMB float64) *lbo.Grid {
	cells := gridCells(opt.Collectors, opt.HeapFactors)
	pending := make([]*pendingSet, len(cells))
	for _, i := range submitOrder(eng, d.Name, cells) {
		pending[i] = submitSet(eng, d, cellConfig(cells[i], minMB, opt), opt)
	}

	grid := &lbo.Grid{Benchmark: d.Name}
	for i, c := range cells {
		set := collectSet(pending[i])
		m := lbo.Measurement{
			Collector:  c.kind.String(),
			HeapFactor: c.f,
			HeapMB:     minMB * c.f,
			Completed:  set.completed,
		}
		if set.completed {
			// LBO uses whole-run totals so concurrent cycles straddling
			// iteration boundaries are attributed.
			m.WallNS = stats.Mean(set.wholeWall)
			m.CPUNS = stats.Mean(set.wholeCPU)
			m.STWWallNS = stats.Mean(set.stwWall)
			m.GCCPUNS = stats.Mean(set.gcCPU)
			m.WallSamples = set.wholeWall
			m.CPUSamples = set.wholeCPU
		}
		grid.Add(m)
	}
	return grid
}

// LBOGrid sweeps collectors and heap factors for one benchmark and returns
// its lower-bound-overhead grid: SubmitLBOGrid plus Wait. The minimum heap
// is measured first with the baseline configuration; incomplete (OOM) cells
// are recorded as such.
func LBOGrid(d *workload.Descriptor, opt Options) (*lbo.Grid, float64, error) {
	return SubmitLBOGrid(d, opt).Wait()
}

// PendingSuite is a submitted-but-uncollected whole-suite LBO plan: one
// PendingGrid per benchmark, all anchors already in flight.
type PendingSuite struct {
	ds      []*workload.Descriptor
	opt     Options
	pending []*PendingGrid
}

// SubmitSuiteLBO registers the whole suite's LBO plan (nil ds = every
// workload) as one job DAG and returns immediately: every benchmark's
// min-heap anchor is submitted now, and each benchmark's grid batch follows
// the moment its anchor resolves — the engine's pool sees the full plan at
// once and stays saturated until the last cell drains.
func SubmitSuiteLBO(ds []*workload.Descriptor, opt Options) *PendingSuite {
	if ds == nil {
		ds = workload.All()
	}
	ps := &PendingSuite{ds: ds, opt: opt, pending: make([]*PendingGrid, len(ds))}
	for i, d := range ds {
		ps.pending[i] = SubmitLBOGrid(d, opt)
	}
	return ps
}

// Wait blocks until the plan completes and returns per-benchmark grids in
// input order plus the cross-suite geometric means of Figure 1.
func (ps *PendingSuite) Wait() ([]*lbo.Grid, []lbo.GeomeanPoint, error) {
	grids := make([]*lbo.Grid, len(ps.pending))
	for i, p := range ps.pending {
		grid, _, err := p.Wait()
		if err != nil {
			return nil, nil, err
		}
		grids[i] = grid
	}
	o := ps.opt.withDefaults(ps.ds[0])
	names := make([]string, len(o.Collectors))
	for i, k := range o.Collectors {
		names[i] = k.String()
	}
	pts, err := lbo.Geomean(grids, names, o.HeapFactors)
	if err != nil {
		return nil, nil, err
	}
	return grids, pts, nil
}

// SuiteLBO runs LBOGrid for every workload in ds (nil = whole suite) and
// also returns the cross-suite geometric means of Figure 1: SubmitSuiteLBO
// plus Wait.
func SuiteLBO(ds []*workload.Descriptor, opt Options) ([]*lbo.Grid, []lbo.GeomeanPoint, error) {
	return SubmitSuiteLBO(ds, opt).Wait()
}

// LatencyResult is one cell of a latency experiment: the three latency
// views of one (collector, heap factor) configuration, plus the pause log
// for MMU analysis.
type LatencyResult struct {
	Benchmark   string
	Collector   string
	HeapFactor  float64
	HeapMB      float64
	Completed   bool
	Simple      *latency.Distribution
	Metered100  *latency.Distribution // 100ms smoothing window
	MeteredFull *latency.Distribution // full smoothing
	// Events are the raw timed events behind the distributions, for
	// downstream metrics (critical-jOPS, custom smoothing windows).
	Events   []latency.Event
	Pauses   []trace.Pause
	RunStart int64
	RunEnd   int64
}

// PendingLatency is a submitted-but-uncollected latency sweep, anchored on
// its min-heap job like PendingGrid.
type PendingLatency struct {
	done chan struct{}
	out  []LatencyResult
	err  error
}

// Wait blocks until the sweep's jobs complete and returns its cells in
// fixed grid order.
func (p *PendingLatency) Wait() ([]LatencyResult, error) {
	<-p.done
	return p.out, p.err
}

// SubmitLatency registers the latency experiment of Figures 3 and 6 as a
// job DAG and returns immediately: one invocation per (collector, heap
// factor) with per-event timing, all submitted in a batch once the
// min-heap anchor resolves.
func SubmitLatency(d *workload.Descriptor, factors []float64, opt Options) *PendingLatency {
	return submitLatency(d, factors, opt, false, 0)
}

// SubmitLatencyOpenLoop is SubmitLatency with the open-loop request
// discipline (see LatencyOpenLoop).
func SubmitLatencyOpenLoop(d *workload.Descriptor, factors []float64, headroom float64, opt Options) *PendingLatency {
	return submitLatency(d, factors, opt, true, headroom)
}

// LatencyOpenLoop is Latency with the open-loop request discipline: real
// scheduled arrivals at 1/headroom of the nominal rate, with queueing. The
// Simple distribution then holds true arrival-to-completion latency; the
// metered views remain computed for comparison against it (ablation A5).
func LatencyOpenLoop(d *workload.Descriptor, factors []float64, headroom float64, opt Options) ([]LatencyResult, error) {
	return SubmitLatencyOpenLoop(d, factors, headroom, opt).Wait()
}

// Latency runs the latency experiment of Figures 3 and 6: one invocation
// per (collector, heap factor) with per-event timing, reported as simple
// latency and metered latency at 100ms and full smoothing. SubmitLatency
// plus Wait.
func Latency(d *workload.Descriptor, factors []float64, opt Options) ([]LatencyResult, error) {
	return SubmitLatency(d, factors, opt).Wait()
}

func submitLatency(d *workload.Descriptor, factors []float64, opt Options,
	openLoop bool, headroom float64) *PendingLatency {
	opt = opt.withDefaults(d)
	eng := opt.engine()
	if factors == nil {
		factors = []float64{2, 6}
	}
	p := &PendingLatency{done: make(chan struct{})}
	anchor, err := eng.SubmitMinHeap(d, opt.minHeapParams())
	if err != nil {
		p.err = err
		close(p.done)
		return p
	}
	go func() {
		defer close(p.done)
		minMB, err := anchor.Wait()
		if err != nil {
			p.err = err
			return
		}
		cells := gridCells(opt.Collectors, factors)
		tickets := make([]*exper.Ticket, len(cells))
		for i, c := range cells {
			tickets[i], err = eng.Submit(d, workload.RunConfig{
				HeapMB:           minMB * c.f,
				Collector:        c.kind,
				Iterations:       opt.Iterations,
				Events:           opt.Events,
				Seed:             opt.Seed,
				RecordLatency:    true,
				OpenLoop:         openLoop,
				OpenLoopHeadroom: headroom,
				Recorder:         opt.Recorder,
			})
			if err != nil {
				p.err = err
				return
			}
		}
		out := make([]LatencyResult, len(cells))
		for i, c := range cells {
			lr := LatencyResult{
				Benchmark: d.Name, Collector: c.kind.String(),
				HeapFactor: c.f, HeapMB: minMB * c.f,
			}
			res, err := tickets[i].Wait()
			if err == nil {
				events := make([]latency.Event, len(res.Events))
				for j, e := range res.Events {
					events[j] = latency.Event{Start: e.Start, End: e.End}
				}
				lr.Completed = true
				lr.Events = events
				lr.Simple = latency.NewDistribution(latency.Simple(events))
				lr.Metered100 = latency.NewDistribution(latency.Metered(events, 100*1e6))
				lr.MeteredFull = latency.NewDistribution(latency.Metered(events, latency.FullSmoothing))
				lr.Pauses = res.Log.Pauses
				last := res.Last()
				lr.RunStart = last.StartNS
				lr.RunEnd = last.EndNS
			}
			out[i] = lr
		}
		p.out = out
	}()
	return p
}

// HeapSample is one post-GC occupancy observation, relative to the start of
// the timed iteration.
type HeapSample struct {
	TimeSec float64
	UsedMB  float64
}

// HeapTimeline reproduces the appendix heap-size figures: post-GC heap
// occupancy over the last iteration, G1 at 2x the minimum heap.
func HeapTimeline(d *workload.Descriptor, opt Options) ([]HeapSample, error) {
	opt = opt.withDefaults(d)
	eng := opt.engine()
	minMB, err := eng.MinHeapMB(d, opt.minHeapParams())
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(d, workload.RunConfig{
		HeapMB:     2 * minMB,
		Collector:  gc.G1,
		Iterations: opt.Iterations,
		Events:     opt.Events,
		Seed:       opt.Seed,
		Recorder:   opt.Recorder,
	})
	if err != nil {
		return nil, err
	}
	last := res.Last()
	var out []HeapSample
	for _, e := range res.Log.Events {
		if e.End < last.StartNS || e.End > last.EndNS {
			continue
		}
		out = append(out, HeapSample{
			TimeSec: float64(e.End-last.StartNS) / 1e9,
			UsedMB:  e.UsedAfter / workload.MB,
		})
	}
	return out, nil
}
