// Package harness orchestrates the paper's experiments: multi-invocation
// runs, per-benchmark minimum-heap identification, collector-by-heap-factor
// sweeps for LBO (Figures 1 and 5 and the appendix), latency experiments
// (Figures 3 and 6), and heap-occupancy timelines (appendix).
//
// It embodies the paper's methodological recommendations directly: heap
// sizes are always expressed as multiples of a measured per-benchmark
// minimum (H2), several invocations feed 95% confidence intervals (P1), and
// overheads are reported via LBO on both wall and task clock (O1/O2).
//
// Execution is delegated to the experiment engine (internal/exper): every
// invocation becomes an engine job on one shared work-stealing pool, so
// parallelism is bounded per-plan rather than per-sweep, min-heap probes
// deduplicate across experiments, and — when the engine carries a result
// cache — sweeps become incremental and resumable. The harness itself is a
// thin aggregation layer over engine results.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"chopin/internal/exper"
	"chopin/internal/gc"
	"chopin/internal/latency"
	"chopin/internal/lbo"
	"chopin/internal/obs"
	"chopin/internal/stats"
	"chopin/internal/trace"
	"chopin/internal/workload"
)

// Options configures an experiment sweep.
type Options struct {
	// Collectors to evaluate; nil means the paper's five production
	// collectors in introduction order.
	Collectors []gc.Kind
	// HeapFactors are multiples of the measured minimum heap; nil means the
	// paper's 1-6x range with extra resolution at small heaps, where the
	// time-space tradeoff carries the information.
	HeapFactors []float64
	// Invocations per configuration (default 3; the paper uses 10).
	Invocations int
	// Iterations per invocation; the last is timed (default 3).
	Iterations int
	// Events per iteration; 0 scales the workload default down 4x to keep
	// sweeps affordable.
	Events int
	// Seed perturbs all invocations deterministically.
	Seed uint64
	// Parallelism bounds concurrent invocations (default NumCPU). Ignored
	// when Engine is set — the engine's own pool bounds the plan.
	Parallelism int
	// Engine executes the sweep's jobs. nil uses a shared default engine
	// (no cache, Parallelism workers); commands that want caching, progress
	// events or resumability pass their own.
	Engine *exper.Engine
	// Recorder receives run telemetry for every invocation the sweep
	// launches; the engine stamps events with each job's key. nil disables
	// telemetry. Sweeps sharing the default engine still get per-run events
	// because the recorder travels on the RunConfig, not the engine.
	Recorder obs.Recorder
}

// DefaultHeapFactors mirrors the paper's sweep: dense at small heaps.
var DefaultHeapFactors = []float64{1, 1.25, 1.5, 2, 2.5, 3, 4, 5, 6}

func (o Options) withDefaults(d *workload.Descriptor) Options {
	if o.Collectors == nil {
		o.Collectors = gc.Kinds
	}
	if o.HeapFactors == nil {
		o.HeapFactors = DefaultHeapFactors
	}
	if o.Invocations <= 0 {
		o.Invocations = 3
	}
	if o.Iterations <= 0 {
		o.Iterations = 3
	}
	if o.Events <= 0 {
		o.Events = d.Events / 4
		if o.Events < 200 {
			o.Events = 200
		}
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	return o
}

// Default engines are created once per worker count and shared for the
// process lifetime; idle workers park on a condition variable, so they are
// never closed.
var (
	defaultEnginesMu sync.Mutex
	defaultEngines   = map[int]*exper.Engine{}
)

// engine returns the engine the sweep runs on. Call after withDefaults.
func (o Options) engine() *exper.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	defaultEnginesMu.Lock()
	defer defaultEnginesMu.Unlock()
	e, ok := defaultEngines[o.Parallelism]
	if !ok {
		e = exper.New(exper.Options{Workers: o.Parallelism})
		defaultEngines[o.Parallelism] = e
	}
	return e
}

// minHeapParams derives the engine min-heap request that anchors this
// sweep: the bound must validate under exactly the seeds the sweep uses.
func (o Options) minHeapParams() exper.MinHeapParams {
	return exper.MinHeapParams{
		Events:      o.Events,
		Iterations:  o.Iterations,
		Invocations: o.Invocations,
		Seed:        o.Seed,
	}
}

// MinHeapMB measures the benchmark's minimum heap under the baseline G1
// configuration (the paper's GMD definition), which anchors all heap-factor
// sweeps. The bound is validated against every invocation seed the sweep
// will use, growing by 3% steps until all of them complete; a bound that
// never validates is an error, so a sweep's 1x row is always runnable.
func MinHeapMB(d *workload.Descriptor, opt Options) (float64, error) {
	opt = opt.withDefaults(d)
	return opt.engine().MinHeapMB(d, opt.minHeapParams())
}

// invocationSet is the aggregate of several invocations of one
// configuration.
type invocationSet struct {
	completed bool
	wall, cpu []float64 // timed-iteration samples
	stwWall   []float64 // whole-run STW wall per invocation
	gcCPU     []float64 // whole-run GC CPU per invocation
	wholeWall []float64 // whole-run wall
	wholeCPU  []float64 // whole-run task clock
}

// runSet executes opt.Invocations runs of one configuration as concurrent
// engine jobs. A configuration counts as completed only if every invocation
// completes — matching the paper's all-or-nothing plotting rule.
func runSet(eng *exper.Engine, d *workload.Descriptor, cfg workload.RunConfig, opt Options) *invocationSet {
	set := &invocationSet{completed: true}
	results := make([]*workload.Result, opt.Invocations)
	errs := make([]error, opt.Invocations)

	var wg sync.WaitGroup
	for i := 0; i < opt.Invocations; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Seed = opt.Seed + uint64(i)*1_000_003 + 17
			c.Recorder = opt.Recorder
			results[i], errs[i] = eng.Run(d, c)
		}(i)
	}
	wg.Wait()

	for i := 0; i < opt.Invocations; i++ {
		if errs[i] != nil {
			set.completed = false
			return set
		}
		r := results[i]
		last := r.Last()
		set.wall = append(set.wall, last.WallNS)
		set.cpu = append(set.cpu, last.CPUNS)
		var ww, wc float64
		for _, it := range r.Iterations {
			ww += it.WallNS
			wc += it.CPUNS
		}
		set.wholeWall = append(set.wholeWall, ww)
		set.wholeCPU = append(set.wholeCPU, wc)
		set.stwWall = append(set.stwWall, r.Log.TotalPauseNS())
		set.gcCPU = append(set.gcCPU, r.GCCPUNS)
	}
	return set
}

// LBOGrid sweeps collectors and heap factors for one benchmark and returns
// its lower-bound-overhead grid. The minimum heap is measured first with the
// baseline configuration; incomplete (OOM) cells are recorded as such. All
// cells run concurrently as engine jobs — the engine's pool, not the sweep,
// bounds parallelism — and results are assembled in fixed grid order, so the
// output is deterministic however execution interleaves.
func LBOGrid(d *workload.Descriptor, opt Options) (*lbo.Grid, float64, error) {
	opt = opt.withDefaults(d)
	eng := opt.engine()
	minMB, err := eng.MinHeapMB(d, opt.minHeapParams())
	if err != nil {
		return nil, 0, fmt.Errorf("harness: %s min heap: %w", d.Name, err)
	}

	type cell struct {
		kind gc.Kind
		f    float64
	}
	var cells []cell
	for _, kind := range opt.Collectors {
		for _, f := range opt.HeapFactors {
			cells = append(cells, cell{kind, f})
		}
	}
	sets := make([]*invocationSet, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sets[i] = runSet(eng, d, workload.RunConfig{
				HeapMB:     minMB * c.f,
				Collector:  c.kind,
				Iterations: opt.Iterations,
				Events:     opt.Events,
			}, opt)
		}(i, c)
	}
	wg.Wait()

	grid := &lbo.Grid{Benchmark: d.Name}
	for i, c := range cells {
		set := sets[i]
		m := lbo.Measurement{
			Collector:  c.kind.String(),
			HeapFactor: c.f,
			HeapMB:     minMB * c.f,
			Completed:  set.completed,
		}
		if set.completed {
			// LBO uses whole-run totals so concurrent cycles straddling
			// iteration boundaries are attributed.
			m.WallNS = stats.Mean(set.wholeWall)
			m.CPUNS = stats.Mean(set.wholeCPU)
			m.STWWallNS = stats.Mean(set.stwWall)
			m.GCCPUNS = stats.Mean(set.gcCPU)
			m.WallSamples = set.wholeWall
			m.CPUSamples = set.wholeCPU
		}
		grid.Add(m)
	}
	return grid, minMB, nil
}

// SuiteLBO runs LBOGrid for every workload in ds (nil = whole suite) and
// also returns the cross-suite geometric means of Figure 1. Benchmarks run
// concurrently over the shared engine pool; grids come back in input order.
func SuiteLBO(ds []*workload.Descriptor, opt Options) ([]*lbo.Grid, []lbo.GeomeanPoint, error) {
	if ds == nil {
		ds = workload.All()
	}
	grids := make([]*lbo.Grid, len(ds))
	errs := make([]error, len(ds))
	var wg sync.WaitGroup
	for i, d := range ds {
		wg.Add(1)
		go func(i int, d *workload.Descriptor) {
			defer wg.Done()
			grids[i], _, errs[i] = LBOGrid(d, opt)
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	o := opt.withDefaults(ds[0])
	names := make([]string, len(o.Collectors))
	for i, k := range o.Collectors {
		names[i] = k.String()
	}
	pts, err := lbo.Geomean(grids, names, o.HeapFactors)
	if err != nil {
		return nil, nil, err
	}
	return grids, pts, nil
}

// LatencyResult is one cell of a latency experiment: the three latency
// views of one (collector, heap factor) configuration, plus the pause log
// for MMU analysis.
type LatencyResult struct {
	Benchmark   string
	Collector   string
	HeapFactor  float64
	HeapMB      float64
	Completed   bool
	Simple      *latency.Distribution
	Metered100  *latency.Distribution // 100ms smoothing window
	MeteredFull *latency.Distribution // full smoothing
	// Events are the raw timed events behind the distributions, for
	// downstream metrics (critical-jOPS, custom smoothing windows).
	Events   []latency.Event
	Pauses   []trace.Pause
	RunStart int64
	RunEnd   int64
}

// LatencyOpenLoop is Latency with the open-loop request discipline: real
// scheduled arrivals at 1/headroom of the nominal rate, with queueing. The
// Simple distribution then holds true arrival-to-completion latency; the
// metered views remain computed for comparison against it (ablation A5).
func LatencyOpenLoop(d *workload.Descriptor, factors []float64, headroom float64, opt Options) ([]LatencyResult, error) {
	return latencyExperiment(d, factors, opt, true, headroom)
}

// Latency runs the latency experiment of Figures 3 and 6: one invocation
// per (collector, heap factor) with per-event timing, reported as simple
// latency and metered latency at 100ms and full smoothing.
func Latency(d *workload.Descriptor, factors []float64, opt Options) ([]LatencyResult, error) {
	return latencyExperiment(d, factors, opt, false, 0)
}

func latencyExperiment(d *workload.Descriptor, factors []float64, opt Options,
	openLoop bool, headroom float64) ([]LatencyResult, error) {
	opt = opt.withDefaults(d)
	eng := opt.engine()
	if factors == nil {
		factors = []float64{2, 6}
	}
	minMB, err := eng.MinHeapMB(d, opt.minHeapParams())
	if err != nil {
		return nil, err
	}

	type cell struct {
		kind gc.Kind
		f    float64
	}
	var cells []cell
	for _, kind := range opt.Collectors {
		for _, f := range factors {
			cells = append(cells, cell{kind, f})
		}
	}
	out := make([]LatencyResult, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			cfg := workload.RunConfig{
				HeapMB:           minMB * c.f,
				Collector:        c.kind,
				Iterations:       opt.Iterations,
				Events:           opt.Events,
				Seed:             opt.Seed,
				RecordLatency:    true,
				OpenLoop:         openLoop,
				OpenLoopHeadroom: headroom,
				Recorder:         opt.Recorder,
			}
			lr := LatencyResult{
				Benchmark: d.Name, Collector: c.kind.String(),
				HeapFactor: c.f, HeapMB: minMB * c.f,
			}
			res, err := eng.Run(d, cfg)
			if err == nil {
				events := make([]latency.Event, len(res.Events))
				for j, e := range res.Events {
					events[j] = latency.Event{Start: e.Start, End: e.End}
				}
				lr.Completed = true
				lr.Events = events
				lr.Simple = latency.NewDistribution(latency.Simple(events))
				lr.Metered100 = latency.NewDistribution(latency.Metered(events, 100*1e6))
				lr.MeteredFull = latency.NewDistribution(latency.Metered(events, latency.FullSmoothing))
				lr.Pauses = res.Log.Pauses
				last := res.Last()
				lr.RunStart = last.StartNS
				lr.RunEnd = last.EndNS
			}
			out[i] = lr
		}(i, c)
	}
	wg.Wait()
	return out, nil
}

// HeapSample is one post-GC occupancy observation, relative to the start of
// the timed iteration.
type HeapSample struct {
	TimeSec float64
	UsedMB  float64
}

// HeapTimeline reproduces the appendix heap-size figures: post-GC heap
// occupancy over the last iteration, G1 at 2x the minimum heap.
func HeapTimeline(d *workload.Descriptor, opt Options) ([]HeapSample, error) {
	opt = opt.withDefaults(d)
	eng := opt.engine()
	minMB, err := eng.MinHeapMB(d, opt.minHeapParams())
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(d, workload.RunConfig{
		HeapMB:     2 * minMB,
		Collector:  gc.G1,
		Iterations: opt.Iterations,
		Events:     opt.Events,
		Seed:       opt.Seed,
		Recorder:   opt.Recorder,
	})
	if err != nil {
		return nil, err
	}
	last := res.Last()
	var out []HeapSample
	for _, e := range res.Log.Events {
		if e.End < last.StartNS || e.End > last.EndNS {
			continue
		}
		out = append(out, HeapSample{
			TimeSec: float64(e.End-last.StartNS) / 1e9,
			UsedMB:  e.UsedAfter / workload.MB,
		})
	}
	return out, nil
}
