package harness

import (
	"sort"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/workload"
)

func quickOpt() Options {
	return Options{
		Collectors:  []gc.Kind{gc.Serial, gc.G1},
		HeapFactors: []float64{1.5, 4},
		Invocations: 2,
		Iterations:  2,
		Events:      200,
		Seed:        11,
	}
}

func TestMinHeapAnchorsSweep(t *testing.T) {
	min, err := MinHeapMB(workload.Avrora, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if min < workload.Avrora.LiveMB || min > workload.Avrora.LiveMB*2+4 {
		t.Fatalf("avrora min heap = %vMB, want near live %vMB",
			min, workload.Avrora.LiveMB)
	}
}

func TestLBOGridShapeAndInvariants(t *testing.T) {
	grid, minMB, err := LBOGrid(workload.Lusearch, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if minMB <= 0 {
		t.Fatalf("min heap = %v", minMB)
	}
	if len(grid.Cells) != 4 { // 2 collectors x 2 factors
		t.Fatalf("grid has %d cells, want 4", len(grid.Cells))
	}
	ovs, err := grid.Overheads()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ovs {
		if !o.Completed {
			continue
		}
		if o.Wall < 1 || o.CPU < 1 {
			t.Fatalf("LBO below 1: %+v", o)
		}
	}
	// Time-space tradeoff: a tight heap must cost at least as much CPU
	// overhead as a roomy one for the same collector.
	byKey := map[string]float64{}
	for _, o := range ovs {
		if o.Completed {
			byKey[o.Collector+"@"+report(o.HeapFactor)] = o.CPU
		}
	}
	for _, c := range []string{"Serial", "G1"} {
		tight, roomy := byKey[c+"@1.5"], byKey[c+"@4"]
		if tight == 0 || roomy == 0 {
			t.Fatalf("%s missing cells: %v", c, byKey)
		}
		if tight < roomy*0.98 {
			t.Fatalf("%s: tight-heap CPU LBO %v below roomy %v", c, tight, roomy)
		}
	}
}

func report(f float64) string {
	if f == 1.5 {
		return "1.5"
	}
	return "4"
}

func TestZGCIncompleteAtTightHeap(t *testing.T) {
	opt := quickOpt()
	opt.Collectors = []gc.Kind{gc.ZGC}
	opt.HeapFactors = []float64{1, 4}
	grid, _, err := LBOGrid(workload.Fop, opt)
	if err != nil {
		t.Fatal(err)
	}
	var sawIncomplete, sawComplete bool
	for _, c := range grid.Cells {
		if c.HeapFactor == 1 && !c.Completed {
			sawIncomplete = true
		}
		if c.HeapFactor == 4 && c.Completed {
			sawComplete = true
		}
	}
	if !sawIncomplete {
		t.Fatal("ZGC should not complete at 1x the G1 minimum heap")
	}
	if !sawComplete {
		t.Fatal("ZGC should complete at 4x")
	}
}

func TestSuiteLBOGeomean(t *testing.T) {
	opt := quickOpt()
	ds := []*workload.Descriptor{workload.Avrora, workload.Fop}
	grids, pts, err := SuiteLBO(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 2 {
		t.Fatalf("grids = %d, want 2", len(grids))
	}
	if len(pts) != 4 { // 2 collectors x 2 factors
		t.Fatalf("geomean points = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Complete && (p.Wall < 1 || p.CPU < 1) {
			t.Fatalf("geomean LBO below 1: %+v", p)
		}
	}
}

func TestLatencyExperiment(t *testing.T) {
	opt := quickOpt()
	opt.Collectors = []gc.Kind{gc.Serial, gc.Shenandoah}
	opt.Events = 400
	results, err := Latency(workload.Lusearch, []float64{2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if !r.Completed {
			t.Fatalf("%s did not complete", r.Collector)
		}
		if r.Simple.N() == 0 {
			t.Fatalf("%s recorded no events", r.Collector)
		}
		// Metered latency dominates simple latency at every percentile.
		for _, p := range []float64{50, 90, 99} {
			if r.MeteredFull.Percentile(p) < r.Simple.Percentile(p)-1e-6 {
				t.Fatalf("%s: metered p%v %v below simple %v", r.Collector, p,
					r.MeteredFull.Percentile(p), r.Simple.Percentile(p))
			}
		}
		if r.RunEnd <= r.RunStart {
			t.Fatalf("bad run window: %d..%d", r.RunStart, r.RunEnd)
		}
	}
}

func TestHeapTimeline(t *testing.T) {
	samples, err := HeapTimeline(workload.H2o, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no heap samples for a high-turnover workload")
	}
	for i, s := range samples {
		if s.UsedMB <= 0 {
			t.Fatalf("sample %d: used %v", i, s.UsedMB)
		}
		if i > 0 && s.TimeSec < samples[i-1].TimeSec {
			t.Fatalf("samples out of order at %d", i)
		}
	}
}

func TestOptionDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults(workload.Lusearch)
	if len(o.Collectors) != 5 {
		t.Fatalf("default collectors = %d, want 5", len(o.Collectors))
	}
	if len(o.HeapFactors) != len(DefaultHeapFactors) {
		t.Fatalf("default factors = %v", o.HeapFactors)
	}
	if o.Invocations != 3 || o.Iterations != 3 || o.Parallelism < 1 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Events < 200 {
		t.Fatalf("events = %d", o.Events)
	}
	// Explicit values survive.
	o2 := Options{Invocations: 7, Events: 999, Parallelism: 2}.withDefaults(workload.Lusearch)
	if o2.Invocations != 7 || o2.Events != 999 || o2.Parallelism != 2 {
		t.Fatalf("explicit options clobbered: %+v", o2)
	}
}

func TestLatencyRecordsRawEvents(t *testing.T) {
	opt := quickOpt()
	opt.Collectors = []gc.Kind{gc.Serial}
	opt.Events = 300
	results, err := Latency(workload.Kafka, []float64{2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if len(r.Events) != r.Simple.N() {
		t.Fatalf("raw events %d != distribution size %d", len(r.Events), r.Simple.N())
	}
}

func TestLatencyOpenLoop(t *testing.T) {
	opt := quickOpt()
	opt.Collectors = []gc.Kind{gc.G1}
	opt.Events = 400
	results, err := LatencyOpenLoop(workload.Spring, []float64{3}, 2.0, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !r.Completed || r.Simple.N() != 400 {
		t.Fatalf("open-loop run incomplete: %+v", r)
	}
	// Arrivals are scheduled, so the *sorted* start times must be (nearly)
	// uniformly spaced — unlike closed-loop, where starts cluster on
	// completions. (Events are recorded in completion order.)
	starts := make([]int64, 0, len(r.Events))
	for _, e := range r.Events {
		starts = append(starts, e.Start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	interval := float64(starts[len(starts)-1]-starts[0]) / float64(len(starts)-1)
	uniform := 0
	for i := 1; i < len(starts); i++ {
		gap := float64(starts[i] - starts[i-1])
		if gap > 0.9*interval && gap < 1.1*interval {
			uniform++
		}
	}
	if uniform < len(starts)*9/10 {
		t.Fatalf("only %d of %d arrival gaps near the schedule interval %v",
			uniform, len(starts)-1, interval)
	}
}
