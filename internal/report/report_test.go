package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "2.5")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestAddRowfFormatting(t *testing.T) {
	tb := NewTable("a", "b", "c", "d")
	tb.AddRowf("x", 3.14159, 42.0, 7)
	out := tb.String()
	for _, want := range []string{"3.14", "42", "7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		0.123:   "0.123",
		1234.5:  "1234", // Go rounds ties to even
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	var b strings.Builder
	tb.CSV(&b)
	out := b.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}

func TestLinePlotRendersSeries(t *testing.T) {
	p := &LinePlot{
		Title:  "test plot",
		XLabel: "heap",
		YLabel: "lbo",
		Series: []Series{
			{Label: "Serial", Marker: 'S', X: []float64{1, 2, 3}, Y: []float64{2, 1.5, 1.2}},
			{Label: "ZGC", Marker: 'Z', X: []float64{2, 3}, Y: []float64{1.9, 1.6}},
		},
	}
	var b strings.Builder
	p.Render(&b)
	out := b.String()
	for _, want := range []string{"test plot", "S", "Z", "legend:", "S=Serial", "Z=ZGC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestLinePlotClipsToYRange(t *testing.T) {
	p := &LinePlot{
		YMin: 1, YMax: 2, Height: 10, Width: 30,
		Series: []Series{{Label: "x", Marker: 'x',
			X: []float64{0, 1}, Y: []float64{0.5, 17}}},
	}
	var b strings.Builder
	p.Render(&b)
	if !strings.Contains(b.String(), "x") {
		t.Fatal("clipped series vanished entirely")
	}
}

func TestLinePlotEmpty(t *testing.T) {
	p := &LinePlot{Title: "empty"}
	var b strings.Builder
	p.Render(&b)
	if !strings.Contains(b.String(), "no data") {
		t.Fatalf("empty plot should say so: %s", b.String())
	}
}

func TestScatterPlot(t *testing.T) {
	p := &ScatterPlot{
		Title: "pca", XLabel: "PC1", YLabel: "PC2",
		Names: []string{"avrora", "h2", "lusearch"},
		X:     []float64{-1, 2, 0.5},
		Y:     []float64{0.5, -1, 2},
	}
	var b strings.Builder
	p.Render(&b)
	out := b.String()
	for _, want := range []string{"a=avrora", "b=h2", "c=lusearch", "PC1", "PC2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scatter missing %q:\n%s", want, out)
		}
	}
}

func TestMarkers(t *testing.T) {
	if MarkerFor("Serial") != 'S' || MarkerFor("ZGC") != 'Z' {
		t.Fatal("collector markers wrong")
	}
	if MarkerFor("unknown") != '*' {
		t.Fatal("fallback marker wrong")
	}
}
